//! Behavioral tests for the V100 performance model: monotonicity,
//! saturation, batching behaviour, and its calibration against every GPU
//! cell the paper publishes.

use sf_fpga::design::Workload;
use sf_gpu::{gpu_report, GpuDevice};
use sf_kernels::StencilSpec;

fn v100() -> GpuDevice {
    GpuDevice::v100()
}

#[test]
fn runtime_scales_linearly_with_iterations() {
    let wl = Workload::D2 { nx: 300, ny: 300, batch: 1 };
    let r1 = gpu_report(&v100(), &StencilSpec::poisson(), &wl, 1000);
    let r2 = gpu_report(&v100(), &StencilSpec::poisson(), &wl, 2000);
    assert!((r2.runtime_s / r1.runtime_s - 2.0).abs() < 1e-9);
    assert!((r2.bandwidth_gbs - r1.bandwidth_gbs).abs() < 1e-9);
}

#[test]
fn bandwidth_monotone_in_mesh_size_2d() {
    let mut last = 0.0;
    for n in [50usize, 100, 200, 400, 800, 1600] {
        let wl = Workload::D2 { nx: n, ny: n, batch: 1 };
        let r = gpu_report(&v100(), &StencilSpec::poisson(), &wl, 100);
        assert!(r.bandwidth_gbs > last, "{n}: {} after {last}", r.bandwidth_gbs);
        last = r.bandwidth_gbs;
    }
    assert!(last < 580.0, "2D bandwidth must stay under the stencil peak");
}

#[test]
fn droop_hits_only_large_3d_meshes() {
    let g = v100();
    // 2D never droops
    assert_eq!(g.droop_3d(2, 4.0e9), 1.0);
    // small 3D barely droops
    assert!(g.droop_3d(3, 10.0e6) > 0.99);
    // 600³ (1.73 GB footprint) droops to the paper's tiled numbers
    let d = g.droop_3d(3, 1.728e9);
    assert!((0.6..0.75).contains(&d), "droop {d}");
}

#[test]
fn batching_improves_throughput_until_saturation() {
    let mut last = 0.0;
    for b in [1usize, 10, 100, 1000] {
        let wl = Workload::D2 { nx: 200, ny: 100, batch: b };
        let r = gpu_report(&v100(), &StencilSpec::poisson(), &wl, 1000);
        assert!(r.cells_per_sec > last, "batch {b}");
        last = r.cells_per_sec;
    }
}

#[test]
fn calibration_against_every_published_gpu_cell() {
    // every GPU bandwidth the paper prints, within a 1.4× band
    let g = v100();
    let mut worst: (f64, String) = (1.0, String::new());
    let mut check = |modeled: f64, paper: f64, label: String| {
        let r = (modeled / paper).max(paper / modeled);
        if r > worst.0 {
            worst = (r, label.clone());
        }
        assert!(r < 1.4, "{label}: modeled {modeled:.0} vs paper {paper:.0}");
    };

    // Table IV baseline + batched
    let t4: [(usize, usize, f64, f64, Option<f64>); 6] = [
        (200, 100, 18.0, 404.0, Some(530.0)),
        (200, 200, 32.0, 465.0, Some(540.0)),
        (300, 150, 38.0, 483.0, Some(560.0)),
        (300, 300, 69.0, 530.0, None),
        (400, 200, 62.0, 536.0, None),
        (400, 400, 116.0, 560.0, None),
    ];
    for (nx, ny, base, b100, b1000) in t4 {
        let spec = StencilSpec::poisson();
        let r = gpu_report(&g, &spec, &Workload::D2 { nx, ny, batch: 1 }, 60_000);
        check(r.bandwidth_gbs, base, format!("poisson {nx}x{ny} base"));
        let r = gpu_report(&g, &spec, &Workload::D2 { nx, ny, batch: 100 }, 60_000);
        check(r.bandwidth_gbs, b100, format!("poisson {nx}x{ny} 100B"));
        if let Some(p) = b1000 {
            let r = gpu_report(&g, &spec, &Workload::D2 { nx, ny, batch: 1000 }, 60_000);
            check(r.bandwidth_gbs, p, format!("poisson {nx}x{ny} 1000B"));
        }
    }

    // Table V baseline + tiled-mesh shapes
    for (n, base) in [(50usize, 83.0), (100, 284.0), (200, 496.0), (250, 559.0), (300, 553.0)] {
        let r = gpu_report(
            &g,
            &StencilSpec::jacobi(),
            &Workload::D3 { nx: n, ny: n, nz: n, batch: 1 },
            29_000,
        );
        check(r.bandwidth_gbs, base, format!("jacobi {n}³ base"));
    }
    let r = gpu_report(
        &g,
        &StencilSpec::jacobi(),
        &Workload::D3 { nx: 600, ny: 600, nz: 600, batch: 1 },
        120,
    );
    check(r.bandwidth_gbs, 392.0, "jacobi 600³ tiled".into());
    let r = gpu_report(
        &g,
        &StencilSpec::jacobi(),
        &Workload::D3 { nx: 1800, ny: 1800, nz: 100, batch: 1 },
        120,
    );
    check(r.bandwidth_gbs, 363.0, "jacobi 1800²x100 tiled".into());

    // Table VI
    let t6: [(usize, usize, usize, f64, f64); 5] = [
        (32, 32, 32, 130.0, 266.0),
        (32, 32, 50, 163.0, 274.0),
        (50, 50, 16, 124.0, 263.0),
        (50, 50, 32, 155.0, 272.0),
        (50, 50, 50, 179.0, 275.0),
    ];
    for (nx, ny, nz, base, b40) in t6 {
        let r = gpu_report(&g, &StencilSpec::rtm(), &Workload::D3 { nx, ny, nz, batch: 1 }, 1800);
        check(r.bandwidth_gbs, base, format!("rtm {nx}x{ny}x{nz} base"));
        let r = gpu_report(&g, &StencilSpec::rtm(), &Workload::D3 { nx, ny, nz, batch: 40 }, 180);
        check(r.bandwidth_gbs, b40, format!("rtm {nx}x{ny}x{nz} 40B"));
    }

    println!("worst GPU-model deviation: {:.2}x at {}", worst.0, worst.1);
}

#[test]
fn power_never_exceeds_board_limits() {
    let g = v100();
    for b in [1usize, 10, 1000] {
        let wl = Workload::D2 { nx: 400, ny: 400, batch: b };
        let r = gpu_report(&g, &StencilSpec::poisson(), &wl, 100);
        assert!(r.power_w >= g.idle_w && r.power_w <= g.idle_w + g.dynamic_w);
    }
}

#[test]
fn rtm_chain_slower_per_cell_than_simple_stencils() {
    // the 8-kernel chain with high-order reads must cost far more time per
    // cell-iteration than the single-kernel apps
    let g = v100();
    let wl = Workload::D3 { nx: 100, ny: 100, nz: 100, batch: 1 };
    let jac = gpu_report(&g, &StencilSpec::jacobi(), &wl, 100);
    let rtm = gpu_report(&g, &StencilSpec::rtm(), &wl, 100);
    assert!(rtm.cells_per_sec < jac.cells_per_sec / 10.0);
}
