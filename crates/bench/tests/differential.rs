//! Differential conformance: randomized feasible designs must agree across
//! every execution engine.
//!
//! For each sampled `(mesh, batch, V, p, niter)` point that synthesizes:
//!
//! * the golden scalar [`sf_kernels::reference`] solver, the single-stream
//!   behavioral executor ([`exec2d`]/[`exec3d`]) and the parallel batch
//!   engine ([`exec_batch`]) produce bit-identical outputs;
//! * the batch engine at `jobs = 3` is byte-identical to `jobs = 1` —
//!   outputs, cycle report, Chrome trace and metrics JSON;
//! * the batch engine's cycle report matches the single-stream report
//!   (both are closed-form from the same plan).
//!
//! The quick variants run in the default suite; the `deep_*` variants are
//! `#[ignore]`d 200-case sweeps for the nightly-style
//! `cargo test --release -- --ignored` job.

use proptest::prelude::*;
use sf_fpga::design::{synthesize, ExecMode, MemKind, Workload};
use sf_fpga::{exec2d, exec3d, exec_batch, FpgaDevice, Recorder};
use sf_kernels::{reference, Jacobi3D, Poisson2D, StencilSpec};
use sf_mesh::{norms, Batch2D, Batch3D};
use sf_telemetry::{chrome, metrics};

/// Input-mesh seed, independent of the sampled design point.
const INPUT_SEED: u64 = 7_654_321;

/// Vectorization widths worth sampling (paper uses powers of two).
const V_CHOICES: [usize; 4] = [1, 2, 4, 8];

macro_rules! ensure {
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(format!($($fmt)*));
        }
    };
}

/// One 2D differential check. `Ok(false)` means the sampled point does not
/// synthesize (rejected, resampled); `Err` is a genuine conformance failure.
fn check_2d(
    nx: usize,
    ny: usize,
    batch: usize,
    v: usize,
    p: usize,
    niter: usize,
) -> Result<bool, String> {
    let dev = FpgaDevice::u280();
    let wl = Workload::D2 { nx, ny, batch };
    let mode = if batch > 1 { ExecMode::Batched { b: batch } } else { ExecMode::Baseline };
    let spec = StencilSpec::poisson();
    let Ok(ds) = synthesize(&dev, &spec, v, p, mode, MemKind::Hbm, &wl) else {
        return Ok(false);
    };
    let tag = format!("V={v} p={p} {nx}x{ny} batch={batch} iters={niter}");
    let input = Batch2D::<f32>::random(nx, ny, batch, INPUT_SEED, -1.0, 1.0);
    let golden = reference::run_batch_2d(&Poisson2D, &input, niter);

    let (serial_out, serial_rep) = exec2d::simulate_2d(&dev, &ds, &[Poisson2D], &input, niter);
    ensure!(
        norms::bit_equal(serial_out.as_slice(), golden.as_slice()),
        "single-stream 2D output differs from reference ({tag})"
    );

    let mut rec1 = Recorder::enabled(ds.freq_mhz());
    let (out1, rep1) = exec_batch::simulate_batch_2d_parallel(
        &dev,
        &ds,
        &[Poisson2D],
        &input,
        niter,
        1,
        &mut rec1,
    );
    let mut rec3 = Recorder::enabled(ds.freq_mhz());
    let (out3, rep3) = exec_batch::simulate_batch_2d_parallel(
        &dev,
        &ds,
        &[Poisson2D],
        &input,
        niter,
        3,
        &mut rec3,
    );
    ensure!(
        norms::bit_equal(out1.as_slice(), golden.as_slice()),
        "batch-engine 2D output differs from reference ({tag})"
    );
    ensure!(
        norms::bit_equal(out1.as_slice(), out3.as_slice()),
        "parallel batch 2D output differs from serial ({tag})"
    );
    ensure!(
        rep1.total_cycles == rep3.total_cycles,
        "2D cycle reports diverge across jobs: {} vs {} ({tag})",
        rep1.total_cycles,
        rep3.total_cycles
    );
    ensure!(
        rep1.total_cycles == serial_rep.total_cycles,
        "2D batch engine cycles {} != single-stream cycles {} ({tag})",
        rep1.total_cycles,
        serial_rep.total_cycles
    );
    ensure!(
        chrome::to_chrome_json(&rec1) == chrome::to_chrome_json(&rec3),
        "2D Chrome traces diverge across jobs ({tag})"
    );
    ensure!(
        metrics::to_metrics_json(&rec1) == metrics::to_metrics_json(&rec3),
        "2D metrics JSON diverges across jobs ({tag})"
    );
    Ok(true)
}

/// 3D counterpart of [`check_2d`] on the Jacobi smoothing kernel.
fn check_3d(
    nx: usize,
    ny: usize,
    nz: usize,
    batch: usize,
    v: usize,
    p: usize,
    niter: usize,
) -> Result<bool, String> {
    let dev = FpgaDevice::u280();
    let wl = Workload::D3 { nx, ny, nz, batch };
    let mode = if batch > 1 { ExecMode::Batched { b: batch } } else { ExecMode::Baseline };
    let spec = StencilSpec::jacobi();
    let Ok(ds) = synthesize(&dev, &spec, v, p, mode, MemKind::Hbm, &wl) else {
        return Ok(false);
    };
    let tag = format!("V={v} p={p} {nx}x{ny}x{nz} batch={batch} iters={niter}");
    let k = Jacobi3D::smoothing();
    let input = Batch3D::<f32>::random(nx, ny, nz, batch, INPUT_SEED, -1.0, 1.0);
    let golden = reference::run_batch_3d(&k, &input, niter);

    let (serial_out, serial_rep) = exec3d::simulate_3d(&dev, &ds, &[k], &input, niter);
    ensure!(
        norms::bit_equal(serial_out.as_slice(), golden.as_slice()),
        "single-stream 3D output differs from reference ({tag})"
    );

    let mut rec1 = Recorder::enabled(ds.freq_mhz());
    let (out1, rep1) =
        exec_batch::simulate_batch_3d_parallel(&dev, &ds, &[k], &input, niter, 1, &mut rec1);
    let mut rec3 = Recorder::enabled(ds.freq_mhz());
    let (out3, rep3) =
        exec_batch::simulate_batch_3d_parallel(&dev, &ds, &[k], &input, niter, 3, &mut rec3);
    ensure!(
        norms::bit_equal(out1.as_slice(), golden.as_slice()),
        "batch-engine 3D output differs from reference ({tag})"
    );
    ensure!(
        norms::bit_equal(out1.as_slice(), out3.as_slice()),
        "parallel batch 3D output differs from serial ({tag})"
    );
    ensure!(
        rep1.total_cycles == rep3.total_cycles,
        "3D cycle reports diverge across jobs: {} vs {} ({tag})",
        rep1.total_cycles,
        rep3.total_cycles
    );
    ensure!(
        rep1.total_cycles == serial_rep.total_cycles,
        "3D batch engine cycles {} != single-stream cycles {} ({tag})",
        rep1.total_cycles,
        serial_rep.total_cycles
    );
    ensure!(
        chrome::to_chrome_json(&rec1) == chrome::to_chrome_json(&rec3),
        "3D Chrome traces diverge across jobs ({tag})"
    );
    ensure!(
        metrics::to_metrics_json(&rec1) == metrics::to_metrics_json(&rec3),
        "3D metrics JSON diverges across jobs ({tag})"
    );
    Ok(true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn quick_differential_2d(
        nxk in 1usize..5,
        ny in 6usize..24,
        batch in 1usize..4,
        vi in 0usize..4,
        p in 1usize..5,
        niter in 1usize..4,
    ) {
        let r = check_2d(8 * nxk, ny, batch, V_CHOICES[vi], p, niter);
        prop_assert!(r.is_ok(), "{}", r.as_ref().err().cloned().unwrap_or_default());
        prop_assume!(matches!(r, Ok(true)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn quick_differential_3d(
        nxk in 1usize..3,
        ny in 4usize..10,
        nz in 4usize..10,
        batch in 1usize..3,
        vi in 0usize..4,
        p in 1usize..4,
        niter in 1usize..3,
    ) {
        let r = check_3d(8 * nxk, ny, nz, batch, V_CHOICES[vi], p, niter);
        prop_assert!(r.is_ok(), "{}", r.as_ref().err().cloned().unwrap_or_default());
        prop_assume!(matches!(r, Ok(true)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Nightly-depth sweep: 200 feasible 2D designs end to end.
    #[test]
    #[ignore]
    fn deep_differential_2d(
        nxk in 1usize..5,
        ny in 6usize..24,
        batch in 1usize..4,
        vi in 0usize..4,
        p in 1usize..5,
        niter in 1usize..4,
    ) {
        let r = check_2d(8 * nxk, ny, batch, V_CHOICES[vi], p, niter);
        prop_assert!(r.is_ok(), "{}", r.as_ref().err().cloned().unwrap_or_default());
        prop_assume!(matches!(r, Ok(true)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Nightly-depth sweep: 200 feasible 3D designs end to end.
    #[test]
    #[ignore]
    fn deep_differential_3d(
        nxk in 1usize..3,
        ny in 4usize..10,
        nz in 4usize..10,
        batch in 1usize..3,
        vi in 0usize..4,
        p in 1usize..4,
        niter in 1usize..3,
    ) {
        let r = check_3d(8 * nxk, ny, nz, batch, V_CHOICES[vi], p, niter);
        prop_assert!(r.is_ok(), "{}", r.as_ref().err().cloned().unwrap_or_default());
        prop_assume!(matches!(r, Ok(true)));
    }
}
