//! Routing-congestion clock model.
//!
//! "As a design grows and begins to occupy a larger portion of the FPGA,
//! routing … becomes more challenging, and can reduce the achievable clock
//! frequency" (§III). The paper observed the default 300 MHz holding only up
//! to `p ≈ 20` for Poisson and settled at 250 MHz for `p = 60`; Jacobi
//! closed at 246 MHz and RTM at 261 MHz (Table II).
//!
//! We model the achieved frequency as the 300 MHz target minus a congestion
//! derate with three contributions, calibrated against Table II:
//!
//! * quadratic in DSP utilization (dense arithmetic packing),
//! * quadratic in on-chip memory utilization (BRAM/URAM column pressure),
//! * linear in the unroll depth `p` (long module chains crossing SLRs —
//!   exactly the effect the paper reports for Poisson's deep `p = 60`
//!   pipeline).

use crate::device::FpgaDevice;
use crate::resources::ResourceUsage;

/// MHz of derate per unit squared DSP utilization.
const DSP_DERATE_MHZ: f64 = 30.0;
/// MHz of derate per unit squared memory utilization.
const MEM_DERATE_MHZ: f64 = 16.0;
/// MHz of derate per unit of unroll depth (module chaining / SLR crossings).
const P_DERATE_MHZ: f64 = 0.42;
/// MHz of derate per SLR boundary the chain crosses (SLL route pressure).
const CROSSING_DERATE_MHZ: f64 = 1.0;
/// MHz of derate per module forced to span multiple SLRs — the situation
/// the paper's RTM floorplan avoids by setting V = 1.
const SPANNING_DERATE_MHZ: f64 = 12.0;
/// Floor: designs never close below this.
const MIN_FREQ_HZ: f64 = 100.0e6;

/// Achievable kernel clock for a design with the given resource usage and
/// unroll depth, rounded to 1 MHz as a place-and-route tool would report.
pub fn achieved_frequency(dev: &FpgaDevice, usage: &ResourceUsage, p: usize) -> f64 {
    achieved_frequency_placed(dev, usage, p, 0, 0)
}

/// [`achieved_frequency`] with explicit SLR placement effects.
pub fn achieved_frequency_placed(
    dev: &FpgaDevice,
    usage: &ResourceUsage,
    p: usize,
    crossings: usize,
    spanning_modules: usize,
) -> f64 {
    let dsp_u = usage.dsp_util(dev);
    let mem_u = usage.mem_util(dev);
    let derate_mhz = DSP_DERATE_MHZ * dsp_u * dsp_u
        + MEM_DERATE_MHZ * mem_u * mem_u
        + P_DERATE_MHZ * p as f64
        + CROSSING_DERATE_MHZ * crossings as f64
        + SPANNING_DERATE_MHZ * spanning_modules as f64;
    let f = dev.default_clock_hz - derate_mhz * 1.0e6;
    let f = f.max(MIN_FREQ_HZ);
    (f / 1.0e6).round() * 1.0e6
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(dsp: usize, bram: usize, uram: usize) -> ResourceUsage {
        ResourceUsage {
            dsp,
            bram_blocks: bram,
            uram_blocks: uram,
            luts: 0,
            ffs: 0,
            window_bytes: 0,
        }
    }

    #[test]
    fn poisson_p60_lands_near_250mhz() {
        let d = FpgaDevice::u280();
        // V=8, p=60: 6720 DSP, 960 BRAM
        let f = achieved_frequency(&d, &usage(6720, 960, 0), 60);
        let mhz = f / 1e6;
        assert!((mhz - 250.0).abs() <= 10.0, "Poisson: got {mhz} MHz, paper 250");
    }

    #[test]
    fn jacobi_p29_lands_near_246mhz() {
        let d = FpgaDevice::u280();
        // V=8, p=29: 7656 DSP, 928 URAM
        let f = achieved_frequency(&d, &usage(7656, 0, 928), 29);
        let mhz = f / 1e6;
        assert!((mhz - 246.0).abs() <= 10.0, "Jacobi: got {mhz} MHz, paper 246");
    }

    #[test]
    fn rtm_p3_lands_near_261mhz() {
        let d = FpgaDevice::u280();
        // V=1, p=3: 5922 DSP, 864 URAM
        let f = achieved_frequency(&d, &usage(5922, 0, 864), 3);
        let mhz = f / 1e6;
        assert!((mhz - 261.0).abs() <= 10.0, "RTM: got {mhz} MHz, paper 261");
    }

    #[test]
    fn small_designs_hold_default_clock() {
        let d = FpgaDevice::u280();
        let f = achieved_frequency(&d, &usage(500, 50, 0), 4);
        assert!(f >= 295.0e6, "near-empty design should close near 300 MHz");
    }

    #[test]
    fn frequency_decreases_monotonically_with_p() {
        let d = FpgaDevice::u280();
        let mut last = f64::INFINITY;
        for p in [1, 10, 20, 40, 60, 80] {
            let f = achieved_frequency(&d, &usage(p * 112, p * 16, 0), p);
            assert!(f <= last, "frequency must not increase with p");
            last = f;
        }
    }

    #[test]
    fn frequency_floor_holds() {
        let d = FpgaDevice::u280();
        let f = achieved_frequency(&d, &usage(8490, 1487, 960), 400);
        assert!(f >= 100.0e6);
    }
}
