#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sf-faults — deterministic fault injection & resilience primitives
//!
//! The paper's workflow assumes an ideal device: every FIFO drains, every
//! AXI burst completes, every configuration is feasible. A production-scale
//! simulator must instead *survive* corrupted state, stalled pipelines and
//! invalid configurations — and prove that it does. This crate provides the
//! building blocks the rest of the workspace composes into that proof:
//!
//! * [`FaultPlan`] / [`FaultInjector`] — a seed-driven, fully deterministic
//!   fault source. The injector is consulted at well-defined *opportunity
//!   points* in the simulator (window-buffer pushes, stream elements, AXI
//!   bursts) and decides — reproducibly for a given seed — whether to flip a
//!   bit, drop/duplicate/corrupt a FIFO element, or fail/delay a burst.
//!   Every injection is recorded with its site so campaigns can assert that
//!   each one was detected or recovered.
//! * [`Watchdog`] — a cycle-budget forward-progress monitor. The dataflow
//!   simulator reports progress (rows/planes emitted) as model cycles
//!   advance; when no progress is observed for the configured budget the
//!   watchdog trips with a structured [`WatchdogTrip`] diagnosis (built from
//!   the telemetry stall attribution) instead of letting the run hang.
//! * [`RetryPolicy`] — the AXI retry/backoff model: failed bursts are
//!   retried with exponential backoff, the extra cycles flow into the cycle
//!   plan and telemetry, and exhaustion becomes a typed error instead of a
//!   silent wrong answer.
//!
//! Everything here is deterministic by construction: the injector's RNG is
//! SplitMix64 seeded from the campaign seed, and the simulator consults it
//! in a deterministic order, so the same seed reproduces the same faults,
//! detections and recoveries bit for bit.

pub mod injector;
pub mod retry;
pub mod watchdog;

pub use injector::{
    BitFlip, FaultInjector, FaultKind, FaultPlan, FaultRecord, FaultSite, StreamFault,
};
pub use retry::{AxiVerdict, RetryPolicy};
pub use watchdog::{Watchdog, WatchdogTrip};
