//! Step 6 — profiling: run the winning design with full telemetry.
//!
//! [`Workflow::profile`] selects the best design (like
//! [`Workflow::compare`]), runs it with an enabled `sf-telemetry`
//! [`Recorder`], and packages everything an engineer needs to see where
//! the cycles went: the schedule trace (per-pass/per-tile spans, AXI
//! channel utilisation, FIFO backpressure), the stall-attribution
//! breakdown, and the continuous model-accuracy check — predicted vs
//! simulated cycles, the paper's ±15 % invariant, emitted on every run.
//!
//! Validation-scale workloads additionally stream real numerics through
//! the behavioral window-buffer pipeline (so the trace carries genuine
//! buffer fill/drain events); paper-scale workloads trace the schedule
//! only — the cycle accounting is identical either way.

use crate::error::SfError;
use crate::resilience::Degradation;
use crate::workflow::Workflow;
use serde::Value;
use sf_fpga::design::{StencilDesign, Workload};
use sf_fpga::trace::PlanTrace;
use sf_fpga::{fast, trace, ExecEngine, Recorder, SimReport};
use sf_kernels::{rtm, AppId, Jacobi3D, Poisson2D, RtmStage, StencilSpec};
use sf_mesh::{Batch2D, Batch3D};
use sf_model::{predict_cached, Prediction, PredictionLevel};
use sf_multi::{MultiConfig, MultiError, ShardedPlan};
use sf_telemetry::Divergence;

/// Cell-iterations (total cells × niter) up to which `profile` streams the
/// behavioral pipeline; beyond that only the schedule is traced.
pub const BEHAVIORAL_BUDGET: u64 = 20_000_000;

/// Seed for the synthetic input meshes the behavioral profile streams.
const PROFILE_SEED: u64 = 42;

/// Everything [`Workflow::profile`] produces.
#[derive(Clone, Debug)]
pub struct ProfileResult {
    /// The profiled design.
    pub design: StencilDesign,
    /// The workload that was profiled.
    pub workload: Workload,
    /// Iterations solved.
    pub niter: u64,
    /// Resolved worker count the run was configured with.
    pub jobs: usize,
    /// Execution engine the behavioral pipeline streamed through (fast by
    /// default; both engines are bit-exact, so everything else in the
    /// profile is engine-independent).
    pub engine: ExecEngine,
    /// Accelerator cards the run was sharded across (1 = single device).
    pub devices: usize,
    /// The multi-device plan behind the report — per-device cost and
    /// exchange accounting. `None` for single-device profiles.
    pub sharded: Option<ShardedPlan>,
    /// The model's prediction for it (Extended level).
    pub prediction: Prediction,
    /// Simulated performance report.
    pub report: SimReport,
    /// The mandatory static pre-flight report for the profiled design
    /// (error-free by construction — errors abort the profile — but any
    /// warnings ride along for the caller to surface).
    pub preflight: sf_check::CheckReport,
    /// The annotated cycle breakdown ([`trace::explain`]).
    pub trace: PlanTrace,
    /// The event recorder — feed to `sf_telemetry::chrome::to_chrome_json`
    /// or `sf_telemetry::metrics::to_metrics_json`.
    pub recorder: Recorder,
    /// Predicted-vs-simulated cycles (also stored in the recorder).
    pub divergence: Divergence,
    /// Whether real numerics were streamed (vs schedule-only tracing).
    pub behavioral: bool,
    /// Concessions made to produce this profile (schedule-only fallback
    /// when the workload exceeds [`BEHAVIORAL_BUDGET`] or has no concrete
    /// kernel to stream).
    pub degradations: Vec<Degradation>,
}

impl Workflow {
    /// Profile the best design for `(spec, wl, niter)` with telemetry
    /// enabled. See the module docs for what gets recorded.
    ///
    /// Worker count is resolved from `SF_JOBS` / machine parallelism; the
    /// profile (numerics, report, every recorded byte) is identical for
    /// any count — see [`Workflow::profile_jobs`].
    pub fn profile(
        &self,
        spec: &StencilSpec,
        wl: &Workload,
        niter: u64,
    ) -> Result<ProfileResult, SfError> {
        self.profile_jobs(spec, wl, niter, sf_par::resolve_jobs(None))
    }

    /// [`Workflow::profile`] with an explicit worker count (the `--jobs`
    /// CLI flag lands here). Batched behavioral workloads fan their meshes
    /// across `jobs` threads via the deterministic batch engine
    /// ([`sf_fpga::exec_batch`]); everything else about the profile is
    /// unaffected by `jobs`. Streams through the default (fast) engine.
    pub fn profile_jobs(
        &self,
        spec: &StencilSpec,
        wl: &Workload,
        niter: u64,
        jobs: usize,
    ) -> Result<ProfileResult, SfError> {
        self.profile_exec(spec, wl, niter, jobs, ExecEngine::default())
    }

    /// [`Workflow::profile_jobs`] with an explicit execution engine (the
    /// `--exec` CLI flag lands here). Both engines are bit-exact, so the
    /// numerics, report and every recorded byte are identical; `scalar`
    /// exists to cross-check the fast path and for differential debugging.
    pub fn profile_exec(
        &self,
        spec: &StencilSpec,
        wl: &Workload,
        niter: u64,
        jobs: usize,
        engine: ExecEngine,
    ) -> Result<ProfileResult, SfError> {
        self.profile_multi(spec, wl, niter, jobs, engine, &MultiConfig::default())
    }

    /// [`Workflow::profile_exec`] sharded across `cfg.devices` accelerator
    /// cards (the `--devices` / `--link` CLI flags land here). The mesh is
    /// slab-decomposed along its outermost axis; each shard runs on its
    /// own simulated device and halos are exchanged at every pass barrier
    /// over `cfg.link`, overlapped against interior compute. Numerics stay
    /// bit-identical to the single-device profile; the report, prediction
    /// and telemetry price the sharded schedule (slowest device per pass,
    /// exposed exchange as [`sf_telemetry::StallClass::Exchange`]).
    ///
    /// Illegal shardings — zero devices, more shards than outermost mesh
    /// units, shards narrower than the halo depth — fail the SFC-X
    /// pre-flight rule with [`SfError::Check`] before anything runs.
    pub fn profile_multi(
        &self,
        spec: &StencilSpec,
        wl: &Workload,
        niter: u64,
        jobs: usize,
        engine: ExecEngine,
        cfg: &MultiConfig,
    ) -> Result<ProfileResult, SfError> {
        // A zero-iteration profile has nothing to stream, predict or
        // attribute — reject it as a typed error here, before the
        // executors (which assert on it) can turn it into a panic.
        if niter == 0 {
            return Err(SfError::Model(sf_model::ModelError::invalid(
                "niter",
                "a profile needs at least one iteration",
            )));
        }
        let best = self.best_design(spec, wl, niter)?;
        let design = best.design.clone();
        let preflight = self
            .preflight_devices(&design, wl, cfg.devices)
            .into_result()
            .map_err(SfError::Check)?;
        let dev = &self.device;
        let sharded = if cfg.devices > 1 {
            Some(sf_multi::sharded_plan(dev, &design, wl, niter, cfg).map_err(multi_err)?)
        } else {
            None
        };
        let mut rec = Recorder::enabled(design.freq_hz / 1e6);
        rec.set_jobs(jobs as u64);
        rec.set_meta("app", Value::String(format!("{}", spec.app)));
        rec.set_meta("workload", Value::String(format!("{wl:?}")));
        rec.set_meta("niter", Value::U64(niter));

        let behavioral = wl.total_cells() * niter <= BEHAVIORAL_BUDGET;
        let report = if behavioral {
            run_behavioral(dev, &design, spec, wl, niter, jobs, engine, cfg, &mut rec)?
        } else {
            None
        };
        let behavioral = report.is_some();
        let report = match report {
            Some(r) => r,
            None => {
                // Schedule-only: same cycle accounting, no numerics.
                if cfg.devices > 1 {
                    let plan =
                        sf_multi::trace_sharded_schedule(dev, &design, wl, niter, cfg, &mut rec)
                            .map_err(multi_err)?;
                    let power = sf_fpga::power::fpga_power_w(dev, &design) * cfg.devices as f64;
                    SimReport::from_plan(&design, &plan.merged, niter, power)
                } else {
                    let plan = sf_fpga::profile::trace_schedule(dev, &design, wl, niter, &mut rec);
                    SimReport::from_plan(
                        &design,
                        &plan,
                        niter,
                        sf_fpga::power::fpga_power_w(dev, &design),
                    )
                }
            }
        };

        let prediction = if cfg.devices > 1 {
            sf_model::predict_sharded(dev, &design, wl, niter, cfg)?
        } else {
            predict_cached(dev, &design, wl, niter, PredictionLevel::Extended)?
        };
        let divergence = Divergence::new(prediction.cycles, report.total_cycles);
        rec.set_divergence(divergence);
        let tr = trace::explain(dev, &design, wl, niter);
        let degradations =
            if behavioral { Vec::new() } else { vec![Degradation::ScheduleOnlyProfile] };
        Ok(ProfileResult {
            design,
            workload: *wl,
            niter,
            jobs,
            engine,
            devices: cfg.devices,
            sharded,
            prediction,
            report,
            preflight,
            trace: tr,
            recorder: rec,
            divergence,
            behavioral,
            degradations,
        })
    }
}

/// A [`MultiError`] at this point means the sharding slipped past the
/// SFC-X pre-flight — surface it as the model-layer parameter error it is
/// rather than panicking.
fn multi_err(e: MultiError) -> SfError {
    SfError::Model(sf_model::ModelError::invalid("devices", e.to_string()))
}

impl ProfileResult {
    /// Package the profile as a durable [`sf_report::RunRecord`] for the
    /// cross-run store (`sfstencil profile --record-out`).
    pub fn to_run_record(&self) -> sf_report::RunRecord {
        use sf_check::Severity;
        use sf_fpga::design::{ExecMode, MemKind};

        let mut rec = sf_report::RunRecord::empty(
            sf_report::RunKind::Profile,
            sf_report::app_slug(self.design.spec.app),
        );
        let (dims, batch) = match self.workload {
            Workload::D2 { nx, ny, batch } => (vec![nx as u64, ny as u64], batch),
            Workload::D3 { nx, ny, nz, batch } => (vec![nx as u64, ny as u64, nz as u64], batch),
        };
        rec.dims = dims;
        rec.batch = batch as u64;
        rec.niter = self.niter;
        rec.v = self.design.v as u64;
        rec.p = self.design.p as u64;
        rec.mode = format!("{:?}", self.design.mode);
        rec.tile_m = match self.design.mode {
            ExecMode::Tiled1D { tile_m } | ExecMode::Tiled2D { tile_m, .. } => Some(tile_m as u64),
            _ => None,
        };
        rec.tile_n = match self.design.mode {
            ExecMode::Tiled2D { tile_n, .. } => Some(tile_n as u64),
            _ => None,
        };
        rec.mem = match self.design.mem {
            MemKind::Hbm => "hbm".to_string(),
            MemKind::Ddr4 => "ddr4".to_string(),
        };
        rec.freq_mhz = self.design.freq_mhz();
        rec.devices = self.devices as u64;
        rec.jobs = self.jobs as u64;
        rec.shards_merged = self.recorder.shards_merged();
        rec.predicted_cycles = self.prediction.cycles;
        rec.measured_cycles = self.report.total_cycles;
        rec.runtime_s = self.report.runtime_s;
        rec.stalls = self.recorder.stall_breakdown();
        rec.check_errors =
            self.preflight.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
                as u64;
        rec.check_warnings =
            self.preflight.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
                as u64;
        rec.divergence_pct = self.divergence.pct_finite();
        rec
    }
}

/// Stream real numerics through the traced executors for the paper's apps.
/// Returns `Ok(None)` for custom specs (no concrete kernel to run) — the
/// caller falls back to schedule-only tracing.
///
/// Batched workloads (`batch > 1`) go through the deterministic parallel
/// batch engine with per-mesh `mesh{i}/window/` swimlanes; single-mesh
/// workloads keep the single-stream traced executors (tiling included).
/// With `cfg.devices > 1` every paper app instead streams the sharded
/// executors (`dev{k}/mesh{i}/window/` swimlanes, exchange charges) —
/// bit-identical numerics, sharded-schedule report. `engine` selects
/// scalar or lane-parallel stage processors — the output and every
/// recorded byte are identical either way.
#[allow(clippy::too_many_arguments)]
fn run_behavioral(
    dev: &sf_fpga::FpgaDevice,
    design: &StencilDesign,
    spec: &StencilSpec,
    wl: &Workload,
    niter: u64,
    jobs: usize,
    engine: ExecEngine,
    cfg: &MultiConfig,
    rec: &mut Recorder,
) -> Result<Option<SimReport>, SfError> {
    let sharded = cfg.devices > 1;
    Ok(match (spec.app, *wl) {
        (AppId::Poisson2D, Workload::D2 { nx, ny, batch }) => {
            let input = Batch2D::<f32>::random(nx, ny, batch, PROFILE_SEED, -1.0, 1.0);
            let (_, rep) = if sharded {
                sf_multi::simulate_batch_2d_sharded_exec(
                    engine,
                    dev,
                    design,
                    &[Poisson2D],
                    &input,
                    niter as usize,
                    cfg,
                    jobs,
                    rec,
                )
                .map_err(multi_err)?
            } else if batch > 1 {
                fast::simulate_batch_2d_parallel_exec(
                    engine,
                    dev,
                    design,
                    &[Poisson2D],
                    &input,
                    niter as usize,
                    jobs,
                    rec,
                )
            } else {
                fast::simulate_2d_exec(
                    engine,
                    dev,
                    design,
                    &[Poisson2D],
                    &input,
                    niter as usize,
                    rec,
                )
            };
            Some(rep)
        }
        (AppId::Jacobi3D, Workload::D3 { nx, ny, nz, batch }) => {
            let input = Batch3D::<f32>::random(nx, ny, nz, batch, PROFILE_SEED, -1.0, 1.0);
            let k = Jacobi3D::smoothing();
            let (_, rep) = if sharded {
                sf_multi::simulate_batch_3d_sharded_exec(
                    engine,
                    dev,
                    design,
                    &[k],
                    &input,
                    niter as usize,
                    cfg,
                    jobs,
                    rec,
                )
                .map_err(multi_err)?
            } else if batch > 1 {
                fast::simulate_batch_3d_parallel_exec(
                    engine,
                    dev,
                    design,
                    &[k],
                    &input,
                    niter as usize,
                    jobs,
                    rec,
                )
            } else {
                fast::simulate_3d_exec(engine, dev, design, &[k], &input, niter as usize, rec)
            };
            Some(rep)
        }
        (AppId::Rtm3D, Workload::D3 { nx, ny, nz, batch: 1 }) => {
            let (y, rho, mu) = rtm::demo_workload(nx, ny, nz);
            let packed = rtm::pack(&y, &rho, &mu);
            let input = Batch3D::from_meshes(std::slice::from_ref(&packed));
            let stages = RtmStage::pipeline(sf_kernels::RtmParams::default());
            let (_, rep) = if sharded {
                sf_multi::simulate_batch_3d_sharded_exec(
                    engine,
                    dev,
                    design,
                    &stages,
                    &input,
                    niter as usize,
                    cfg,
                    jobs,
                    rec,
                )
                .map_err(multi_err)?
            } else {
                fast::simulate_3d_exec(engine, dev, design, &stages, &input, niter as usize, rec)
            };
            Some(rep)
        }
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_telemetry::StallClass;

    #[test]
    fn profile_poisson_behavioral_with_divergence() {
        let wf = Workflow::u280_vs_v100();
        let spec = StencilSpec::poisson();
        let wl = Workload::D2 { nx: 200, ny: 100, batch: 1 };
        let pr = wf.profile(&spec, &wl, 100).unwrap();
        assert!(pr.behavioral);
        assert!(pr.degradations.is_empty());
        // Divergence is emitted on every run and within the paper tolerance.
        assert!(pr.divergence.within(15.0), "{}", pr.divergence.summary());
        assert!(pr.recorder.divergence().is_some());
        // Stall attribution agrees with the plan trace.
        let expect = pr.trace.stall_breakdown();
        let got = pr.recorder.stall_breakdown();
        assert_eq!(got.compute_cycles, expect.compute_cycles);
        assert_eq!(got.memory_cycles, expect.memory_cycles);
        // Pipeline spans reconcile with the simulated total.
        let pipe = pr.recorder.find_track("pipeline").unwrap();
        assert_eq!(pr.recorder.track_span_cycles(pipe), pr.report.total_cycles);
        // Behavioral window events present.
        assert!(pr.recorder.counter("window.rows_streamed") > 0);
    }

    /// Drop the `"parallel"` provenance block from a flat-metrics dump:
    /// it exists precisely to record the worker count, so it is the one
    /// part of the export that legitimately varies with `--jobs`.
    fn strip_parallel(metrics_json: &str) -> String {
        let v = serde_json::parse_value(metrics_json).unwrap();
        let serde::Value::Object(mut fields) = v else { panic!("metrics must be an object") };
        fields.retain(|(k, _)| k != "parallel");
        serde_json::to_string(&serde::Value::Object(fields)).unwrap()
    }

    #[test]
    fn batched_profile_is_jobs_invariant() {
        let wf = Workflow::u280_vs_v100();
        let spec = StencilSpec::poisson();
        let wl = Workload::D2 { nx: 64, ny: 32, batch: 6 };
        let run = |jobs: usize| {
            let pr = wf.profile_jobs(&spec, &wl, 50, jobs).unwrap();
            assert!(pr.behavioral);
            (
                sf_telemetry::chrome::to_chrome_json(&pr.recorder),
                strip_parallel(&sf_telemetry::metrics::to_metrics_json(&pr.recorder)),
                pr.report.total_cycles,
            )
        };
        let serial = run(1);
        for jobs in [2, 4] {
            assert_eq!(run(jobs), serial, "profile must be byte-identical at jobs={jobs}");
        }
        // per-mesh swimlanes from the batch engine
        let pr = wf.profile_jobs(&spec, &wl, 50, 2).unwrap();
        assert!(pr.recorder.track_names().iter().any(|t| t.starts_with("mesh0/window/")));
        assert!(pr.recorder.track_names().iter().any(|t| t.starts_with("mesh5/window/")));
        // ...while the provenance block records the actual worker count
        assert_eq!(pr.recorder.jobs(), Some(2));
    }

    #[test]
    fn profile_is_engine_invariant() {
        let wf = Workflow::u280_vs_v100();
        let spec = StencilSpec::poisson();
        let wl = Workload::D2 { nx: 64, ny: 32, batch: 3 };
        let run = |engine: ExecEngine| {
            let pr = wf.profile_exec(&spec, &wl, 40, 2, engine).unwrap();
            assert!(pr.behavioral);
            assert_eq!(pr.engine, engine);
            (
                sf_telemetry::chrome::to_chrome_json(&pr.recorder),
                sf_telemetry::metrics::to_metrics_json(&pr.recorder),
                pr.report.total_cycles,
            )
        };
        assert_eq!(run(ExecEngine::Fast), run(ExecEngine::Scalar));
        // The default profile entry points stream the fast engine.
        let pr = wf.profile_jobs(&spec, &wl, 40, 2).unwrap();
        assert_eq!(pr.engine, ExecEngine::Fast);
    }

    #[test]
    fn profile_packages_a_run_record() {
        let wf = Workflow::u280_vs_v100();
        let spec = StencilSpec::poisson();
        let wl = Workload::D2 { nx: 200, ny: 100, batch: 1 };
        let pr = wf.profile_jobs(&spec, &wl, 100, 2).unwrap();
        let rec = pr.to_run_record();
        assert_eq!(rec.schema, sf_report::RECORD_SCHEMA);
        assert_eq!(rec.app, "poisson2d");
        assert_eq!(rec.dims, vec![200, 100]);
        assert_eq!(rec.niter, 100);
        assert_eq!(rec.jobs, 2);
        assert_eq!(rec.v, pr.design.v as u64);
        assert_eq!(rec.predicted_cycles, pr.prediction.cycles);
        assert_eq!(rec.measured_cycles, pr.report.total_cycles);
        assert!(rec.has_measurement());
        assert_eq!(rec.check_errors, 0);
        // divergence is finite on a behavioral run
        assert!(rec.divergence_pct.is_some());
        // the record's stall attribution is the recorder's
        assert_eq!(rec.stalls, pr.recorder.stall_breakdown());
        // and it round-trips through the store format
        let line = serde_json::to_string(&rec).unwrap();
        let back: sf_report::RunRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn sharded_profile_is_bit_exact_and_prices_exchange() {
        let wf = Workflow::u280_vs_v100();
        let spec = StencilSpec::poisson();
        // 300 rows: two shards of 150 cover any halo the DSE can pick
        // (p is capped at 128), so the sharding is always legal
        let wl = Workload::D2 { nx: 64, ny: 300, batch: 1 };
        let solo = wf.profile_jobs(&spec, &wl, 40, 2).unwrap();
        let cfg = MultiConfig::new(2);
        let multi = wf.profile_multi(&spec, &wl, 40, 2, ExecEngine::Fast, &cfg).unwrap();
        assert!(multi.behavioral);
        assert_eq!(multi.devices, 2);
        let plan = multi.sharded.as_ref().expect("sharded plan rides along");
        assert_eq!(plan.devices, 2);
        // sharded report follows the sharded plan, not the solo plan
        assert_eq!(multi.report.total_cycles, plan.merged.total_cycles);
        assert_ne!(multi.report.total_cycles, solo.report.total_cycles);
        // prediction is the sharded model: divergence is zero by construction
        assert_eq!(multi.prediction.cycles, plan.merged.total_cycles);
        assert!(multi.divergence.within(15.0), "{}", multi.divergence.summary());
        // per-device swimlanes and the exchange counters are recorded
        assert!(multi.recorder.track_names().iter().any(|t| t.starts_with("dev1/mesh0/window/")));
        assert_eq!(
            multi.recorder.counter("exchange.bytes"),
            plan.merged.passes * plan.exchange_bytes_per_pass
        );
        // the run record carries the device count in its config key
        let rec = multi.to_run_record();
        assert_eq!(rec.devices, 2);
        assert!(rec.config_key().contains("/d2/"), "{}", rec.config_key());
    }

    #[test]
    fn sharded_profile_paper_scale_traces_schedule_only() {
        let wf = Workflow::u280_vs_v100();
        let spec = StencilSpec::poisson();
        let wl = Workload::D2 { nx: 400, ny: 400, batch: 1 };
        let cfg = MultiConfig::new(4);
        let pr = wf.profile_multi(&spec, &wl, 60_000, 1, ExecEngine::Fast, &cfg).unwrap();
        assert!(!pr.behavioral);
        assert_eq!(pr.degradations, vec![Degradation::ScheduleOnlyProfile]);
        let plan = pr.sharded.as_ref().unwrap();
        assert_eq!(pr.report.total_cycles, plan.merged.total_cycles);
        // pipeline pass spans reconcile with the merged sharded total
        let pipe = pr.recorder.find_track("pipeline").unwrap();
        assert_eq!(pr.recorder.track_span_cycles(pipe), pr.report.total_cycles);
        // per-device schedule lanes exist
        assert!(pr.recorder.find_track("dev0/pipeline").is_some());
        assert!(pr.recorder.find_track("dev3/pipeline").is_some());
        assert!(pr.divergence.within(15.0), "{}", pr.divergence.summary());
    }

    #[test]
    fn illegal_sharding_fails_preflight_with_sfc_x() {
        let wf = Workflow::u280_vs_v100();
        let spec = StencilSpec::poisson();
        // the paper mesh: 100 rows; the best design's halo is far deeper
        // than the 50-row shards two devices would own
        let wl = Workload::D2 { nx: 200, ny: 100, batch: 1 };
        let err = wf
            .profile_multi(&spec, &wl, 100, 1, ExecEngine::Fast, &MultiConfig::new(64))
            .unwrap_err();
        let crate::error::SfError::Check(check) = err else { panic!("want Check, got {err}") };
        assert!(
            check.report.diagnostics.iter().any(|d| d.rule.code() == "SFC-X01"),
            "{}",
            check.report.render()
        );
    }

    #[test]
    fn degenerate_workloads_fail_with_typed_errors_not_panics() {
        let wf = Workflow::u280_vs_v100();
        let poisson = StencilSpec::poisson();
        let jacobi = StencilSpec::jacobi();

        // niter = 0: rejected before the executors (which assert on it)
        // can panic, single- and multi-device, 2D and 3D alike
        let d2 = Workload::D2 { nx: 64, ny: 300, batch: 1 };
        let d3 = Workload::D3 { nx: 16, ny: 12, nz: 10, batch: 1 };
        for devices in [1usize, 2] {
            let cfg = MultiConfig::new(devices);
            let err = wf.profile_multi(&poisson, &d2, 0, 1, ExecEngine::Fast, &cfg).unwrap_err();
            assert!(format!("{err}").contains("niter"), "{err}");
            let err = wf.profile_multi(&jacobi, &d3, 0, 1, ExecEngine::Fast, &cfg).unwrap_err();
            assert!(format!("{err}").contains("niter"), "{err}");
        }

        // 1×1 and 1-wide meshes: no feasible design, a typed workflow error
        for (spec, wl) in [
            (&poisson, Workload::D2 { nx: 1, ny: 1, batch: 1 }),
            (&poisson, Workload::D2 { nx: 1, ny: 300, batch: 1 }),
            (&jacobi, Workload::D3 { nx: 1, ny: 1, nz: 1, batch: 1 }),
        ] {
            for devices in [1usize, 2] {
                let cfg = MultiConfig::new(devices);
                let err = wf.profile_multi(spec, &wl, 10, 1, ExecEngine::Fast, &cfg).unwrap_err();
                assert!(format!("{err}").contains("no feasible"), "{wl:?} d={devices}: {err}");
            }
        }

        // shard count = outermost extent: 1-unit slabs are always
        // narrower than the halo, so the SFC-X pre-flight rejects them
        for (spec, wl, devices) in [
            (&poisson, Workload::D2 { nx: 64, ny: 300, batch: 1 }, 300usize),
            (&jacobi, Workload::D3 { nx: 16, ny: 12, nz: 10, batch: 1 }, 10),
        ] {
            let err = wf
                .profile_multi(spec, &wl, 10, 1, ExecEngine::Fast, &MultiConfig::new(devices))
                .unwrap_err();
            let crate::error::SfError::Check(check) = err else { panic!("want Check, got {err}") };
            assert!(
                check.report.diagnostics.iter().any(|d| d.rule.code() == "SFC-X01"),
                "{}",
                check.report.render()
            );
        }
    }

    #[test]
    fn profile_paper_scale_falls_back_to_schedule_only() {
        let wf = Workflow::u280_vs_v100();
        let spec = StencilSpec::poisson();
        let wl = Workload::D2 { nx: 400, ny: 400, batch: 1 };
        let pr = wf.profile(&spec, &wl, 60_000).unwrap();
        assert!(!pr.behavioral);
        assert_eq!(pr.degradations, vec![Degradation::ScheduleOnlyProfile]);
        assert_eq!(pr.recorder.counter("window.rows_streamed"), 0);
        let pipe = pr.recorder.find_track("pipeline").unwrap();
        assert_eq!(pr.recorder.track_span_cycles(pipe), pr.report.total_cycles);
        assert!(pr.divergence.within(15.0), "{}", pr.divergence.summary());
        // A compute-bound design must be reported as such.
        assert_eq!(pr.recorder.stall_breakdown().dominant(), StallClass::Compute);
    }
}
