//! Arithmetic operation counting and DSP cost estimation.
//!
//! The paper's resource model (§III-A) needs `G_dsp`, "the number of DSP
//! blocks required for a single mesh-point update", which "depends on the
//! stencil loop kernel's arithmetic operations and number representation".
//! For single-precision floating point on Xilinx UltraScale+ devices the
//! standard HLS costs are **2 DSP48 per add/sub** and **3 DSP48 per
//! multiply**; divisions are implemented in LUTs (0 DSPs). These constants
//! reproduce the paper's Table II exactly:
//!
//! * Poisson-5pt-2D: 4 adds + 2 muls → `4·2 + 2·3 = 14` ✓
//! * Jacobi-7pt-3D: 6 adds + 7 muls → `6·2 + 7·3 = 33` ✓

use serde::{Deserialize, Serialize};

/// DSP blocks consumed by one single-precision add/sub.
pub const DSP_PER_FADD: usize = 2;
/// DSP blocks consumed by one single-precision multiply.
pub const DSP_PER_FMUL: usize = 3;
/// DSP blocks consumed by one single-precision divide (LUT-based on Xilinx).
pub const DSP_PER_FDIV: usize = 0;

/// Number representation of the datapath — the paper's future-work axis
/// ("Future work will investigate … alternative numerical representations").
///
/// The format changes both the DSP cost of each operation and the element
/// width (hence bandwidth and window-buffer demand). The behavioral
/// simulator always computes in `f32`; narrower formats affect the
/// performance/resource model only (a bit-accurate reduced-precision
/// simulator is out of scope and documented as such in DESIGN.md).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NumberFormat {
    /// IEEE-754 single precision (the paper's evaluation setting).
    Fp32,
    /// IEEE-754 half precision: one DSP per add or multiply, 2-byte elements.
    Fp16,
    /// 18-bit fixed point: adds in fabric carry chains (0 DSP), one DSP per
    /// multiply (native 27×18 DSP48E2 operand), 2-byte storage.
    Fixed18,
    /// 32-bit fixed point: adds in fabric, 4 DSPs per full-width multiply.
    Fixed32,
}

impl NumberFormat {
    /// DSP blocks per add/sub.
    pub const fn dsp_per_add(self) -> usize {
        match self {
            NumberFormat::Fp32 => DSP_PER_FADD,
            NumberFormat::Fp16 => 1,
            NumberFormat::Fixed18 | NumberFormat::Fixed32 => 0,
        }
    }

    /// DSP blocks per multiply.
    pub const fn dsp_per_mul(self) -> usize {
        match self {
            NumberFormat::Fp32 => DSP_PER_FMUL,
            NumberFormat::Fp16 => 1,
            NumberFormat::Fixed18 => 1,
            NumberFormat::Fixed32 => 4,
        }
    }

    /// Storage bytes per scalar lane.
    pub const fn lane_bytes(self) -> usize {
        match self {
            NumberFormat::Fp32 | NumberFormat::Fixed32 => 4,
            NumberFormat::Fp16 | NumberFormat::Fixed18 => 2,
        }
    }
}

impl core::fmt::Display for NumberFormat {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            NumberFormat::Fp32 => "fp32",
            NumberFormat::Fp16 => "fp16",
            NumberFormat::Fixed18 => "fixed18",
            NumberFormat::Fixed32 => "fixed32",
        };
        f.write_str(s)
    }
}

/// Floating-point operation counts for one mesh-point update.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCount {
    /// Additions and subtractions.
    pub adds: usize,
    /// Multiplications.
    pub muls: usize,
    /// Divisions.
    pub divs: usize,
}

impl OpCount {
    /// Construct an op count.
    pub const fn new(adds: usize, muls: usize, divs: usize) -> Self {
        OpCount { adds, muls, divs }
    }

    /// The paper's `G_dsp`: DSP blocks for one mesh-point update at
    /// single precision.
    pub const fn dsp(&self) -> usize {
        self.adds * DSP_PER_FADD + self.muls * DSP_PER_FMUL + self.divs * DSP_PER_FDIV
    }

    /// `G_dsp` under an alternative number representation.
    pub const fn dsp_with(&self, format: NumberFormat) -> usize {
        self.adds * format.dsp_per_add() + self.muls * format.dsp_per_mul()
    }

    /// Total floating-point operations (for GFLOPS accounting).
    pub const fn flops(&self) -> usize {
        self.adds + self.muls + self.divs
    }

    /// Component-wise sum — used to accumulate fused pipeline stages.
    pub const fn plus(self, other: OpCount) -> OpCount {
        OpCount {
            adds: self.adds + other.adds,
            muls: self.muls + other.muls,
            divs: self.divs + other.divs,
        }
    }

    /// Scale by a stage replication factor.
    pub const fn times(self, k: usize) -> OpCount {
        OpCount { adds: self.adds * k, muls: self.muls * k, divs: self.divs * k }
    }

    /// Rough pipeline latency (cycles) of a balanced adder/multiplier tree at
    /// ~300 MHz: SP add ≈ 7 stages, SP mul ≈ 5 stages on UltraScale+, with
    /// the tree depth log₂ of the operation count. Used by the fill-latency
    /// part of the cycle model, where only the order of magnitude matters.
    pub fn pipeline_latency(&self) -> usize {
        let n = self.flops().max(1);
        let depth = usize::BITS as usize - n.leading_zeros() as usize; // ceil(log2)+1-ish
        7 * depth + 10
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_gdsp_matches_paper_table2() {
        // eq (16): 1/8*(4-point sum: 3 adds) + 1/2*center (1 add, 2 muls)
        let ops = OpCount::new(4, 2, 0);
        assert_eq!(ops.dsp(), 14);
        assert_eq!(ops.flops(), 6);
    }

    #[test]
    fn jacobi_gdsp_matches_paper_table2() {
        // eq (18): 7 coefficient muls, 6 adds
        let ops = OpCount::new(6, 7, 0);
        assert_eq!(ops.dsp(), 33);
        assert_eq!(ops.flops(), 13);
    }

    #[test]
    fn divs_cost_no_dsp() {
        let ops = OpCount::new(0, 0, 5);
        assert_eq!(ops.dsp(), 0);
        assert_eq!(ops.flops(), 5);
    }

    #[test]
    fn plus_and_times_compose() {
        let a = OpCount::new(1, 2, 3);
        let b = OpCount::new(10, 20, 30);
        assert_eq!(a.plus(b), OpCount::new(11, 22, 33));
        assert_eq!(a.times(4), OpCount::new(4, 8, 12));
    }

    #[test]
    fn alternative_formats_shrink_gdsp() {
        let poisson = OpCount::new(4, 2, 0);
        assert_eq!(poisson.dsp_with(NumberFormat::Fp32), 14);
        assert_eq!(poisson.dsp_with(NumberFormat::Fp16), 6);
        assert_eq!(poisson.dsp_with(NumberFormat::Fixed18), 2);
        assert_eq!(poisson.dsp_with(NumberFormat::Fixed32), 8);
        let jacobi = OpCount::new(6, 7, 0);
        assert_eq!(jacobi.dsp_with(NumberFormat::Fp16), 13);
        assert_eq!(jacobi.dsp_with(NumberFormat::Fixed18), 7);
    }

    #[test]
    fn format_lane_bytes() {
        assert_eq!(NumberFormat::Fp32.lane_bytes(), 4);
        assert_eq!(NumberFormat::Fp16.lane_bytes(), 2);
        assert_eq!(NumberFormat::Fixed18.lane_bytes(), 2);
        assert_eq!(format!("{}", NumberFormat::Fp16), "fp16");
    }

    #[test]
    fn latency_grows_with_op_count() {
        let small = OpCount::new(4, 2, 0).pipeline_latency();
        let big = OpCount::new(96, 110, 0).times(4).pipeline_latency();
        assert!(small < big);
        assert!(small >= 10);
    }
}
