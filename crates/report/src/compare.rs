//! Baseline comparison: the regression gate behind
//! `sfstencil report --compare baseline.json --max-regress 5%`.
//!
//! Both sides are [`Report`] documents. Configurations are matched by
//! config key; a configuration **regresses** when its current median
//! cycles exceed the baseline median by more than the tolerance. A
//! configuration that *disappears* from the current report also fails the
//! gate — silent coverage loss is how regressions hide.

use crate::report::Report;
use serde::{Deserialize, Serialize};

/// One matched configuration's baseline-vs-current cycle delta.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Delta {
    /// The config key matched on.
    pub key: String,
    /// Baseline median cycles.
    pub baseline_p50: u64,
    /// Current median cycles.
    pub current_p50: u64,
    /// Signed percentage change (positive = slower). Finite: only
    /// configurations with a non-zero baseline median are compared.
    pub delta_pct: f64,
    /// Whether the change exceeds the tolerance.
    pub regressed: bool,
}

/// Result of comparing a current report against a baseline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Tolerance in percent that was applied.
    pub max_regress_pct: f64,
    /// Matched, measured configurations in baseline key order.
    pub deltas: Vec<Delta>,
    /// Measured baseline configurations absent from the current report
    /// (coverage loss — fails the gate).
    pub missing_in_current: Vec<String>,
    /// Current configurations the baseline has no record of (informational
    /// only; they start gating once the baseline is refreshed).
    pub new_in_current: Vec<String>,
}

impl Comparison {
    /// Configurations that exceeded the tolerance.
    pub fn regressions(&self) -> impl Iterator<Item = &Delta> {
        self.deltas.iter().filter(|d| d.regressed)
    }

    /// Gate verdict: no regressions and no coverage loss.
    pub fn passed(&self) -> bool {
        self.missing_in_current.is_empty() && self.deltas.iter().all(|d| !d.regressed)
    }

    /// Human-readable verdict table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "regression gate: tolerance {:.2}% on median cycles\n",
            self.max_regress_pct
        ));
        for d in &self.deltas {
            out.push_str(&format!(
                "  [{}] {} {} -> {} ({:+.2}%)\n",
                if d.regressed { "FAIL" } else { " ok " },
                d.key,
                d.baseline_p50,
                d.current_p50,
                d.delta_pct
            ));
        }
        for key in &self.missing_in_current {
            out.push_str(&format!("  [FAIL] {key} missing from current report\n"));
        }
        for key in &self.new_in_current {
            out.push_str(&format!("  [new ] {key} (not in baseline)\n"));
        }
        let n_regress =
            self.deltas.iter().filter(|d| d.regressed).count() + self.missing_in_current.len();
        if self.passed() {
            out.push_str(&format!(
                "PASS: {} configuration(s) within tolerance\n",
                self.deltas.len()
            ));
        } else {
            out.push_str(&format!("FAIL: {n_regress} gate violation(s)\n"));
        }
        out
    }
}

/// Compare `current` against `baseline` with a tolerance of
/// `max_regress_pct` percent on median cycles.
///
/// Only baseline configurations with a measurement (`measured_p50 > 0`)
/// participate — fault-campaign and model-only groups carry no cycle
/// distribution to gate on.
pub fn compare(current: &Report, baseline: &Report, max_regress_pct: f64) -> Comparison {
    let tol = if max_regress_pct.is_finite() { max_regress_pct.max(0.0) } else { 0.0 };
    let mut deltas = Vec::new();
    let mut missing = Vec::new();
    for base in baseline.configs.iter().filter(|c| c.measured_p50 > 0) {
        match current.config(&base.key) {
            Some(cur) if cur.measured_p50 > 0 => {
                let b = base.measured_p50;
                let c = cur.measured_p50;
                let delta_pct = (c as f64 - b as f64) / b as f64 * 100.0;
                deltas.push(Delta {
                    key: base.key.clone(),
                    baseline_p50: b,
                    current_p50: c,
                    delta_pct,
                    regressed: delta_pct > tol,
                });
            }
            _ => missing.push(base.key.clone()),
        }
    }
    let new_in_current = current
        .configs
        .iter()
        .filter(|c| c.measured_p50 > 0 && baseline.config(&c.key).is_none())
        .map(|c| c.key.clone())
        .collect();
    Comparison { max_regress_pct: tol, deltas, missing_in_current: missing, new_in_current }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RunKind, RunRecord};
    use crate::report::Report;

    fn report_with(cycles: u64) -> Report {
        let mut r = RunRecord::empty(RunKind::Profile, "poisson2d");
        r.dims = vec![200, 100];
        r.niter = 100;
        r.v = 8;
        r.p = 16;
        r.mode = "Baseline".into();
        r.mem = "hbm".into();
        r.measured_cycles = cycles;
        Report::build(&[r])
    }

    #[test]
    fn identical_reports_pass() {
        let rep = report_with(1_000_000);
        let cmp = compare(&rep, &rep, 5.0);
        assert!(cmp.passed());
        assert_eq!(cmp.deltas.len(), 1);
        assert_eq!(cmp.deltas[0].delta_pct, 0.0);
        assert!(cmp.render().contains("PASS"));
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let base = report_with(1_000_000);
        // +10% raw; the sketch's ~1.6% relative error cannot absorb it
        let cur = report_with(1_100_000);
        let cmp = compare(&cur, &base, 5.0);
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions().count(), 1);
        assert!(cmp.render().contains("FAIL"));
    }

    #[test]
    fn improvement_and_small_noise_pass() {
        let base = report_with(1_000_000);
        let faster = report_with(900_000);
        assert!(compare(&faster, &base, 5.0).passed());
        let noisy = report_with(1_020_000); // +2% < 5% tolerance
        assert!(compare(&noisy, &base, 5.0).passed());
    }

    #[test]
    fn missing_configuration_fails_the_gate() {
        let base = report_with(1_000_000);
        let empty = Report::build(&[]);
        let cmp = compare(&empty, &base, 5.0);
        assert!(!cmp.passed());
        assert_eq!(cmp.missing_in_current.len(), 1);
        assert!(cmp.render().contains("missing from current report"));
    }

    #[test]
    fn new_configurations_are_informational() {
        let base = Report::build(&[]);
        let cur = report_with(1_000_000);
        let cmp = compare(&cur, &base, 5.0);
        assert!(cmp.passed());
        assert_eq!(cmp.new_in_current.len(), 1);
    }

    #[test]
    fn non_finite_tolerance_degrades_to_zero() {
        let base = report_with(1_000_000);
        let cur = report_with(1_000_001);
        let cmp = compare(&cur, &base, f64::NAN);
        assert_eq!(cmp.max_regress_pct, 0.0);
        // the sketch may quantize both to the same bucket; tolerance 0
        // means any positive delta regresses
        for d in &cmp.deltas {
            assert_eq!(d.regressed, d.delta_pct > 0.0);
        }
    }
}
