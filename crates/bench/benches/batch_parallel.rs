//! The PR's parallel execution layer under the stopwatch: batched 2D/3D
//! simulation across worker counts, the parallel DSE sweep, and the
//! process-wide prediction cache on its hit and miss paths.
//!
//! On a multi-core host the `jobs=4` rows should beat `jobs=1` roughly
//! linearly until the batch runs out; on a single-core CI runner they
//! degenerate to the same number — the point of the CI job is the archived
//! trend (`--output-format bencher`), not an absolute speedup gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sf_core::prelude::*;
use sf_fpga::design::synthesize;
use sf_fpga::{exec_batch, Recorder};
use sf_kernels::{Jacobi3D, Poisson2D};
use sf_mesh::{Batch2D, Batch3D};
use sf_model::{clear_caches, predict_cached};

const SEED: u64 = 42;

fn bench_batch_2d(c: &mut Criterion) {
    let dev = FpgaDevice::u280();
    let (nx, ny, batch, niter) = (64usize, 32usize, 8usize, 10usize);
    let wl = Workload::D2 { nx, ny, batch };
    let ds = synthesize(
        &dev,
        &StencilSpec::poisson(),
        8,
        4,
        ExecMode::Batched { b: batch },
        MemKind::Hbm,
        &wl,
    )
    .unwrap();
    let input = Batch2D::<f32>::random(nx, ny, batch, SEED, -1.0, 1.0);
    let mut g = c.benchmark_group("batch2d_64x32x8");
    g.sample_size(10);
    g.throughput(Throughput::Elements((nx * ny * batch * niter) as u64));
    for jobs in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                exec_batch::simulate_batch_2d_parallel(
                    &dev,
                    &ds,
                    &[Poisson2D],
                    &input,
                    niter,
                    jobs,
                    &mut Recorder::disabled(),
                )
            })
        });
    }
    g.finish();
}

fn bench_batch_3d(c: &mut Criterion) {
    let dev = FpgaDevice::u280();
    let (nx, ny, nz, batch, niter) = (16usize, 12usize, 10usize, 6usize, 6usize);
    let wl = Workload::D3 { nx, ny, nz, batch };
    let ds = synthesize(
        &dev,
        &StencilSpec::jacobi(),
        8,
        3,
        ExecMode::Batched { b: batch },
        MemKind::Hbm,
        &wl,
    )
    .unwrap();
    let k = Jacobi3D::smoothing();
    let input = Batch3D::<f32>::random(nx, ny, nz, batch, SEED, -1.0, 1.0);
    let mut g = c.benchmark_group("batch3d_16x12x10x6");
    g.sample_size(10);
    g.throughput(Throughput::Elements((nx * ny * nz * batch * niter) as u64));
    for jobs in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                exec_batch::simulate_batch_3d_parallel(
                    &dev,
                    &ds,
                    &[k],
                    &input,
                    niter,
                    jobs,
                    &mut Recorder::disabled(),
                )
            })
        });
    }
    g.finish();
}

fn bench_dse_parallel(c: &mut Criterion) {
    let wf = Workflow::u280_vs_v100();
    let wl = Workload::D2 { nx: 400, ny: 400, batch: 1 };
    let mut g = c.benchmark_group("dse_poisson_400");
    g.sample_size(10);
    for jobs in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                // cold sweep: the memoized prediction cache would otherwise
                // turn every iteration after the first into pure lookups
                clear_caches();
                wf.explore_jobs(&StencilSpec::poisson(), &wl, 60_000, jobs).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_prediction_cache(c: &mut Criterion) {
    let dev = FpgaDevice::u280();
    let wl = Workload::D2 { nx: 400, ny: 400, batch: 1 };
    let ds =
        synthesize(&dev, &StencilSpec::poisson(), 8, 60, ExecMode::Baseline, MemKind::Hbm, &wl)
            .unwrap();
    let mut g = c.benchmark_group("prediction_cache");
    g.sample_size(10);
    g.bench_function("miss", |b| {
        b.iter(|| {
            clear_caches();
            predict_cached(&dev, &ds, &wl, 60_000, PredictionLevel::Extended).unwrap()
        })
    });
    // warm the entry once, then every lookup is a hit
    clear_caches();
    predict_cached(&dev, &ds, &wl, 60_000, PredictionLevel::Extended).unwrap();
    g.bench_function("hit", |b| {
        b.iter(|| predict_cached(&dev, &ds, &wl, 60_000, PredictionLevel::Extended).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_batch_2d,
    bench_batch_3d,
    bench_dse_parallel,
    bench_prediction_cache
);
criterion_main!(benches);
