#!/usr/bin/env sh
# Grep-based lint gate: no `.unwrap()` / `.expect(` in library-crate
# non-test code paths. Scanning stops at the first `#[cfg(test)]` in each
# file (test modules are exempt), comment lines are skipped, and
# `.expect_err(` (a legitimate assertion helper) is not a match.
#
# Covered crates: the library layers a downstream user links against.
# Binaries, benches and the experiment harness (sf-bench src) may still
# panic on genuinely impossible states.
set -eu

cd "$(dirname "$0")/.."

status=0
for crate in fpga model mesh kernels check core gpu telemetry faults par; do
    for f in $(find "crates/$crate/src" -name '*.rs' 2>/dev/null); do
        hits=$(awk '
            /#\[cfg\(test\)\]/ { exit }
            /^[[:space:]]*\/\// { next }
            /\.expect_err\(/ { next }
            /\.unwrap\(|\.expect\(/ { print FILENAME ":" FNR ": " $0 }
        ' "$f")
        if [ -n "$hits" ]; then
            echo "$hits"
            status=1
        fi
    done
done

if [ "$status" -ne 0 ]; then
    echo "error: unwrap()/expect() found in library non-test code (route through typed errors instead)" >&2
fi
exit "$status"
