//! FPGA-vs-GPU comparison results.

use serde::{Deserialize, Serialize};
use sf_fpga::design::StencilDesign;
use sf_fpga::SimReport;
use sf_model::predict::Prediction;

/// A head-to-head comparison on one workload: the chosen FPGA design, the
/// model's prediction for it, and the achieved reports on both platforms.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// The winning FPGA design.
    pub design: StencilDesign,
    /// The model prediction that selected it.
    pub prediction: Prediction,
    /// Simulated U280 execution.
    pub fpga: SimReport,
    /// Modeled V100 execution.
    pub gpu: SimReport,
}

impl Comparison {
    /// GPU runtime ÷ FPGA runtime (> 1 ⇒ FPGA faster).
    pub fn speedup(&self) -> f64 {
        self.gpu.runtime_s / self.fpga.runtime_s
    }

    /// GPU energy ÷ FPGA energy (> 1 ⇒ FPGA more efficient).
    pub fn energy_ratio(&self) -> f64 {
        self.gpu.energy_j / self.fpga.energy_j
    }

    /// Model prediction error vs the simulated FPGA runtime, percent
    /// (the paper's ±15 % accuracy metric).
    pub fn model_error_pct(&self) -> f64 {
        (self.prediction.runtime_s - self.fpga.runtime_s) / self.fpga.runtime_s * 100.0
    }

    /// Paper-style one-line verdict.
    pub fn verdict(&self) -> String {
        format!(
            "{}: FPGA {:.3} ms / {:.0} GB/s / {:.3} kJ  |  GPU {:.3} ms / {:.0} GB/s / {:.3} kJ  →  speedup {:.2}×, energy {:.2}×, model err {:+.1}%",
            self.fpga.app,
            self.fpga.runtime_s * 1e3,
            self.fpga.bandwidth_gbs,
            self.fpga.energy_j / 1e3,
            self.gpu.runtime_s * 1e3,
            self.gpu.bandwidth_gbs,
            self.gpu.energy_j / 1e3,
            self.speedup(),
            self.energy_ratio(),
            self.model_error_pct(),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::workflow::Workflow;
    use sf_fpga::design::Workload;
    use sf_kernels::StencilSpec;

    #[test]
    fn comparison_metrics_consistent() {
        let wf = Workflow::u280_vs_v100();
        let wl = Workload::D2 { nx: 200, ny: 200, batch: 100 };
        let cmp = wf.compare(&StencilSpec::poisson(), &wl, 6_000).unwrap();
        let s = cmp.speedup();
        assert!((s - cmp.gpu.runtime_s / cmp.fpga.runtime_s).abs() < 1e-12);
        assert!(cmp.energy_ratio() > 0.0);
        assert!(cmp.model_error_pct().is_finite());
        assert!(cmp.verdict().contains("speedup"));
    }
}
