//! 2D rectangular meshes.
//!
//! Storage is row-major with `x` fastest (`idx = y * nx + x`), which is the
//! order the FPGA design streams cells from external memory into the window
//! buffers. The paper calls the row length `m` and the row count `n`; we use
//! `nx`/`ny`.

use crate::element::Element;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A dense 2D mesh of elements.
///
/// ```
/// use sf_mesh::Mesh2D;
/// let mut m = Mesh2D::<f32>::zeros(8, 4);
/// m.set(3, 2, 1.5);
/// assert_eq!(m.get(3, 2), 1.5);
/// assert_eq!(m.row(2)[3], 1.5);          // row-major, x fastest
/// assert!(m.is_interior(3, 2, 1));
/// assert!(!m.is_interior(0, 2, 1));      // boundary cell
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Mesh2D<T: Element> {
    nx: usize,
    ny: usize,
    data: Vec<T>,
}

impl<T: Element> Mesh2D<T> {
    /// Create an `nx × ny` mesh of default (zero) elements.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "mesh dimensions must be positive");
        Mesh2D { nx, ny, data: vec![T::default(); nx * ny] }
    }

    /// Create a mesh filled by `f(x, y)`.
    pub fn from_fn(nx: usize, ny: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut m = Self::zeros(nx, ny);
        for y in 0..ny {
            for x in 0..nx {
                m.data[y * nx + x] = f(x, y);
            }
        }
        m
    }

    /// Create a mesh with lanes drawn uniformly from `[lo, hi)` using a
    /// deterministic seed — the workload generator used by the experiment
    /// harness.
    pub fn random(nx: usize, ny: usize, seed: u64, lo: f32, hi: f32) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self::from_fn(nx, ny, |_, _| {
            let mut e = T::default();
            for c in 0..T::LANES {
                e.set_lane(c, rng.gen_range(lo..hi));
            }
            e
        })
    }

    /// Row length (the paper's `m`, fastest-varying dimension).
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of rows (the paper's `n`).
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of mesh points.
    #[inline]
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// `true` when the mesh has no points (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the mesh payload in bytes.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.len() * T::size_bytes()
    }

    /// Linear index of `(x, y)`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny);
        y * self.nx + x
    }

    /// Read the element at `(x, y)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> T {
        self.data[self.idx(x, y)]
    }

    /// Write the element at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: T) {
        let i = self.idx(x, y);
        self.data[i] = v;
    }

    /// Borrow the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Borrow row `y`.
    #[inline]
    pub fn row(&self, y: usize) -> &[T] {
        let s = y * self.nx;
        &self.data[s..s + self.nx]
    }

    /// `true` when `(x, y)` is at least `r` cells away from every boundary —
    /// i.e. a cell a radius-`r` stencil may update.
    #[inline]
    pub fn is_interior(&self, x: usize, y: usize, r: usize) -> bool {
        x >= r && y >= r && x + r < self.nx && y + r < self.ny
    }

    /// Iterate `(x, y, value)` over all points in streaming (row-major) order.
    pub fn iter_points(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        let nx = self.nx;
        self.data.iter().enumerate().map(move |(i, &v)| (i % nx, i / nx, v))
    }

    /// `true` if every lane of every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|e| e.is_finite())
    }

    /// Extract the rectangle `[x0, x0+w) × [y0, y0+h)` as a new mesh.
    ///
    /// Used by the tiled executor to cut overlapped blocks out of the global
    /// mesh (the host-side part of spatial blocking).
    pub fn extract(&self, x0: usize, y0: usize, w: usize, h: usize) -> Mesh2D<T> {
        assert!(x0 + w <= self.nx && y0 + h <= self.ny, "extract out of bounds");
        Mesh2D::from_fn(w, h, |x, y| self.get(x0 + x, y0 + y))
    }

    /// Write `src` into the rectangle starting at `(x0, y0)`, restricted to
    /// the sub-rectangle `[vx0, vx0+vw) × [vy0, vy0+vh)` of `src` — i.e. copy
    /// back only a tile's *valid* region.
    #[allow(clippy::too_many_arguments)] // tile-copy geometry is naturally 7-place
    pub fn insert_valid(
        &mut self,
        src: &Mesh2D<T>,
        x0: usize,
        y0: usize,
        vx0: usize,
        vy0: usize,
        vw: usize,
        vh: usize,
    ) {
        assert!(vx0 + vw <= src.nx && vy0 + vh <= src.ny, "valid region out of src");
        assert!(x0 + vx0 + vw <= self.nx && y0 + vy0 + vh <= self.ny, "insert out of bounds");
        for y in vy0..vy0 + vh {
            for x in vx0..vx0 + vw {
                self.set(x0 + x, y0 + y, src.get(x, y));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_dims() {
        let m = Mesh2D::<f32>::zeros(8, 4);
        assert_eq!(m.nx(), 8);
        assert_eq!(m.ny(), 4);
        assert_eq!(m.len(), 32);
        assert_eq!(m.size_bytes(), 128);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_panics() {
        let _ = Mesh2D::<f32>::zeros(0, 4);
    }

    #[test]
    fn from_fn_layout_is_row_major_x_fastest() {
        let m = Mesh2D::<f32>::from_fn(3, 2, |x, y| (y * 10 + x) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.get(2, 1), 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = Mesh2D::<f32>::zeros(4, 4);
        m.set(3, 2, 7.5);
        assert_eq!(m.get(3, 2), 7.5);
        assert_eq!(m.as_slice()[2 * 4 + 3], 7.5);
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let a = Mesh2D::<f32>::random(16, 16, 42, -1.0, 1.0);
        let b = Mesh2D::<f32>::random(16, 16, 42, -1.0, 1.0);
        let c = Mesh2D::<f32>::random(16, 16, 43, -1.0, 1.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn interior_predicate() {
        let m = Mesh2D::<f32>::zeros(5, 5);
        assert!(m.is_interior(2, 2, 1));
        assert!(m.is_interior(1, 1, 1));
        assert!(!m.is_interior(0, 2, 1));
        assert!(!m.is_interior(4, 2, 1));
        assert!(!m.is_interior(2, 0, 1));
        assert!(!m.is_interior(3, 3, 2));
        assert!(m.is_interior(2, 2, 2));
    }

    #[test]
    fn iter_points_covers_every_cell_once_in_order() {
        let m = Mesh2D::<f32>::from_fn(3, 3, |x, y| (y * 3 + x) as f32);
        let pts: Vec<_> = m.iter_points().collect();
        assert_eq!(pts.len(), 9);
        assert_eq!(pts[0], (0, 0, 0.0));
        assert_eq!(pts[4], (1, 1, 4.0));
        assert_eq!(pts[8], (2, 2, 8.0));
    }

    #[test]
    fn extract_and_insert_valid_roundtrip() {
        let m = Mesh2D::<f32>::from_fn(8, 6, |x, y| (y * 100 + x) as f32);
        let t = m.extract(2, 1, 4, 3);
        assert_eq!(t.nx(), 4);
        assert_eq!(t.get(0, 0), 102.0);
        assert_eq!(t.get(3, 2), 305.0);

        let mut dst = Mesh2D::<f32>::zeros(8, 6);
        dst.insert_valid(&t, 2, 1, 1, 1, 2, 1);
        // only src cells (1..3, 1..2) copied, offset by tile origin (2,1)
        assert_eq!(dst.get(3, 2), 203.0);
        assert_eq!(dst.get(4, 2), 204.0);
        assert_eq!(dst.get(2, 2), 0.0);
        assert_eq!(dst.get(5, 2), 0.0);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut m = Mesh2D::<f32>::zeros(4, 4);
        assert!(m.all_finite());
        m.set(1, 1, f32::NAN);
        assert!(!m.all_finite());
    }
}
