//! Thread-safe, deterministic memoization cache.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Hit/miss counters snapshot for a [`Memo`] (see [`Memo::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute the value.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: u64,
}

/// A string-keyed memoization cache safe to share across worker threads.
///
/// Built for caching *pure* derivations — analytic-model predictions,
/// design-rule check reports — keyed by a deterministic fingerprint of the
/// inputs (typically the `Debug` rendering of design + device + workload).
/// A `BTreeMap` keeps iteration order deterministic, and values are stored
/// first-writer-wins so concurrent computes of the same key converge on
/// one stored value.
///
/// The value is computed **outside** the lock: two threads racing on the
/// same key may both compute it (the derivations cached here are cheap and
/// pure, so this costs a little CPU, never correctness), but no thread
/// ever blocks behind another's compute.
#[derive(Debug, Default)]
pub struct Memo<V> {
    map: Mutex<BTreeMap<String, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Lock, recovering from poisoning: the guarded `BTreeMap` is only ever
/// mutated by whole-entry inserts, so a panicking thread cannot leave it
/// half-updated.
fn lock<V>(m: &Mutex<BTreeMap<String, V>>) -> MutexGuard<'_, BTreeMap<String, V>> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<V: Clone> Memo<V> {
    /// An empty cache.
    pub fn new() -> Self {
        Memo {
            map: Mutex::new(BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The cached value for `key`, if present (counts as a hit/miss).
    pub fn get(&self, key: &str) -> Option<V> {
        let found = lock(&self.map).get(key).cloned();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The value for `key`, computing and storing it on a miss.
    ///
    /// On a racing insert the first stored value wins and is returned, so
    /// every caller observes the same value for a given key.
    pub fn get_or_insert_with<F: FnOnce() -> V>(&self, key: &str, f: F) -> V {
        if let Some(v) = self.get(key) {
            return v;
        }
        let v = f();
        let mut map = lock(&self.map);
        map.entry(key.to_string()).or_insert(v).clone()
    }

    /// Fallible variant of [`Memo::get_or_insert_with`]: errors are
    /// returned to the caller and never cached.
    pub fn try_get_or_insert_with<E, F: FnOnce() -> Result<V, E>>(
        &self,
        key: &str,
        f: F,
    ) -> Result<V, E> {
        if let Some(v) = self.get(key) {
            return Ok(v);
        }
        let v = f()?;
        let mut map = lock(&self.map);
        Ok(map.entry(key.to_string()).or_insert(v).clone())
    }

    /// Hit/miss/entry counters (monotonic since construction or the last
    /// [`Memo::clear`]).
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: lock(&self.map).len() as u64,
        }
    }

    /// Drop all entries and reset the counters.
    pub fn clear(&self) {
        lock(&self.map).clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_counts() {
        let memo: Memo<u64> = Memo::new();
        let mut computes = 0u32;
        let v1 = memo.get_or_insert_with("k", || {
            computes += 1;
            42
        });
        let v2 = memo.get_or_insert_with("k", || {
            computes += 1;
            99
        });
        assert_eq!((v1, v2, computes), (42, 42, 1));
        let s = memo.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn errors_are_not_cached() {
        let memo: Memo<u64> = Memo::new();
        let e: Result<u64, &str> = memo.try_get_or_insert_with("k", || Err("nope"));
        assert!(e.is_err());
        let ok = memo.try_get_or_insert_with("k", || Ok::<u64, &str>(7));
        assert_eq!(ok, Ok(7));
        assert_eq!(memo.stats().entries, 1);
    }

    #[test]
    fn clear_resets() {
        let memo: Memo<u64> = Memo::new();
        memo.get_or_insert_with("a", || 1);
        memo.clear();
        assert_eq!(memo.stats(), MemoStats::default());
    }

    #[test]
    fn shared_across_threads() {
        let memo: Memo<u64> = Memo::new();
        let vals = crate::par_map(4, (0..32u64).collect::<Vec<_>>(), |_, i| {
            memo.get_or_insert_with(&format!("key{}", i % 4), || i % 4)
        });
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(*v, i as u64 % 4);
        }
        assert_eq!(memo.stats().entries, 4);
    }
}
