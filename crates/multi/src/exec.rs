//! Sharded executors: run each slab on its own simulated device and
//! exchange halos at every pass barrier.
//!
//! Bit-exactness is by construction, not by luck. Each pass, device `k`
//! streams the *extended* slab `[start−h, end+h) ∩ [0, extent)` of the
//! current global state through the same window chain the single-device
//! executors use, with the slab length as its seam period (slab edges are
//! treated as mesh boundaries). A pass chains at most `p · stages`
//! processors and a stage of radius `r` only lets boundary treatment
//! contaminate `r` more units, so after the whole pass at most
//! `p · stages · ⌈D/2⌉ = h` units adjacent to a *fake* (slab-interior)
//! edge are wrong — exactly the halo, which is discarded: only the owned
//! units `[start, end)` are written back. Real mesh boundaries are never
//! clamped away because the extension is clipped to `[0, extent)`. The
//! result is bit-identical to the single-device executors for any device
//! count, engine, and `jobs` value.
//!
//! Telemetry mirrors [`sf_fpga::exec_batch`]: each (device, mesh) pair
//! records its first pass under a `dev{k}/mesh{i}/window/` track prefix
//! with deterministic cycle offsets, shard recorders merge in slab order,
//! and the halo-exchange cost is charged analytically from the
//! [`ShardedPlan`] — `exchange.bytes` / `exchange.messages` counters plus
//! the exposed (non-overlapped) cycles as
//! [`sf_telemetry::StallClass::Exchange`] — so traces stay byte-identical
//! for every `jobs` value.

use crate::partition::slab_partition;
use crate::plan::{sharded_plan, MultiConfig, MultiError, ShardedPlan};
use sf_fpga::cycles;
use sf_fpga::design::{ExecMode, StencilDesign, Workload};
use sf_fpga::window::{
    run_chain_2d_engine_traced, run_chain_3d_engine_traced, Engine2D, Engine3D, ScalarEngine,
};
use sf_fpga::{ExecEngine, FastEngine, FpgaDevice, SimReport};
use sf_kernels::{LaneElement, LaneOp2D, LaneOp3D, StencilOp2D, StencilOp3D};
use sf_mesh::{Batch2D, Batch3D, Element};
use sf_telemetry::{Recorder, StallClass};

/// Shared design/input agreement checks (same contract as the batch
/// executors: wrong batch size or stage count is a programming error).
fn check_batch_mode(design: &StencilDesign, b: usize) {
    match design.mode {
        ExecMode::Batched { b: db } => assert_eq!(b, db, "batch size mismatch"),
        _ => assert_eq!(b, 1, "baseline design runs one mesh"),
    }
}

/// Charge the analytic exchange cost into the recorder. Counters and the
/// [`StallClass::Exchange`] stall come from the plan, not from measuring
/// the simulated transfers, so they are deterministic across `jobs`.
fn charge_exchange(rec: &mut Recorder, plan: &ShardedPlan) {
    if plan.devices <= 1 {
        return;
    }
    rec.counter_add("exchange.bytes", plan.merged.passes * plan.exchange_bytes_per_pass);
    rec.counter_add("exchange.messages", plan.merged.passes * plan.exchange_messages_per_pass);
    rec.stall(StallClass::Exchange, plan.exchange_exposed_cycles);
}

/// Engine-generic body of [`simulate_batch_2d_sharded`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_batch_2d_sharded_core<T, K, E>(
    engine: &E,
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch2D<T>,
    niter: usize,
    cfg: &MultiConfig,
    jobs: usize,
    rec: &mut Recorder,
) -> Result<(Batch2D<T>, SimReport), MultiError>
where
    T: Element,
    K: Clone + Sync,
    E: Engine2D<T, K> + Sync,
{
    assert!(niter > 0, "niter must be positive");
    assert_eq!(
        stages_per_iter.len(),
        design.spec.stages,
        "stage count must match the design's spec"
    );
    let (nx, ny, b) = (input.nx(), input.ny(), input.batch());
    check_batch_mode(design, b);
    let wl = Workload::D2 { nx, ny, batch: b };
    let plan = sharded_plan(dev, design, &wl, niter as u64, cfg)?;
    let h = plan.halo;
    let shards = slab_partition(ny, cfg.devices);
    let rc = cycles::design_row_cycles(dev, design, nx, nx);
    let trace_on = rec.is_enabled();
    let clock = rec.cycles_per_us();
    if trace_on {
        annotate(rec, &plan);
    }

    let mut out = Batch2D::<T>::zeros(nx, ny, b);
    let plane = nx * ny;
    for i in 0..b {
        let mut cur = input.mesh(i);
        let mut remaining = niter;
        let mut first_pass = true;
        while remaining > 0 {
            let p_eff = design.p.min(remaining);
            let chain: Vec<K> = (0..p_eff).flat_map(|_| stages_per_iter.iter().cloned()).collect();
            // Halo exchange happens here: every device's extended slab is
            // gathered from the pass-barrier global state.
            let items: Vec<_> = shards
                .iter()
                .map(|s| {
                    let lo = s.start.saturating_sub(h);
                    let hi = (s.end() + h).min(ny);
                    let rows: Vec<Vec<T>> =
                        (lo..hi).map(|y| cur.as_slice()[y * nx..(y + 1) * nx].to_vec()).collect();
                    (*s, lo, rows)
                })
                .collect();
            let trace_this = trace_on && first_pass;
            let results = sf_par::par_map(jobs, items, |k, (s, lo, rows)| {
                let mut shard_rec =
                    if trace_this { Recorder::enabled(clock) } else { Recorder::disabled() };
                let slab = rows.len();
                let prefix = format!("dev{k}/mesh{i}/window/");
                let base_cycle = (i * ny + s.start) as u64 * rc;
                let out_rows = run_chain_2d_engine_traced(
                    engine,
                    &chain,
                    nx,
                    slab,
                    slab,
                    rows.into_iter(),
                    &mut shard_rec,
                    &prefix,
                    base_cycle,
                    rc,
                );
                let owned: Vec<Vec<T>> =
                    out_rows.into_iter().skip(s.start - lo).take(s.len).collect();
                (s, owned, shard_rec)
            });
            let mut next = cur.clone();
            let mut shard_recs = Vec::with_capacity(shards.len());
            for (s, owned, sr) in results {
                for (j, row) in owned.into_iter().enumerate() {
                    let y = s.start + j;
                    next.as_mut_slice()[y * nx..(y + 1) * nx].copy_from_slice(&row);
                }
                shard_recs.push(sr);
            }
            if trace_this {
                rec.merge_shards(shard_recs);
            }
            cur = next;
            remaining -= p_eff;
            first_pass = false;
        }
        out.as_mut_slice()[i * plane..(i + 1) * plane].copy_from_slice(cur.as_slice());
    }
    charge_exchange(rec, &plan);

    let power = sf_fpga::power::fpga_power_w(dev, design) * cfg.devices as f64;
    let report = SimReport::from_plan(design, &plan.merged, niter as u64, power);
    Ok((out, report))
}

/// Engine-generic body of [`simulate_batch_3d_sharded`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_batch_3d_sharded_core<T, K, E>(
    engine: &E,
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch3D<T>,
    niter: usize,
    cfg: &MultiConfig,
    jobs: usize,
    rec: &mut Recorder,
) -> Result<(Batch3D<T>, SimReport), MultiError>
where
    T: Element,
    K: Clone + Sync,
    E: Engine3D<T, K> + Sync,
{
    assert!(niter > 0, "niter must be positive");
    assert_eq!(
        stages_per_iter.len(),
        design.spec.stages,
        "stage count must match the design's spec"
    );
    let (nx, ny, nz, b) = (input.nx(), input.ny(), input.nz(), input.batch());
    check_batch_mode(design, b);
    let wl = Workload::D3 { nx, ny, nz, batch: b };
    let plan = sharded_plan(dev, design, &wl, niter as u64, cfg)?;
    let h = plan.halo;
    let shards = slab_partition(nz, cfg.devices);
    let plane_cycles = cycles::design_row_cycles(dev, design, nx, nx) * ny as u64;
    let plane = nx * ny;
    let trace_on = rec.is_enabled();
    let clock = rec.cycles_per_us();
    if trace_on {
        annotate(rec, &plan);
    }

    let mut out = Batch3D::<T>::zeros(nx, ny, nz, b);
    let vol = plane * nz;
    for i in 0..b {
        let mut cur = input.mesh(i);
        let mut remaining = niter;
        let mut first_pass = true;
        while remaining > 0 {
            let p_eff = design.p.min(remaining);
            let chain: Vec<K> = (0..p_eff).flat_map(|_| stages_per_iter.iter().cloned()).collect();
            let items: Vec<_> = shards
                .iter()
                .map(|s| {
                    let lo = s.start.saturating_sub(h);
                    let hi = (s.end() + h).min(nz);
                    let planes: Vec<Vec<T>> = (lo..hi)
                        .map(|z| cur.as_slice()[z * plane..(z + 1) * plane].to_vec())
                        .collect();
                    (*s, lo, planes)
                })
                .collect();
            let trace_this = trace_on && first_pass;
            let results = sf_par::par_map(jobs, items, |k, (s, lo, planes)| {
                let mut shard_rec =
                    if trace_this { Recorder::enabled(clock) } else { Recorder::disabled() };
                let slab = planes.len();
                let prefix = format!("dev{k}/mesh{i}/window/");
                let base_cycle = (i * nz + s.start) as u64 * plane_cycles;
                let out_planes = run_chain_3d_engine_traced(
                    engine,
                    &chain,
                    nx,
                    ny,
                    slab,
                    slab,
                    planes.into_iter(),
                    &mut shard_rec,
                    &prefix,
                    base_cycle,
                    plane_cycles,
                );
                let owned: Vec<Vec<T>> =
                    out_planes.into_iter().skip(s.start - lo).take(s.len).collect();
                (s, owned, shard_rec)
            });
            let mut next = cur.clone();
            let mut shard_recs = Vec::with_capacity(shards.len());
            for (s, owned, sr) in results {
                for (j, pl) in owned.into_iter().enumerate() {
                    let z = s.start + j;
                    next.as_mut_slice()[z * plane..(z + 1) * plane].copy_from_slice(&pl);
                }
                shard_recs.push(sr);
            }
            if trace_this {
                rec.merge_shards(shard_recs);
            }
            cur = next;
            remaining -= p_eff;
            first_pass = false;
        }
        out.as_mut_slice()[i * vol..(i + 1) * vol].copy_from_slice(cur.as_slice());
    }
    charge_exchange(rec, &plan);

    let power = sf_fpga::power::fpga_power_w(dev, design) * cfg.devices as f64;
    let report = SimReport::from_plan(design, &plan.merged, niter as u64, power);
    Ok((out, report))
}

/// Schedule-only telemetry for a sharded run: per-pass spans from the
/// merged plan (pass wall-clock = slowest device, exposed exchange
/// included), first-pass spans per device on `dev{k}/pipeline`, the
/// sharded-schedule metadata, and the analytic exchange charges — without
/// streaming any numerics. The multi-device twin of
/// [`sf_fpga::profile::trace_schedule`] for paper-scale workloads: spans
/// on the `pipeline` track sum to `merged.total_cycles`.
///
/// # Errors
/// The [`MultiError`]s of [`sharded_plan`]: zero devices, more devices
/// than outermost units, or a tiled design.
pub fn trace_sharded_schedule(
    dev: &FpgaDevice,
    design: &StencilDesign,
    wl: &Workload,
    niter: u64,
    cfg: &MultiConfig,
    rec: &mut Recorder,
) -> Result<ShardedPlan, MultiError> {
    // Same collapse threshold as the single-device schedule tracer.
    const MAX_PASS_SPANS: u64 = 256;
    let plan = sharded_plan(dev, design, wl, niter, cfg)?;
    if !rec.is_enabled() {
        return Ok(plan);
    }
    annotate(rec, &plan);
    let pipe = rec.track("pipeline");
    let cpp = plan.merged.cycles_per_pass;
    let shown = plan.merged.passes.min(MAX_PASS_SPANS);
    for i in 0..shown {
        rec.span(pipe, &format!("pass {i}"), i * cpp, (i + 1) * cpp);
    }
    if plan.merged.passes > shown {
        rec.span(
            pipe,
            &format!("passes {shown}..{}", plan.merged.passes),
            shown * cpp,
            plan.merged.passes * cpp,
        );
    }
    // First pass per device: the streamed extended slab, then whatever
    // exchange its interior compute could not hide.
    for d in &plan.per_device {
        let t = rec.track(&format!("dev{}/pipeline", d.device));
        rec.span(t, &format!("stream {} units", d.extended_len), 0, d.pass_cycles);
        if d.exposed_cycles > 0 {
            rec.span(t, "exchange (exposed)", d.pass_cycles, d.pass_cycles + d.exposed_cycles);
        }
    }
    charge_exchange(rec, &plan);
    Ok(plan)
}

/// Record the sharded schedule's headline numbers as trace metadata.
fn annotate(rec: &mut Recorder, plan: &ShardedPlan) {
    use serde::Value;
    rec.set_meta("devices", Value::U64(plan.devices as u64));
    rec.set_meta("halo_units", Value::U64(plan.halo as u64));
    rec.set_meta("sharded_passes", Value::U64(plan.merged.passes));
    rec.set_meta("sharded_cycles_per_pass", Value::U64(plan.merged.cycles_per_pass));
    rec.set_meta("exchange_bytes_per_pass", Value::U64(plan.exchange_bytes_per_pass));
}

/// Multi-device sharded twin of
/// [`sf_fpga::exec_batch::simulate_batch_2d_parallel`] (scalar engine).
///
/// Output is bit-identical to the single-device executors for every
/// device count and `jobs` value; the [`SimReport`] prices the sharded
/// schedule (slowest device per pass, exchange exposure included).
///
/// # Errors
/// The [`MultiError`]s of [`sharded_plan`]: zero devices, more devices
/// than outermost units, or a tiled design.
///
/// # Panics
/// Panics on a design/input mismatch (wrong batch size, stage count) or
/// `niter == 0`, exactly like the single-device batch executors.
#[allow(clippy::too_many_arguments)]
pub fn simulate_batch_2d_sharded<T: Element, K: StencilOp2D<T> + Clone + Sync>(
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch2D<T>,
    niter: usize,
    cfg: &MultiConfig,
    jobs: usize,
    rec: &mut Recorder,
) -> Result<(Batch2D<T>, SimReport), MultiError> {
    simulate_batch_2d_sharded_core(
        &ScalarEngine,
        dev,
        design,
        stages_per_iter,
        input,
        niter,
        cfg,
        jobs,
        rec,
    )
}

/// 3D twin of [`simulate_batch_2d_sharded`].
///
/// # Errors
/// See [`simulate_batch_2d_sharded`].
///
/// # Panics
/// See [`simulate_batch_2d_sharded`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_batch_3d_sharded<T: Element, K: StencilOp3D<T> + Clone + Sync>(
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch3D<T>,
    niter: usize,
    cfg: &MultiConfig,
    jobs: usize,
    rec: &mut Recorder,
) -> Result<(Batch3D<T>, SimReport), MultiError> {
    simulate_batch_3d_sharded_core(
        &ScalarEngine,
        dev,
        design,
        stages_per_iter,
        input,
        niter,
        cfg,
        jobs,
        rec,
    )
}

/// Engine-dispatched [`simulate_batch_2d_sharded`]: scalar or vectorized
/// fast path, selected at runtime like
/// [`sf_fpga::fast::simulate_batch_2d_parallel_exec`].
///
/// # Errors
/// See [`simulate_batch_2d_sharded`].
///
/// # Panics
/// See [`simulate_batch_2d_sharded`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_batch_2d_sharded_exec<T: LaneElement, K: LaneOp2D<T> + Clone + Sync>(
    engine: ExecEngine,
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch2D<T>,
    niter: usize,
    cfg: &MultiConfig,
    jobs: usize,
    rec: &mut Recorder,
) -> Result<(Batch2D<T>, SimReport), MultiError> {
    match engine {
        ExecEngine::Scalar => simulate_batch_2d_sharded_core(
            &ScalarEngine,
            dev,
            design,
            stages_per_iter,
            input,
            niter,
            cfg,
            jobs,
            rec,
        ),
        ExecEngine::Fast => simulate_batch_2d_sharded_core(
            &FastEngine,
            dev,
            design,
            stages_per_iter,
            input,
            niter,
            cfg,
            jobs,
            rec,
        ),
    }
}

/// Engine-dispatched [`simulate_batch_3d_sharded`].
///
/// # Errors
/// See [`simulate_batch_2d_sharded`].
///
/// # Panics
/// See [`simulate_batch_2d_sharded`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_batch_3d_sharded_exec<T: LaneElement, K: LaneOp3D<T> + Clone + Sync>(
    engine: ExecEngine,
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch3D<T>,
    niter: usize,
    cfg: &MultiConfig,
    jobs: usize,
    rec: &mut Recorder,
) -> Result<(Batch3D<T>, SimReport), MultiError> {
    match engine {
        ExecEngine::Scalar => simulate_batch_3d_sharded_core(
            &ScalarEngine,
            dev,
            design,
            stages_per_iter,
            input,
            niter,
            cfg,
            jobs,
            rec,
        ),
        ExecEngine::Fast => simulate_batch_3d_sharded_core(
            &FastEngine,
            dev,
            design,
            stages_per_iter,
            input,
            niter,
            cfg,
            jobs,
            rec,
        ),
    }
}
