//! 1D slab decomposition of the outermost mesh axis across devices.
//!
//! Sharding follows the classic distributed-stencil layout: the outermost
//! axis (rows `y` in 2D, planes `z` in 3D) is cut into `K` contiguous slabs,
//! one per accelerator, balanced to within one unit. Each device owns its
//! slab and additionally *streams* a halo of [`halo_depth`] extra units on
//! each interior side, so a full pass (`p` fused iterations × `stages`
//! chained stages) over the extended slab reproduces the single-device
//! result bit-exactly on the owned units — the contamination from treating
//! the slab edge as a mesh boundary advances at most one stencil radius per
//! chained stage and therefore never reaches past the halo.

use serde::{Deserialize, Serialize};
use sf_fpga::{cycles, StencilDesign};

/// One device's contiguous slab of the outermost axis (rows in 2D, planes
/// in 3D).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shard {
    /// Device index, `0..devices`.
    pub device: usize,
    /// First owned unit (inclusive).
    pub start: usize,
    /// Number of owned units.
    pub len: usize,
}

impl Shard {
    /// One past the last owned unit.
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// Split `extent` outermost units into `devices` balanced contiguous slabs.
/// The first `extent % devices` shards get one extra unit, so shard widths
/// differ by at most one and cover the axis exactly.
///
/// # Panics
/// Panics when `devices` is zero or exceeds `extent` (an empty shard has no
/// owned units to exchange from); [`crate::plan::sharded_plan`] reports
/// these as typed [`crate::plan::MultiError`]s before partitioning.
pub fn slab_partition(extent: usize, devices: usize) -> Vec<Shard> {
    assert!(devices >= 1, "device count must be positive");
    assert!(devices <= extent, "more devices ({devices}) than outermost units ({extent})");
    let base = extent / devices;
    let extra = extent % devices;
    let mut shards = Vec::with_capacity(devices);
    let mut start = 0usize;
    for device in 0..devices {
        let len = base + usize::from(device < extra);
        shards.push(Shard { device, start, len });
        start += len;
    }
    shards
}

/// Halo depth in outermost units: how many neighbour rows/planes a shard
/// must receive before each pass so the pass stays bit-exact on owned
/// units. Equal to the pipeline-fill depth `p · stages · ⌈D/2⌉`
/// ([`sf_fpga::cycles::fill_units`]) — the same window history the fused
/// pipeline holds in flight.
pub fn halo_depth(design: &StencilDesign) -> usize {
    cycles::fill_units(design) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn balanced_partition_covers_axis() {
        let shards = slab_partition(10, 3);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0], Shard { device: 0, start: 0, len: 4 });
        assert_eq!(shards[1], Shard { device: 1, start: 4, len: 3 });
        assert_eq!(shards[2], Shard { device: 2, start: 7, len: 3 });
    }

    #[test]
    fn one_device_owns_everything() {
        let shards = slab_partition(37, 1);
        assert_eq!(shards, vec![Shard { device: 0, start: 0, len: 37 }]);
    }

    #[test]
    fn shard_per_unit_is_legal() {
        let shards = slab_partition(4, 4);
        assert!(shards.iter().all(|s| s.len == 1));
        assert_eq!(shards.last().map(Shard::end), Some(4));
    }

    #[test]
    #[should_panic(expected = "more devices")]
    fn more_devices_than_units_panics() {
        let _ = slab_partition(3, 4);
    }

    proptest! {
        #[test]
        fn partition_is_contiguous_and_balanced(
            extent in 1usize..5000,
            devices in 1usize..64,
        ) {
            prop_assume!(devices <= extent);
            let shards = slab_partition(extent, devices);
            prop_assert_eq!(shards.len(), devices);
            let mut next = 0usize;
            for (k, s) in shards.iter().enumerate() {
                prop_assert_eq!(s.device, k);
                prop_assert_eq!(s.start, next);
                prop_assert!(s.len >= 1);
                next = s.end();
            }
            prop_assert_eq!(next, extent);
            let min = shards.iter().map(|s| s.len).min().unwrap();
            let max = shards.iter().map(|s| s.len).max().unwrap();
            prop_assert!(max - min <= 1);
        }
    }
}
