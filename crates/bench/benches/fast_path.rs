//! Scalar vs lane-parallel fast path on all three paper applications.
//!
//! Both engines stream the identical window-buffer/FIFO chain and are
//! bit-exact (the conformance suite asserts it), so the only thing under
//! the stopwatch here is the cost of advancing one cell per step versus
//! `sf_simd::LANES` cells per step. The `poisson2d` group is the headline
//! number: the PR targets a ≥4× wall-clock speedup of `fast` over
//! `scalar` at validation scale, and `BENCH_pr9.json` archives the
//! `--output-format bencher` rows so later PRs regress against them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sf_fpga::design::{synthesize, ExecMode, MemKind, Workload};
use sf_fpga::{fast, ExecEngine, FpgaDevice, Recorder};
use sf_kernels::{rtm, Jacobi3D, Poisson2D, RtmStage, StencilSpec};
use sf_mesh::{Batch2D, Batch3D};

const SEED: u64 = 42;
const ENGINES: [ExecEngine; 2] = [ExecEngine::Scalar, ExecEngine::Fast];

/// Poisson 2D at validation scale (the mesh the differential suite and the
/// DSE examples run at) — the ≥4× target applies to this group.
fn bench_poisson_2d(c: &mut Criterion) {
    let dev = FpgaDevice::u280();
    let (nx, ny, niter) = (400usize, 400usize, 10usize);
    let wl = Workload::D2 { nx, ny, batch: 1 };
    let ds = synthesize(&dev, &StencilSpec::poisson(), 8, 4, ExecMode::Baseline, MemKind::Hbm, &wl)
        .unwrap();
    let input = Batch2D::<f32>::random(nx, ny, 1, SEED, -1.0, 1.0);
    let mut g = c.benchmark_group("fast_path_poisson2d_400x400");
    g.sample_size(10);
    g.throughput(Throughput::Elements((nx * ny * niter) as u64));
    for engine in ENGINES {
        g.bench_with_input(BenchmarkId::new("engine", engine), &engine, |b, &engine| {
            b.iter(|| {
                fast::simulate_2d_exec(
                    engine,
                    &dev,
                    &ds,
                    &[Poisson2D],
                    &input,
                    niter,
                    &mut Recorder::disabled(),
                )
            })
        });
    }
    g.finish();
}

fn bench_jacobi_3d(c: &mut Criterion) {
    let dev = FpgaDevice::u280();
    let (nx, ny, nz, niter) = (64usize, 64usize, 64usize, 4usize);
    let wl = Workload::D3 { nx, ny, nz, batch: 1 };
    let ds = synthesize(&dev, &StencilSpec::jacobi(), 8, 3, ExecMode::Baseline, MemKind::Hbm, &wl)
        .unwrap();
    let k = Jacobi3D::smoothing();
    let input = Batch3D::<f32>::random(nx, ny, nz, 1, SEED, -1.0, 1.0);
    let mut g = c.benchmark_group("fast_path_jacobi3d_64x64x64");
    g.sample_size(10);
    g.throughput(Throughput::Elements((nx * ny * nz * niter) as u64));
    for engine in ENGINES {
        g.bench_with_input(BenchmarkId::new("engine", engine), &engine, |b, &engine| {
            b.iter(|| {
                fast::simulate_3d_exec(
                    engine,
                    &dev,
                    &ds,
                    &[k],
                    &input,
                    niter,
                    &mut Recorder::disabled(),
                )
            })
        });
    }
    g.finish();
}

fn bench_rtm_3d(c: &mut Criterion) {
    let dev = FpgaDevice::u280();
    let (nx, ny, nz, niter) = (32usize, 32usize, 32usize, 2usize);
    let wl = Workload::D3 { nx, ny, nz, batch: 1 };
    let ds =
        synthesize(&dev, &StencilSpec::rtm(), 1, 3, ExecMode::Baseline, MemKind::Hbm, &wl).unwrap();
    let (y, rho, mu) = rtm::demo_workload(nx, ny, nz);
    let packed = rtm::pack(&y, &rho, &mu);
    let input = Batch3D::from_meshes(std::slice::from_ref(&packed));
    let stages = RtmStage::pipeline(sf_kernels::RtmParams::default());
    let mut g = c.benchmark_group("fast_path_rtm3d_32x32x32");
    g.sample_size(10);
    g.throughput(Throughput::Elements((nx * ny * nz * niter) as u64));
    for engine in ENGINES {
        g.bench_with_input(BenchmarkId::new("engine", engine), &engine, |b, &engine| {
            b.iter(|| {
                fast::simulate_3d_exec(
                    engine,
                    &dev,
                    &ds,
                    &stages,
                    &input,
                    niter,
                    &mut Recorder::disabled(),
                )
            })
        });
    }
    g.finish();
}

/// Batched Poisson through the sharded parallel path: the fast engine must
/// compose with `--jobs` sharding, not replace it.
fn bench_batch_2d(c: &mut Criterion) {
    let dev = FpgaDevice::u280();
    let (nx, ny, batch, niter) = (128usize, 64usize, 8usize, 6usize);
    let wl = Workload::D2 { nx, ny, batch };
    let ds = synthesize(
        &dev,
        &StencilSpec::poisson(),
        8,
        4,
        ExecMode::Batched { b: batch },
        MemKind::Hbm,
        &wl,
    )
    .unwrap();
    let input = Batch2D::<f32>::random(nx, ny, batch, SEED, -1.0, 1.0);
    let mut g = c.benchmark_group("fast_path_batch2d_128x64x8_jobs2");
    g.sample_size(10);
    g.throughput(Throughput::Elements((nx * ny * batch * niter) as u64));
    for engine in ENGINES {
        g.bench_with_input(BenchmarkId::new("engine", engine), &engine, |b, &engine| {
            b.iter(|| {
                fast::simulate_batch_2d_parallel_exec(
                    engine,
                    &dev,
                    &ds,
                    &[Poisson2D],
                    &input,
                    niter,
                    2,
                    &mut Recorder::disabled(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_poisson_2d, bench_jacobi_3d, bench_rtm_3d, bench_batch_2d);
criterion_main!(benches);
