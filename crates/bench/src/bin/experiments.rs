//! Experiment runner: regenerate any table or figure of the paper.
//!
//! ```text
//! experiments all              # every table and figure
//! experiments table4           # one experiment
//! experiments fig3a --json     # machine-readable output
//! ```

use sf_bench::{experiments, Experiment};

fn by_name(name: &str) -> Option<Experiment> {
    Some(match name {
        "table1" => experiments::table1(),
        "table2" => experiments::table2(),
        "table3" => experiments::table3(),
        "table4" => experiments::table4(),
        "table5" => experiments::table5(),
        "table6" => experiments::table6(),
        "fig3a" => experiments::fig3a(),
        "fig3b" => experiments::fig3b(),
        "fig3c" => experiments::fig3c(),
        "fig4a" => experiments::fig4a(),
        "fig4b" => experiments::fig4b(),
        "fig4c" => experiments::fig4c(),
        "fig5a" => experiments::fig5a(),
        "fig5b" => experiments::fig5b(),
        "model-accuracy" => experiments::model_accuracy(),
        "ablation-precision" => experiments::ablation_precision(),
        "ablation-overheads" => experiments::ablation_overheads(),
        "energy-summary" => experiments::energy_summary(),
        "ablation-device-scaling" => experiments::ablation_device_scaling(),
        _ => return None,
    })
}

const USAGE: &str = "usage: experiments <all|table1|table2|table3|table4|table5|table6|fig3a|fig3b|fig3c|fig4a|fig4b|fig4c|fig5a|fig5b|model-accuracy|ablation-precision|ablation-overheads> [--json]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let md = args.iter().any(|a| a == "--md");
    let names: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if names.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let exps: Vec<Experiment> = if names.iter().any(|n| n.as_str() == "all") {
        experiments::all()
    } else {
        names
            .iter()
            .map(|n| {
                by_name(n).unwrap_or_else(|| {
                    eprintln!("unknown experiment '{n}'\n{USAGE}");
                    std::process::exit(2);
                })
            })
            .collect()
    };
    if json {
        println!("{}", serde_json::to_string_pretty(&exps).expect("serializable"));
    } else if md {
        for e in &exps {
            println!("{}", e.to_markdown());
        }
    } else {
        for e in &exps {
            println!("{}", e.render());
        }
    }
}
