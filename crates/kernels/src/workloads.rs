//! Named workload generators.
//!
//! The paper's evaluation draws its inputs from three workload classes:
//! smooth PDE fields (Poisson/Jacobi steady-state solves), batches of small
//! independent problems (the financial motivation of §IV-B), and seismic
//! wavefields (RTM). These generators produce deterministic instances of
//! each, shared by the examples, benches and tests so every consumer
//! exercises the same physics-plausible data.

use crate::rtm::{self, RtmState};
use sf_mesh::{Batch2D, Batch3D, Mesh2D, Mesh3D};

/// A smooth 2D harmonic field `sin(2πfx·x/nx)·cos(2πfy·y/ny)` — a classic
/// Poisson right-hand side with non-trivial boundary values.
pub fn harmonic_2d(nx: usize, ny: usize, fx: f32, fy: f32) -> Mesh2D<f32> {
    use std::f32::consts::TAU;
    Mesh2D::from_fn(nx, ny, |x, y| {
        (TAU * fx * x as f32 / nx as f32).sin() * (TAU * fy * y as f32 / ny as f32).cos()
    })
}

/// A hot-spot field: zero everywhere, `amplitude` in a centered square of
/// `side` cells — the canonical diffusion/steady-state test.
pub fn hotspot_2d(nx: usize, ny: usize, side: usize, amplitude: f32) -> Mesh2D<f32> {
    let (cx, cy) = (nx / 2, ny / 2);
    let h = side / 2;
    Mesh2D::from_fn(nx, ny, |x, y| {
        if x.abs_diff(cx) <= h && y.abs_diff(cy) <= h {
            amplitude
        } else {
            0.0
        }
    })
}

/// A 3D Gaussian blob centered in the mesh with width `sigma` (cells).
pub fn gaussian_3d(nx: usize, ny: usize, nz: usize, sigma: f32, amplitude: f32) -> Mesh3D<f32> {
    let (cx, cy, cz) = (nx as f32 / 2.0, ny as f32 / 2.0, nz as f32 / 2.0);
    let s2 = 2.0 * sigma * sigma;
    Mesh3D::from_fn(nx, ny, nz, |x, y, z| {
        let r2 = (x as f32 - cx).powi(2) + (y as f32 - cy).powi(2) + (z as f32 - cz).powi(2);
        amplitude * (-r2 / s2).exp()
    })
}

/// A batch of small 2D problems with per-instrument parameters drawn
/// deterministically — the §IV-B financial workload: "a large number of
/// smaller meshes … as is the case in financial applications".
pub fn instrument_book_2d(nx: usize, ny: usize, b: usize, seed: u64) -> Batch2D<f32> {
    let meshes: Vec<_> = (0..b)
        .map(|i| {
            // each instrument: a smooth payoff-like surface with its own
            // strike offset and volatility-flavoured noise
            let base = Mesh2D::<f32>::random(nx, ny, seed.wrapping_add(i as u64), 0.0, 0.05);
            let strike = 0.5 + 0.4 * (i as f32 / b.max(1) as f32);
            Mesh2D::from_fn(nx, ny, |x, y| {
                let s = x as f32 / nx as f32;
                (s - strike).max(0.0) + base.get(x, y)
            })
        })
        .collect();
    Batch2D::from_meshes(&meshes)
}

/// A batch of 3D Gaussian shots with varying widths — the RTM batched
/// workload shape (many small independent solves).
pub fn shot_batch_3d(n: usize, b: usize, seed: u64) -> Batch3D<f32> {
    let meshes: Vec<_> = (0..b)
        .map(|i| {
            let sigma = 2.0 + (seed.wrapping_add(i as u64) % 5) as f32;
            gaussian_3d(n, n, n, sigma, 1.0)
        })
        .collect();
    Batch3D::from_meshes(&meshes)
}

/// The RTM seismic workload: Gaussian pressure pulse, smooth ρ/μ earth
/// model (re-exported from [`crate::rtm::demo_workload`]).
pub fn seismic_shot(
    nx: usize,
    ny: usize,
    nz: usize,
) -> (Mesh3D<RtmState>, Mesh3D<f32>, Mesh3D<f32>) {
    rtm::demo_workload(nx, ny, nz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_mesh::norms;

    #[test]
    fn harmonic_is_bounded_and_smooth() {
        let m = harmonic_2d(64, 48, 2.0, 3.0);
        assert!(norms::max_norm_2d(&m) <= 1.0 + 1e-6);
        // neighboring cells differ by less than the wavelength bound
        for y in 0..48 {
            for x in 1..64 {
                let d = (m.get(x, y) - m.get(x - 1, y)).abs();
                assert!(d < 0.5, "jump {d} at ({x},{y})");
            }
        }
    }

    #[test]
    fn hotspot_geometry() {
        let m = hotspot_2d(32, 32, 6, 9.0);
        assert_eq!(m.get(16, 16), 9.0);
        assert_eq!(m.get(13, 16), 9.0);
        assert_eq!(m.get(12, 16), 0.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn gaussian_peaks_at_center() {
        let m = gaussian_3d(24, 24, 24, 3.0, 2.0);
        let c = m.get(12, 12, 12);
        assert!((c - 2.0).abs() < 0.2);
        assert!(m.get(0, 0, 0) < 0.01);
        assert!(m.all_finite());
    }

    #[test]
    fn instrument_book_is_deterministic_and_varied() {
        let a = instrument_book_2d(40, 20, 8, 7);
        let b = instrument_book_2d(40, 20, 8, 7);
        assert_eq!(a, b);
        assert_ne!(a.mesh(0), a.mesh(7), "instruments must differ");
        assert!(a.as_slice().iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn shot_batch_shapes() {
        let s = shot_batch_3d(16, 3, 1);
        assert_eq!(s.batch(), 3);
        assert_eq!((s.nx(), s.ny(), s.nz()), (16, 16, 16));
    }

    #[test]
    fn seismic_shot_reexport() {
        let (y, rho, mu) = seismic_shot(10, 10, 10);
        assert_eq!(y.len(), 1000);
        assert!(rho.all_finite() && mu.all_finite());
    }
}
