//! Predicted-vs-simulated cycle divergence — the paper's model-accuracy
//! claim (predictions within ±15 % of achieved) turned into a continuous,
//! per-run invariant instead of a one-off table.

use serde::{Deserialize, Serialize};

/// Cycle counts from the analytic model and from the simulated schedule
/// for the same (device, design, workload) run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Divergence {
    pub predicted_cycles: u64,
    pub simulated_cycles: u64,
}

impl Divergence {
    pub fn new(predicted_cycles: u64, simulated_cycles: u64) -> Self {
        Divergence { predicted_cycles, simulated_cycles }
    }

    /// Signed divergence in percent: positive when the model
    /// under-predicts (simulation ran longer than predicted).
    pub fn pct(&self) -> f64 {
        if self.predicted_cycles == 0 {
            return if self.simulated_cycles == 0 { 0.0 } else { f64::INFINITY };
        }
        (self.simulated_cycles as f64 - self.predicted_cycles as f64) / self.predicted_cycles as f64
            * 100.0
    }

    pub fn abs_pct(&self) -> f64 {
        self.pct().abs()
    }

    /// True when the divergence is within `tol_pct` percent — the paper's
    /// headline tolerance is 15.0.
    pub fn within(&self, tol_pct: f64) -> bool {
        self.abs_pct() <= tol_pct
    }

    /// One-line human summary, emitted after every simulated run.
    pub fn summary(&self) -> String {
        format!(
            "model divergence: predicted {} cycles, simulated {} cycles ({:+.2}%)",
            self.predicted_cycles,
            self.simulated_cycles,
            self.pct()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_is_zero() {
        let d = Divergence::new(1000, 1000);
        assert_eq!(d.pct(), 0.0);
        assert!(d.within(15.0));
        assert!(d.within(0.0));
    }

    #[test]
    fn sign_convention() {
        // Simulation slower than prediction => positive.
        assert!(Divergence::new(1000, 1100).pct() > 0.0);
        assert!(Divergence::new(1000, 900).pct() < 0.0);
    }

    #[test]
    fn tolerance_boundary() {
        let d = Divergence::new(1000, 1150);
        assert!((d.pct() - 15.0).abs() < 1e-12);
        assert!(d.within(15.0));
        assert!(!Divergence::new(1000, 1151).within(15.0));
    }

    #[test]
    fn zero_prediction_guard() {
        assert_eq!(Divergence::new(0, 0).pct(), 0.0);
        assert!(Divergence::new(0, 5).pct().is_infinite());
        assert!(!Divergence::new(0, 5).within(15.0));
    }

    #[test]
    fn summary_mentions_both_counts() {
        let s = Divergence::new(200, 230).summary();
        assert!(s.contains("200"));
        assert!(s.contains("230"));
        assert!(s.contains('%'));
    }
}
