//! The inter-device link model: a latency + bandwidth pipe between
//! neighbouring accelerators.
//!
//! Both deployment styles the paper's platform supports are covered by the
//! same two-parameter model, evaluated in *design clock cycles* so link
//! time composes directly with the streaming cycle plan:
//!
//! * **Aurora-style** serial links (direct QSFP28 board-to-board): low
//!   latency, full line rate.
//! * **PCIe-style** staging through the host: much higher setup latency
//!   and a lower effective per-cycle payload.
//!
//! A transfer of `B` bytes costs `latency + ⌈B / bytes_per_cycle⌉` cycles.
//! Links are modeled full-duplex: the send of a halo overlaps the
//! neighbour's matching receive, so each exchange is charged once, at the
//! receiver.

use serde::{Deserialize, Serialize};

/// Latency/bandwidth description of the device-to-device interconnect.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Fixed per-message setup cost in design-clock cycles (protocol
    /// framing, DMA descriptor setup, host round-trip for PCIe staging).
    pub latency_cycles: u64,
    /// Payload bytes the link moves per design-clock cycle once streaming.
    pub bytes_per_cycle: u64,
}

impl LinkModel {
    /// Direct Aurora-style serial link: ≈100 Gbit/s at a 300 MHz design
    /// clock (64 B/cycle ≈ 19 GB/s per direction) with short framing
    /// latency.
    pub fn aurora() -> Self {
        Self { latency_cycles: 200, bytes_per_cycle: 64 }
    }

    /// PCIe-style host-staged exchange: each message pays a host round
    /// trip, and staging through host memory halves the effective rate.
    pub fn pcie() -> Self {
        Self { latency_cycles: 1500, bytes_per_cycle: 32 }
    }

    /// Parse a CLI preset name (`aurora` or `pcie`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "aurora" => Some(Self::aurora()),
            "pcie" => Some(Self::pcie()),
            _ => None,
        }
    }

    /// Cycles to move one `bytes`-sized halo message across the link.
    /// Zero-byte transfers are free — no message is sent at all.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        self.latency_cycles + bytes.div_ceil(self.bytes_per_cycle.max(1))
    }
}

impl Default for LinkModel {
    /// Defaults to the direct [`LinkModel::aurora`] link, the paper
    /// platform's native multi-board interconnect.
    fn default() -> Self {
        Self::aurora()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_is_latency_plus_ceil_bandwidth() {
        let l = LinkModel { latency_cycles: 100, bytes_per_cycle: 64 };
        assert_eq!(l.transfer_cycles(0), 0);
        assert_eq!(l.transfer_cycles(1), 101);
        assert_eq!(l.transfer_cycles(64), 101);
        assert_eq!(l.transfer_cycles(65), 102);
        assert_eq!(l.transfer_cycles(6400), 200);
    }

    #[test]
    fn zero_bandwidth_degrades_to_byte_per_cycle() {
        let l = LinkModel { latency_cycles: 10, bytes_per_cycle: 0 };
        assert_eq!(l.transfer_cycles(8), 18);
    }

    #[test]
    fn presets_parse_and_rank_sensibly() {
        assert_eq!(LinkModel::parse("aurora"), Some(LinkModel::aurora()));
        assert_eq!(LinkModel::parse("pcie"), Some(LinkModel::pcie()));
        assert_eq!(LinkModel::parse("infiniband"), None);
        // PCIe staging must cost more than a direct link for any message
        let bytes = 4096;
        assert!(
            LinkModel::pcie().transfer_cycles(bytes) > LinkModel::aurora().transfer_cycles(bytes)
        );
        assert_eq!(LinkModel::default(), LinkModel::aurora());
    }
}
