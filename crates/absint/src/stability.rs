//! Von Neumann stability analysis of linear constant-coefficient stencils.
//!
//! For an update `u'[x] = Σ_o c_o · u[x+o]` on a periodic mesh, the Fourier
//! mode `e^{iθ·x}` is an eigenvector with eigenvalue (the *symbol*)
//!
//! ```text
//! g(θ) = Σ_o c_o · e^{i θ·o},       θ ∈ [0, 2π)^dims
//! ```
//!
//! and the iteration is stable iff `max_θ |g(θ)| ≤ 1`: each pipeline pass
//! multiplies the amplitude of the worst mode by `max|g|`, so an unrolled
//! design running `p` passes per mesh traversal amplifies it by `max|g|^p`
//! before a single result leaves the chain.
//!
//! The coefficients are not declared anywhere — they are *extracted from
//! the kernel itself* by impulse probing its generic update at `V = f32`:
//! `c_o = update(δ_o)`. Linearity is verified, not assumed: the probe
//! rejects kernels with a nonzero affine part (`update(0) ≠ 0`) and kernels
//! that fail superposition on a deterministic pseudo-random field, reporting
//! [`StabilityVerdict::NotApplicable`] instead of a wrong verdict.

use sf_kernels::{AbstractOp2D, AbstractOp3D};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Outcome of the stability analysis.
#[derive(Clone, Debug, PartialEq)]
pub enum StabilityVerdict {
    /// The kernel is not a linear constant-coefficient scalar stencil; the
    /// scalar symbol does not apply.
    NotApplicable {
        /// Why the analysis does not apply.
        reason: String,
    },
    /// `max|g| ≤ 1 + tol`: iterating cannot amplify any Fourier mode.
    Stable {
        /// The sampled maximum of `|g(θ)|`.
        max_amplification: f64,
    },
    /// `max|g| > 1 + tol`: the iteration diverges.
    Unstable {
        /// The sampled maximum of `|g(θ)|`.
        max_amplification: f64,
        /// The frequency `(θx, θy, θz)` attaining it.
        worst_freq: [f64; 3],
    },
}

impl StabilityVerdict {
    /// The sampled `max|g|`, when the analysis applied.
    pub fn max_amplification(&self) -> Option<f64> {
        match self {
            StabilityVerdict::NotApplicable { .. } => None,
            StabilityVerdict::Stable { max_amplification }
            | StabilityVerdict::Unstable { max_amplification, .. } => Some(*max_amplification),
        }
    }
}

/// Relative tolerance for the linearity (superposition) check.
const LINEARITY_TOL: f64 = 1e-4;

/// A kernel evaluation closure: applies the update function to the field
/// given by the inner accessor (offset → value).
type KernelEval<'a> = dyn Fn(&dyn Fn(i32, i32, i32) -> f32) -> f32 + 'a;

/// Deterministic pseudo-random field values in roughly `[-1, 1]` (LCG —
/// reproducible with no dependencies).
fn pseudo(seed: u64, dx: i32, dy: i32, dz: i32) -> f32 {
    let mut s = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add((dx as u64).wrapping_mul(0x9e3779b97f4a7c15))
        .wrapping_add((dy as u64).wrapping_mul(0xc2b2ae3d27d4eb4f))
        .wrapping_add((dz as u64).wrapping_mul(0x165667b19e3779f9));
    s ^= s >> 33;
    s = s.wrapping_mul(0xff51afd7ed558ccd);
    s ^= s >> 33;
    ((s >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
}

/// Extract `c_o = update(δ_o)` for every offset the kernel reads, after
/// verifying `update(0) = 0` and superposition. `None` when the kernel is
/// not (affinely-zero) linear.
fn probe_coefficients(
    offsets: &BTreeSet<(i32, i32, i32)>,
    eval: &KernelEval<'_>,
) -> Option<BTreeMap<(i32, i32, i32), f64>> {
    let zero = eval(&|_, _, _| 0.0f32) as f64;
    if zero != 0.0 {
        return None; // affine part: u' = c + Σ... — not the linear form
    }
    let mut coeffs = BTreeMap::new();
    for &o in offsets {
        let c = eval(&move |dx, dy, dz| if (dx, dy, dz) == o { 1.0f32 } else { 0.0f32 });
        coeffs.insert(o, c as f64);
    }
    // superposition on two deterministic random fields
    for seed in [1u64, 2u64] {
        let field = move |dx: i32, dy: i32, dz: i32| pseudo(seed, dx, dy, dz);
        let direct = eval(&field) as f64;
        let reconstructed: f64 =
            coeffs.iter().map(|(&(dx, dy, dz), &c)| c * field(dx, dy, dz) as f64).sum();
        let scale = coeffs.values().map(|c| c.abs()).sum::<f64>().max(1.0);
        if (direct - reconstructed).abs() > LINEARITY_TOL * scale {
            return None;
        }
    }
    Some(coeffs)
}

/// Sample `max_θ |g(θ)|` on an `n`-per-dimension frequency grid (always
/// containing `θ = 0` and, for even `n`, the Nyquist mode `θ = π` — the
/// classic worst case for diffusive stencils). Returns the max and the
/// frequency attaining it.
fn symbol_max(coeffs: &BTreeMap<(i32, i32, i32), f64>, dims: usize, n: usize) -> (f64, [f64; 3]) {
    let n = n.max(2);
    let step = core::f64::consts::TAU / n as f64;
    let mut best = (0.0f64, [0.0f64; 3]);
    let samples_z = if dims >= 3 { n } else { 1 };
    for kx in 0..n {
        for ky in 0..n {
            for kz in 0..samples_z {
                let th = [kx as f64 * step, ky as f64 * step, kz as f64 * step];
                let (mut re, mut im) = (0.0f64, 0.0f64);
                for (&(dx, dy, dz), &c) in coeffs {
                    let phase = th[0] * dx as f64 + th[1] * dy as f64 + th[2] * dz as f64;
                    re += c * phase.cos();
                    im += c * phase.sin();
                }
                let mag = (re * re + im * im).sqrt();
                if mag > best.0 {
                    best = (mag, th);
                }
            }
        }
    }
    best
}

fn verdict(
    coeffs: Option<BTreeMap<(i32, i32, i32), f64>>,
    dims: usize,
    freq_samples: usize,
    tol: f64,
) -> StabilityVerdict {
    let Some(coeffs) = coeffs else {
        return StabilityVerdict::NotApplicable {
            reason: "kernel is not linear constant-coefficient (impulse probe failed \
                     zero-preservation or superposition)"
                .into(),
        };
    };
    let (max_amplification, worst_freq) = symbol_max(&coeffs, dims, freq_samples);
    if max_amplification > 1.0 + tol {
        StabilityVerdict::Unstable { max_amplification, worst_freq }
    } else {
        StabilityVerdict::Stable { max_amplification }
    }
}

/// Stability analysis of a 2D scalar kernel over its probed footprint.
pub fn analyze_2d<K: AbstractOp2D + ?Sized>(
    op: &K,
    offsets: &BTreeSet<(i32, i32, i32)>,
    freq_samples: usize,
    tol: f64,
) -> StabilityVerdict {
    let eval = |field: &dyn Fn(i32, i32, i32) -> f32| -> f32 {
        op.update::<f32, _>(&|dx, dy| field(dx, dy, 0))
    };
    verdict(probe_coefficients(offsets, &eval), 2, freq_samples, tol)
}

/// Stability analysis of a 3D scalar kernel over its probed footprint.
pub fn analyze_3d<K: AbstractOp3D + ?Sized>(
    op: &K,
    offsets: &BTreeSet<(i32, i32, i32)>,
    freq_samples: usize,
    tol: f64,
) -> StabilityVerdict {
    let eval = |field: &dyn Fn(i32, i32, i32) -> f32| -> f32 {
        op.update::<f32, _>(&|dx, dy, dz| field(dx, dy, dz))
    };
    verdict(probe_coefficients(offsets, &eval), 3, freq_samples, tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint;
    use sf_kernels::{Jacobi3D, Poisson2D, StarStencil2D};

    #[test]
    fn poisson_is_stable_with_unit_symbol_at_dc() {
        let f = footprint::extract_2d(&Poisson2D);
        let v = analyze_2d(&Poisson2D, &f.offsets, 16, 1e-4);
        match v {
            StabilityVerdict::Stable { max_amplification } => {
                // coefficients ≥ 0 summing to 1 → max|g| = g(0) = 1
                assert!((max_amplification - 1.0).abs() < 1e-9, "{max_amplification}");
            }
            other => panic!("expected stable, got {other:?}"),
        }
    }

    #[test]
    fn jacobi_smoothing_is_stable() {
        let k = Jacobi3D::smoothing();
        let f = footprint::extract_3d(&k);
        let v = analyze_3d(&k, &f.offsets, 16, 1e-4);
        assert!(matches!(v, StabilityVerdict::Stable { .. }), "{v:?}");
    }

    #[test]
    fn amplifying_coefficients_are_unstable_at_dc() {
        // all-0.5 coefficients: g(0) = 3.5 — diverges immediately
        let k = Jacobi3D::with_coefficients([0.5; 7]);
        let f = footprint::extract_3d(&k);
        match analyze_3d(&k, &f.offsets, 16, 1e-4) {
            StabilityVerdict::Unstable { max_amplification, .. } => {
                assert!((max_amplification - 3.5).abs() < 1e-6, "{max_amplification}");
            }
            other => panic!("expected unstable, got {other:?}"),
        }
    }

    #[test]
    fn overdriven_heat_step_is_unstable_at_nyquist() {
        // u + α∇²u with α = 0.8 > 1/4: g(π,π) = 1 − 8α = −5.4
        let k = StarStencil2D::laplace5(0.8, 1.0 - 4.0 * 0.8);
        let f = footprint::extract_2d(&k);
        match analyze_2d(&k, &f.offsets, 16, 1e-4) {
            StabilityVerdict::Unstable { max_amplification, worst_freq } => {
                assert!((max_amplification - 5.4).abs() < 1e-6, "{max_amplification}");
                // worst mode is the Nyquist checkerboard
                assert!((worst_freq[0] - core::f64::consts::PI).abs() < 1e-9);
            }
            other => panic!("expected unstable, got {other:?}"),
        }
    }

    #[test]
    fn stable_heat_step_under_cfl_is_accepted() {
        // α = 0.2 ≤ 1/4: g ∈ [1−8α, 1] = [-0.6, 1]
        let k = StarStencil2D::laplace5(0.2, 1.0 - 4.0 * 0.2);
        let f = footprint::extract_2d(&k);
        assert!(matches!(analyze_2d(&k, &f.offsets, 16, 1e-4), StabilityVerdict::Stable { .. }));
    }

    #[test]
    fn nonlinear_kernel_is_not_applicable() {
        struct Square;
        impl AbstractOp2D for Square {
            fn update<V: sf_kernels::AbstractValue, F: Fn(i32, i32) -> V>(&self, at: &F) -> V {
                at(0, 0) * at(0, 0)
            }
        }
        let f = footprint::extract_2d(&Square);
        assert!(matches!(
            analyze_2d(&Square, &f.offsets, 16, 1e-4),
            StabilityVerdict::NotApplicable { .. }
        ));
    }

    #[test]
    fn affine_kernel_is_not_applicable() {
        struct Affine;
        impl AbstractOp2D for Affine {
            fn update<V: sf_kernels::AbstractValue, F: Fn(i32, i32) -> V>(&self, at: &F) -> V {
                at(0, 0) + V::constant(1.0)
            }
        }
        let f = footprint::extract_2d(&Affine);
        assert!(matches!(
            analyze_2d(&Affine, &f.offsets, 16, 1e-4),
            StabilityVerdict::NotApplicable { .. }
        ));
    }
}
