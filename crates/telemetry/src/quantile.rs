//! HDR-style quantile sketch for cross-run noise characterisation.
//!
//! Cross-run consumers (the `sf-report` regression gate) need quantiles of
//! cycle counts over many runs without keeping every sample. This sketch
//! uses the HDR-histogram bucketing scheme: values below 2·2^P are exact,
//! larger values share log₂-spaced buckets with 2^P sub-buckets per octave,
//! bounding the relative error of any reported quantile at 2^-P (≈ 1.6 %
//! for the P = 6 used here) — comfortably inside the 5 % regression
//! tolerance the gate defaults to.
//!
//! Everything is integer arithmetic over a `BTreeMap`, so recording order
//! never changes a reported quantile: merging two sketches is a plain
//! counter sum, which keeps multi-shard and multi-run aggregation
//! deterministic.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Sub-bucket precision in bits: 2^P linear sub-buckets per octave.
const P: u32 = 6;

/// A mergeable, deterministic quantile sketch over `u64` samples.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct QuantileSketch {
    /// Bucket index → sample count.
    counts: BTreeMap<String, u64>,
    /// Total samples recorded.
    count: u64,
    /// Exact minimum sample (0 when empty).
    min: u64,
    /// Exact maximum sample.
    max: u64,
    /// Saturating sum of samples (for the mean).
    sum: u64,
}

/// Bucket index for a value: identity below `2^(P+1)`, otherwise
/// `(msb - P) << P | top-P-bits-after-the-msb`, which is strictly
/// monotone in `v`.
fn bucket(v: u64) -> u64 {
    if v < (1 << (P + 1)) {
        return v;
    }
    let msb = 63 - v.leading_zeros() as u64;
    let shift = msb - P as u64;
    (shift << P) + (v >> shift)
}

/// Lower bound of the value range covered by `bucket(v) == idx` — the
/// sketch's representative for every sample in the bucket. Reported
/// quantiles therefore never over-estimate.
fn bucket_low(idx: u64) -> u64 {
    if idx < (1 << (P + 1)) {
        return idx;
    }
    // For v ≥ 2^(P+1): idx = (shift << P) + (v >> shift) with
    // v >> shift ∈ [2^P, 2^(P+1)), so the sub-bucket carries one extra
    // octave bit into the shift field: idx >> P = shift + 1.
    let shift = (idx >> P) - 1;
    let base = (idx & ((1 << P) - 1)) + (1 << P);
    base << shift
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        *self.counts.entry(bucket(v).to_string()).or_insert(0) += 1;
    }

    /// Merge another sketch into this one (a pure counter sum).
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (k, v) in &other.counts {
            *self.counts.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact minimum sample; 0 for an empty sketch.
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Exact maximum sample; 0 for an empty sketch.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (0.0 when empty; never NaN).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// The `q`-quantile (`q` in `[0, 1]`), resolved to the lower bound of
    /// the bucket holding the rank-`⌈q·count⌉` sample. Exact at the
    /// extremes: `q = 0` returns `min`, `q = 1` returns `max`. Returns 0
    /// for an empty sketch; out-of-range or non-finite `q` is clamped.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_finite() { q.clamp(0.0, 1.0) } else { 1.0 };
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        // BTreeMap orders keys lexicographically; bucket indices must be
        // compared numerically, so collect and sort by value.
        let mut buckets: Vec<(u64, u64)> = self
            .counts
            .iter()
            .filter_map(|(k, v)| k.parse::<u64>().ok().map(|i| (i, *v)))
            .collect();
        buckets.sort_unstable();
        for (idx, n) in buckets {
            seen += n;
            if seen >= rank {
                return bucket_low(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median shorthand.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile shorthand.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile shorthand.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_is_all_zero() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(!s.mean().is_nan());
    }

    #[test]
    fn small_values_are_exact() {
        let mut s = QuantileSketch::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            s.record(v);
        }
        assert_eq!(s.p50(), 5);
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(1.0), 10);
        assert_eq!(s.quantile(0.9), 9);
        assert!((s.mean() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn large_values_within_relative_error() {
        let mut s = QuantileSketch::new();
        // cycle-count-scale samples
        let samples: Vec<u64> = (0..1000).map(|i| 4_000_000 + i * 1000).collect();
        for &v in &samples {
            s.record(v);
        }
        let p50 = s.p50();
        let exact = samples[499];
        let rel = (p50 as f64 - exact as f64).abs() / exact as f64;
        assert!(rel < 0.02, "p50 {p50} vs exact {exact} (rel {rel})");
        assert_eq!(s.max(), *samples.last().unwrap());
        assert_eq!(s.min(), samples[0]);
    }

    #[test]
    fn quantiles_never_overestimate_max_or_underestimate_min() {
        let mut s = QuantileSketch::new();
        for v in [17u64, 170_003, 99_999_999_999] {
            s.record(v);
        }
        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0] {
            let x = s.quantile(q);
            assert!(x >= s.min() && x <= s.max(), "q={q} → {x}");
        }
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut all = QuantileSketch::new();
        for v in 0..500u64 {
            let v = v * 7919;
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        // merging an empty sketch changes nothing
        let snapshot = a.clone();
        a.merge(&QuantileSketch::new());
        assert_eq!(a, snapshot);
    }

    #[test]
    fn degenerate_quantile_inputs_are_clamped() {
        let mut s = QuantileSketch::new();
        s.record(42);
        assert_eq!(s.quantile(-3.0), 42);
        assert_eq!(s.quantile(7.0), 42);
        assert_eq!(s.quantile(f64::NAN), 42);
        assert_eq!(s.quantile(f64::INFINITY), 42);
    }

    #[test]
    fn serde_roundtrip() {
        let mut s = QuantileSketch::new();
        for v in [3u64, 999, 123_456_789] {
            s.record(v);
        }
        let json = serde_json::to_string(&s).unwrap_or_default();
        let back: QuantileSketch = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.p50(), s.p50());
    }

    #[test]
    fn bucket_is_monotone_across_the_exact_boundary() {
        let mut prev = 0;
        for v in 0..100_000u64 {
            let b = bucket(v);
            assert!(b >= prev, "bucket must be monotone at {v}");
            prev = b;
            assert!(bucket_low(b) <= v, "lower bound exceeds value at {v}");
        }
    }
}
