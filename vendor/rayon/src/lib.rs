//! Vendored stand-in for the `rayon` parallel-iterator API surface this
//! workspace uses. Execution is sequential — the target container exposes a
//! single hardware thread, so a work-stealing pool would add overhead for
//! nothing — but the adapter types keep call sites source-compatible with
//! real rayon (`par_chunks_mut`, `into_par_iter`, `enumerate`, `map`,
//! `for_each`, `collect`), so swapping the real crate back in is a
//! one-line manifest change.

use core::ops::Range;

/// Iterator adapter standing in for rayon's parallel iterators.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    pub fn enumerate(self) -> ParIter<core::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> ParIter<core::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<core::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    pub fn count(self) -> usize {
        self.0.count()
    }
}

/// `[T]::par_chunks_mut` (subset of `rayon::slice::ParallelSliceMut`).
pub trait ParallelSliceMut<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<core::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<core::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(chunk_size))
    }
}

/// `.par_iter()` over shared slices (subset of `rayon::slice::ParallelSlice`).
pub trait ParallelSlice<T> {
    fn par_iter(&self) -> ParIter<core::slice::Iter<'_, T>>;
    fn par_chunks(&self, chunk_size: usize) -> ParIter<core::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<core::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }
    fn par_chunks(&self, chunk_size: usize) -> ParIter<core::slice::Chunks<'_, T>> {
        ParIter(self.chunks(chunk_size))
    }
}

/// `into_par_iter()` (subset of `rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = Range<usize>;
    fn into_par_iter(self) -> ParIter<Range<usize>> {
        ParIter(self)
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

pub mod prelude {
    pub use super::{IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut};
}

pub mod iter {
    pub use super::{IntoParallelIterator, ParIter};
}

pub mod slice {
    pub use super::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_enumerate_for_each() {
        let mut data = vec![0u32; 12];
        data.par_chunks_mut(4).enumerate().for_each(|(i, chunk)| {
            for c in chunk.iter_mut() {
                *c = i as u32;
            }
        });
        assert_eq!(data, [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn range_map_collect() {
        let v: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(v, [0, 1, 4, 9, 16]);
    }
}
