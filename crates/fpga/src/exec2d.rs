//! 2D executors: baseline, batched and tiled execution of a synthesized
//! design, producing both the numeric result (bit-exact vs the golden
//! reference) and a [`SimReport`].
//!
//! * [`simulate_2d`] — streams every cell through the window-buffer chain
//!   (use for validation-scale workloads).
//! * [`estimate_2d`] — timing/power only, for paper-scale workloads
//!   (60 000 iterations on 400×400 meshes would be pointless to stream
//!   cell by cell — the cycle plan is closed-form and exact either way).

use crate::cycles;
use crate::design::{ExecMode, StencilDesign, Workload};
use crate::device::FpgaDevice;
use crate::error::ExecError;
use crate::power;
use crate::profile;
use crate::report::SimReport;
use crate::window::{run_chain_2d_engine_traced, Engine2D, ScalarEngine};
use sf_kernels::StencilOp2D;
use sf_mesh::{Batch2D, Element, Mesh2D, TileGrid1D};
use sf_telemetry::Recorder;

/// Timing/power estimate for a workload without executing the numerics.
///
/// # Errors
/// [`ExecError::ShapeMismatch`] if the workload is not 2D.
pub fn estimate_2d(
    dev: &FpgaDevice,
    design: &StencilDesign,
    wl: &Workload,
    niter: u64,
) -> Result<SimReport, ExecError> {
    if !matches!(wl, Workload::D2 { .. }) {
        return Err(ExecError::ShapeMismatch {
            detail: "2D estimator needs a 2D workload".to_string(),
        });
    }
    let plan = cycles::plan(dev, design, wl, niter);
    Ok(SimReport::from_plan(design, &plan, niter, power::fpga_power_w(dev, design)))
}

/// Execute `niter` iterations of `stages_per_iter` on a (batch of) 2D
/// mesh(es) through the design's dataflow pipeline. Returns the result and
/// the report.
///
/// ```
/// use sf_fpga::design::{synthesize, ExecMode, MemKind, Workload};
/// use sf_fpga::{exec2d, FpgaDevice};
/// use sf_kernels::{reference, Poisson2D, StencilSpec};
/// use sf_mesh::{norms, Mesh2D};
///
/// let dev = FpgaDevice::u280();
/// let wl = Workload::D2 { nx: 40, ny: 20, batch: 1 };
/// let ds = synthesize(&dev, &StencilSpec::poisson(), 8, 4,
///                     ExecMode::Baseline, MemKind::Hbm, &wl).unwrap();
/// let m = Mesh2D::<f32>::random(40, 20, 1, -1.0, 1.0);
/// let (out, report) = exec2d::simulate_mesh_2d(&dev, &ds, &[Poisson2D], &m, 8);
/// // bit-exact against the golden reference
/// let golden = reference::run_2d(&Poisson2D, &m, 8);
/// assert!(norms::bit_equal(out.as_slice(), golden.as_slice()));
/// assert!(report.total_cycles > 0);
/// ```
///
/// # Panics
/// Panics if the design mode disagrees with the input batch (e.g. a
/// `Batched{b}` design fed a different batch size, or a tiled design fed a
/// batch).
pub fn simulate_2d<T: Element, K: StencilOp2D<T> + Clone>(
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch2D<T>,
    niter: usize,
) -> (Batch2D<T>, SimReport) {
    simulate_2d_traced(dev, design, stages_per_iter, input, niter, &mut Recorder::disabled())
}

/// [`simulate_2d`] with telemetry: emits the schedule trace
/// ([`profile::trace_schedule`] — per-pass/per-tile spans, AXI channel
/// utilisation, stall attribution) plus behavioral window-buffer events
/// (fill gauges, primed/drain instants) for the first pass. The schedule
/// repeats identically every pass, so later passes stream untraced.
pub fn simulate_2d_traced<T: Element, K: StencilOp2D<T> + Clone>(
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch2D<T>,
    niter: usize,
    rec: &mut Recorder,
) -> (Batch2D<T>, SimReport) {
    simulate_2d_core(&ScalarEngine, dev, design, stages_per_iter, input, niter, rec)
}

/// [`simulate_2d_traced`] for any [`Engine2D`]: the pass loop, mode
/// dispatch and plan accounting shared by the scalar and fast paths.
pub(crate) fn simulate_2d_core<T: Element, K: Clone, E: Engine2D<T, K>>(
    engine: &E,
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch2D<T>,
    niter: usize,
    rec: &mut Recorder,
) -> (Batch2D<T>, SimReport) {
    assert!(niter > 0, "niter must be positive");
    assert_eq!(
        stages_per_iter.len(),
        design.spec.stages,
        "stage count must match the design's spec"
    );
    let (nx, ny, b) = (input.nx(), input.ny(), input.batch());
    assert!(!matches!(design.mode, ExecMode::Tiled2D { .. }), "Tiled2D is a 3D mode");
    match design.mode {
        ExecMode::Baseline => assert_eq!(b, 1, "baseline design runs one mesh"),
        ExecMode::Batched { b: db } => assert_eq!(b, db, "batch size mismatch"),
        _ => assert_eq!(b, 1, "tiled design runs one mesh"),
    }
    let wl = Workload::D2 { nx, ny, batch: b };
    let plan = profile::trace_schedule(dev, design, &wl, niter as u64, rec);
    let rc = cycles::design_row_cycles(dev, design, nx, nx);

    let mut cur = input.clone();
    let mut remaining = niter;
    let mut first_pass = true;
    let mut off = Recorder::disabled();
    while remaining > 0 {
        let p_eff = design.p.min(remaining);
        let chain: Vec<K> = (0..p_eff).flat_map(|_| stages_per_iter.iter().cloned()).collect();
        let pass_rec: &mut Recorder = if first_pass { &mut *rec } else { &mut off };
        cur = match design.mode {
            ExecMode::Tiled1D { tile_m } => {
                let mesh = cur.mesh(0);
                let out = tiled_pass_2d(engine, dev, design, &chain, &mesh, tile_m, pass_rec);
                Batch2D::from_meshes(&[out])
            }
            _ => {
                let rows = cur.as_slice().chunks(nx).map(|r| r.to_vec());
                let out_rows = run_chain_2d_engine_traced(
                    engine,
                    &chain,
                    nx,
                    b * ny,
                    ny,
                    rows,
                    pass_rec,
                    "window/",
                    0,
                    rc,
                );
                let mut out = Batch2D::<T>::zeros(nx, ny, b);
                for (gy, row) in out_rows.into_iter().enumerate() {
                    out.as_mut_slice()[gy * nx..(gy + 1) * nx].copy_from_slice(&row);
                }
                out
            }
        };
        remaining -= p_eff;
        first_pass = false;
    }

    let report =
        SimReport::from_plan(design, &plan, niter as u64, power::fpga_power_w(dev, design));
    (cur, report)
}

/// Convenience wrapper for single-mesh simulation.
pub fn simulate_mesh_2d<T: Element, K: StencilOp2D<T> + Clone>(
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Mesh2D<T>,
    niter: usize,
) -> (Mesh2D<T>, SimReport) {
    let batch = Batch2D::from_meshes(std::slice::from_ref(input));
    let (out, rep) = simulate_2d(dev, design, stages_per_iter, &batch, niter);
    (out.mesh(0), rep)
}

/// One spatially-blocked pass (`chain.len()` chained iterations) over a 2D
/// mesh: every tile is streamed through the pipeline against the pass-start
/// mesh, and only its valid columns are written back — exactly the paper's
/// overlapped-block scheme.
fn tiled_pass_2d<T: Element, K: Clone, E: Engine2D<T, K>>(
    engine: &E,
    dev: &FpgaDevice,
    design: &StencilDesign,
    chain: &[K],
    mesh: &Mesh2D<T>,
    tile_m: usize,
    rec: &mut Recorder,
) -> Mesh2D<T> {
    let (nx, ny) = (mesh.nx(), mesh.ny());
    // halo sized for the full design depth p (covers shorter final passes too)
    let halo = design.p * design.spec.halo_order() / 2;
    let align = (64 / design.spec.elem_bytes).max(1);
    let grid = TileGrid1D::new(nx, tile_m, halo, align);
    let mut out = Mesh2D::<T>::zeros(nx, ny);
    let mut off = Recorder::disabled();
    for (i, t) in grid.tiles().iter().enumerate() {
        let rows = (0..ny).map(|y| {
            let s = y * nx + t.read_start;
            mesh.as_slice()[s..s + t.read_len].to_vec()
        });
        // Window-level events for the first tile only: every tile streams
        // the same chain, differing only in width.
        let tile_rec: &mut Recorder = if i == 0 { &mut *rec } else { &mut off };
        let rc = cycles::design_row_cycles(dev, design, t.read_len, t.valid_len);
        let tile_rows = run_chain_2d_engine_traced(
            engine, chain, t.read_len, ny, ny, rows, tile_rec, "tile0/", 0, rc,
        );
        let off = t.valid_offset();
        for (y, row) in tile_rows.into_iter().enumerate() {
            let dst = y * nx + t.valid_start;
            out.as_mut_slice()[dst..dst + t.valid_len]
                .copy_from_slice(&row[off..off + t.valid_len]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{synthesize, MemKind};
    use sf_kernels::{reference, Poisson2D, StencilSpec};
    use sf_mesh::norms;

    fn dev() -> FpgaDevice {
        FpgaDevice::u280()
    }

    fn design(wl: &Workload, v: usize, p: usize, mode: ExecMode) -> StencilDesign {
        synthesize(&dev(), &StencilSpec::poisson(), v, p, mode, MemKind::Hbm, wl).unwrap()
    }

    #[test]
    fn baseline_bit_exact_vs_reference() {
        let m = Mesh2D::<f32>::random(40, 24, 7, -1.0, 1.0);
        let wl = Workload::D2 { nx: 40, ny: 24, batch: 1 };
        let ds = design(&wl, 8, 4, ExecMode::Baseline);
        let (out, rep) = simulate_mesh_2d(&dev(), &ds, &[Poisson2D], &m, 12);
        let expect = reference::run_2d(&Poisson2D, &m, 12);
        assert!(norms::bit_equal(out.as_slice(), expect.as_slice()));
        assert!(rep.runtime_s > 0.0);
        assert_eq!(rep.passes, 3);
    }

    #[test]
    fn baseline_handles_non_multiple_iters() {
        let m = Mesh2D::<f32>::random(32, 16, 3, -1.0, 1.0);
        let wl = Workload::D2 { nx: 32, ny: 16, batch: 1 };
        let ds = design(&wl, 8, 5, ExecMode::Baseline);
        let (out, rep) = simulate_mesh_2d(&dev(), &ds, &[Poisson2D], &m, 7);
        let expect = reference::run_2d(&Poisson2D, &m, 7);
        assert!(norms::bit_equal(out.as_slice(), expect.as_slice()));
        assert_eq!(rep.passes, 2);
    }

    #[test]
    fn batched_bit_exact_vs_independent_solves() {
        let batch = Batch2D::<f32>::random(24, 12, 5, 11, -1.0, 1.0);
        let wl = Workload::D2 { nx: 24, ny: 12, batch: 5 };
        let ds = design(&wl, 8, 6, ExecMode::Batched { b: 5 });
        let (out, _) = simulate_2d(&dev(), &ds, &[Poisson2D], &batch, 9);
        let expect = reference::run_batch_2d(&Poisson2D, &batch, 9);
        assert!(norms::bit_equal(out.as_slice(), expect.as_slice()));
    }

    #[test]
    fn tiled_bit_exact_vs_reference() {
        // tile width 64 with halo p·D/2 = 8 → several overlapping tiles
        let m = Mesh2D::<f32>::random(200, 30, 13, -1.0, 1.0);
        let wl = Workload::D2 { nx: 200, ny: 30, batch: 1 };
        let ds = design(&wl, 8, 8, ExecMode::Tiled1D { tile_m: 64 });
        let (out, rep) = simulate_mesh_2d(&dev(), &ds, &[Poisson2D], &m, 16);
        let expect = reference::run_2d(&Poisson2D, &m, 16);
        assert!(
            norms::bit_equal(out.as_slice(), expect.as_slice()),
            "first mismatch: {:?}",
            norms::first_mismatch(out.as_slice(), expect.as_slice())
        );
        assert_eq!(rep.passes, 2);
    }

    #[test]
    fn tiled_partial_final_pass_still_exact() {
        let m = Mesh2D::<f32>::random(150, 20, 17, -1.0, 1.0);
        let wl = Workload::D2 { nx: 150, ny: 20, batch: 1 };
        let ds = design(&wl, 8, 6, ExecMode::Tiled1D { tile_m: 48 });
        let (out, _) = simulate_mesh_2d(&dev(), &ds, &[Poisson2D], &m, 8); // 6 + 2
        let expect = reference::run_2d(&Poisson2D, &m, 8);
        assert!(norms::bit_equal(out.as_slice(), expect.as_slice()));
    }

    #[test]
    fn estimate_matches_simulate_timing() {
        let m = Mesh2D::<f32>::random(64, 32, 1, 0.0, 1.0);
        let wl = Workload::D2 { nx: 64, ny: 32, batch: 1 };
        let ds = design(&wl, 8, 4, ExecMode::Baseline);
        let (_, sim) = simulate_mesh_2d(&dev(), &ds, &[Poisson2D], &m, 8);
        let est = estimate_2d(&dev(), &ds, &wl, 8).unwrap();
        assert_eq!(sim.total_cycles, est.total_cycles);
        assert_eq!(sim.runtime_s, est.runtime_s);
        assert_eq!(sim.energy_j, est.energy_j);
    }

    #[test]
    fn estimate_rejects_3d_workload_with_typed_error() {
        let wl = Workload::D2 { nx: 64, ny: 32, batch: 1 };
        let ds = design(&wl, 8, 4, ExecMode::Baseline);
        let bad = Workload::D3 { nx: 64, ny: 32, nz: 16, batch: 1 };
        let err = estimate_2d(&dev(), &ds, &bad, 8).unwrap_err();
        assert!(matches!(err, ExecError::ShapeMismatch { .. }), "{err:?}");
        assert!(format!("{err}").contains("2D estimator needs a 2D workload"));
    }

    #[test]
    fn traced_simulation_matches_untraced_and_reconciles_with_plan() {
        let m = Mesh2D::<f32>::random(40, 24, 7, -1.0, 1.0);
        let wl = Workload::D2 { nx: 40, ny: 24, batch: 1 };
        let ds = design(&wl, 8, 4, ExecMode::Baseline);
        let (plain, rep) = simulate_mesh_2d(&dev(), &ds, &[Poisson2D], &m, 12);

        let mut rec = Recorder::enabled(ds.freq_hz / 1e6);
        let batch = Batch2D::from_meshes(std::slice::from_ref(&m));
        let (traced, rep2) = simulate_2d_traced(&dev(), &ds, &[Poisson2D], &batch, 12, &mut rec);
        assert!(norms::bit_equal(traced.mesh(0).as_slice(), plain.as_slice()));
        assert_eq!(rep.total_cycles, rep2.total_cycles);

        // Schedule spans reconcile with the plan totals.
        let pipe = rec.find_track("pipeline").unwrap();
        assert_eq!(rec.track_span_cycles(pipe), rep.total_cycles);
        // Behavioral window events present for the first pass.
        assert!(rec.track_names().iter().any(|t| t.starts_with("window/stage:")));
        assert_eq!(rec.counter("window.rows_streamed"), 24);
        assert!(rec.instants().iter().any(|i| i.name == "primed"));
    }

    #[test]
    fn traced_tiled_simulation_traces_first_tile_only() {
        let m = Mesh2D::<f32>::random(200, 30, 13, -1.0, 1.0);
        let wl = Workload::D2 { nx: 200, ny: 30, batch: 1 };
        let ds = design(&wl, 8, 8, ExecMode::Tiled1D { tile_m: 64 });
        let mut rec = Recorder::enabled(ds.freq_hz / 1e6);
        let batch = Batch2D::from_meshes(std::slice::from_ref(&m));
        let (out, _) = simulate_2d_traced(&dev(), &ds, &[Poisson2D], &batch, 16, &mut rec);
        let expect = reference::run_2d(&Poisson2D, &m, 16);
        assert!(norms::bit_equal(out.mesh(0).as_slice(), expect.as_slice()));
        // Window tracks exist only for the first tile's chain.
        let stage_tracks: Vec<_> =
            rec.track_names().iter().filter(|t| t.contains("stage:")).collect();
        assert!(!stage_tracks.is_empty());
        assert!(stage_tracks.iter().all(|t| t.starts_with("tile0/")));
        // Schedule segments cover every tile, though.
        let seg = rec.find_track("segments").unwrap();
        assert!(rec.spans().iter().filter(|s| s.track == seg).count() > 2);
    }

    #[test]
    #[should_panic(expected = "batch size mismatch")]
    fn batch_size_checked() {
        let batch = Batch2D::<f32>::zeros(16, 8, 3);
        let wl = Workload::D2 { nx: 16, ny: 8, batch: 4 };
        let ds = design(&wl, 8, 2, ExecMode::Batched { b: 4 });
        let _ = simulate_2d(&dev(), &ds, &[Poisson2D], &batch, 2);
    }
}

#[cfg(test)]
mod multistage_2d_tests {
    //! Fused multi-stage 2D pipelines ("multiple stencil loops" in 2D) —
    //! the wave2d kick/drift pair through every execution mode.

    use super::*;
    use crate::design::{synthesize, MemKind};
    use sf_kernels::reference;
    use sf_kernels::wave2d::{self, WaveParams};
    use sf_mesh::norms;

    fn dev() -> FpgaDevice {
        FpgaDevice::u280()
    }

    /// Build the per-iteration stage list as trait objects are not possible —
    /// use an enum wrapper so one chain type holds both stages.
    #[derive(Copy, Clone)]
    enum WaveStage {
        Kick(wave2d::WaveKick),
        Drift(wave2d::WaveDrift),
    }

    impl sf_kernels::StencilOp2D<wave2d::WaveState> for WaveStage {
        fn radius(&self) -> usize {
            match self {
                WaveStage::Kick(k) => k.radius(),
                WaveStage::Drift(d) => d.radius(),
            }
        }

        fn apply<F: Fn(i32, i32) -> wave2d::WaveState>(&self, at: F) -> wave2d::WaveState {
            match self {
                WaveStage::Kick(k) => k.apply(at),
                WaveStage::Drift(d) => d.apply(at),
            }
        }

        fn on_boundary(&self, c: wave2d::WaveState) -> wave2d::WaveState {
            match self {
                WaveStage::Kick(k) => k.on_boundary(c),
                WaveStage::Drift(d) => d.on_boundary(c),
            }
        }
    }

    fn stages() -> [WaveStage; 2] {
        let (k, d) = wave2d::pipeline(WaveParams::default());
        [WaveStage::Kick(k), WaveStage::Drift(d)]
    }

    #[test]
    fn wave_baseline_bit_exact() {
        let m = wave2d::standing_wave(30, 22);
        let wl = Workload::D2 { nx: 30, ny: 22, batch: 1 };
        let ds = synthesize(&dev(), &wave2d::spec(), 4, 3, ExecMode::Baseline, MemKind::Hbm, &wl)
            .unwrap();
        let (out, rep) = simulate_mesh_2d(&dev(), &ds, &stages(), &m, 8);
        let expect = reference::run_stages_2d(&stages(), &m, 8);
        assert!(
            norms::bit_equal(out.as_slice(), expect.as_slice()),
            "first mismatch: {:?}",
            norms::first_mismatch(out.as_slice(), expect.as_slice())
        );
        assert_eq!(rep.passes, 3);
    }

    #[test]
    fn wave_batched_bit_exact() {
        let meshes: Vec<_> = (0..4)
            .map(|i| {
                let mut m = wave2d::standing_wave(20, 16);
                let v = m.get(10, 8);
                m.set(10, 8, sf_mesh::VecN::new([v.0[0] * (1.0 + i as f32 * 0.1), 0.0]));
                m
            })
            .collect();
        let batch = Batch2D::from_meshes(&meshes);
        let wl = Workload::D2 { nx: 20, ny: 16, batch: 4 };
        let ds = synthesize(
            &dev(),
            &wave2d::spec(),
            4,
            2,
            ExecMode::Batched { b: 4 },
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let (out, _) = simulate_2d(&dev(), &ds, &stages(), &batch, 5);
        for (i, m) in meshes.iter().enumerate() {
            let solo = reference::run_stages_2d(&stages(), m, 5);
            assert!(norms::bit_equal(out.mesh(i).as_slice(), solo.as_slice()), "mesh {i} diverged");
        }
    }

    #[test]
    fn wave_tiled_bit_exact() {
        // halo = p · stages · D / 2 = 2·4/2... with p=2: 8 per side
        let m = wave2d::standing_wave(160, 18);
        let wl = Workload::D2 { nx: 160, ny: 18, batch: 1 };
        let ds = synthesize(
            &dev(),
            &wave2d::spec(),
            4,
            2,
            ExecMode::Tiled1D { tile_m: 48 },
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let (out, _) = simulate_mesh_2d(&dev(), &ds, &stages(), &m, 6);
        let expect = reference::run_stages_2d(&stages(), &m, 6);
        assert!(
            norms::bit_equal(out.as_slice(), expect.as_slice()),
            "first mismatch: {:?}",
            norms::first_mismatch(out.as_slice(), expect.as_slice())
        );
    }
}
