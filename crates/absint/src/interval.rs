//! The interval domain: executing a kernel on [`Interval`] bounds its
//! output range over an assumed input range, in one pass, with sticky
//! hazard flags.
//!
//! Bounds are kept in `f64` (exact for every `f32` input, so widening is
//! purely from the interval arithmetic itself, never from the carrier).
//! Two hazards ride along every value:
//!
//! * `maybe_nan` — a NaN-producing form was reachable (`0·∞`, `∞−∞`,
//!   `0/0`, or division by an interval containing zero),
//! * `div_by_zero` — some divisor interval contained zero.
//!
//! The flags are *sticky*: once set on any operand they survive to the
//! result, so the kernel's output interval answers "is a non-finite value
//! statically reachable anywhere in this update?" without tracking paths.

use core::ops::{Add, Div, Mul, Sub};
use sf_kernels::AbstractValue;

/// A closed interval `[lo, hi]` with sticky hazard flags.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// A NaN is statically reachable somewhere in the expression's history.
    pub maybe_nan: bool,
    /// A division by an interval containing zero happened in the history.
    pub div_by_zero: bool,
}

impl Interval {
    /// The interval `[lo, hi]`.
    ///
    /// # Panics
    /// Asserts `lo ≤ hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "interval bounds out of order: [{lo}, {hi}]");
        Interval { lo, hi, maybe_nan: false, div_by_zero: false }
    }

    /// The degenerate interval `[c, c]`.
    pub fn point(c: f64) -> Self {
        Interval::new(c, c)
    }

    /// The unbounded interval (what a poisoned division collapses to).
    pub fn top() -> Self {
        Interval::new(f64::NEG_INFINITY, f64::INFINITY)
    }

    /// `true` if `0 ∈ [lo, hi]`.
    pub fn contains_zero(&self) -> bool {
        self.lo <= 0.0 && self.hi >= 0.0
    }

    /// Largest absolute value in the interval.
    pub fn max_abs(&self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// `true` if every value in the interval is a finite `f32`.
    pub fn finite_in_f32(&self) -> bool {
        !self.maybe_nan && self.max_abs() <= f32::MAX as f64
    }

    /// Smallest interval containing both, with hazard flags OR-ed (used to
    /// join the output lanes of a multi-lane kernel into one range verdict).
    pub fn hull(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
            maybe_nan: self.maybe_nan || o.maybe_nan,
            div_by_zero: self.div_by_zero || o.div_by_zero,
        }
    }

    fn flags_from(a: &Interval, b: &Interval) -> (bool, bool) {
        (a.maybe_nan || b.maybe_nan, a.div_by_zero || b.div_by_zero)
    }
}

impl Add for Interval {
    type Output = Interval;
    fn add(self, r: Interval) -> Interval {
        let (maybe_nan, div_by_zero) = Interval::flags_from(&self, &r);
        let lo = self.lo + r.lo;
        let hi = self.hi + r.hi;
        // ∞ + (−∞) is the only NaN-producing add
        let nan = lo.is_nan() || hi.is_nan();
        Interval {
            lo: if lo.is_nan() { f64::NEG_INFINITY } else { lo },
            hi: if hi.is_nan() { f64::INFINITY } else { hi },
            maybe_nan: maybe_nan || nan,
            div_by_zero,
        }
    }
}

impl Sub for Interval {
    type Output = Interval;
    fn sub(self, r: Interval) -> Interval {
        let (maybe_nan, div_by_zero) = Interval::flags_from(&self, &r);
        let lo = self.lo - r.hi;
        let hi = self.hi - r.lo;
        let nan = lo.is_nan() || hi.is_nan();
        Interval {
            lo: if lo.is_nan() { f64::NEG_INFINITY } else { lo },
            hi: if hi.is_nan() { f64::INFINITY } else { hi },
            maybe_nan: maybe_nan || nan,
            div_by_zero,
        }
    }
}

impl Mul for Interval {
    type Output = Interval;
    fn mul(self, r: Interval) -> Interval {
        let (mut maybe_nan, div_by_zero) = Interval::flags_from(&self, &r);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for a in [self.lo, self.hi] {
            for b in [r.lo, r.hi] {
                let p = a * b;
                if p.is_nan() {
                    // 0·∞ corner
                    maybe_nan = true;
                } else {
                    lo = lo.min(p);
                    hi = hi.max(p);
                }
            }
        }
        if lo > hi {
            // every corner was NaN
            return Interval { maybe_nan: true, div_by_zero, ..Interval::top() };
        }
        Interval { lo, hi, maybe_nan, div_by_zero }
    }
}

impl Div for Interval {
    type Output = Interval;
    fn div(self, r: Interval) -> Interval {
        let (maybe_nan, div_by_zero) = Interval::flags_from(&self, &r);
        if r.contains_zero() {
            // the divisor can be (arbitrarily close to) zero: the quotient
            // is unbounded and 0/0 NaN is reachable
            return Interval { maybe_nan: true, div_by_zero: true, ..Interval::top() };
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for a in [self.lo, self.hi] {
            for b in [r.lo, r.hi] {
                let q = a / b;
                lo = lo.min(q);
                hi = hi.max(q);
            }
        }
        Interval { lo, hi, maybe_nan, div_by_zero }
    }
}

impl AbstractValue for Interval {
    fn constant(c: f32) -> Self {
        Interval::point(c as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic_bounds() {
        let a = Interval::new(-1.0, 2.0);
        let b = Interval::new(0.5, 3.0);
        let s = a + b;
        assert_eq!((s.lo, s.hi), (-0.5, 5.0));
        let d = a - b;
        assert_eq!((d.lo, d.hi), (-4.0, 1.5));
        let m = a * b;
        assert_eq!((m.lo, m.hi), (-3.0, 6.0));
        let q = a / b;
        assert_eq!((q.lo, q.hi), (-2.0, 4.0));
        assert!(!q.maybe_nan && !q.div_by_zero);
    }

    #[test]
    fn division_by_zero_poisons() {
        let a = Interval::new(1.0, 2.0);
        let z = Interval::new(-0.5, 0.5);
        let q = a / z;
        assert!(q.div_by_zero && q.maybe_nan);
        assert!(!q.finite_in_f32());
        // stickiness: further arithmetic keeps the flags
        let later = q * Interval::point(0.0) + Interval::point(1.0);
        assert!(later.div_by_zero);
    }

    #[test]
    fn overflow_detected_against_f32() {
        let big = Interval::point(1e30);
        let sq = big * big; // 1e60 — fine in f64, over f32::MAX
        assert!(!sq.maybe_nan);
        assert!(!sq.finite_in_f32());
        assert!(Interval::new(-1.0, 1.0).finite_in_f32());
    }

    #[test]
    fn contraction_stays_in_unit_range() {
        // the poisson update on [-1,1] inputs stays within [-1,1]
        let u = Interval::new(-1.0, 1.0);
        let sum = ((u + u) + u) + u;
        let out = Interval::constant(0.125) * sum + Interval::constant(0.5) * u;
        assert!(out.lo >= -1.0 - 1e-12 && out.hi <= 1.0 + 1e-12, "{out:?}");
    }

    #[test]
    fn mul_nan_corner_is_flagged_not_propagated_as_bounds() {
        let inf = Interval::new(0.0, f64::INFINITY);
        let z = Interval::point(0.0);
        let m = inf * z;
        assert!(m.maybe_nan);
    }
}
