//! Typed end-to-end solvers: numeric execution on the simulated FPGA with
//! built-in golden-reference validation.
//!
//! These are the "applications" a downstream user runs: each wraps a
//! synthesized [`StencilDesign`] and executes meshes through the dataflow
//! simulator, optionally asserting bit-exactness against the sequential
//! reference (`validate = true` is the default for anything
//! correctness-critical; turn it off for timing studies on larger meshes).

use crate::error::SfError;
use crate::workflow::Workflow;
use sf_fpga::design::{StencilDesign, Workload};
use sf_fpga::{exec2d, exec3d, FpgaDevice, SimReport};
use sf_kernels::rtm::{self, RtmState};
use sf_kernels::{reference, Jacobi3D, Poisson2D, RtmParams, RtmStage, StencilSpec};
use sf_mesh::{norms, Batch2D, Batch3D, Mesh3D};

/// Poisson-5pt-2D solver on the simulated U280.
#[derive(Clone, Debug)]
pub struct PoissonSolver {
    /// The synthesized design executing the solves.
    pub design: StencilDesign,
    device: FpgaDevice,
}

impl PoissonSolver {
    /// Build from a workflow-selected best design for the workload.
    pub fn auto(wf: &Workflow, wl: &Workload, niter: u64) -> Result<Self, SfError> {
        let best = wf.best_design(&StencilSpec::poisson(), wl, niter)?;
        Ok(PoissonSolver { design: best.design, device: wf.device.clone() })
    }

    /// Build around an explicit design.
    pub fn with_design(device: FpgaDevice, design: StencilDesign) -> Self {
        PoissonSolver { design, device }
    }

    /// Solve `niter` iterations on a batch of meshes.
    pub fn run(&self, input: &Batch2D<f32>, niter: usize) -> (Batch2D<f32>, SimReport) {
        exec2d::simulate_2d(&self.device, &self.design, &[Poisson2D], input, niter)
    }

    /// Solve and assert bit-exactness vs the golden reference.
    pub fn run_validated(&self, input: &Batch2D<f32>, niter: usize) -> (Batch2D<f32>, SimReport) {
        let (out, rep) = self.run(input, niter);
        let golden = reference::run_batch_2d(&Poisson2D, input, niter);
        assert!(
            norms::bit_equal(out.as_slice(), golden.as_slice()),
            "FPGA Poisson diverged from golden reference: {:?}",
            norms::first_mismatch(out.as_slice(), golden.as_slice())
        );
        (out, rep)
    }
}

/// Jacobi-7pt-3D solver on the simulated U280.
#[derive(Clone, Debug)]
pub struct JacobiSolver {
    /// The synthesized design executing the solves.
    pub design: StencilDesign,
    /// The 7 coefficients of paper eq. (18).
    pub kernel: Jacobi3D,
    device: FpgaDevice,
}

impl JacobiSolver {
    /// Build from a workflow-selected best design (smoothing coefficients).
    pub fn auto(wf: &Workflow, wl: &Workload, niter: u64) -> Result<Self, SfError> {
        let best = wf.best_design(&StencilSpec::jacobi(), wl, niter)?;
        Ok(JacobiSolver {
            design: best.design,
            kernel: Jacobi3D::smoothing(),
            device: wf.device.clone(),
        })
    }

    /// Build around an explicit design and coefficients.
    pub fn with_design(device: FpgaDevice, design: StencilDesign, kernel: Jacobi3D) -> Self {
        JacobiSolver { design, kernel, device }
    }

    /// Solve `niter` iterations on a batch of meshes.
    pub fn run(&self, input: &Batch3D<f32>, niter: usize) -> (Batch3D<f32>, SimReport) {
        exec3d::simulate_3d(&self.device, &self.design, &[self.kernel], input, niter)
    }

    /// Solve and assert bit-exactness vs the golden reference.
    pub fn run_validated(&self, input: &Batch3D<f32>, niter: usize) -> (Batch3D<f32>, SimReport) {
        let (out, rep) = self.run(input, niter);
        let golden = reference::run_batch_3d(&self.kernel, input, niter);
        assert!(
            norms::bit_equal(out.as_slice(), golden.as_slice()),
            "FPGA Jacobi diverged from golden reference: {:?}",
            norms::first_mismatch(out.as_slice(), golden.as_slice())
        );
        (out, rep)
    }
}

/// RTM forward-pass solver: the fused 4-stage RK4 pipeline on the simulated
/// U280.
#[derive(Clone, Debug)]
pub struct RtmSolver {
    /// The synthesized design executing the solves.
    pub design: StencilDesign,
    /// Physics/time-step parameters.
    pub params: RtmParams,
    device: FpgaDevice,
}

impl RtmSolver {
    /// Build from a workflow-selected best design.
    pub fn auto(
        wf: &Workflow,
        wl: &Workload,
        niter: u64,
        params: RtmParams,
    ) -> Result<Self, SfError> {
        let best = wf.best_design(&StencilSpec::rtm(), wl, niter)?;
        Ok(RtmSolver { design: best.design, params, device: wf.device.clone() })
    }

    /// Build around an explicit design.
    pub fn with_design(device: FpgaDevice, design: StencilDesign, params: RtmParams) -> Self {
        RtmSolver { design, params, device }
    }

    /// Run `niter` RK4 steps on a state mesh with ρ/μ coefficient fields.
    pub fn run(
        &self,
        y: &Mesh3D<RtmState>,
        rho: &Mesh3D<f32>,
        mu: &Mesh3D<f32>,
        niter: usize,
    ) -> (Mesh3D<RtmState>, SimReport) {
        let stages = RtmStage::pipeline(self.params);
        let packed = rtm::pack(y, rho, mu);
        let (out_packed, rep) =
            exec3d::simulate_mesh_3d(&self.device, &self.design, &stages, &packed, niter);
        (rtm::unpack(&out_packed), rep)
    }

    /// Run and assert bit-exactness vs the golden RTM reference.
    pub fn run_validated(
        &self,
        y: &Mesh3D<RtmState>,
        rho: &Mesh3D<f32>,
        mu: &Mesh3D<f32>,
        niter: usize,
    ) -> (Mesh3D<RtmState>, SimReport) {
        let (out, rep) = self.run(y, rho, mu, niter);
        let golden = reference::rtm_run(y, rho, mu, self.params, niter);
        assert!(
            norms::bit_equal(out.as_slice(), golden.as_slice()),
            "FPGA RTM diverged from golden reference: {:?}",
            norms::first_mismatch(out.as_slice(), golden.as_slice())
        );
        (out, rep)
    }
}

/// Solve a heterogeneous *book* of 2D Poisson problems: meshes are grouped
/// by shape (the paper batches only same-dimension meshes), each group gets
/// its own workflow-selected batched design, and results return in the
/// input order. This is the production shape of the paper's §IV-B financial
/// workload. The returned reports hold one entry per shape group.
pub fn solve_poisson_book(
    wf: &Workflow,
    book: &[sf_mesh::Mesh2D<f32>],
    niter: usize,
) -> Result<(Vec<sf_mesh::Mesh2D<f32>>, Vec<SimReport>), SfError> {
    let mut results: Vec<Option<sf_mesh::Mesh2D<f32>>> = vec![None; book.len()];
    let mut reports = Vec::new();
    for (batch, idxs) in sf_mesh::batch::group_by_shape_2d(book) {
        let wl = Workload::D2 { nx: batch.nx(), ny: batch.ny(), batch: batch.batch() };
        let best = wf.best_design(&StencilSpec::poisson(), &wl, niter as u64)?;
        let solver = PoissonSolver::with_design(wf.device.clone(), best.design);
        let (out, rep) = solver.run(&batch, niter);
        for (slot, &orig) in idxs.iter().enumerate() {
            results[orig] = Some(out.mesh(slot));
        }
        reports.push(rep);
    }
    let out: Vec<_> = results.into_iter().flatten().collect();
    debug_assert_eq!(out.len(), book.len(), "every mesh is covered by exactly one shape group");
    Ok((out, reports))
}

/// Result of a run-to-steady-state solve.
#[derive(Clone, Debug, PartialEq)]
pub struct SteadyState<T> {
    /// The converged (or last) state.
    pub result: T,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Max-norm of the last inter-pass difference.
    pub residual: f32,
    /// Whether the tolerance was met within the iteration budget.
    pub converged: bool,
}

impl PoissonSolver {
    /// Iterate in design-sized passes until the max-norm change between
    /// passes drops below `tol` (the explicit-solver steady-state criterion
    /// of paper §II) or `max_iters` is reached.
    pub fn run_to_steady_state(
        &self,
        input: &Batch2D<f32>,
        tol: f32,
        max_iters: usize,
    ) -> (SteadyState<Batch2D<f32>>, SimReport) {
        assert!(tol > 0.0 && max_iters > 0);
        let mut cur = input.clone();
        let mut done = 0usize;
        let mut residual = f32::INFINITY;
        while done < max_iters {
            let step = self.design.p.min(max_iters - done);
            let (next, _) = self.run(&cur, step);
            residual = norms::max_abs_diff(next.as_slice(), cur.as_slice());
            cur = next;
            done += step;
            if residual < tol {
                break;
            }
        }
        let report = {
            let wl = Workload::D2 { nx: input.nx(), ny: input.ny(), batch: input.batch() };
            let plan = sf_fpga::cycles::plan(&self.device, &self.design, &wl, done as u64);
            SimReport::from_plan(
                &self.design,
                &plan,
                done as u64,
                sf_fpga::power::fpga_power_w(&self.device, &self.design),
            )
        };
        (SteadyState { converged: residual < tol, result: cur, iterations: done, residual }, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_fpga::design::{synthesize, ExecMode};
    use sf_fpga::MemKind;
    use sf_mesh::Mesh2D;

    fn wf() -> Workflow {
        Workflow::u280_vs_v100()
    }

    #[test]
    fn poisson_solver_auto_runs_validated() {
        let wl = Workload::D2 { nx: 48, ny: 24, batch: 3 };
        let solver = PoissonSolver::auto(&wf(), &wl, 12).unwrap();
        let input = Batch2D::<f32>::random(48, 24, 3, 5, -1.0, 1.0);
        let (_, rep) = solver.run_validated(&input, 12);
        assert!(rep.runtime_s > 0.0);
        assert!(matches!(rep.mode, ExecMode::Batched { b: 3 }));
    }

    #[test]
    fn jacobi_solver_explicit_design() {
        let d = FpgaDevice::u280();
        let wl = Workload::D3 { nx: 16, ny: 12, nz: 10, batch: 1 };
        let design =
            synthesize(&d, &StencilSpec::jacobi(), 8, 3, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let solver = JacobiSolver::with_design(d, design, Jacobi3D::smoothing());
        let input = Batch3D::<f32>::random(16, 12, 10, 1, 9, -1.0, 1.0);
        let (_, rep) = solver.run_validated(&input, 7);
        assert_eq!(rep.v, 8);
    }

    #[test]
    fn heterogeneous_book_solved_in_order() {
        let book = vec![
            Mesh2D::<f32>::random(24, 12, 1, -1.0, 1.0),
            Mesh2D::<f32>::random(16, 16, 2, -1.0, 1.0),
            Mesh2D::<f32>::random(24, 12, 3, -1.0, 1.0),
            Mesh2D::<f32>::random(16, 16, 4, -1.0, 1.0),
            Mesh2D::<f32>::random(24, 12, 5, -1.0, 1.0),
        ];
        let (solved, reports) = solve_poisson_book(&wf(), &book, 7).unwrap();
        assert_eq!(solved.len(), 5);
        assert_eq!(reports.len(), 2, "two shape groups");
        for (i, m) in book.iter().enumerate() {
            let golden = reference::run_2d(&Poisson2D, m, 7);
            assert!(
                norms::bit_equal(solved[i].as_slice(), golden.as_slice()),
                "instrument {i} diverged"
            );
        }
    }

    #[test]
    fn steady_state_converges_and_reports() {
        let wl = Workload::D2 { nx: 24, ny: 24, batch: 1 };
        let solver = PoissonSolver::auto(&wf(), &wl, 1000).unwrap();
        let mut m = Mesh2D::<f32>::zeros(24, 24);
        m.set(12, 12, 10.0); // hot spot decays towards the zero boundary
        let input = Batch2D::from_meshes(&[m]);
        let (ss, rep) = solver.run_to_steady_state(&input, 1e-6, 10_000);
        assert!(ss.converged, "residual {} after {}", ss.residual, ss.iterations);
        assert!(ss.iterations < 10_000);
        assert!(ss.residual < 1e-6);
        assert_eq!(rep.niter, ss.iterations as u64);
        // steady state of this contraction is the zero field
        assert!(sf_mesh::norms::max_norm_2d(&ss.result.mesh(0)) < 1e-2);
    }

    #[test]
    fn steady_state_budget_respected() {
        let wl = Workload::D2 { nx: 16, ny: 16, batch: 1 };
        let solver = PoissonSolver::auto(&wf(), &wl, 100).unwrap();
        let input = Batch2D::<f32>::random(16, 16, 1, 3, -1.0, 1.0);
        let (ss, _) = solver.run_to_steady_state(&input, 1e-30, 7);
        assert!(!ss.converged);
        assert_eq!(ss.iterations, 7);
    }

    #[test]
    fn rtm_auto_finds_paper_design_at_paper_scale() {
        // at the paper's 64²-plane scale with 1800 iterations, the workflow
        // must land on the paper's V=1, p=3 configuration
        let wl = Workload::D3 { nx: 64, ny: 64, nz: 64, batch: 1 };
        let solver = RtmSolver::auto(&wf(), &wl, 1800, RtmParams::default()).unwrap();
        assert_eq!(solver.design.v, 1, "paper §V-C: V = 1");
        assert_eq!(solver.design.p, 3, "paper §V-C: p = 3");
    }

    #[test]
    fn rtm_solver_runs_validated() {
        let d = FpgaDevice::u280();
        let wl = Workload::D3 { nx: 13, ny: 12, nz: 14, batch: 1 };
        let design =
            synthesize(&d, &StencilSpec::rtm(), 1, 3, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let solver = RtmSolver::with_design(d, design, RtmParams::default());
        let (y, rho, mu) = rtm::demo_workload(13, 12, 14);
        let (out, rep) = solver.run_validated(&y, &rho, &mu, 6);
        assert!(out.all_finite());
        assert!(rep.bandwidth_gbs > 0.0);
        assert_eq!(rep.passes, 2);
    }
}
