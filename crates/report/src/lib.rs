//! # sf-report — cross-run performance observability
//!
//! Every `sfstencil` invocation (profile, dse, faults, bench) can append
//! a durable, schema-versioned [`RunRecord`] to a JSONL run store. This
//! crate defines that record and its three consumers:
//!
//! 1. **Roofline analyzer** ([`roofline`]) — places each measured run
//!    against the paper's analytic ceilings (bandwidth eq. 4, DSP eq. 6,
//!    tile throughput eq. 12) and attributes the measured-vs-ideal gap to
//!    stall classes.
//! 2. **Regression gate** ([`mod@compare`]) — `sfstencil report --compare
//!    baseline.json --max-regress 5%` exits non-zero when any
//!    configuration's median cycles regress beyond tolerance (or a
//!    baseline configuration silently disappears).
//! 3. **Report emitters** ([`emit`]) — byte-reproducible Markdown and
//!    HTML renderings of the aggregated report for the three paper apps.
//!
//! Aggregation ([`Report::build`]) groups records by [`config_key`] and
//! summarises cycle distributions with HDR-style [`QuantileSketch`]es
//! from `sf-telemetry`, so the gate compares medians, not single noisy
//! samples.
//!
//! [`config_key`]: RunRecord::config_key
//! [`QuantileSketch`]: sf_telemetry::QuantileSketch

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod emit;
pub mod error;
pub mod record;
pub mod report;
pub mod roofline;
pub mod store;

pub use compare::{compare, Comparison, Delta};
pub use emit::{to_html, to_markdown};
pub use error::ReportError;
pub use record::{app_slug, detect_git_sha, spec_for_slug, RunKind, RunRecord, RECORD_SCHEMA};
pub use report::{ConfigStats, Report, REPORT_SCHEMA};
pub use roofline::{analyze, Ceilings, GapAttribution, Roofline};
pub use store::{append_record, load_records, parse_records};
