//! End-to-end tests for the cross-run observability pipeline:
//! `--record-out` producers → JSONL run store → `sfstencil report`
//! (aggregation, roofline attribution, emitters, regression gate).

use serde::Value;
use std::path::PathBuf;
use std::process::Command;

fn sfstencil() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sfstencil"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sfstencil_report_{name}_{}", std::process::id()))
}

/// Populate `store` with one profile record per paper app (small meshes
/// so the behavioral pipeline streams real numerics).
fn record_three_apps(store: &PathBuf) {
    std::fs::remove_file(store).ok();
    for (app, mesh, iters) in
        [("poisson", "200x100", "100"), ("jacobi", "16x12x10", "10"), ("rtm", "12x10x8", "5")]
    {
        let out = sfstencil()
            .args(["profile", "--app", app, "--mesh", mesh, "--iters", iters, "--record-out"])
            .arg(store)
            .arg("--json")
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "profile {app} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("run record appended"), "{stderr}");
    }
}

fn report_json(store: &PathBuf) -> (Value, String) {
    let out = sfstencil().arg("report").arg(store).arg("--json").output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let body = String::from_utf8(out.stdout).unwrap();
    (serde_json::parse_value(&body).unwrap(), body)
}

#[test]
fn record_then_report_attributes_all_three_paper_apps() {
    let store = tmp("threeapps.jsonl");
    record_three_apps(&store);

    // the store is line-oriented, schema-stamped JSONL
    let raw = std::fs::read_to_string(&store).unwrap();
    assert_eq!(raw.lines().count(), 3);
    for line in raw.lines() {
        let rec = serde_json::parse_value(line).unwrap();
        assert_eq!(rec.get("schema").and_then(Value::as_str), Some("sf-run-record/v1"));
        assert!(rec.get("measured_cycles").and_then(Value::as_u64).unwrap() > 0);
    }

    let (doc, _) = report_json(&store);
    assert_eq!(doc.get("schema").and_then(Value::as_str), Some("sf-report/v1"));
    assert_eq!(doc.get("total_runs").and_then(Value::as_u64), Some(3));
    let configs = doc.get("configs").and_then(Value::as_array).unwrap();
    assert_eq!(configs.len(), 3);
    for slug in ["poisson2d", "jacobi3d", "rtm3d"] {
        let cfg = configs
            .iter()
            .find(|c| c.get("app").and_then(Value::as_str) == Some(slug))
            .unwrap_or_else(|| panic!("report must cover {slug}"));
        // every paper app gets a roofline with gap attribution
        let rl = cfg.get("roofline").expect("roofline present");
        assert!(rl.get("ideal_cycles").and_then(Value::as_u64).unwrap() > 0);
        assert!(rl.get("measured_cycles").and_then(Value::as_u64).unwrap() > 0);
        let bound = rl.get("bound").and_then(Value::as_str).unwrap();
        assert!(["Compute", "Memory", "Backpressure"].contains(&bound), "{bound}");
        let att = rl.get("attribution").expect("attribution present");
        for key in ["compute_pct", "memory_pct", "backpressure_pct", "exchange_pct"] {
            let pct = att.get(key).and_then(Value::as_f64).unwrap();
            assert!((0.0..=100.0).contains(&pct), "{key}={pct}");
        }
        let ceil = rl.get("ceilings").expect("ceilings present");
        assert!(ceil.get("v_max_bandwidth").and_then(Value::as_u64).unwrap() > 0);
        assert!(ceil.get("p_dsp").and_then(Value::as_u64).unwrap() > 0);
        // wall time must never leak into the report
        assert!(cfg.get("wall_ms").is_none());
    }
    std::fs::remove_file(&store).ok();
}

#[test]
fn report_output_is_byte_reproducible() {
    let store = tmp("repro.jsonl");
    std::fs::remove_file(&store).ok();
    let out = sfstencil()
        .args(["profile", "--app", "poisson", "--mesh", "200x100", "--iters", "100"])
        .arg("--record-out")
        .arg(&store)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let (_, json_a) = report_json(&store);
    let (_, json_b) = report_json(&store);
    assert_eq!(json_a, json_b, "--json report must be byte-reproducible");

    let md = |()| {
        let out = sfstencil().arg("report").arg(&store).output().unwrap();
        assert!(out.status.success());
        out.stdout
    };
    assert_eq!(md(()), md(()), "markdown report must be byte-reproducible");

    let html = sfstencil().arg("report").arg(&store).arg("--html").output().unwrap();
    assert!(html.status.success());
    let html = String::from_utf8(html.stdout).unwrap();
    assert!(html.starts_with("<!DOCTYPE html>"), "{html}");
    std::fs::remove_file(&store).ok();
}

/// Scale every `measured_p50` in a baseline report down by 10%, so the
/// (unchanged) current report reads as a >5% regression against it.
fn tamper_baseline(doc: &mut Value) {
    let Value::Object(fields) = doc else { panic!("report must be an object") };
    for (key, v) in fields.iter_mut() {
        if key == "configs" {
            let Value::Array(configs) = v else { panic!("configs must be an array") };
            for cfg in configs {
                let Value::Object(cf) = cfg else { panic!("config must be an object") };
                for (k, val) in cf.iter_mut() {
                    if k == "measured_p50" {
                        let p50 = val.as_u64().unwrap();
                        *val = Value::U64(p50 * 9 / 10);
                    }
                }
            }
        }
    }
}

#[test]
fn compare_gate_passes_self_and_fails_injected_regression() {
    let store = tmp("gate.jsonl");
    std::fs::remove_file(&store).ok();
    let out = sfstencil()
        .args(["profile", "--app", "poisson", "--mesh", "200x100", "--iters", "100"])
        .arg("--record-out")
        .arg(&store)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let (mut doc, json) = report_json(&store);
    let baseline = tmp("baseline.json");
    std::fs::write(&baseline, &json).unwrap();

    // self-compare: identical medians, gate passes
    let out = sfstencil()
        .arg("report")
        .arg(&store)
        .arg("--compare")
        .arg(&baseline)
        .args(["--max-regress", "5%"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("PASS"));

    // inject a >=5% cycle regression by shrinking the baseline medians
    tamper_baseline(&mut doc);
    std::fs::write(&baseline, serde_json::to_string_pretty(&doc).unwrap()).unwrap();
    let out = sfstencil()
        .arg("report")
        .arg(&store)
        .arg("--compare")
        .arg(&baseline)
        .args(["--max-regress", "5"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "gate must fail on an injected regression");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("FAIL"), "{stderr}");

    std::fs::remove_file(&store).ok();
    std::fs::remove_file(&baseline).ok();
}

#[test]
fn dse_and_faults_records_flow_into_the_same_store() {
    let store = tmp("mixed.jsonl");
    std::fs::remove_file(&store).ok();
    let out = sfstencil()
        .args(["dse", "--app", "poisson", "--mesh", "96x96", "--iters", "100", "--record-out"])
        .arg(&store)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = sfstencil()
        .args(["faults", "--app", "poisson2d", "--rate", "500", "--trials", "1", "--record-out"])
        .arg(&store)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let (doc, _) = report_json(&store);
    let configs = doc.get("configs").and_then(Value::as_array).unwrap();
    assert_eq!(configs.len(), 2);
    let dse = configs
        .iter()
        .find(|c| c.get("kind").and_then(Value::as_str) == Some("Dse"))
        .expect("dse config");
    assert!(dse.get("measured_p50").and_then(Value::as_u64).unwrap() > 0);
    let faults = configs
        .iter()
        .find(|c| c.get("kind").and_then(Value::as_str) == Some("Faults"))
        .expect("faults config");
    let counters = faults.get("fault_counters").expect("counters");
    assert!(counters.get("trials").and_then(Value::as_u64).unwrap() > 0);

    // the markdown rendering mentions the fault counters
    let out = sfstencil().arg("report").arg(&store).output().unwrap();
    assert!(out.status.success());
    let md = String::from_utf8(out.stdout).unwrap();
    assert!(md.contains("trials="), "{md}");
    std::fs::remove_file(&store).ok();
}

#[test]
fn sharded_profile_records_attribute_exchange_in_the_report() {
    let store = tmp("sharded.jsonl");
    std::fs::remove_file(&store).ok();
    // two cards over a PCIe-class link: the per-pass latency exceeds the
    // interior compute of this small mesh, so exchange cycles are exposed
    // and must surface in the roofline gap attribution
    let out = sfstencil()
        .args(["profile", "--app", "poisson", "--mesh", "64x300", "--iters", "40"])
        .args(["--devices", "2", "--link", "pcie"])
        .arg("--record-out")
        .arg(&store)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let raw = std::fs::read_to_string(&store).unwrap();
    let rec = serde_json::parse_value(raw.lines().next().unwrap()).unwrap();
    assert_eq!(rec.get("devices").and_then(Value::as_u64), Some(2));

    let (doc, _) = report_json(&store);
    let configs = doc.get("configs").and_then(Value::as_array).unwrap();
    assert_eq!(configs.len(), 1);
    let cfg = &configs[0];
    assert!(
        cfg.get("key").and_then(Value::as_str).unwrap().contains("/d2/"),
        "config key must carry the device count"
    );
    let rl = cfg.get("roofline").expect("roofline present");
    let att = rl.get("attribution").expect("attribution present");
    let xpct = att.get("exchange_pct").and_then(Value::as_f64).unwrap();
    assert!(xpct > 0.0, "exposed exchange must be attributed (got {xpct}%)");
    std::fs::remove_file(&store).ok();
}

#[test]
fn report_usage_and_io_errors_exit_2() {
    // missing store file
    let out = sfstencil().args(["report", "/nonexistent/runs.jsonl"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("/nonexistent/runs.jsonl"));

    // bad --max-regress
    let store = tmp("badflag.jsonl");
    std::fs::write(&store, "").unwrap();
    let baseline = tmp("badflag_baseline.json");
    std::fs::write(&baseline, "{}").unwrap();
    let out = sfstencil()
        .arg("report")
        .arg(&store)
        .arg("--compare")
        .arg(&baseline)
        .args(["--max-regress", "banana"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--max-regress"));

    // malformed baseline
    let out =
        sfstencil().arg("report").arg(&store).arg("--compare").arg(&baseline).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_file(&store).ok();
    std::fs::remove_file(&baseline).ok();
}

#[test]
fn legacy_per_design_report_is_unchanged() {
    let out = sfstencil()
        .args(["report", "--app", "poisson", "--mesh", "400x400", "--v", "8", "--p", "60"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(!out.stdout.is_empty());
    // and the flagless form still demands --v/--p rather than being
    // swallowed by the cross-run dispatch
    let out =
        sfstencil().args(["report", "--app", "poisson", "--mesh", "400x400"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--v"));
}
