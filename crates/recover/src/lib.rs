//! # sf-recover — checkpoint/rollback recovery with ABFT detection
//!
//! The paper's explicit solvers advance thousands of iterations in
//! *temporal batches* of `p` fused iterations; batch boundaries are the
//! natural synchronization points of the dataflow pipeline and therefore
//! the natural **checkpoint cadence**. This crate provides the three
//! building blocks the recoverable executors in `sf-fpga` thread
//! together:
//!
//! 1. **Deterministic checkpointing** — [`Snapshot`] captures the full
//!    mesh state (including RTM's packed vector fields, flattened
//!    lane-major to `f32`) with an FNV-1a content checksum; a bounded
//!    [`CheckpointRing`] keeps the last `K` snapshots in memory and
//!    [`spill`] serializes them to a versioned on-disk format.
//! 2. **ABFT detection** — [`AbftSignature`] holds block row/column sums
//!    over tile outputs; exact comparison catches single-event silent
//!    data corruption in linear stencil operators, and a tolerance band
//!    covers the RK4 chain.
//! 3. **Rollback policy** — [`RecoveryPolicy`] selects between the
//!    legacy clean-rerun behavior and in-run rollback with a bounded
//!    retry budget; [`RecoveryStats`] accumulates checkpoint/ABFT
//!    overhead and mean-cycles-to-recovery for the telemetry and
//!    cross-run report layers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abft;
pub mod checkpoint;
pub mod policy;
pub mod ring;
pub mod spill;

pub use abft::{abft_check_cycles, AbftSignature, ABFT_BLOCKS};
pub use checkpoint::{CheckpointError, Snapshot};
pub use policy::{RecoveryConfig, RecoveryPolicy, RecoveryStats};
pub use ring::CheckpointRing;
pub use spill::{read_file, to_bytes, try_from_bytes, write_file, SPILL_VERSION};
