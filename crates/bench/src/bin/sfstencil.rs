//! `sfstencil` — the design workflow as a command-line tool.
//!
//! ```text
//! sfstencil feasibility --app jacobi --mesh 200x200x200 [--json]
//! sfstencil dse         --app poisson --mesh 400x400 --iters 60000 [--top 5] [--json]
//! sfstencil compare     --app rtm --mesh 50x50x50 --batch 40 --iters 180
//! sfstencil report      --app poisson --mesh 400x400 --v 8 --p 60 [--json]
//! sfstencil explain     --app rtm --mesh 32x32x32 --iters 1800
//! sfstencil profile     --app poisson --mesh 200x100 --iters 100 \
//!                       [--devices K] [--link aurora|pcie] \
//!                       [--trace-out trace.json] [--json]
//! sfstencil check       --app poisson --mesh 400x400 [--v 8 --p 60] \
//!                       [--mem hbm|ddr4] [--tile M[xN]] [--fifo-depth D] \
//!                       [--window-units U] [--assume-order D] \
//!                       [--assume-gdsp N] [--json]
//! sfstencil check       --explain SFC-K05
//! sfstencil faults      [--app poisson2d|jacobi3d|rtm3d] [--seed 42] \
//!                       [--rate PPM]... [--trials N] [--kind NAME]... \
//!                       [--recovery rerun|rollback] [--checkpoint-every N]... \
//!                       [--max-retries N] [--json]
//! sfstencil report      runs.jsonl [--json|--md|--html] [--out FILE] \
//!                       [--compare baseline.json] [--max-regress 5%]
//! ```
//!
//! `dse`, `profile` and `faults` additionally accept `--jobs N` to fan
//! their work (candidate evaluation, batched meshes, fault trials) across
//! N worker threads. Output is byte-identical for any N; the default is
//! `SF_JOBS` or the machine's available parallelism.
//!
//! `profile` and `faults` accept `--exec scalar|fast` to pick the
//! execution engine the behavioral pipeline streams through (default
//! `fast`, the lane-parallel path). Both engines are bit-exact, so every
//! output byte is identical either way; `scalar` exists to cross-check
//! the fast path and for differential debugging.
//!
//! `profile`, `dse` and `faults` accept `--devices K` to shard the mesh
//! across K simulated accelerator cards (1D slab decomposition, halo
//! exchange at every pass barrier — see `sf-multi`), with `--link
//! aurora|pcie` picking the inter-device link model. `profile --devices K`
//! runs the sharded executors (bit-exact vs. single-device) and surfaces
//! exposed exchange in the stall attribution; `dse --devices K` sweeps
//! device counts 1,2,4,…,K alongside V/p; `faults --devices K` validates
//! the sharded campaign designs against the SFC-X legality rule and
//! stamps the device count into run records (trials stream each app's
//! fixed single-card configuration so fault seeds stay comparable).
//! `--devices 0`, shards narrower than the halo depth, and unknown link
//! names are usage errors (exit 2).
//!
//! `check` runs the `sf-check` static design-rule analyzer — window-buffer
//! sizing, FIFO deadlock-freedom, loop-carried RAW hazards, tile/halo and
//! vectorization legality, per-SLR resource budgets — plus the `sf-absint`
//! kernel-analysis rules (`SFC-K01`…`SFC-K05`: probed footprint vs declared
//! reach, counted ops vs declared `G_dsp`, interval NaN/overflow/
//! div-by-zero hazards, von Neumann stability) — without executing
//! anything. With explicit `--v`/`--p` it verifies exactly that
//! configuration (plus any seeded `--fifo-depth`/`--window-units`
//! overrides); otherwise it verifies the DSE-selected best design.
//! `--assume-order`/`--assume-gdsp` override the spec's declared order /
//! DSP cost on the checked design, seeding kernel-rule violations the same
//! way `--fifo-depth` seeds FIFO ones. Exits 1 if any error-severity
//! diagnostic fires. `check --explain SFC-XXX` prints the catalogue entry
//! for any rule (severity, what it governs, how to fix it) and exits 0;
//! unknown codes list the catalogue and exit 2.
//!
//! `profile` runs the best design with telemetry enabled and reports the
//! stall attribution (compute vs memory vs backpressure) and the
//! predicted-vs-simulated cycle divergence. `--trace-out` writes a Chrome
//! trace-event file loadable in Perfetto / `chrome://tracing`.
//!
//! `faults` runs the deterministic fault-injection campaign (see
//! `sf_bench::faults`): seeded datapath faults swept over every fault kind
//! and rate, each trial classified by how it was detected (watchdog,
//! checksum, AXI retry, divergence, ABFT) and recovered. `--recovery
//! rollback` switches detected faults from clean re-execution to
//! checkpoint/rollback recovery (`sf_fpga::recovery`): state is
//! checkpointed every `--checkpoint-every` passes (repeatable — multiple
//! values sweep the overhead-vs-MTTR tradeoff), silent corruption is
//! caught in-run by ABFT block checksums, and a rollback replays only the
//! lost passes, giving up after `--max-retries` attempts per segment.
//! `--kind` (repeatable) restricts the fault kinds swept without changing
//! the surviving kinds' seeds. Exits non-zero if any injected fault goes
//! unaccounted.
//!
//! `profile`, `dse` and `faults` accept `--record-out FILE` to append a
//! durable, schema-versioned run record (git sha, design point, predicted
//! vs measured cycles, stall breakdown, fault counters) to a JSONL run
//! store. `report <store.jsonl>` aggregates such a store into the
//! cross-run report — roofline gap attribution against the paper's
//! analytic ceilings (eqs. 4/6/12) — and with `--compare baseline.json`
//! gates median cycles against a committed baseline (see
//! `sf_bench::reportcmd`). The per-design estimate form `report --app ...
//! --v V --p P` is unchanged.

use sf_core::prelude::*;
use sf_fpga::design::synthesize;
use sf_telemetry::{chrome, metrics, StallClass};

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: sfstencil <feasibility|dse|compare|report|explain|profile|check> \
         --app <poisson|jacobi|rtm> \
         --mesh <NXxNY[xNZ]> [--batch B] [--iters N] [--top K] [--v V] [--p P] \
         [--mem hbm|ddr4] [--tile M[xN]] [--fifo-depth D] [--window-units U] \
         [--assume-order D] [--assume-gdsp N] \
         [--jobs N] [--exec scalar|fast] [--devices K] [--link aurora|pcie] \
         [--json] [--trace-out FILE] [--record-out FILE]\n       \
         sfstencil check --explain SFC-XXX\n       \
         sfstencil faults [--app <poisson2d|jacobi3d|rtm3d>] [--seed N] \
         [--rate PPM]... [--trials N] [--kind NAME]... [--recovery rerun|rollback] \
         [--checkpoint-every N]... [--max-retries N] [--jobs N] \
         [--exec scalar|fast] [--devices K] [--json] [--record-out FILE]\n       \
         sfstencil report <runs.jsonl> [--json|--md|--html] [--out FILE] \
         [--compare BASELINE.json] [--max-regress PCT]"
    );
    std::process::exit(2);
}

struct Args {
    cmd: String,
    app: StencilSpec,
    wl: Workload,
    iters: u64,
    top: usize,
    v: usize,
    p: usize,
    mem: MemKind,
    tile: Option<(usize, Option<usize>)>,
    fifo_depth: Option<usize>,
    window_units: Option<usize>,
    assume_order: Option<usize>,
    assume_gdsp: Option<usize>,
    jobs: usize,
    exec: sf_fpga::ExecEngine,
    devices: usize,
    link: sf_multi::LinkModel,
    json: bool,
    trace_out: Option<String>,
    record_out: Option<String>,
}

fn parse() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        fail("missing command");
    }
    let cmd = argv[0].clone();
    const COMMANDS: [&str; 7] =
        ["feasibility", "dse", "compare", "report", "explain", "profile", "check"];
    if !COMMANDS.contains(&cmd.as_str()) {
        fail(&format!("unknown command '{cmd}'"));
    }
    let get = |flag: &str| -> Option<String> {
        argv.iter().position(|a| a == flag).and_then(|i| argv.get(i + 1).cloned())
    };
    // every numeric flag is validated up front: zero and non-numeric values
    // are rejected with the flag name before any work starts
    let positive = |flag: &str, s: String| -> usize {
        match s.parse::<usize>() {
            Ok(0) | Err(_) => fail(&format!("{flag} must be a positive integer (got '{s}')")),
            Ok(n) => n,
        }
    };
    let app = sf_bench::cli::parse_app(&get("--app").unwrap_or_else(|| fail("--app required")))
        .unwrap_or_else(|e| fail(&e));
    let mesh = get("--mesh").unwrap_or_else(|| fail("--mesh required"));
    let batch: usize = get("--batch").map(|s| positive("--batch", s)).unwrap_or(1);
    let wl = sf_bench::cli::parse_mesh(app.dims, &mesh, batch).unwrap_or_else(|e| fail(&e));
    let mem = match get("--mem").as_deref() {
        None | Some("hbm") => MemKind::Hbm,
        Some("ddr4") => MemKind::Ddr4,
        Some(other) => fail(&format!("--mem must be hbm or ddr4 (got '{other}')")),
    };
    let tile = get("--tile").map(|s| {
        let parts: Vec<&str> = s.split('x').collect();
        match parts.as_slice() {
            [m] => (positive("--tile", m.to_string()), None),
            [m, n] => (positive("--tile", m.to_string()), Some(positive("--tile", n.to_string()))),
            _ => fail(&format!("--tile must be M or MxN (got '{s}')")),
        }
    });
    Args {
        cmd,
        app,
        wl,
        iters: get("--iters").map(|s| positive("--iters", s) as u64).unwrap_or(1000),
        top: get("--top").map(|s| positive("--top", s)).unwrap_or(5),
        v: get("--v").map(|s| positive("--v", s)).unwrap_or(0),
        p: get("--p").map(|s| positive("--p", s)).unwrap_or(0),
        mem,
        tile,
        fifo_depth: get("--fifo-depth").map(|s| positive("--fifo-depth", s)),
        window_units: get("--window-units").map(|s| positive("--window-units", s)),
        // order 0 is a legal override (it seeds an SFC-K01 footprint
        // violation on any kernel with reach), so plain parse, not positive
        assume_order: get("--assume-order").map(|s| {
            s.parse::<usize>().unwrap_or_else(|_| {
                fail(&format!("--assume-order must be a non-negative integer (got '{s}')"))
            })
        }),
        assume_gdsp: get("--assume-gdsp").map(|s| match s.parse::<usize>() {
            Ok(n) if n >= 2 => n,
            _ => fail(&format!("--assume-gdsp must be an integer >= 2 (got '{s}')")),
        }),
        jobs: sf_par::resolve_jobs(get("--jobs").map(|s| positive("--jobs", s))),
        exec: match get("--exec") {
            None => sf_fpga::ExecEngine::default(),
            Some(s) => sf_fpga::ExecEngine::parse(&s)
                .unwrap_or_else(|| fail(&format!("--exec must be scalar or fast (got '{s}')"))),
        },
        // `--devices 0` is a usage error like `--checkpoint-every 0`: there
        // is no zero-card deployment to degrade to, so fail loudly (exit 2)
        // rather than silently running one device.
        devices: get("--devices").map(|s| positive("--devices", s)).unwrap_or(1),
        link: match get("--link") {
            None => sf_multi::LinkModel::default(),
            Some(s) => sf_multi::LinkModel::parse(&s)
                .unwrap_or_else(|| fail(&format!("--link must be aurora or pcie (got '{s}')"))),
        },
        json: argv.iter().any(|a| a == "--json"),
        trace_out: get("--trace-out"),
        record_out: get("--record-out"),
    }
}

/// Append a run record to the store named by `--record-out`, stamping the
/// host wall time of the invocation (stored but never reported, so
/// reports stay byte-reproducible).
fn write_record(path: &str, mut rec: sf_report::RunRecord, started: std::time::Instant) {
    rec.wall_ms = Some(started.elapsed().as_secs_f64() * 1e3);
    sf_report::append_record(std::path::Path::new(path), &rec)
        .unwrap_or_else(|e| fail(&format!("{e}")));
    eprintln!("run record appended to {path}");
}

/// `check --explain SFC-XXX`: print one rule's catalogue entry and exit 0;
/// unknown codes list every rule and exit 2 (a usage error, like any other
/// malformed flag).
fn run_explain(code: &str) -> ! {
    match sf_check::RuleId::from_code(code) {
        Some(rule) => {
            print!("{}", rule.explain());
            std::process::exit(0);
        }
        None => {
            eprintln!("error: unknown rule '{code}'");
            eprintln!("known rules:");
            for r in sf_check::RuleId::ALL {
                eprintln!("  {:<8} {}", r.code(), r.summary());
            }
            std::process::exit(2);
        }
    }
}

/// The `check` subcommand: static design-rule analysis, no execution.
fn run_check(a: &Args, wf: &Workflow) {
    let (design, source) = if a.v > 0 || a.p > 0 {
        if a.v == 0 || a.p == 0 {
            fail("check needs both --v and --p (or neither, for the DSE-selected design)");
        }
        let batch = match a.wl {
            Workload::D2 { batch, .. } | Workload::D3 { batch, .. } => batch,
        };
        let mode = match (a.tile, a.app.dims) {
            (Some((m, None)), 2) => ExecMode::Tiled1D { tile_m: m },
            (Some((m, n)), 3) => ExecMode::Tiled2D { tile_m: m, tile_n: n.unwrap_or(m) },
            (Some((_, Some(_))), _) => fail("--tile MxN is for 3D apps; 2D tiling takes one M"),
            (None, _) if batch > 1 => ExecMode::Batched { b: batch },
            (None, _) => ExecMode::Baseline,
            (Some(_), d) => fail(&format!("--tile unsupported for a {d}D app")),
        };
        let mut d = sf_check::Design::new(a.app, a.v, a.p, mode, a.mem, a.wl);
        d.fifo_depth = a.fifo_depth;
        d.window_units = a.window_units;
        (d, format!("explicit V={} p={} {mode:?} {:?}", a.v, a.p, a.mem))
    } else {
        let best = wf.best_design(&a.app, &a.wl, a.iters).unwrap_or_else(|e| fail(&format!("{e}")));
        let mut d = sf_check::Design::from_synthesized(&best.design, &a.wl);
        d.fifo_depth = a.fifo_depth;
        d.window_units = a.window_units;
        let src = format!(
            "DSE-selected V={} p={} {:?} {:?}",
            best.design.v, best.design.p, best.design.mode, best.design.mem
        );
        (d, src)
    };
    // seeded spec drift: override the declared order / per-cell ops on the
    // checked design (the DSE above, if any, ran on the clean spec) so the
    // kernel-analysis rules have something to catch
    let mut design = design;
    if let Some(order) = a.assume_order {
        design.spec.order = order;
    }
    if let Some(gdsp) = a.assume_gdsp {
        // a synthetic OpCount whose fp32 DSP cost is exactly `gdsp`
        // (adds cost 2; one mul costs 3 covers odd targets)
        design.spec.ops = if gdsp % 2 == 0 {
            sf_kernels::OpCount::new(gdsp / 2, 0, 0)
        } else {
            sf_kernels::OpCount::new((gdsp - 3) / 2, 1, 0)
        };
    }
    let mut rep = sf_check::check(&wf.device, &design);
    // the kernel-analysis rules (SFC-K01..K05) ride on every check run
    rep.extend_diagnostics(sf_absint::app_diagnostics(&design.spec, design.p));
    if a.json {
        println!("{}", serde_json::to_string_pretty(&rep).unwrap());
    } else {
        println!("design             : {source}");
        print!("{}", rep.render());
    }
    if rep.has_errors() {
        std::process::exit(1);
    }
}

/// The `faults` subcommand has its own flag set (no `--mesh`: campaign
/// workloads are fixed so seeds stay comparable across runs).
fn run_faults(argv: &[String], started: std::time::Instant) {
    use sf_bench::faults::{run_campaign, CampaignApp, CampaignConfig, RecoveryMode};
    let get = |flag: &str| -> Option<String> {
        argv.iter().position(|a| a == flag).and_then(|i| argv.get(i + 1).cloned())
    };
    // Collect every value of a repeatable flag, in command-line order.
    let get_all = |flag: &str| -> Vec<String> {
        argv.iter()
            .enumerate()
            .filter(|(_, a)| a.as_str() == flag)
            .map(|(i, _)| {
                argv.get(i + 1).cloned().unwrap_or_else(|| fail(&format!("{flag} needs a value")))
            })
            .collect()
    };
    let apps: Vec<CampaignApp> = match get("--app") {
        None => CampaignApp::ALL.to_vec(),
        Some(name) => match CampaignApp::parse(&name) {
            Some(a) => vec![a],
            None => fail(&format!("unknown app '{name}' (expected poisson2d|jacobi3d|rtm3d)")),
        },
    };
    let seed: u64 = match get("--seed") {
        None => 42,
        Some(s) => {
            s.parse().unwrap_or_else(|_| fail(&format!("--seed must be an integer (got '{s}')")))
        }
    };
    let mut cfg = CampaignConfig { seed, ..CampaignConfig::default() };
    let rates: Vec<u32> = get_all("--rate")
        .into_iter()
        .map(|s| match s.parse::<u32>() {
            Ok(0) | Err(_) => fail(&format!("--rate must be a positive ppm count (got '{s}')")),
            Ok(r) => r,
        })
        .collect();
    if !rates.is_empty() {
        cfg.rates_ppm = rates;
    }
    if let Some(s) = get("--trials") {
        cfg.trials_per_cell = match s.parse::<u32>() {
            Ok(0) | Err(_) => fail(&format!("--trials must be a positive integer (got '{s}')")),
            Ok(n) => n,
        };
    }
    cfg.jobs = sf_par::resolve_jobs(get("--jobs").map(|s| match s.parse::<usize>() {
        Ok(0) | Err(_) => fail(&format!("--jobs must be a positive integer (got '{s}')")),
        Ok(n) => n,
    }));
    if let Some(s) = get("--recovery") {
        cfg.recovery = RecoveryMode::parse(&s)
            .unwrap_or_else(|| fail(&format!("--recovery must be rerun or rollback (got '{s}')")));
    }
    if let Some(s) = get("--exec") {
        cfg.engine = sf_fpga::ExecEngine::parse(&s)
            .unwrap_or_else(|| fail(&format!("--exec must be scalar or fast (got '{s}')")));
    }
    // Like `--checkpoint-every 0`, a zero device count is a
    // misconfiguration, rejected up front rather than silently clamped.
    if let Some(s) = get("--devices") {
        cfg.devices = match s.parse::<usize>() {
            Ok(0) | Err(_) => fail(&format!("--devices must be a positive integer (got '{s}')")),
            Ok(n) => n,
        };
    }
    // A zero interval would mean "never checkpoint" — under rollback that
    // is a misconfiguration (nothing to restore), so it is rejected up
    // front rather than silently clamped.
    let intervals: Vec<usize> = get_all("--checkpoint-every")
        .into_iter()
        .map(|s| match s.parse::<usize>() {
            Ok(0) | Err(_) => {
                fail(&format!("--checkpoint-every must be a positive pass count (got '{s}')"))
            }
            Ok(n) => n,
        })
        .collect();
    if !intervals.is_empty() {
        cfg.checkpoint_every = intervals;
    }
    if let Some(s) = get("--max-retries") {
        // u32 parse rejects negatives and values beyond u32::MAX with the
        // bound spelled out, so a typo'd retry budget cannot wrap around.
        cfg.max_retries = s.parse::<u32>().unwrap_or_else(|_| {
            fail(&format!("--max-retries must be an integer in 0..={} (got '{s}')", u32::MAX))
        });
    }
    let kinds: Vec<sf_fpga::FaultKind> = get_all("--kind")
        .into_iter()
        .map(|s| {
            sf_fpga::FaultKind::parse(&s).unwrap_or_else(|| {
                fail(&format!(
                    "unknown fault kind '{s}' (expected bitflip|fifo-drop|fifo-dup|fifo-corrupt|axi-delay|axi-fail)"
                ))
            })
        })
        .collect();
    if !kinds.is_empty() {
        cfg.kinds = kinds;
    }
    // Mandatory static pre-flight of every campaign design, reported (on
    // stderr, so --json stdout stays machine-parseable) before a single
    // trial executes: any later detection is attributable to the injected
    // fault, not a latent design-rule violation.
    for (app, rep) in sf_bench::faults::preflight_devices(&apps, cfg.devices) {
        if rep.diagnostics.is_empty() {
            eprintln!("preflight {}: ok — no design-rule diagnostics", app.name());
        } else {
            eprintln!("preflight {}:", app.name());
            eprint!("{}", rep.render());
        }
        // A sharding the SFC-X rule rejects (shard narrower than the halo
        // depth) is a usage error, same exit code as `--devices 0`.
        if cfg.devices > 1 && rep.has_errors() {
            fail(&format!(
                "--devices {} is illegal for the {} campaign design (see preflight above)",
                cfg.devices,
                app.name()
            ));
        }
    }
    let report = run_campaign(&apps, &cfg);
    if let Some(path) = get("--record-out") {
        for rec in sf_bench::reportcmd::records_for_campaign(&report, &cfg) {
            write_record(&path, rec, started);
        }
    }
    if argv.iter().any(|a| a == "--json") {
        println!("{}", serde_json::to_string_pretty(&report).unwrap());
    } else {
        print!("{}", report.render_table());
    }
    if !report.all_accounted() {
        std::process::exit(1);
    }
}

fn main() {
    let started = std::time::Instant::now();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("faults") {
        run_faults(&argv[1..], started);
        return;
    }
    // `report <store.jsonl>` (positional path) is the cross-run report;
    // `report --app ... --v V --p P` stays the per-design estimate.
    if argv.first().map(String::as_str) == Some("report")
        && argv.get(1).is_some_and(|arg| !arg.starts_with("--"))
    {
        std::process::exit(sf_bench::reportcmd::run(&argv[1..]));
    }
    // `check --explain SFC-XXX` needs no --app/--mesh, so it is routed
    // before the full argument parser
    if argv.first().map(String::as_str) == Some("check") {
        if let Some(i) = argv.iter().position(|arg| arg == "--explain") {
            match argv.get(i + 1) {
                Some(code) => run_explain(code),
                None => fail("--explain needs a rule code (e.g. --explain SFC-K05)"),
            }
        }
    }
    let a = parse();
    let mut wf = Workflow::u280_vs_v100();
    if a.devices > 1 {
        // dse sweeps device counts 1,2,4,…,K alongside V/p (statically
        // illegal shardings are pruned by SFC-X); profile/check take the
        // exact count from MultiConfig below.
        let mut counts = Vec::new();
        let mut d = 1usize;
        while d < a.devices {
            counts.push(d);
            d *= 2;
        }
        counts.push(a.devices);
        wf.opts.device_candidates = counts;
        wf.opts.link = a.link;
    }
    match a.cmd.as_str() {
        "feasibility" => {
            let r = wf.feasibility(&a.app, &a.wl).unwrap_or_else(|e| fail(&format!("{e}")));
            if a.json {
                println!("{}", serde_json::to_string_pretty(&r).unwrap());
                return;
            }
            println!("application        : {}", r.app);
            println!("nominal V          : {}", r.v);
            println!("V_max (bandwidth)  : {}", r.v_max_bandwidth);
            println!("p_dsp / p_mem      : {} / {}", r.p_dsp, r.p_mem);
            println!("recommended p      : {}", r.p_recommended);
            println!("baseline feasible  : {}", r.baseline_feasible);
            println!("needs tiling       : {}", r.needs_tiling);
            println!("flops per ext byte : {:.2}", r.flops_per_byte);
        }
        "dse" => {
            let cands = wf
                .explore_jobs(&a.app, &a.wl, a.iters, a.jobs)
                .unwrap_or_else(|e| fail(&format!("{e}")));
            if let (Some(path), Some(best)) = (&a.record_out, cands.first()) {
                let rec = sf_bench::reportcmd::record_for_dse(best, &a.wl, a.iters, a.jobs);
                write_record(path, rec, started);
            }
            if a.json {
                let top: Vec<_> = cands.iter().take(a.top).collect();
                println!("{}", serde_json::to_string_pretty(&top).unwrap());
                return;
            }
            if cands.is_empty() {
                println!("no feasible design (try tiling or a smaller mesh)");
                return;
            }
            println!(
                "{:<4} {:>4} {:>4} {:>4} {:<28} {:>9} {:>12} {:>12}",
                "#", "V", "p", "dev", "mode", "MHz", "plan ms", "pred ms"
            );
            for (i, c) in cands.iter().take(a.top).enumerate() {
                println!(
                    "{:<4} {:>4} {:>4} {:>4} {:<28} {:>9.0} {:>12.2} {:>12.2}",
                    i + 1,
                    c.design.v,
                    c.design.p,
                    c.devices,
                    format!("{:?}", c.design.mode),
                    c.design.freq_mhz(),
                    c.planned_runtime_s * 1e3,
                    c.prediction.runtime_s * 1e3,
                );
            }
        }
        "compare" => match wf.compare(&a.app, &a.wl, a.iters) {
            Ok(cmp) => {
                println!("{}", sf_fpga::report::utilization_report(&wf.device, &cmp.design));
                println!("{}", cmp.verdict());
            }
            Err(e) => fail(&format!("{e}")),
        },
        "report" => {
            if a.v == 0 || a.p == 0 {
                fail("report needs explicit --v and --p");
            }
            match synthesize(&wf.device, &a.app, a.v, a.p, ExecMode::Baseline, MemKind::Hbm, &a.wl)
            {
                Ok(ds) => {
                    let rep = wf.fpga_estimate(&ds, &a.wl, a.iters);
                    if a.json {
                        println!("{}", serde_json::to_string_pretty(&rep).unwrap());
                        return;
                    }
                    println!("{}", sf_fpga::report::utilization_report(&wf.device, &ds));
                    println!("{}", rep.summary());
                }
                Err(e) => println!("synthesis rejected the configuration: {e}"),
            }
        }
        "explain" => match wf.best_design(&a.app, &a.wl, a.iters) {
            Ok(best) => {
                println!("{}", sf_fpga::report::utilization_report(&wf.device, &best.design));
                let tr = sf_fpga::trace::explain(&wf.device, &best.design, &a.wl, a.iters);
                println!("{}", tr.render());
            }
            Err(e) => fail(&format!("{e}")),
        },
        "profile" => match wf.profile_multi(
            &a.app,
            &a.wl,
            a.iters,
            a.jobs,
            a.exec,
            &sf_multi::MultiConfig { devices: a.devices, link: a.link },
        ) {
            Ok(pr) => {
                if let Some(path) = &a.trace_out {
                    let json = chrome::to_chrome_json(&pr.recorder);
                    std::fs::write(path, json)
                        .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
                    eprintln!("chrome trace written to {path}");
                }
                if let Some(path) = &a.record_out {
                    write_record(path, pr.to_run_record(), started);
                }
                if a.json {
                    println!("{}", metrics::to_metrics_json(&pr.recorder));
                    return;
                }
                println!("{}", sf_fpga::report::utilization_report(&wf.device, &pr.design));
                // the pre-flight ran (mandatorily) before execution inside
                // Workflow::profile; surface its verdict first
                if pr.preflight.diagnostics.is_empty() {
                    println!("preflight          : ok — no design-rule diagnostics");
                } else {
                    println!("preflight          :");
                    print!("{}", pr.preflight.render());
                }
                println!(
                    "mode               : {}",
                    if pr.behavioral { "behavioral (numerics streamed)" } else { "schedule-only" }
                );
                if let Some(sh) = &pr.sharded {
                    println!(
                        "devices            : {} (exchange {} B/pass, {} exposed cycles total)",
                        pr.devices, sh.exchange_bytes_per_pass, sh.exchange_exposed_cycles
                    );
                }
                println!("total cycles       : {}", pr.report.total_cycles);
                println!("runtime            : {:.3} ms", pr.report.runtime_s * 1e3);
                let b = pr.recorder.stall_breakdown();
                println!("stall attribution  :");
                for (label, class) in [
                    ("compute", StallClass::Compute),
                    ("memory", StallClass::Memory),
                    ("backpressure", StallClass::Backpressure),
                    ("exchange", StallClass::Exchange),
                ] {
                    println!(
                        "  {:<14} {:>14} cycles  ({:5.1} %)",
                        label,
                        b.cycles(class),
                        b.fraction(class) * 100.0
                    );
                }
                println!("  dominant       {:?}", b.dominant());
                println!("model accuracy     : {}", pr.divergence.summary());
            }
            Err(e) => fail(&format!("{e}")),
        },
        "check" => run_check(&a, &wf),
        other => fail(&format!("unknown command '{other}'")),
    }
}
