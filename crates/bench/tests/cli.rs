//! End-to-end tests for the `sfstencil` binary.

use serde::Value;
use std::process::Command;

fn sfstencil() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sfstencil"))
}

#[test]
fn unknown_subcommand_exits_2_with_usage() {
    let out = sfstencil().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown command 'frobnicate'"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
    assert!(stderr.contains("profile"), "usage must list profile: {stderr}");
}

#[test]
fn missing_command_exits_2() {
    let out = sfstencil().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn profile_writes_loadable_chrome_trace() {
    let path = std::env::temp_dir().join("sfstencil_cli_trace.json");
    let out = sfstencil()
        .args(["profile", "--app", "poisson", "--mesh", "200x100", "--iters", "100", "--trace-out"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("stall attribution"), "{stdout}");
    assert!(stdout.contains("model divergence"), "{stdout}");

    let doc: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
    assert!(events.len() > 10);
    for e in events {
        assert!(e.get("ph").and_then(Value::as_str).is_some());
        assert!(e.get("pid").and_then(Value::as_u64).is_some());
        assert!(e.get("name").and_then(Value::as_str).is_some());
        if e.get("ph").and_then(Value::as_str) == Some("X") {
            assert!(e.get("ts").is_some() && e.get("dur").is_some());
            assert!(e.get("tid").and_then(Value::as_u64).is_some());
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn profile_json_emits_metrics_document() {
    let out = sfstencil()
        .args(["profile", "--app", "poisson", "--mesh", "200x100", "--iters", "100", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let doc: Value = serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).unwrap();
    assert!(doc.get("stalls").is_some());
    let div = doc.get("divergence").expect("divergence emitted on every run");
    assert!(div.get("pct").is_some());
}

#[test]
fn feasibility_json_parses() {
    let out = sfstencil()
        .args(["feasibility", "--app", "jacobi", "--mesh", "100x100x100", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let doc: Value = serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).unwrap();
    assert!(doc.get("baseline_feasible").is_some());
}
