//! Schedule-level telemetry: turn a design's cycle plan into recorder
//! events — per-pass and per-segment spans, per-channel AXI utilisation,
//! FIFO backpressure, and a compute/memory/backpressure stall breakdown.
//!
//! The emitted spans follow the *deterministic* streaming schedule of
//! [`crate::cycles::plan`] (model cycles, not wall clock), so they
//! reconcile exactly with the plan's totals:
//!
//! * spans on the `pipeline` track sum to `total_cycles`;
//! * spans on the `segments` track (tiles plus the pipeline-latency
//!   remainder) sum to `cycles_per_pass`;
//! * the compute/memory stall attribution equals
//!   [`crate::trace::PlanTrace::stall_breakdown`] by construction, with
//!   FIFO backpressure observed by a producer/consumer model on top.
//!
//! Both invariants are pinned by property tests.

use crate::axi;
use crate::cycles::{self, CyclePlan};
use crate::design::{ExecMode, MemKind, StencilDesign, Workload};
use crate::device::{FpgaDevice, MemorySpec};
use crate::fifo;
use crate::trace;
use serde::Value;
use sf_telemetry::{Recorder, StallClass};

/// Individual pass spans beyond this count are collapsed into one
/// aggregate span so 60 000-iteration runs don't emit 1 000 identical
/// events.
const MAX_PASS_SPANS: u64 = 256;

/// Rows actually stepped by the FIFO backpressure model; longer streams
/// are sampled and scaled.
const MAX_BACKPRESSURE_ROWS: u64 = 4096;

fn mem_spec(dev: &FpgaDevice, mem: MemKind) -> &MemorySpec {
    match mem {
        MemKind::Hbm => &dev.hbm,
        MemKind::Ddr4 => &dev.ddr4,
    }
}

/// Emit the full schedule trace for `(design, wl, niter)` into `rec` and
/// return the cycle plan it narrates. With a disabled recorder this is
/// exactly [`cycles::plan`].
pub fn trace_schedule(
    dev: &FpgaDevice,
    design: &StencilDesign,
    wl: &Workload,
    niter: u64,
    rec: &mut Recorder,
) -> CyclePlan {
    let plan = cycles::plan(dev, design, wl, niter);
    if !rec.is_enabled() {
        return plan;
    }
    let tr = trace::explain(dev, design, wl, niter);

    rec.set_meta("mode", Value::String(format!("{:?}", design.mode)));
    rec.set_meta("v", Value::U64(design.v as u64));
    rec.set_meta("p", Value::U64(design.p as u64));
    rec.set_meta("freq_mhz", Value::F64(design.freq_hz / 1e6));
    rec.set_meta("passes", Value::U64(plan.passes));
    rec.set_meta("cycles_per_pass", Value::U64(plan.cycles_per_pass));
    rec.set_meta("total_cycles", Value::U64(plan.total_cycles));

    // ---- per-pass spans: pass i occupies [i·cpp, (i+1)·cpp) ----------------
    let pipe = rec.track("pipeline");
    let cpp = plan.cycles_per_pass;
    let shown = plan.passes.min(MAX_PASS_SPANS);
    for i in 0..shown {
        rec.span(pipe, &format!("pass {i}"), i * cpp, (i + 1) * cpp);
    }
    if plan.passes > shown {
        rec.span_with_args(
            pipe,
            &format!("passes {shown}..{}", plan.passes),
            shown * cpp,
            plan.passes * cpp,
            vec![("aggregated_passes".into(), Value::U64(plan.passes - shown))],
        );
    }

    // ---- per-segment (tile) spans inside the first pass --------------------
    // Each segment costs (data + fill) rows at its row rate, plus — for
    // blocked modes — the per-tile AXI turnaround; the pass closes with the
    // compute-pipeline latency. The sum reproduces cycles_per_pass exactly.
    let seg_track = rec.track("segments");
    let tile_overhead = match design.mode {
        ExecMode::Tiled1D { .. } | ExecMode::Tiled2D { .. } => dev.axi_latency_cycles as u64,
        _ => 0,
    };
    let mem = mem_spec(dev, design.mem);
    let spec = &design.spec;
    let mut cursor = 0u64;
    for s in &tr.segments {
        let dur = (s.data_rows + s.fill_rows) * s.row_cycles + tile_overhead;
        rec.span_with_args(
            seg_track,
            &s.label,
            cursor,
            cursor + dur,
            vec![
                ("data_rows".into(), Value::U64(s.data_rows)),
                ("fill_rows".into(), Value::U64(s.fill_rows)),
                ("row_cycles".into(), Value::U64(s.row_cycles)),
                ("bound".into(), Value::String(format!("{:?}", s.bound))),
            ],
        );
        // Per-channel burst utilisation for this segment's rows: bytes are
        // spread evenly across the assigned channels, so every channel in a
        // direction sees the same duty cycle.
        let t = axi::row_timing(
            dev,
            mem,
            design.freq_hz,
            design.v,
            s.cells_per_row,
            s.cells_per_row * spec.ext_read_bytes,
            s.write_cells_per_row * spec.ext_write_bytes,
            design.read_channels,
            design.write_channels,
        );
        for ch in 0..design.read_channels {
            let track = rec.track(&format!("axi:rd{ch}"));
            rec.gauge(track, "utilization", cursor, t.read_utilization());
        }
        for ch in 0..design.write_channels {
            let track = rec.track(&format!("axi:wr{ch}"));
            rec.gauge(track, "utilization", cursor, t.write_utilization());
        }
        cursor += dur;
    }
    rec.span(seg_track, "pipeline latency", cursor, cursor + design.pipeline_latency_cycles);
    debug_assert_eq!(
        cursor + design.pipeline_latency_cycles,
        cpp,
        "segment spans must tile cycles_per_pass"
    );

    // ---- stall attribution --------------------------------------------------
    // Compute/memory come straight from the plan's per-row classification;
    // backpressure from a FIFO model below.
    let b = tr.stall_breakdown();
    rec.stall(StallClass::Compute, b.compute_cycles);
    rec.stall(StallClass::Memory, b.memory_cycles);

    // ---- FIFO backpressure between the compute chain and the write engine --
    // The producer emits one row every max(compute, read) + gap cycles; the
    // write engine drains one every `write` cycles, through the interstage
    // FIFO the synthesizer sizes. With write ≤ producer rate (every design
    // the static plan calls compute- or read-bound) the FIFO never fills and
    // zero backpressure is recorded — matching PlanTrace. A write-dominated
    // segment fills the FIFO and surfaces producer stalls here.
    if let Some(s) = tr.segments.iter().max_by_key(|s| s.data_rows + s.fill_rows) {
        let t = axi::row_timing(
            dev,
            mem,
            design.freq_hz,
            design.v,
            s.cells_per_row,
            s.cells_per_row * spec.ext_read_bytes,
            s.write_cells_per_row * spec.ext_write_bytes,
            design.read_channels,
            design.write_channels,
        );
        let produce = t.compute.max(t.read) + t.gap;
        let drain = t.write.max(1);
        let depth_words = fifo::interstage_depth(dev.axi_burst_bytes, design.v, spec.elem_bytes);
        let cap_rows = (depth_words * design.v / s.cells_per_row.max(1)).max(1);
        let rows_per_pass = s.data_rows + s.fill_rows;
        let sim_rows = rows_per_pass.min(MAX_BACKPRESSURE_ROWS);
        let bp = fifo::simulate_backpressure(sim_rows, produce, drain, cap_rows);
        // Scale the sampled pass back up to the full run.
        let scale = |x: u64| {
            (x as f64 * (rows_per_pass as f64 / sim_rows.max(1) as f64) * plan.passes as f64) as u64
        };
        rec.counter_add("fifo.total_pushes", scale(bp.total_pushes));
        rec.counter_add("fifo.stalls", scale(bp.stats.stalls));
        let fifo_track = rec.track("fifo:chain->wr");
        rec.gauge(fifo_track, "high_water", 0, bp.stats.high_water as f64);
        rec.gauge(fifo_track, "capacity", 0, bp.stats.capacity as f64);
        rec.gauge(fifo_track, "stall_rate", 0, {
            let attempts = bp.stats.stalls + bp.total_pushes;
            if attempts == 0 {
                0.0
            } else {
                bp.stats.stalls as f64 / attempts as f64
            }
        });
        rec.stall(StallClass::Backpressure, scale(bp.stall_cycles));
    }

    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::synthesize;
    use sf_kernels::StencilSpec;

    fn dev() -> FpgaDevice {
        FpgaDevice::u280()
    }

    #[test]
    fn pass_spans_sum_to_total_cycles() {
        let wl = Workload::D2 { nx: 200, ny: 100, batch: 1 };
        let ds = synthesize(
            &dev(),
            &StencilSpec::poisson(),
            8,
            60,
            ExecMode::Baseline,
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let mut rec = Recorder::enabled(300.0);
        let plan = trace_schedule(&dev(), &ds, &wl, 600, &mut rec);
        let pipe = rec.find_track("pipeline").unwrap();
        assert_eq!(rec.track_span_cycles(pipe), plan.total_cycles);
        assert_eq!(rec.max_cycle(), plan.total_cycles);
    }

    #[test]
    fn aggregated_passes_still_sum_exactly() {
        let wl = Workload::D2 { nx: 200, ny: 100, batch: 1 };
        let ds = synthesize(
            &dev(),
            &StencilSpec::poisson(),
            8,
            60,
            ExecMode::Baseline,
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let mut rec = Recorder::enabled(300.0);
        // 60 000 iters → 1000 passes > MAX_PASS_SPANS → aggregate tail span.
        let plan = trace_schedule(&dev(), &ds, &wl, 60_000, &mut rec);
        assert_eq!(plan.passes, 1000);
        let pipe = rec.find_track("pipeline").unwrap();
        assert_eq!(rec.track_span_cycles(pipe), plan.total_cycles);
        let n_spans = rec.spans().iter().filter(|s| s.track == pipe).count() as u64;
        assert_eq!(n_spans, MAX_PASS_SPANS + 1);
    }

    #[test]
    fn segment_spans_tile_one_pass() {
        let wl = Workload::D2 { nx: 15_000, ny: 15_000, batch: 1 };
        let ds = synthesize(
            &dev(),
            &StencilSpec::poisson(),
            8,
            60,
            ExecMode::Tiled1D { tile_m: 4096 },
            MemKind::Ddr4,
            &wl,
        )
        .unwrap();
        let mut rec = Recorder::enabled(300.0);
        let plan = trace_schedule(&dev(), &ds, &wl, 6_000, &mut rec);
        let seg = rec.find_track("segments").unwrap();
        assert_eq!(rec.track_span_cycles(seg), plan.cycles_per_pass);
    }

    #[test]
    fn compute_memory_attribution_matches_plan_trace() {
        let wl = Workload::D2 { nx: 200, ny: 100, batch: 1 };
        let ds = synthesize(
            &dev(),
            &StencilSpec::poisson(),
            8,
            60,
            ExecMode::Baseline,
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let mut rec = Recorder::enabled(300.0);
        trace_schedule(&dev(), &ds, &wl, 600, &mut rec);
        let expect = trace::explain(&dev(), &ds, &wl, 600).stall_breakdown();
        let got = rec.stall_breakdown();
        assert_eq!(got.compute_cycles, expect.compute_cycles);
        assert_eq!(got.memory_cycles, expect.memory_cycles);
        // Poisson baseline: write side no slower than compute → no
        // backpressure, and the FIFO counters say so.
        assert_eq!(got.backpressure_cycles, 0);
        assert_eq!(rec.counter("fifo.stalls"), 0);
        assert!(rec.counter("fifo.total_pushes") > 0);
    }

    #[test]
    fn axi_utilization_gauges_per_channel() {
        let wl = Workload::D3 { nx: 600, ny: 600, nz: 600, batch: 1 };
        let ds = synthesize(
            &dev(),
            &StencilSpec::jacobi(),
            64,
            3,
            ExecMode::Tiled2D { tile_m: 640, tile_n: 640 },
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let mut rec = Recorder::enabled(300.0);
        trace_schedule(&dev(), &ds, &wl, 120, &mut rec);
        // One gauge track per read and write channel.
        for ch in 0..ds.read_channels {
            let t = rec.find_track(&format!("axi:rd{ch}")).unwrap();
            let g: Vec<_> = rec.gauges().iter().filter(|g| g.track == t).collect();
            assert!(!g.is_empty());
            assert!(g.iter().all(|g| (0.0..=1.0).contains(&g.value)));
        }
        assert!(rec.track_names().iter().any(|t| t.starts_with("axi:wr")));
    }

    #[test]
    fn disabled_recorder_reduces_to_plan() {
        let wl = Workload::D2 { nx: 200, ny: 100, batch: 1 };
        let ds = synthesize(
            &dev(),
            &StencilSpec::poisson(),
            8,
            60,
            ExecMode::Baseline,
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let mut rec = Recorder::disabled();
        let plan = trace_schedule(&dev(), &ds, &wl, 600, &mut rec);
        assert_eq!(plan, cycles::plan(&dev(), &ds, &wl, 600));
        assert!(rec.spans().is_empty());
    }
}
