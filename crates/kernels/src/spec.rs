//! Application descriptors consumed by the analytic model and simulator.
//!
//! A [`StencilSpec`] captures everything the paper's performance/resource
//! model (§III-A, §IV) needs to know about an application *without* running
//! it: dimensionality, stencil order `D`, element size `k`, fused stage
//! count, per-cell arithmetic (→ `G_dsp`), and the byte-accounting
//! conventions used for bandwidth reporting.

use crate::jacobi3d::Jacobi3D;
use crate::ops::{NumberFormat, OpCount};
use crate::poisson::Poisson2D;
use crate::rtm;
use serde::{Deserialize, Serialize};

/// Which of the paper's three applications a spec describes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppId {
    /// Poisson-5pt-2D (§V-A).
    Poisson2D,
    /// Jacobi-7pt-3D (§V-B).
    Jacobi3D,
    /// Reverse Time Migration forward pass (§V-C).
    Rtm3D,
    /// A user-defined stencil built with [`crate::star`] — the workflow
    /// applied beyond the paper's three applications.
    Custom,
}

impl AppId {
    /// All three applications, in the paper's order.
    pub const ALL: [AppId; 3] = [AppId::Poisson2D, AppId::Jacobi3D, AppId::Rtm3D];

    /// The spec for this application, or `None` for [`AppId::Custom`] —
    /// custom stencils carry their own spec (see [`crate::star`]).
    pub fn try_spec(self) -> Option<StencilSpec> {
        match self {
            AppId::Poisson2D => Some(StencilSpec::poisson()),
            AppId::Jacobi3D => Some(StencilSpec::jacobi()),
            AppId::Rtm3D => Some(StencilSpec::rtm()),
            AppId::Custom => None,
        }
    }

    /// The spec for this application.
    ///
    /// # Panics
    /// Panics for [`AppId::Custom`] — custom stencils carry their own spec;
    /// use [`AppId::try_spec`] when the app id is not statically known.
    pub fn spec(self) -> StencilSpec {
        assert!(!matches!(self, AppId::Custom), "custom stencils carry their own spec");
        match self {
            AppId::Jacobi3D => StencilSpec::jacobi(),
            AppId::Rtm3D => StencilSpec::rtm(),
            _ => StencilSpec::poisson(),
        }
    }
}

impl core::fmt::Display for AppId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            AppId::Poisson2D => "Poisson-5pt-2D",
            AppId::Jacobi3D => "Jacobi-7pt-3D",
            AppId::Rtm3D => "Reverse Time Migration",
            AppId::Custom => "custom stencil",
        };
        f.write_str(s)
    }
}

/// Static description of a stencil application for modeling purposes.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StencilSpec {
    /// Which application this is.
    pub app: AppId,
    /// Mesh dimensionality (2 or 3).
    pub dims: usize,
    /// Stencil order `D` (rows/planes to buffer for perfect reuse).
    pub order: usize,
    /// Bytes of the external mesh element (the paper's `k = sizeof(t)`):
    /// what one cell costs to read or write from DDR4/HBM.
    pub elem_bytes: usize,
    /// Bytes per cell held in the *window buffers* (≥ `elem_bytes`; RTM's
    /// fused pipeline buffers the packed 20-lane stream).
    pub window_elem_bytes: usize,
    /// Fused pipeline stages per iteration (1 for single-loop apps,
    /// 4 for RTM's fused RK4).
    pub stages: usize,
    /// Per-cell arithmetic for one full iteration (all fused stages).
    pub ops: OpCount,
    /// Logical bytes/cell/iteration for bandwidth reporting (the paper's
    /// convention: mesh data accessed by the stencil loop).
    pub logical_rw_bytes: usize,
    /// External read bytes/cell/iteration after fusion (what actually moves
    /// from DDR4/HBM per unrolled iteration group ÷ p).
    pub ext_read_bytes: usize,
    /// External write bytes/cell/iteration after fusion.
    pub ext_write_bytes: usize,
    /// Datapath number representation (the paper evaluates Fp32; other
    /// formats model its future-work axis).
    pub format: NumberFormat,
}

impl StencilSpec {
    /// Poisson-5pt-2D: D = 2, scalar f32, single loop.
    pub const fn poisson() -> Self {
        StencilSpec {
            app: AppId::Poisson2D,
            dims: 2,
            order: Poisson2D::ORDER,
            elem_bytes: 4,
            window_elem_bytes: 4,
            stages: 1,
            ops: Poisson2D::op_count(),
            logical_rw_bytes: 8,
            ext_read_bytes: 4,
            ext_write_bytes: 4,
            format: NumberFormat::Fp32,
        }
    }

    /// Jacobi-7pt-3D: D = 2, scalar f32, single loop.
    pub const fn jacobi() -> Self {
        StencilSpec {
            app: AppId::Jacobi3D,
            dims: 3,
            order: Jacobi3D::ORDER,
            elem_bytes: 4,
            window_elem_bytes: 4,
            stages: 1,
            ops: Jacobi3D::op_count(),
            logical_rw_bytes: 8,
            ext_read_bytes: 4,
            ext_write_bytes: 4,
            format: NumberFormat::Fp32,
        }
    }

    /// RTM forward pass: D = 8, 6-lane state (24 B) externally, 20-lane
    /// packed stream (80 B) in the window buffers, 4 fused stages.
    ///
    /// Logical bandwidth counts each fused stage's stream traffic
    /// (in + out + ρ,μ = 24 + 24 + 8 = 56 B × 4 stages = 224 B/cell/iter),
    /// matching the paper's note that "the bandwidth reported is for the
    /// fused loop".
    pub const fn rtm() -> Self {
        StencilSpec {
            app: AppId::Rtm3D,
            dims: 3,
            order: 8,
            elem_bytes: 24,
            window_elem_bytes: rtm::RTM_PACKED_LANES * 4,
            stages: 4,
            ops: rtm::fused_op_count(),
            logical_rw_bytes: 224,
            ext_read_bytes: 24 + 8,
            ext_write_bytes: 24,
            format: NumberFormat::Fp32,
        }
    }

    /// Stencil radius `r = D/2`.
    pub const fn radius(&self) -> usize {
        self.order / 2
    }

    /// Effective per-iteration dependency order of the *fused* pipeline:
    /// `stages × D`. For single-loop applications this is just `D`, but a
    /// fused multi-stage iteration (RTM's RK4) propagates information
    /// `stages × D/2` cells per side — one radius per chained stage. This is
    /// the order spatial-blocking halos must use; note the paper's §V-C
    /// `M = 96` estimate applies eq. (12) with `D = 8`, under-estimating the
    /// fused halo by 4× (see `sf-fpga::exec3d::rtm_tiling_future_work`).
    pub const fn halo_order(&self) -> usize {
        self.order * self.stages
    }

    /// The paper's `G_dsp` for one mesh-point update of the fused pipeline,
    /// under the spec's number representation.
    pub const fn gdsp(&self) -> usize {
        self.ops.dsp_with(self.format)
    }

    /// Re-target the spec to another number representation: rescales every
    /// byte-accounting field by the lane-width ratio and switches the DSP
    /// cost model. The behavioral simulator still computes in `f32`; this
    /// affects the performance/resource model only (see DESIGN.md §6).
    pub const fn with_format(mut self, format: NumberFormat) -> Self {
        let old = self.format.lane_bytes();
        let new = format.lane_bytes();
        self.elem_bytes = self.elem_bytes * new / old;
        self.window_elem_bytes = self.window_elem_bytes * new / old;
        self.logical_rw_bytes = self.logical_rw_bytes * new / old;
        self.ext_read_bytes = self.ext_read_bytes * new / old;
        self.ext_write_bytes = self.ext_write_bytes * new / old;
        self.format = format;
        self
    }

    /// Floating-point operations per cell per iteration.
    pub const fn flops_per_cell(&self) -> usize {
        self.ops.flops()
    }

    /// Rough compute-pipeline latency in cycles for one unrolled iteration
    /// (all fused stages back to back, excluding window fill).
    pub fn pipeline_latency(&self) -> usize {
        self.ops.pipeline_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_spec_covers_the_paper_apps_and_refuses_custom() {
        for app in AppId::ALL {
            assert_eq!(app.try_spec(), Some(app.spec()));
        }
        assert_eq!(AppId::Custom.try_spec(), None);
    }

    #[test]
    #[should_panic(expected = "custom stencils carry their own spec")]
    fn spec_panics_for_custom() {
        let _ = AppId::Custom.spec();
    }

    #[test]
    fn poisson_spec_matches_paper() {
        let s = StencilSpec::poisson();
        assert_eq!(s.gdsp(), 14);
        assert_eq!(s.order, 2);
        assert_eq!(s.dims, 2);
        assert_eq!(s.radius(), 1);
        assert_eq!(s.stages, 1);
    }

    #[test]
    fn jacobi_spec_matches_paper() {
        let s = StencilSpec::jacobi();
        assert_eq!(s.gdsp(), 33);
        assert_eq!(s.dims, 3);
        assert_eq!(s.logical_rw_bytes, 8);
    }

    #[test]
    fn rtm_spec_shape() {
        let s = StencilSpec::rtm();
        assert_eq!(s.order, 8);
        assert_eq!(s.radius(), 4);
        assert_eq!(s.stages, 4);
        assert_eq!(s.elem_bytes, 24);
        assert_eq!(s.window_elem_bytes, 80);
        assert_eq!(s.logical_rw_bytes, 224);
        // same G_dsp band as the paper's 2444: p = 3 at V = 1 on the U280
        assert_eq!(s.gdsp(), 1974);
    }

    #[test]
    fn all_apps_resolve_specs() {
        for app in AppId::ALL {
            let s = app.spec();
            assert_eq!(s.app, app);
            assert!(s.gdsp() > 0);
            assert!(s.elem_bytes > 0);
            assert!(!format!("{app}").is_empty());
        }
    }

    #[test]
    fn with_format_rescales_consistently() {
        let s = StencilSpec::poisson().with_format(NumberFormat::Fp16);
        assert_eq!(s.elem_bytes, 2);
        assert_eq!(s.logical_rw_bytes, 4);
        assert_eq!(s.gdsp(), 6); // 4 adds + 2 muls at 1 DSP each
                                 // round-trip back to fp32 restores everything
        let back = s.with_format(NumberFormat::Fp32);
        assert_eq!(back, StencilSpec::poisson());

        let r = StencilSpec::rtm().with_format(NumberFormat::Fixed18);
        assert_eq!(r.elem_bytes, 12);
        assert_eq!(r.window_elem_bytes, 40);
        assert_eq!(r.gdsp(), 342); // muls only at 1 DSP
    }

    #[test]
    fn flops_accounting() {
        assert_eq!(StencilSpec::poisson().flops_per_cell(), 6);
        assert_eq!(StencilSpec::jacobi().flops_per_cell(), 13);
        assert_eq!(StencilSpec::rtm().flops_per_cell(), 816);
    }
}
