//! Sharded-vs-single-device conformance: the multi-device executors must
//! be **bit-identical** to the single-device batch executors for all three
//! paper applications, under both execution engines, for every device
//! count and host-thread count — the halo depth proof made checkable.

use sf_fpga::design::{synthesize, ExecMode, MemKind, Workload};
use sf_fpga::{
    simulate_batch_2d_parallel_exec, simulate_batch_3d_parallel_exec, ExecEngine, FpgaDevice,
};
use sf_kernels::{rtm, Jacobi3D, Poisson2D, RtmStage, StencilSpec};
use sf_mesh::{norms, Batch2D, Batch3D};
use sf_multi::{
    sharded_plan, simulate_batch_2d_sharded_exec, simulate_batch_3d_sharded_exec, LinkModel,
    MultiConfig,
};
use sf_telemetry::{Recorder, StallClass};

fn dev() -> FpgaDevice {
    FpgaDevice::u280()
}

const ENGINES: [ExecEngine; 2] = [ExecEngine::Scalar, ExecEngine::Fast];

#[test]
fn poisson2d_sharded_matches_single_device_bitwise() {
    let d = dev();
    let batch = Batch2D::<f32>::random(48, 32, 1, 7, -1.0, 1.0);
    let wl = Workload::D2 { nx: 48, ny: 32, batch: 1 };
    let ds = synthesize(&d, &StencilSpec::poisson(), 8, 4, ExecMode::Baseline, MemKind::Hbm, &wl)
        .unwrap();
    for engine in ENGINES {
        let (single, single_rep) = simulate_batch_2d_parallel_exec(
            engine,
            &d,
            &ds,
            &[Poisson2D],
            &batch,
            11,
            1,
            &mut Recorder::disabled(),
        );
        for devices in [1usize, 2, 4] {
            for jobs in [1usize, 3] {
                let cfg = MultiConfig::new(devices);
                let (out, rep) = simulate_batch_2d_sharded_exec(
                    engine,
                    &d,
                    &ds,
                    &[Poisson2D],
                    &batch,
                    11,
                    &cfg,
                    jobs,
                    &mut Recorder::disabled(),
                )
                .unwrap();
                assert!(
                    norms::bit_equal(out.as_slice(), single.as_slice()),
                    "poisson2d {engine:?} devices={devices} jobs={jobs}"
                );
                if devices == 1 {
                    assert_eq!(rep.total_cycles, single_rep.total_cycles);
                    assert_eq!(rep.runtime_s, single_rep.runtime_s);
                }
            }
        }
    }
}

#[test]
fn poisson2d_batched_sharded_matches_single_device() {
    let d = dev();
    let batch = Batch2D::<f32>::random(32, 24, 3, 19, -1.0, 1.0);
    let wl = Workload::D2 { nx: 32, ny: 24, batch: 3 };
    let ds = synthesize(
        &d,
        &StencilSpec::poisson(),
        8,
        3,
        ExecMode::Batched { b: 3 },
        MemKind::Hbm,
        &wl,
    )
    .unwrap();
    for engine in ENGINES {
        let (single, _) = simulate_batch_2d_parallel_exec(
            engine,
            &d,
            &ds,
            &[Poisson2D],
            &batch,
            7,
            2,
            &mut Recorder::disabled(),
        );
        for devices in [2usize, 4] {
            let (out, _) = simulate_batch_2d_sharded_exec(
                engine,
                &d,
                &ds,
                &[Poisson2D],
                &batch,
                7,
                &MultiConfig::new(devices),
                2,
                &mut Recorder::disabled(),
            )
            .unwrap();
            assert!(
                norms::bit_equal(out.as_slice(), single.as_slice()),
                "batched poisson2d {engine:?} devices={devices}"
            );
        }
    }
}

#[test]
fn jacobi3d_sharded_matches_single_device_bitwise() {
    let d = dev();
    let batch = Batch3D::<f32>::random(12, 10, 16, 1, 5, -1.0, 1.0);
    let wl = Workload::D3 { nx: 12, ny: 10, nz: 16, batch: 1 };
    let ds = synthesize(&d, &StencilSpec::jacobi(), 4, 2, ExecMode::Baseline, MemKind::Hbm, &wl)
        .unwrap();
    let k = Jacobi3D::smoothing();
    for engine in ENGINES {
        let (single, _) = simulate_batch_3d_parallel_exec(
            engine,
            &d,
            &ds,
            &[k],
            &batch,
            9,
            1,
            &mut Recorder::disabled(),
        );
        for devices in [1usize, 2, 4] {
            for jobs in [1usize, 3] {
                let (out, _) = simulate_batch_3d_sharded_exec(
                    engine,
                    &d,
                    &ds,
                    &[k],
                    &batch,
                    9,
                    &MultiConfig::new(devices),
                    jobs,
                    &mut Recorder::disabled(),
                )
                .unwrap();
                assert!(
                    norms::bit_equal(out.as_slice(), single.as_slice()),
                    "jacobi3d {engine:?} devices={devices} jobs={jobs}"
                );
            }
        }
    }
}

#[test]
fn rtm3d_sharded_matches_single_device_bitwise() {
    let d = dev();
    let (y, rho, mu) = rtm::demo_workload(10, 10, 64);
    let packed = rtm::pack(&y, &rho, &mu);
    let batch = Batch3D::from_meshes(std::slice::from_ref(&packed));
    let wl = Workload::D3 { nx: 10, ny: 10, nz: 64, batch: 1 };
    let ds =
        synthesize(&d, &StencilSpec::rtm(), 1, 1, ExecMode::Baseline, MemKind::Hbm, &wl).unwrap();
    let stages = RtmStage::pipeline(sf_kernels::RtmParams::default());
    for engine in ENGINES {
        let (single, _) = simulate_batch_3d_parallel_exec(
            engine,
            &d,
            &ds,
            &stages,
            &batch,
            2,
            1,
            &mut Recorder::disabled(),
        );
        // h = p·stages·⌈D/2⌉ = 1·4·4 = 16 planes; 64 planes across 4
        // devices gives 16-plane shards — the legality boundary exactly
        for devices in [1usize, 2, 4] {
            let (out, _) = simulate_batch_3d_sharded_exec(
                engine,
                &d,
                &ds,
                &stages,
                &batch,
                2,
                &MultiConfig::new(devices),
                2,
                &mut Recorder::disabled(),
            )
            .unwrap();
            assert!(
                norms::bit_equal(out.as_slice(), single.as_slice()),
                "rtm3d {engine:?} devices={devices}"
            );
        }
    }
}

#[test]
fn shard_per_row_is_still_bit_exact() {
    // The executor gathers halos from the pass-barrier global state, so it
    // stays bit-exact even for shards narrower than the halo (one row per
    // device). The *neighbour-only* link model no longer applies there —
    // which is precisely what the SFC-X check rule flags as illegal — but
    // numerics must not be the thing that breaks.
    let d = dev();
    let batch = Batch2D::<f32>::random(16, 8, 1, 3, -1.0, 1.0);
    let wl = Workload::D2 { nx: 16, ny: 8, batch: 1 };
    let ds = synthesize(&d, &StencilSpec::poisson(), 8, 4, ExecMode::Baseline, MemKind::Hbm, &wl)
        .unwrap();
    let (single, _) = simulate_batch_2d_parallel_exec(
        ExecEngine::Fast,
        &d,
        &ds,
        &[Poisson2D],
        &batch,
        5,
        1,
        &mut Recorder::disabled(),
    );
    let (out, _) = simulate_batch_2d_sharded_exec(
        ExecEngine::Fast,
        &d,
        &ds,
        &[Poisson2D],
        &batch,
        5,
        &MultiConfig::new(8),
        4,
        &mut Recorder::disabled(),
    )
    .unwrap();
    assert!(norms::bit_equal(out.as_slice(), single.as_slice()));
}

#[test]
fn sharded_traces_are_jobs_invariant_with_exchange_visible() {
    use sf_telemetry::{chrome::to_chrome_json, metrics::to_metrics_json};
    let d = dev();
    let batch = Batch2D::<f32>::random(32, 24, 2, 13, -1.0, 1.0);
    let wl = Workload::D2 { nx: 32, ny: 24, batch: 2 };
    let ds = synthesize(
        &d,
        &StencilSpec::poisson(),
        8,
        3,
        ExecMode::Batched { b: 2 },
        MemKind::Hbm,
        &wl,
    )
    .unwrap();
    // a deliberately slow link so exchange shows up exposed, not hidden
    let cfg =
        MultiConfig { devices: 3, link: LinkModel { latency_cycles: 100_000, bytes_per_cycle: 1 } };
    let run = |jobs: usize| {
        let mut rec = Recorder::enabled(ds.freq_hz / 1e6);
        let (out, rep) = simulate_batch_2d_sharded_exec(
            ExecEngine::Fast,
            &d,
            &ds,
            &[Poisson2D],
            &batch,
            6,
            &cfg,
            jobs,
            &mut rec,
        )
        .unwrap();
        (out, rep, rec)
    };
    let (out1, rep1, rec1) = run(1);
    let plan = sharded_plan(&d, &ds, &wl, 6, &cfg).unwrap();
    // exchange is visible in counters, stall breakdown, and the report
    assert_eq!(rec1.counter("exchange.bytes"), plan.merged.passes * plan.exchange_bytes_per_pass);
    assert!(rec1.counter("exchange.messages") > 0);
    let stalls = rec1.stall_breakdown();
    assert_eq!(stalls.cycles(StallClass::Exchange), plan.exchange_exposed_cycles);
    assert!(stalls.exchange_cycles > 0, "slow link must expose exchange");
    assert_eq!(rep1.total_cycles, plan.merged.total_cycles);
    // per-device swimlanes exist for every (device, mesh) pair
    for k in 0..3 {
        for i in 0..2 {
            let prefix = format!("dev{k}/mesh{i}/window/");
            assert!(
                rec1.track_names().iter().any(|t| t.starts_with(&prefix)),
                "missing swimlane {prefix}"
            );
        }
    }
    // byte-identical traces for every jobs value
    let (chrome1, metrics1) = (to_chrome_json(&rec1), to_metrics_json(&rec1));
    for jobs in [2usize, 5] {
        let (out, rep, rec) = run(jobs);
        assert!(norms::bit_equal(out.as_slice(), out1.as_slice()), "jobs={jobs}");
        assert_eq!(rep.total_cycles, rep1.total_cycles);
        assert_eq!(to_chrome_json(&rec), chrome1, "jobs={jobs}");
        assert_eq!(to_metrics_json(&rec), metrics1, "jobs={jobs}");
    }
}

#[test]
fn invalid_device_counts_surface_as_errors_not_panics() {
    let d = dev();
    let batch = Batch2D::<f32>::zeros(16, 8, 1);
    let wl = Workload::D2 { nx: 16, ny: 8, batch: 1 };
    let ds = synthesize(&d, &StencilSpec::poisson(), 8, 2, ExecMode::Baseline, MemKind::Hbm, &wl)
        .unwrap();
    for devices in [0usize, 9] {
        let r = simulate_batch_2d_sharded_exec(
            ExecEngine::Fast,
            &d,
            &ds,
            &[Poisson2D],
            &batch,
            4,
            &MultiConfig::new(devices),
            1,
            &mut Recorder::disabled(),
        );
        assert!(r.is_err(), "devices={devices} must be a typed error");
    }
}
