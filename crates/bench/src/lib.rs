#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sf-bench — the experiment harness
//!
//! One function per table/figure of the paper's evaluation section. Each
//! returns an [`Experiment`]: a labeled grid holding *our* simulated/modeled
//! numbers side by side with the *paper's* reported values, rendered as text
//! (for the terminal) or JSON (for EXPERIMENTS.md generation).
//!
//! ```text
//! cargo run --release -p sf-bench --bin experiments -- all
//! cargo run --release -p sf-bench --bin experiments -- table4 --json
//! ```

pub mod cli;
pub mod experiments;
pub mod faults;
pub mod paper;
pub mod reportcmd;
pub mod table;

pub use experiments::*;
pub use table::Experiment;
