#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sf-kernels — the paper's stencil applications and golden references
//!
//! This crate defines:
//!
//! * [`domain`] / [`probe`] — abstract-value domains and probe execution:
//!   every kernel's update is written once, generically over an
//!   [`AbstractValue`]; `f32` instantiates the concrete kernel, abstract
//!   domains (op counting, intervals, impulse probing — see `sf-absint`)
//!   re-execute the *same* code as a static analysis.
//! * [`ops`] / [`spec`] — arithmetic op counting ([`ops::OpCount`], with the
//!   Xilinx single-precision DSP costs fadd/fsub = 2, fmul = 3 that
//!   reproduce the paper's `G_dsp` figures) and the application descriptor
//!   [`spec::StencilSpec`] consumed by the analytic model.
//! * [`op2d`]/[`op3d`] — the [`StencilOp2D`]/[`StencilOp3D`] traits: a pure
//!   per-cell update over a neighborhood accessor. The FPGA dataflow
//!   simulator and the golden references call the *same* trait methods in the
//!   *same* per-cell floating-point order, so their results are bit-exact.
//! * [`poisson`] — Poisson-5pt-2D (paper eq. 16).
//! * [`jacobi3d`] — Jacobi-7pt-3D (paper eq. 18).
//! * [`rtm`] — the Reverse Time Migration forward pass (paper Algorithm 1):
//!   an RK4 time integrator over a 6-component state with a 25-point
//!   8th-order star stencil and PML-style damping, expressed as 4 fusable
//!   pipeline stages exactly as the paper fuses them.
//! * [`mod@reference`] — golden sequential executors (double-buffered,
//!   interior-update / boundary pass-through).
//! * [`parallel`] — Rayon executors used as the "GPU numerics" and as fast
//!   CPU baselines; bit-exact vs the sequential references because every
//!   output cell is an independent pure function of the input mesh.

pub mod domain;
pub mod jacobi3d;
pub mod lanes;
pub mod op2d;
pub mod op3d;
pub mod ops;
pub mod parallel;
pub mod poisson;
pub mod probe;
pub mod reference;
pub mod rtm;
pub mod spec;
pub mod star;
pub mod wave2d;
pub mod workloads;

pub use domain::{AbstractOp2D, AbstractOp3D, AbstractValue};
pub use jacobi3d::Jacobi3D;
pub use lanes::{LaneElement, LaneOp2D, LaneOp3D};
pub use op2d::StencilOp2D;
pub use op3d::StencilOp3D;
pub use ops::OpCount;
pub use poisson::Poisson2D;
pub use rtm::{RtmParams, RtmStage, RtmState, RTM_LANES, RTM_PACKED_LANES};
pub use spec::{AppId, StencilSpec};
pub use star::{StarStencil2D, StarStencil3D};
