//! GPU device descriptors.

use serde::{Deserialize, Serialize};

/// An HPC GPU modeled as a bandwidth-saturation machine.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuDevice {
    /// Human-readable name.
    pub name: String,
    /// Device memory capacity, bytes.
    pub mem_bytes: u64,
    /// Theoretical memory bandwidth, bytes/s (V100: 900 GB/s HBM2).
    pub peak_bw: f64,
    /// Achievable bandwidth for streaming stencil kernels, bytes/s —
    /// the fraction of peak a tuned order-2 stencil sustains (≈ 64 %).
    pub stencil_bw: f64,
    /// Working-set size at which kernels reach half of `stencil_bw`
    /// (occupancy ramp), bytes.
    pub sat_half_bytes: f64,
    /// Kernel launch + driver latency per kernel, seconds.
    pub launch_latency_s: f64,
    /// Idle board power, watts.
    pub idle_w: f64,
    /// Additional power at full memory utilization, watts.
    pub dynamic_w: f64,
    /// Cache-efficiency factor applied to high-order (radius ≥ 4) stencil
    /// kernels (the paper's f_pml reached ~180 of ~580 GB/s).
    pub high_order_eff: f64,
    /// Working-set scale (bytes) of the 3D large-mesh bandwidth droop:
    /// once a single mesh's footprint grows far beyond the L2, the z±1
    /// plane strides defeat the TLB/caches and effective bandwidth falls as
    /// `1/(1 + mesh_bytes/droop_bytes)`. Calibrated from the paper's
    /// Table V tiled section (600³ → 392 GB/s, 1800²×100 → 363 GB/s while
    /// 2D meshes of similar size hold ~607 GB/s).
    pub droop_3d_bytes: f64,
}

impl GpuDevice {
    /// The Nvidia Tesla V100 PCIe of the paper's Table I, with the
    /// saturation-model constants calibrated against Tables IV–VI
    /// (DESIGN.md §3.3).
    pub fn v100() -> Self {
        GpuDevice {
            name: "Nvidia Tesla V100 PCIe".to_string(),
            mem_bytes: 16 << 30,
            peak_bw: 900.0e9,
            stencil_bw: 580.0e9,
            sat_half_bytes: 2.2e6,
            launch_latency_s: 6.0e-6,
            idle_w: 40.0,
            dynamic_w: 200.0,
            high_order_eff: 0.35,
            droop_3d_bytes: 3.6e9,
        }
    }

    /// Bandwidth droop factor for a 3D kernel over a mesh of `mesh_bytes`
    /// footprint (1.0 for 2D kernels and small meshes).
    pub fn droop_3d(&self, dims: usize, mesh_bytes: f64) -> f64 {
        if dims == 3 {
            1.0 / (1.0 + mesh_bytes / self.droop_3d_bytes)
        } else {
            1.0
        }
    }

    /// Effective bandwidth for a kernel touching `bytes` of memory.
    pub fn bw_eff(&self, bytes: f64) -> f64 {
        self.stencil_bw * bytes / (bytes + self.sat_half_bytes)
    }

    /// Board power while sustaining `bw` bytes/s.
    pub fn power_w(&self, bw: f64) -> f64 {
        self.idle_w + self.dynamic_w * (bw / self.stencil_bw).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_matches_paper_table1() {
        let g = GpuDevice::v100();
        assert_eq!(g.mem_bytes, 16 << 30);
        assert!((g.peak_bw - 900.0e9).abs() < 1e6);
    }

    #[test]
    fn bw_curve_saturates() {
        let g = GpuDevice::v100();
        // tiny kernels crawl, huge kernels approach stencil peak
        assert!(g.bw_eff(160.0e3) < 45.0e9);
        assert!(g.bw_eff(160.0e6) > 550.0e9);
        assert!(g.bw_eff(1e12) < g.stencil_bw);
    }

    #[test]
    fn power_range_matches_nvidia_smi_observations() {
        let g = GpuDevice::v100();
        assert!((g.power_w(0.0) - 40.0).abs() < 1e-9);
        assert!((g.power_w(580.0e9) - 240.0).abs() < 1e-9);
        // clamped above peak
        assert!((g.power_w(900.0e9) - 240.0).abs() < 1e-9);
    }
}
