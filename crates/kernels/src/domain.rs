//! Abstract-value domains: execute the real kernel math on something other
//! than `f32`.
//!
//! Every kernel in this crate writes its per-cell update exactly once, as a
//! generic function over an [`AbstractValue`]. Instantiated at `V = f32` it
//! *is* the concrete update (same operations, same left-to-right order, so
//! all executors stay bit-exact); instantiated at an abstract domain it
//! becomes a static analysis of the same code:
//!
//! * an op-counting domain tallies the adds/muls/divs actually executed and
//!   cross-checks the hand-written [`crate::ops::OpCount`] declarations,
//! * an interval domain bounds the output range of one stencil application
//!   and proves (or refutes) that NaN/overflow/division-by-zero is
//!   statically unreachable,
//! * an impulse probe extracts the linear stencil coefficients that feed the
//!   von Neumann stability symbol.
//!
//! The `sf-absint` crate provides those domains; this module only defines
//! the contract and the trivial `f32` instance.
//!
//! ## Constant-folding convention
//!
//! Arithmetic between two Rust compile-time constants (e.g. the `3·w0`
//! center weight of a folded 3-axis Laplacian) happens *before* the value
//! enters the domain via [`AbstractValue::constant`], and is therefore never
//! counted — exactly as HLS constant-folds it out of the datapath. Every
//! operation that touches a streamed value or a runtime parameter goes
//! through the domain's operators and is observable.

use core::fmt::Debug;
use core::ops::{Add, Div, Mul, Sub};

/// A value the generic kernel updates can compute with.
///
/// The arithmetic operators mirror `f32` so the generic update bodies read
/// identically to the concrete ones they replaced; implementations must keep
/// the operators pure (no interior mutation of `self`), though they may
/// record effects elsewhere (an op-counting domain bumps thread-local
/// tallies).
pub trait AbstractValue:
    Copy
    + Clone
    + Debug
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
{
    /// Lift a kernel constant (stencil weight, runtime coefficient, time
    /// step) into the domain.
    fn constant(c: f32) -> Self;
}

impl AbstractValue for f32 {
    #[inline(always)]
    fn constant(c: f32) -> Self {
        c
    }
}

/// A 2D kernel whose per-cell update is written once, generically over the
/// value domain. [`crate::StencilOp2D::apply`] implementations delegate here
/// at `V = f32`.
pub trait AbstractOp2D: Sync {
    /// The per-cell update over a neighborhood accessor `at(dx, dy)`.
    fn update<V: AbstractValue, F: Fn(i32, i32) -> V>(&self, at: &F) -> V;
}

/// The 3D twin of [`AbstractOp2D`] for scalar-element kernels.
pub trait AbstractOp3D: Sync {
    /// The per-cell update over a neighborhood accessor `at(dx, dy, dz)`.
    fn update<V: AbstractValue, F: Fn(i32, i32, i32) -> V>(&self, at: &F) -> V;
}

impl<K: AbstractOp2D> AbstractOp2D for &K {
    fn update<V: AbstractValue, F: Fn(i32, i32) -> V>(&self, at: &F) -> V {
        (**self).update(at)
    }
}

impl<K: AbstractOp3D> AbstractOp3D for &K {
    fn update<V: AbstractValue, F: Fn(i32, i32, i32) -> V>(&self, at: &F) -> V {
        (**self).update(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A domain that mirrors f32 but tags values, to prove the generic
    /// plumbing routes every op through the domain operators.
    #[derive(Copy, Clone, Debug, PartialEq)]
    struct Traced(f32);

    impl Add for Traced {
        type Output = Traced;
        fn add(self, r: Traced) -> Traced {
            Traced(self.0 + r.0)
        }
    }
    impl Sub for Traced {
        type Output = Traced;
        fn sub(self, r: Traced) -> Traced {
            Traced(self.0 - r.0)
        }
    }
    impl Mul for Traced {
        type Output = Traced;
        fn mul(self, r: Traced) -> Traced {
            Traced(self.0 * r.0)
        }
    }
    impl Div for Traced {
        type Output = Traced;
        fn div(self, r: Traced) -> Traced {
            Traced(self.0 / r.0)
        }
    }
    impl AbstractValue for Traced {
        fn constant(c: f32) -> Self {
            Traced(c)
        }
    }

    #[test]
    fn f32_is_the_identity_domain() {
        assert_eq!(f32::constant(1.5), 1.5);
        let v = f32::constant(0.5) * 4.0 + f32::constant(1.0);
        assert_eq!(v, 3.0);
    }

    #[test]
    fn alternate_domain_matches_f32_on_the_same_expression() {
        let f = f32::constant(0.125) * (2.0 + 6.0) - f32::constant(0.5) / 2.0;
        let t = Traced::constant(0.125) * (Traced(2.0) + Traced(6.0))
            - Traced::constant(0.5) / Traced(2.0);
        assert_eq!(t.0, f);
    }

    #[test]
    fn poisson_update_agrees_with_apply_through_both_paths() {
        use crate::poisson::Poisson2D;
        use crate::StencilOp2D;
        let at = |dx: i32, dy: i32| (dx * 3 + dy) as f32 * 0.25 + 1.0;
        let via_apply = Poisson2D.apply(at);
        let via_update = Poisson2D.update::<f32, _>(&at);
        assert_eq!(via_apply.to_bits(), via_update.to_bits());
        let traced = Poisson2D.update::<Traced, _>(&|dx, dy| Traced(at(dx, dy)));
        assert_eq!(traced.0.to_bits(), via_apply.to_bits());
    }
}
