//! One Criterion target per table/figure family: regenerating each
//! experiment of the paper end to end (synthesis + cycle plans + GPU model +
//! power/energy for every row). `cargo bench -p sf-bench` therefore covers
//! every table AND figure in the evaluation section.

use criterion::{criterion_group, criterion_main, Criterion};
use sf_bench::experiments;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_tables");
    g.sample_size(10);
    g.bench_function("table1_specs", |b| b.iter(experiments::table1));
    g.bench_function("table2_model_params", |b| b.iter(experiments::table2));
    g.bench_function("table3_blocking_params", |b| b.iter(experiments::table3));
    g.bench_function("table4_poisson_bw_energy", |b| b.iter(experiments::table4));
    g.bench_function("table5_jacobi_bw_energy", |b| b.iter(experiments::table5));
    g.bench_function("table6_rtm_bw_energy", |b| b.iter(experiments::table6));
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_figures");
    g.sample_size(10);
    g.bench_function("fig3a_poisson_baseline", |b| b.iter(experiments::fig3a));
    g.bench_function("fig3b_poisson_batched", |b| b.iter(experiments::fig3b));
    g.bench_function("fig3c_poisson_tiled", |b| b.iter(experiments::fig3c));
    g.bench_function("fig4a_jacobi_baseline", |b| b.iter(experiments::fig4a));
    g.bench_function("fig4b_jacobi_batched", |b| b.iter(experiments::fig4b));
    g.bench_function("fig4c_jacobi_tiled", |b| b.iter(experiments::fig4c));
    g.bench_function("fig5a_rtm_baseline", |b| b.iter(experiments::fig5a));
    g.bench_function("fig5b_rtm_batched", |b| b.iter(experiments::fig5b));
    g.finish();
}

fn bench_model_accuracy(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_claims");
    g.sample_size(10);
    g.bench_function("model_accuracy_suite", |b| b.iter(experiments::model_accuracy));
    g.finish();
}

criterion_group!(benches, bench_tables, bench_figures, bench_model_accuracy);
criterion_main!(benches);
