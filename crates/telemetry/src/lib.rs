//! # sf-telemetry — cycle-stamped observability for the simulated accelerator
//!
//! The simulator is deterministic: every pass, tile, FIFO push and AXI burst
//! happens at a cycle computed by the performance plan, not at a wall-clock
//! instant. Telemetry therefore stamps events with **model cycles**, which
//! makes traces exactly reproducible and lets exporters convert to
//! wall-time units using the design's clock.
//!
//! Pieces:
//!
//! - [`Recorder`] — typed counters, gauges and spans, grouped into named
//!   tracks (one per stage / FIFO / AXI channel). A disabled recorder costs
//!   a single branch per call, so instrumented hot paths stay free when
//!   profiling is off.
//! - [`chrome`] — Chrome trace-event JSON exporter (loadable in Perfetto /
//!   `chrome://tracing`), one track per stage/FIFO/channel.
//! - [`metrics`] — flat JSON metrics dump for scripting.
//! - [`Divergence`] — predicted-vs-simulated cycle monitor backing the
//!   paper's ±15 % model-accuracy claim as a continuous invariant.
//! - [`StallBreakdown`] — compute / memory / backpressure attribution,
//!   cross-checked against the plan's per-segment `RowBound`.
//! - [`QuantileSketch`] — HDR-style log-bucketed quantile sketch for
//!   cross-run noise characterisation (the `sf-report` regression gate).

#![forbid(unsafe_code)]
pub mod chrome;
pub mod divergence;
pub mod metrics;
pub mod quantile;
pub mod recorder;

pub use divergence::Divergence;
pub use quantile::QuantileSketch;
pub use recorder::{Recorder, SpanEvent, StallBreakdown, StallClass, TrackId};
