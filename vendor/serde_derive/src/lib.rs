//! Minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! in-tree `serde` facade (see `vendor/serde`).
//!
//! This workspace builds fully offline, so the real serde stack is replaced
//! by a small value-model facade. The derives support exactly the shapes the
//! workspace uses:
//!
//! * structs with named fields,
//! * unit structs and tuple structs,
//! * enums with unit, named-field and tuple variants (externally tagged,
//!   matching serde's default JSON encoding).
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported and
//! produce a compile error, so silent drift from real-serde semantics is
//! impossible.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Def {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip `#[...]` attributes (including doc comments) and visibility.
fn skip_meta(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracket group
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parse the comma-separated named fields of a brace group, returning the
/// field names in declaration order.
fn parse_named_fields(group: TokenStream) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_meta(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => return Err(format!("expected field name, found `{t}`")),
        };
        i += 1;
        match &toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            t => return Err(format!("expected `:` after field `{name}`, found {t:?}")),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut angle = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Count the comma-separated items of a paren group (tuple fields).
fn count_tuple_fields(group: TokenStream) -> usize {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut count = 1;
    let mut saw_item = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                saw_item = false;
                continue;
            }
            _ => {}
        }
        saw_item = true;
    }
    if !saw_item {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(group: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_meta(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => return Err(format!("expected variant name, found `{t}`")),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream())?);
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        // skip an optional discriminant `= expr` up to the next comma
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push((name, fields));
    }
    Ok(variants)
}

fn parse_def(input: TokenStream) -> Result<Def, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_meta(&toks, 0);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => return Err(format!("expected `struct` or `enum`, found {t:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => return Err(format!("expected type name, found {t:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!("vendored serde derive does not support generic type `{name}`"));
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Ok(Def::Struct { name, fields })
        }
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Def::Enum { name, variants: parse_variants(g.stream())? })
            }
            t => Err(format!("expected enum body, found {t:?}")),
        },
        k => Err(format!("cannot derive for `{k}` items")),
    }
}

fn gen_serialize(def: &Def) -> String {
    let mut s = String::new();
    match def {
        Def::Struct { name, fields } => {
            s.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{\n"
            ));
            match fields {
                Fields::Unit => s.push_str("  ::serde::Value::Null\n"),
                Fields::Named(fs) => {
                    s.push_str("  ::serde::Value::Object(::std::vec![\n");
                    for f in fs {
                        s.push_str(&format!(
                            "   ({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})),\n"
                        ));
                    }
                    s.push_str("  ])\n");
                }
                Fields::Tuple(n) if *n == 1 => {
                    s.push_str("  ::serde::Serialize::to_value(&self.0)\n");
                }
                Fields::Tuple(n) => {
                    s.push_str("  ::serde::Value::Array(::std::vec![\n");
                    for k in 0..*n {
                        s.push_str(&format!("   ::serde::Serialize::to_value(&self.{k}),\n"));
                    }
                    s.push_str("  ])\n");
                }
            }
            s.push_str(" }\n}\n");
        }
        Def::Enum { name, variants } => {
            s.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{\n  match self {{\n"
            ));
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => s.push_str(&format!(
                        "   {name}::{v} => ::serde::Value::String({v:?}.to_string()),\n"
                    )),
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        s.push_str(&format!("   {name}::{v} {{ {binds} }} => ::serde::Value::Object(::std::vec![({v:?}.to_string(), ::serde::Value::Object(::std::vec!["));
                        for f in fs {
                            s.push_str(&format!(
                                "({f:?}.to_string(), ::serde::Serialize::to_value({f})),"
                            ));
                        }
                        s.push_str("]))]),\n");
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let pat = binds.join(", ");
                        if *n == 1 {
                            s.push_str(&format!("   {name}::{v}({pat}) => ::serde::Value::Object(::std::vec![({v:?}.to_string(), ::serde::Serialize::to_value(__f0))]),\n"));
                        } else {
                            s.push_str(&format!("   {name}::{v}({pat}) => ::serde::Value::Object(::std::vec![({v:?}.to_string(), ::serde::Value::Array(::std::vec!["));
                            for b in &binds {
                                s.push_str(&format!("::serde::Serialize::to_value({b}),"));
                            }
                            s.push_str("]))]),\n");
                        }
                    }
                }
            }
            s.push_str("  }\n }\n}\n");
        }
    }
    s
}

fn gen_deserialize(def: &Def) -> String {
    let mut s = String::new();
    match def {
        Def::Struct { name, fields } => {
            s.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n"
            ));
            match fields {
                Fields::Unit => s.push_str(&format!("  ::std::result::Result::Ok({name})\n")),
                Fields::Named(fs) => {
                    s.push_str(&format!(
                        "  let __obj = __v.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", {:?}))?;\n",
                        name
                    ));
                    s.push_str(&format!("  ::std::result::Result::Ok({name} {{\n"));
                    for f in fs {
                        s.push_str(&format!(
                            "   {f}: ::serde::Deserialize::from_value(::serde::__private::field(__obj, {f:?}, {name:?})?)?,\n"
                        ));
                    }
                    s.push_str("  })\n");
                }
                Fields::Tuple(n) if *n == 1 => {
                    s.push_str(&format!(
                        "  ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))\n"
                    ));
                }
                Fields::Tuple(n) => {
                    s.push_str(&format!(
                        "  let __arr = ::serde::__private::array(__v, {n}, {name:?})?;\n"
                    ));
                    s.push_str(&format!("  ::std::result::Result::Ok({name}(\n"));
                    for k in 0..*n {
                        s.push_str(&format!(
                            "   ::serde::Deserialize::from_value(&__arr[{k}])?,\n"
                        ));
                    }
                    s.push_str("  ))\n");
                }
            }
            s.push_str(" }\n}\n");
        }
        Def::Enum { name, variants } => {
            s.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n"
            ));
            s.push_str(&format!(
                "  let (__tag, __inner) = ::serde::__private::enum_parts(__v, {name:?})?;\n  match __tag {{\n"
            ));
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => s.push_str(&format!(
                        "   {v:?} => ::std::result::Result::Ok({name}::{v}),\n"
                    )),
                    Fields::Named(fs) => {
                        s.push_str(&format!(
                            "   {v:?} => {{\n    let __inner = __inner.ok_or_else(|| ::serde::Error::expected(\"variant data\", {name:?}))?;\n    let __obj = __inner.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", {name:?}))?;\n    ::std::result::Result::Ok({name}::{v} {{\n"
                        ));
                        for f in fs {
                            s.push_str(&format!(
                                "     {f}: ::serde::Deserialize::from_value(::serde::__private::field(__obj, {f:?}, {name:?})?)?,\n"
                            ));
                        }
                        s.push_str("    })\n   }\n");
                    }
                    Fields::Tuple(n) => {
                        s.push_str(&format!(
                            "   {v:?} => {{\n    let __inner = __inner.ok_or_else(|| ::serde::Error::expected(\"variant data\", {name:?}))?;\n"
                        ));
                        if *n == 1 {
                            s.push_str(&format!(
                                "    ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?))\n"
                            ));
                        } else {
                            s.push_str(&format!(
                                "    let __arr = ::serde::__private::array(__inner, {n}, {name:?})?;\n    ::std::result::Result::Ok({name}::{v}(\n"
                            ));
                            for k in 0..*n {
                                s.push_str(&format!(
                                    "     ::serde::Deserialize::from_value(&__arr[{k}])?,\n"
                                ));
                            }
                            s.push_str("    ))\n");
                        }
                        s.push_str("   }\n");
                    }
                }
            }
            s.push_str(&format!(
                "   __other => ::std::result::Result::Err(::serde::Error::unknown_variant(__other, {name:?})),\n  }}\n }}\n}}\n"
            ));
        }
    }
    s
}

/// Derive `serde::Serialize` (vendored facade).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_def(input) {
        Ok(def) => gen_serialize(&def).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

/// Derive `serde::Deserialize` (vendored facade).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_def(input) {
        Ok(def) => gen_deserialize(&def).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}
