//! The event recorder: tracks, spans, counters, gauges and stall
//! attribution, all stamped in model cycles.

use crate::divergence::Divergence;
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;

/// Interned handle for a named track (stage, FIFO, AXI channel, …).
///
/// Tracks map to trace-viewer threads in the Chrome exporter, so each
/// pipeline component gets its own swimlane.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TrackId(pub u32);

/// A closed interval of model cycles on one track.
#[derive(Clone, Debug, Serialize)]
pub struct SpanEvent {
    pub track: TrackId,
    pub name: String,
    pub start_cycle: u64,
    pub end_cycle: u64,
    pub args: Vec<(String, Value)>,
}

impl SpanEvent {
    pub fn duration(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }
}

/// A point event on a track (e.g. "buffer primed").
#[derive(Clone, Debug, Serialize)]
pub struct InstantEvent {
    pub track: TrackId,
    pub name: String,
    pub cycle: u64,
}

/// One sample of a time-varying quantity (FIFO occupancy, burst
/// utilisation, …). Rendered as a counter track by the Chrome exporter.
#[derive(Clone, Debug, Serialize)]
pub struct GaugeSample {
    pub track: TrackId,
    pub name: String,
    pub cycle: u64,
    pub value: f64,
}

/// What a stalled (non-productive) cycle was waiting on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StallClass {
    /// Pipeline limited by datapath depth/initiation interval.
    Compute,
    /// Pipeline limited by external-memory bandwidth.
    Memory,
    /// Pipeline limited by a full downstream FIFO.
    Backpressure,
    /// Cycles spent on checkpoint writes, ABFT checks and rollback
    /// replay in the recovery layer (`sf-recover`).
    Checkpoint,
    /// Cycles spent on inter-device halo exchange over the modeled
    /// device-to-device link (`sf-multi`), net of compute overlap.
    Exchange,
}

/// Cycle totals attributed to each stall class.
///
/// "Attributed" cycles are row cycles classified by which resource bounds
/// them — the same classification `PlanTrace::RowBound` makes per segment —
/// plus FIFO backpressure observed during dataflow simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallBreakdown {
    pub compute_cycles: u64,
    pub memory_cycles: u64,
    pub backpressure_cycles: u64,
    /// Recovery-layer overhead (checkpoint writes, ABFT checks, rollback
    /// replay); zero everywhere the recovery layer is not engaged.
    pub checkpoint_cycles: u64,
    /// Inter-device halo-exchange overhead (link latency plus serialized
    /// transfer cycles not hidden behind interior compute); zero for
    /// single-device runs.
    pub exchange_cycles: u64,
}

impl StallBreakdown {
    pub fn total(&self) -> u64 {
        self.compute_cycles
            + self.memory_cycles
            + self.backpressure_cycles
            + self.checkpoint_cycles
            + self.exchange_cycles
    }

    /// Cycles attributed to `class`.
    pub fn cycles(&self, class: StallClass) -> u64 {
        match class {
            StallClass::Compute => self.compute_cycles,
            StallClass::Memory => self.memory_cycles,
            StallClass::Backpressure => self.backpressure_cycles,
            StallClass::Checkpoint => self.checkpoint_cycles,
            StallClass::Exchange => self.exchange_cycles,
        }
    }

    /// Fraction of attributed cycles in `class` (0.0 when nothing recorded).
    pub fn fraction(&self, class: StallClass) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        self.cycles(class) as f64 / t as f64
    }

    /// The class holding the most attributed cycles. Ties keep the
    /// earlier-listed class, preserving the original compute-first bias.
    pub fn dominant(&self) -> StallClass {
        let mut best = (StallClass::Compute, self.compute_cycles);
        for (class, cycles) in [
            (StallClass::Memory, self.memory_cycles),
            (StallClass::Backpressure, self.backpressure_cycles),
            (StallClass::Checkpoint, self.checkpoint_cycles),
            (StallClass::Exchange, self.exchange_cycles),
        ] {
            if cycles > best.1 {
                best = (class, cycles);
            }
        }
        best.0
    }
}

/// Cycle-stamped event recorder.
///
/// Construct with [`Recorder::enabled`] to collect events or
/// [`Recorder::disabled`] for a no-op sink: every recording method begins
/// with a single `if !self.on` branch and touches nothing else when off,
/// so instrumented simulator paths pay (almost) nothing unless profiling
/// was requested.
#[derive(Clone, Debug)]
pub struct Recorder {
    on: bool,
    /// Clock used by exporters to convert cycles to wall time.
    cycles_per_us: f64,
    tracks: Vec<String>,
    spans: Vec<SpanEvent>,
    instants: Vec<InstantEvent>,
    gauges: Vec<GaugeSample>,
    counters: BTreeMap<String, u64>,
    stalls: StallBreakdown,
    divergence: Option<Divergence>,
    meta: Vec<(String, Value)>,
    /// Worker count the producing run was configured with (`--jobs`);
    /// `None` until [`Recorder::set_jobs`] is called.
    jobs: Option<u64>,
    /// Shard recorders folded in via [`Recorder::merge_shards`].
    shards_merged: u64,
}

impl Recorder {
    /// A recorder that collects events. `cycles_per_us` is the design
    /// clock in MHz (cycles per microsecond), used only for export.
    pub fn enabled(cycles_per_us: f64) -> Self {
        Recorder {
            on: true,
            cycles_per_us: if cycles_per_us > 0.0 { cycles_per_us } else { 1.0 },
            tracks: Vec::new(),
            spans: Vec::new(),
            instants: Vec::new(),
            gauges: Vec::new(),
            counters: BTreeMap::new(),
            stalls: StallBreakdown::default(),
            divergence: None,
            meta: Vec::new(),
            jobs: None,
            shards_merged: 0,
        }
    }

    /// A no-op sink: all recording methods return after one branch.
    pub fn disabled() -> Self {
        let mut r = Self::enabled(1.0);
        r.on = false;
        r
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// Intern a track name; repeated calls with the same name return the
    /// same id. Disabled recorders return a dummy id.
    pub fn track(&mut self, name: &str) -> TrackId {
        if !self.on {
            return TrackId(0);
        }
        if let Some(i) = self.tracks.iter().position(|t| t == name) {
            return TrackId(i as u32);
        }
        self.tracks.push(name.to_string());
        TrackId((self.tracks.len() - 1) as u32)
    }

    /// Record a `[start_cycle, end_cycle)` span on `track`.
    #[inline]
    pub fn span(&mut self, track: TrackId, name: &str, start_cycle: u64, end_cycle: u64) {
        if !self.on {
            return;
        }
        self.spans.push(SpanEvent {
            track,
            name: name.to_string(),
            start_cycle,
            end_cycle,
            args: Vec::new(),
        });
    }

    /// Record a span carrying extra key/value arguments.
    #[inline]
    pub fn span_with_args(
        &mut self,
        track: TrackId,
        name: &str,
        start_cycle: u64,
        end_cycle: u64,
        args: Vec<(String, Value)>,
    ) {
        if !self.on {
            return;
        }
        self.spans.push(SpanEvent { track, name: name.to_string(), start_cycle, end_cycle, args });
    }

    /// Record a point event.
    #[inline]
    pub fn instant(&mut self, track: TrackId, name: &str, cycle: u64) {
        if !self.on {
            return;
        }
        self.instants.push(InstantEvent { track, name: name.to_string(), cycle });
    }

    /// Sample a gauge (occupancy, utilisation, …) at `cycle`.
    #[inline]
    pub fn gauge(&mut self, track: TrackId, name: &str, cycle: u64, value: f64) {
        if !self.on {
            return;
        }
        self.gauges.push(GaugeSample { track, name: name.to_string(), cycle, value });
    }

    /// Add `delta` to the named monotonic counter.
    #[inline]
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if !self.on {
            return;
        }
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Attribute `cycles` to a stall class.
    #[inline]
    pub fn stall(&mut self, class: StallClass, cycles: u64) {
        if !self.on {
            return;
        }
        match class {
            StallClass::Compute => self.stalls.compute_cycles += cycles,
            StallClass::Memory => self.stalls.memory_cycles += cycles,
            StallClass::Backpressure => self.stalls.backpressure_cycles += cycles,
            StallClass::Checkpoint => self.stalls.checkpoint_cycles += cycles,
            StallClass::Exchange => self.stalls.exchange_cycles += cycles,
        }
    }

    /// Record the predicted-vs-simulated divergence for this run.
    pub fn set_divergence(&mut self, d: Divergence) {
        if !self.on {
            return;
        }
        self.divergence = Some(d);
    }

    /// Record the worker count this run was configured with (the resolved
    /// `--jobs` value). Exported by the flat-metrics dump so aggregated
    /// output distinguishes parallel runs from serial ones.
    pub fn set_jobs(&mut self, jobs: u64) {
        if !self.on {
            return;
        }
        self.jobs = Some(jobs);
    }

    /// Attach run-level metadata (app name, mesh, …) shown by exporters.
    pub fn set_meta(&mut self, key: &str, value: Value) {
        if !self.on {
            return;
        }
        if let Some(slot) = self.meta.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.meta.push((key.to_string(), value));
        }
    }

    // ---- shard merging (parallel execution) --------------------------------

    /// Merge per-worker shard recorders into this one, deterministically.
    ///
    /// Parallel executors (`sf-fpga`'s batch engine) record each work
    /// item's events into a private shard `Recorder`, collect the shards
    /// in **work-item order** (never thread-completion order), and merge
    /// them here. The merge is a pure function of the shard list:
    ///
    /// * shard tracks are re-interned in shard order and every event's
    ///   [`TrackId`] is remapped, so identically named tracks from
    ///   different shards coalesce;
    /// * spans, instants and gauges are appended in cycle-stamp order,
    ///   with (shard index, within-shard sequence) as the tie-break —
    ///   byte-identical output however many worker threads produced the
    ///   shards;
    /// * counters and stall attributions are summed.
    ///
    /// Shard-level `meta` and `divergence` are run-level concerns and are
    /// intentionally **not** merged — they stay owned by `self`.
    pub fn merge_shards(&mut self, shards: Vec<Recorder>) {
        if !self.on {
            return;
        }
        let mut spans: Vec<(u64, usize, usize, SpanEvent)> = Vec::new();
        let mut instants: Vec<(u64, usize, usize, InstantEvent)> = Vec::new();
        let mut gauges: Vec<(u64, usize, usize, GaugeSample)> = Vec::new();
        for (si, shard) in shards.into_iter().enumerate() {
            self.shards_merged += 1 + shard.shards_merged;
            let remap: Vec<TrackId> = shard.tracks.iter().map(|t| self.track(t)).collect();
            let map = |id: TrackId| remap.get(id.0 as usize).copied().unwrap_or(id);
            for (seq, mut e) in shard.spans.into_iter().enumerate() {
                e.track = map(e.track);
                spans.push((e.start_cycle, si, seq, e));
            }
            for (seq, mut e) in shard.instants.into_iter().enumerate() {
                e.track = map(e.track);
                instants.push((e.cycle, si, seq, e));
            }
            for (seq, mut e) in shard.gauges.into_iter().enumerate() {
                e.track = map(e.track);
                gauges.push((e.cycle, si, seq, e));
            }
            for (k, v) in shard.counters {
                *self.counters.entry(k).or_insert(0) += v;
            }
            self.stalls.compute_cycles += shard.stalls.compute_cycles;
            self.stalls.memory_cycles += shard.stalls.memory_cycles;
            self.stalls.backpressure_cycles += shard.stalls.backpressure_cycles;
            self.stalls.checkpoint_cycles += shard.stalls.checkpoint_cycles;
            self.stalls.exchange_cycles += shard.stalls.exchange_cycles;
        }
        spans.sort_by_key(|a| (a.0, a.1, a.2));
        instants.sort_by_key(|a| (a.0, a.1, a.2));
        gauges.sort_by_key(|a| (a.0, a.1, a.2));
        self.spans.extend(spans.into_iter().map(|t| t.3));
        self.instants.extend(instants.into_iter().map(|t| t.3));
        self.gauges.extend(gauges.into_iter().map(|t| t.3));
    }

    /// Merge a single shard (see [`Recorder::merge_shards`]).
    pub fn merge_shard(&mut self, shard: Recorder) {
        self.merge_shards(vec![shard]);
    }

    // ---- accessors (exporters & tests) -------------------------------------

    pub fn cycles_per_us(&self) -> f64 {
        self.cycles_per_us
    }

    pub fn track_names(&self) -> &[String] {
        &self.tracks
    }

    /// Look up an existing track by name without interning a new one.
    pub fn find_track(&self, name: &str) -> Option<TrackId> {
        self.tracks.iter().position(|t| t == name).map(|i| TrackId(i as u32))
    }

    pub fn track_name(&self, id: TrackId) -> &str {
        self.tracks.get(id.0 as usize).map(|s| s.as_str()).unwrap_or("<unknown>")
    }

    pub fn spans(&self) -> &[SpanEvent] {
        &self.spans
    }

    pub fn instants(&self) -> &[InstantEvent] {
        &self.instants
    }

    pub fn gauges(&self) -> &[GaugeSample] {
        &self.gauges
    }

    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn stall_breakdown(&self) -> StallBreakdown {
        self.stalls
    }

    pub fn divergence(&self) -> Option<&Divergence> {
        self.divergence.as_ref()
    }

    pub fn meta(&self) -> &[(String, Value)] {
        &self.meta
    }

    /// Worker count recorded with [`Recorder::set_jobs`], if any.
    pub fn jobs(&self) -> Option<u64> {
        self.jobs
    }

    /// Total shard recorders merged into this one (0 for a serial run).
    pub fn shards_merged(&self) -> u64 {
        self.shards_merged
    }

    /// Sum of span durations on one track (used to reconcile against the
    /// cycle plan's totals).
    pub fn track_span_cycles(&self, track: TrackId) -> u64 {
        self.spans.iter().filter(|s| s.track == track).map(|s| s.duration()).sum()
    }

    /// Last cycle stamped on any event — the trace's horizon.
    pub fn max_cycle(&self) -> u64 {
        let spans = self.spans.iter().map(|s| s.end_cycle).max().unwrap_or(0);
        let inst = self.instants.iter().map(|i| i.cycle).max().unwrap_or(0);
        let gauges = self.gauges.iter().map(|g| g.cycle).max().unwrap_or(0);
        spans.max(inst).max(gauges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_collects_nothing() {
        let mut r = Recorder::disabled();
        let t = r.track("stage:0");
        r.span(t, "pass", 0, 100);
        r.counter_add("pushes", 5);
        r.gauge(t, "occ", 10, 3.0);
        r.stall(StallClass::Memory, 42);
        assert!(!r.is_enabled());
        assert!(r.spans().is_empty());
        assert!(r.counters().is_empty());
        assert!(r.gauges().is_empty());
        assert_eq!(r.stall_breakdown().total(), 0);
    }

    #[test]
    fn track_interning_is_stable() {
        let mut r = Recorder::enabled(300.0);
        let a = r.track("axi:rd0");
        let b = r.track("axi:wr0");
        let a2 = r.track("axi:rd0");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(r.track_name(a), "axi:rd0");
    }

    #[test]
    fn span_totals_and_max_cycle() {
        let mut r = Recorder::enabled(300.0);
        let t = r.track("stage:0");
        r.span(t, "pass0", 0, 100);
        r.span(t, "pass1", 100, 250);
        let u = r.track("stage:1");
        r.span(u, "pass0", 50, 80);
        assert_eq!(r.track_span_cycles(t), 250);
        assert_eq!(r.track_span_cycles(u), 30);
        assert_eq!(r.max_cycle(), 250);
    }

    #[test]
    fn stall_breakdown_fractions() {
        let mut r = Recorder::enabled(300.0);
        r.stall(StallClass::Compute, 60);
        r.stall(StallClass::Memory, 30);
        r.stall(StallClass::Backpressure, 10);
        let b = r.stall_breakdown();
        assert_eq!(b.total(), 100);
        assert!((b.fraction(StallClass::Compute) - 0.6).abs() < 1e-12);
        assert_eq!(b.dominant(), StallClass::Compute);
    }

    #[test]
    fn exchange_stalls_attribute_merge_and_dominate() {
        let mut r = Recorder::enabled(300.0);
        r.stall(StallClass::Exchange, 50);
        r.stall(StallClass::Compute, 20);
        let mut shard = Recorder::enabled(300.0);
        shard.stall(StallClass::Exchange, 40);
        r.merge_shard(shard);
        let b = r.stall_breakdown();
        assert_eq!(b.exchange_cycles, 90);
        assert_eq!(b.cycles(StallClass::Exchange), 90);
        assert_eq!(b.total(), 110);
        assert_eq!(b.dominant(), StallClass::Exchange);
    }

    #[test]
    fn merge_shards_interleaves_by_cycle_and_remaps_tracks() {
        let mut main = Recorder::enabled(300.0);
        let sched = main.track("pipeline");
        main.span(sched, "pass0", 0, 1000);

        let mut s0 = Recorder::enabled(300.0);
        let t0 = s0.track("mesh0/stage:0");
        s0.span(t0, "row", 500, 600);
        s0.instant(t0, "primed", 510);
        s0.counter_add("window.rows_streamed", 4);
        s0.stall(StallClass::Memory, 7);

        let mut s1 = Recorder::enabled(300.0);
        let t1 = s1.track("mesh1/stage:0");
        s1.span(t1, "row", 100, 200);
        s1.gauge(t1, "fill", 120, 2.0);
        s1.counter_add("window.rows_streamed", 4);
        s1.stall(StallClass::Memory, 3);

        main.merge_shards(vec![s0, s1]);
        // tracks re-interned in shard order after existing ones
        assert_eq!(main.track_names(), &["pipeline", "mesh0/stage:0", "mesh1/stage:0"]);
        // shard spans appended in cycle order: mesh1's earlier span first
        let merged: Vec<_> = main.spans().iter().map(|s| s.start_cycle).collect();
        assert_eq!(merged, vec![0, 100, 500]);
        // events remapped onto the re-interned tracks
        let m1 = main.find_track("mesh1/stage:0").unwrap();
        assert_eq!(main.spans()[1].track, m1);
        assert_eq!(main.gauges()[0].track, m1);
        // counters and stalls summed
        assert_eq!(main.counter("window.rows_streamed"), 8);
        assert_eq!(main.stall_breakdown().memory_cycles, 10);
    }

    #[test]
    fn merge_is_pure_in_shard_list() {
        let shard = |base: u64| {
            let mut s = Recorder::enabled(300.0);
            let t = s.track(&format!("mesh{base}/w"));
            s.span(t, "row", base * 10, base * 10 + 5);
            s
        };
        let mut a = Recorder::enabled(300.0);
        a.merge_shards(vec![shard(0), shard(1), shard(2)]);
        let mut b = Recorder::enabled(300.0);
        for i in 0..3 {
            b.merge_shard(shard(i));
        }
        assert_eq!(a.track_names(), b.track_names());
        let cycles = |r: &Recorder| r.spans().iter().map(|s| s.start_cycle).collect::<Vec<_>>();
        assert_eq!(cycles(&a), cycles(&b));
    }

    #[test]
    fn merge_into_disabled_is_a_noop() {
        let mut off = Recorder::disabled();
        let mut s = Recorder::enabled(300.0);
        let t = s.track("x");
        s.span(t, "row", 0, 5);
        off.merge_shard(s);
        assert!(off.spans().is_empty());
        assert!(off.track_names().is_empty());
    }

    #[test]
    fn identically_named_shard_tracks_coalesce() {
        let mut main = Recorder::enabled(300.0);
        let mk = || {
            let mut s = Recorder::enabled(300.0);
            let t = s.track("window/stage:0");
            s.span(t, "row", 0, 5);
            s
        };
        main.merge_shards(vec![mk(), mk()]);
        assert_eq!(main.track_names(), &["window/stage:0"]);
        assert_eq!(main.spans().len(), 2);
        assert_eq!(main.spans()[0].track, main.spans()[1].track);
    }

    #[test]
    fn jobs_and_shard_count_are_tracked() {
        let mut r = Recorder::enabled(300.0);
        assert_eq!(r.jobs(), None);
        assert_eq!(r.shards_merged(), 0);
        r.set_jobs(4);
        assert_eq!(r.jobs(), Some(4));
        let mk = || {
            let mut s = Recorder::enabled(300.0);
            let t = s.track("w");
            s.span(t, "row", 0, 5);
            s
        };
        r.merge_shards(vec![mk(), mk(), mk()]);
        assert_eq!(r.shards_merged(), 3);
        // nested merges count transitively
        let mut outer = Recorder::enabled(300.0);
        outer.merge_shard(r);
        assert_eq!(outer.shards_merged(), 4);
        // disabled recorders track nothing
        let mut off = Recorder::disabled();
        off.set_jobs(8);
        assert_eq!(off.jobs(), None);
    }

    #[test]
    fn counters_accumulate() {
        let mut r = Recorder::enabled(300.0);
        r.counter_add("fifo.stalls", 3);
        r.counter_add("fifo.stalls", 4);
        assert_eq!(r.counter("fifo.stalls"), 7);
        assert_eq!(r.counter("missing"), 0);
    }
}
