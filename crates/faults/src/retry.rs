//! AXI retry/backoff model.
//!
//! A failed or delayed burst is retried with exponential backoff. The extra
//! cycles are *modeled*, not wall-clock: they flow into the cycle plan (so a
//! faulty-but-recovered run is visibly slower) and into telemetry counters.
//! When the retry budget is exhausted the caller gets a typed verdict it
//! must turn into an error — never a silent wrong answer.

use serde::{Deserialize, Serialize};

/// Exponential-backoff retry policy for AXI bursts.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum retries before a burst is declared exhausted.
    pub max_retries: u32,
    /// Backoff for the first retry, in model cycles.
    pub base_backoff_cycles: u64,
    /// Backoff multiplier per further retry (≥ 1).
    pub multiplier: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // 4 retries starting at 64 cycles, doubling: 64+128+256+512 = 960
        // extra cycles worst case per recovered burst — visible in the plan
        // but far below a pass worth of work.
        RetryPolicy { max_retries: 4, base_backoff_cycles: 64, multiplier: 2 }
    }
}

impl RetryPolicy {
    /// Backoff for retry `attempt` (1-based), in model cycles.
    pub fn backoff_cycles(&self, attempt: u32) -> u64 {
        if attempt == 0 {
            return 0;
        }
        let mult = (self.multiplier.max(1) as u64).saturating_pow(attempt - 1);
        self.base_backoff_cycles.saturating_mul(mult)
    }

    /// Total backoff across retries `1..=attempts`.
    pub fn total_backoff(&self, attempts: u32) -> u64 {
        (1..=attempts.min(self.max_retries))
            .fold(0u64, |acc, a| acc.saturating_add(self.backoff_cycles(a)))
    }

    /// Worst-case extra cycles a single recovered burst can cost.
    pub fn worst_case_backoff(&self) -> u64 {
        self.total_backoff(self.max_retries)
    }
}

/// Outcome of pushing one AXI burst through the fault/retry model.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AxiVerdict {
    /// Burst completed normally.
    Ok,
    /// Burst failed/was delayed but a retry succeeded; `extra_cycles` of
    /// backoff must be charged to the plan.
    Recovered {
        /// Attempts that failed before success.
        attempts: u32,
        /// Modeled backoff cycles to charge.
        extra_cycles: u64,
    },
    /// Retry budget exhausted; the caller must abort with a typed error.
    Exhausted {
        /// Attempts made (> policy max_retries).
        attempts: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_cycles(1), 64);
        assert_eq!(p.backoff_cycles(2), 128);
        assert_eq!(p.backoff_cycles(3), 256);
        assert_eq!(p.backoff_cycles(4), 512);
        assert_eq!(p.total_backoff(4), 960);
        assert_eq!(p.worst_case_backoff(), 960);
    }

    #[test]
    fn zero_attempts_cost_nothing() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_cycles(0), 0);
        assert_eq!(p.total_backoff(0), 0);
    }

    #[test]
    fn huge_attempts_saturate_instead_of_overflowing() {
        let p = RetryPolicy { max_retries: 200, base_backoff_cycles: u64::MAX / 2, multiplier: 8 };
        // Must not panic in release or debug.
        let _ = p.backoff_cycles(200);
        let _ = p.total_backoff(200);
    }
}
