//! Batches of same-shaped meshes (§IV-B of the paper).
//!
//! The batching optimization "extends the mesh in the last dimension by
//! stacking up the small meshes": a [`Batch2D`] of `B` meshes of `nx × ny`
//! behaves like one `nx × (ny·B)` stream, a [`Batch3D`] like one
//! `nx × ny × (nz·B)` stream. Crucially the meshes remain *independent*
//! problems — a stencil must never read across a mesh seam — so the batch
//! types track which global row/plane belongs to which mesh and expose
//! seam-aware interior predicates used by both the golden reference and the
//! FPGA dataflow executor.

use crate::element::Element;
use crate::mesh2d::Mesh2D;
use crate::mesh3d::Mesh3D;

/// A batch of `B` independent `nx × ny` meshes stacked along `y`.
#[derive(Clone, Debug, PartialEq)]
pub struct Batch2D<T: Element> {
    nx: usize,
    ny: usize,
    b: usize,
    /// Contiguous storage: mesh `i` occupies global rows `[i·ny, (i+1)·ny)`.
    data: Vec<T>,
}

impl<T: Element> Batch2D<T> {
    /// Create a batch of `b` zero meshes.
    pub fn zeros(nx: usize, ny: usize, b: usize) -> Self {
        assert!(nx > 0 && ny > 0 && b > 0, "batch dimensions must be positive");
        Batch2D { nx, ny, b, data: vec![T::default(); nx * ny * b] }
    }

    /// Build a batch from `b` individual meshes (all must share the shape).
    pub fn from_meshes(meshes: &[Mesh2D<T>]) -> Self {
        assert!(!meshes.is_empty(), "empty batch");
        let nx = meshes[0].nx();
        let ny = meshes[0].ny();
        let mut out = Self::zeros(nx, ny, meshes.len());
        for (i, m) in meshes.iter().enumerate() {
            assert_eq!((m.nx(), m.ny()), (nx, ny), "mesh {i} shape mismatch");
            out.data[i * nx * ny..(i + 1) * nx * ny].copy_from_slice(m.as_slice());
        }
        out
    }

    /// Deterministic random batch; mesh `i` uses `seed + i`.
    pub fn random(nx: usize, ny: usize, b: usize, seed: u64, lo: f32, hi: f32) -> Self {
        let meshes: Vec<_> =
            (0..b).map(|i| Mesh2D::random(nx, ny, seed + i as u64, lo, hi)).collect();
        Self::from_meshes(&meshes)
    }

    /// Per-mesh row length.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Per-mesh row count.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Number of meshes in the batch (the paper's `B`).
    #[inline]
    pub fn batch(&self) -> usize {
        self.b
    }

    /// Stacked row count `ny · B` — the length of the fused stream.
    #[inline]
    pub fn stacked_ny(&self) -> usize {
        self.ny * self.b
    }

    /// Total points across the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the batch holds no points (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Total payload bytes.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.len() * T::size_bytes()
    }

    /// View the whole batch as one stacked buffer (global row-major).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable stacked view.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Read element `(x, y)` of mesh `i`.
    #[inline]
    pub fn get(&self, i: usize, x: usize, y: usize) -> T {
        debug_assert!(i < self.b && x < self.nx && y < self.ny);
        self.data[(i * self.ny + y) * self.nx + x]
    }

    /// Write element `(x, y)` of mesh `i`.
    #[inline]
    pub fn set(&mut self, i: usize, x: usize, y: usize, v: T) {
        debug_assert!(i < self.b && x < self.nx && y < self.ny);
        self.data[(i * self.ny + y) * self.nx + x] = v;
    }

    /// Which mesh owns global row `gy`, and its local row.
    #[inline]
    pub fn owner(&self, gy: usize) -> (usize, usize) {
        debug_assert!(gy < self.stacked_ny());
        (gy / self.ny, gy % self.ny)
    }

    /// `true` when global cell `(x, gy)` is interior *to its own mesh* for a
    /// radius-`r` stencil — this is the seam guard: cells near a mesh seam
    /// are boundaries of their own mesh even though the stacked stream
    /// continues past them.
    #[inline]
    pub fn is_interior_global(&self, x: usize, gy: usize, r: usize) -> bool {
        let (_, ly) = self.owner(gy);
        x >= r && x + r < self.nx && ly >= r && ly + r < self.ny
    }

    /// Extract mesh `i` as a standalone [`Mesh2D`].
    pub fn mesh(&self, i: usize) -> Mesh2D<T> {
        assert!(i < self.b);
        Mesh2D::from_fn(self.nx, self.ny, |x, y| self.get(i, x, y))
    }
}

/// Group a heterogeneous collection of 2D meshes into same-shape batches —
/// the paper batches only "meshes with the same dimensions", so a mixed book
/// must be partitioned first. Returns one `(batch, original_indices)` pair
/// per distinct shape, shapes in first-appearance order, and meshes in
/// original relative order within each batch.
pub fn group_by_shape_2d<T: Element>(meshes: &[Mesh2D<T>]) -> Vec<(Batch2D<T>, Vec<usize>)> {
    let mut shapes: Vec<(usize, usize)> = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, m) in meshes.iter().enumerate() {
        let shape = (m.nx(), m.ny());
        match shapes.iter().position(|&s| s == shape) {
            Some(g) => groups[g].push(i),
            None => {
                shapes.push(shape);
                groups.push(vec![i]);
            }
        }
    }
    groups
        .into_iter()
        .map(|idxs| {
            let members: Vec<_> = idxs.iter().map(|&i| meshes[i].clone()).collect();
            (Batch2D::from_meshes(&members), idxs)
        })
        .collect()
}

/// A batch of `B` independent `nx × ny × nz` meshes stacked along `z`.
#[derive(Clone, Debug, PartialEq)]
pub struct Batch3D<T: Element> {
    nx: usize,
    ny: usize,
    nz: usize,
    b: usize,
    /// Mesh `i` occupies global planes `[i·nz, (i+1)·nz)`.
    data: Vec<T>,
}

impl<T: Element> Batch3D<T> {
    /// Create a batch of `b` zero meshes.
    pub fn zeros(nx: usize, ny: usize, nz: usize, b: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0 && b > 0, "batch dimensions must be positive");
        Batch3D { nx, ny, nz, b, data: vec![T::default(); nx * ny * nz * b] }
    }

    /// Build a batch from individual meshes (all must share the shape).
    pub fn from_meshes(meshes: &[Mesh3D<T>]) -> Self {
        assert!(!meshes.is_empty(), "empty batch");
        let (nx, ny, nz) = (meshes[0].nx(), meshes[0].ny(), meshes[0].nz());
        let mut out = Self::zeros(nx, ny, nz, meshes.len());
        let stride = nx * ny * nz;
        for (i, m) in meshes.iter().enumerate() {
            assert_eq!((m.nx(), m.ny(), m.nz()), (nx, ny, nz), "mesh {i} shape mismatch");
            out.data[i * stride..(i + 1) * stride].copy_from_slice(m.as_slice());
        }
        out
    }

    /// Deterministic random batch; mesh `i` uses `seed + i`.
    pub fn random(nx: usize, ny: usize, nz: usize, b: usize, seed: u64, lo: f32, hi: f32) -> Self {
        let meshes: Vec<_> =
            (0..b).map(|i| Mesh3D::random(nx, ny, nz, seed + i as u64, lo, hi)).collect();
        Self::from_meshes(&meshes)
    }

    /// Per-mesh `x` extent.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Per-mesh `y` extent.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Per-mesh `z` extent.
    #[inline]
    pub fn nz(&self) -> usize {
        self.nz
    }

    /// Number of meshes (the paper's `B`).
    #[inline]
    pub fn batch(&self) -> usize {
        self.b
    }

    /// Stacked plane count `nz · B`.
    #[inline]
    pub fn stacked_nz(&self) -> usize {
        self.nz * self.b
    }

    /// Total points across the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the batch holds no points (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Total payload bytes.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.len() * T::size_bytes()
    }

    /// Stacked buffer view.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable stacked view.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Read element `(x, y, z)` of mesh `i`.
    #[inline]
    pub fn get(&self, i: usize, x: usize, y: usize, z: usize) -> T {
        debug_assert!(i < self.b && x < self.nx && y < self.ny && z < self.nz);
        self.data[((i * self.nz + z) * self.ny + y) * self.nx + x]
    }

    /// Write element `(x, y, z)` of mesh `i`.
    #[inline]
    pub fn set(&mut self, i: usize, x: usize, y: usize, z: usize, v: T) {
        debug_assert!(i < self.b && x < self.nx && y < self.ny && z < self.nz);
        self.data[((i * self.nz + z) * self.ny + y) * self.nx + x] = v;
    }

    /// Which mesh owns global plane `gz`, and its local plane index.
    #[inline]
    pub fn owner(&self, gz: usize) -> (usize, usize) {
        debug_assert!(gz < self.stacked_nz());
        (gz / self.nz, gz % self.nz)
    }

    /// Seam-aware interior predicate for global cell `(x, y, gz)`.
    #[inline]
    pub fn is_interior_global(&self, x: usize, y: usize, gz: usize, r: usize) -> bool {
        let (_, lz) = self.owner(gz);
        x >= r && x + r < self.nx && y >= r && y + r < self.ny && lz >= r && lz + r < self.nz
    }

    /// Extract mesh `i` as a standalone [`Mesh3D`].
    pub fn mesh(&self, i: usize) -> Mesh3D<T> {
        assert!(i < self.b);
        Mesh3D::from_fn(self.nx, self.ny, self.nz, |x, y, z| self.get(i, x, y, z))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch2d_from_meshes_roundtrip() {
        let m0 = Mesh2D::<f32>::from_fn(4, 3, |x, y| (y * 10 + x) as f32);
        let m1 = Mesh2D::<f32>::from_fn(4, 3, |x, y| 1000.0 + (y * 10 + x) as f32);
        let b = Batch2D::from_meshes(&[m0.clone(), m1.clone()]);
        assert_eq!(b.batch(), 2);
        assert_eq!(b.stacked_ny(), 6);
        assert_eq!(b.mesh(0), m0);
        assert_eq!(b.mesh(1), m1);
        assert_eq!(b.get(1, 2, 1), 1012.0);
    }

    #[test]
    fn batch2d_owner_and_seam_guard() {
        let b = Batch2D::<f32>::zeros(8, 4, 3);
        assert_eq!(b.owner(0), (0, 0));
        assert_eq!(b.owner(3), (0, 3));
        assert_eq!(b.owner(4), (1, 0));
        assert_eq!(b.owner(11), (2, 3));
        // radius-1 stencil: local rows 0 and 3 are boundary rows
        assert!(!b.is_interior_global(4, 4, 1)); // first row of mesh 1
        assert!(b.is_interior_global(4, 5, 1));
        assert!(b.is_interior_global(4, 6, 1));
        assert!(!b.is_interior_global(4, 7, 1)); // last row of mesh 1
        assert!(!b.is_interior_global(0, 5, 1)); // x boundary
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn batch2d_shape_mismatch_panics() {
        let m0 = Mesh2D::<f32>::zeros(4, 3);
        let m1 = Mesh2D::<f32>::zeros(4, 4);
        let _ = Batch2D::from_meshes(&[m0, m1]);
    }

    #[test]
    fn batch2d_stacked_layout_matches_mesh_order() {
        let b = Batch2D::<f32>::random(4, 2, 3, 9, 0.0, 1.0);
        // stacked buffer row gy = i*ny + y
        for i in 0..3 {
            for y in 0..2 {
                for x in 0..4 {
                    let gy = i * 2 + y;
                    assert_eq!(b.as_slice()[gy * 4 + x], b.get(i, x, y));
                }
            }
        }
    }

    #[test]
    fn group_by_shape_partitions_and_preserves_order() {
        let a1 = Mesh2D::<f32>::random(8, 4, 1, 0.0, 1.0);
        let b1 = Mesh2D::<f32>::random(6, 6, 2, 0.0, 1.0);
        let a2 = Mesh2D::<f32>::random(8, 4, 3, 0.0, 1.0);
        let c1 = Mesh2D::<f32>::random(10, 2, 4, 0.0, 1.0);
        let a3 = Mesh2D::<f32>::random(8, 4, 5, 0.0, 1.0);
        let groups =
            group_by_shape_2d(&[a1.clone(), b1.clone(), a2.clone(), c1.clone(), a3.clone()]);
        assert_eq!(groups.len(), 3);
        // first group: the 8×4 meshes, in order 0, 2, 4
        assert_eq!(groups[0].1, vec![0, 2, 4]);
        assert_eq!(groups[0].0.batch(), 3);
        assert_eq!(groups[0].0.mesh(0), a1);
        assert_eq!(groups[0].0.mesh(1), a2);
        assert_eq!(groups[0].0.mesh(2), a3);
        assert_eq!(groups[1].1, vec![1]);
        assert_eq!(groups[1].0.mesh(0), b1);
        assert_eq!(groups[2].1, vec![3]);
        assert_eq!(groups[2].0.mesh(0), c1);
    }

    #[test]
    fn group_by_shape_empty_and_uniform() {
        let empty: Vec<Mesh2D<f32>> = Vec::new();
        assert!(group_by_shape_2d(&empty).is_empty());
        let ms: Vec<_> = (0..4).map(|i| Mesh2D::<f32>::random(5, 5, i, 0.0, 1.0)).collect();
        let groups = group_by_shape_2d(&ms);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].0.batch(), 4);
    }

    #[test]
    fn batch3d_owner_and_seam_guard() {
        let b = Batch3D::<f32>::zeros(6, 6, 4, 2);
        assert_eq!(b.owner(3), (0, 3));
        assert_eq!(b.owner(4), (1, 0));
        assert!(!b.is_interior_global(3, 3, 4, 1)); // first plane of mesh 1
        assert!(b.is_interior_global(3, 3, 5, 1));
        assert!(!b.is_interior_global(3, 3, 7, 1)); // last plane of mesh 1
    }

    #[test]
    fn batch3d_mesh_extraction() {
        let m0 = Mesh3D::<f32>::random(3, 3, 3, 1, 0.0, 1.0);
        let m1 = Mesh3D::<f32>::random(3, 3, 3, 2, 0.0, 1.0);
        let b = Batch3D::from_meshes(&[m0.clone(), m1.clone()]);
        assert_eq!(b.mesh(0), m0);
        assert_eq!(b.mesh(1), m1);
        assert_eq!(b.size_bytes(), 2 * 27 * 4);
    }

    #[test]
    fn batch3d_random_meshes_differ() {
        let b = Batch3D::<f32>::random(4, 4, 4, 2, 5, 0.0, 1.0);
        assert_ne!(b.mesh(0), b.mesh(1));
    }
}
