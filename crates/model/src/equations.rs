//! The paper's model equations (2)–(15), verbatim.
//!
//! Symbol glossary (paper → here): mesh `m × n (× l)` → `m, n, l` with `m`
//! the fastest (row) dimension; `V` vectorization factor; `p` iterative
//! unroll; `D` stencil order; `k` element bytes; `B` batch size; `M × N`
//! tile dimensions.

/// Eq. (2): total clock cycles to run `niter` iterations of a 2D stencil on
/// an `m × n` mesh:
/// `Clks₂D = niter/p × (⌈m/V⌉ × (n + p·D/2))`.
pub fn clks_2d(niter: u64, p: u64, m: u64, n: u64, v: u64, d: u64) -> u64 {
    niter.div_ceil(p) * (m.div_ceil(v) * (n + p * d / 2))
}

/// Eq. (3): the 3D analogue on an `m × n × l` mesh:
/// `Clks₃D = niter/p × (⌈m/V⌉ × n × (l + p·D/2))`.
pub fn clks_3d(niter: u64, p: u64, m: u64, n: u64, l: u64, v: u64, d: u64) -> u64 {
    niter.div_ceil(p) * (m.div_ceil(v) * n * (l + p * d / 2))
}

/// Eq. (4) rearranged: the maximum vectorization factor sustainable by
/// `channels` memory channels of `bw_channel` bytes/s at clock `f`:
/// `BW ≥ 2·V·f·sizeof(t)` → `V_max = ⌊BW / (2·f·k)⌋`.
pub fn v_max(bw_channel: f64, channels: usize, f_hz: f64, elem_bytes: usize) -> usize {
    ((bw_channel * channels as f64) / (2.0 * f_hz * elem_bytes as f64)).floor() as usize
}

/// Eq. (5): clock cycles per mesh point per iteration for a 2D mesh whose
/// width is a multiple of `V`: `1/V + p·D/(2·n·V)`.
pub fn clks_per_cell_2d(p: u64, n: u64, v: u64, d: u64) -> f64 {
    1.0 / v as f64 + (p * d) as f64 / (2 * n * v) as f64
}

/// Eq. (6): DSP-limited unroll factor
/// `p_dsp = ⌊util · FPGA_dsp / (V · G_dsp)⌋`.
pub fn p_dsp(fpga_dsp: usize, util: f64, v: usize, gdsp: usize) -> usize {
    ((util * fpga_dsp as f64) / (v * gdsp) as f64).floor() as usize
}

/// Eq. (7): memory-limited unroll factor for a 2D app buffering `D` rows of
/// `m` elements of `k` bytes: `p_mem = ⌊util · FPGA_mem / (k·D·m)⌋`.
/// For 3D pass `m = m·n` (the plane size), as the paper notes.
pub fn p_mem(fpga_mem_bytes: usize, util: f64, k: usize, d: usize, unit_cells: usize) -> usize {
    ((util * fpga_mem_bytes as f64) / (k * d * unit_cells) as f64).floor() as usize
}

/// Eq. (8): valid mesh points per `M × N × l` block: `(M−pD)(N−pD)·l`.
pub fn block_valid_3d(m: u64, n: u64, l: u64, p: u64, d: u64) -> u64 {
    m.saturating_sub(p * d) * n.saturating_sub(p * d) * l
}

/// Eq. (9): average cycles to process one `M × N × l` block for `p`
/// iterations: `M/V × N × (l + pD/2) / p`.
pub fn clks_block_3d(m: u64, n: u64, l: u64, p: u64, v: u64, d: u64) -> f64 {
    (m as f64 / v as f64) * n as f64 * ((l + p * d / 2) as f64) / p as f64
}

/// Eq. (10): blocked throughput in valid cells per cycle:
/// `T = (1 − pD/M)(1 − pD/N)(p·V·l/(l + pD/2))`.
pub fn throughput_3d(m: f64, n: f64, l: f64, p: f64, v: f64, d: f64) -> f64 {
    (1.0 - p * d / m) * (1.0 - p * d / n) * (p * v * l / (l + p * d / 2.0))
}

/// Eq. (11): memory-optimal square tile edge `M = sqrt(FPGA_mem/(k·p·D))`.
pub fn m_opt(fpga_mem_bytes: f64, k: f64, p: f64, d: f64) -> f64 {
    (fpga_mem_bytes / (k * p * d)).sqrt()
}

/// Eq. (12): throughput-optimal unroll for a given square tile `M`:
/// `p_max = M / (3·D)`.
pub fn p_max_for_tile(m: f64, d: f64) -> f64 {
    m / (3.0 * d)
}

/// Eq. (13): DSP-normalized 3D blocked throughput
/// `T₃D = (1 − pD/M)² × (DSP/G_dsp) × (l/(l + pD/2))`.
pub fn t3d(m: f64, l: f64, p: f64, d: f64, dsp: f64, gdsp: f64) -> f64 {
    let vf = 1.0 - p * d / m;
    vf * vf * (dsp / gdsp) * (l / (l + p * d / 2.0))
}

/// Eq. (14): the 2D analogue
/// `T₂D = (1 − pD/M) × (DSP/G_dsp) × (n/(n + pD/2))`.
pub fn t2d(m: f64, n: f64, p: f64, d: f64, dsp: f64, gdsp: f64) -> f64 {
    (1.0 - p * d / m) * (dsp / gdsp) * (n / (n + p * d / 2.0))
}

/// Eq. (15): cycles to process **one mesh** within a batch of `B` 2D meshes:
/// `⌈m/V⌉ × (n + p·D/(2B))` — the fill is amortized over the batch.
pub fn clks_2d_batched_mesh(m: u64, n: u64, b: u64, p: u64, v: u64, d: u64) -> f64 {
    m.div_ceil(v) as f64 * (n as f64 + (p * d) as f64 / (2 * b) as f64)
}

/// Eq. (15) inverted: the smallest batch `B` at which the per-mesh cost is
/// within `efficiency` (e.g. 0.99) of the fill-free ideal `⌈m/V⌉·n` — how
/// one chooses the paper's `B = 100`/`B = 1000` operating points:
/// `B ≥ p·D·ε / (2·n·(1−ε))`.
pub fn batch_for_efficiency(n: u64, p: u64, d: u64, efficiency: f64) -> u64 {
    assert!((0.0..1.0).contains(&efficiency), "efficiency must be in [0,1)");
    let b = (p * d) as f64 * efficiency / (2.0 * n as f64 * (1.0 - efficiency));
    (b.ceil() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq2_poisson_example() {
        // 60 000 iters, p=60, 200×100, V=8, D=2:
        // 1000 × (25 × (100+60)) = 4 000 000
        assert_eq!(clks_2d(60_000, 60, 200, 100, 8, 2), 4_000_000);
    }

    #[test]
    fn eq2_rounds_partial_rows_and_passes() {
        // m=201 → ⌈201/8⌉ = 26; niter=61, p=60 → 2 passes
        assert_eq!(clks_2d(61, 60, 201, 100, 8, 2), 2 * 26 * 160);
    }

    #[test]
    fn eq3_jacobi_example() {
        // 29 000 iters, p=29, 100³, V=8: 1000 × (13×100×129)
        assert_eq!(clks_3d(29_000, 29, 100, 100, 100, 8, 2), 1000 * 13 * 100 * 129);
    }

    #[test]
    fn eq4_poisson_v8() {
        // §V-A: "a value of 8 for V is calculated when using a single DDR4
        // channel or two HBM channels with a frequency of 300MHz"
        let v_ddr = v_max(19.2e9, 1, 300e6, 4);
        assert_eq!(v_ddr, 8);
        let v_hbm2 = v_max(460.0e9 / 32.0, 2, 300e6, 4);
        assert_eq!(v_hbm2, 11); // ≥ 8 → paper picks the power of two 8
    }

    #[test]
    fn eq5_limits() {
        // n → ∞ gives the ideal 1/V
        let c = clks_per_cell_2d(60, 1_000_000, 8, 2);
        assert!((c - 0.125).abs() < 1e-4);
        // small n shows pipeline idling
        let c_small = clks_per_cell_2d(60, 100, 8, 2);
        assert!(c_small > 0.19);
    }

    #[test]
    fn eq6_matches_paper_table2() {
        // Poisson: ⌊0.9·8490/(8·14)⌋ = 68
        assert_eq!(p_dsp(8490, 0.9, 8, 14), 68);
        // Jacobi: ⌊0.9·8490/(8·33)⌋ = 28
        assert_eq!(p_dsp(8490, 0.9, 8, 33), 28);
        // RTM at the paper's G_dsp = 2444: ⌊0.9·8490/2444⌋ = 3
        assert_eq!(p_dsp(8490, 0.9, 1, 2444), 3);
        // …and at our kernel's G_dsp = 1974: still 3
        assert_eq!(p_dsp(8490, 0.9, 1, 1974), 3);
    }

    #[test]
    fn eq7_large_mesh_starves_memory() {
        let mem = 42_200_000;
        // Jacobi on 4000×4000 planes: k·D·m·n = 4·2·16e6 = 128 MB → p_mem = 0
        assert_eq!(p_mem(mem, 0.9, 4, 2, 4000 * 4000), 0);
        // on 300×300 planes: 0.9·42.2e6 / (4·2·9e4) = 52
        assert_eq!(p_mem(mem, 0.9, 4, 2, 300 * 300), 52);
    }

    #[test]
    fn eq8_eq10_valid_fraction() {
        let valid = block_valid_3d(768, 768, 600, 3, 2);
        assert_eq!(valid, 762 * 762 * 600);
        let t = throughput_3d(768.0, 768.0, 1e9, 3.0, 64.0, 2.0);
        // (1−6/768)² × 192 = 189.01 — exactly the paper's Table III T = 189
        assert!((t - 189.01).abs() < 0.1, "T = {t}");
    }

    #[test]
    fn eq9_block_cycles() {
        let c = clks_block_3d(768, 768, 600, 3, 64, 2);
        assert!((c - 12.0 * 768.0 * 603.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn eq11_eq12_optimal_tile() {
        // Jacobi-like: mem 42.2 MB, k=4, p=3, D=2 → continuous M ≈ 1326
        // (quantization then pulls it to the URAM-native 768; see blocking.rs)
        let m = m_opt(42.2e6, 4.0, 3.0, 2.0);
        assert!((1300.0..1350.0).contains(&m), "M_opt = {m}");
        let p = p_max_for_tile(8192.0, 2.0);
        assert!((p - 1365.3).abs() < 0.1);
    }

    #[test]
    fn eq13_eq14_throughput_forms() {
        // Poisson Table III check: T₂D with pV-equivalent DSP count:
        // (1−120/8192) × (60·8·14/14) × 1 = 472.97 — paper prints 472
        let t = t2d(8192.0, 1e12, 60.0, 2.0, (60 * 8 * 14) as f64, 14.0);
        assert!((t - 472.97).abs() < 0.5, "T2D = {t}");
        // Jacobi: (1−6/768)² × (3·64·33/33) × 1 = 189.01 — paper prints 189
        let t3 = t3d(768.0, 1e12, 3.0, 2.0, (3 * 64 * 33) as f64, 33.0);
        assert!((t3 - 189.01).abs() < 0.1, "T3D = {t3}");
    }

    #[test]
    fn eq15_batching_amortizes_fill() {
        let solo = clks_2d_batched_mesh(200, 100, 1, 60, 8, 2);
        let batched = clks_2d_batched_mesh(200, 100, 1000, 60, 8, 2);
        assert!((solo - 25.0 * 160.0).abs() < 1e-9);
        assert!((batched - 25.0 * 100.06).abs() < 1e-9);
        assert!(batched < solo * 0.7);
    }

    #[test]
    fn eq15_inverse_selects_paper_scale_batches() {
        // Poisson 200×100, p=60, D=2: fill = p·D/2 = 60 rows vs 100 data rows.
        // 99% efficiency needs B ≥ 120·0.99/(2·0.01·100) = 59.4 → 60
        let b99 = batch_for_efficiency(100, 60, 2, 0.99);
        assert_eq!(b99, 60);
        // 99.9% needs ≈ 600 — between the paper's 100B and 1000B points
        let b999 = batch_for_efficiency(100, 60, 2, 0.999);
        assert!((550..=650).contains(&b999), "B = {b999}");
        // the chosen B indeed delivers the promised efficiency
        let per_mesh = clks_2d_batched_mesh(200, 100, b99, 60, 8, 2);
        let ideal = 25.0 * 100.0;
        assert!(ideal / per_mesh >= 0.99);
        // degenerate: tiny fill → B = 1 suffices
        assert_eq!(batch_for_efficiency(10_000, 1, 2, 0.99), 1);
    }
}
