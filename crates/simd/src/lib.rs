#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sf-simd — portable `f32` lane abstraction
//!
//! A minimal, dependency-free pack type for the vectorized fast-path
//! executors in `sf_fpga::fast`: [`F32xL`] holds [`LANES`] adjacent `f32`
//! cells and implements the elementwise arithmetic operators with plain
//! fixed-trip-count loops over the backing array. The loops are written so
//! the compiler's autovectorizer turns each operator into a handful of
//! vector instructions on any target — there is **no `unsafe`**, no
//! intrinsics, and no target-feature detection in this crate.
//!
//! ## Bit-exactness contract
//!
//! Every operator applies the scalar IEEE-754 operation independently per
//! lane, in lane order, with no reassociation and no fused multiply-add:
//! lane `i` of `a * b + c` computes exactly `a[i] * b[i] + c[i]` with the
//! same intermediate rounding the scalar executor performs for that cell.
//! Because the stencil kernels are written once, generically over an
//! abstract value (see `sf_kernels::domain`), instantiating them at
//! [`F32xL`] replays the *same* floating-point operation sequence the
//! `f32` instantiation performs — per cell, bit for bit.

use core::ops::{Add, Div, Mul, Sub};

/// Number of `f32` cells a pack advances per step.
///
/// Eight lanes fill a 256-bit vector register and still autovectorize
/// cleanly to two 128-bit operations on narrower targets.
pub const LANES: usize = 8;

/// A pack of [`LANES`] adjacent `f32` cells, processed elementwise.
#[derive(Copy, Clone, Debug, PartialEq, Default)]
pub struct F32xL(pub [f32; LANES]);

impl F32xL {
    /// Broadcast one scalar into every lane.
    #[inline]
    pub fn splat(v: f32) -> Self {
        F32xL([v; LANES])
    }

    /// Load a pack from the first [`LANES`] elements of `src`.
    ///
    /// # Panics
    /// Panics if `src` has fewer than [`LANES`] elements.
    #[inline]
    pub fn from_slice(src: &[f32]) -> Self {
        let mut out = [0.0f32; LANES];
        out.copy_from_slice(&src[..LANES]);
        F32xL(out)
    }

    /// Store the pack into the first [`LANES`] elements of `dst`.
    ///
    /// # Panics
    /// Panics if `dst` has fewer than [`LANES`] elements.
    #[inline]
    pub fn write_to(self, dst: &mut [f32]) {
        dst[..LANES].copy_from_slice(&self.0);
    }

    /// Lane `i` of the pack.
    #[inline]
    pub fn lane(&self, i: usize) -> f32 {
        self.0[i]
    }
}

macro_rules! elementwise {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for F32xL {
            type Output = F32xL;
            #[inline]
            fn $method(self, rhs: F32xL) -> F32xL {
                let mut out = [0.0f32; LANES];
                for i in 0..LANES {
                    out[i] = self.0[i] $op rhs.0[i];
                }
                F32xL(out)
            }
        }
    };
}

elementwise!(Add, add, +);
elementwise!(Sub, sub, -);
elementwise!(Mul, mul, *);
elementwise!(Div, div, /);

/// Apply `f` to `src` in [`LANES`]-wide packs, writing into `dst`; the
/// ragged tail (fewer than [`LANES`] trailing elements) is handled by the
/// scalar fallback `g`. Exercises the same pack/epilogue split the fast
/// executors use, packaged for reuse and tests.
///
/// # Panics
/// Panics if `dst` is shorter than `src`.
pub fn map_rows<F, G>(src: &[f32], dst: &mut [f32], mut f: F, mut g: G)
where
    F: FnMut(F32xL) -> F32xL,
    G: FnMut(f32) -> f32,
{
    let mut chunks = src.chunks_exact(LANES);
    let mut x = 0usize;
    for chunk in chunks.by_ref() {
        f(F32xL::from_slice(chunk)).write_to(&mut dst[x..x + LANES]);
        x += LANES;
    }
    for (i, &v) in chunks.remainder().iter().enumerate() {
        dst[x + i] = g(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_fills_every_lane() {
        let p = F32xL::splat(1.5);
        for i in 0..LANES {
            assert_eq!(p.lane(i), 1.5);
        }
    }

    #[test]
    fn roundtrip_from_slice_write_to() {
        let src: Vec<f32> = (0..LANES).map(|i| i as f32 * 0.25).collect();
        let mut dst = vec![0.0f32; LANES];
        F32xL::from_slice(&src).write_to(&mut dst);
        assert_eq!(src, dst);
    }

    #[test]
    fn operators_are_elementwise_and_bit_exact_vs_scalar() {
        // Awkward values: subnormals, values that round, negative zero.
        let a = F32xL([1.0e-40, 0.1, -0.0, 3.5, -7.25, 1.0e20, 0.3, -0.7]);
        let b = F32xL([2.0, 0.2, 5.0, -0.5, 0.125, 3.0, 0.7, -0.3]);
        let sum = a + b;
        let dif = a - b;
        let mul = a * b;
        let div = a / b;
        for i in 0..LANES {
            assert_eq!(sum.lane(i).to_bits(), (a.lane(i) + b.lane(i)).to_bits(), "add lane {i}");
            assert_eq!(dif.lane(i).to_bits(), (a.lane(i) - b.lane(i)).to_bits(), "sub lane {i}");
            assert_eq!(mul.lane(i).to_bits(), (a.lane(i) * b.lane(i)).to_bits(), "mul lane {i}");
            assert_eq!(div.lane(i).to_bits(), (a.lane(i) / b.lane(i)).to_bits(), "div lane {i}");
        }
    }

    #[test]
    fn no_fma_contraction_in_mul_add() {
        // (a * b) + c must round twice, exactly like the scalar executor.
        let a = F32xL::splat(1.0 + f32::EPSILON);
        let b = F32xL::splat(1.0 + f32::EPSILON);
        let c = F32xL::splat(-1.0);
        let packed = a * b + c;
        let scalar = (1.0 + f32::EPSILON) * (1.0 + f32::EPSILON) + -1.0;
        for i in 0..LANES {
            assert_eq!(packed.lane(i).to_bits(), scalar.to_bits(), "lane {i}");
        }
    }

    #[test]
    fn map_rows_covers_ragged_tails() {
        for len in [0, 1, LANES - 1, LANES, LANES + 1, 3 * LANES + 5] {
            let src: Vec<f32> = (0..len).map(|i| i as f32).collect();
            let mut dst = vec![0.0f32; len];
            map_rows(&src, &mut dst, |p| p + F32xL::splat(1.0), |v| v + 1.0);
            for (i, &v) in dst.iter().enumerate() {
                assert_eq!(v, i as f32 + 1.0, "len {len} index {i}");
            }
        }
    }
}
