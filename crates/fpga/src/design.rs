//! Design synthesis: turning `(application, V, p, execution mode)` into a
//! placed, clocked, resource-checked accelerator configuration.
//!
//! [`synthesize`] is the simulator's stand-in for Vivado HLS + place &
//! route: it allocates the quantized window buffers, counts DSPs, verifies
//! the configuration fits the device and its memory-bandwidth envelope
//! (paper eq. 4), and computes the achieved clock via the congestion model.
//! The result, [`StencilDesign`], is what the executors and the power model
//! consume, and its fields populate the "actual" columns of Table II.

use crate::axi;
use crate::clock;
use crate::device::FpgaDevice;
use crate::resources::{alloc_window, ResourceUsage};
use serde::{Deserialize, Serialize};
use sf_kernels::StencilSpec;

/// Which external memory the design streams through.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemKind {
    /// High Bandwidth Memory (32 channels on the U280).
    Hbm,
    /// DDR4 (2 banks; the paper's choice for large tiled meshes).
    Ddr4,
}

/// Execution strategy (§III baseline, §IV-A tiling, §IV-B batching).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecMode {
    /// Whole mesh streamed per pass; one problem.
    Baseline,
    /// `b` same-shaped problems stacked along the last dimension.
    Batched {
        /// Number of meshes in the batch (the paper's `B`).
        b: usize,
    },
    /// 2D meshes: tiles of `tile_m` cells along x, full extent in y.
    Tiled1D {
        /// Tile width `M` in cells.
        tile_m: usize,
    },
    /// 3D meshes: `tile_m × tile_n` blocks in x/y, full extent in z.
    Tiled2D {
        /// Tile width `M`.
        tile_m: usize,
        /// Tile height `N`.
        tile_n: usize,
    },
}

impl ExecMode {
    /// Batch factor of the mode (1 except for `Batched`).
    pub fn batch(&self) -> usize {
        match self {
            ExecMode::Batched { b } => *b,
            _ => 1,
        }
    }

    /// `true` for the spatially blocked modes.
    pub fn is_tiled(&self) -> bool {
        matches!(self, ExecMode::Tiled1D { .. } | ExecMode::Tiled2D { .. })
    }
}

/// The problem shape a design is synthesized for.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Workload {
    /// A (batch of) 2D problem(s).
    D2 {
        /// Row length (paper's `m`).
        nx: usize,
        /// Rows (paper's `n`).
        ny: usize,
        /// Independent meshes (1 = single problem).
        batch: usize,
    },
    /// A (batch of) 3D problem(s).
    D3 {
        /// Fastest dimension (paper's `m`).
        nx: usize,
        /// Middle dimension (paper's `n`).
        ny: usize,
        /// Plane count (paper's `l`).
        nz: usize,
        /// Independent meshes.
        batch: usize,
    },
}

impl Workload {
    /// Cells in one mesh.
    pub fn cells(&self) -> u64 {
        match *self {
            Workload::D2 { nx, ny, .. } => (nx * ny) as u64,
            Workload::D3 { nx, ny, nz, .. } => (nx * ny * nz) as u64,
        }
    }

    /// Cells across the whole batch.
    pub fn total_cells(&self) -> u64 {
        self.cells() * self.batch() as u64
    }

    /// Batch factor.
    pub fn batch(&self) -> usize {
        match *self {
            Workload::D2 { batch, .. } | Workload::D3 { batch, .. } => batch,
        }
    }

    /// Mesh dimensionality.
    pub fn dims(&self) -> usize {
        match self {
            Workload::D2 { .. } => 2,
            Workload::D3 { .. } => 3,
        }
    }

    /// Row length `nx`.
    pub fn nx(&self) -> usize {
        match *self {
            Workload::D2 { nx, .. } | Workload::D3 { nx, .. } => nx,
        }
    }
}

/// Why synthesis rejected a configuration.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SynthesisError {
    /// Not enough DSP blocks: `p_dsp` would be below the requested `p`.
    InsufficientDsp {
        /// DSPs required.
        need: usize,
        /// DSPs on the device.
        have: usize,
    },
    /// Window buffers exceed BRAM/URAM capacity (`p_mem` below requested).
    InsufficientMemory {
        /// BRAM blocks required.
        need_bram: usize,
        /// URAM blocks required.
        need_uram: usize,
    },
    /// Requested vectorization exceeds the memory system's channels (eq. 4).
    InsufficientBandwidth {
        /// Channels required per direction.
        need_channels: usize,
        /// Channels available per direction.
        have_channels: usize,
    },
    /// Structurally invalid configuration (e.g. tile smaller than halo).
    Invalid(String),
    /// The module chain could not be floorplanned onto the SLRs.
    PlacementFailed(String),
    /// The workload's ping-pong buffers exceed the external memory.
    MeshTooLarge {
        /// Bytes the workload needs resident (input + output buffers).
        need_bytes: u64,
        /// Capacity of the selected memory.
        have_bytes: u64,
    },
}

impl core::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SynthesisError::InsufficientDsp { need, have } => {
                write!(f, "insufficient DSPs: need {need}, device has {have}")
            }
            SynthesisError::InsufficientMemory { need_bram, need_uram } => {
                write!(f, "window buffers do not fit: need {need_bram} BRAM + {need_uram} URAM")
            }
            SynthesisError::InsufficientBandwidth { need_channels, have_channels } => {
                write!(f, "need {need_channels} channels/direction, memory has {have_channels}")
            }
            SynthesisError::Invalid(s) => write!(f, "invalid configuration: {s}"),
            SynthesisError::PlacementFailed(s) => write!(f, "SLR placement failed: {s}"),
            SynthesisError::MeshTooLarge { need_bytes, have_bytes } => {
                write!(f, "workload needs {need_bytes} B resident, memory holds {have_bytes} B")
            }
        }
    }
}

impl std::error::Error for SynthesisError {}

/// A synthesized accelerator configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StencilDesign {
    /// The application this design implements.
    pub spec: StencilSpec,
    /// Vectorization factor (cells updated per cycle).
    pub v: usize,
    /// Iterative-loop unroll factor (pipeline modules chained).
    pub p: usize,
    /// Execution strategy.
    pub mode: ExecMode,
    /// External memory binding.
    pub mem: MemKind,
    /// Achieved kernel clock (Hz), from the congestion model.
    pub freq_hz: f64,
    /// Resources consumed.
    pub resources: ResourceUsage,
    /// Read channels assigned.
    pub read_channels: usize,
    /// Write channels assigned.
    pub write_channels: usize,
    /// Compute-pipeline latency in cycles for the full chained pipeline
    /// (excluding window fill, which the cycle model adds per pass).
    pub pipeline_latency_cycles: u64,
    /// SLR floorplan of the module chain.
    pub placement: crate::slr::SlrPlacement,
}

impl StencilDesign {
    /// Achieved clock in MHz (rounded).
    pub fn freq_mhz(&self) -> f64 {
        self.freq_hz / 1.0e6
    }
}

/// Width (cells) of the buffered streaming unit for a mode/workload: rows
/// for 2D, planes for 3D; tiles shrink it.
fn buffered_unit_cells(
    spec: &StencilSpec,
    mode: &ExecMode,
    wl: &Workload,
) -> Result<usize, SynthesisError> {
    match (wl, mode) {
        (Workload::D2 { nx, .. }, ExecMode::Tiled1D { tile_m }) => {
            let _ = nx;
            Ok(*tile_m)
        }
        (Workload::D2 { nx, .. }, _) => Ok(*nx),
        (Workload::D3 { .. }, ExecMode::Tiled2D { tile_m, tile_n }) => Ok(tile_m * tile_n),
        (Workload::D3 { nx, ny, .. }, _) => Ok(nx * ny),
        // note: Tiled2D on a 2D workload / Tiled1D on 3D are rejected below
    }
    .and_then(|cells| {
        if spec.dims != wl.dims() {
            return Err(SynthesisError::Invalid(format!(
                "{}D app on {}D workload",
                spec.dims,
                wl.dims()
            )));
        }
        Ok(cells)
    })
}

/// ```
/// use sf_fpga::design::{synthesize, ExecMode, MemKind, Workload};
/// use sf_fpga::FpgaDevice;
/// use sf_kernels::StencilSpec;
///
/// let dev = FpgaDevice::u280();
/// let wl = Workload::D2 { nx: 400, ny: 400, batch: 1 };
/// // the paper's Poisson configuration: V=8, p=60
/// let design = synthesize(&dev, &StencilSpec::poisson(), 8, 60,
///                         ExecMode::Baseline, MemKind::Hbm, &wl).unwrap();
/// assert_eq!(design.resources.dsp, 60 * 8 * 14);
/// assert!((design.freq_mhz() - 250.0).abs() < 10.0);
///
/// // a config exceeding the DSP budget is rejected with the reason
/// assert!(synthesize(&dev, &StencilSpec::poisson(), 64, 60,
///                    ExecMode::Baseline, MemKind::Hbm, &wl).is_err());
/// ```
/// Synthesize a design. This is the simulator's stand-in for HLS synthesis +
/// place & route; see module docs.
pub fn synthesize(
    dev: &FpgaDevice,
    spec: &StencilSpec,
    v: usize,
    p: usize,
    mode: ExecMode,
    mem: MemKind,
    wl: &Workload,
) -> Result<StencilDesign, SynthesisError> {
    if v == 0 || p == 0 {
        return Err(SynthesisError::Invalid("V and p must be positive".into()));
    }
    match (wl.dims(), &mode) {
        (2, ExecMode::Tiled2D { .. }) => {
            return Err(SynthesisError::Invalid("Tiled2D mode is for 3D workloads".into()))
        }
        (3, ExecMode::Tiled1D { .. }) => {
            return Err(SynthesisError::Invalid("Tiled1D mode is for 2D workloads".into()))
        }
        _ => {}
    }
    if let ExecMode::Tiled1D { tile_m } = mode {
        if tile_m <= p * spec.halo_order() {
            return Err(SynthesisError::Invalid(format!(
                "tile M={tile_m} must exceed halo pD={}",
                p * spec.halo_order()
            )));
        }
    }
    if let ExecMode::Tiled2D { tile_m, tile_n } = mode {
        if tile_m <= p * spec.halo_order() || tile_n <= p * spec.halo_order() {
            return Err(SynthesisError::Invalid(format!(
                "tile {tile_m}×{tile_n} must exceed halo pD={}",
                p * spec.halo_order()
            )));
        }
    }

    // --- channel assignment + bandwidth feasibility (paper eq. 4) ---
    let mem_spec = match mem {
        MemKind::Hbm => &dev.hbm,
        MemKind::Ddr4 => &dev.ddr4,
    };
    let read_channels = axi::channels_needed(dev, mem_spec, v, spec.ext_read_bytes);
    let write_channels = axi::channels_needed(dev, mem_spec, v, spec.ext_write_bytes);

    // --- external capacity: ping-pong input/output buffers must be resident ---
    let resident = wl.total_cells() * (spec.ext_read_bytes + spec.ext_write_bytes) as u64;
    if resident > mem_spec.bytes {
        return Err(SynthesisError::MeshTooLarge {
            need_bytes: resident,
            have_bytes: mem_spec.bytes,
        });
    }
    let have = mem_spec.channels / 2; // per direction
    if read_channels.max(write_channels) > have.max(1) {
        return Err(SynthesisError::InsufficientBandwidth {
            need_channels: read_channels.max(write_channels),
            have_channels: have.max(1),
        });
    }

    // --- resources ---
    let dsp = p * v * spec.gdsp();
    if dsp > dev.dsp_total {
        return Err(SynthesisError::InsufficientDsp { need: dsp, have: dev.dsp_total });
    }
    let unit = buffered_unit_cells(spec, &mode, wl)?;
    let alloc = alloc_window(dev, unit, spec.window_elem_bytes, v, spec.order, spec.stages, p);
    // stream FIFOs: between chained stages and on the memory interfaces
    let fifo_bram = crate::fifo::fifo_brams(
        dev.bram_block_bytes,
        dev.axi_burst_bytes,
        v,
        spec.window_elem_bytes,
        p * spec.stages,
    );
    let bram_blocks = alloc.bram_blocks + fifo_bram;
    if bram_blocks > dev.bram_blocks || alloc.uram_blocks > dev.uram_blocks {
        return Err(SynthesisError::InsufficientMemory {
            need_bram: bram_blocks,
            need_uram: alloc.uram_blocks,
        });
    }
    let (luts, ffs) = crate::resources::estimate_fabric(&spec.ops, v, p);
    if luts > dev.lut_total || ffs > dev.ff_total {
        return Err(SynthesisError::Invalid(format!(
            "fabric exhausted: {luts} LUTs / {ffs} FFs estimated"
        )));
    }
    let resources = ResourceUsage {
        dsp,
        bram_blocks,
        uram_blocks: alloc.uram_blocks,
        luts,
        ffs,
        window_bytes: alloc.payload_bytes,
    };

    // --- SLR floorplan ---
    let demand = crate::slr::ModuleDemand {
        dsp: dsp / p,
        bram: alloc.bram_blocks / p,
        uram: alloc.uram_blocks / p,
    };
    let placement = crate::slr::place_chain(dev, p, demand)
        .map_err(|e| SynthesisError::PlacementFailed(e.to_string()))?;

    // --- clock closure ---
    let freq_hz = clock::achieved_frequency_placed(
        dev,
        &resources,
        p,
        placement.crossings,
        placement.spanning_modules,
    );

    let pipeline_latency_cycles = (spec.pipeline_latency() * p) as u64;

    Ok(StencilDesign {
        spec: *spec,
        v,
        p,
        mode,
        mem,
        freq_hz,
        resources,
        read_channels,
        write_channels,
        pipeline_latency_cycles,
        placement,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> FpgaDevice {
        FpgaDevice::u280()
    }

    #[test]
    fn poisson_paper_design_synthesizes() {
        let d = dev();
        let wl = Workload::D2 { nx: 400, ny: 400, batch: 1 };
        let ds =
            synthesize(&d, &StencilSpec::poisson(), 8, 60, ExecMode::Baseline, MemKind::Hbm, &wl)
                .expect("paper design must synthesize");
        assert_eq!(ds.resources.dsp, 6720);
        assert_eq!(ds.read_channels, 1);
        assert_eq!(ds.write_channels, 1);
        let mhz = ds.freq_mhz();
        assert!((mhz - 250.0).abs() <= 10.0, "freq {mhz} vs paper 250 MHz");
    }

    #[test]
    fn jacobi_paper_design_synthesizes() {
        let d = dev();
        let wl = Workload::D3 { nx: 300, ny: 300, nz: 300, batch: 1 };
        let ds =
            synthesize(&d, &StencilSpec::jacobi(), 8, 29, ExecMode::Baseline, MemKind::Hbm, &wl)
                .expect("paper design must synthesize");
        assert_eq!(ds.resources.dsp, 7656);
        assert_eq!(ds.resources.uram_blocks, 928);
        assert!((ds.freq_mhz() - 246.0).abs() <= 10.0);
    }

    #[test]
    fn rtm_paper_design_synthesizes() {
        let d = dev();
        let wl = Workload::D3 { nx: 64, ny: 64, nz: 64, batch: 1 };
        let ds = synthesize(&d, &StencilSpec::rtm(), 1, 3, ExecMode::Baseline, MemKind::Hbm, &wl)
            .expect("paper design must synthesize");
        assert_eq!(ds.resources.dsp, 3 * 1974);
        assert_eq!(ds.resources.uram_blocks, 864);
        assert!((ds.freq_mhz() - 261.0).abs() <= 10.0);
    }

    #[test]
    fn rtm_p4_does_not_fit() {
        // The paper: p=4 (needed for tiling) "requires a large amount of FPGA
        // internal memory, making an implementation on the U280 challenging".
        let d = dev();
        let wl = Workload::D3 { nx: 96, ny: 96, nz: 96, batch: 1 };
        let err = synthesize(&d, &StencilSpec::rtm(), 1, 4, ExecMode::Baseline, MemKind::Hbm, &wl)
            .unwrap_err();
        assert!(matches!(err, SynthesisError::InsufficientMemory { .. }), "{err}");
    }

    #[test]
    fn oversized_mesh_exhausts_window_memory() {
        // eq. (7): big meshes can push p_mem below 1
        let d = dev();
        let wl = Workload::D3 { nx: 2500, ny: 2500, nz: 100, batch: 1 };
        let err =
            synthesize(&d, &StencilSpec::jacobi(), 8, 29, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap_err();
        assert!(matches!(err, SynthesisError::InsufficientMemory { .. }));
    }

    #[test]
    fn tiling_restores_feasibility_for_large_mesh() {
        let d = dev();
        let wl = Workload::D3 { nx: 2500, ny: 2500, nz: 100, batch: 1 };
        let ds = synthesize(
            &d,
            &StencilSpec::jacobi(),
            64,
            3,
            ExecMode::Tiled2D { tile_m: 768, tile_n: 768 },
            MemKind::Hbm,
            &wl,
        )
        .expect("tiled design must fit");
        assert_eq!(ds.resources.uram_blocks, 384);
        // 256 B/cycle over 47.9 B/cycle HBM channels → 6 per direction
        assert_eq!(ds.read_channels, 6);
    }

    #[test]
    fn excessive_dsp_rejected() {
        let d = dev();
        let wl = Workload::D2 { nx: 400, ny: 400, batch: 1 };
        let err =
            synthesize(&d, &StencilSpec::poisson(), 64, 60, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap_err();
        assert!(matches!(err, SynthesisError::InsufficientDsp { .. }));
    }

    #[test]
    fn ddr4_limits_vectorization() {
        // V=64 needs 4 channels/direction; DDR4 has 1 per direction
        let d = dev();
        let wl = Workload::D3 { nx: 600, ny: 600, nz: 600, batch: 1 };
        let err = synthesize(
            &d,
            &StencilSpec::jacobi(),
            64,
            3,
            ExecMode::Tiled2D { tile_m: 640, tile_n: 640 },
            MemKind::Ddr4,
            &wl,
        )
        .unwrap_err();
        assert!(matches!(err, SynthesisError::InsufficientBandwidth { .. }));
    }

    #[test]
    fn tile_must_exceed_halo() {
        let d = dev();
        let wl = Workload::D2 { nx: 15000, ny: 15000, batch: 1 };
        let err = synthesize(
            &d,
            &StencilSpec::poisson(),
            8,
            60,
            ExecMode::Tiled1D { tile_m: 120 },
            MemKind::Ddr4,
            &wl,
        )
        .unwrap_err();
        assert!(matches!(err, SynthesisError::Invalid(_)));
    }

    #[test]
    fn mode_dimensionality_checked() {
        let d = dev();
        let wl2 = Workload::D2 { nx: 100, ny: 100, batch: 1 };
        assert!(synthesize(
            &d,
            &StencilSpec::poisson(),
            8,
            4,
            ExecMode::Tiled2D { tile_m: 64, tile_n: 64 },
            MemKind::Hbm,
            &wl2
        )
        .is_err());
        let wl3 = Workload::D3 { nx: 64, ny: 64, nz: 64, batch: 1 };
        assert!(synthesize(
            &d,
            &StencilSpec::jacobi(),
            8,
            4,
            ExecMode::Tiled1D { tile_m: 64 },
            MemKind::Hbm,
            &wl3
        )
        .is_err());
    }

    #[test]
    fn workload_accessors() {
        let w2 = Workload::D2 { nx: 10, ny: 20, batch: 5 };
        assert_eq!(w2.cells(), 200);
        assert_eq!(w2.total_cells(), 1000);
        assert_eq!(w2.dims(), 2);
        let w3 = Workload::D3 { nx: 4, ny: 5, nz: 6, batch: 2 };
        assert_eq!(w3.cells(), 120);
        assert_eq!(w3.total_cells(), 240);
        assert_eq!(w3.nx(), 4);
    }
}

#[cfg(test)]
mod capacity_tests {
    use super::*;
    use sf_kernels::StencilSpec;

    #[test]
    fn oversized_mesh_rejected_for_external_capacity() {
        // 100 000² f32 = 40 GB resident (in+out) > 32 GB DDR4
        let d = FpgaDevice::u280();
        let wl = Workload::D2 { nx: 100_000, ny: 100_000, batch: 1 };
        let err = synthesize(
            &d,
            &StencilSpec::poisson(),
            8,
            4,
            ExecMode::Tiled1D { tile_m: 8192 },
            MemKind::Ddr4,
            &wl,
        )
        .unwrap_err();
        assert!(matches!(err, SynthesisError::MeshTooLarge { .. }), "{err}");
        assert!(format!("{err}").contains("resident"));
    }

    #[test]
    fn hbm_capacity_tighter_than_ddr4() {
        // 25 000² = 5 GB resident: fits 32 GB DDR4, not 8 GB HBM... 25 000²·8 = 5 GB ≤ 8 GB;
        // use 35 000²·8 B = 9.8 GB: rejected on HBM, accepted on DDR4
        let d = FpgaDevice::u280();
        let wl = Workload::D2 { nx: 35_000, ny: 35_000, batch: 1 };
        let hbm = synthesize(
            &d,
            &StencilSpec::poisson(),
            8,
            4,
            ExecMode::Tiled1D { tile_m: 8192 },
            MemKind::Hbm,
            &wl,
        );
        assert!(matches!(hbm, Err(SynthesisError::MeshTooLarge { .. })));
        let ddr = synthesize(
            &d,
            &StencilSpec::poisson(),
            8,
            4,
            ExecMode::Tiled1D { tile_m: 8192 },
            MemKind::Ddr4,
            &wl,
        );
        assert!(ddr.is_ok(), "{:?}", ddr.err());
    }

    #[test]
    fn paper_largest_meshes_fit() {
        // the paper's largest runs must not trip the capacity check:
        // Poisson 20000² on DDR4 (3.2 GB), Jacobi 600³ on HBM (1.7 GB)
        let d = FpgaDevice::u280();
        let p = Workload::D2 { nx: 20_000, ny: 20_000, batch: 1 };
        assert!(synthesize(
            &d,
            &StencilSpec::poisson(),
            8,
            60,
            ExecMode::Tiled1D { tile_m: 4096 },
            MemKind::Ddr4,
            &p
        )
        .is_ok());
        let j = Workload::D3 { nx: 600, ny: 600, nz: 600, batch: 1 };
        assert!(synthesize(
            &d,
            &StencilSpec::jacobi(),
            64,
            3,
            ExecMode::Tiled2D { tile_m: 640, tile_n: 640 },
            MemKind::Hbm,
            &j
        )
        .is_ok());
    }
}
