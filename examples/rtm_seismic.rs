//! Reverse Time Migration forward pass — the paper's industrial application
//! (§V-C): an RK4 integrator over a 6-component wavefield with a 25-point,
//! 8th-order stencil and PML damping, fused into a single 4-stage dataflow
//! pipeline (12 chained stencil stages at p = 3).
//!
//! ```text
//! cargo run --release --example rtm_seismic
//! ```

use sf_core::prelude::*;
use sf_kernels::rtm;

fn main() {
    let wf = Workflow::u280_vs_v100();
    let spec = StencilSpec::rtm();
    let params = RtmParams::default();

    // ── design: the workflow must land on the paper's configuration ──────
    let wl = Workload::D3 { nx: 32, ny: 32, nz: 32, batch: 1 };
    let best = wf.best_design(&spec, &wl, 1800).expect("RTM fits the U280");
    println!("── RTM design on the U280 ───────────────────────────────────");
    println!(
        "  V={} p={} @ {:.0} MHz — G_dsp={} (paper: 2444), DSP {}/{}, URAM {}/960",
        best.design.v,
        best.design.p,
        best.design.freq_mhz(),
        spec.gdsp(),
        best.design.resources.dsp,
        wf.device.dsp_total,
        best.design.resources.uram_blocks,
    );

    // ── a seismic shot: Gaussian source pulse, smooth ρ/μ earth model ─────
    let (y, rho, mu) = rtm::demo_workload(24, 24, 24);
    let solver = RtmSolver::with_design(
        wf.device.clone(),
        {
            let wl = Workload::D3 { nx: 24, ny: 24, nz: 24, batch: 1 };
            wf.best_design(&spec, &wl, 1800).unwrap().design
        },
        params,
    );
    let (wavefield, rep) = solver.run_validated(&y, &rho, &mu, 12);
    let peak = sf_mesh::norms::max_norm_3d(&wavefield);
    println!("\n── forward pass, 12 RK4 steps on 24³ ────────────────────────");
    println!("  wavefield peak |u|  : {peak:.4} (finite, damped by the PML sponge)");
    println!("  fused pipeline      : bit-exact vs golden Algorithm-1 reference ✓");
    println!("  simulated kernel    : {} cycles over {} passes", rep.total_cycles, rep.passes);

    // ── the paper's Fig. 5 / Table VI story: baseline vs batched, vs GPU ──
    println!("\n── U280 (sim) vs V100 (model) ───────────────────────────────");
    println!(
        "{:<14} {:>6} {:>12} {:>12} {:>11} {:>11} {:>9}",
        "mesh", "batch", "FPGA GB/s", "GPU GB/s", "FPGA kJ", "GPU kJ", "energy×"
    );
    for &(nx, ny, nz) in &[(32usize, 32usize, 32usize), (50, 50, 50)] {
        for (b, iters) in [(1usize, 1800u64), (40, 180)] {
            let wl = Workload::D3 { nx, ny, nz, batch: b };
            let cmp = wf.compare(&spec, &wl, iters).unwrap();
            println!(
                "{:<14} {:>6} {:>12.0} {:>12.0} {:>11.3} {:>11.3} {:>8.2}x",
                format!("{nx}x{ny}x{nz}"),
                b,
                cmp.fpga.bandwidth_gbs,
                cmp.gpu.bandwidth_gbs,
                cmp.fpga.energy_j / 1e3,
                cmp.gpu.energy_j / 1e3,
                cmp.energy_ratio(),
            );
        }
    }
}
