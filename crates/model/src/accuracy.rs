//! Model-accuracy validation: the paper's "±15 % of the achieved runtime"
//! claim, reproduced against the cycle-level simulator.
//!
//! [`accuracy_suite`] evaluates every configuration from the paper's
//! evaluation section (Tables IV–VI / Figs. 3–5) and compares the
//! [`mod@crate::predict`] model at both levels against the simulator's achieved
//! runtime. The extended model should land within ±15 % on ≥ 85 % of the
//! suite (the abstract's "over 85 % predictive model accuracy"); the ideal
//! equations drift on latency-dominated small baselines and memory-bound 3D
//! tiles — exactly the places the paper itself flags.

use crate::error::ModelError;
use crate::predict::{predict, PredictionLevel};
use serde::{Deserialize, Serialize};
use sf_fpga::cycles;
use sf_fpga::design::{synthesize, ExecMode, StencilDesign, Workload};
use sf_fpga::{FpgaDevice, MemKind};
use sf_kernels::{AppId, StencilSpec};

/// One prediction-vs-achieved comparison.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AccuracyCase {
    /// Human-readable configuration label.
    pub label: String,
    /// Application.
    pub app: AppId,
    /// Ideal-model runtime (s).
    pub ideal_s: f64,
    /// Extended-model runtime (s).
    pub extended_s: f64,
    /// Simulator (achieved) runtime (s).
    pub achieved_s: f64,
}

impl AccuracyCase {
    /// Signed relative error of the ideal model, percent.
    pub fn ideal_err_pct(&self) -> f64 {
        (self.ideal_s - self.achieved_s) / self.achieved_s * 100.0
    }

    /// Signed relative error of the extended model, percent.
    pub fn extended_err_pct(&self) -> f64 {
        (self.extended_s - self.achieved_s) / self.achieved_s * 100.0
    }
}

/// Aggregate statistics over a suite.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AccuracyStats {
    /// All evaluated cases.
    pub cases: Vec<AccuracyCase>,
}

impl AccuracyStats {
    /// Fraction of cases whose |error| ≤ `pct` at the chosen level.
    pub fn frac_within(&self, pct: f64, level: PredictionLevel) -> f64 {
        if self.cases.is_empty() {
            return 0.0;
        }
        let n = self
            .cases
            .iter()
            .filter(|c| {
                let e = match level {
                    PredictionLevel::Ideal => c.ideal_err_pct(),
                    PredictionLevel::Extended => c.extended_err_pct(),
                };
                e.abs() <= pct
            })
            .count();
        n as f64 / self.cases.len() as f64
    }

    /// Worst absolute error (percent) at the chosen level.
    pub fn worst_abs_err_pct(&self, level: PredictionLevel) -> f64 {
        self.cases
            .iter()
            .map(|c| match level {
                PredictionLevel::Ideal => c.ideal_err_pct().abs(),
                PredictionLevel::Extended => c.extended_err_pct().abs(),
            })
            .fold(0.0, f64::max)
    }
}

fn eval(
    dev: &FpgaDevice,
    label: &str,
    design: &StencilDesign,
    wl: &Workload,
    niter: u64,
    out: &mut AccuracyStats,
) -> Result<(), ModelError> {
    let achieved = cycles::plan(dev, design, wl, niter).runtime_s;
    // the suite only evaluates designs synthesized for their own workload,
    // so predict() can only fail on a genuinely broken suite entry — which
    // the caller should see as a typed error, not a panic
    let ideal = predict(dev, design, wl, niter, PredictionLevel::Ideal)?.runtime_s;
    let extended = predict(dev, design, wl, niter, PredictionLevel::Extended)?.runtime_s;
    out.cases.push(AccuracyCase {
        label: label.to_string(),
        app: design.spec.app,
        ideal_s: ideal,
        extended_s: extended,
        achieved_s: achieved,
    });
    Ok(())
}

/// Synthesize a fixed suite configuration, converting a rejection into the
/// typed [`ModelError::Infeasible`] naming the configuration.
#[allow(clippy::too_many_arguments)]
fn synth(
    dev: &FpgaDevice,
    spec: &StencilSpec,
    v: usize,
    p: usize,
    mode: ExecMode,
    mem: MemKind,
    wl: &Workload,
    label: &str,
) -> Result<StencilDesign, ModelError> {
    synthesize(dev, spec, v, p, mode, mem, wl)
        .map_err(|e| ModelError::Infeasible { detail: format!("{label}: {e}") })
}

/// Evaluate the full paper-configuration suite (every mesh/batch/tile of
/// Tables IV–VI) on a device. Errs with [`ModelError::Infeasible`] if the
/// device cannot synthesize one of the paper's fixed configurations.
pub fn accuracy_suite(dev: &FpgaDevice) -> Result<AccuracyStats, ModelError> {
    let mut stats = AccuracyStats::default();

    // ---- Poisson-5pt-2D ----
    let ps = StencilSpec::poisson();
    let meshes2d =
        [(200usize, 100usize), (200, 200), (300, 150), (300, 300), (400, 200), (400, 400)];
    for &(nx, ny) in &meshes2d {
        let wl = Workload::D2 { nx, ny, batch: 1 };
        let label = format!("poisson base {nx}x{ny}");
        let ds = synth(dev, &ps, 8, 60, ExecMode::Baseline, MemKind::Hbm, &wl, &label)?;
        eval(dev, &label, &ds, &wl, 60_000, &mut stats)?;
        for b in [100usize, 1000] {
            let wlb = Workload::D2 { nx, ny, batch: b };
            let label = format!("poisson {b}B {nx}x{ny}");
            let dsb = synth(dev, &ps, 8, 60, ExecMode::Batched { b }, MemKind::Hbm, &wlb, &label)?;
            eval(dev, &label, &dsb, &wlb, 60_000, &mut stats)?;
        }
    }
    for &n in &[15_000usize, 20_000] {
        for &tile in &[1024usize, 4096, 8000] {
            let wl = Workload::D2 { nx: n, ny: n, batch: 1 };
            let label = format!("poisson tiled {n}² M={tile}");
            let mode = ExecMode::Tiled1D { tile_m: tile };
            let ds = synth(dev, &ps, 8, 60, mode, MemKind::Ddr4, &wl, &label)?;
            eval(dev, &label, &ds, &wl, 6_000, &mut stats)?;
        }
    }

    // ---- Jacobi-7pt-3D ----
    let js = StencilSpec::jacobi();
    for &n in &[50usize, 100, 200, 250, 300] {
        let wl = Workload::D3 { nx: n, ny: n, nz: n, batch: 1 };
        let label = format!("jacobi base {n}³");
        let ds = synth(dev, &js, 8, 29, ExecMode::Baseline, MemKind::Hbm, &wl, &label)?;
        eval(dev, &label, &ds, &wl, 29_000, &mut stats)?;
    }
    for &n in &[50usize, 100, 200] {
        for b in [10usize, 50] {
            let wl = Workload::D3 { nx: n, ny: n, nz: n, batch: b };
            let label = format!("jacobi {b}B {n}³");
            let ds = synth(dev, &js, 8, 29, ExecMode::Batched { b }, MemKind::Hbm, &wl, &label)?;
            eval(dev, &label, &ds, &wl, 2_900, &mut stats)?;
        }
    }
    for &tile in &[256usize, 512, 640] {
        let mode = ExecMode::Tiled2D { tile_m: tile, tile_n: tile };
        let wl = Workload::D3 { nx: 600, ny: 600, nz: 600, batch: 1 };
        let label = format!("jacobi tiled 600³ M={tile}");
        let ds = synth(dev, &js, 64, 3, mode, MemKind::Hbm, &wl, &label)?;
        eval(dev, &label, &ds, &wl, 120, &mut stats)?;
        let wl2 = Workload::D3 { nx: 1800, ny: 1800, nz: 100, batch: 1 };
        let label2 = format!("jacobi tiled 1800²x100 M={tile}");
        let ds2 = synth(dev, &js, 64, 3, mode, MemKind::Hbm, &wl2, &label2)?;
        eval(dev, &label2, &ds2, &wl2, 120, &mut stats)?;
    }

    // ---- beyond the paper: custom kernels through the same model ----
    {
        let heat = sf_kernels::StarStencil2D::laplace9_order4(0.05, 1.0).spec();
        for (nx, ny) in [(512usize, 256usize), (2000, 1000)] {
            let wl = Workload::D2 { nx, ny, batch: 1 };
            let v = 8;
            let p =
                crate::equations::p_dsp(dev.dsp_total, dev.dsp_util_target, v, heat.gdsp()).min(32);
            let label = format!("heat9 base {nx}x{ny}");
            let ds = synth(dev, &heat, v, p, ExecMode::Baseline, MemKind::Hbm, &wl, &label)?;
            eval(dev, &label, &ds, &wl, 5_000, &mut stats)?;
        }
        let wave = sf_kernels::wave2d::spec();
        let wl = Workload::D2 { nx: 1024, ny: 512, batch: 1 };
        let label = "wave2d base 1024x512";
        let ds = synth(dev, &wave, 4, 8, ExecMode::Baseline, MemKind::Hbm, &wl, label)?;
        eval(dev, label, &ds, &wl, 10_000, &mut stats)?;
    }

    // ---- RTM ----
    let rs = StencilSpec::rtm();
    let rtm_meshes =
        [(32usize, 32usize, 32usize), (32, 32, 50), (50, 50, 16), (50, 50, 32), (50, 50, 50)];
    for &(nx, ny, nz) in &rtm_meshes {
        let wl = Workload::D3 { nx, ny, nz, batch: 1 };
        let label = format!("rtm base {nx}x{ny}x{nz}");
        let ds = synth(dev, &rs, 1, 3, ExecMode::Baseline, MemKind::Hbm, &wl, &label)?;
        eval(dev, &label, &ds, &wl, 1_800, &mut stats)?;
        for b in [20usize, 40] {
            let wlb = Workload::D3 { nx, ny, nz, batch: b };
            let label = format!("rtm {b}B {nx}x{ny}x{nz}");
            let dsb = synth(dev, &rs, 1, 3, ExecMode::Batched { b }, MemKind::Hbm, &wlb, &label)?;
            eval(dev, &label, &dsb, &wlb, 180, &mut stats)?;
        }
    }

    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extended_model_meets_paper_accuracy_claim() {
        let dev = FpgaDevice::u280();
        let stats = accuracy_suite(&dev).unwrap();
        assert!(stats.cases.len() > 50, "suite covers the full evaluation section");
        let frac = stats.frac_within(15.0, PredictionLevel::Extended);
        assert!(frac >= 0.85, "extended model within ±15 % on only {:.0} % of cases", frac * 100.0);
    }

    #[test]
    fn ideal_model_drifts_where_paper_says_it_does() {
        let dev = FpgaDevice::u280();
        let stats = accuracy_suite(&dev).unwrap();
        let frac_ideal = stats.frac_within(15.0, PredictionLevel::Ideal);
        let frac_ext = stats.frac_within(15.0, PredictionLevel::Extended);
        assert!(frac_ext >= frac_ideal, "extended must not be worse overall");
        // the latency-dominated small baselines must exceed ±15 % under the
        // pure equations (the gap the overhead calibration exists to close)
        let small = stats.cases.iter().find(|c| c.label == "poisson base 200x100").unwrap();
        assert!(small.ideal_err_pct().abs() > 15.0);
    }

    #[test]
    fn errors_are_signed_and_finite() {
        let dev = FpgaDevice::u280();
        let stats = accuracy_suite(&dev).unwrap();
        for c in &stats.cases {
            assert!(c.ideal_err_pct().is_finite(), "{}", c.label);
            assert!(c.extended_err_pct().is_finite(), "{}", c.label);
            // the ideal model never over-predicts (it omits only overheads)
            assert!(c.ideal_s <= c.achieved_s * 1.0001, "{}", c.label);
        }
    }
}
