//! Cross-validation of the static checker against the synthesizer and the
//! resilient simulator:
//!
//! * a check-clean design must synthesize AND simulate to completion with
//!   no watchdog/deadlock (the static verdict is sound);
//! * a design the synthesizer rejects must carry at least one
//!   error-severity diagnostic (the error rules are a superset of the
//!   synthesizer's rejections);
//! * seeded violations (undersized FIFO, oversized tile, truncated window
//!   buffer) must be caught with the right rule id.

use proptest::prelude::*;
use sf_check::{check, Design, RuleId, Severity};
use sf_fpga::design::{synthesize, ExecMode, MemKind, Workload};
use sf_fpga::{
    simulate_2d_resilient, simulate_3d_resilient, FaultInjector, FpgaDevice, Recorder, RetryPolicy,
};
use sf_kernels::{Jacobi3D, Poisson2D, StencilSpec};
use sf_mesh::{Batch2D, Batch3D};

fn dev() -> FpgaDevice {
    FpgaDevice::u280()
}

const V_CHOICES: [usize; 4] = [1, 2, 8, 16];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// 2D Poisson designs: static verdict vs synthesizer vs simulator.
    #[test]
    fn poisson_verdict_matches_simulator(
        nx in 3usize..40,
        ny in 3usize..40,
        b in 1usize..3,
        v_idx in 0usize..4,
        p in 1usize..70,
        use_ddr in 0u8..2,
        seed in 0u64..1000,
    ) {
        let d = dev();
        let v = V_CHOICES[v_idx];
        let wl = Workload::D2 { nx, ny, batch: b };
        let mode = if b == 1 { ExecMode::Baseline } else { ExecMode::Batched { b } };
        let mem = if use_ddr == 1 { MemKind::Ddr4 } else { MemKind::Hbm };
        let design = Design::new(StencilSpec::poisson(), v, p, mode, mem, wl);
        let rep = check(&d, &design);

        let synth = synthesize(&d, &StencilSpec::poisson(), v, p, mode, mem, &wl);
        if rep.has_errors() {
            // nothing to assert about synth: the checker is allowed to be
            // stricter (RAW hazards, window reach) than the synthesizer
        } else {
            let ds = match &synth {
                Ok(ds) => ds,
                Err(e) => return Err(TestCaseError::Fail(format!(
                    "check-clean design must synthesize, got {e}: {}", rep.render()))),
            };
            let batch = Batch2D::<f32>::random(nx, ny, b, seed, -1.0, 1.0);
            let mut inj = FaultInjector::disabled();
            let r = simulate_2d_resilient(
                &d, ds, &[Poisson2D], &batch, 2,
                &mut inj, &RetryPolicy::default(), &mut Recorder::disabled(),
            );
            prop_assert!(r.is_ok(), "check-clean design deadlocked: {:?}", r.err());
        }
        if synth.is_err() {
            prop_assert!(
                rep.has_errors(),
                "synthesizer rejected ({:?}) but the checker is clean",
                synth.err()
            );
        }
    }

    /// 3D Jacobi designs: same three-way agreement.
    #[test]
    fn jacobi_verdict_matches_simulator(
        nx in 3usize..20,
        ny in 3usize..20,
        nz in 3usize..16,
        b in 1usize..3,
        v_idx in 0usize..4,
        p in 1usize..40,
        seed in 0u64..1000,
    ) {
        let d = dev();
        let v = V_CHOICES[v_idx];
        let wl = Workload::D3 { nx, ny, nz, batch: b };
        let mode = if b == 1 { ExecMode::Baseline } else { ExecMode::Batched { b } };
        let design = Design::new(StencilSpec::jacobi(), v, p, mode, MemKind::Hbm, wl);
        let rep = check(&d, &design);

        let synth = synthesize(&d, &StencilSpec::jacobi(), v, p, mode, MemKind::Hbm, &wl);
        if !rep.has_errors() {
            let ds = match &synth {
                Ok(ds) => ds,
                Err(e) => return Err(TestCaseError::Fail(format!(
                    "check-clean design must synthesize, got {e}: {}", rep.render()))),
            };
            let batch = Batch3D::<f32>::random(nx, ny, nz, b, seed, -1.0, 1.0);
            let mut inj = FaultInjector::disabled();
            let r = simulate_3d_resilient(
                &d, ds, &[Jacobi3D::smoothing()], &batch, 2,
                &mut inj, &RetryPolicy::default(), &mut Recorder::disabled(),
            );
            prop_assert!(r.is_ok(), "check-clean design deadlocked: {:?}", r.err());
        }
        if synth.is_err() {
            prop_assert!(
                rep.has_errors(),
                "synthesizer rejected ({:?}) but the checker is clean",
                synth.err()
            );
        }
    }

    /// Seeded undersized FIFO: always caught as SFC-F01, error severity.
    #[test]
    fn seeded_undersized_fifo_is_caught(
        v_idx in 0usize..4,
        p in 1usize..60,
        shrink in 1usize..16,
    ) {
        let d = dev();
        let v = V_CHOICES[v_idx];
        let spec = StencilSpec::poisson();
        let burst_elems = d.axi_burst_bytes.div_ceil((v * spec.window_elem_bytes).max(1)).max(1);
        prop_assume!(burst_elems > 1);
        let depth = (burst_elems - 1).min(shrink.max(1));
        let mut design = Design::new(
            spec, v, p, ExecMode::Baseline, MemKind::Hbm,
            Workload::D2 { nx: 400, ny: 400, batch: 1 },
        );
        design.fifo_depth = Some(depth);
        let rep = check(&d, &design);
        let diag = rep.diagnostics.iter().find(|x| x.rule == RuleId::FifoDeadlock);
        prop_assert!(diag.is_some(), "depth {depth} < burst {burst_elems} missed: {}", rep.render());
        prop_assert_eq!(diag.unwrap().severity, Severity::Error);
    }

    /// Seeded oversized tile (tile ≤ p·D halo): always caught as SFC-T01.
    #[test]
    fn seeded_halo_violating_tile_is_caught(
        p in 1usize..60,
        slack in 0usize..8,
    ) {
        let d = dev();
        let spec = StencilSpec::poisson();
        let halo = p * spec.halo_order();
        let tile_m = (halo - slack.min(halo - 1)).max(1); // in 1..=halo
        let design = Design::new(
            spec, 8, p,
            ExecMode::Tiled1D { tile_m },
            MemKind::Ddr4,
            Workload::D2 { nx: 15_000, ny: 15_000, batch: 1 },
        );
        let rep = check(&d, &design);
        let diag = rep.diagnostics.iter().find(|x| x.rule == RuleId::TileHalo);
        prop_assert!(diag.is_some(), "tile {tile_m} ≤ halo {halo} missed: {}", rep.render());
        prop_assert_eq!(diag.unwrap().severity, Severity::Error);
        // the synthesizer agrees this is illegal
        prop_assert!(synthesize(
            &d, &spec, 8, p, ExecMode::Tiled1D { tile_m }, MemKind::Ddr4,
            &Workload::D2 { nx: 15_000, ny: 15_000, batch: 1 },
        ).is_err());
    }

    /// Seeded truncated window buffer: always caught as SFC-W01.
    #[test]
    fn seeded_truncated_window_is_caught(
        nx in 16usize..400,
        cut in 1usize..16,
    ) {
        let d = dev();
        let mut design = Design::new(
            StencilSpec::poisson(), 8, 4, ExecMode::Baseline, MemKind::Hbm,
            Workload::D2 { nx, ny: 64, batch: 1 },
        );
        design.window_units = Some(nx - cut.min(nx - 1));
        let rep = check(&d, &design);
        prop_assert!(rep.fired(RuleId::WindowReach), "{}", rep.render());
        prop_assert!(rep.has_errors());
    }
}
