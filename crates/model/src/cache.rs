//! Process-wide memoized analytic-model results.
//!
//! Every consumer of the model re-derives the same pure functions: the DSE
//! sweep predicts hundreds of `(V, p, mode)` points, `Workflow::preflight`
//! re-checks the design the DSE just check-filtered, and repeated
//! `sfstencil` subcommands in one process (or one benchmark) recompute
//! identical eq. 2–15 plans. Both derivations are pure in
//! (device, design, workload), so they memoize safely behind a pair of
//! process-wide [`sf_par::Memo`] caches keyed on a deterministic `Debug`
//! fingerprint of the inputs.
//!
//! The caches are thread-safe (the parallel DSE hits them from worker
//! threads) and deterministic: a cached value is by definition the value
//! the underlying function returns, so cache hits can never change a
//! result, only skip recomputation. [`prediction_cache_stats`] /
//! [`check_cache_stats`] expose hit/miss counters for benchmarks and
//! diagnostics; [`clear_caches`] exists for tests that need cold-cache
//! timings.

use crate::error::ModelError;
use crate::predict::{predict, Prediction, PredictionLevel};
use sf_check::CheckReport;
use sf_fpga::design::{StencilDesign, Workload};
use sf_fpga::FpgaDevice;
use sf_par::{Memo, MemoStats};
use std::sync::OnceLock;

fn prediction_memo() -> &'static Memo<Prediction> {
    static MEMO: OnceLock<Memo<Prediction>> = OnceLock::new();
    MEMO.get_or_init(Memo::new)
}

fn check_memo() -> &'static Memo<CheckReport> {
    static MEMO: OnceLock<Memo<CheckReport>> = OnceLock::new();
    MEMO.get_or_init(Memo::new)
}

/// Deterministic fingerprint of the device: the `Debug` rendering covers
/// every field, so two devices collide only when they are identical.
fn device_key(dev: &FpgaDevice) -> String {
    format!("{dev:?}")
}

/// [`predict`] behind the process-wide prediction cache.
///
/// Keyed on (device, design, workload, iterations, level); errors are
/// propagated and never cached.
pub fn predict_cached(
    dev: &FpgaDevice,
    design: &StencilDesign,
    wl: &Workload,
    niter: u64,
    level: PredictionLevel,
) -> Result<Prediction, ModelError> {
    let key = format!("predict|{}|{design:?}|{wl:?}|{niter}|{level:?}", device_key(dev));
    prediction_memo().try_get_or_insert_with(&key, || predict(dev, design, wl, niter, level))
}

/// [`sf_check::check`] behind the process-wide check-report cache.
///
/// The DSE pruning filter and `Workflow::preflight` check the same
/// configurations — a preflight of the DSE's winner is a guaranteed hit.
pub fn check_cached(dev: &FpgaDevice, design: &sf_check::Design) -> CheckReport {
    let key = format!("check|{}|{design:?}", device_key(dev));
    check_memo().get_or_insert_with(&key, || sf_check::check(dev, design))
}

/// Hit/miss/entry counters of the prediction cache.
pub fn prediction_cache_stats() -> MemoStats {
    prediction_memo().stats()
}

/// Hit/miss/entry counters of the check-report cache.
pub fn check_cache_stats() -> MemoStats {
    check_memo().stats()
}

/// Drop every cached model result (tests and cold-cache benchmarks).
pub fn clear_caches() {
    prediction_memo().clear();
    check_memo().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_fpga::design::{synthesize, ExecMode};
    use sf_fpga::MemKind;
    use sf_kernels::StencilSpec;

    #[test]
    fn cached_prediction_matches_uncached() {
        let dev = FpgaDevice::u280();
        let wl = Workload::D2 { nx: 96, ny: 96, batch: 1 };
        let ds =
            synthesize(&dev, &StencilSpec::poisson(), 8, 4, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let direct = predict(&dev, &ds, &wl, 500, PredictionLevel::Extended).unwrap();
        let c1 = predict_cached(&dev, &ds, &wl, 500, PredictionLevel::Extended).unwrap();
        let c2 = predict_cached(&dev, &ds, &wl, 500, PredictionLevel::Extended).unwrap();
        assert_eq!(direct.cycles, c1.cycles);
        assert_eq!(c1.cycles, c2.cycles);
        assert_eq!(direct.runtime_s.to_bits(), c2.runtime_s.to_bits());
    }

    #[test]
    fn check_cache_returns_identical_reports() {
        let dev = FpgaDevice::u280();
        let wl = Workload::D2 { nx: 128, ny: 128, batch: 1 };
        let d = sf_check::Design::new(
            StencilSpec::poisson(),
            8,
            4,
            ExecMode::Baseline,
            MemKind::Hbm,
            wl,
        );
        let direct = sf_check::check(&dev, &d);
        let cached = check_cached(&dev, &d);
        assert_eq!(direct, cached);
        assert_eq!(check_cached(&dev, &d), cached);
    }

    #[test]
    fn distinct_levels_and_iters_get_distinct_entries() {
        let dev = FpgaDevice::u280();
        let wl = Workload::D2 { nx: 80, ny: 80, batch: 1 };
        let ds =
            synthesize(&dev, &StencilSpec::poisson(), 8, 2, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let a = predict_cached(&dev, &ds, &wl, 100, PredictionLevel::Ideal).unwrap();
        let b = predict_cached(&dev, &ds, &wl, 200, PredictionLevel::Ideal).unwrap();
        assert!(b.cycles > a.cycles, "different iteration counts must not collide");
    }
}
