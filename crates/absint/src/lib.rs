//! `sf-absint` — abstract interpretation over the real kernel update
//! functions.
//!
//! The kernels in `sf-kernels` are written once, generically over an
//! [`sf_kernels::AbstractValue`] domain; instantiating them at `f32` *is*
//! the simulated datapath. This crate instantiates the same code at other
//! domains to extract static truths the design flow otherwise takes on
//! faith from the hand-written [`sf_kernels::StencilSpec`] declarations:
//!
//! * [`count`] + [`footprint`] — a probe run on the counting domain through
//!   a recording accessor yields the true access footprint and op tally,
//!   cross-checked against the spec's declared reach and `G_dsp` inputs
//!   (rules `SFC-K01`/`SFC-K02`);
//! * [`interval`] — one update on interval bounds flags statically
//!   reachable NaN/overflow/division-by-zero (`SFC-K03`/`SFC-K04`);
//! * [`stability`] — impulse-probed von Neumann symbol analysis rejects
//!   iterative configurations that diverge (`SFC-K05`).
//!
//! [`rules`] packages the three analyses as [`sf_check::Diagnostic`]s and
//! caches the paper kernels' analyses per process; `sf-core`'s preflight
//! and the `sfstencil check` CLI consume [`app_diagnostics`] from there.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod count;
pub mod footprint;
pub mod interval;
pub mod rules;
pub mod stability;
pub mod tally;

pub use count::{count_ops, CountingValue};
pub use footprint::Footprint;
pub use interval::Interval;
pub use rules::{
    analyze_2d, analyze_3d, analyze_app, analyze_rtm, app_diagnostics, kernel_diagnostics,
    AbsintConfig, KernelAnalysis,
};
pub use stability::StabilityVerdict;
pub use tally::OpTally;
