//! Property-based tests for the tiling geometry and batch seam logic.
//!
//! These are the invariants the whole spatial-blocking pipeline rests on:
//! if a valid-region partition ever gapped or overlapped, the tiled executor
//! would silently produce wrong meshes.

use proptest::prelude::*;
use sf_mesh::{Batch2D, Batch3D, Mesh2D, TileGrid1D, TileGrid2D};

proptest! {
    /// Valid regions of a 1D tile grid partition [0, extent) exactly.
    #[test]
    fn tile1d_valid_regions_partition(
        extent in 1usize..20_000,
        tile in 8usize..2048,
        halo in 0usize..64,
        align_pow in 0u32..5,
    ) {
        prop_assume!(tile > 2 * halo);
        let align = 1usize << align_pow;
        let g = TileGrid1D::new(extent, tile, halo, align);
        let mut covered = 0usize;
        for t in g.tiles() {
            prop_assert_eq!(t.valid_start, covered);
            prop_assert!(t.valid_len > 0);
            covered = t.valid_end();
        }
        prop_assert_eq!(covered, extent);
    }

    /// Every tile's read window contains its valid region expanded by the
    /// halo (clamped to the mesh), and is aligned.
    #[test]
    fn tile1d_reads_cover_halo_and_align(
        extent in 1usize..20_000,
        tile in 8usize..2048,
        halo in 0usize..64,
    ) {
        prop_assume!(tile > 2 * halo);
        let g = TileGrid1D::new(extent, tile, halo, 16);
        for t in g.tiles() {
            prop_assert!(t.read_start <= t.valid_start.saturating_sub(halo));
            prop_assert!(t.read_end() >= (t.valid_end() + halo).min(extent));
            prop_assert!(t.read_end() <= extent);
            prop_assert_eq!(t.read_start % 16, 0);
            prop_assert!(t.read_end() % 16 == 0 || t.read_end() == extent);
        }
    }

    /// Redundancy is ≥ 1 and bounded by the nominal overlap fraction.
    #[test]
    fn tile1d_redundancy_bounded(
        extent in 1000usize..50_000,
        tile in 128usize..4096,
        halo in 1usize..60,
    ) {
        prop_assume!(tile > 2 * halo + 32);
        let g = TileGrid1D::new(extent, tile, halo, 16);
        let r = g.redundancy();
        prop_assert!(r >= 1.0);
        // each tile adds at most 2*halo + 2*align extra cells
        let bound = 1.0 + g.len() as f64 * (2.0 * halo as f64 + 32.0) / extent as f64;
        prop_assert!(r <= bound, "redundancy {} exceeds bound {}", r, bound);
    }

    /// 2D product grids tile the plane: sum of valid cells equals the area.
    #[test]
    fn tile2d_valid_cells_tile_plane(
        nx in 1usize..2000,
        ny in 1usize..2000,
        tile in 32usize..512,
        halo in 0usize..12,
    ) {
        prop_assume!(tile > 2 * halo);
        let g = TileGrid2D::new(nx, ny, tile, tile, halo, 16);
        let total: usize = g.tiles().map(|t| t.valid_cells()).sum();
        prop_assert_eq!(total, nx * ny);
    }

    /// Batch2D: every global row has exactly one owner and the seam guard
    /// agrees with the per-mesh interior predicate.
    #[test]
    fn batch2d_owner_consistent(
        nx in 3usize..64,
        ny in 3usize..64,
        b in 1usize..8,
        r in 1usize..3,
    ) {
        let batch = Batch2D::<f32>::zeros(nx, ny, b);
        for gy in 0..batch.stacked_ny() {
            let (i, ly) = batch.owner(gy);
            prop_assert!(i < b);
            prop_assert_eq!(i * ny + ly, gy);
            for x in 0..nx {
                let mesh = Mesh2D::<f32>::zeros(nx, ny);
                prop_assert_eq!(
                    batch.is_interior_global(x, gy, r),
                    mesh.is_interior(x, ly, r)
                );
            }
        }
    }

    /// Batch3D: round-trip through from_meshes/mesh preserves every mesh.
    #[test]
    fn batch3d_roundtrip(
        nx in 2usize..12,
        ny in 2usize..12,
        nz in 2usize..12,
        b in 1usize..5,
        seed in 0u64..1000,
    ) {
        let batch = Batch3D::<f32>::random(nx, ny, nz, b, seed, -1.0, 1.0);
        for i in 0..b {
            let m = batch.mesh(i);
            prop_assert_eq!((m.nx(), m.ny(), m.nz()), (nx, ny, nz));
            for z in 0..nz {
                for y in 0..ny {
                    for x in 0..nx {
                        prop_assert_eq!(m.get(x, y, z), batch.get(i, x, y, z));
                    }
                }
            }
        }
    }

    /// Mesh2D extract/insert_valid with identity regions is a no-op copy.
    #[test]
    fn mesh2d_extract_insert_identity(
        nx in 2usize..40,
        ny in 2usize..40,
        seed in 0u64..1000,
    ) {
        let m = Mesh2D::<f32>::random(nx, ny, seed, -10.0, 10.0);
        let t = m.extract(0, 0, nx, ny);
        prop_assert_eq!(&t, &m);
        let mut dst = Mesh2D::<f32>::zeros(nx, ny);
        dst.insert_valid(&t, 0, 0, 0, 0, nx, ny);
        prop_assert_eq!(&dst, &m);
    }
}
