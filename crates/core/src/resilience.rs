//! Graceful degradation policies.
//!
//! When the requested configuration cannot be synthesized (or a fault
//! campaign needs a safe re-run configuration), the workflow does not just
//! fail: it degrades along the paper's own axes and records what it gave up:
//!
//! * **full unroll → largest feasible prefix** — the chained `p`-deep
//!   pipeline shrinks to the deepest `p′ < p` the device accepts
//!   ([`Degradation::ReducedUnroll`]);
//! * **batched → unbatched** — a batch too large to keep resident in
//!   external memory falls back to per-mesh baseline execution
//!   ([`Degradation::UnbatchedFallback`]);
//! * **behavioral → schedule-only profiling** — [`crate::Workflow::profile`]
//!   traces the schedule without streaming numerics when the workload
//!   exceeds the behavioral budget ([`Degradation::ScheduleOnlyProfile`]).

use serde::{Deserialize, Serialize};
use sf_fpga::design::{synthesize, ExecMode, StencilDesign, Workload};
use sf_fpga::{FpgaDevice, MemKind};
use sf_kernels::StencilSpec;

use crate::error::SfError;
use crate::workflow::WorkflowError;

/// One concession made to keep a run alive.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Degradation {
    /// The unroll factor shrank to the largest feasible prefix of the
    /// requested chain.
    ReducedUnroll {
        /// Unroll factor originally requested.
        requested: usize,
        /// Unroll factor actually synthesized.
        achieved: usize,
    },
    /// A batched design was infeasible; the run falls back to per-mesh
    /// baseline execution.
    UnbatchedFallback {
        /// Batch size that was given up.
        batch: usize,
    },
    /// Profiling traced the schedule only (no behavioral numerics).
    ScheduleOnlyProfile,
}

impl core::fmt::Display for Degradation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Degradation::ReducedUnroll { requested, achieved } => {
                write!(f, "unroll reduced p={requested} -> p={achieved}")
            }
            Degradation::UnbatchedFallback { batch } => {
                write!(f, "batched(b={batch}) -> unbatched baseline")
            }
            Degradation::ScheduleOnlyProfile => write!(f, "behavioral -> schedule-only profile"),
        }
    }
}

/// A synthesized design plus the concessions that made it feasible.
#[derive(Clone, Debug, PartialEq)]
pub struct DegradedDesign {
    /// The design that did synthesize.
    pub design: StencilDesign,
    /// Concessions applied, in the order they were taken (empty when the
    /// requested configuration synthesized as-is).
    pub applied: Vec<Degradation>,
    /// The workload the design targets — differs from the requested one
    /// after an unbatched fallback (batch = 1).
    pub workload: Workload,
    /// The static checker's diagnostics for the *requested* configuration:
    /// empty when nothing was conceded, otherwise the design-rule
    /// violations that explain why degradation was needed.
    pub diagnostics: Vec<sf_check::Diagnostic>,
}

impl DegradedDesign {
    /// Whether any concession was needed.
    pub fn degraded(&self) -> bool {
        !self.applied.is_empty()
    }
}

/// Deepest `p' <= p` that synthesizes, with its design.
fn largest_feasible(
    dev: &FpgaDevice,
    spec: &StencilSpec,
    v: usize,
    p: usize,
    mode: ExecMode,
    mem: MemKind,
    wl: &Workload,
) -> Option<(StencilDesign, usize)> {
    (1..=p).rev().find_map(|pp| synthesize(dev, spec, v, pp, mode, mem, wl).ok().map(|d| (d, pp)))
}

/// Synthesize the requested configuration, degrading instead of failing:
/// a mandatory static pre-flight of the *requested* configuration first,
/// then the unroll prefix scan, then (for batched modes) the unbatched
/// fallback with its own prefix scan. Only when every policy is exhausted
/// does this return [`WorkflowError::NoFeasibleDesign`]. Whenever a
/// concession is made, the pre-flight's diagnostics ride along in
/// [`DegradedDesign::diagnostics`] to explain *why* the request was
/// infeasible as stated.
pub fn synthesize_degraded(
    dev: &FpgaDevice,
    spec: &StencilSpec,
    v: usize,
    p: usize,
    mode: ExecMode,
    mem: MemKind,
    wl: &Workload,
) -> Result<DegradedDesign, SfError> {
    let requested = sf_check::Design::new(*spec, v, p, mode, mem, *wl);
    let preflight = sf_check::check(dev, &requested);
    let cite = |applied: &[Degradation]| {
        if applied.is_empty() {
            Vec::new()
        } else {
            preflight.diagnostics.clone()
        }
    };
    if let Some((design, pp)) = largest_feasible(dev, spec, v, p, mode, mem, wl) {
        let mut applied = Vec::new();
        if pp < p {
            applied.push(Degradation::ReducedUnroll { requested: p, achieved: pp });
        }
        let diagnostics = cite(&applied);
        return Ok(DegradedDesign { design, applied, workload: *wl, diagnostics });
    }
    if let ExecMode::Batched { b } = mode {
        let wl1 = match *wl {
            Workload::D2 { nx, ny, .. } => Workload::D2 { nx, ny, batch: 1 },
            Workload::D3 { nx, ny, nz, .. } => Workload::D3 { nx, ny, nz, batch: 1 },
        };
        if let Some((design, pp)) = largest_feasible(dev, spec, v, p, ExecMode::Baseline, mem, &wl1)
        {
            let mut applied = vec![Degradation::UnbatchedFallback { batch: b }];
            if pp < p {
                applied.push(Degradation::ReducedUnroll { requested: p, achieved: pp });
            }
            let diagnostics = cite(&applied);
            return Ok(DegradedDesign { design, applied, workload: wl1, diagnostics });
        }
    }
    Err(WorkflowError::NoFeasibleDesign { app: format!("{}", spec.app) }.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> FpgaDevice {
        FpgaDevice::u280()
    }

    #[test]
    fn feasible_request_is_not_degraded() {
        let d = dev();
        let wl = Workload::D2 { nx: 400, ny: 400, batch: 1 };
        let dd = synthesize_degraded(
            &d,
            &StencilSpec::poisson(),
            8,
            60,
            ExecMode::Baseline,
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        assert!(!dd.degraded());
        assert_eq!(dd.design.p, 60);
        assert!(dd.diagnostics.is_empty(), "no concessions, no citations");
    }

    #[test]
    fn oversized_unroll_degrades_to_largest_prefix() {
        let d = dev();
        let wl = Workload::D2 { nx: 400, ny: 400, batch: 1 };
        let p_req = 500; // far beyond the DSP wall (p_dsp = 68 at V = 8)
        assert!(synthesize(
            &d,
            &StencilSpec::poisson(),
            8,
            p_req,
            ExecMode::Baseline,
            MemKind::Hbm,
            &wl
        )
        .is_err());
        let dd = synthesize_degraded(
            &d,
            &StencilSpec::poisson(),
            8,
            p_req,
            ExecMode::Baseline,
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        assert!(dd.degraded());
        assert!(matches!(
            dd.applied[0],
            Degradation::ReducedUnroll { requested: 500, achieved } if achieved >= 1
        ));
        assert_eq!(
            dd.design.p,
            match dd.applied[0] {
                Degradation::ReducedUnroll { achieved, .. } => achieved,
                _ => unreachable!(),
            }
        );
        // the prefix really is maximal: one deeper must fail
        assert!(synthesize(
            &d,
            &StencilSpec::poisson(),
            8,
            dd.design.p + 1,
            ExecMode::Baseline,
            MemKind::Hbm,
            &wl
        )
        .is_err());
        // the degradation cites the static checker's verdict on the request:
        // p = 500 at V = 8 blows the DSP budget (rule SFC-S01)
        assert!(
            dd.diagnostics.iter().any(|x| x.rule == sf_check::RuleId::DspOversubscribed),
            "{:?}",
            dd.diagnostics
        );
    }

    #[test]
    fn resident_overflow_falls_back_to_unbatched() {
        // 400x400 x 1M meshes cannot stay resident in 8 GB of HBM at any p,
        // but a single mesh can: the policy gives up batching, not the run.
        let d = dev();
        let b = 1_000_000;
        let wl = Workload::D2 { nx: 400, ny: 400, batch: b };
        let dd = synthesize_degraded(
            &d,
            &StencilSpec::poisson(),
            8,
            60,
            ExecMode::Batched { b },
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        assert!(dd.applied.contains(&Degradation::UnbatchedFallback { batch: b }));
        assert_eq!(dd.workload, Workload::D2 { nx: 400, ny: 400, batch: 1 });
        assert!(matches!(dd.design.mode, ExecMode::Baseline));
        // the citation names the capacity rule that sank the batched request
        assert!(
            dd.diagnostics.iter().any(|x| x.rule == sf_check::RuleId::ExternalCapacity),
            "{:?}",
            dd.diagnostics
        );
    }

    #[test]
    fn exhausted_policies_report_no_feasible_design() {
        // 4000^2 x 100 cells exceed external memory even unbatched.
        let d = dev();
        let wl = Workload::D3 { nx: 4000, ny: 4000, nz: 100, batch: 1 };
        let err = synthesize_degraded(
            &d,
            &StencilSpec::jacobi(),
            8,
            4,
            ExecMode::Baseline,
            MemKind::Hbm,
            &wl,
        )
        .unwrap_err();
        assert!(matches!(err, SfError::Workflow(WorkflowError::NoFeasibleDesign { .. })), "{err}");
    }

    #[test]
    fn degradations_render_for_reports() {
        let s = format!("{}", Degradation::ReducedUnroll { requested: 60, achieved: 12 });
        assert!(s.contains("p=60") && s.contains("p=12"));
        let s = format!("{}", Degradation::UnbatchedFallback { batch: 100 });
        assert!(s.contains("unbatched"));
    }
}
