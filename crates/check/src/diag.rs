//! Structured diagnostics: rule identifiers, severities, and the report a
//! check run produces.
//!
//! Every rule the analyzer applies has a stable [`RuleId`] with a short code
//! (`SFC-…`) and a pointer to the paper equation or mechanism it encodes, so
//! diagnostics are greppable across the CLI, CI logs and JSON output.

use serde::{Deserialize, Serialize};
use sf_fpga::design::{ExecMode, MemKind, Workload};

/// Identity of a design rule. The code is stable across releases; the
/// variant name is what serializes into `--json` output.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuleId {
    /// `SFC-P01` — `V` and `p` must be positive.
    InvalidParam,
    /// `SFC-P02` — execution mode / stencil / workload dimensionality agree.
    DimsMismatch,
    /// `SFC-W01` — window buffers must cover the stencil reach (`D` stream
    /// units per stage; rows at least as wide as the footprint).
    WindowReach,
    /// `SFC-W02` — quantized window buffers + stream FIFOs must fit the
    /// on-chip BRAM/URAM pools (paper eq. 7).
    WindowCapacity,
    /// `SFC-F01` — every dataflow-graph FIFO must absorb one full AXI burst
    /// while its consumer fills; shallower depths wedge the pipeline (the
    /// static dual of the runtime watchdog).
    FifoDeadlock,
    /// `SFC-F02` — FIFO depth below the two-bursts-of-slack sizing rule:
    /// deadlock-free but the producer stalls on every burst refill.
    FifoSlack,
    /// `SFC-R01` — loop-carried RAW hazard: the unrolled iterative pipeline
    /// keeps `p` iteration passes in flight; the streaming extent must
    /// exceed that or iteration `i+p` would read rows iteration `i` has not
    /// written back.
    RawHazard,
    /// `SFC-T01` — tiles must exceed the halo `p·D_fused` (paper eq. 8).
    TileHalo,
    /// `SFC-T02` — tile larger than the mesh extent it blocks (wasteful;
    /// the executor clamps, redundant halo is still streamed).
    TileHalo2,
    /// `SFC-T03` — tile below the paper's `M ≥ 3·D·p` throughput guideline
    /// (eq. 12): halo overhead dominates the useful work.
    TileThroughput,
    /// `SFC-T04` — tile width not a multiple of `V`: vector lanes straddle
    /// the tile boundary and need realignment logic.
    VectorAlignment,
    /// `SFC-S01` — DSP demand `p·V·G_dsp` exceeds the device (paper eq. 6).
    DspOversubscribed,
    /// `SFC-S02` — estimated LUT/FF demand exceeds the fabric.
    FabricOversubscribed,
    /// `SFC-S03` — the module chain cannot be floorplanned onto the SLRs.
    SlrOverflow,
    /// `SFC-S04` — a single module is too large for one SLR and must span
    /// regions (inter-SLR routing congestion derates the clock).
    SlrSpanning,
    /// `SFC-B01` — vectorization exceeds the memory channels per direction
    /// (paper eq. 4).
    BandwidthChannels,
    /// `SFC-B02` — the workload's ping-pong buffers exceed external memory.
    ExternalCapacity,
}

impl RuleId {
    /// Stable short code for logs and human output.
    pub fn code(&self) -> &'static str {
        match self {
            RuleId::InvalidParam => "SFC-P01",
            RuleId::DimsMismatch => "SFC-P02",
            RuleId::WindowReach => "SFC-W01",
            RuleId::WindowCapacity => "SFC-W02",
            RuleId::FifoDeadlock => "SFC-F01",
            RuleId::FifoSlack => "SFC-F02",
            RuleId::RawHazard => "SFC-R01",
            RuleId::TileHalo => "SFC-T01",
            RuleId::TileHalo2 => "SFC-T02",
            RuleId::TileThroughput => "SFC-T03",
            RuleId::VectorAlignment => "SFC-T04",
            RuleId::DspOversubscribed => "SFC-S01",
            RuleId::FabricOversubscribed => "SFC-S02",
            RuleId::SlrOverflow => "SFC-S03",
            RuleId::SlrSpanning => "SFC-S04",
            RuleId::BandwidthChannels => "SFC-B01",
            RuleId::ExternalCapacity => "SFC-B02",
        }
    }

    /// The paper equation / mechanism the rule encodes (for the catalogue).
    pub fn reference(&self) -> &'static str {
        match self {
            RuleId::InvalidParam => "design domain",
            RuleId::DimsMismatch => "§IV-A blocking modes",
            RuleId::WindowReach => "§III window buffers (D stream units)",
            RuleId::WindowCapacity => "eq. (7)",
            RuleId::FifoDeadlock => "§III FIFO burst reuse / PR 2 watchdog",
            RuleId::FifoSlack => "interstage sizing rule (2 bursts)",
            RuleId::RawHazard => "§III-A iterative unroll dependency",
            RuleId::TileHalo => "eq. (8)",
            RuleId::TileHalo2 => "§IV-A tiling",
            RuleId::TileThroughput => "eq. (12)",
            RuleId::VectorAlignment => "§III-A vectorization",
            RuleId::DspOversubscribed => "eq. (6)",
            RuleId::FabricOversubscribed => "fabric estimate",
            RuleId::SlrOverflow => "§III SLR floorplan",
            RuleId::SlrSpanning => "§V-C SLR spanning",
            RuleId::BandwidthChannels => "eq. (4)",
            RuleId::ExternalCapacity => "external capacity",
        }
    }
}

impl core::fmt::Display for RuleId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.code())
    }
}

/// How bad a finding is.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// The design is illegal: it will fail synthesis or wedge the pipeline.
    Error,
    /// The design works but leaves performance or margin on the table.
    Warning,
}

/// One finding from one rule, anchored to a dataflow-graph location.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Error or warning.
    pub severity: Severity,
    /// Where in the dataflow graph (node/edge label, or `design` for
    /// whole-design findings).
    pub location: String,
    /// What is wrong, with the numbers that prove it.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

impl core::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{sev:<7} {} [{}] {}", self.rule.code(), self.location, self.message)
    }
}

/// Everything one check run produced.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckReport {
    /// Device the design was checked against.
    pub device: String,
    /// Application name.
    pub app: String,
    /// Vectorization factor checked.
    pub v: usize,
    /// Unroll factor checked.
    pub p: usize,
    /// Execution mode checked.
    pub mode: ExecMode,
    /// External memory binding.
    pub mem: MemKind,
    /// Workload the design targets.
    pub workload: Workload,
    /// Nodes in the constructed dataflow graph.
    pub graph_nodes: usize,
    /// FIFO edges in the constructed dataflow graph.
    pub graph_edges: usize,
    /// All findings, errors first.
    pub diagnostics: Vec<Diagnostic>,
}

impl CheckReport {
    /// `true` if any diagnostic is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Rule ids that fired, in order.
    pub fn fired_rules(&self) -> Vec<RuleId> {
        self.diagnostics.iter().map(|d| d.rule).collect()
    }

    /// `true` if the given rule fired at any severity.
    pub fn fired(&self, rule: RuleId) -> bool {
        self.diagnostics.iter().any(|d| d.rule == rule)
    }

    /// Convert into a `Result`: `Err` carries the report when any rule
    /// fired at error severity.
    pub fn into_result(self) -> Result<CheckReport, CheckError> {
        if self.has_errors() {
            Err(CheckError { report: Box::new(self) })
        } else {
            Ok(self)
        }
    }

    /// Human-readable rendering, errors first.
    pub fn render(&self) -> String {
        use core::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "sf-check: {} V={} p={} {:?} on {:?} ({})",
            self.app, self.v, self.p, self.mode, self.workload, self.device
        );
        let _ = writeln!(
            s,
            "dataflow graph: {} nodes, {} FIFO edges",
            self.graph_nodes, self.graph_edges
        );
        if self.diagnostics.is_empty() {
            let _ = writeln!(s, "ok: no design-rule violations");
            return s;
        }
        for sev in [Severity::Error, Severity::Warning] {
            for d in self.diagnostics.iter().filter(|d| d.severity == sev) {
                let _ = writeln!(s, "  {d}");
                if !d.hint.is_empty() {
                    let _ = writeln!(s, "          fix: {}", d.hint);
                }
            }
        }
        let _ = writeln!(s, "{} error(s), {} warning(s)", self.error_count(), self.warning_count());
        s
    }
}

/// A check run that found at least one error-severity violation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckError {
    /// The full report, warnings included. Boxed so error enums that embed
    /// a `CheckError` stay pointer-sized on their happy paths.
    pub report: Box<CheckReport>,
}

impl core::fmt::Display for CheckError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let errs: Vec<&Diagnostic> = self.report.errors().collect();
        write!(f, "{} design-rule error(s):", errs.len())?;
        for d in errs {
            write!(f, " [{} {}]", d.rule.code(), d.message)?;
        }
        Ok(())
    }
}

impl std::error::Error for CheckError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(diags: Vec<Diagnostic>) -> CheckReport {
        CheckReport {
            device: "test".into(),
            app: "Poisson-5pt-2D".into(),
            v: 8,
            p: 4,
            mode: ExecMode::Baseline,
            mem: MemKind::Hbm,
            workload: Workload::D2 { nx: 40, ny: 40, batch: 1 },
            graph_nodes: 6,
            graph_edges: 5,
            diagnostics: diags,
        }
    }

    fn diag(rule: RuleId, severity: Severity) -> Diagnostic {
        Diagnostic {
            rule,
            severity,
            location: "design".into(),
            message: "msg".into(),
            hint: "hint".into(),
        }
    }

    #[test]
    fn codes_are_unique_and_stable() {
        let all = [
            RuleId::InvalidParam,
            RuleId::DimsMismatch,
            RuleId::WindowReach,
            RuleId::WindowCapacity,
            RuleId::FifoDeadlock,
            RuleId::FifoSlack,
            RuleId::RawHazard,
            RuleId::TileHalo,
            RuleId::TileHalo2,
            RuleId::TileThroughput,
            RuleId::VectorAlignment,
            RuleId::DspOversubscribed,
            RuleId::FabricOversubscribed,
            RuleId::SlrOverflow,
            RuleId::SlrSpanning,
            RuleId::BandwidthChannels,
            RuleId::ExternalCapacity,
        ];
        let mut codes: Vec<&str> = all.iter().map(|r| r.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len(), "duplicate rule code");
        for r in all {
            assert!(r.code().starts_with("SFC-"));
            assert!(!r.reference().is_empty());
        }
    }

    #[test]
    fn report_counts_and_result() {
        let clean = report_with(vec![]);
        assert!(!clean.has_errors());
        assert!(clean.clone().into_result().is_ok());
        assert!(clean.render().contains("ok: no design-rule violations"));

        let mixed = report_with(vec![
            diag(RuleId::FifoSlack, Severity::Warning),
            diag(RuleId::FifoDeadlock, Severity::Error),
        ]);
        assert!(mixed.has_errors());
        assert_eq!(mixed.error_count(), 1);
        assert_eq!(mixed.warning_count(), 1);
        assert!(mixed.fired(RuleId::FifoDeadlock));
        assert!(!mixed.fired(RuleId::RawHazard));
        let err = mixed.into_result().unwrap_err();
        let s = format!("{err}");
        assert!(s.contains("1 design-rule error"), "{s}");
        assert!(s.contains("SFC-F01"), "{s}");
    }

    #[test]
    fn render_orders_errors_first() {
        let rep = report_with(vec![
            diag(RuleId::FifoSlack, Severity::Warning),
            diag(RuleId::DspOversubscribed, Severity::Error),
        ]);
        let out = rep.render();
        let e = out.find("SFC-S01").unwrap();
        let w = out.find("SFC-F02").unwrap();
        assert!(e < w, "{out}");
    }

    #[test]
    fn diagnostics_roundtrip_serde() {
        let d = diag(RuleId::RawHazard, Severity::Error);
        let s = serde_json::to_string(&d).unwrap();
        let back: Diagnostic = serde_json::from_str(&s).unwrap();
        assert_eq!(back, d);
    }
}
