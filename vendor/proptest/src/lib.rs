//! Vendored minimal `proptest` stand-in for offline builds.
//!
//! Covers the API surface this workspace uses: the `proptest!` macro with
//! an optional `#![proptest_config(ProptestConfig::with_cases(n))]` inner
//! attribute, range strategies over integers and floats, and the
//! `prop_assume!` / `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`
//! macros. Sampling is deterministic (fixed-seed SplitMix64), so failures
//! reproduce across runs; there is no shrinking — the failure report
//! prints the exact inputs instead.

pub mod test_runner {
    /// Per-block configuration (subset of `proptest::test_runner::Config`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the single-core CI
            // budget reasonable while still exercising the input space.
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs — resample, don't fail.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    /// Deterministic RNG driving strategy sampling (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic() -> Self {
            TestRng { state: 0x5F0E_9A2C_17D3_B84B }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// Value generator (subset of `proptest::strategy::Strategy`).
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_strategy {
        ($t:ty, $bits:expr) => {
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let unit = (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
        };
    }

    impl_float_strategy!(f32, 24);
    impl_float_strategy!(f64, 53);

    /// Constant strategy (subset of `proptest::strategy::Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Entry macro: expands each `#[test] fn name(arg in strategy, ...)` into a
/// plain `#[test]` that samples inputs `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts < config.cases.saturating_mul(200).saturating_add(1000),
                    "proptest `{}`: too many inputs rejected by prop_assume!",
                    stringify!($name)
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        let inputs: ::std::vec::Vec<::std::string::String> = vec![
                            $(format!("{} = {:?}", stringify!($arg), $arg)),*
                        ];
                        panic!(
                            "proptest `{}` failed: {}\n  inputs: {}",
                            stringify!($name),
                            msg,
                            inputs.join(", ")
                        );
                    }
                }
            }
        }
    )*};
}

/// Reject the current set of sampled inputs (resampled, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                    stringify!($a),
                    stringify!($b),
                    lhs,
                    rhs
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                lhs
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Sampled values stay inside the requested ranges.
        #[test]
        fn ranges_respected(
            a in 3usize..10,
            b in -5i32..5,
            x in 0.25f32..0.75,
        ) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&x));
        }

        /// `prop_assume!` rejections resample instead of failing.
        #[test]
        fn assume_filters(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    #[allow(unnameable_test_items)]
    fn failure_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[test]
            fn always_fails(n in 0u64..10) {
                prop_assert!(n > 100, "n was {}", n);
            }
        }
        always_fails();
    }
}
