//! The cross-run `sfstencil report` subcommand, plus the producers that
//! turn dse results and fault campaigns into durable [`RunRecord`]s.
//!
//! ```text
//! sfstencil report runs.jsonl [--json|--md|--html] [--out FILE]
//! sfstencil report runs.jsonl --compare baseline.json [--max-regress 5%]
//! ```
//!
//! The first form aggregates a run store (written by `profile`/`dse`/
//! `faults` with `--record-out`) into a schema-versioned report with
//! roofline gap attribution. The second additionally gates the current
//! medians against a committed baseline report and exits non-zero on any
//! regression beyond tolerance (or on coverage loss).

use crate::faults::{CampaignApp, CampaignConfig, CampaignReport, Recovery};
use sf_fpga::design::{ExecMode, MemKind, Workload};
use sf_model::Candidate;
use sf_report::{Report, RunKind, RunRecord};

/// Build a [`RunRecord`] for a dse invocation from its winning candidate.
///
/// Model-only runs have no simulation, so the prediction is stored as
/// *both* predicted and measured cycles: comparing dse records across
/// commits gates the trajectory of the model itself.
pub fn record_for_dse(c: &Candidate, wl: &Workload, niter: u64, jobs: usize) -> RunRecord {
    let mut rec = RunRecord::empty(RunKind::Dse, sf_report::app_slug(c.design.spec.app));
    let (dims, batch) = match *wl {
        Workload::D2 { nx, ny, batch } => (vec![nx as u64, ny as u64], batch),
        Workload::D3 { nx, ny, nz, batch } => (vec![nx as u64, ny as u64, nz as u64], batch),
    };
    rec.dims = dims;
    rec.batch = batch as u64;
    rec.niter = niter;
    rec.v = c.design.v as u64;
    rec.p = c.design.p as u64;
    rec.mode = format!("{:?}", c.design.mode);
    rec.tile_m = match c.design.mode {
        ExecMode::Tiled1D { tile_m } | ExecMode::Tiled2D { tile_m, .. } => Some(tile_m as u64),
        _ => None,
    };
    rec.tile_n = match c.design.mode {
        ExecMode::Tiled2D { tile_n, .. } => Some(tile_n as u64),
        _ => None,
    };
    rec.mem = match c.design.mem {
        MemKind::Hbm => "hbm".to_string(),
        MemKind::Ddr4 => "ddr4".to_string(),
    };
    rec.freq_mhz = c.design.freq_mhz();
    rec.devices = c.devices as u64;
    rec.jobs = jobs as u64;
    rec.predicted_cycles = c.prediction.cycles;
    rec.measured_cycles = c.prediction.cycles;
    rec.runtime_s = c.prediction.runtime_s;
    rec
}

/// Build one [`RunRecord`] per campaign app, carrying the fault counters
/// (cycle fields stay zero — a campaign measures resilience, not speed).
pub fn records_for_campaign(report: &CampaignReport, cfg: &CampaignConfig) -> Vec<RunRecord> {
    let mut apps: Vec<&'static str> = Vec::new();
    for t in &report.trials {
        if !apps.contains(&t.app) {
            apps.push(t.app);
        }
    }
    apps.sort_unstable();
    apps.iter()
        .map(|name| {
            let mut rec = RunRecord::empty(RunKind::Faults, name);
            if let Some(app) = CampaignApp::parse(name) {
                let (_, v, p, wl) = app.campaign_params();
                let (dims, batch) = match wl {
                    Workload::D2 { nx, ny, batch } => (vec![nx as u64, ny as u64], batch),
                    Workload::D3 { nx, ny, nz, batch } => {
                        (vec![nx as u64, ny as u64, nz as u64], batch)
                    }
                };
                rec.dims = dims;
                rec.batch = batch as u64;
                rec.v = v as u64;
                rec.p = p as u64;
            }
            rec.mode = "Campaign".to_string();
            rec.mem = "hbm".to_string();
            rec.devices = cfg.devices.max(1) as u64;
            rec.jobs = cfg.jobs as u64;
            let mut trials = 0u64;
            let mut injected_trials = 0u64;
            let mut faults_injected = 0u64;
            let mut silent_wrong = 0u64;
            let mut rollbacks = 0u64;
            let mut sdc_detected = 0u64;
            let mut recovery_cycles = 0u64;
            let mut overhead_cycles = 0u64;
            let mut rollback_recovered = 0u64;
            for t in report.trials.iter().filter(|t| &t.app == name) {
                trials += 1;
                faults_injected += t.injected;
                if t.injected > 0 {
                    injected_trials += 1;
                }
                if t.silent_wrong {
                    silent_wrong += 1;
                }
                rollbacks += t.rollbacks;
                sdc_detected += t.sdc_detected;
                recovery_cycles += t.recovery_cycles;
                overhead_cycles += t.overhead_cycles;
                if t.recovery == Recovery::Rollback {
                    rollback_recovered += 1;
                }
            }
            rec.fault_counters.insert("trials".into(), trials);
            rec.fault_counters.insert("injected_trials".into(), injected_trials);
            rec.fault_counters.insert("faults_injected".into(), faults_injected);
            rec.fault_counters.insert("silent_wrong".into(), silent_wrong);
            rec.fault_counters.insert("rollbacks".into(), rollbacks);
            rec.fault_counters.insert("sdc_detected".into(), sdc_detected);
            rec.fault_counters.insert("recovery_cycles".into(), recovery_cycles);
            rec.fault_counters.insert("recovery_overhead_cycles".into(), overhead_cycles);
            rec.fault_counters.insert("rollback_recovered".into(), rollback_recovered);
            rec.fault_counters.insert(
                "mean_cycles_to_recovery".into(),
                recovery_cycles.checked_div(rollbacks).unwrap_or(0),
            );
            rec
        })
        .collect()
}

/// Parse a `--max-regress` value: plain percent (`5`, `2.5`) with an
/// optional trailing `%`.
pub fn parse_max_regress(s: &str) -> Option<f64> {
    let s = s.trim().trim_end_matches('%');
    let v: f64 = s.parse().ok()?;
    (v.is_finite() && v >= 0.0).then_some(v)
}

/// The `sfstencil report <store.jsonl> ...` subcommand. Returns the
/// process exit code: 0 on success, 1 on a failed regression gate, 2 on
/// usage or I/O errors.
pub fn run(argv: &[String]) -> i32 {
    let Some(store) = argv.first().filter(|a| !a.starts_with("--")) else {
        eprintln!(
            "usage: sfstencil report <runs.jsonl> [--json|--md|--html] [--out FILE] \
             [--compare BASELINE.json] [--max-regress PCT]"
        );
        return 2;
    };
    let get = |flag: &str| -> Option<String> {
        argv.iter().position(|a| a == flag).and_then(|i| argv.get(i + 1).cloned())
    };
    let has = |flag: &str| argv.iter().any(|a| a == flag);

    let records = match sf_report::load_records(std::path::Path::new(store)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let report = Report::build(&records);

    let body = if has("--json") {
        match report.to_json_string() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        }
    } else if has("--html") {
        sf_report::to_html(&report)
    } else {
        sf_report::to_markdown(&report)
    };

    let mut code = 0;
    if let Some(baseline_path) = get("--compare") {
        let max_regress = match get("--max-regress") {
            None => 5.0,
            Some(s) => match parse_max_regress(&s) {
                Some(v) => v,
                None => {
                    eprintln!("error: --max-regress must be a non-negative percent (got '{s}')");
                    return 2;
                }
            },
        };
        let baseline = match std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("{baseline_path}: {e}"))
            .and_then(|body| Report::from_json_str(&body).map_err(|e| format!("{e}")))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        };
        let cmp = sf_report::compare(&report, &baseline, max_regress);
        eprint!("{}", cmp.render());
        if !cmp.passed() {
            code = 1;
        }
    }

    match get("--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &body) {
                eprintln!("error: cannot write {path}: {e}");
                return 2;
            }
            eprintln!("report written to {path}");
        }
        None => println!("{body}"),
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{run_campaign, CampaignApp, CampaignConfig};

    #[test]
    fn max_regress_accepts_plain_and_percent_forms() {
        assert_eq!(parse_max_regress("5"), Some(5.0));
        assert_eq!(parse_max_regress("5%"), Some(5.0));
        assert_eq!(parse_max_regress("2.5%"), Some(2.5));
        assert_eq!(parse_max_regress("0"), Some(0.0));
        assert_eq!(parse_max_regress("-1"), None);
        assert_eq!(parse_max_regress("inf"), None);
        assert_eq!(parse_max_regress("five"), None);
    }

    #[test]
    fn campaign_records_carry_the_fault_counters() {
        let cfg = CampaignConfig {
            seed: 42,
            rates_ppm: vec![500],
            trials_per_cell: 1,
            ..CampaignConfig::default()
        };
        let apps = [CampaignApp::Poisson2D];
        let report = run_campaign(&apps, &cfg);
        let recs = records_for_campaign(&report, &cfg);
        assert_eq!(recs.len(), 1);
        let rec = &recs[0];
        assert_eq!(rec.app, "poisson2d");
        assert_eq!(rec.kind, RunKind::Faults);
        assert!(!rec.has_measurement());
        assert_eq!(
            rec.fault_counters.get("trials").copied().unwrap_or(0),
            report.trials.len() as u64
        );
        assert_eq!(
            rec.fault_counters.get("silent_wrong").copied(),
            Some(report.summary.silent_wrong as u64)
        );
        // design point from the fixed campaign params
        assert_eq!(rec.dims, vec![48, 24]);
        assert_eq!(rec.v, 8);
    }

    #[test]
    fn rollback_campaign_records_carry_recovery_counters() {
        let cfg = CampaignConfig {
            seed: 42,
            rates_ppm: vec![1_000_000],
            trials_per_cell: 1,
            recovery: crate::faults::RecoveryMode::Rollback,
            kinds: vec![sf_fpga::FaultKind::BitFlip],
            ..CampaignConfig::default()
        };
        let report = run_campaign(&[CampaignApp::Poisson2D], &cfg);
        let recs = records_for_campaign(&report, &cfg);
        assert_eq!(recs.len(), 1);
        let counters = &recs[0].fault_counters;
        let get = |k: &str| counters.get(k).copied().unwrap_or(0);
        assert!(get("rollbacks") > 0, "{counters:?}");
        assert!(get("sdc_detected") > 0, "{counters:?}");
        assert!(get("recovery_cycles") > 0, "{counters:?}");
        assert!(get("recovery_overhead_cycles") >= get("recovery_cycles"), "{counters:?}");
        assert_eq!(get("mean_cycles_to_recovery"), get("recovery_cycles") / get("rollbacks"));
        assert_eq!(get("rollback_recovered"), 1, "{counters:?}");
    }
}
