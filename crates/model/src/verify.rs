//! Spec cross-validation: the model's eq. (5)/(6) inputs come straight from
//! the [`StencilSpec`] — `G_dsp` bounds the unroll sweep, `order` sizes the
//! window buffers and halos. [`verify_spec`] checks those declared inputs
//! against the *extracted* truth from `sf-absint`'s probe execution of the
//! canonical kernel, so a drifted spec is rejected before the DSE builds a
//! whole ranking on wrong numbers.

use crate::error::ModelError;
use sf_kernels::StencilSpec;
use std::fmt::Write as _;

/// Reject a spec whose declared reach/op-count disagrees with the kernel it
/// names (error-severity `SFC-K` findings). Custom specs carry their own op
/// and pass through — they are validated against their op by the checker.
pub fn verify_spec(spec: &StencilSpec) -> Result<(), ModelError> {
    let errors: Vec<_> = sf_absint::app_diagnostics(spec, 1)
        .into_iter()
        .filter(|d| d.severity == sf_check::Severity::Error)
        .collect();
    if errors.is_empty() {
        return Ok(());
    }
    let mut detail = format!("spec for {} fails kernel analysis:", spec.app);
    for d in errors {
        let _ = write!(detail, " [{} {}]", d.rule.code(), d.message);
    }
    Err(ModelError::SpecDrift { detail })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_kernels::AppId;

    #[test]
    fn paper_specs_verify_clean() {
        for app in AppId::ALL {
            verify_spec(&app.spec()).unwrap();
        }
    }

    #[test]
    fn custom_specs_pass_through() {
        let k = sf_kernels::StarStencil2D::laplace5(0.1, 0.6);
        verify_spec(&k.spec()).unwrap();
    }

    #[test]
    fn drifted_order_is_rejected_with_rule_code() {
        let mut spec = StencilSpec::jacobi();
        spec.order = 0;
        let err = verify_spec(&spec).unwrap_err();
        let s = format!("{err}");
        assert!(s.contains("SFC-K01"), "{s}");
    }

    #[test]
    fn drifted_ops_are_rejected() {
        let mut spec = StencilSpec::poisson();
        spec.ops = sf_kernels::OpCount::new(40, 40, 0);
        let err = verify_spec(&spec).unwrap_err();
        assert!(format!("{err}").contains("SFC-K02"), "{err}");
    }
}
