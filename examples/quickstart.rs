//! Quickstart: take a stencil application from description to a validated,
//! simulated FPGA accelerator in five steps.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sf_core::prelude::*;

fn main() {
    // ── 1. Platform: the paper's Alveo U280 vs Tesla V100 setup ──────────
    let wf = Workflow::u280_vs_v100();

    // ── 2. Application + workload: Poisson-5pt-2D on a 300×300 mesh ─────
    let spec = StencilSpec::poisson();
    let wl = Workload::D2 { nx: 300, ny: 300, batch: 1 };
    let niter = 60_000u64;

    // ── 3. Feasibility (paper eqs. 4, 6, 7) ──────────────────────────────
    let feas = wf.feasibility(&spec, &wl).expect("valid workload");
    println!("── feasibility ──────────────────────────────────────────────");
    println!("  app                 : {}", feas.app);
    println!("  V_max (bandwidth)   : {}", feas.v_max_bandwidth);
    println!("  p_dsp / p_mem       : {} / {}", feas.p_dsp, feas.p_mem);
    println!("  baseline feasible   : {}", feas.baseline_feasible);
    println!("  flops per ext. byte : {:.2}", feas.flops_per_byte);

    // ── 4. Design-space exploration with the predictive model ───────────
    let best = wf.best_design(&spec, &wl, niter).expect("a design must exist");
    println!("\n── chosen design ────────────────────────────────────────────");
    println!(
        "  V={} p={} mode={:?} @ {:.0} MHz  (DSP {} / BRAM {} / URAM {})",
        best.design.v,
        best.design.p,
        best.design.mode,
        best.design.freq_mhz(),
        best.design.resources.dsp,
        best.design.resources.bram_blocks,
        best.design.resources.uram_blocks,
    );
    println!(
        "  model predicts      : {:.3} ms, {:.0} GB/s",
        best.prediction.runtime_s * 1e3,
        best.prediction.bandwidth_gbs
    );
    println!("\n{}", sf_fpga::report::utilization_report(&wf.device, &best.design));

    // ── 5. Numeric execution through the dataflow simulator, validated
    //       bit-exactly against the golden reference (reduced iterations) ─
    let solver = PoissonSolver::auto(&wf, &wl, niter).unwrap();
    let input = Batch2D::<f32>::random(300, 300, 1, 42, -1.0, 1.0);
    let (_result, _) = solver.run_validated(&input, 16);
    println!("\n  numeric validation  : bit-exact vs golden reference ✓");

    // ── and the head-to-head the paper's Fig. 3 plots ────────────────────
    let cmp = wf.compare(&spec, &wl, niter).unwrap();
    println!("\n── U280 (sim) vs V100 (model), {niter} iterations ──────────");
    println!("  {}", cmp.verdict());
}
