//! AXI transfer timing: channel sizing and per-row cycle cost.
//!
//! §IV-A: "it takes 16 clock cycles to transfer 1024 Bytes via the 512 bit
//! wide AXI interface bus, but the latency of the transfer is about 14 clock
//! cycles. As such, multiple read/write requests should be made to hide the
//! latency of each individual memory transaction."
//!
//! With requests pipelined, what remains per contiguous run is a small
//! *issue gap* (calibrated ≈ 3 cycles, [`crate::device::FpgaDevice::axi_issue_gap_cycles`]);
//! short strided runs therefore lose efficiency `run/(run + gap)` — the
//! mechanism behind the paper's Jacobi-3D tiled slowdown ("it involves
//! transfers less than 4K from memory, which makes it difficult to reach the
//! raw external memory bandwidth").

use crate::device::{FpgaDevice, MemorySpec};

/// Number of memory channels needed to sustain `v` elements/cycle of
/// `bytes_per_cell` in one direction — the paper's eq. (4) feasibility:
/// each 512-bit AXI port delivers at most `min(64 B, channel_bw/f)` per
/// cycle, evaluated at the default target clock.
pub fn channels_needed(
    dev: &FpgaDevice,
    mem: &MemorySpec,
    v: usize,
    bytes_per_cell: usize,
) -> usize {
    let per_channel = mem.channel_bytes_per_cycle(dev.default_clock_hz, dev.axi_bus_bytes);
    ((v * bytes_per_cell) as f64 / per_channel).ceil().max(1.0) as usize
}

/// Per-row cycle timing broken out by pipeline side, for telemetry.
///
/// [`row_cycles`] only reports the max; stall attribution and per-channel
/// utilisation need the individual components.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RowTiming {
    /// Compute-issue cycles: `⌈cells / V⌉`.
    pub compute: u64,
    /// Read-side memory beats across the assigned read channels.
    pub read: u64,
    /// Write-side memory beats across the assigned write channels.
    pub write: u64,
    /// Per-row request-issue gap.
    pub gap: u64,
}

impl RowTiming {
    /// Total row cycles — identical to [`row_cycles`] by construction.
    pub fn total(&self) -> u64 {
        self.compute.max(self.read).max(self.write) + self.gap
    }

    /// The productive (non-gap) portion of the row.
    pub fn busy(&self) -> u64 {
        self.compute.max(self.read).max(self.write)
    }

    /// Fraction of the row the read channels spend moving data.
    pub fn read_utilization(&self) -> f64 {
        self.read as f64 / self.total().max(1) as f64
    }

    /// Fraction of the row the write channels spend moving data.
    pub fn write_utilization(&self) -> f64 {
        self.write as f64 / self.total().max(1) as f64
    }

    /// Fraction of the row the compute datapath is issuing vectors.
    pub fn compute_utilization(&self) -> f64 {
        self.compute as f64 / self.total().max(1) as f64
    }
}

/// Break a streamed row into its timing components (see [`row_cycles`]).
#[allow(clippy::too_many_arguments)]
pub fn row_timing(
    dev: &FpgaDevice,
    mem: &MemorySpec,
    f_hz: f64,
    v: usize,
    cells: usize,
    read_bytes: usize,
    write_bytes: usize,
    read_channels: usize,
    write_channels: usize,
) -> RowTiming {
    debug_assert!(v > 0 && read_channels > 0 && write_channels > 0);
    let compute = cells.div_ceil(v) as u64;
    let bpc = mem.channel_bytes_per_cycle(f_hz, dev.axi_bus_bytes);
    let rd = (read_bytes as f64 / (bpc * read_channels as f64)).ceil() as u64;
    let wr = (write_bytes as f64 / (bpc * write_channels as f64)).ceil() as u64;
    RowTiming { compute, read: rd, write: wr, gap: dev.axi_issue_gap_cycles as u64 }
}

/// Cycles for one streamed row of `cells` mesh points:
///
/// * compute issue: `⌈cells / V⌉` (one vector of `V` cells per cycle),
/// * memory: read/write beats across the assigned channels,
/// * plus the per-row request-issue gap.
///
/// The row takes the max of the compute and memory times — whichever side
/// stalls the pipeline.
#[allow(clippy::too_many_arguments)]
pub fn row_cycles(
    dev: &FpgaDevice,
    mem: &MemorySpec,
    f_hz: f64,
    v: usize,
    cells: usize,
    read_bytes: usize,
    write_bytes: usize,
    read_channels: usize,
    write_channels: usize,
) -> u64 {
    row_timing(dev, mem, f_hz, v, cells, read_bytes, write_bytes, read_channels, write_channels)
        .total()
}

/// Effective fraction of raw bandwidth achieved by contiguous runs of
/// `run_bytes` (the §IV-A strided-transfer efficiency): data beats over data
/// beats plus the issue gap.
pub fn strided_efficiency(dev: &FpgaDevice, run_bytes: usize) -> f64 {
    let beats = (run_bytes as f64 / dev.axi_bus_bytes as f64).ceil();
    beats / (beats + dev.axi_issue_gap_cycles as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_sizing_matches_paper_designs() {
        let d = FpgaDevice::u280();
        // HBM channel at 300 MHz sustains 47.9 B/cycle.
        // Poisson baseline V=8, 4 B cells → 32 B/cycle → 1 channel/direction
        assert_eq!(channels_needed(&d, &d.hbm, 8, 4), 1);
        // Jacobi tiled V=64 → 256 B/cycle → 6 HBM channels
        assert_eq!(channels_needed(&d, &d.hbm, 64, 4), 6);
        // RTM V=1, 32 B reads → 1 channel; V=2 would need 2
        assert_eq!(channels_needed(&d, &d.hbm, 1, 32), 1);
        assert_eq!(channels_needed(&d, &d.hbm, 2, 32), 2);
        // a DDR4 bank is bus-capped (64 B/cycle at 300 MHz)
        assert_eq!(channels_needed(&d, &d.ddr4, 8, 4), 1);
    }

    #[test]
    fn row_cycles_compute_bound_case() {
        let d = FpgaDevice::u280();
        // Poisson 200-wide row, V=8: 25 compute cycles + 3 gap;
        // memory: 800 B over 1 HBM channel at 250 MHz (57.5 B/cy) = 14 beats
        let c = row_cycles(&d, &d.hbm, 250e6, 8, 200, 800, 800, 1, 1);
        assert_eq!(c, 28);
    }

    #[test]
    fn row_cycles_memory_bound_case() {
        let d = FpgaDevice::u280();
        // Jacobi tiled: V=64, M=640 → compute 10; read 2560 B over 4 HBM ch
        // at 250 MHz: 2560/(57.5·4) = 11.2 → 12 → memory bound
        let c = row_cycles(&d, &d.hbm, 250e6, 64, 640, 2560, 2560, 4, 4);
        assert_eq!(c, 12 + 3);
    }

    #[test]
    fn row_cycles_write_bound_case() {
        let d = FpgaDevice::u280();
        // few read channels but fewer write channels → write dominates
        let c = row_cycles(&d, &d.hbm, 250e6, 64, 640, 0, 2560, 4, 1);
        assert_eq!(c, 45 + 3); // 2560/57.5 = 44.5 → 45
    }

    #[test]
    fn row_timing_components_agree_with_row_cycles() {
        let d = FpgaDevice::u280();
        let t = row_timing(&d, &d.hbm, 250e6, 8, 200, 800, 800, 1, 1);
        assert_eq!(t.compute, 25);
        assert_eq!(t.read, 14);
        assert_eq!(t.write, 14);
        assert_eq!(t.gap, 3);
        assert_eq!(t.total(), row_cycles(&d, &d.hbm, 250e6, 8, 200, 800, 800, 1, 1));
        // Compute-bound row: compute utilisation highest, < 1 (gap).
        assert!(t.compute_utilization() > t.read_utilization());
        assert!((t.compute_utilization() - 25.0 / 28.0).abs() < 1e-12);
        assert!((t.read_utilization() - 14.0 / 28.0).abs() < 1e-12);
    }

    #[test]
    fn strided_efficiency_reproduces_4k_rule() {
        let d = FpgaDevice::u280();
        // 2.5 KiB runs (Jacobi 640-tile rows): ~93 % of raw already lost to
        // per-run gaps plus channel under-use at the row level; the headline
        // effect the paper describes shows up via row_cycles, this helper
        // reports the pure run-length efficiency.
        let e_small = strided_efficiency(&d, 2560);
        let e_big = strided_efficiency(&d, 16384);
        assert!(e_small < e_big);
        assert!(e_big > 0.98);
        assert!((e_small - 40.0 / 43.0).abs() < 1e-9);
    }

    #[test]
    fn ddr4_channel_is_bus_capped_at_250mhz() {
        let d = FpgaDevice::u280();
        // DDR4 bank: 19.2 GB/s = 76.8 B/cy at 250 MHz → capped to 64 B bus
        let c = row_cycles(&d, &d.ddr4, 250e6, 8, 1024, 4096, 0, 1, 1);
        // compute 128, read 4096/64 = 64 → compute bound → 131
        assert_eq!(c, 131);
    }
}
