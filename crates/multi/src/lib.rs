//! # sf-multi — multi-accelerator sharded execution
//!
//! Scales the single-FPGA streaming architecture of the source paper
//! (Kamalavasan et al., IPDPS 2021) across `K` accelerator cards the way
//! multi-board stencil deployments actually do it: a **1D slab
//! decomposition** of the outermost mesh axis, a **halo exchange** at
//! every pass barrier over a modeled device-to-device link, and
//! **overlap** of exchange with interior compute.
//!
//! The crate provides three layers:
//!
//! * [`partition`] — balanced slab decomposition and the halo-depth rule
//!   (`p · stages · ⌈D/2⌉` units, the pipeline-fill depth).
//! * [`link`] + [`plan`] — the latency/bandwidth link model and the
//!   sharded cycle plan: per-device streaming cost, link occupancy,
//!   exposed (non-overlapped) exchange, merged into one
//!   [`sf_fpga::cycles::CyclePlan`] whose pass wall-clock is the slowest
//!   device.
//! * [`exec`] — sharded executors for 2D/3D batches under both the scalar
//!   and vectorized fast engines, **bit-identical** to the single-device
//!   executors for every device count and `jobs` value, with per-device
//!   swimlanes (`dev{k}/mesh{i}/window/`), `exchange.*` counters, and
//!   exposed exchange charged as [`sf_telemetry::StallClass::Exchange`].
//!
//! Single-device degeneration is exact: `devices = 1` produces the same
//! numerics *and* the same [`sf_fpga::cycles::CyclePlan`] as the
//! unsharded path, which anchors the conformance suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod link;
pub mod partition;
pub mod plan;

pub use exec::{
    simulate_batch_2d_sharded, simulate_batch_2d_sharded_exec, simulate_batch_3d_sharded,
    simulate_batch_3d_sharded_exec, trace_sharded_schedule,
};
pub use link::LinkModel;
pub use partition::{halo_depth, slab_partition, Shard};
pub use plan::{sharded_plan, DeviceCost, MultiConfig, MultiError, ShardedPlan};
