//! 3D rectangular meshes.
//!
//! Storage is row-major with `x` fastest and `z` slowest
//! (`idx = (z * ny + y) * nx + x`). The paper's 3D mesh is `m × n × l`; we
//! use `nx`/`ny`/`nz`. Planes (fixed `z`) are the unit the 3D window buffers
//! cache.

use crate::element::Element;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A dense 3D mesh of elements.
#[derive(Clone, Debug, PartialEq)]
pub struct Mesh3D<T: Element> {
    nx: usize,
    ny: usize,
    nz: usize,
    data: Vec<T>,
}

impl<T: Element> Mesh3D<T> {
    /// Create an `nx × ny × nz` mesh of default (zero) elements.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn zeros(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "mesh dimensions must be positive");
        Mesh3D { nx, ny, nz, data: vec![T::default(); nx * ny * nz] }
    }

    /// Create a mesh filled by `f(x, y, z)`.
    pub fn from_fn(
        nx: usize,
        ny: usize,
        nz: usize,
        mut f: impl FnMut(usize, usize, usize) -> T,
    ) -> Self {
        let mut m = Self::zeros(nx, ny, nz);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    m.data[(z * ny + y) * nx + x] = f(x, y, z);
                }
            }
        }
        m
    }

    /// Deterministic random fill with lanes uniform in `[lo, hi)`.
    pub fn random(nx: usize, ny: usize, nz: usize, seed: u64, lo: f32, hi: f32) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self::from_fn(nx, ny, nz, |_, _, _| {
            let mut e = T::default();
            for c in 0..T::LANES {
                e.set_lane(c, rng.gen_range(lo..hi));
            }
            e
        })
    }

    /// Fastest-varying dimension (the paper's `m`).
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Middle dimension (the paper's `n`).
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Slowest dimension / plane count (the paper's `l`).
    #[inline]
    pub fn nz(&self) -> usize {
        self.nz
    }

    /// Total number of mesh points.
    #[inline]
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// `true` when the mesh has no points (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the mesh payload in bytes.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.len() * T::size_bytes()
    }

    /// Linear index of `(x, y, z)`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        (z * self.ny + y) * self.nx + x
    }

    /// Read the element at `(x, y, z)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> T {
        self.data[self.idx(x, y, z)]
    }

    /// Write the element at `(x, y, z)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: T) {
        let i = self.idx(x, y, z);
        self.data[i] = v;
    }

    /// Borrow the underlying buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the underlying buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// `true` when `(x, y, z)` is at least `r` cells from every boundary.
    #[inline]
    pub fn is_interior(&self, x: usize, y: usize, z: usize, r: usize) -> bool {
        x >= r && y >= r && z >= r && x + r < self.nx && y + r < self.ny && z + r < self.nz
    }

    /// `true` if every lane of every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|e| e.is_finite())
    }

    /// Extract the box `[x0, x0+w) × [y0, y0+h) × [0, nz)` — tiles in the
    /// paper's 3D spatial blocking span the full `l` dimension (`M × N × l`).
    pub fn extract_xy(&self, x0: usize, y0: usize, w: usize, h: usize) -> Mesh3D<T> {
        assert!(x0 + w <= self.nx && y0 + h <= self.ny, "extract out of bounds");
        Mesh3D::from_fn(w, h, self.nz, |x, y, z| self.get(x0 + x, y0 + y, z))
    }

    /// Copy the valid `[vx0, vx0+vw) × [vy0, vy0+vh)` sub-box of `src` (full
    /// `z` extent) back into this mesh at tile origin `(x0, y0)`.
    #[allow(clippy::too_many_arguments)] // tile-copy geometry is naturally 7-place
    pub fn insert_valid_xy(
        &mut self,
        src: &Mesh3D<T>,
        x0: usize,
        y0: usize,
        vx0: usize,
        vy0: usize,
        vw: usize,
        vh: usize,
    ) {
        assert_eq!(src.nz, self.nz, "tile must span full z extent");
        assert!(vx0 + vw <= src.nx && vy0 + vh <= src.ny, "valid region out of src");
        assert!(x0 + vx0 + vw <= self.nx && y0 + vy0 + vh <= self.ny, "insert out of bounds");
        for z in 0..self.nz {
            for y in vy0..vy0 + vh {
                for x in vx0..vx0 + vw {
                    self.set(x0 + x, y0 + y, z, src.get(x, y, z));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::VecN;

    #[test]
    fn layout_x_fastest_z_slowest() {
        let m = Mesh3D::<f32>::from_fn(2, 2, 2, |x, y, z| (z * 100 + y * 10 + x) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 10.0, 11.0, 100.0, 101.0, 110.0, 111.0]);
        assert_eq!(m.get(1, 0, 1), 101.0);
    }

    #[test]
    fn dims_and_bytes() {
        let m = Mesh3D::<VecN<6>>::zeros(4, 3, 2);
        assert_eq!(m.len(), 24);
        assert_eq!(m.size_bytes(), 24 * 24);
        assert_eq!((m.nx(), m.ny(), m.nz()), (4, 3, 2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_panics() {
        let _ = Mesh3D::<f32>::zeros(2, 0, 2);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = Mesh3D::<f32>::zeros(3, 3, 3);
        m.set(2, 1, 2, 5.0);
        assert_eq!(m.get(2, 1, 2), 5.0);
        assert_eq!(m.as_slice()[(2 * 3 + 1) * 3 + 2], 5.0);
    }

    #[test]
    fn random_deterministic() {
        let a = Mesh3D::<f32>::random(4, 4, 4, 7, 0.0, 1.0);
        let b = Mesh3D::<f32>::random(4, 4, 4, 7, 0.0, 1.0);
        assert_eq!(a, b);
        assert!(a.all_finite());
    }

    #[test]
    fn interior_predicate_3d() {
        let m = Mesh3D::<f32>::zeros(9, 9, 9);
        assert!(m.is_interior(4, 4, 4, 4));
        assert!(!m.is_interior(3, 4, 4, 4));
        assert!(!m.is_interior(4, 4, 8, 1));
        assert!(m.is_interior(1, 1, 1, 1));
    }

    #[test]
    fn extract_insert_xy_roundtrip() {
        let m = Mesh3D::<f32>::from_fn(6, 6, 2, |x, y, z| (z * 1000 + y * 10 + x) as f32);
        let t = m.extract_xy(1, 2, 3, 3);
        assert_eq!((t.nx(), t.ny(), t.nz()), (3, 3, 2));
        assert_eq!(t.get(0, 0, 0), 21.0);
        assert_eq!(t.get(2, 2, 1), 1043.0);

        let mut dst = Mesh3D::<f32>::zeros(6, 6, 2);
        dst.insert_valid_xy(&t, 1, 2, 1, 1, 1, 1);
        assert_eq!(dst.get(2, 3, 0), 32.0);
        assert_eq!(dst.get(2, 3, 1), 1032.0);
        assert_eq!(dst.get(1, 3, 0), 0.0);
    }
}
