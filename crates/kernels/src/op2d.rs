//! The 2D stencil-stage abstraction.
//!
//! A [`StencilOp2D`] is one pipeline stage: a pure function from a
//! neighborhood of the input stream to one output element. Both the golden
//! reference and the FPGA window-buffer simulator evaluate stages through
//! this trait, guaranteeing identical floating-point evaluation order and
//! hence bit-exact results.

use sf_mesh::Element;

/// One 2D stencil pipeline stage.
///
/// `apply` receives an accessor `at(dx, dy)` valid for `|dx|,|dy| ≤ radius`
/// and must be a *pure* function of those reads (the dataflow pipeline
/// evaluates it once per cell, in streaming order).
pub trait StencilOp2D<T: Element>: Sync {
    /// Stencil radius `r = D/2` (order `D`).
    fn radius(&self) -> usize;

    /// Compute the output element for one interior cell.
    fn apply<F: Fn(i32, i32) -> T>(&self, at: F) -> T;

    /// Output for a boundary cell (closer than `radius` to the mesh edge).
    /// Default: pass the input through unchanged (Dirichlet-style hold).
    fn on_boundary(&self, center: T) -> T {
        center
    }
}

/// Blanket impl so `&K` is also a stage (lets executors borrow).
impl<T: Element, K: StencilOp2D<T>> StencilOp2D<T> for &K {
    fn radius(&self) -> usize {
        (**self).radius()
    }

    fn apply<F: Fn(i32, i32) -> T>(&self, at: F) -> T {
        (**self).apply(at)
    }

    fn on_boundary(&self, center: T) -> T {
        (**self).on_boundary(center)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy 1-radius averaging stage for trait plumbing tests.
    struct Avg;

    impl StencilOp2D<f32> for Avg {
        fn radius(&self) -> usize {
            1
        }

        fn apply<F: Fn(i32, i32) -> f32>(&self, at: F) -> f32 {
            (at(-1, 0) + at(1, 0) + at(0, -1) + at(0, 1)) * 0.25
        }
    }

    #[test]
    fn trait_applies_through_reference() {
        let k = Avg;
        let r: &Avg = &k;
        let v = r.apply(|dx, dy| (dx + 2 * dy) as f32);
        assert_eq!(v, 0.0);
        assert_eq!(r.radius(), 1);
        assert_eq!(r.on_boundary(7.0), 7.0);
    }
}
