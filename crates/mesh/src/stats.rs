//! Mesh statistics: summaries used by examples, convergence monitors and
//! validation reports.

use crate::element::Element;
use crate::mesh2d::Mesh2D;
use crate::mesh3d::Mesh3D;
use serde::{Deserialize, Serialize};

/// Lane-wise summary statistics of a mesh.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeshStats {
    /// Smallest lane value.
    pub min: f32,
    /// Largest lane value.
    pub max: f32,
    /// Mean lane value.
    pub mean: f64,
    /// Root-mean-square lane value (the L2 "energy" of the field).
    pub rms: f64,
    /// Number of lanes summarized.
    pub lanes: usize,
    /// Number of non-finite lanes encountered.
    pub non_finite: usize,
}

impl MeshStats {
    /// Compute over any element slice.
    pub fn of<T: Element>(data: &[T]) -> Self {
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        let mut sum = 0.0f64;
        let mut sumsq = 0.0f64;
        let mut non_finite = 0usize;
        let mut lanes = 0usize;
        for e in data {
            for c in 0..T::LANES {
                let v = e.lane(c);
                lanes += 1;
                if !v.is_finite() {
                    non_finite += 1;
                    continue;
                }
                min = min.min(v);
                max = max.max(v);
                sum += v as f64;
                sumsq += (v as f64) * (v as f64);
            }
        }
        let n = (lanes - non_finite).max(1) as f64;
        MeshStats {
            min: if min.is_finite() { min } else { 0.0 },
            max: if max.is_finite() { max } else { 0.0 },
            mean: sum / n,
            rms: (sumsq / n).sqrt(),
            lanes,
            non_finite,
        }
    }

    /// One-line rendering for logs.
    pub fn summary(&self) -> String {
        format!(
            "min {:.4e}  max {:.4e}  mean {:.4e}  rms {:.4e}{}",
            self.min,
            self.max,
            self.mean,
            self.rms,
            if self.non_finite > 0 {
                format!("  ({} non-finite!)", self.non_finite)
            } else {
                String::new()
            }
        )
    }
}

/// Statistics of a 2D mesh.
pub fn stats_2d<T: Element>(m: &Mesh2D<T>) -> MeshStats {
    MeshStats::of(m.as_slice())
}

/// Statistics of a 3D mesh.
pub fn stats_3d<T: Element>(m: &Mesh3D<T>) -> MeshStats {
    MeshStats::of(m.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::VecN;

    #[test]
    fn stats_of_known_field() {
        let m = Mesh2D::<f32>::from_fn(2, 2, |x, y| (y * 2 + x) as f32); // 0,1,2,3
        let s = stats_2d(&m);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 1.5).abs() < 1e-12);
        assert!((s.rms - (14.0f64 / 4.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.lanes, 4);
        assert_eq!(s.non_finite, 0);
        assert!(s.summary().contains("max"));
    }

    #[test]
    fn stats_counts_vector_lanes() {
        let m =
            Mesh3D::<VecN<3>>::from_fn(2, 1, 1, |x, _, _| VecN::new([x as f32, -(x as f32), 2.0]));
        let s = stats_3d(&m);
        assert_eq!(s.lanes, 6);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 2.0);
    }

    #[test]
    fn stats_tolerates_non_finite() {
        let mut m = Mesh2D::<f32>::zeros(2, 2);
        m.set(0, 0, f32::NAN);
        m.set(1, 0, 5.0);
        let s = stats_2d(&m);
        assert_eq!(s.non_finite, 1);
        assert_eq!(s.max, 5.0);
        assert!(s.summary().contains("non-finite"));
    }
}
