//! Feasibility analysis: can this stencil application profitably target this
//! FPGA at all, and with what `V` and `p`?
//!
//! This packages the paper's §III-A limits (eqs. 4, 6, 7) together with the
//! §VI "determinants for a given stencil code to be amenable to FPGA
//! implementation" into one queryable report.

use crate::equations;
use crate::error::ModelError;
use serde::{Deserialize, Serialize};
use sf_fpga::{FpgaDevice, MemKind};
use sf_kernels::StencilSpec;

/// The paper's nominal vectorization factor: eq. (4) evaluated on a
/// two-channel budget at the default clock, floored to a power of two —
/// "a value of 8 for V is calculated when using a single DDR4 channel or two
/// HBM channels with a frequency of 300MHz" (§V-A); the same rule yields
/// V = 1 for RTM's 24-byte elements.
pub fn nominal_v(dev: &FpgaDevice, spec: &StencilSpec, mem: MemKind) -> usize {
    let mem_spec = match mem {
        MemKind::Hbm => &dev.hbm,
        MemKind::Ddr4 => &dev.ddr4,
    };
    let channels = match mem {
        MemKind::Hbm => 2,
        MemKind::Ddr4 => 1,
    };
    let vmax =
        equations::v_max(mem_spec.channel_bw, channels, dev.default_clock_hz, spec.elem_bytes);
    if vmax == 0 {
        1
    } else {
        1 << (usize::BITS - 1 - vmax.leading_zeros())
    }
}

/// Feasibility summary for one `(app, device, workload shape, V)` choice.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FeasibilityReport {
    /// Application analyzed.
    pub app: String,
    /// Vectorization factor analyzed.
    pub v: usize,
    /// Bandwidth-limited maximum `V` (eq. 4) for the chosen memory.
    pub v_max_bandwidth: usize,
    /// DSP-limited unroll (eq. 6).
    pub p_dsp: usize,
    /// Window-memory-limited unroll (eq. 7) for the given streaming unit.
    pub p_mem: usize,
    /// `min(p_dsp, p_mem)` — the design-point unroll the workflow starts at.
    pub p_recommended: usize,
    /// Whether a baseline (untiled) design is possible at all (`p_mem ≥ 1`).
    pub baseline_feasible: bool,
    /// Whether spatial blocking is required/advised for this mesh.
    pub needs_tiling: bool,
    /// Arithmetic intensity in flops per external byte — the §VI
    /// profitability determinant (higher = more FPGA-friendly, because the
    /// unrolled pipeline multiplies it by `p`).
    pub flops_per_byte: f64,
}

impl FeasibilityReport {
    /// Analyze an application on a device.
    ///
    /// `unit_cells` is the streaming buffer unit: row length `m` for 2D,
    /// plane size `m·n` for 3D (per paper eq. 7's denominators).
    ///
    /// Fails with [`ModelError::InvalidParameter`] when `v` or `unit_cells`
    /// is zero — both enter eq. (6)/(7) as divisors/denominators.
    pub fn analyze(
        dev: &FpgaDevice,
        spec: &StencilSpec,
        v: usize,
        unit_cells: usize,
        mem: MemKind,
    ) -> Result<Self, ModelError> {
        if v == 0 {
            return Err(ModelError::invalid("v", "vectorization factor must be >= 1 (got 0)"));
        }
        if unit_cells == 0 {
            return Err(ModelError::invalid(
                "unit_cells",
                "streaming buffer unit must be >= 1 cell (got 0)",
            ));
        }
        let mem_spec = match mem {
            MemKind::Hbm => &dev.hbm,
            MemKind::Ddr4 => &dev.ddr4,
        };
        // eq. 4 with as many channels as one direction of the memory offers
        let v_max = equations::v_max(
            mem_spec.channel_bw,
            (mem_spec.channels / 2).max(1),
            dev.default_clock_hz,
            spec.elem_bytes,
        );
        let p_dsp = equations::p_dsp(dev.dsp_total, dev.dsp_util_target, v, spec.gdsp());
        let p_mem = equations::p_mem(
            dev.internal_mem_bytes(),
            dev.mem_util_target,
            spec.window_elem_bytes,
            spec.order * spec.stages,
            unit_cells,
        );
        let ext_bytes = (spec.ext_read_bytes + spec.ext_write_bytes) as f64;
        Ok(FeasibilityReport {
            app: format!("{}", spec.app),
            v,
            v_max_bandwidth: v_max,
            p_dsp,
            p_mem,
            p_recommended: p_dsp.min(p_mem),
            baseline_feasible: p_mem >= 1,
            needs_tiling: p_mem < p_dsp.max(1),
            flops_per_byte: spec.flops_per_cell() as f64 / ext_bytes,
        })
    }

    /// The §VI verdict: an application profits from the FPGA when a deep
    /// pipeline fits (`p_recommended` large enough that on-chip reuse beats
    /// the device's external-bandwidth disadvantage vs a GPU).
    pub fn is_profitable(&self, min_p: usize) -> bool {
        self.baseline_feasible && self.p_recommended >= min_p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> FpgaDevice {
        FpgaDevice::u280()
    }

    #[test]
    fn poisson_analysis_matches_table2() {
        let r = FeasibilityReport::analyze(&dev(), &StencilSpec::poisson(), 8, 400, MemKind::Hbm)
            .unwrap();
        assert_eq!(r.p_dsp, 68);
        assert!(r.p_mem > 68, "small 2D rows leave memory unconstrained");
        assert_eq!(r.p_recommended, 68);
        assert!(r.baseline_feasible);
        assert!(!r.needs_tiling);
    }

    #[test]
    fn jacobi_analysis_small_and_large() {
        let small =
            FeasibilityReport::analyze(&dev(), &StencilSpec::jacobi(), 8, 100 * 100, MemKind::Hbm)
                .unwrap();
        assert_eq!(small.p_dsp, 28);
        assert!(small.baseline_feasible);

        let large = FeasibilityReport::analyze(
            &dev(),
            &StencilSpec::jacobi(),
            8,
            4000 * 4000,
            MemKind::Hbm,
        )
        .unwrap();
        assert_eq!(large.p_mem, 0, "eq. 7: even one module cannot be synthesized");
        assert!(!large.baseline_feasible);
        assert!(large.needs_tiling);
    }

    #[test]
    fn rtm_analysis_p3() {
        let r = FeasibilityReport::analyze(&dev(), &StencilSpec::rtm(), 1, 64 * 64, MemKind::Hbm)
            .unwrap();
        assert_eq!(r.p_dsp, 3);
        assert!(r.p_mem >= 3, "64² planes must admit p=3 (p_mem = {})", r.p_mem);
        assert_eq!(r.p_recommended, 3);
        // RTM's fused intensity is enormous — the reason it suits the FPGA
        assert!(r.flops_per_byte > 10.0);
    }

    #[test]
    fn profitability_threshold() {
        let r = FeasibilityReport::analyze(&dev(), &StencilSpec::poisson(), 8, 400, MemKind::Hbm)
            .unwrap();
        assert!(r.is_profitable(10));
        let starved = FeasibilityReport::analyze(
            &dev(),
            &StencilSpec::jacobi(),
            8,
            4000 * 4000,
            MemKind::Hbm,
        )
        .unwrap();
        assert!(!starved.is_profitable(1));
    }

    #[test]
    fn ddr4_limits_v_harder_than_hbm() {
        let hbm = FeasibilityReport::analyze(&dev(), &StencilSpec::poisson(), 8, 400, MemKind::Hbm)
            .unwrap();
        let ddr =
            FeasibilityReport::analyze(&dev(), &StencilSpec::poisson(), 8, 400, MemKind::Ddr4)
                .unwrap();
        assert!(ddr.v_max_bandwidth < hbm.v_max_bandwidth);
        assert_eq!(ddr.v_max_bandwidth, 8, "paper: V = 8 on a single DDR4 channel");
    }

    #[test]
    fn zero_inputs_are_typed_errors() {
        let err = FeasibilityReport::analyze(&dev(), &StencilSpec::poisson(), 0, 400, MemKind::Hbm)
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidParameter { ref param, .. } if param == "v"));
        let err = FeasibilityReport::analyze(&dev(), &StencilSpec::poisson(), 8, 0, MemKind::Hbm)
            .unwrap_err();
        assert!(
            matches!(err, ModelError::InvalidParameter { ref param, .. } if param == "unit_cells")
        );
    }
}

#[cfg(test)]
mod nominal_v_tests {
    use super::*;

    #[test]
    fn nominal_v_matches_paper_choices() {
        let d = FpgaDevice::u280();
        assert_eq!(nominal_v(&d, &StencilSpec::poisson(), MemKind::Hbm), 8);
        assert_eq!(nominal_v(&d, &StencilSpec::poisson(), MemKind::Ddr4), 8);
        assert_eq!(nominal_v(&d, &StencilSpec::jacobi(), MemKind::Hbm), 8);
        assert_eq!(nominal_v(&d, &StencilSpec::rtm(), MemKind::Hbm), 1);
    }
}
