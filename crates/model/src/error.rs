//! Typed errors for the analytic model's public APIs.
//!
//! The model functions ([`fn@crate::predict`], [`crate::explore`],
//! [`FeasibilityReport::analyze`](crate::FeasibilityReport::analyze)) used to
//! panic on malformed inputs; they now return [`ModelError`] so callers (the
//! workflow, the CLI, the fault-campaign runner) can degrade gracefully
//! instead of aborting.

use serde::{Deserialize, Serialize};

/// Error from a model-crate public API.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelError {
    /// A caller-supplied parameter is out of the model's domain.
    InvalidParameter {
        /// Which parameter.
        param: String,
        /// What was wrong with it.
        detail: String,
    },
    /// The design's execution mode cannot run the given workload shape
    /// (e.g. a 1D-tiled 2D design asked to predict a 3D workload).
    WorkloadMismatch {
        /// What disagreed.
        detail: String,
    },
    /// A prediction produced a non-finite runtime — the design/workload
    /// combination is outside the calibrated model's domain.
    NonFiniteRuntime {
        /// The offending design point.
        detail: String,
    },
    /// A reference configuration the caller named could not be synthesized
    /// on the device (the accuracy suite's fixed paper designs, for
    /// example, on a device too small for them).
    Infeasible {
        /// The configuration and the synthesis failure.
        detail: String,
    },
    /// The spec's declared model inputs (order `D`, per-cell `OpCount` →
    /// `G_dsp`) disagree with the truth extracted from the kernel by
    /// `sf-absint`'s probe execution: every eq. (5)/(6) decision built on
    /// them would be wrong (see [`crate::verify::verify_spec`]).
    SpecDrift {
        /// The failing `SFC-K` diagnostics.
        detail: String,
    },
}

impl ModelError {
    /// Shorthand for [`ModelError::InvalidParameter`].
    pub fn invalid(param: &str, detail: impl Into<String>) -> Self {
        ModelError::InvalidParameter { param: param.to_string(), detail: detail.into() }
    }
}

impl core::fmt::Display for ModelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ModelError::InvalidParameter { param, detail } => {
                write!(f, "invalid parameter `{param}`: {detail}")
            }
            ModelError::WorkloadMismatch { detail } => {
                write!(f, "workload/mode mismatch: {detail}")
            }
            ModelError::NonFiniteRuntime { detail } => {
                write!(f, "model produced a non-finite runtime for {detail}")
            }
            ModelError::Infeasible { detail } => {
                write!(f, "infeasible configuration: {detail}")
            }
            ModelError::SpecDrift { detail } => {
                write!(f, "spec drifted from its kernel: {detail}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::invalid("v", "must be >= 1 (got 0)");
        assert!(format!("{e}").contains("invalid parameter `v`"));
        let e = ModelError::WorkloadMismatch { detail: "Tiled1D vs D3".into() };
        assert!(format!("{e}").contains("mismatch"));
    }

    #[test]
    fn roundtrips_through_serde() {
        let e = ModelError::invalid("max_p", "must be >= 1");
        let s = serde_json::to_string(&e).unwrap();
        let back: ModelError = serde_json::from_str(&s).unwrap();
        assert_eq!(back, e);
    }
}
