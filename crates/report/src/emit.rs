//! Deterministic Markdown and HTML emitters for a [`Report`].
//!
//! The emitters are pure functions of the report document: no
//! timestamps, no wall times, no environment reads. The same store
//! always renders to the same bytes, which is what makes the rendered
//! report diffable in review and archivable as a CI artifact.

use crate::report::{ConfigStats, Report};

/// Format an optional percentage for human output.
fn fmt_pct(p: Option<f64>) -> String {
    match p {
        Some(p) => format!("{p:+.2}%"),
        None => "n/a".to_string(),
    }
}

/// One-line roofline summary for a config row.
fn roofline_cell(c: &ConfigStats) -> String {
    match &c.roofline {
        None => "—".to_string(),
        Some(rl) => {
            let a = &rl.attribution;
            format!(
                "ideal {} / gap {} ({}) bound={} [C {:.1}% / M {:.1}% / B {:.1}% / X {:.1}%]",
                rl.ideal_cycles,
                rl.gap_cycles,
                fmt_pct(rl.gap_pct),
                rl.bound,
                a.compute_pct,
                a.memory_pct,
                a.backpressure_pct,
                a.exchange_pct
            )
        }
    }
}

/// Render fault counters as `name=count` pairs (sorted by name — the
/// map is a `BTreeMap`).
fn faults_cell(c: &ConfigStats) -> String {
    if c.fault_counters.is_empty() {
        return "—".to_string();
    }
    c.fault_counters.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(" ")
}

/// Render a report as GitHub-flavoured Markdown.
pub fn to_markdown(rep: &Report) -> String {
    let mut out = String::new();
    out.push_str("# sfstencil cross-run report\n\n");
    out.push_str(&format!("- schema: `{}`\n", rep.schema));
    if let Some(sha) = &rep.git_sha {
        out.push_str(&format!("- git: `{sha}`\n"));
    }
    out.push_str(&format!("- runs aggregated: {}\n\n", rep.total_runs));

    out.push_str(
        "| config | runs | predicted | p50 | p90 | p99 | div (median) | roofline | faults | check |\n",
    );
    out.push_str("|---|---:|---:|---:|---:|---:|---:|---|---|---|\n");
    for c in &rep.configs {
        out.push_str(&format!(
            "| `{}` | {} | {} | {} | {} | {} | {} | {} | {} | {}E/{}W |\n",
            c.key,
            c.runs,
            c.predicted_cycles,
            c.measured_p50,
            c.measured_p90,
            c.measured_p99,
            fmt_pct(c.divergence_median_pct),
            roofline_cell(c),
            faults_cell(c),
            c.check_errors,
            c.check_warnings
        ));
    }

    let ceilinged: Vec<&ConfigStats> =
        rep.configs.iter().filter(|c| c.roofline.is_some()).collect();
    if !ceilinged.is_empty() {
        out.push_str("\n## Ceilings\n\n");
        out.push_str("| config | V | V_max (eq. 4) | p_dsp (eq. 6) | p_max tile (eq. 12) |\n");
        out.push_str("|---|---:|---:|---:|---:|\n");
        for c in ceilinged {
            let Some(rl) = &c.roofline else { continue };
            let v = c.key.split('/').find(|s| s.starts_with('V')).unwrap_or("V?");
            let tile = match rl.ceilings.p_max_tile {
                Some(t) => format!("{t:.1}"),
                None => "—".to_string(),
            };
            out.push_str(&format!(
                "| `{}` | {} | {}{} | {}{} | {} |\n",
                c.key,
                v,
                rl.ceilings.v_max_bandwidth,
                if rl.ceilings.at_bandwidth_ceiling { " (at ceiling)" } else { "" },
                rl.ceilings.p_dsp,
                if rl.ceilings.at_dsp_ceiling { " (at ceiling)" } else { "" },
                tile
            ));
        }
    }
    out
}

/// Minimal HTML escaping for text nodes.
fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Render a report as a standalone HTML page.
pub fn to_html(rep: &Report) -> String {
    let mut out = String::new();
    out.push_str("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">");
    out.push_str("<title>sfstencil cross-run report</title>");
    out.push_str(
        "<style>body{font-family:monospace}table{border-collapse:collapse}\
         td,th{border:1px solid #999;padding:2px 6px;text-align:right}\
         td:first-child,th:first-child{text-align:left}</style>",
    );
    out.push_str("</head><body>\n<h1>sfstencil cross-run report</h1>\n<ul>");
    out.push_str(&format!("<li>schema: {}</li>", esc(&rep.schema)));
    if let Some(sha) = &rep.git_sha {
        out.push_str(&format!("<li>git: {}</li>", esc(sha)));
    }
    out.push_str(&format!("<li>runs aggregated: {}</li></ul>\n", rep.total_runs));
    out.push_str("<table>\n<tr><th>config</th><th>runs</th><th>predicted</th><th>p50</th>");
    out.push_str("<th>p90</th><th>p99</th><th>div (median)</th><th>roofline</th>");
    out.push_str("<th>faults</th><th>check</th></tr>\n");
    for c in &rep.configs {
        out.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{}</td><td>{}E/{}W</td></tr>\n",
            esc(&c.key),
            c.runs,
            c.predicted_cycles,
            c.measured_p50,
            c.measured_p90,
            c.measured_p99,
            esc(&fmt_pct(c.divergence_median_pct)),
            esc(&roofline_cell(c)),
            esc(&faults_cell(c)),
            c.check_errors,
            c.check_warnings
        ));
    }
    out.push_str("</table>\n</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RunKind, RunRecord};
    use crate::report::Report;

    fn sample_report() -> Report {
        let mut r = RunRecord::empty(RunKind::Profile, "poisson2d");
        r.dims = vec![200, 100];
        r.niter = 100;
        r.v = 8;
        r.p = 16;
        r.mode = "Baseline".into();
        r.mem = "hbm".into();
        r.measured_cycles = 1_000_000;
        r.predicted_cycles = 980_000;
        r.stalls.memory_cycles = 100;
        r.divergence_pct = Some(2.04);
        let mut f = RunRecord::empty(RunKind::Faults, "rtm3d");
        f.fault_counters.insert("injected".into(), 12);
        f.fault_counters.insert("silent_wrong".into(), 0);
        Report::build(&[r, f])
    }

    #[test]
    fn markdown_has_roofline_and_ceiling_tables() {
        let md = to_markdown(&sample_report());
        assert!(md.contains("# sfstencil cross-run report"));
        assert!(md.contains("bound=Memory"));
        assert!(md.contains("eq. 4"));
        assert!(md.contains("injected=12"));
        assert!(md.contains("+2.04%"));
    }

    #[test]
    fn html_is_escaped_and_complete() {
        let html = to_html(&sample_report());
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</html>\n"));
        assert!(html.contains("poisson2d"));
        // config keys contain no raw angle brackets, but the escaper must
        // be load-bearing anyway
        assert!(!html.contains("<script"));
    }

    #[test]
    fn emitters_are_deterministic() {
        let rep = sample_report();
        assert_eq!(to_markdown(&rep), to_markdown(&rep));
        assert_eq!(to_html(&rep), to_html(&rep));
    }
}
