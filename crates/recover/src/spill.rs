//! Versioned binary spill format for checkpoints.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       6     magic  b"SFCKPT"
//! 6       2     version (u16) — currently 1
//! 8       8     iters_done (u64)
//! 16      8     passes_done (u64)
//! 24      8     batch (u64)
//! 32      4     lanes (u32)
//! 36      4     ndims (u32)
//! 40      8*n   dims (u64 each)
//! ..      8     payload length in values (u64)
//! ..      4*m   payload (f32 bit patterns)
//! ..      8     content checksum (u64) — same FNV-1a as Snapshot
//! ```
//!
//! Decoding is total: every malformed input maps to a typed
//! [`CheckpointError`] — bad magic, unknown version, truncation, checksum
//! mismatch — and never panics.

use crate::checkpoint::{content_checksum, CheckpointError, Snapshot};
use std::path::Path;

/// Magic prefix of every spill file.
pub const SPILL_MAGIC: &[u8; 6] = b"SFCKPT";
/// Current (and only) spill format version.
pub const SPILL_VERSION: u16 = 1;

/// Serialize a snapshot into the spill byte format.
pub fn to_bytes(snap: &Snapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(48 + snap.dims.len() * 8 + snap.data.len() * 4 + 8);
    out.extend_from_slice(SPILL_MAGIC);
    out.extend_from_slice(&SPILL_VERSION.to_le_bytes());
    out.extend_from_slice(&snap.iters_done.to_le_bytes());
    out.extend_from_slice(&snap.passes_done.to_le_bytes());
    out.extend_from_slice(&snap.batch.to_le_bytes());
    out.extend_from_slice(&snap.lanes.to_le_bytes());
    out.extend_from_slice(&(snap.dims.len() as u32).to_le_bytes());
    for &d in &snap.dims {
        out.extend_from_slice(&d.to_le_bytes());
    }
    out.extend_from_slice(&(snap.data.len() as u64).to_le_bytes());
    for &v in &snap.data {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out.extend_from_slice(&snap.checksum.to_le_bytes());
    out
}

/// Bounded little-endian reader over the spill bytes.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(CheckpointError::Truncated { needed: usize::MAX, have: self.buf.len() })?;
        if end > self.buf.len() {
            return Err(CheckpointError::Truncated { needed: end, have: self.buf.len() });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, CheckpointError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
}

/// Decode spill bytes back into a snapshot, verifying magic, version and
/// content checksum. Total: returns a typed error on any malformed input.
pub fn try_from_bytes(bytes: &[u8]) -> Result<Snapshot, CheckpointError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let magic = r.take(6)?;
    if magic != SPILL_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = r.u16()?;
    if version != SPILL_VERSION {
        return Err(CheckpointError::UnsupportedVersion { found: version });
    }
    let iters_done = r.u64()?;
    let passes_done = r.u64()?;
    let batch = r.u64()?;
    let lanes = r.u32()?;
    let ndims = r.u32()? as usize;
    // dims and payload lengths are attacker-controlled: bound them by the
    // bytes actually present before allocating.
    let remaining = bytes.len().saturating_sub(r.pos);
    if ndims.saturating_mul(8) > remaining {
        return Err(CheckpointError::Truncated { needed: r.pos + ndims * 8, have: bytes.len() });
    }
    let mut dims = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        dims.push(r.u64()?);
    }
    let nvals = r.u64()? as usize;
    let remaining = bytes.len().saturating_sub(r.pos);
    if nvals.saturating_mul(4) > remaining {
        return Err(CheckpointError::Truncated { needed: r.pos + nvals * 4, have: bytes.len() });
    }
    let mut data = Vec::with_capacity(nvals);
    for _ in 0..nvals {
        data.push(f32::from_bits(r.u32()?));
    }
    let checksum = r.u64()?;
    let found = content_checksum(iters_done, passes_done, &dims, batch, lanes, &data);
    if found != checksum {
        return Err(CheckpointError::ChecksumMismatch { expected: checksum, found });
    }
    Ok(Snapshot { iters_done, passes_done, dims, batch, lanes, data, checksum })
}

/// Spill a snapshot to a file.
pub fn write_file(path: &Path, snap: &Snapshot) -> Result<(), CheckpointError> {
    std::fs::write(path, to_bytes(snap))
        .map_err(|e| CheckpointError::Io { msg: format!("{}: {e}", path.display()) })
}

/// Read a spilled snapshot back from a file.
pub fn read_file(path: &Path) -> Result<Snapshot, CheckpointError> {
    let bytes = std::fs::read(path)
        .map_err(|e| CheckpointError::Io { msg: format!("{}: {e}", path.display()) })?;
    try_from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let cells: Vec<f32> = (0..12).map(|i| (i as f32).sin()).collect();
        Snapshot::capture(16, 4, &[4, 3], 1, &cells)
    }

    #[test]
    fn bytes_roundtrip() {
        let s = sample();
        let bytes = to_bytes(&s);
        let back = try_from_bytes(&bytes).expect("decode");
        assert_eq!(back, s);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = to_bytes(&sample());
        bytes[0] = b'X';
        assert_eq!(try_from_bytes(&bytes), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn unknown_version_is_typed() {
        let mut bytes = to_bytes(&sample());
        bytes[6] = 9;
        assert!(matches!(
            try_from_bytes(&bytes),
            Err(CheckpointError::UnsupportedVersion { found: 9 })
        ));
    }

    #[test]
    fn every_truncation_point_is_typed_not_a_panic() {
        let bytes = to_bytes(&sample());
        for cut in 0..bytes.len() {
            let r = try_from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "truncation at {cut} must fail");
        }
    }

    #[test]
    fn flipped_payload_bit_fails_checksum() {
        let mut bytes = to_bytes(&sample());
        let mid = bytes.len() - 16; // inside the payload, before the trailer
        bytes[mid] ^= 0x40;
        assert!(matches!(try_from_bytes(&bytes), Err(CheckpointError::ChecksumMismatch { .. })));
    }

    #[test]
    fn file_roundtrip_and_missing_file_error() {
        let dir = std::env::temp_dir().join("sf-recover-spill-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("ckpt.sfckpt");
        let s = sample();
        write_file(&path, &s).expect("write");
        assert_eq!(read_file(&path).expect("read"), s);
        let missing = dir.join("does-not-exist.sfckpt");
        assert!(matches!(read_file(&missing), Err(CheckpointError::Io { .. })));
        let _ = std::fs::remove_file(&path);
    }
}
