//! The sharded cycle plan: single-device streaming cost per slab plus the
//! halo-exchange link cost, combined into one [`CyclePlan`]-shaped answer.
//!
//! Per pass, each device `k` streams its *extended* slab (owned units plus
//! up to one halo of depth `h` per interior side) at the design's per-row
//! cost, then must have exchanged next pass's halos before it can start
//! again. Exchange is overlapped against the device's *interior* compute —
//! the owned units further than `h` from a device boundary, which do not
//! depend on incoming halo data — and only the remainder is exposed:
//!
//! ```text
//! pass_k    = (b·extended_k + fill) · unit_cycles + pipeline_latency
//! link_k    = Σ_iface  latency + ⌈halo_bytes / link_rate⌉
//! exposed_k = max(0, link_k − interior_k · unit_cycles · b)
//! pass wall = max_k (pass_k + exposed_k),  total = passes · pass wall
//! ```
//!
//! With one device this degenerates *exactly* to [`sf_fpga::cycles::plan`]
//! (no interfaces, extended = owned), which is the anchor for the
//! conformance suite: sharded execution must be bit-identical in numerics
//! and identical in plan at `K = 1`.

use crate::link::LinkModel;
use crate::partition::{halo_depth, slab_partition};
use serde::{Deserialize, Serialize};
use sf_fpga::cycles::{self, CyclePlan};
use sf_fpga::{ExecMode, FpgaDevice, StencilDesign};

/// How a workload is spread over accelerators.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiConfig {
    /// Number of accelerator cards (`1` = the classic single-device path).
    pub devices: usize,
    /// The inter-device interconnect model.
    pub link: LinkModel,
}

impl MultiConfig {
    /// A `devices`-card config over the default (Aurora-style) link.
    pub fn new(devices: usize) -> Self {
        Self { devices, link: LinkModel::default() }
    }
}

impl Default for MultiConfig {
    /// Single device, default link — identical to unsharded execution.
    fn default() -> Self {
        Self::new(1)
    }
}

/// Why a workload cannot be sharded as requested.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MultiError {
    /// `devices == 0` — there is no accelerator to run on.
    NoDevices,
    /// More devices than outermost mesh units: some shard would own
    /// nothing.
    TooManyDevices {
        /// Requested device count.
        devices: usize,
        /// Outermost-axis extent (rows in 2D, planes in 3D).
        extent: usize,
    },
    /// Sharding composes with whole-mesh streaming only; tiled designs
    /// already decompose the mesh their own way.
    UnsupportedMode,
}

impl std::fmt::Display for MultiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoDevices => write!(f, "device count must be at least 1"),
            Self::TooManyDevices { devices, extent } => write!(
                f,
                "cannot shard {extent} outermost units across {devices} devices: \
                 every shard must own at least one row/plane"
            ),
            Self::UnsupportedMode => {
                write!(f, "multi-device sharding requires a Baseline or Batched design")
            }
        }
    }
}

impl std::error::Error for MultiError {}

/// Per-pass cost of one device's shard.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceCost {
    /// Device index.
    pub device: usize,
    /// First owned outermost unit.
    pub owned_start: usize,
    /// Owned outermost units (rows in 2D, planes in 3D).
    pub owned_len: usize,
    /// Streamed units per mesh per pass: owned plus clamped halos.
    pub extended_len: usize,
    /// Streaming cycles per pass (extended slab + fill + pipeline drain).
    pub pass_cycles: u64,
    /// Link cycles per pass for this device's incoming halos.
    pub link_cycles: u64,
    /// Link cycles per pass *not* hidden behind interior compute.
    pub exposed_cycles: u64,
}

/// A multi-device execution plan: the merged single-plan view plus the
/// per-device detail behind it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShardedPlan {
    /// Device count the plan was built for.
    pub devices: usize,
    /// Halo depth in outermost units ([`crate::partition::halo_depth`]).
    pub halo: usize,
    /// The merged plan: pass wall-clock is the slowest device including
    /// exposed exchange, traffic sums all devices (halo re-reads included),
    /// host calls count one enqueue per device per pass. Feeds
    /// [`sf_fpga::SimReport::from_plan`] unchanged.
    pub merged: CyclePlan,
    /// Per-device cost breakdown (one entry per shard, in slab order).
    pub per_device: Vec<DeviceCost>,
    /// Bytes crossing inter-device links per pass (all devices, all batch
    /// members; each message counted once, at its receiver).
    pub exchange_bytes_per_pass: u64,
    /// Halo messages per pass (per device interface, per batch member).
    pub exchange_messages_per_pass: u64,
    /// Total link-occupancy cycles over the whole solve, summed across
    /// devices (before overlap).
    pub exchange_link_cycles: u64,
    /// Total exchange cycles exposed on the critical path over the whole
    /// solve, summed across devices — what executors charge as
    /// [`sf_telemetry::StallClass::Exchange`].
    pub exchange_exposed_cycles: u64,
}

/// Plan a full sharded solve of `wl` on `cfg.devices` copies of `design`.
///
/// # Errors
/// [`MultiError::NoDevices`] for a zero device count,
/// [`MultiError::TooManyDevices`] when shards would be empty, and
/// [`MultiError::UnsupportedMode`] for tiled designs.
pub fn sharded_plan(
    dev: &FpgaDevice,
    design: &StencilDesign,
    wl: &sf_fpga::design::Workload,
    niter: u64,
    cfg: &MultiConfig,
) -> Result<ShardedPlan, MultiError> {
    use sf_fpga::design::Workload;
    if cfg.devices == 0 {
        return Err(MultiError::NoDevices);
    }
    if !matches!(design.mode, ExecMode::Baseline | ExecMode::Batched { .. }) {
        return Err(MultiError::UnsupportedMode);
    }
    // Outermost extent, units per stream step, and batch for either dim.
    let (nx, extent, batch, rows_per_unit) = match *wl {
        Workload::D2 { nx, ny, batch } => (nx, ny, batch, 1usize),
        Workload::D3 { nx, ny, nz, batch } => (nx, nz, batch, ny),
    };
    if cfg.devices > extent {
        return Err(MultiError::TooManyDevices { devices: cfg.devices, extent });
    }

    let spec = &design.spec;
    let p = design.p as u64;
    let passes = niter.div_ceil(p).max(1);
    let fill = cycles::fill_units(design);
    let h = halo_depth(design);
    let rc = cycles::design_row_cycles(dev, design, nx, nx);
    let unit_cycles = rc * rows_per_unit as u64;
    let unit_cells = (nx * rows_per_unit) as u64;
    let b = batch as u64;

    let shards = slab_partition(extent, cfg.devices);
    let mut per_device = Vec::with_capacity(shards.len());
    let mut wall_per_pass = 0u64;
    let mut read_per_pass = 0u64;
    let mut bytes_per_pass = 0u64;
    let mut msgs_per_pass = 0u64;
    let mut link_per_pass = 0u64;
    let mut exposed_per_pass = 0u64;
    for s in &shards {
        let lo = s.start.saturating_sub(h);
        let hi = (s.end() + h).min(extent);
        let extended = hi - lo;
        // Incoming halos, clamped to what exists on each interior side.
        let up = (s.start - lo) as u64;
        let down = (hi - s.end()) as u64;
        let mut link = 0u64;
        for recv_units in [up, down] {
            if recv_units > 0 {
                link +=
                    cfg.link.transfer_cycles(recv_units * unit_cells * spec.elem_bytes as u64) * b;
                msgs_per_pass += b;
                bytes_per_pass += recv_units * unit_cells * spec.elem_bytes as u64 * b;
            }
        }
        // Interior units don't read incoming halo data; their compute
        // overlaps the exchange.
        let excl = (usize::from(s.start > 0) + usize::from(s.end() < extent)) * h;
        let interior = s.len.saturating_sub(excl) as u64;
        let exposed = link.saturating_sub(interior * unit_cycles * b);
        let pass_cycles =
            (b * extended as u64 + fill) * unit_cycles + design.pipeline_latency_cycles;
        wall_per_pass = wall_per_pass.max(pass_cycles + exposed);
        read_per_pass += b * extended as u64 * unit_cells * spec.ext_read_bytes as u64;
        link_per_pass += link;
        exposed_per_pass += exposed;
        per_device.push(DeviceCost {
            device: s.device,
            owned_start: s.start,
            owned_len: s.len,
            extended_len: extended,
            pass_cycles,
            link_cycles: link,
            exposed_cycles: exposed,
        });
    }

    let total_cycles = passes * wall_per_pass;
    let host_calls = passes * cfg.devices as u64;
    let runtime_s =
        total_cycles as f64 / design.freq_hz + host_calls as f64 * dev.host_call_latency_s;
    let cell_iters = niter * wl.total_cells();
    let write_per_pass = b * extent as u64 * unit_cells * spec.ext_write_bytes as u64;
    let merged = CyclePlan {
        passes,
        cycles_per_pass: wall_per_pass,
        total_cycles,
        host_calls,
        runtime_s,
        ext_read_bytes: passes * read_per_pass,
        ext_write_bytes: passes * write_per_pass,
        logical_bytes: cell_iters * spec.logical_rw_bytes as u64,
        cell_iters,
    };
    Ok(ShardedPlan {
        devices: cfg.devices,
        halo: h,
        merged,
        per_device,
        exchange_bytes_per_pass: bytes_per_pass,
        exchange_messages_per_pass: msgs_per_pass,
        exchange_link_cycles: passes * link_per_pass,
        exchange_exposed_cycles: passes * exposed_per_pass,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_fpga::design::{synthesize, MemKind, Workload};
    use sf_kernels::StencilSpec;

    fn dev() -> FpgaDevice {
        FpgaDevice::u280()
    }

    #[test]
    fn single_device_plan_matches_cycles_plan_exactly() {
        let d = dev();
        for (wl, spec, v, p) in [
            (Workload::D2 { nx: 200, ny: 100, batch: 1 }, StencilSpec::poisson(), 8, 60),
            (Workload::D3 { nx: 48, ny: 48, nz: 48, batch: 1 }, StencilSpec::jacobi(), 8, 12),
        ] {
            let ds = synthesize(&d, &spec, v, p, ExecMode::Baseline, MemKind::Hbm, &wl).unwrap();
            let single = cycles::plan(&d, &ds, &wl, 600);
            let sharded = sharded_plan(&d, &ds, &wl, 600, &MultiConfig::new(1)).unwrap();
            assert_eq!(sharded.merged, single);
            assert_eq!(sharded.exchange_bytes_per_pass, 0);
            assert_eq!(sharded.exchange_exposed_cycles, 0);
            assert_eq!(sharded.per_device.len(), 1);
        }
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        let d = dev();
        let wl = Workload::D2 { nx: 64, ny: 32, batch: 1 };
        let ds =
            synthesize(&d, &StencilSpec::poisson(), 8, 4, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        assert_eq!(sharded_plan(&d, &ds, &wl, 8, &MultiConfig::new(0)), Err(MultiError::NoDevices));
        assert_eq!(
            sharded_plan(&d, &ds, &wl, 8, &MultiConfig::new(33)),
            Err(MultiError::TooManyDevices { devices: 33, extent: 32 })
        );
        let tiled = synthesize(
            &d,
            &StencilSpec::poisson(),
            8,
            4,
            ExecMode::Tiled1D { tile_m: 32 },
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        assert_eq!(
            sharded_plan(&d, &tiled, &wl, 8, &MultiConfig::new(2)),
            Err(MultiError::UnsupportedMode)
        );
    }

    #[test]
    fn sharding_charges_exchange_and_halo_rereads() {
        let d = dev();
        let wl = Workload::D2 { nx: 256, ny: 512, batch: 1 };
        let ds =
            synthesize(&d, &StencilSpec::poisson(), 8, 16, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let single = cycles::plan(&d, &ds, &wl, 320);
        let sp = sharded_plan(&d, &ds, &wl, 320, &MultiConfig::new(4)).unwrap();
        // writes cover the mesh exactly; reads grow by the halo re-reads
        assert_eq!(sp.merged.ext_write_bytes, single.ext_write_bytes);
        assert!(sp.merged.ext_read_bytes > single.ext_read_bytes);
        // halo = p·stages·⌈D/2⌉ = 16; 2 edge shards with 1 interface + 2
        // interior shards with 2 → 6 messages of 16 rows × 256 cells × 4 B
        assert_eq!(sp.halo, 16);
        assert_eq!(sp.exchange_messages_per_pass, 6);
        assert_eq!(sp.exchange_bytes_per_pass, 6 * 16 * 256 * 4);
        // each device streams fewer units, so the pass wall shrinks
        assert!(sp.merged.cycles_per_pass < single.cycles_per_pass);
        // host fans one enqueue per device per pass
        assert_eq!(sp.merged.host_calls, single.host_calls * 4);
    }

    #[test]
    fn slow_link_exposes_exchange_on_critical_path() {
        let d = dev();
        let wl = Workload::D2 { nx: 128, ny: 96, batch: 1 };
        let ds =
            synthesize(&d, &StencilSpec::poisson(), 8, 8, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let fast = MultiConfig { devices: 2, link: LinkModel::aurora() };
        let glacial = MultiConfig {
            devices: 2,
            link: LinkModel { latency_cycles: 1_000_000, bytes_per_cycle: 1 },
        };
        let sp_fast = sharded_plan(&d, &ds, &wl, 64, &fast).unwrap();
        let sp_slow = sharded_plan(&d, &ds, &wl, 64, &glacial).unwrap();
        assert!(sp_slow.exchange_exposed_cycles > 0);
        assert!(sp_slow.merged.cycles_per_pass > sp_fast.merged.cycles_per_pass);
        // exposure never exceeds raw link occupancy
        assert!(sp_slow.exchange_exposed_cycles <= sp_slow.exchange_link_cycles);
    }

    #[test]
    fn wide_shards_hide_fast_link_entirely() {
        // plenty of interior rows: aurora exchange fully overlaps
        let d = dev();
        let wl = Workload::D2 { nx: 256, ny: 4096, batch: 1 };
        let ds =
            synthesize(&d, &StencilSpec::poisson(), 8, 8, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let sp = sharded_plan(&d, &ds, &wl, 64, &MultiConfig::new(2)).unwrap();
        assert_eq!(sp.exchange_exposed_cycles, 0);
        assert!(sp.exchange_link_cycles > 0);
    }

    #[test]
    fn three_d_plans_shard_planes() {
        let d = dev();
        let wl = Workload::D3 { nx: 32, ny: 32, nz: 64, batch: 2 };
        let ds = synthesize(
            &d,
            &StencilSpec::jacobi(),
            8,
            4,
            ExecMode::Batched { b: 2 },
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let sp = sharded_plan(&d, &ds, &wl, 16, &MultiConfig::new(2)).unwrap();
        assert_eq!(sp.per_device.len(), 2);
        // halo = 4 planes of 32×32 f32 cells, two interfaces, two meshes
        assert_eq!(sp.halo, 4);
        assert_eq!(sp.exchange_bytes_per_pass, 2 * 4 * 32 * 32 * 4 * 2);
        assert_eq!(sp.per_device[0].extended_len, 36);
    }
}
