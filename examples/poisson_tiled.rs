//! Spatial blocking for meshes far beyond on-chip memory (§IV-A).
//!
//! A 20000² single-precision mesh is 1.6 GB — the window buffers can hold
//! only a sliver of a row set, so the solver streams overlapped tiles from
//! DDR4. This example reproduces the tiled rows of the paper's Table IV and
//! validates the tiled dataflow numerically on a reduced mesh.
//!
//! ```text
//! cargo run --release --example poisson_tiled
//! ```

use sf_core::prelude::*;
use sf_fpga::design::synthesize;

fn main() {
    let wf = Workflow::u280_vs_v100();
    let spec = StencilSpec::poisson();
    let niter = 100u64;

    println!("Poisson-5pt-2D, spatially blocked, {niter} iterations, V=8 p=60, DDR4\n");
    println!(
        "{:<10} {:>10} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "mesh", "tile M", "tiles", "FPGA ms", "FPGA GB/s", "GPU GB/s", "energy kJ"
    );
    for n in [15_000usize, 20_000] {
        let wl = Workload::D2 { nx: n, ny: n, batch: 1 };
        let gpu = wf.gpu_estimate(&spec, &wl, niter);
        for tile in [1024usize, 4096, 8000] {
            let design = synthesize(
                &wf.device,
                &spec,
                8,
                60,
                ExecMode::Tiled1D { tile_m: tile },
                MemKind::Ddr4,
                &wl,
            )
            .expect("tiled design fits");
            let rep = wf.fpga_estimate(&design, &wl, niter);
            let halo = design.p * spec.order;
            let tiles = n.div_ceil(tile - halo);
            println!(
                "{:<10} {:>10} {:>8} {:>12.1} {:>12.0} {:>12.0} {:>12.3}",
                format!("{n}²"),
                tile,
                tiles,
                rep.runtime_s * 1e3,
                rep.bandwidth_gbs,
                gpu.bandwidth_gbs,
                rep.energy_j / 1e3,
            );
        }
    }

    // numeric validation of the overlapped-tile machinery on a reduced mesh:
    // tile halos, 512-bit alignment, valid-region writeback — all bit-exact
    let wl = Workload::D2 { nx: 1000, ny: 120, batch: 1 };
    let design =
        synthesize(&wf.device, &spec, 8, 16, ExecMode::Tiled1D { tile_m: 256 }, MemKind::Ddr4, &wl)
            .unwrap();
    let solver = PoissonSolver::with_design(wf.device.clone(), design);
    let mesh = Batch2D::<f32>::random(1000, 120, 1, 7, -1.0, 1.0);
    let (_out, rep) = solver.run_validated(&mesh, 32);
    println!(
        "\nnumeric validation: 1000×120 mesh through 256-wide overlapped tiles\n\
         (halo {}, {} passes) — bit-exact vs unblocked golden reference ✓",
        16 * 2,
        rep.passes
    );
}
