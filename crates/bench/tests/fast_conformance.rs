//! Differential conformance for the lane-parallel fast path.
//!
//! For each sampled `(star stencil, mesh, batch, V, p, niter)` point that
//! synthesizes, the fast executors must be bit-identical to the scalar
//! executors and to the golden [`sf_kernels::reference`] solve — the
//! stencil itself is randomized (weights and radius), not just the shape,
//! so the generic-update bit-exactness argument is exercised over the
//! whole kernel family, on widths that deliberately include ragged and
//! sub-lane interiors.
//!
//! The deterministic tests pin the interop surface: batch-parallel
//! telemetry byte-identical across `jobs` × engine, and checkpoint/rollback
//! recovery byte-identical under `--exec scalar` vs `--exec fast`.
//!
//! The quick variants run in the default suite; the `deep_*` variants are
//! `#[ignore]`d 200-case sweeps for the nightly-style
//! `cargo test --release -- --ignored` job.

use proptest::prelude::*;
use sf_fpga::design::{synthesize, ExecMode, MemKind, Workload};
use sf_fpga::{exec2d, exec3d, fast, ExecEngine, FpgaDevice, Recorder};
use sf_kernels::{reference, StarStencil2D, StarStencil3D, StencilOp2D, StencilOp3D};
use sf_mesh::{norms, Batch2D, Batch3D};
use sf_telemetry::{chrome, metrics};

/// Input-mesh seed, independent of the sampled design point.
const INPUT_SEED: u64 = 9_182_736;

/// Vectorization widths worth sampling (paper uses powers of two).
const V_CHOICES: [usize; 4] = [1, 2, 4, 8];

macro_rules! ensure {
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(format!($($fmt)*));
        }
    };
}

/// Build a random axis star from sampled integer weights (eighths, so
/// every weight is exactly representable) and a radius of 1 or 2.
fn star_2d(r: usize, w: [i32; 5]) -> StarStencil2D {
    let f = |i: i32| i as f32 / 8.0;
    let mut pts = Vec::new();
    for d in 1..=r {
        let d = d as i32;
        pts.push((-d, 0, f(w[0]) / d as f32));
        pts.push((d, 0, f(w[1]) / d as f32));
        pts.push((0, -d, f(w[2]) / d as f32));
        pts.push((0, d, f(w[3]) / d as f32));
    }
    pts.push((0, 0, f(w[4])));
    StarStencil2D::new(pts)
}

fn star_3d(r: usize, w: [i32; 4]) -> StarStencil3D {
    let f = |i: i32| i as f32 / 8.0;
    let mut pts = Vec::new();
    for (axis, &wa) in w.iter().enumerate().take(3) {
        for d in 1..=r {
            let d = d as i32;
            let wt = f(wa) / d as f32;
            let off = |s: i32| match axis {
                0 => (s, 0, 0),
                1 => (0, s, 0),
                _ => (0, 0, s),
            };
            let (x, y, z) = off(d);
            pts.push((x, y, z, wt));
            let (x, y, z) = off(-d);
            pts.push((x, y, z, wt));
        }
    }
    pts.push((0, 0, 0, f(w[3])));
    StarStencil3D::new(pts)
}

/// One 2D fast-vs-scalar differential check on a random star stencil.
/// `Ok(false)` means the sampled point does not synthesize (rejected,
/// resampled); `Err` is a genuine conformance failure.
#[allow(clippy::too_many_arguments)]
fn check_2d(
    k: &StarStencil2D,
    nx: usize,
    ny: usize,
    batch: usize,
    v: usize,
    p: usize,
    niter: usize,
) -> Result<bool, String> {
    let dev = FpgaDevice::u280();
    let wl = Workload::D2 { nx, ny, batch };
    let mode = if batch > 1 { ExecMode::Batched { b: batch } } else { ExecMode::Baseline };
    let Ok(ds) = synthesize(&dev, &k.spec(), v, p, mode, MemKind::Hbm, &wl) else {
        return Ok(false);
    };
    let tag = format!("star r={} V={v} p={p} {nx}x{ny} batch={batch} iters={niter}", k.radius());
    let input = Batch2D::<f32>::random(nx, ny, batch, INPUT_SEED, -1.0, 1.0);
    let golden = reference::run_batch_2d(k, &input, niter);

    let (scalar_out, scalar_rep) =
        exec2d::simulate_2d(&dev, &ds, std::slice::from_ref(k), &input, niter);
    ensure!(
        norms::bit_equal(scalar_out.as_slice(), golden.as_slice()),
        "scalar 2D output differs from reference ({tag})"
    );
    let (fast_out, fast_rep) =
        fast::simulate_2d_fast(&dev, &ds, std::slice::from_ref(k), &input, niter);
    ensure!(
        norms::bit_equal(fast_out.as_slice(), scalar_out.as_slice()),
        "fast 2D output differs from scalar ({tag})"
    );
    ensure!(
        fast_rep.total_cycles == scalar_rep.total_cycles,
        "2D cycle reports diverge across engines: {} vs {} ({tag})",
        fast_rep.total_cycles,
        scalar_rep.total_cycles
    );

    // Batch engine: every (engine, jobs) combination must agree byte for
    // byte — outputs, cycle report and telemetry.
    let mut runs = Vec::new();
    for engine in [ExecEngine::Scalar, ExecEngine::Fast] {
        for jobs in [1usize, 3] {
            let mut rec = Recorder::enabled(ds.freq_mhz());
            let (out, rep) = fast::simulate_batch_2d_parallel_exec(
                engine,
                &dev,
                &ds,
                std::slice::from_ref(k),
                &input,
                niter,
                jobs,
                &mut rec,
            );
            runs.push((engine, jobs, out, rep, rec));
        }
    }
    let (_, _, out0, rep0, rec0) = &runs[0];
    ensure!(
        norms::bit_equal(out0.as_slice(), golden.as_slice()),
        "batch 2D output differs from reference ({tag})"
    );
    for (engine, jobs, out, rep, rec) in &runs[1..] {
        let case = format!("engine={engine} jobs={jobs} ({tag})");
        ensure!(
            norms::bit_equal(out.as_slice(), out0.as_slice()),
            "batch 2D output diverges: {case}"
        );
        ensure!(rep.total_cycles == rep0.total_cycles, "batch 2D cycles diverge: {case}");
        ensure!(
            chrome::to_chrome_json(rec) == chrome::to_chrome_json(rec0),
            "batch 2D Chrome traces diverge: {case}"
        );
        ensure!(
            metrics::to_metrics_json(rec) == metrics::to_metrics_json(rec0),
            "batch 2D metrics JSON diverges: {case}"
        );
    }
    Ok(true)
}

/// 3D counterpart of [`check_2d`].
#[allow(clippy::too_many_arguments)]
fn check_3d(
    k: &StarStencil3D,
    nx: usize,
    ny: usize,
    nz: usize,
    batch: usize,
    v: usize,
    p: usize,
    niter: usize,
) -> Result<bool, String> {
    let dev = FpgaDevice::u280();
    let wl = Workload::D3 { nx, ny, nz, batch };
    let mode = if batch > 1 { ExecMode::Batched { b: batch } } else { ExecMode::Baseline };
    let Ok(ds) = synthesize(&dev, &k.spec(), v, p, mode, MemKind::Hbm, &wl) else {
        return Ok(false);
    };
    let tag =
        format!("star r={} V={v} p={p} {nx}x{ny}x{nz} batch={batch} iters={niter}", k.radius());
    let input = Batch3D::<f32>::random(nx, ny, nz, batch, INPUT_SEED, -1.0, 1.0);
    let golden = reference::run_batch_3d(k, &input, niter);

    let (scalar_out, scalar_rep) =
        exec3d::simulate_3d(&dev, &ds, std::slice::from_ref(k), &input, niter);
    ensure!(
        norms::bit_equal(scalar_out.as_slice(), golden.as_slice()),
        "scalar 3D output differs from reference ({tag})"
    );
    let (fast_out, fast_rep) =
        fast::simulate_3d_fast(&dev, &ds, std::slice::from_ref(k), &input, niter);
    ensure!(
        norms::bit_equal(fast_out.as_slice(), scalar_out.as_slice()),
        "fast 3D output differs from scalar ({tag})"
    );
    ensure!(
        fast_rep.total_cycles == scalar_rep.total_cycles,
        "3D cycle reports diverge across engines ({tag})"
    );

    let mut rec_s = Recorder::enabled(ds.freq_mhz());
    let (out_s, rep_s) = fast::simulate_batch_3d_parallel_exec(
        ExecEngine::Scalar,
        &dev,
        &ds,
        std::slice::from_ref(k),
        &input,
        niter,
        1,
        &mut rec_s,
    );
    let mut rec_f = Recorder::enabled(ds.freq_mhz());
    let (out_f, rep_f) = fast::simulate_batch_3d_parallel_exec(
        ExecEngine::Fast,
        &dev,
        &ds,
        std::slice::from_ref(k),
        &input,
        niter,
        3,
        &mut rec_f,
    );
    ensure!(
        norms::bit_equal(out_s.as_slice(), golden.as_slice()),
        "batch 3D output differs from reference ({tag})"
    );
    ensure!(
        norms::bit_equal(out_f.as_slice(), out_s.as_slice()),
        "batch 3D fast/jobs=3 output differs from scalar/jobs=1 ({tag})"
    );
    ensure!(rep_f.total_cycles == rep_s.total_cycles, "batch 3D cycles diverge ({tag})");
    ensure!(
        chrome::to_chrome_json(&rec_f) == chrome::to_chrome_json(&rec_s),
        "batch 3D Chrome traces diverge across engine x jobs ({tag})"
    );
    ensure!(
        metrics::to_metrics_json(&rec_f) == metrics::to_metrics_json(&rec_s),
        "batch 3D metrics JSON diverges across engine x jobs ({tag})"
    );
    Ok(true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn quick_fast_conformance_2d(
        r in 1usize..3,
        w0 in -8i32..9,
        w1 in -8i32..9,
        w2 in -8i32..9,
        w3 in -8i32..9,
        w4 in -8i32..9,
        nx in 4usize..40,
        ny in 6usize..24,
        batch in 1usize..4,
        vi in 0usize..4,
        p in 1usize..5,
        niter in 1usize..4,
    ) {
        let k = star_2d(r, [w0, w1, w2, w3, w4]);
        let res = check_2d(&k, nx, ny, batch, V_CHOICES[vi], p, niter);
        prop_assert!(res.is_ok(), "{}", res.as_ref().err().cloned().unwrap_or_default());
        prop_assume!(matches!(res, Ok(true)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn quick_fast_conformance_3d(
        r in 1usize..3,
        w0 in -8i32..9,
        w1 in -8i32..9,
        w2 in -8i32..9,
        w3 in -8i32..9,
        nx in 4usize..20,
        ny in 4usize..10,
        nz in 4usize..10,
        batch in 1usize..3,
        vi in 0usize..4,
        p in 1usize..4,
        niter in 1usize..3,
    ) {
        let k = star_3d(r, [w0, w1, w2, w3]);
        let res = check_3d(&k, nx, ny, nz, batch, V_CHOICES[vi], p, niter);
        prop_assert!(res.is_ok(), "{}", res.as_ref().err().cloned().unwrap_or_default());
        prop_assume!(matches!(res, Ok(true)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Nightly-depth sweep: 200 feasible 2D star designs fast vs scalar.
    #[test]
    #[ignore]
    fn deep_fast_conformance_2d(
        r in 1usize..3,
        w0 in -8i32..9,
        w1 in -8i32..9,
        w2 in -8i32..9,
        w3 in -8i32..9,
        w4 in -8i32..9,
        nx in 4usize..40,
        ny in 6usize..24,
        batch in 1usize..4,
        vi in 0usize..4,
        p in 1usize..5,
        niter in 1usize..4,
    ) {
        let k = star_2d(r, [w0, w1, w2, w3, w4]);
        let res = check_2d(&k, nx, ny, batch, V_CHOICES[vi], p, niter);
        prop_assert!(res.is_ok(), "{}", res.as_ref().err().cloned().unwrap_or_default());
        prop_assume!(matches!(res, Ok(true)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Nightly-depth sweep: 200 feasible 3D star designs fast vs scalar.
    #[test]
    #[ignore]
    fn deep_fast_conformance_3d(
        r in 1usize..3,
        w0 in -8i32..9,
        w1 in -8i32..9,
        w2 in -8i32..9,
        w3 in -8i32..9,
        nx in 4usize..20,
        ny in 4usize..10,
        nz in 4usize..10,
        batch in 1usize..3,
        vi in 0usize..4,
        p in 1usize..4,
        niter in 1usize..3,
    ) {
        let k = star_3d(r, [w0, w1, w2, w3]);
        let res = check_3d(&k, nx, ny, nz, batch, V_CHOICES[vi], p, niter);
        prop_assert!(res.is_ok(), "{}", res.as_ref().err().cloned().unwrap_or_default());
        prop_assume!(matches!(res, Ok(true)));
    }
}

// ---------------------------------------------------------------------------
// Recovery interop: checkpoint/rollback byte-identical across engines.
// ---------------------------------------------------------------------------

fn rollback_cfg(every: usize) -> sf_fpga::RecoveryConfig {
    sf_fpga::RecoveryConfig {
        policy: sf_fpga::RecoveryPolicy::Rollback { max_retries: 3 },
        checkpoint_every: every,
        ..sf_fpga::RecoveryConfig::default()
    }
}

#[test]
fn rollback_recovery_2d_is_engine_and_jobs_invariant() {
    use sf_fpga::{FaultKind, FaultPlan, RetryPolicy};
    use sf_kernels::{Poisson2D, StencilSpec};
    let dev = FpgaDevice::u280();
    let wl = Workload::D2 { nx: 24, ny: 12, batch: 3 };
    let ds = synthesize(
        &dev,
        &StencilSpec::poisson(),
        8,
        2,
        ExecMode::Batched { b: 3 },
        MemKind::Hbm,
        &wl,
    )
    .unwrap();
    let batch = Batch2D::<f32>::random(24, 12, 3, 11, -1.0, 1.0);
    let plan = FaultPlan::single(99, FaultKind::BitFlip, 200_000);
    let run = |engine: ExecEngine, jobs: usize| {
        let mut rec = Recorder::disabled();
        fast::simulate_batch_2d_recoverable_exec(
            engine,
            &dev,
            &ds,
            &[Poisson2D],
            &batch,
            8,
            &plan,
            &RetryPolicy::default(),
            &rollback_cfg(2),
            jobs,
            &mut rec,
        )
        .unwrap()
    };
    let (o0, r0, s0) = run(ExecEngine::Scalar, 1);
    for (engine, jobs) in [(ExecEngine::Scalar, 4), (ExecEngine::Fast, 1), (ExecEngine::Fast, 4)] {
        let (o, r, s) = run(engine, jobs);
        assert!(
            norms::bit_equal(o.as_slice(), o0.as_slice()),
            "outputs diverge at engine={engine} jobs={jobs}"
        );
        assert_eq!(s, s0, "recovery stats diverge at engine={engine} jobs={jobs}");
        assert_eq!(
            r.total_cycles, r0.total_cycles,
            "cycles diverge at engine={engine} jobs={jobs}"
        );
    }
    // and the recovered answer is the right one
    for i in 0..3 {
        let expect = reference::run_2d(&Poisson2D, &batch.mesh(i), 8);
        assert!(norms::bit_equal(o0.mesh(i).as_slice(), expect.as_slice()), "mesh {i}");
    }
    assert!(s0.rollbacks > 0 || s0.sdc_detected == 0, "plan must exercise the rollback path");
}

#[test]
fn rollback_recovery_3d_is_engine_invariant() {
    use sf_fpga::{FaultInjector, FaultKind, FaultPlan, RetryPolicy};
    use sf_kernels::{Jacobi3D, StencilSpec};
    let dev = FpgaDevice::u280();
    let wl = Workload::D3 { nx: 16, ny: 12, nz: 10, batch: 1 };
    let ds = synthesize(&dev, &StencilSpec::jacobi(), 8, 3, ExecMode::Baseline, MemKind::Hbm, &wl)
        .unwrap();
    let k = Jacobi3D::smoothing();
    let input = Batch3D::<f32>::random(16, 12, 10, 1, 11, -1.0, 1.0);
    let plan = FaultPlan::single(7, FaultKind::BitFlip, 1_000_000);
    let run = |engine: ExecEngine| {
        let mut inj = FaultInjector::new(plan);
        let mut rec = Recorder::enabled(ds.freq_mhz());
        let out = fast::simulate_3d_recoverable_exec(
            engine,
            &dev,
            &ds,
            &[k],
            &input,
            6,
            &mut inj,
            &RetryPolicy::default(),
            &rollback_cfg(2),
            &mut rec,
        )
        .unwrap();
        (out, metrics::to_metrics_json(&rec))
    };
    let ((o_s, rep_s, st_s), m_s) = run(ExecEngine::Scalar);
    let ((o_f, rep_f, st_f), m_f) = run(ExecEngine::Fast);
    assert!(norms::bit_equal(o_s.as_slice(), o_f.as_slice()));
    assert_eq!(st_s, st_f);
    assert_eq!(rep_s.total_cycles, rep_f.total_cycles);
    assert_eq!(m_s, m_f, "recovery telemetry must be byte-identical across engines");
    assert!(st_s.sdc_detected > 0, "the saturation bit-flip must trip the ABFT check");
    let expect = reference::run_3d(&k, &input.mesh(0), 6);
    assert!(norms::bit_equal(o_s.mesh(0).as_slice(), expect.as_slice()));
}
