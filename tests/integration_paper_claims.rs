//! The paper's qualitative claims, asserted end-to-end against the
//! simulator + models. These are the *shape* results the reproduction must
//! preserve even where absolute numbers differ from the authors' testbed:
//!
//! 1. Baseline/batched Poisson-2D: FPGA ≥ GPU (Fig. 3a/3b).
//! 2. Tiled Poisson-2D on huge meshes: FPGA > GPU bandwidth (Fig. 3c).
//! 3. Jacobi-3D large baseline/batched: GPU wins runtime, FPGA wins energy
//!    (Fig. 4, Table V).
//! 4. Jacobi-3D tiled: GPU clearly faster (strided-transfer penalty), FPGA
//!    still more energy-efficient (Fig. 4c, Table V).
//! 5. RTM: FPGA matches or marginally beats the GPU, with ≥ 2× energy
//!    savings (Fig. 5, Table VI, abstract).
//! 6. Batching improves small-mesh throughput dramatically on both
//!    platforms (§IV-B).
//! 7. The predictive model achieves the ±15 % / >85 % accuracy claim.

use sf_core::prelude::*;
use sf_fpga::design::synthesize;
use sf_model::accuracy;

fn wf() -> Workflow {
    Workflow::u280_vs_v100()
}

#[test]
fn claim1_poisson_batched_fpga_wins() {
    let wf = wf();
    let spec = StencilSpec::poisson();
    for (nx, ny) in [(200usize, 100usize), (300, 300), (400, 400)] {
        for b in [100usize, 1000] {
            let wl = Workload::D2 { nx, ny, batch: b };
            let cmp = wf.compare(&spec, &wl, 60_000).unwrap();
            assert!(
                cmp.speedup() > 1.0,
                "paper Fig. 3b: FPGA must beat GPU on {nx}x{ny} {b}B (speedup {:.2})",
                cmp.speedup()
            );
        }
    }
}

#[test]
fn claim2_poisson_tiled_fpga_higher_bandwidth() {
    let wf = wf();
    let spec = StencilSpec::poisson();
    let wl = Workload::D2 { nx: 15_000, ny: 15_000, batch: 1 };
    let design = synthesize(
        &wf.device,
        &spec,
        8,
        60,
        ExecMode::Tiled1D { tile_m: 8000 },
        MemKind::Ddr4,
        &wl,
    )
    .unwrap();
    let fpga = wf.fpga_estimate(&design, &wl, 100);
    let gpu = wf.gpu_estimate(&spec, &wl, 100);
    // paper Table IV: 905 vs 607 GB/s
    assert!(
        fpga.bandwidth_gbs > gpu.bandwidth_gbs,
        "FPGA {:.0} vs GPU {:.0} GB/s",
        fpga.bandwidth_gbs,
        gpu.bandwidth_gbs
    );
    assert!(fpga.energy_j < gpu.energy_j);
}

#[test]
fn claim3_jacobi_large_gpu_wins_runtime_fpga_wins_energy() {
    let wf = wf();
    let spec = StencilSpec::jacobi();
    // paper Table V: 200³+ baselines and batched runs favour the V100
    let wl = Workload::D3 { nx: 250, ny: 250, nz: 250, batch: 1 };
    let design =
        synthesize(&wf.device, &spec, 8, 29, ExecMode::Baseline, MemKind::Hbm, &wl).unwrap();
    let fpga = wf.fpga_estimate(&design, &wl, 29_000);
    let gpu = wf.gpu_estimate(&spec, &wl, 29_000);
    assert!(
        gpu.runtime_s < fpga.runtime_s,
        "paper Fig. 4a: GPU must win large Jacobi (GPU {:.2}s vs FPGA {:.2}s)",
        gpu.runtime_s,
        fpga.runtime_s
    );
    assert!(fpga.energy_j < gpu.energy_j, "paper Table V: FPGA must stay more energy-efficient");
}

#[test]
fn claim4_jacobi_tiled_strided_penalty() {
    let wf = wf();
    let spec = StencilSpec::jacobi();
    let wl = Workload::D3 { nx: 600, ny: 600, nz: 600, batch: 1 };
    let design = synthesize(
        &wf.device,
        &spec,
        64,
        3,
        ExecMode::Tiled2D { tile_m: 640, tile_n: 640 },
        MemKind::Hbm,
        &wl,
    )
    .unwrap();
    let fpga = wf.fpga_estimate(&design, &wl, 120);
    let gpu = wf.gpu_estimate(&spec, &wl, 120);
    // paper: "the resulting FPGA design … was about 40% slower than the GPU"
    assert!(
        fpga.runtime_s > gpu.runtime_s * 1.1,
        "GPU must clearly win tiled 3D (FPGA {:.3}s vs GPU {:.3}s)",
        fpga.runtime_s,
        gpu.runtime_s
    );
    // "the FPGA was again more energy efficient … consuming about 40–50% less"
    assert!(
        fpga.energy_j < gpu.energy_j,
        "FPGA {:.3} kJ vs GPU {:.3} kJ",
        fpga.energy_j / 1e3,
        gpu.energy_j / 1e3
    );
}

#[test]
fn claim5_rtm_parity_and_2x_energy() {
    let wf = wf();
    let spec = StencilSpec::rtm();
    for &(nx, ny, nz) in &[(32usize, 32usize, 32usize), (50, 50, 50)] {
        let wl = Workload::D3 { nx, ny, nz, batch: 40 };
        let cmp = wf.compare(&spec, &wl, 180).unwrap();
        // "matching or marginally better performing than the GPU": allow ±60 %
        assert!(
            (0.4..2.5).contains(&cmp.speedup()),
            "RTM {nx}³ 40B speedup {:.2} out of parity band",
            cmp.speedup()
        );
        // "consuming 2× less energy"
        assert!(
            cmp.energy_ratio() > 1.5,
            "RTM {nx}³ 40B energy ratio {:.2} (paper: >2)",
            cmp.energy_ratio()
        );
    }
}

#[test]
fn claim6_batching_lifts_both_platforms() {
    let wf = wf();
    let spec = StencilSpec::poisson();
    let solo = Workload::D2 { nx: 200, ny: 100, batch: 1 };
    let batched = Workload::D2 { nx: 200, ny: 100, batch: 1000 };
    let c1 = wf.compare(&spec, &solo, 60_000).unwrap();
    let c2 = wf.compare(&spec, &batched, 60_000).unwrap();
    // per-mesh throughput must rise on both platforms
    let fpga_gain = (c1.fpga.runtime_s) / (c2.fpga.runtime_s / 1000.0);
    let gpu_gain = (c1.gpu.runtime_s) / (c2.gpu.runtime_s / 1000.0);
    assert!(fpga_gain > 1.2, "FPGA batching gain {fpga_gain:.2}");
    assert!(gpu_gain > 5.0, "GPU batching gain {gpu_gain:.2} (GPU was unsaturated)");
    // and the GPU gains *more* — exactly why the paper batches the GPU
    // baseline before comparing ("The batching of 2D meshes as in [27]
    // improves GPU performance significantly and offers a closer comparison")
    assert!(gpu_gain > fpga_gain);
}

#[test]
fn claim7_model_accuracy() {
    let stats =
        accuracy::accuracy_suite(&FpgaDevice::u280()).expect("paper suite is feasible on the U280");
    let frac = stats.frac_within(15.0, PredictionLevel::Extended);
    assert!(frac >= 0.85, "abstract claim: >85% of configs within ±15% (got {:.0}%)", frac * 100.0);
}

#[test]
fn table2_reproduction() {
    // Freq (±10 MHz), G_dsp (exact for Poisson/Jacobi), p actual (exact)
    let wf = wf();
    let cases: [(StencilSpec, usize, usize, f64, Workload); 3] = [
        (StencilSpec::poisson(), 8, 60, 250.0, Workload::D2 { nx: 400, ny: 400, batch: 1 }),
        (StencilSpec::jacobi(), 8, 29, 246.0, Workload::D3 { nx: 300, ny: 300, nz: 300, batch: 1 }),
        (StencilSpec::rtm(), 1, 3, 261.0, Workload::D3 { nx: 64, ny: 64, nz: 64, batch: 1 }),
    ];
    for (spec, v, p, paper_mhz, wl) in cases {
        let d = synthesize(&wf.device, &spec, v, p, ExecMode::Baseline, MemKind::Hbm, &wl)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.app));
        assert!(
            (d.freq_mhz() - paper_mhz).abs() <= 10.0,
            "{}: {:.0} MHz vs paper {paper_mhz}",
            spec.app,
            d.freq_mhz()
        );
    }
    assert_eq!(StencilSpec::poisson().gdsp(), 14);
    assert_eq!(StencilSpec::jacobi().gdsp(), 33);
}

#[test]
fn claim8_profile_divergence_within_15pct_for_all_apps() {
    // The profiler emits a predicted-vs-simulated divergence on every run;
    // for the paper's three applications it must sit inside the ±15 %
    // model-accuracy envelope, and the recorder's stall attribution must
    // agree with the static plan trace class for class.
    let wf = wf();
    let cases: [(StencilSpec, Workload, u64); 3] = [
        (StencilSpec::poisson(), Workload::D2 { nx: 200, ny: 100, batch: 1 }, 100),
        (StencilSpec::jacobi(), Workload::D3 { nx: 64, ny: 64, nz: 64, batch: 1 }, 10),
        (StencilSpec::rtm(), Workload::D3 { nx: 32, ny: 32, nz: 32, batch: 1 }, 10),
    ];
    for (spec, wl, niter) in cases {
        let pr = wf.profile(&spec, &wl, niter).unwrap();
        let d = pr.recorder.divergence().expect("divergence emitted on every run");
        assert!(d.within(15.0), "{}: {} (behavioral: {})", spec.app, d.summary(), pr.behavioral);
        let got = pr.recorder.stall_breakdown();
        let expect = pr.trace.stall_breakdown();
        assert_eq!(got.compute_cycles, expect.compute_cycles, "{}", spec.app);
        assert_eq!(got.memory_cycles, expect.memory_cycles, "{}", spec.app);
    }
}
