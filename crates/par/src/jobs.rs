//! Worker-count resolution shared by every CLI entry point.
//!
//! Precedence: explicit `--jobs N` flag, then the `SF_JOBS` environment
//! variable, then the machine's available parallelism. The result only
//! affects wall-clock time — every parallel path in the workspace is
//! deterministic in its output regardless of the worker count.

/// Worker threads the machine can usefully run (≥ 1).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// `SF_JOBS` environment override, if set to a positive integer.
fn env_jobs() -> Option<usize> {
    std::env::var("SF_JOBS").ok().and_then(|s| s.trim().parse::<usize>().ok()).filter(|&n| n > 0)
}

/// Resolve the worker count: `flag` (a `--jobs N` CLI value) wins, then
/// `SF_JOBS`, then [`available_jobs`]. A `flag` of `Some(0)` is treated as
/// unset (CLI validation rejects it before it gets here anyway).
pub fn resolve_jobs(flag: Option<usize>) -> usize {
    flag.filter(|&n| n > 0).or_else(env_jobs).unwrap_or_else(available_jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_is_positive() {
        assert!(available_jobs() >= 1);
    }

    #[test]
    fn flag_wins() {
        assert_eq!(resolve_jobs(Some(3)), 3);
    }

    #[test]
    fn zero_flag_falls_through() {
        // With no SF_JOBS in the test environment this resolves to the
        // machine's parallelism, which is at least 1.
        assert!(resolve_jobs(Some(0)) >= 1);
        assert!(resolve_jobs(None) >= 1);
    }
}
