//! Ablation benches: design-choice sweeps DESIGN.md calls out — number
//! formats, device scaling, quantized vs continuous tile selection, and the
//! fused multi-stage 2D wave pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sf_bench::experiments;
use sf_fpga::design::{synthesize, ExecMode, MemKind, Workload};
use sf_fpga::{window::run_chain_2d, FpgaDevice};
use sf_kernels::ops::NumberFormat;
use sf_kernels::{wave2d, StencilSpec};
use sf_model::blocking;

fn bench_ablation_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_experiments");
    g.sample_size(10);
    g.bench_function("precision_sweep", |b| b.iter(experiments::ablation_precision));
    g.bench_function("overhead_decomposition", |b| b.iter(experiments::ablation_overheads));
    g.bench_function("device_scaling", |b| b.iter(experiments::ablation_device_scaling));
    g.bench_function("energy_summary", |b| b.iter(experiments::energy_summary));
    g.finish();
}

fn bench_format_synthesis(c: &mut Criterion) {
    let mut g = c.benchmark_group("format_synthesis");
    let d = FpgaDevice::u280();
    let wl = Workload::D2 { nx: 400, ny: 400, batch: 1 };
    for fmt in [NumberFormat::Fp32, NumberFormat::Fp16, NumberFormat::Fixed18] {
        let spec = StencilSpec::poisson().with_format(fmt);
        g.bench_with_input(BenchmarkId::new("poisson", format!("{fmt}")), &spec, |b, s| {
            b.iter(|| synthesize(&d, s, 8, 40, ExecMode::Baseline, MemKind::Hbm, &wl).unwrap())
        });
    }
    g.finish();
}

fn bench_tile_selection(c: &mut Criterion) {
    let d = FpgaDevice::u280();
    c.bench_function("recommended_tile_2d", |b| {
        b.iter(|| blocking::recommended_tile_2d(&d, &StencilSpec::poisson(), 8, 60))
    });
    c.bench_function("recommended_tile_3d", |b| {
        b.iter(|| blocking::recommended_tile_3d(&d, &StencilSpec::jacobi(), 64, 3))
    });
    c.bench_function("blocking_plan_rtm", |b| {
        b.iter(|| blocking::blocking_plan(&d, &StencilSpec::rtm(), 1))
    });
}

fn bench_wave2d_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("wave2d_fused_chain");
    let m = wave2d::standing_wave(128, 96);
    let (kick, drift) = wave2d::pipeline(wave2d::WaveParams::default());
    // chain of 3 fused iterations = 6 alternating stages: use the generic
    // enum trick is test-only, so bench kick-only and kick+drift via two runs
    g.throughput(Throughput::Elements((m.len() * 3) as u64));
    g.bench_function("kick_x3", |b| {
        let chain = vec![kick; 3];
        b.iter(|| run_chain_2d(&chain, 128, 96, 96, m.as_slice().chunks(128).map(|r| r.to_vec())))
    });
    g.bench_function("drift_x3", |b| {
        let chain = vec![drift; 3];
        b.iter(|| run_chain_2d(&chain, 128, 96, 96, m.as_slice().chunks(128).map(|r| r.to_vec())))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ablation_experiments,
    bench_format_synthesis,
    bench_tile_selection,
    bench_wave2d_chain
);
criterion_main!(benches);
