//! A fused two-stage 2D wave solver — multiple stencil loops in 2D.
//!
//! The paper's contribution explicitly covers applications with "multiple
//! stencil loops within a single time-step iterative loop"; RTM exercises
//! that in 3D. This module provides the 2D counterpart: a damped acoustic
//! wave integrated with a kick–drift (semi-implicit Euler) scheme,
//!
//! ```text
//! stage 1 (kick):  v' = γ·v + c·∇₅²u         (radius-1 stencil)
//! stage 2 (drift): u' = u + dt·v'            (pointwise)
//! ```
//!
//! fused exactly like RTM: the state `(u, v)` travels as a packed 2-lane
//! stream through chained window buffers, one pipeline stage per loop. The
//! drift stage has radius 0 — it exercises the degenerate window (ring of
//! one row) in the simulator.

use crate::op2d::StencilOp2D;
use crate::ops::{NumberFormat, OpCount};
use crate::spec::{AppId, StencilSpec};
use sf_mesh::{Mesh2D, VecN};

/// The packed stream element: lane 0 = `u` (displacement), lane 1 = `v`
/// (velocity).
pub type WaveState = VecN<2>;

/// Physics parameters of the wave system.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct WaveParams {
    /// Courant-like coupling `c = (dt·speed/dx)²`; stable for `c ≤ 0.5`.
    pub c: f32,
    /// Velocity damping factor `γ ∈ (0, 1]`.
    pub gamma: f32,
    /// Time step for the drift stage.
    pub dt: f32,
}

impl Default for WaveParams {
    fn default() -> Self {
        WaveParams { c: 0.25, gamma: 0.999, dt: 1.0 }
    }
}

/// Stage 1: the radius-1 kick updating `v` from the 5-point Laplacian of `u`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct WaveKick {
    /// Physics parameters.
    pub params: WaveParams,
}

impl StencilOp2D<WaveState> for WaveKick {
    fn radius(&self) -> usize {
        1
    }

    #[inline]
    fn apply<F: Fn(i32, i32) -> WaveState>(&self, at: F) -> WaveState {
        let ctr = at(0, 0);
        let u = ctr.0[0];
        let lap = ((at(-1, 0).0[0] + at(1, 0).0[0]) + at(0, -1).0[0]) + at(0, 1).0[0] - 4.0 * u;
        let v = self.params.gamma * ctr.0[1] + self.params.c * lap;
        VecN::new([u, v])
    }

    /// Boundary: clamp `v` to zero (rigid wall) so waves reflect.
    fn on_boundary(&self, center: WaveState) -> WaveState {
        VecN::new([center.0[0], 0.0])
    }
}

/// Stage 2: the pointwise drift updating `u` from the fresh `v`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct WaveDrift {
    /// Physics parameters.
    pub params: WaveParams,
}

impl StencilOp2D<WaveState> for WaveDrift {
    fn radius(&self) -> usize {
        0
    }

    #[inline]
    fn apply<F: Fn(i32, i32) -> WaveState>(&self, at: F) -> WaveState {
        let ctr = at(0, 0);
        VecN::new([ctr.0[0] + self.params.dt * ctr.0[1], ctr.0[1]])
    }
}

/// The two fused stages of one time step.
pub fn pipeline(params: WaveParams) -> (WaveKick, WaveDrift) {
    (WaveKick { params }, WaveDrift { params })
}

/// Arithmetic ops of one fused time step (kick + drift).
pub const fn fused_op_count() -> OpCount {
    // kick: 4 adds (3 sum + sub of 4u) + muls (4u, γv, c·lap) = 3 muls, plus
    // the v-accumulate add → adds 5, muls 3; drift: 1 add, 1 mul
    OpCount::new(6, 4, 0)
}

/// The model/DSE descriptor: 2-lane (8 B) elements, two fused stages.
pub const fn spec() -> StencilSpec {
    StencilSpec {
        app: AppId::Custom,
        dims: 2,
        order: 2,
        elem_bytes: 8,
        window_elem_bytes: 8,
        stages: 2,
        ops: fused_op_count(),
        logical_rw_bytes: 16,
        ext_read_bytes: 8,
        ext_write_bytes: 8,
        format: NumberFormat::Fp32,
    }
}

/// A standing-wave workload: a sine bump in `u`, zero velocity.
pub fn standing_wave(nx: usize, ny: usize) -> Mesh2D<WaveState> {
    use std::f32::consts::PI;
    Mesh2D::from_fn(nx, ny, |x, y| {
        let sx = (PI * x as f32 / (nx - 1) as f32).sin();
        let sy = (PI * y as f32 / (ny - 1) as f32).sin();
        VecN::new([sx * sy, 0.0])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sf_mesh::norms;

    #[test]
    fn zero_state_is_fixed_point() {
        let (k, d) = pipeline(WaveParams::default());
        let m = Mesh2D::<WaveState>::zeros(12, 12);
        let out = reference::run_2d(&d, &reference::run_2d(&k, &m, 1), 1);
        assert_eq!(norms::max_norm_2d(&out), 0.0);
    }

    #[test]
    fn wave_oscillates_and_stays_bounded() {
        let prm = WaveParams::default();
        let (kick, drift) = pipeline(prm);
        let mut cur = standing_wave(24, 24);
        let initial = norms::max_norm_2d(&cur);
        let mut min_u = f32::INFINITY;
        for _ in 0..120 {
            cur = reference::step_2d(&kick, &cur);
            cur = reference::step_2d(&drift, &cur);
            let center = cur.get(12, 12).0[0];
            min_u = min_u.min(center);
            assert!(cur.all_finite());
            assert!(
                norms::max_norm_2d(&cur) < initial * 3.0,
                "wave must stay bounded under damping"
            );
        }
        // a standing wave swings through negative displacement
        assert!(min_u < -0.1, "center never swung negative: {min_u}");
    }

    #[test]
    fn drift_is_pointwise() {
        let d = WaveDrift { params: WaveParams::default() };
        assert_eq!(d.radius(), 0);
        let out = d.apply(|dx, dy| {
            assert_eq!((dx, dy), (0, 0), "drift must not read neighbors");
            VecN::new([1.0, 2.0])
        });
        assert_eq!(out, VecN::new([3.0, 2.0]));
    }

    #[test]
    fn kick_boundary_zeroes_velocity() {
        let k = WaveKick { params: WaveParams::default() };
        let b = k.on_boundary(VecN::new([0.7, 5.0]));
        assert_eq!(b, VecN::new([0.7, 0.0]));
    }

    #[test]
    fn spec_shape() {
        let s = spec();
        assert_eq!(s.stages, 2);
        assert_eq!(s.halo_order(), 4);
        assert_eq!(s.gdsp(), 6 * 2 + 4 * 3);
        assert_eq!(s.elem_bytes, 8);
    }
}
