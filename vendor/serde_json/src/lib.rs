//! Vendored minimal JSON serializer/deserializer over the in-tree `serde`
//! facade's [`Value`] model. Supports the full JSON grammar (objects,
//! arrays, strings with escapes, numbers, booleans, null) — enough to
//! round-trip every type this workspace derives.

pub use serde::{Error, Value};

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(t: &T) -> Value {
    t.to_value()
}

/// Rebuild a deserializable type from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v)
}

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(t: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &t.to_value(), None, 0);
    Ok(out)
}

/// Serialize to a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(t: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &t.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into a deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse_value(s)?)
}

/// Parse a JSON string into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { b: s.as_bytes(), i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.i)));
    }
    Ok(v)
}

// ---- writer ----------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Inf; match serde_json's lossy `null`.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep integral floats visibly floating-point ("1.0", not "1").
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), Error> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", c as char, self.i)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.i)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.i))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.i))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.i))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.i;
            while let Some(&c) = self.b.get(self.i) {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.i += 1;
            }
            out.push_str(
                core::str::from_utf8(&self.b[start..self.i])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.i += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(Error::new(format!("bad escape at byte {}", self.i))),
                    }
                    self.i += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    /// Read 4 hex digits (caller has consumed the `\u` prefix); leaves
    /// `self.i` past the digits.
    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .and_then(|c| (c as char).to_digit(16))
                .ok_or_else(|| Error::new("bad \\u escape"))?;
            v = v * 16 + c;
            self.i += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.i += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            float = true;
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = core::str::from_utf8(&self.b[start..self.i]).unwrap();
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<i64>("-9").unwrap(), -9);
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);
        let none: Option<u32> = None;
        assert_eq!(to_string(&none).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{1F600}";
        let j = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&j).unwrap(), s);
        // parse a unicode escape with surrogate pair
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "\u{1F600}");
    }

    #[test]
    fn float_roundtrip_precision() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e-300, 123456.789012345] {
            let j = to_string(&x).unwrap();
            let back = from_str::<f64>(&j).unwrap();
            assert_eq!(back, x, "{j}");
        }
    }

    #[test]
    fn pretty_output_shape() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Array(vec![Value::Bool(true)])),
        ]);
        let p = to_string_pretty(&v).unwrap();
        assert!(p.contains("{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}"));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(parse_value("{\"a\":}").is_err());
        assert!(parse_value("[1,").is_err());
    }
}
