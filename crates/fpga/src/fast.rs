//! Vectorized fast-path execution: lane-parallel stage processors that
//! advance [`LANES`] adjacent cells per step through the same window-buffer
//! chain the scalar executors stream.
//!
//! # Bit-exactness by construction
//!
//! The fast processors do **not** reimplement any kernel. A kernel's update
//! is written once, generically over `sf_kernels::AbstractValue`; the SIMD
//! pack type [`sf_simd::F32xL`] implements that trait elementwise, so
//! instantiating the same generic update at the pack type replays the
//! identical per-cell floating-point operation sequence — no reassociation,
//! no FMA contraction, just `LANES` independent IEEE streams evaluated side
//! by side (see [`sf_kernels::lanes`]). Boundary cells and the ragged tail
//! of each row go through the kernel's scalar `apply`/`on_boundary`
//! methods. The result is bit-identical to the scalar executors (and hence
//! to the golden reference) for every mesh shape, batch size and stencil.
//!
//! # What is shared, what is swapped
//!
//! The engine traits of [`crate::window`] confine the fast path to one
//! swap point: the per-stage processor built by [`FastEngine`] instead of
//! [`ScalarEngine`]. Streaming schedule, telemetry hooks (which fire per
//! row/plane, never per cell), drain logic, cycle accounting, fault
//! injection points, watchdog observation and recovery checkpointing are
//! the *same code* for both engines, so traces, [`crate::report::SimReport`]s
//! and fault campaigns are byte-identical across `--exec scalar|fast`.
//!
//! Iteration is row-blocked: each emitted row (2D) or row-of-plane (3D) is
//! processed left boundary → lane packs → scalar epilogue → right boundary,
//! touching each cache line once per stencil row.

use crate::design::StencilDesign;
use crate::device::FpgaDevice;
use crate::error::ExecError;
use crate::exec2d::simulate_2d_core;
use crate::exec3d::simulate_3d_core;
use crate::exec_batch::{simulate_batch_2d_parallel_core, simulate_batch_3d_parallel_core};
use crate::recovery::{
    simulate_2d_recoverable_core, simulate_3d_recoverable_core, simulate_batch_2d_recoverable_core,
    simulate_batch_3d_recoverable_core,
};
use crate::report::SimReport;
use crate::resilient::{simulate_2d_resilient_core, simulate_3d_resilient_core};
use crate::window::{Engine2D, Engine3D, RingBuffer, ScalarEngine, Stage2D, Stage3D};
use serde::{Deserialize, Serialize};
use sf_faults::{FaultInjector, FaultPlan, RetryPolicy};
use sf_kernels::{LaneElement, LaneOp2D, LaneOp3D};
use sf_mesh::{Batch2D, Batch3D};
use sf_recover::{RecoveryConfig, RecoveryStats};
use sf_simd::LANES;
use sf_telemetry::Recorder;

/// One lane-parallel pipeline stage streaming rows of a (possibly batched)
/// 2D mesh — the fast-path counterpart of
/// [`crate::window::StageProcessor2D`], emitting cell-for-cell bit-equal
/// rows.
pub struct FastStageProcessor2D<T: LaneElement, K: LaneOp2D<T>> {
    k: K,
    nx: usize,
    stream_rows: usize,
    /// Rows per independent mesh in the stream (seam period).
    mesh_ny: usize,
    r: usize,
    ring: RingBuffer<T>,
    next_out: usize,
}

impl<T: LaneElement, K: LaneOp2D<T>> FastStageProcessor2D<T, K> {
    /// Create a processor for a stream of `stream_rows` rows of `nx` cells,
    /// where every `mesh_ny` rows form an independent mesh.
    pub fn new(k: K, nx: usize, stream_rows: usize, mesh_ny: usize) -> Self {
        assert!(stream_rows.is_multiple_of(mesh_ny), "stream must be whole meshes");
        let r = k.radius();
        FastStageProcessor2D {
            k,
            nx,
            stream_rows,
            mesh_ny,
            r,
            ring: RingBuffer::new(2 * r + 1),
            next_out: 0,
        }
    }

    fn emit(&mut self, y: usize) -> Vec<T> {
        let (nx, r) = (self.nx, self.r);
        let ly = y % self.mesh_ny;
        let y_interior = ly >= r && ly + r < self.mesh_ny;
        // Every cell is produced exactly once (left boundary, lane body,
        // scalar epilogue, right boundary), so the row is built by pushing
        // into reserved capacity — no default-fill pass over the row.
        let mut out = Vec::with_capacity(nx);
        if !y_interior {
            // Boundary row of its mesh: every cell is a boundary cell.
            out.extend(self.ring.get(y).iter().map(|c| self.k.on_boundary(*c)));
        } else {
            // Interior ly ≥ r implies y ≥ r, so the window rows y−r..=y+r
            // are all resident; hoist the borrows out of the cell loop.
            let rows: Vec<&[T]> = (0..2 * r + 1).map(|d| self.ring.get(y + d - r)).collect();
            let center = rows[r];
            out.extend(center.iter().take(r.min(nx)).map(|c| self.k.on_boundary(*c)));
            let hi = nx.saturating_sub(r);
            let mut x = r;
            while x + LANES <= hi {
                let at = |dx: i32, dy: i32| {
                    T::gather(rows[(dy + r as i32) as usize], (x as i32 + dx) as usize)
                };
                let lanes = self.k.apply_lanes(&at);
                let mut buf = [T::default(); LANES];
                T::scatter(lanes, &mut buf, 0);
                out.extend_from_slice(&buf);
                x += LANES;
            }
            // Scalar epilogue for the ragged tail (hi − x < LANES cells).
            while x < hi {
                out.push(
                    self.k.apply(|dx, dy| rows[(dy + r as i32) as usize][(x as i32 + dx) as usize]),
                );
                x += 1;
            }
            out.extend(center.iter().skip(hi.max(r)).map(|c| self.k.on_boundary(*c)));
        }
        debug_assert_eq!(out.len(), nx);
        self.next_out = y + 1;
        out
    }

    /// Feed the next input row; returns the output row that became ready
    /// (none while the window is filling).
    pub fn push_row(&mut self, row: Vec<T>) -> Option<Vec<T>> {
        assert_eq!(row.len(), self.nx, "row width mismatch");
        assert!(self.ring.pushed() < self.stream_rows, "stream overrun");
        self.ring.push(row);
        let j = self.ring.pushed() - 1;
        if j >= self.r {
            Some(self.emit(j - self.r))
        } else {
            None
        }
    }

    /// After the last input row, drain the trailing `r` output rows.
    pub fn finish(&mut self) -> Vec<Vec<T>> {
        assert_eq!(self.ring.pushed(), self.stream_rows, "stream incomplete");
        let mut out = Vec::new();
        while self.next_out < self.stream_rows {
            out.push(self.emit(self.next_out));
        }
        out
    }

    /// Rows currently held in the window buffer.
    pub fn window_fill(&self) -> usize {
        self.ring.resident()
    }
}

/// One lane-parallel pipeline stage streaming planes of a (possibly
/// batched) 3D mesh — the fast-path counterpart of
/// [`crate::window::StageProcessor3D`].
pub struct FastStageProcessor3D<T: LaneElement, K: LaneOp3D<T>> {
    k: K,
    nx: usize,
    ny: usize,
    stream_planes: usize,
    /// Planes per independent mesh in the stream (seam period).
    mesh_nz: usize,
    r: usize,
    ring: RingBuffer<T>,
    next_out: usize,
}

impl<T: LaneElement, K: LaneOp3D<T>> FastStageProcessor3D<T, K> {
    /// Create a processor for a stream of `stream_planes` planes of
    /// `nx × ny` cells, `mesh_nz` planes per independent mesh.
    pub fn new(k: K, nx: usize, ny: usize, stream_planes: usize, mesh_nz: usize) -> Self {
        assert!(stream_planes.is_multiple_of(mesh_nz), "stream must be whole meshes");
        let r = k.radius();
        FastStageProcessor3D {
            k,
            nx,
            ny,
            stream_planes,
            mesh_nz,
            r,
            ring: RingBuffer::new(2 * r + 1),
            next_out: 0,
        }
    }

    fn emit(&mut self, z: usize) -> Vec<T> {
        let (nx, ny, r) = (self.nx, self.ny, self.r);
        let lz = z % self.mesh_nz;
        let z_interior = lz >= r && lz + r < self.mesh_nz;
        // Built row by row in storage order by pushing into reserved
        // capacity — every cell is produced exactly once, so no
        // default-fill pass over the plane.
        let mut out = Vec::with_capacity(nx * ny);
        if !z_interior {
            out.extend(self.ring.get(z).iter().map(|c| self.k.on_boundary(*c)));
        } else {
            let planes: Vec<&[T]> = (0..2 * r + 1).map(|d| self.ring.get(z + d - r)).collect();
            let center = planes[r];
            for y in 0..ny {
                let row_off = y * nx;
                let row_center = &center[row_off..row_off + nx];
                let y_interior = y >= r && y + r < ny;
                if !y_interior {
                    out.extend(row_center.iter().map(|c| self.k.on_boundary(*c)));
                    continue;
                }
                out.extend(row_center.iter().take(r.min(nx)).map(|c| self.k.on_boundary(*c)));
                let hi = nx.saturating_sub(r);
                let mut x = r;
                while x + LANES <= hi {
                    let at = |dx: i32, dy: i32, dz: i32| {
                        let plane = planes[(dz + r as i32) as usize];
                        let idx = ((y as i32 + dy) as usize) * nx + (x as i32 + dx) as usize;
                        T::gather(plane, idx)
                    };
                    let lanes = self.k.apply_lanes(&at);
                    let mut buf = [T::default(); LANES];
                    T::scatter(lanes, &mut buf, 0);
                    out.extend_from_slice(&buf);
                    x += LANES;
                }
                while x < hi {
                    out.push(self.k.apply(|dx, dy, dz| {
                        let plane = planes[(dz + r as i32) as usize];
                        plane[((y as i32 + dy) as usize) * nx + (x as i32 + dx) as usize]
                    }));
                    x += 1;
                }
                out.extend(row_center.iter().skip(hi.max(r)).map(|c| self.k.on_boundary(*c)));
            }
        }
        debug_assert_eq!(out.len(), nx * ny);
        self.next_out = z + 1;
        out
    }

    /// Feed the next plane; returns the output plane that became ready.
    pub fn push_plane(&mut self, plane: Vec<T>) -> Option<Vec<T>> {
        assert_eq!(plane.len(), self.nx * self.ny, "plane size mismatch");
        assert!(self.ring.pushed() < self.stream_planes, "stream overrun");
        self.ring.push(plane);
        let j = self.ring.pushed() - 1;
        if j >= self.r {
            Some(self.emit(j - self.r))
        } else {
            None
        }
    }

    /// Drain the trailing `r` planes.
    pub fn finish(&mut self) -> Vec<Vec<T>> {
        assert_eq!(self.ring.pushed(), self.stream_planes, "stream incomplete");
        let mut out = Vec::new();
        while self.next_out < self.stream_planes {
            out.push(self.emit(self.next_out));
        }
        out
    }

    /// Planes currently held in the window buffer.
    pub fn window_fill(&self) -> usize {
        self.ring.resident()
    }
}

impl<T: LaneElement, K: LaneOp2D<T>> Stage2D<T> for FastStageProcessor2D<T, K> {
    fn push_row(&mut self, row: Vec<T>) -> Option<Vec<T>> {
        FastStageProcessor2D::push_row(self, row)
    }
    fn finish(&mut self) -> Vec<Vec<T>> {
        FastStageProcessor2D::finish(self)
    }
    fn window_fill(&self) -> usize {
        FastStageProcessor2D::window_fill(self)
    }
}

impl<T: LaneElement, K: LaneOp3D<T>> Stage3D<T> for FastStageProcessor3D<T, K> {
    fn push_plane(&mut self, plane: Vec<T>) -> Option<Vec<T>> {
        FastStageProcessor3D::push_plane(self, plane)
    }
    fn finish(&mut self) -> Vec<Vec<T>> {
        FastStageProcessor3D::finish(self)
    }
    fn window_fill(&self) -> usize {
        FastStageProcessor3D::window_fill(self)
    }
}

/// The lane-parallel engine: builds [`FastStageProcessor2D`] /
/// [`FastStageProcessor3D`] stages for kernels with a lane impl
/// ([`LaneOp2D`] / [`LaneOp3D`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FastEngine;

impl<T: LaneElement, K: LaneOp2D<T> + Clone> Engine2D<T, K> for FastEngine {
    type Stage = FastStageProcessor2D<T, K>;
    fn stage(&self, k: &K, nx: usize, stream_rows: usize, mesh_ny: usize) -> Self::Stage {
        FastStageProcessor2D::new(k.clone(), nx, stream_rows, mesh_ny)
    }
}

impl<T: LaneElement, K: LaneOp3D<T> + Clone> Engine3D<T, K> for FastEngine {
    type Stage = FastStageProcessor3D<T, K>;
    fn stage(
        &self,
        k: &K,
        nx: usize,
        ny: usize,
        stream_planes: usize,
        mesh_nz: usize,
    ) -> Self::Stage {
        FastStageProcessor3D::new(k.clone(), nx, ny, stream_planes, mesh_nz)
    }
}

/// Which execution engine a run streams through (the `--exec` CLI flag).
///
/// Both engines are bit-exact against the golden reference; `Fast` is the
/// default everywhere a kernel carries a lane impl.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecEngine {
    /// Cell-at-a-time scalar stage processors — the reference path.
    Scalar,
    /// Lane-parallel stage processors advancing [`LANES`] cells per step.
    #[default]
    Fast,
}

impl ExecEngine {
    /// Stable lowercase name (CLI values, JSON keys).
    pub fn name(&self) -> &'static str {
        match self {
            ExecEngine::Scalar => "scalar",
            ExecEngine::Fast => "fast",
        }
    }

    /// Parse a CLI engine name.
    pub fn parse(s: &str) -> Option<ExecEngine> {
        match s {
            "scalar" => Some(ExecEngine::Scalar),
            "fast" => Some(ExecEngine::Fast),
            _ => None,
        }
    }
}

impl std::fmt::Display for ExecEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// [`crate::exec2d::simulate_2d`] through the fast path.
pub fn simulate_2d_fast<T: LaneElement, K: LaneOp2D<T> + Clone>(
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch2D<T>,
    niter: usize,
) -> (Batch2D<T>, SimReport) {
    simulate_2d_core(
        &FastEngine,
        dev,
        design,
        stages_per_iter,
        input,
        niter,
        &mut Recorder::disabled(),
    )
}

/// [`crate::exec3d::simulate_3d`] through the fast path.
pub fn simulate_3d_fast<T: LaneElement, K: LaneOp3D<T> + Clone>(
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch3D<T>,
    niter: usize,
) -> (Batch3D<T>, SimReport) {
    simulate_3d_core(
        &FastEngine,
        dev,
        design,
        stages_per_iter,
        input,
        niter,
        &mut Recorder::disabled(),
    )
}

/// [`crate::exec_batch::simulate_batch_2d_parallel`] through the fast path.
pub fn simulate_batch_2d_fast<T: LaneElement, K: LaneOp2D<T> + Clone + Sync>(
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch2D<T>,
    niter: usize,
    jobs: usize,
    rec: &mut Recorder,
) -> (Batch2D<T>, SimReport) {
    simulate_batch_2d_parallel_core(
        &FastEngine,
        dev,
        design,
        stages_per_iter,
        input,
        niter,
        jobs,
        rec,
    )
}

/// [`crate::exec_batch::simulate_batch_3d_parallel`] through the fast path.
pub fn simulate_batch_3d_fast<T: LaneElement, K: LaneOp3D<T> + Clone + Sync>(
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch3D<T>,
    niter: usize,
    jobs: usize,
    rec: &mut Recorder,
) -> (Batch3D<T>, SimReport) {
    simulate_batch_3d_parallel_core(
        &FastEngine,
        dev,
        design,
        stages_per_iter,
        input,
        niter,
        jobs,
        rec,
    )
}

/// Engine-dispatched [`crate::exec2d::simulate_2d_traced`]: `engine`
/// selects scalar or fast stage processors; everything else is identical.
pub fn simulate_2d_exec<T: LaneElement, K: LaneOp2D<T> + Clone>(
    engine: ExecEngine,
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch2D<T>,
    niter: usize,
    rec: &mut Recorder,
) -> (Batch2D<T>, SimReport) {
    match engine {
        ExecEngine::Scalar => {
            simulate_2d_core(&ScalarEngine, dev, design, stages_per_iter, input, niter, rec)
        }
        ExecEngine::Fast => {
            simulate_2d_core(&FastEngine, dev, design, stages_per_iter, input, niter, rec)
        }
    }
}

/// Engine-dispatched [`crate::exec3d::simulate_3d_traced`].
pub fn simulate_3d_exec<T: LaneElement, K: LaneOp3D<T> + Clone>(
    engine: ExecEngine,
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch3D<T>,
    niter: usize,
    rec: &mut Recorder,
) -> (Batch3D<T>, SimReport) {
    match engine {
        ExecEngine::Scalar => {
            simulate_3d_core(&ScalarEngine, dev, design, stages_per_iter, input, niter, rec)
        }
        ExecEngine::Fast => {
            simulate_3d_core(&FastEngine, dev, design, stages_per_iter, input, niter, rec)
        }
    }
}

/// Engine-dispatched [`crate::exec_batch::simulate_batch_2d_parallel`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_batch_2d_parallel_exec<T: LaneElement, K: LaneOp2D<T> + Clone + Sync>(
    engine: ExecEngine,
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch2D<T>,
    niter: usize,
    jobs: usize,
    rec: &mut Recorder,
) -> (Batch2D<T>, SimReport) {
    match engine {
        ExecEngine::Scalar => simulate_batch_2d_parallel_core(
            &ScalarEngine,
            dev,
            design,
            stages_per_iter,
            input,
            niter,
            jobs,
            rec,
        ),
        ExecEngine::Fast => simulate_batch_2d_parallel_core(
            &FastEngine,
            dev,
            design,
            stages_per_iter,
            input,
            niter,
            jobs,
            rec,
        ),
    }
}

/// Engine-dispatched [`crate::exec_batch::simulate_batch_3d_parallel`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_batch_3d_parallel_exec<T: LaneElement, K: LaneOp3D<T> + Clone + Sync>(
    engine: ExecEngine,
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch3D<T>,
    niter: usize,
    jobs: usize,
    rec: &mut Recorder,
) -> (Batch3D<T>, SimReport) {
    match engine {
        ExecEngine::Scalar => simulate_batch_3d_parallel_core(
            &ScalarEngine,
            dev,
            design,
            stages_per_iter,
            input,
            niter,
            jobs,
            rec,
        ),
        ExecEngine::Fast => simulate_batch_3d_parallel_core(
            &FastEngine,
            dev,
            design,
            stages_per_iter,
            input,
            niter,
            jobs,
            rec,
        ),
    }
}

/// Engine-dispatched [`crate::resilient::simulate_2d_resilient`].
///
/// # Errors
/// Exactly the errors of the scalar resilient executor — injection points
/// and watchdog behavior are engine-independent.
#[allow(clippy::too_many_arguments)]
pub fn simulate_2d_resilient_exec<T: LaneElement, K: LaneOp2D<T> + Clone>(
    engine: ExecEngine,
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch2D<T>,
    niter: usize,
    inj: &mut FaultInjector,
    policy: &RetryPolicy,
    rec: &mut Recorder,
) -> Result<(Batch2D<T>, SimReport), ExecError> {
    match engine {
        ExecEngine::Scalar => simulate_2d_resilient_core(
            &ScalarEngine,
            dev,
            design,
            stages_per_iter,
            input,
            niter,
            inj,
            policy,
            rec,
        ),
        ExecEngine::Fast => simulate_2d_resilient_core(
            &FastEngine,
            dev,
            design,
            stages_per_iter,
            input,
            niter,
            inj,
            policy,
            rec,
        ),
    }
}

/// Engine-dispatched [`crate::resilient::simulate_3d_resilient`].
///
/// # Errors
/// See [`simulate_2d_resilient_exec`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_3d_resilient_exec<T: LaneElement, K: LaneOp3D<T> + Clone>(
    engine: ExecEngine,
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch3D<T>,
    niter: usize,
    inj: &mut FaultInjector,
    policy: &RetryPolicy,
    rec: &mut Recorder,
) -> Result<(Batch3D<T>, SimReport), ExecError> {
    match engine {
        ExecEngine::Scalar => simulate_3d_resilient_core(
            &ScalarEngine,
            dev,
            design,
            stages_per_iter,
            input,
            niter,
            inj,
            policy,
            rec,
        ),
        ExecEngine::Fast => simulate_3d_resilient_core(
            &FastEngine,
            dev,
            design,
            stages_per_iter,
            input,
            niter,
            inj,
            policy,
            rec,
        ),
    }
}

/// Engine-dispatched [`crate::recovery::simulate_2d_recoverable`].
///
/// # Errors
/// Exactly the errors of the scalar recoverable executor.
#[allow(clippy::too_many_arguments)]
pub fn simulate_2d_recoverable_exec<T: LaneElement, K: LaneOp2D<T> + Clone>(
    engine: ExecEngine,
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch2D<T>,
    niter: usize,
    inj: &mut FaultInjector,
    policy: &RetryPolicy,
    rcfg: &RecoveryConfig,
    rec: &mut Recorder,
) -> Result<(Batch2D<T>, SimReport, RecoveryStats), ExecError> {
    match engine {
        ExecEngine::Scalar => simulate_2d_recoverable_core(
            &ScalarEngine,
            dev,
            design,
            stages_per_iter,
            input,
            niter,
            inj,
            policy,
            rcfg,
            rec,
        ),
        ExecEngine::Fast => simulate_2d_recoverable_core(
            &FastEngine,
            dev,
            design,
            stages_per_iter,
            input,
            niter,
            inj,
            policy,
            rcfg,
            rec,
        ),
    }
}

/// Engine-dispatched [`crate::recovery::simulate_3d_recoverable`].
///
/// # Errors
/// See [`simulate_2d_recoverable_exec`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_3d_recoverable_exec<T: LaneElement, K: LaneOp3D<T> + Clone>(
    engine: ExecEngine,
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch3D<T>,
    niter: usize,
    inj: &mut FaultInjector,
    policy: &RetryPolicy,
    rcfg: &RecoveryConfig,
    rec: &mut Recorder,
) -> Result<(Batch3D<T>, SimReport, RecoveryStats), ExecError> {
    match engine {
        ExecEngine::Scalar => simulate_3d_recoverable_core(
            &ScalarEngine,
            dev,
            design,
            stages_per_iter,
            input,
            niter,
            inj,
            policy,
            rcfg,
            rec,
        ),
        ExecEngine::Fast => simulate_3d_recoverable_core(
            &FastEngine,
            dev,
            design,
            stages_per_iter,
            input,
            niter,
            inj,
            policy,
            rcfg,
            rec,
        ),
    }
}

/// Engine-dispatched [`crate::recovery::simulate_batch_2d_recoverable`].
///
/// # Errors
/// Exactly the errors of the scalar batch-recoverable executor.
#[allow(clippy::too_many_arguments)]
pub fn simulate_batch_2d_recoverable_exec<T: LaneElement, K: LaneOp2D<T> + Clone + Sync>(
    engine: ExecEngine,
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch2D<T>,
    niter: usize,
    base_plan: &FaultPlan,
    policy: &RetryPolicy,
    rcfg: &RecoveryConfig,
    jobs: usize,
    rec: &mut Recorder,
) -> Result<(Batch2D<T>, SimReport, RecoveryStats), ExecError> {
    match engine {
        ExecEngine::Scalar => simulate_batch_2d_recoverable_core(
            &ScalarEngine,
            dev,
            design,
            stages_per_iter,
            input,
            niter,
            base_plan,
            policy,
            rcfg,
            jobs,
            rec,
        ),
        ExecEngine::Fast => simulate_batch_2d_recoverable_core(
            &FastEngine,
            dev,
            design,
            stages_per_iter,
            input,
            niter,
            base_plan,
            policy,
            rcfg,
            jobs,
            rec,
        ),
    }
}

/// Engine-dispatched [`crate::recovery::simulate_batch_3d_recoverable`].
///
/// # Errors
/// See [`simulate_batch_2d_recoverable_exec`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_batch_3d_recoverable_exec<T: LaneElement, K: LaneOp3D<T> + Clone + Sync>(
    engine: ExecEngine,
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch3D<T>,
    niter: usize,
    base_plan: &FaultPlan,
    policy: &RetryPolicy,
    rcfg: &RecoveryConfig,
    jobs: usize,
    rec: &mut Recorder,
) -> Result<(Batch3D<T>, SimReport, RecoveryStats), ExecError> {
    match engine {
        ExecEngine::Scalar => simulate_batch_3d_recoverable_core(
            &ScalarEngine,
            dev,
            design,
            stages_per_iter,
            input,
            niter,
            base_plan,
            policy,
            rcfg,
            jobs,
            rec,
        ),
        ExecEngine::Fast => simulate_batch_3d_recoverable_core(
            &FastEngine,
            dev,
            design,
            stages_per_iter,
            input,
            niter,
            base_plan,
            policy,
            rcfg,
            jobs,
            rec,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{synthesize, ExecMode, MemKind, Workload};
    use crate::exec2d::{simulate_2d, simulate_2d_traced, simulate_mesh_2d};
    use crate::exec3d::simulate_3d;
    use sf_kernels::{reference, Jacobi3D, Poisson2D, StencilSpec};
    use sf_mesh::{norms, Mesh2D, Mesh3D};
    use sf_telemetry::{chrome::to_chrome_json, metrics::to_metrics_json};

    fn dev() -> FpgaDevice {
        FpgaDevice::u280()
    }

    #[test]
    fn fast_2d_bit_exact_vs_scalar_and_reference() {
        // 40 % 8 == 0 exercises full-lane rows; interior width 38 leaves a
        // ragged tail of 6 cells for the scalar epilogue.
        let m = Mesh2D::<f32>::random(40, 24, 7, -1.0, 1.0);
        let wl = Workload::D2 { nx: 40, ny: 24, batch: 1 };
        let ds = synthesize(
            &dev(),
            &StencilSpec::poisson(),
            8,
            4,
            ExecMode::Baseline,
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let batch = Batch2D::from_meshes(std::slice::from_ref(&m));
        let (scalar, scalar_rep) = simulate_2d(&dev(), &ds, &[Poisson2D], &batch, 12);
        let (fast, fast_rep) = simulate_2d_fast(&dev(), &ds, &[Poisson2D], &batch, 12);
        assert!(norms::bit_equal(fast.as_slice(), scalar.as_slice()));
        assert_eq!(fast_rep.total_cycles, scalar_rep.total_cycles);
        let expect = reference::run_2d(&Poisson2D, &m, 12);
        assert!(norms::bit_equal(fast.mesh(0).as_slice(), expect.as_slice()));
    }

    #[test]
    fn fast_3d_bit_exact_vs_scalar() {
        let m = Mesh3D::<f32>::random(19, 10, 8, 5, -1.0, 1.0);
        let wl = Workload::D3 { nx: 19, ny: 10, nz: 8, batch: 1 };
        let ds =
            synthesize(&dev(), &StencilSpec::jacobi(), 8, 3, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let batch = Batch3D::from_meshes(std::slice::from_ref(&m));
        let k = Jacobi3D::smoothing();
        let (scalar, _) = simulate_3d(&dev(), &ds, &[k], &batch, 6);
        let (fast, _) = simulate_3d_fast(&dev(), &ds, &[k], &batch, 6);
        assert!(norms::bit_equal(fast.as_slice(), scalar.as_slice()));
        let expect = reference::run_3d(&k, &m, 6);
        assert!(norms::bit_equal(fast.mesh(0).as_slice(), expect.as_slice()));
    }

    #[test]
    fn fast_tiled_2d_bit_exact() {
        let m = Mesh2D::<f32>::random(200, 30, 13, -1.0, 1.0);
        let wl = Workload::D2 { nx: 200, ny: 30, batch: 1 };
        let ds = synthesize(
            &dev(),
            &StencilSpec::poisson(),
            8,
            8,
            ExecMode::Tiled1D { tile_m: 64 },
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let (scalar, _) = simulate_mesh_2d(&dev(), &ds, &[Poisson2D], &m, 16);
        let batch = Batch2D::from_meshes(std::slice::from_ref(&m));
        let (fast, _) = simulate_2d_fast(&dev(), &ds, &[Poisson2D], &batch, 16);
        assert!(norms::bit_equal(fast.mesh(0).as_slice(), scalar.as_slice()));
    }

    #[test]
    fn fast_traces_byte_identical_to_scalar() {
        let m = Mesh2D::<f32>::random(40, 24, 3, -1.0, 1.0);
        let wl = Workload::D2 { nx: 40, ny: 24, batch: 1 };
        let ds = synthesize(
            &dev(),
            &StencilSpec::poisson(),
            8,
            4,
            ExecMode::Baseline,
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let batch = Batch2D::from_meshes(std::slice::from_ref(&m));
        let mut rec_s = Recorder::enabled(ds.freq_hz / 1e6);
        let _ = simulate_2d_traced(&dev(), &ds, &[Poisson2D], &batch, 8, &mut rec_s);
        let mut rec_f = Recorder::enabled(ds.freq_hz / 1e6);
        let _ =
            simulate_2d_exec(ExecEngine::Fast, &dev(), &ds, &[Poisson2D], &batch, 8, &mut rec_f);
        assert_eq!(to_chrome_json(&rec_s), to_chrome_json(&rec_f));
        assert_eq!(to_metrics_json(&rec_s), to_metrics_json(&rec_f));
    }

    #[test]
    fn exec_engine_names_round_trip() {
        assert_eq!(ExecEngine::parse("fast"), Some(ExecEngine::Fast));
        assert_eq!(ExecEngine::parse("scalar"), Some(ExecEngine::Scalar));
        assert_eq!(ExecEngine::parse("simd"), None);
        assert_eq!(ExecEngine::default(), ExecEngine::Fast);
        for e in [ExecEngine::Scalar, ExecEngine::Fast] {
            assert_eq!(ExecEngine::parse(e.name()), Some(e));
            assert_eq!(format!("{e}"), e.name());
        }
    }
}
