//! The step-wise design workflow (paper §III–§IV as an API).

use crate::compare::Comparison;
use crate::error::SfError;
use serde::{Deserialize, Serialize};
use sf_fpga::design::{StencilDesign, Workload};
use sf_fpga::{cycles, power, FpgaDevice, SimReport};
use sf_gpu::{gpu_report, GpuDevice};
use sf_kernels::StencilSpec;
use sf_model::dse::{self, Candidate, DseOptions};
use sf_model::feasibility::FeasibilityReport;

/// Workflow failures surfaced to the user.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkflowError {
    /// No feasible design exists in the explored space.
    NoFeasibleDesign {
        /// Application that failed.
        app: String,
    },
}

impl core::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WorkflowError::NoFeasibleDesign { app } => {
                write!(f, "no feasible FPGA design found for {app}")
            }
        }
    }
}

impl std::error::Error for WorkflowError {}

/// The unified workflow: a target FPGA, a comparator GPU, and exploration
/// options.
#[derive(Clone, Debug)]
pub struct Workflow {
    /// Target FPGA card.
    pub device: FpgaDevice,
    /// Comparator GPU.
    pub gpu: GpuDevice,
    /// Design-space exploration options.
    pub opts: DseOptions,
}

impl Workflow {
    /// The paper's experimental setup: Alveo U280 vs Tesla V100.
    pub fn u280_vs_v100() -> Self {
        Workflow { device: FpgaDevice::u280(), gpu: GpuDevice::v100(), opts: DseOptions::default() }
    }

    /// Step 1 — feasibility analysis (eqs. 4/6/7 + §VI determinants).
    /// The streaming buffer unit is derived from the workload: row length for
    /// 2D, plane size for 3D.
    pub fn feasibility(
        &self,
        spec: &StencilSpec,
        wl: &Workload,
    ) -> Result<FeasibilityReport, SfError> {
        let unit = match *wl {
            Workload::D2 { nx, .. } => nx,
            Workload::D3 { nx, ny, .. } => nx * ny,
        };
        let v = sf_model::feasibility::nominal_v(&self.device, spec, self.opts.mem);
        Ok(FeasibilityReport::analyze(&self.device, spec, v, unit, self.opts.mem)?)
    }

    /// Step 2 — design-space exploration, ranked fastest-first.
    ///
    /// Candidate evaluation fans across worker threads (resolved from
    /// `SF_JOBS` / machine parallelism); the ranking is identical for any
    /// worker count. See [`Workflow::explore_jobs`] for an explicit count.
    pub fn explore(
        &self,
        spec: &StencilSpec,
        wl: &Workload,
        niter: u64,
    ) -> Result<Vec<Candidate>, SfError> {
        Ok(dse::explore(&self.device, spec, wl, niter, &self.opts)?)
    }

    /// [`Workflow::explore`] with an explicit worker count (the `--jobs`
    /// CLI flag lands here).
    pub fn explore_jobs(
        &self,
        spec: &StencilSpec,
        wl: &Workload,
        niter: u64,
        jobs: usize,
    ) -> Result<Vec<Candidate>, SfError> {
        Ok(dse::explore_jobs(&self.device, spec, wl, niter, &self.opts, jobs)?)
    }

    /// Step 0 — mandatory static pre-flight: the `sf-check` design-rule
    /// checker applied to a synthesized design before anything executes it.
    /// Returns the full diagnostic report (warnings included); callers that
    /// must not proceed on errors convert it with
    /// [`sf_check::CheckReport::into_result`].
    ///
    /// Served from the process-wide check-report cache shared with the DSE
    /// pruning filter, so preflighting a design the DSE already vetted is
    /// a lookup, not a re-derivation.
    pub fn preflight(&self, design: &StencilDesign, wl: &Workload) -> sf_check::CheckReport {
        sf_model::check_cached(&self.device, &sf_check::Design::from_synthesized(design, wl))
    }

    /// Step 3 — the winning design.
    pub fn best_design(
        &self,
        spec: &StencilSpec,
        wl: &Workload,
        niter: u64,
    ) -> Result<Candidate, SfError> {
        dse::best(&self.device, spec, wl, niter, &self.opts)?
            .ok_or_else(|| WorkflowError::NoFeasibleDesign { app: format!("{}", spec.app) }.into())
    }

    /// Step 4 — achieved performance of a design on the simulated U280.
    pub fn fpga_estimate(&self, design: &StencilDesign, wl: &Workload, niter: u64) -> SimReport {
        let plan = cycles::plan(&self.device, design, wl, niter);
        SimReport::from_plan(design, &plan, niter, power::fpga_power_w(&self.device, design))
    }

    /// The comparator: the same workload on the modeled V100.
    pub fn gpu_estimate(&self, spec: &StencilSpec, wl: &Workload, niter: u64) -> SimReport {
        gpu_report(&self.gpu, spec, wl, niter)
    }

    /// Step 5 — end-to-end comparison: best FPGA design vs the GPU.
    pub fn compare(
        &self,
        spec: &StencilSpec,
        wl: &Workload,
        niter: u64,
    ) -> Result<Comparison, SfError> {
        let best = self.best_design(spec, wl, niter)?;
        let fpga = self.fpga_estimate(&best.design, wl, niter);
        let gpu = self.gpu_estimate(spec, wl, niter);
        Ok(Comparison { design: best.design, prediction: best.prediction, fpga, gpu })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_kernels::AppId;

    #[test]
    fn workflow_end_to_end_poisson() {
        let wf = Workflow::u280_vs_v100();
        let spec = StencilSpec::poisson();
        let wl = Workload::D2 { nx: 300, ny: 300, batch: 1 };
        let feas = wf.feasibility(&spec, &wl).unwrap();
        assert!(feas.baseline_feasible);
        let cmp = wf.compare(&spec, &wl, 60_000).unwrap();
        assert_eq!(cmp.fpga.app, AppId::Poisson2D);
        assert!(cmp.fpga.runtime_s > 0.0 && cmp.gpu.runtime_s > 0.0);
        // paper Fig. 3a: baseline Poisson strongly favours the FPGA
        assert!(cmp.speedup() > 1.0, "speedup {}", cmp.speedup());
    }

    #[test]
    fn no_feasible_design_is_reported() {
        let mut wf = Workflow::u280_vs_v100();
        wf.opts.allow_tiling = false;
        wf.opts.v_candidates = vec![1];
        let spec = StencilSpec::jacobi();
        // baseline on a mesh whose planes exceed on-chip memory
        let wl = Workload::D3 { nx: 2500, ny: 2500, nz: 50, batch: 1 };
        let err = wf.best_design(&spec, &wl, 100).unwrap_err();
        assert!(matches!(err, SfError::Workflow(WorkflowError::NoFeasibleDesign { .. })));
        assert!(format!("{err}").contains("Jacobi"));
    }

    #[test]
    fn gpu_estimate_standalone() {
        let wf = Workflow::u280_vs_v100();
        let wl = Workload::D3 { nx: 100, ny: 100, nz: 100, batch: 1 };
        let rep = wf.gpu_estimate(&StencilSpec::jacobi(), &wl, 1000);
        assert!(rep.platform.contains("V100"));
        assert!(rep.bandwidth_gbs > 100.0);
    }
}
