//! Plan explanation: an annotated breakdown of where a design's cycles go.
//!
//! [`explain`] walks the same streaming schedule as [`crate::cycles::plan`]
//! and narrates it — fill vs data rows, per-row compute/memory occupancy and
//! which side bounds the row, per-tile geometry, pass overheads — the
//! reasoning a designer does over an HLS latency report. Used by the CLI and
//! examples; tests pin the classifications for the paper's designs.

use crate::axi;
use crate::cycles;
use crate::design::{ExecMode, MemKind, StencilDesign, Workload};
use crate::device::FpgaDevice;
use serde::{Deserialize, Serialize};
use sf_mesh::TileGrid1D;

/// What limits a streamed row.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowBound {
    /// The `V`-wide compute issue dominates.
    Compute,
    /// The memory channels dominate (strided tiles, narrow `V·k` budgets).
    Memory,
}

/// One homogeneous streaming segment (whole mesh, or one tile column).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SegmentTrace {
    /// Human label ("mesh", "tile 3 [4096..8192)").
    pub label: String,
    /// Data rows streamed per pass.
    pub data_rows: u64,
    /// Fill rows per pass (pipeline priming).
    pub fill_rows: u64,
    /// Cells per row.
    pub cells_per_row: usize,
    /// Cells written back per row (< `cells_per_row` for halo tiles).
    pub write_cells_per_row: usize,
    /// Cycles per row.
    pub row_cycles: u64,
    /// Compute cycles per row (`⌈cells/V⌉`).
    pub compute_cycles: u64,
    /// Which side bounds the row.
    pub bound: RowBound,
}

/// A full plan explanation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlanTrace {
    /// Per-segment breakdown (one per tile for blocked modes).
    pub segments: Vec<SegmentTrace>,
    /// Passes over the workload.
    pub passes: u64,
    /// Pipeline latency charged per pass.
    pub pipeline_latency_cycles: u64,
    /// Host enqueue latency per pass, seconds.
    pub host_latency_s: f64,
    /// Totals from the cycle plan, for cross-checking.
    pub total_cycles: u64,
    /// Fraction of cycles spent on fill rows.
    pub fill_fraction: f64,
}

impl PlanTrace {
    /// Attribute the plan's streamed-row cycles to stall classes.
    ///
    /// Each segment's `passes × (data + fill) × row_cycles` goes to the
    /// class its [`RowBound`] names. The static plan sizes inter-stage
    /// FIFOs so chained stages never backpressure ([`crate::fifo::interstage_depth`]),
    /// so `backpressure_cycles` is always 0 here — the dataflow simulator's
    /// recorder reports any observed backpressure separately, and the two
    /// breakdowns are cross-checked in tests.
    pub fn stall_breakdown(&self) -> sf_telemetry::StallBreakdown {
        let mut b = sf_telemetry::StallBreakdown::default();
        for s in &self.segments {
            let cycles = self.passes * (s.data_rows + s.fill_rows) * s.row_cycles;
            match s.bound {
                RowBound::Compute => b.compute_cycles += cycles,
                RowBound::Memory => b.memory_cycles += cycles,
            }
        }
        b
    }

    /// Render a human-readable explanation.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "passes: {}   pipeline latency/pass: {} cy   host latency/pass: {:.1} µs\n",
            self.passes,
            self.pipeline_latency_cycles,
            self.host_latency_s * 1e6
        ));
        s.push_str(&format!(
            "fill overhead: {:.1} % of streamed rows\n",
            self.fill_fraction * 100.0
        ));
        let show = self.segments.len().min(6);
        for seg in &self.segments[..show] {
            s.push_str(&format!(
                "  {:<22} rows {:>8} (+{} fill) × {:>4} cy/row  [{:>4} cells, {} cy compute, {:?}-bound]\n",
                seg.label,
                seg.data_rows,
                seg.fill_rows,
                seg.row_cycles,
                seg.cells_per_row,
                seg.compute_cycles,
                seg.bound,
            ));
        }
        if self.segments.len() > show {
            s.push_str(&format!("  … and {} more segments\n", self.segments.len() - show));
        }
        s.push_str(&format!("total: {} cycles\n", self.total_cycles));
        s
    }
}

fn seg(
    dev: &FpgaDevice,
    design: &StencilDesign,
    label: String,
    data_rows: u64,
    fill_rows: u64,
    cells: usize,
    write_cells: usize,
) -> SegmentTrace {
    let mem = match design.mem {
        MemKind::Hbm => &dev.hbm,
        MemKind::Ddr4 => &dev.ddr4,
    };
    let row_cycles = axi::row_cycles(
        dev,
        mem,
        design.freq_hz,
        design.v,
        cells,
        cells * design.spec.ext_read_bytes,
        write_cells * design.spec.ext_write_bytes,
        design.read_channels,
        design.write_channels,
    );
    let compute = cells.div_ceil(design.v) as u64;
    SegmentTrace {
        label,
        data_rows,
        fill_rows,
        cells_per_row: cells,
        write_cells_per_row: write_cells,
        row_cycles,
        compute_cycles: compute,
        bound: if row_cycles - dev.axi_issue_gap_cycles as u64 > compute {
            RowBound::Memory
        } else {
            RowBound::Compute
        },
    }
}

/// Explain where a design's cycles go on a workload.
pub fn explain(dev: &FpgaDevice, design: &StencilDesign, wl: &Workload, niter: u64) -> PlanTrace {
    let plan = cycles::plan(dev, design, wl, niter);
    let fill = cycles::fill_units(design);
    let spec = &design.spec;
    let mut segments = Vec::new();
    match (*wl, design.mode) {
        (Workload::D2 { nx, ny, batch }, ExecMode::Baseline | ExecMode::Batched { .. }) => {
            segments.push(seg(dev, design, "mesh".into(), (batch * ny) as u64, fill, nx, nx));
        }
        (Workload::D3 { nx, ny, nz, batch }, ExecMode::Baseline | ExecMode::Batched { .. }) => {
            segments.push(seg(
                dev,
                design,
                "mesh".into(),
                (batch * nz) as u64 * ny as u64,
                fill * ny as u64,
                nx,
                nx,
            ));
        }
        (Workload::D2 { nx, ny, .. }, ExecMode::Tiled1D { tile_m }) => {
            let halo = design.p * spec.halo_order() / 2;
            let align = (dev.axi_bus_bytes / spec.elem_bytes).max(1);
            for (i, t) in TileGrid1D::new(nx, tile_m, halo, align).tiles().iter().enumerate() {
                segments.push(seg(
                    dev,
                    design,
                    format!("tile {i} [{}..{})", t.read_start, t.read_end()),
                    ny as u64,
                    fill,
                    t.read_len,
                    t.valid_len,
                ));
            }
        }
        (Workload::D3 { nx, ny, nz, .. }, ExecMode::Tiled2D { tile_m, tile_n }) => {
            let halo = design.p * spec.halo_order() / 2;
            let align = (dev.axi_bus_bytes / spec.elem_bytes).max(1);
            let gx = TileGrid1D::new(nx, tile_m, halo, align);
            let gy = TileGrid1D::new(ny, tile_n, halo, 1);
            for (j, ty) in gy.tiles().iter().enumerate() {
                for (i, tx) in gx.tiles().iter().enumerate() {
                    segments.push(seg(
                        dev,
                        design,
                        format!("tile ({i},{j})"),
                        nz as u64 * ty.read_len as u64,
                        fill * ty.read_len as u64,
                        tx.read_len,
                        tx.valid_len,
                    ));
                }
            }
        }
        _ => unreachable!("synthesis rejects mismatched mode/workload"),
    }
    let total_rows: u64 = segments.iter().map(|s| s.data_rows + s.fill_rows).sum();
    let fill_rows: u64 = segments.iter().map(|s| s.fill_rows).sum();
    PlanTrace {
        segments,
        passes: plan.passes,
        pipeline_latency_cycles: design.pipeline_latency_cycles,
        host_latency_s: dev.host_call_latency_s,
        total_cycles: plan.total_cycles,
        fill_fraction: fill_rows as f64 / total_rows.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::synthesize;
    use sf_kernels::StencilSpec;

    fn dev() -> FpgaDevice {
        FpgaDevice::u280()
    }

    #[test]
    fn poisson_baseline_is_compute_bound() {
        let wl = Workload::D2 { nx: 200, ny: 100, batch: 1 };
        let ds = synthesize(
            &dev(),
            &StencilSpec::poisson(),
            8,
            60,
            ExecMode::Baseline,
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let tr = explain(&dev(), &ds, &wl, 60_000);
        assert_eq!(tr.segments.len(), 1);
        assert_eq!(tr.segments[0].bound, RowBound::Compute);
        assert_eq!(tr.segments[0].data_rows, 100);
        assert_eq!(tr.segments[0].fill_rows, 60);
        // fill is the §IV-B latency the batching optimization removes
        assert!((tr.fill_fraction - 60.0 / 160.0).abs() < 1e-12);
        assert!(tr.render().contains("Compute-bound"));
    }

    #[test]
    fn batching_shrinks_fill_fraction() {
        let solo = Workload::D2 { nx: 200, ny: 100, batch: 1 };
        let d1 = synthesize(
            &dev(),
            &StencilSpec::poisson(),
            8,
            60,
            ExecMode::Baseline,
            MemKind::Hbm,
            &solo,
        )
        .unwrap();
        let batched = Workload::D2 { nx: 200, ny: 100, batch: 1000 };
        let d2 = synthesize(
            &dev(),
            &StencilSpec::poisson(),
            8,
            60,
            ExecMode::Batched { b: 1000 },
            MemKind::Hbm,
            &batched,
        )
        .unwrap();
        let f1 = explain(&dev(), &d1, &solo, 60_000).fill_fraction;
        let f2 = explain(&dev(), &d2, &batched, 60_000).fill_fraction;
        assert!(f2 < f1 / 100.0, "batched fill {f2} vs baseline {f1}");
    }

    #[test]
    fn rtm_baseline_fill_dominates_small_meshes() {
        let wl = Workload::D3 { nx: 32, ny: 32, nz: 32, batch: 1 };
        let ds =
            synthesize(&dev(), &StencilSpec::rtm(), 1, 3, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let tr = explain(&dev(), &ds, &wl, 1_800);
        // 48 fill planes vs 32 data planes — the Table VI baseline penalty
        assert!(tr.fill_fraction > 0.5, "fill fraction {}", tr.fill_fraction);
    }

    #[test]
    fn stall_breakdown_matches_row_bounds() {
        let wl = Workload::D2 { nx: 200, ny: 100, batch: 1 };
        let ds = synthesize(
            &dev(),
            &StencilSpec::poisson(),
            8,
            60,
            ExecMode::Baseline,
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let tr = explain(&dev(), &ds, &wl, 60_000);
        let b = tr.stall_breakdown();
        // Poisson baseline is compute-bound: all attributed cycles land there.
        assert_eq!(b.memory_cycles, 0);
        assert_eq!(b.backpressure_cycles, 0);
        assert_eq!(
            b.compute_cycles,
            tr.passes
                * (tr.segments[0].data_rows + tr.segments[0].fill_rows)
                * tr.segments[0].row_cycles
        );
        use sf_telemetry::StallClass;
        assert_eq!(b.dominant(), StallClass::Compute);
    }

    #[test]
    fn tiled_trace_enumerates_tiles() {
        let wl = Workload::D2 { nx: 15_000, ny: 15_000, batch: 1 };
        let ds = synthesize(
            &dev(),
            &StencilSpec::poisson(),
            8,
            60,
            ExecMode::Tiled1D { tile_m: 4096 },
            MemKind::Ddr4,
            &wl,
        )
        .unwrap();
        let tr = explain(&dev(), &ds, &wl, 6_000);
        assert!(tr.segments.len() > 1);
        assert!(tr.render().contains("more segments") || tr.segments.len() <= 6);
        // totals must agree with the plan it explains
        let plan = cycles::plan(&dev(), &ds, &wl, 6_000);
        assert_eq!(tr.total_cycles, plan.total_cycles);
    }

    #[test]
    fn strided_3d_tiles_classified_memory_bound_when_narrow() {
        // tiny tile rows over few channels: memory side dominates
        let wl = Workload::D3 { nx: 600, ny: 600, nz: 600, batch: 1 };
        let ds = synthesize(
            &dev(),
            &StencilSpec::jacobi(),
            64,
            3,
            ExecMode::Tiled2D { tile_m: 256, tile_n: 256 },
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let tr = explain(&dev(), &ds, &wl, 120);
        assert!(!tr.segments.is_empty());
        // at 256-cell rows: compute 4 cy vs memory 1024B/(57.5·6)=3 → compute
        // or memory within 1 cycle; assert the trace is at least coherent
        for s in &tr.segments {
            assert!(s.row_cycles >= s.compute_cycles);
        }
    }
}
