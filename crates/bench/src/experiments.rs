//! Regeneration of every table and figure in the paper's evaluation section.
//!
//! Each function reconstructs the paper's exact configuration (application,
//! mesh, batch/tile, iteration count, `V`, `p`, memory binding), runs it
//! through the simulator/models, and tabulates our numbers next to the
//! paper's. Runtime "figures" (Figs. 3–5) are emitted as the numeric series
//! behind the plots.

use crate::paper;
use crate::table::{fmt, Experiment};
use sf_core::prelude::*;
use sf_fpga::design::synthesize;
use sf_model::accuracy;
use sf_model::equations;

fn wf() -> Workflow {
    Workflow::u280_vs_v100()
}

fn poisson_design(wl: &Workload, mode: ExecMode, mem: MemKind) -> StencilDesign {
    synthesize(&FpgaDevice::u280(), &StencilSpec::poisson(), 8, 60, mode, mem, wl)
        .expect("paper Poisson design must synthesize")
}

fn jacobi_design(wl: &Workload, mode: ExecMode) -> StencilDesign {
    let (v, p) = if mode.is_tiled() { (64, 3) } else { (8, 29) };
    synthesize(&FpgaDevice::u280(), &StencilSpec::jacobi(), v, p, mode, MemKind::Hbm, wl)
        .expect("paper Jacobi design must synthesize")
}

fn rtm_design(wl: &Workload, mode: ExecMode) -> StencilDesign {
    synthesize(&FpgaDevice::u280(), &StencilSpec::rtm(), 1, 3, mode, MemKind::Hbm, wl)
        .expect("paper RTM design must synthesize")
}

/// Table I — experimental system specifications.
pub fn table1() -> Experiment {
    let d = FpgaDevice::u280();
    let g = GpuDevice::v100();
    let mut e =
        Experiment::new("Table I", "Experimental systems specifications", &["item", "value"]);
    e.row(vec!["FPGA".into(), d.name.clone()]);
    e.row(vec!["DSP blocks".into(), d.dsp_total.to_string()]);
    e.row(vec![
        "BRAM / URAM".into(),
        format!(
            "{:.1} MB ({} blocks) / {:.1} MB ({} blocks)",
            d.bram_blocks as f64 * d.bram_block_bytes as f64 / 1e6,
            d.bram_blocks,
            d.uram_blocks as f64 * d.uram_block_bytes as f64 / 1e6,
            d.uram_blocks
        ),
    ]);
    e.row(vec![
        "HBM".into(),
        format!(
            "{} GB, {:.0} GB/s, {} channels",
            d.hbm.bytes >> 30,
            d.hbm.total_bw() / 1e9,
            d.hbm.channels
        ),
    ]);
    e.row(vec![
        "DDR4".into(),
        format!(
            "{} GB, {:.1} GB/s, {} banks",
            d.ddr4.bytes >> 30,
            d.ddr4.total_bw() / 1e9,
            d.ddr4.channels
        ),
    ]);
    e.row(vec!["GPU".into(), g.name.clone()]);
    e.row(vec![
        "Global Mem.".into(),
        format!("{} GB HBM2, {:.0} GB/s", g.mem_bytes >> 30, g.peak_bw / 1e9),
    ]);
    e.note("simulated substrate — DESIGN.md documents the hardware substitutions");
    e
}

/// Table II — baseline/batching model parameters: achieved frequency, G_dsp,
/// model-predicted p (eq. 6) and the p the synthesized design lands on.
pub fn table2() -> Experiment {
    let d = FpgaDevice::u280();
    let mut e = Experiment::new(
        "Table II",
        "Baseline and batching, model parameters",
        &[
            "application",
            "freq MHz (ours)",
            "(paper)",
            "G_dsp (ours)",
            "(paper)",
            "p_dsp model (ours)",
            "(paper)",
            "p actual (ours)",
            "(paper)",
        ],
    );
    let designs: [(&str, StencilSpec, usize, usize, Workload); 3] = [
        (
            "Poisson-5pt-2D",
            StencilSpec::poisson(),
            8,
            60,
            Workload::D2 { nx: 400, ny: 400, batch: 1 },
        ),
        (
            "Jacobi-7pt-3D",
            StencilSpec::jacobi(),
            8,
            29,
            Workload::D3 { nx: 300, ny: 300, nz: 300, batch: 1 },
        ),
        (
            "Reverse Time Migration",
            StencilSpec::rtm(),
            1,
            3,
            Workload::D3 { nx: 64, ny: 64, nz: 64, batch: 1 },
        ),
    ];
    for ((name, spec, v, p_actual, wl), paper) in designs.into_iter().zip(paper::TABLE2) {
        let ds = synthesize(&d, &spec, v, p_actual, ExecMode::Baseline, MemKind::Hbm, &wl).unwrap();
        let p_model = equations::p_dsp(d.dsp_total, d.dsp_util_target, v, spec.gdsp());
        e.row(vec![
            name.into(),
            format!("{:.0}", ds.freq_mhz()),
            format!("{:.0}", paper.1),
            spec.gdsp().to_string(),
            paper.2.to_string(),
            p_model.to_string(),
            paper.3.to_string(),
            p_actual.to_string(),
            paper.4.to_string(),
        ]);
    }
    e.note("G_dsp from fadd=2/fmul=3 DSP costs; RTM kernel is our synthetic PML system (same band as the paper's 2444, same p=3)");
    e.note("'p actual' = the paper's deployed configuration, which our synthesizer accepts; frequency from the congestion model");
    e
}

/// Table III — spatial blocking model parameters.
pub fn table3() -> Experiment {
    let d = FpgaDevice::u280();
    let mut e = Experiment::new(
        "Table III",
        "Spatial blocking model parameters",
        &[
            "app",
            "p",
            "V",
            "M (ours)",
            "(paper)",
            "N",
            "T cells/clk (ours)",
            "(paper)",
            "valid % (ours)",
            "(paper)",
        ],
    );
    // Poisson: quantized 2D tile
    let m2 = sf_model::blocking::recommended_tile_2d(&d, &StencilSpec::poisson(), 8, 60);
    let t2 = equations::t2d(m2 as f64, 1e12, 60.0, 2.0, (60 * 8 * 14) as f64, 14.0);
    let vr2 = 1.0 - (60.0 * 2.0) / m2 as f64;
    let p3 = paper::TABLE3;
    e.row(vec![
        "Poisson-5pt-2D".into(),
        "60".into(),
        "8".into(),
        m2.to_string(),
        p3[0].3.to_string(),
        "-".into(),
        format!("{t2:.0}"),
        format!("{:.0}", p3[0].5),
        format!("{:.1}", vr2 * 100.0),
        format!("{:.1}", p3[0].6),
    ]);
    // Jacobi: quantized 3D tile
    let (m3, n3) = sf_model::blocking::recommended_tile_3d(&d, &StencilSpec::jacobi(), 64, 3);
    let t3 = equations::t3d(m3 as f64, 1e12, 3.0, 2.0, (3 * 64 * 33) as f64, 33.0);
    let vr3 = (1.0 - 6.0 / m3 as f64) * (1.0 - 6.0 / n3 as f64);
    e.row(vec![
        "Jacobi-7pt-3D".into(),
        "3".into(),
        "64".into(),
        m3.to_string(),
        p3[1].3.to_string(),
        n3.to_string(),
        format!("{t3:.0}"),
        format!("{:.0}", p3[1].5),
        format!("{:.1}", vr3 * 100.0),
        format!("{:.1}", p3[1].6),
    ]);
    e.note("M from block-quantized window allocation (BRAM pow2 depth / one URAM per lane), T from eqs. 13/14 with l,n → ∞");
    e
}

/// Fig. 3a — Poisson baseline runtimes (FPGA sim, model prediction, GPU).
pub fn fig3a() -> Experiment {
    let wf = wf();
    let spec = StencilSpec::poisson();
    let mut e = Experiment::new(
        "Fig. 3a",
        "Poisson baseline runtime, 60 000 iterations",
        &["mesh", "FPGA ms", "model ms", "GPU ms", "FPGA/GPU"],
    );
    for (nx, ny, ..) in paper::TABLE4_BASE {
        let wl = Workload::D2 { nx, ny, batch: 1 };
        let ds = poisson_design(&wl, ExecMode::Baseline, MemKind::Hbm);
        let fpga = wf.fpga_estimate(&ds, &wl, paper::iters::POISSON);
        let pred = sf_model::predict(
            &wf.device,
            &ds,
            &wl,
            paper::iters::POISSON,
            PredictionLevel::Extended,
        )
        .expect("design matches workload");
        let gpu = wf.gpu_estimate(&spec, &wl, paper::iters::POISSON);
        e.row(vec![
            format!("{nx}x{ny}"),
            format!("{:.1}", fpga.runtime_s * 1e3),
            format!("{:.1}", pred.runtime_s * 1e3),
            format!("{:.1}", gpu.runtime_s * 1e3),
            format!("{:.2}x", gpu.runtime_s / fpga.runtime_s),
        ]);
    }
    e.note("paper plots runtimes; its Table IV bandwidths imply the same ordering (FPGA ≫ unsaturated GPU)");
    e
}

/// Fig. 3b — Poisson batched runtimes (100B and 1000B).
pub fn fig3b() -> Experiment {
    let wf = wf();
    let spec = StencilSpec::poisson();
    let mut e = Experiment::new(
        "Fig. 3b",
        "Poisson batched runtime, 60 000 iterations",
        &["mesh", "batch", "FPGA ms", "model ms", "GPU ms", "FPGA/GPU"],
    );
    for (nx, ny, ..) in paper::TABLE4_BASE {
        for b in [100usize, 1000] {
            let wl = Workload::D2 { nx, ny, batch: b };
            let ds = poisson_design(&wl, ExecMode::Batched { b }, MemKind::Hbm);
            let fpga = wf.fpga_estimate(&ds, &wl, paper::iters::POISSON);
            let pred = sf_model::predict(
                &wf.device,
                &ds,
                &wl,
                paper::iters::POISSON,
                PredictionLevel::Extended,
            )
            .expect("design matches workload");
            let gpu = wf.gpu_estimate(&spec, &wl, paper::iters::POISSON);
            e.row(vec![
                format!("{nx}x{ny}"),
                format!("{b}B"),
                format!("{:.0}", fpga.runtime_s * 1e3),
                format!("{:.0}", pred.runtime_s * 1e3),
                format!("{:.0}", gpu.runtime_s * 1e3),
                format!("{:.2}x", gpu.runtime_s / fpga.runtime_s),
            ]);
        }
    }
    e.note("paper: FPGA keeps a 30–34% lead over the batched GPU");
    e
}

/// Fig. 3c — Poisson tiled runtimes on 15000²/20000².
pub fn fig3c() -> Experiment {
    let wf = wf();
    let spec = StencilSpec::poisson();
    let mut e = Experiment::new(
        "Fig. 3c",
        "Poisson spatial blocking runtime, 6 000 iterations, DDR4",
        &["mesh", "tile M", "FPGA ms", "model ms", "GPU ms", "FPGA/GPU"],
    );
    for (n, tile, ..) in paper::TABLE4_TILED {
        let wl = Workload::D2 { nx: n, ny: n, batch: 1 };
        let ds = poisson_design(&wl, ExecMode::Tiled1D { tile_m: tile }, MemKind::Ddr4);
        let fpga = wf.fpga_estimate(&ds, &wl, paper::iters::POISSON_TILED);
        let pred = sf_model::predict(
            &wf.device,
            &ds,
            &wl,
            paper::iters::POISSON_TILED,
            PredictionLevel::Extended,
        )
        .expect("design matches workload");
        let gpu = wf.gpu_estimate(&spec, &wl, paper::iters::POISSON_TILED);
        e.row(vec![
            format!("{n}²"),
            tile.to_string(),
            format!("{:.0}", fpga.runtime_s * 1e3),
            format!("{:.0}", pred.runtime_s * 1e3),
            format!("{:.0}", gpu.runtime_s * 1e3),
            format!("{:.2}x", gpu.runtime_s / fpga.runtime_s),
        ]);
    }
    e
}

/// Table IV — Poisson bandwidth and energy, ours vs paper.
pub fn table4() -> Experiment {
    let wf = wf();
    let spec = StencilSpec::poisson();
    let mut e = Experiment::new(
        "Table IV",
        "Poisson-5pt: bandwidth (GB/s) and energy (kJ)",
        &[
            "mesh", "cfg", "FPGA BW", "paper", "Δ", "GPU BW", "paper", "Δ", "FPGA kJ", "paper",
            "GPU kJ", "paper",
        ],
    );
    for (nx, ny, pb_f, pb_g, p100_f, p100_g, p1000_f, p1000_g, pe_f, pe_g) in paper::TABLE4_BASE {
        // baseline
        let wl = Workload::D2 { nx, ny, batch: 1 };
        let ds = poisson_design(&wl, ExecMode::Baseline, MemKind::Hbm);
        let f = wf.fpga_estimate(&ds, &wl, paper::iters::POISSON);
        let g = wf.gpu_estimate(&spec, &wl, paper::iters::POISSON);
        e.row(vec![
            format!("{nx}x{ny}"),
            "base".into(),
            format!("{:.0}", f.bandwidth_gbs),
            fmt::f0(Some(pb_f)),
            fmt::ratio(f.bandwidth_gbs, Some(pb_f)),
            format!("{:.0}", g.bandwidth_gbs),
            fmt::f0(Some(pb_g)),
            fmt::ratio(g.bandwidth_gbs, Some(pb_g)),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
        // batched
        for (b, pf, pg, pef, peg) in [
            (100usize, Some(p100_f), Some(p100_g), None, None),
            (1000, p1000_f, p1000_g, pe_f, pe_g),
        ] {
            if b == 1000 && pf.is_none() {
                continue;
            }
            let wl = Workload::D2 { nx, ny, batch: b };
            let ds = poisson_design(&wl, ExecMode::Batched { b }, MemKind::Hbm);
            let f = wf.fpga_estimate(&ds, &wl, paper::iters::POISSON);
            let g = wf.gpu_estimate(&spec, &wl, paper::iters::POISSON);
            e.row(vec![
                format!("{nx}x{ny}"),
                format!("{b}B"),
                format!("{:.0}", f.bandwidth_gbs),
                fmt::f0(pf),
                fmt::ratio(f.bandwidth_gbs, pf),
                format!("{:.0}", g.bandwidth_gbs),
                fmt::f0(pg),
                fmt::ratio(g.bandwidth_gbs, pg),
                if pef.is_some() { format!("{:.2}", f.energy_j / 1e3) } else { "-".into() },
                fmt::f3(pef).trim_end_matches('0').trim_end_matches('.').to_string(),
                if peg.is_some() { format!("{:.2}", g.energy_j / 1e3) } else { "-".into() },
                fmt::f3(peg).trim_end_matches('0').trim_end_matches('.').to_string(),
            ]);
        }
    }
    // tiled section
    for (n, tile, pf, pg, pef, peg) in paper::TABLE4_TILED {
        let wl = Workload::D2 { nx: n, ny: n, batch: 1 };
        let ds = poisson_design(&wl, ExecMode::Tiled1D { tile_m: tile }, MemKind::Ddr4);
        let f = wf.fpga_estimate(&ds, &wl, paper::iters::POISSON_TILED);
        let g = wf.gpu_estimate(&spec, &wl, paper::iters::POISSON_TILED);
        e.row(vec![
            format!("{n}²"),
            format!("tile {tile}"),
            format!("{:.0}", f.bandwidth_gbs),
            fmt::f0(Some(pf)),
            fmt::ratio(f.bandwidth_gbs, Some(pf)),
            format!("{:.0}", g.bandwidth_gbs),
            fmt::f0(Some(pg)),
            fmt::ratio(g.bandwidth_gbs, Some(pg)),
            format!("{:.2}", f.energy_j / 1e3),
            format!("{pef}"),
            format!("{:.2}", g.energy_j / 1e3),
            format!("{peg}"),
        ]);
    }
    e.note("bandwidth = mesh bytes accessed by the stencil loop ÷ loop time (paper's convention, 8 B/cell/iter)");
    e
}

/// Fig. 4a/4b — Jacobi baseline & batched runtimes.
pub fn fig4a() -> Experiment {
    let wf = wf();
    let spec = StencilSpec::jacobi();
    let mut e = Experiment::new(
        "Fig. 4a",
        "Jacobi-7pt-3D baseline runtime, 29 000 iterations",
        &["mesh", "FPGA ms", "model ms", "GPU ms", "GPU/FPGA"],
    );
    for (n, ..) in paper::TABLE5_BASE {
        let wl = Workload::D3 { nx: n, ny: n, nz: n, batch: 1 };
        let ds = jacobi_design(&wl, ExecMode::Baseline);
        let f = wf.fpga_estimate(&ds, &wl, paper::iters::JACOBI);
        let pred = sf_model::predict(
            &wf.device,
            &ds,
            &wl,
            paper::iters::JACOBI,
            PredictionLevel::Extended,
        )
        .expect("design matches workload");
        let g = wf.gpu_estimate(&spec, &wl, paper::iters::JACOBI);
        e.row(vec![
            format!("{n}³"),
            format!("{:.0}", f.runtime_s * 1e3),
            format!("{:.0}", pred.runtime_s * 1e3),
            format!("{:.0}", g.runtime_s * 1e3),
            format!("{:.2}x", f.runtime_s / g.runtime_s),
        ]);
    }
    e.note("paper: the GPU overtakes the FPGA on large 3D baselines");
    e
}

/// Fig. 4b — Jacobi batched runtime (10B, 50B).
pub fn fig4b() -> Experiment {
    let wf = wf();
    let spec = StencilSpec::jacobi();
    let mut e = Experiment::new(
        "Fig. 4b",
        "Jacobi batched runtime, 2 900 iterations",
        &["mesh", "batch", "FPGA ms", "GPU ms", "FPGA/GPU runtime"],
    );
    for (n, ..) in paper::TABLE5_BASE.iter().take(3) {
        for b in [10usize, 50] {
            let wl = Workload::D3 { nx: *n, ny: *n, nz: *n, batch: b };
            let ds = jacobi_design(&wl, ExecMode::Batched { b });
            let f = wf.fpga_estimate(&ds, &wl, paper::iters::JACOBI_BATCHED);
            let g = wf.gpu_estimate(&spec, &wl, paper::iters::JACOBI_BATCHED);
            e.row(vec![
                format!("{n}³"),
                format!("{b}B"),
                format!("{:.0}", f.runtime_s * 1e3),
                format!("{:.0}", g.runtime_s * 1e3),
                format!("{:.2}x", f.runtime_s / g.runtime_s),
            ]);
        }
    }
    e.note("paper: V100 is ~40% faster on the 50B problem, FPGA ~2x more energy-efficient");
    e
}

/// Fig. 4c — Jacobi tiled runtime.
pub fn fig4c() -> Experiment {
    let wf = wf();
    let spec = StencilSpec::jacobi();
    let mut e = Experiment::new(
        "Fig. 4c",
        "Jacobi spatial blocking runtime, 120 iterations",
        &["mesh", "tile", "FPGA ms", "model ms", "GPU ms", "FPGA/GPU"],
    );
    for (label, nx, ny, nz, tile, ..) in paper::TABLE5_TILED {
        let wl = Workload::D3 { nx, ny, nz, batch: 1 };
        let ds = jacobi_design(&wl, ExecMode::Tiled2D { tile_m: tile, tile_n: tile });
        let f = wf.fpga_estimate(&ds, &wl, paper::iters::JACOBI_TILED);
        let pred = sf_model::predict(
            &wf.device,
            &ds,
            &wl,
            paper::iters::JACOBI_TILED,
            PredictionLevel::Extended,
        )
        .expect("design matches workload");
        let g = wf.gpu_estimate(&spec, &wl, paper::iters::JACOBI_TILED);
        e.row(vec![
            label.to_string(),
            tile.to_string(),
            format!("{:.0}", f.runtime_s * 1e3),
            format!("{:.0}", pred.runtime_s * 1e3),
            format!("{:.0}", g.runtime_s * 1e3),
            format!("{:.2}x", f.runtime_s / g.runtime_s),
        ]);
    }
    e.note("the idealized eq-9 model under-predicts these runs by >15% (see model-accuracy) — the paper's 'slightly less accurate model predictions in Fig. 4(c)'");
    e
}

/// Table V — Jacobi bandwidth and energy, ours vs paper.
pub fn table5() -> Experiment {
    let wf = wf();
    let spec = StencilSpec::jacobi();
    let mut e = Experiment::new(
        "Table V",
        "Jacobi-7pt-3D: bandwidth (GB/s) and energy (kJ)",
        &[
            "mesh", "cfg", "FPGA BW", "paper", "Δ", "GPU BW", "paper", "Δ", "FPGA kJ", "paper",
            "GPU kJ", "paper",
        ],
    );
    for (n, pb_f, pb_g, p10_f, p10_g, p50_f, p50_g, pe_f, pe_g) in paper::TABLE5_BASE {
        let wl = Workload::D3 { nx: n, ny: n, nz: n, batch: 1 };
        let ds = jacobi_design(&wl, ExecMode::Baseline);
        let f = wf.fpga_estimate(&ds, &wl, paper::iters::JACOBI);
        let g = wf.gpu_estimate(&spec, &wl, paper::iters::JACOBI);
        e.row(vec![
            format!("{n}³"),
            "base".into(),
            format!("{:.0}", f.bandwidth_gbs),
            fmt::f0(Some(pb_f)),
            fmt::ratio(f.bandwidth_gbs, Some(pb_f)),
            format!("{:.0}", g.bandwidth_gbs),
            fmt::f0(Some(pb_g)),
            fmt::ratio(g.bandwidth_gbs, Some(pb_g)),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
        for (b, pf, pg, pef, peg) in
            [(10usize, Some(p10_f), Some(p10_g), None, None), (50, p50_f, p50_g, pe_f, pe_g)]
        {
            if pf.is_none() {
                continue;
            }
            let wl = Workload::D3 { nx: n, ny: n, nz: n, batch: b };
            let ds = jacobi_design(&wl, ExecMode::Batched { b });
            let f = wf.fpga_estimate(&ds, &wl, paper::iters::JACOBI_BATCHED);
            let g = wf.gpu_estimate(&spec, &wl, paper::iters::JACOBI_BATCHED);
            e.row(vec![
                format!("{n}³"),
                format!("{b}B"),
                format!("{:.0}", f.bandwidth_gbs),
                fmt::f0(pf),
                fmt::ratio(f.bandwidth_gbs, pf),
                format!("{:.0}", g.bandwidth_gbs),
                fmt::f0(pg),
                fmt::ratio(g.bandwidth_gbs, pg),
                if pef.is_some() { format!("{:.2}", f.energy_j / 1e3) } else { "-".into() },
                pef.map(|v| format!("{v}")).unwrap_or_else(|| "-".into()),
                if peg.is_some() { format!("{:.2}", g.energy_j / 1e3) } else { "-".into() },
                peg.map(|v| format!("{v}")).unwrap_or_else(|| "-".into()),
            ]);
        }
    }
    for (label, nx, ny, nz, tile, pf, pg, pef, peg) in paper::TABLE5_TILED {
        let wl = Workload::D3 { nx, ny, nz, batch: 1 };
        let ds = jacobi_design(&wl, ExecMode::Tiled2D { tile_m: tile, tile_n: tile });
        let f = wf.fpga_estimate(&ds, &wl, paper::iters::JACOBI_TILED);
        let g = wf.gpu_estimate(&spec, &wl, paper::iters::JACOBI_TILED);
        e.row(vec![
            label.to_string(),
            format!("tile {tile}"),
            format!("{:.0}", f.bandwidth_gbs),
            fmt::f0(Some(pf)),
            fmt::ratio(f.bandwidth_gbs, Some(pf)),
            format!("{:.0}", g.bandwidth_gbs),
            fmt::f0(Some(pg)),
            fmt::ratio(g.bandwidth_gbs, Some(pg)),
            format!("{:.3}", f.energy_j / 1e3),
            format!("{pef}"),
            format!("{:.3}", g.energy_j / 1e3),
            format!("{peg}"),
        ]);
    }
    e.note(
        "tiled rows pay the strided-run AXI penalty — the paper's 'transfers less than 4K' effect",
    );
    e
}

/// Fig. 5a — RTM baseline runtimes.
pub fn fig5a() -> Experiment {
    let wf = wf();
    let spec = StencilSpec::rtm();
    let mut e = Experiment::new(
        "Fig. 5a",
        "RTM baseline runtime, 1 800 iterations",
        &["mesh", "FPGA ms", "model ms", "GPU ms", "FPGA/GPU"],
    );
    for (nx, ny, nz, ..) in paper::TABLE6 {
        let wl = Workload::D3 { nx, ny, nz, batch: 1 };
        let ds = rtm_design(&wl, ExecMode::Baseline);
        let f = wf.fpga_estimate(&ds, &wl, paper::iters::RTM);
        let pred =
            sf_model::predict(&wf.device, &ds, &wl, paper::iters::RTM, PredictionLevel::Extended)
                .expect("design matches workload");
        let g = wf.gpu_estimate(&spec, &wl, paper::iters::RTM);
        e.row(vec![
            format!("{nx}x{ny}x{nz}"),
            format!("{:.0}", f.runtime_s * 1e3),
            format!("{:.0}", pred.runtime_s * 1e3),
            format!("{:.0}", g.runtime_s * 1e3),
            format!("{:.2}x", f.runtime_s / g.runtime_s),
        ]);
    }
    e
}

/// Fig. 5b — RTM batched runtimes (20B, 40B).
pub fn fig5b() -> Experiment {
    let wf = wf();
    let spec = StencilSpec::rtm();
    let mut e = Experiment::new(
        "Fig. 5b",
        "RTM batched runtime, 180 iterations",
        &["mesh", "batch", "FPGA ms", "GPU ms", "FPGA/GPU"],
    );
    for (nx, ny, nz, ..) in paper::TABLE6 {
        for b in [20usize, 40] {
            let wl = Workload::D3 { nx, ny, nz, batch: b };
            let ds = rtm_design(&wl, ExecMode::Batched { b });
            let f = wf.fpga_estimate(&ds, &wl, paper::iters::RTM_BATCHED);
            let g = wf.gpu_estimate(&spec, &wl, paper::iters::RTM_BATCHED);
            e.row(vec![
                format!("{nx}x{ny}x{nz}"),
                format!("{b}B"),
                format!("{:.0}", f.runtime_s * 1e3),
                format!("{:.0}", g.runtime_s * 1e3),
                format!("{:.2}x", f.runtime_s / g.runtime_s),
            ]);
        }
    }
    e
}

/// Table VI — RTM bandwidth and energy, ours vs paper.
pub fn table6() -> Experiment {
    let wf = wf();
    let spec = StencilSpec::rtm();
    let mut e = Experiment::new(
        "Table VI",
        "RTM: avg bandwidth (GB/s) and energy (kJ)",
        &[
            "mesh", "cfg", "FPGA BW", "paper", "Δ", "GPU BW", "paper", "Δ", "FPGA kJ", "paper",
            "GPU kJ", "paper",
        ],
    );
    for (nx, ny, nz, pb_f, pb_g, p20_f, p20_g, p40_f, p40_g, pe_f, pe_g) in paper::TABLE6 {
        let wl = Workload::D3 { nx, ny, nz, batch: 1 };
        let ds = rtm_design(&wl, ExecMode::Baseline);
        let f = wf.fpga_estimate(&ds, &wl, paper::iters::RTM);
        let g = wf.gpu_estimate(&spec, &wl, paper::iters::RTM);
        e.row(vec![
            format!("{nx}x{ny}x{nz}"),
            "base".into(),
            format!("{:.0}", f.bandwidth_gbs),
            fmt::f0(Some(pb_f)),
            fmt::ratio(f.bandwidth_gbs, Some(pb_f)),
            format!("{:.0}", g.bandwidth_gbs),
            fmt::f0(Some(pb_g)),
            fmt::ratio(g.bandwidth_gbs, Some(pb_g)),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
        for (b, pf, pg, pef, peg) in
            [(20usize, p20_f, p20_g, None, None), (40, p40_f, p40_g, Some(pe_f), Some(pe_g))]
        {
            let wl = Workload::D3 { nx, ny, nz, batch: b };
            let ds = rtm_design(&wl, ExecMode::Batched { b });
            let f = wf.fpga_estimate(&ds, &wl, paper::iters::RTM_BATCHED);
            let g = wf.gpu_estimate(&spec, &wl, paper::iters::RTM_BATCHED);
            e.row(vec![
                format!("{nx}x{ny}x{nz}"),
                format!("{b}B"),
                format!("{:.0}", f.bandwidth_gbs),
                fmt::f0(Some(pf)),
                fmt::ratio(f.bandwidth_gbs, Some(pf)),
                format!("{:.0}", g.bandwidth_gbs),
                fmt::f0(Some(pg)),
                fmt::ratio(g.bandwidth_gbs, Some(pg)),
                if pef.is_some() { format!("{:.3}", f.energy_j / 1e3) } else { "-".into() },
                pef.map(|v| format!("{v}")).unwrap_or_else(|| "-".into()),
                if peg.is_some() { format!("{:.3}", g.energy_j / 1e3) } else { "-".into() },
                peg.map(|v| format!("{v}")).unwrap_or_else(|| "-".into()),
            ]);
        }
    }
    e.note("FPGA bandwidth counts the fused loop (224 B/cell/iter), GPU the full chain (584 B/cell/iter) — the paper's split convention");
    e
}

/// §V accuracy claim — model-predicted vs achieved runtime across the suite.
pub fn model_accuracy() -> Experiment {
    let stats =
        accuracy::accuracy_suite(&FpgaDevice::u280()).expect("paper suite is feasible on the U280");
    let mut e = Experiment::new(
        "Model accuracy",
        "predicted vs achieved runtime (paper claim: ±15% on >85% of configs)",
        &["config", "ideal err %", "extended err %", "achieved ms"],
    );
    for c in &stats.cases {
        e.row(vec![
            c.label.clone(),
            format!("{:+.1}", c.ideal_err_pct()),
            format!("{:+.1}", c.extended_err_pct()),
            format!("{:.2}", c.achieved_s * 1e3),
        ]);
    }
    let fi = stats.frac_within(15.0, PredictionLevel::Ideal) * 100.0;
    let fe = stats.frac_within(15.0, PredictionLevel::Extended) * 100.0;
    e.note(&format!(
        "within ±15%: ideal equations {fi:.0}% of {} configs, extended model {fe:.0}%",
        stats.cases.len()
    ));
    e.note("ideal drifts on latency-dominated small baselines and memory-bound 3D tiles — the gaps the paper itself flags");
    e
}

/// Ablation (paper future work): alternative number representations.
/// For each application and format: `G_dsp`, the DSP-limited unroll, the
/// synthesized design at the paper's `V`, and the modeled speedup over fp32.
pub fn ablation_precision() -> Experiment {
    let d = FpgaDevice::u280();
    let wf = wf();
    let mut e = Experiment::new(
        "Ablation: precision",
        "alternative number representations (paper §VI future work)",
        &["app", "format", "G_dsp", "p_dsp", "p used", "freq MHz", "runtime ms", "vs fp32"],
    );
    let cases: [(StencilSpec, usize, Workload, u64); 3] = [
        (StencilSpec::poisson(), 8, Workload::D2 { nx: 400, ny: 400, batch: 1 }, 60_000),
        (StencilSpec::jacobi(), 8, Workload::D3 { nx: 200, ny: 200, nz: 200, batch: 1 }, 29_000),
        (StencilSpec::rtm(), 1, Workload::D3 { nx: 50, ny: 50, nz: 50, batch: 1 }, 1_800),
    ];
    for (base, v, wl, niter) in cases {
        let mut fp32_ms = None;
        for fmt in
            [NumberFormat::Fp32, NumberFormat::Fp16, NumberFormat::Fixed18, NumberFormat::Fixed32]
        {
            let spec = base.with_format(fmt);
            let p_dsp = equations::p_dsp(d.dsp_total, d.dsp_util_target, v, spec.gdsp());
            // deepest p that synthesizes (memory may bind first)
            let mut chosen = None;
            for p in (1..=p_dsp.min(128)).rev() {
                if let Ok(ds) = synthesize(&d, &spec, v, p, ExecMode::Baseline, MemKind::Hbm, &wl) {
                    chosen = Some(ds);
                    break;
                }
            }
            let Some(ds) = chosen else {
                e.row(vec![
                    format!("{}", base.app),
                    fmt.to_string(),
                    spec.gdsp().to_string(),
                    p_dsp.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            };
            let rep = wf.fpga_estimate(&ds, &wl, niter);
            let ms = rep.runtime_s * 1e3;
            let speedup =
                fp32_ms.map(|f: f64| format!("{:.2}x", f / ms)).unwrap_or_else(|| "1.00x".into());
            if fmt == NumberFormat::Fp32 {
                fp32_ms = Some(ms);
            }
            e.row(vec![
                format!("{}", base.app),
                fmt.to_string(),
                spec.gdsp().to_string(),
                p_dsp.to_string(),
                ds.p.to_string(),
                format!("{:.0}", ds.freq_mhz()),
                format!("{ms:.1}"),
                speedup,
            ]);
        }
    }
    e.note("narrower formats multiply the feasible unroll depth (and halve bandwidth demand) — numerics remain f32 in the behavioral simulator");
    e
}

/// Ablation: which modeled overhead mechanism costs what. Re-prices the
/// Poisson baseline suite on device variants with each overhead removed.
pub fn ablation_overheads() -> Experiment {
    let spec = StencilSpec::poisson();
    let mut e = Experiment::new(
        "Ablation: overheads",
        "contribution of each modeled overhead (Poisson baseline, GB/s)",
        &["mesh", "full model", "no row gap", "no pipe latency", "no host call", "ideal eq.2"],
    );
    let base_dev = FpgaDevice::u280();
    let mut no_gap = base_dev.clone();
    no_gap.axi_issue_gap_cycles = 0;
    let mut no_host = base_dev.clone();
    no_host.host_call_latency_s = 0.0;

    for (nx, ny, ..) in paper::TABLE4_BASE {
        let wl = Workload::D2 { nx, ny, batch: 1 };
        let bw = |dev: &FpgaDevice, zero_latency: bool| -> f64 {
            let mut ds =
                synthesize(dev, &spec, 8, 60, ExecMode::Baseline, MemKind::Hbm, &wl).unwrap();
            if zero_latency {
                ds.pipeline_latency_cycles = 0;
            }
            sf_fpga::cycles::plan(dev, &ds, &wl, paper::iters::POISSON).bandwidth_gbs()
        };
        let ds =
            synthesize(&base_dev, &spec, 8, 60, ExecMode::Baseline, MemKind::Hbm, &wl).unwrap();
        let ideal =
            sf_model::predict(&base_dev, &ds, &wl, paper::iters::POISSON, PredictionLevel::Ideal)
                .expect("design matches workload");
        e.row(vec![
            format!("{nx}x{ny}"),
            format!("{:.0}", bw(&base_dev, false)),
            format!("{:.0}", bw(&no_gap, false)),
            format!("{:.0}", bw(&base_dev, true)),
            format!("{:.0}", bw(&no_host, false)),
            format!("{:.0}", ideal.bandwidth_gbs),
        ]);
    }
    e.note("the paper's measured baseline falloff (Table IV) is the gap between 'ideal eq.2' and 'full model'");
    e
}

/// The paper's headline energy story in one table: FPGA vs GPU energy and
/// the savings ratio for the flagship configuration of each application.
pub fn energy_summary() -> Experiment {
    let wf = wf();
    let mut e = Experiment::new(
        "Energy summary",
        "FPGA vs GPU energy on each application's flagship configuration",
        &["app", "configuration", "FPGA kJ", "GPU kJ", "savings (ours)", "(paper)"],
    );
    // Poisson 1000B 200x100, 60k iters: paper 0.77 vs 3.48 → 4.5×
    {
        let wl = Workload::D2 { nx: 200, ny: 100, batch: 1000 };
        let ds = poisson_design(&wl, ExecMode::Batched { b: 1000 }, MemKind::Hbm);
        let f = wf.fpga_estimate(&ds, &wl, paper::iters::POISSON);
        let g = wf.gpu_estimate(&StencilSpec::poisson(), &wl, paper::iters::POISSON);
        e.row(vec![
            "Poisson-5pt-2D".into(),
            "1000B 200x100".into(),
            format!("{:.2}", f.energy_j / 1e3),
            format!("{:.2}", g.energy_j / 1e3),
            format!("{:.1}x", g.energy_j / f.energy_j),
            "4.5x".into(),
        ]);
    }
    // Jacobi 50B 200³, 2.9k iters: paper 1.96 vs 3.77 → 1.9×
    {
        let wl = Workload::D3 { nx: 200, ny: 200, nz: 200, batch: 50 };
        let ds = jacobi_design(&wl, ExecMode::Batched { b: 50 });
        let f = wf.fpga_estimate(&ds, &wl, paper::iters::JACOBI_BATCHED);
        let g = wf.gpu_estimate(&StencilSpec::jacobi(), &wl, paper::iters::JACOBI_BATCHED);
        e.row(vec![
            "Jacobi-7pt-3D".into(),
            "50B 200³".into(),
            format!("{:.2}", f.energy_j / 1e3),
            format!("{:.2}", g.energy_j / 1e3),
            format!("{:.1}x", g.energy_j / f.energy_j),
            "1.9x".into(),
        ]);
    }
    // Jacobi tiled 600³ @ 640: paper 0.049 vs 0.106 → 2.2×
    {
        let wl = Workload::D3 { nx: 600, ny: 600, nz: 600, batch: 1 };
        let ds = jacobi_design(&wl, ExecMode::Tiled2D { tile_m: 640, tile_n: 640 });
        let f = wf.fpga_estimate(&ds, &wl, paper::iters::JACOBI_TILED);
        let g = wf.gpu_estimate(&StencilSpec::jacobi(), &wl, paper::iters::JACOBI_TILED);
        e.row(vec![
            "Jacobi-7pt-3D".into(),
            "tiled 600³ M=640".into(),
            format!("{:.3}", f.energy_j / 1e3),
            format!("{:.3}", g.energy_j / 1e3),
            format!("{:.1}x", g.energy_j / f.energy_j),
            "2.2x".into(),
        ]);
    }
    // RTM 40B 50³: paper 0.130 vs 0.338 → 2.6× ("over 2× for the largest app")
    {
        let wl = Workload::D3 { nx: 50, ny: 50, nz: 50, batch: 40 };
        let ds = rtm_design(&wl, ExecMode::Batched { b: 40 });
        let f = wf.fpga_estimate(&ds, &wl, paper::iters::RTM_BATCHED);
        let g = wf.gpu_estimate(&StencilSpec::rtm(), &wl, paper::iters::RTM_BATCHED);
        e.row(vec![
            "Reverse Time Migration".into(),
            "40B 50³".into(),
            format!("{:.3}", f.energy_j / 1e3),
            format!("{:.3}", g.energy_j / 1e3),
            format!("{:.1}x", g.energy_j / f.energy_j),
            "2.6x".into(),
        ]);
    }
    e.note("abstract claim: 'over 2× energy savings for the largest non-trivial application' — holds on every flagship row");
    e
}

/// Ablation: device scaling. Re-runs the DSE for each application on the
/// U280 and a hypothetical 2× device, showing how the workflow's chosen
/// design and throughput shift with silicon.
pub fn ablation_device_scaling() -> Experiment {
    let mut e = Experiment::new(
        "Ablation: device scaling",
        "DSE winners on the U280 vs a hypothetical 2x device",
        &["app", "device", "V", "p", "mode", "freq MHz", "runtime ms"],
    );
    let cases: [(StencilSpec, Workload, u64); 3] = [
        (StencilSpec::poisson(), Workload::D2 { nx: 400, ny: 400, batch: 1 }, 60_000),
        (StencilSpec::jacobi(), Workload::D3 { nx: 200, ny: 200, nz: 200, batch: 1 }, 29_000),
        (StencilSpec::rtm(), Workload::D3 { nx: 64, ny: 64, nz: 64, batch: 1 }, 1_800),
    ];
    for (spec, wl, niter) in cases {
        for dev in [FpgaDevice::u280(), FpgaDevice::hypothetical_2x()] {
            let mut w = wf();
            w.device = dev.clone();
            match w.best_design(&spec, &wl, niter) {
                Ok(best) => {
                    let rep = w.fpga_estimate(&best.design, &wl, niter);
                    e.row(vec![
                        format!("{}", spec.app),
                        dev.name.clone(),
                        best.design.v.to_string(),
                        best.design.p.to_string(),
                        format!("{:?}", best.design.mode),
                        format!("{:.0}", best.design.freq_mhz()),
                        format!("{:.1}", rep.runtime_s * 1e3),
                    ]);
                }
                Err(_) => e.row(vec![
                    format!("{}", spec.app),
                    dev.name.clone(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]),
            }
        }
    }
    e.note(
        "the 2x device roughly doubles feasible pV; RTM gains the most (its p was DSP-walled at 3)",
    );
    e
}

/// Every experiment, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        table1(),
        table2(),
        table3(),
        fig3a(),
        fig3b(),
        fig3c(),
        table4(),
        fig4a(),
        fig4b(),
        fig4c(),
        table5(),
        fig5a(),
        fig5b(),
        table6(),
        model_accuracy(),
        energy_summary(),
        ablation_precision(),
        ablation_overheads(),
        ablation_device_scaling(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_renders() {
        for e in all() {
            let s = e.render();
            assert!(!e.rows.is_empty(), "{} has no rows", e.id);
            assert!(s.contains(&e.id));
        }
    }

    #[test]
    fn table4_shape_holds() {
        let t = table4();
        // every baseline row: our FPGA BW within 2x band of paper's
        for r in t.rows.iter().filter(|r| r[1] == "base") {
            let ours: f64 = r[2].parse().unwrap();
            let paper: f64 = r[3].parse().unwrap();
            let ratio = ours / paper;
            assert!((0.5..2.0).contains(&ratio), "{}: {ours} vs {paper}", r[0]);
        }
    }

    #[test]
    fn table6_fpga_gpu_parity() {
        let t = table6();
        for r in t.rows.iter().filter(|r| r[1] == "40B") {
            let f: f64 = r[2].parse().unwrap();
            assert!(f > 0.0, "{:?}", r);
        }
    }
}

#[cfg(test)]
mod regression_bands {
    //! Calibration regression nets: if a future change drifts the simulator
    //! or models away from the paper, these trip before EXPERIMENTS.md lies.

    use super::*;

    #[test]
    fn table4_fpga_rows_within_15pct() {
        let wf = wf();
        for (nx, ny, pb_f, _, p100_f, _, p1000_f, ..) in paper::TABLE4_BASE {
            let check = |mode: ExecMode, b: usize, paper_bw: f64| {
                let wl = Workload::D2 { nx, ny, batch: b };
                let ds = poisson_design(&wl, mode, MemKind::Hbm);
                let r = wf.fpga_estimate(&ds, &wl, paper::iters::POISSON);
                let dev = (r.bandwidth_gbs - paper_bw).abs() / paper_bw;
                assert!(
                    dev < 0.15,
                    "{nx}x{ny} b={b}: {:.0} vs paper {paper_bw} ({:.0}%)",
                    r.bandwidth_gbs,
                    dev * 100.0
                );
            };
            check(ExecMode::Baseline, 1, pb_f);
            check(ExecMode::Batched { b: 100 }, 100, p100_f);
            if let Some(p1000) = p1000_f {
                check(ExecMode::Batched { b: 1000 }, 1000, p1000);
            }
        }
    }

    #[test]
    fn table4_tiled_rows_within_10pct() {
        let wf = wf();
        for (n, tile, pf, ..) in paper::TABLE4_TILED {
            let wl = Workload::D2 { nx: n, ny: n, batch: 1 };
            let ds = poisson_design(&wl, ExecMode::Tiled1D { tile_m: tile }, MemKind::Ddr4);
            let r = wf.fpga_estimate(&ds, &wl, paper::iters::POISSON_TILED);
            let dev = (r.bandwidth_gbs - pf).abs() / pf;
            assert!(dev < 0.10, "{n}² tile {tile}: {:.0} vs paper {pf}", r.bandwidth_gbs);
        }
    }

    #[test]
    fn table5_fpga_rows_within_25pct() {
        let wf = wf();
        for (n, pb_f, ..) in paper::TABLE5_BASE {
            let wl = Workload::D3 { nx: n, ny: n, nz: n, batch: 1 };
            let ds = jacobi_design(&wl, ExecMode::Baseline);
            let r = wf.fpga_estimate(&ds, &wl, paper::iters::JACOBI);
            let dev = (r.bandwidth_gbs - pb_f).abs() / pb_f;
            assert!(dev < 0.25, "{n}³: {:.0} vs paper {pb_f}", r.bandwidth_gbs);
        }
        for (label, nx, ny, nz, tile, pf, ..) in paper::TABLE5_TILED {
            let wl = Workload::D3 { nx, ny, nz, batch: 1 };
            let ds = jacobi_design(&wl, ExecMode::Tiled2D { tile_m: tile, tile_n: tile });
            let r = wf.fpga_estimate(&ds, &wl, paper::iters::JACOBI_TILED);
            let dev = (r.bandwidth_gbs - pf).abs() / pf;
            assert!(dev < 0.25, "{label} tile {tile}: {:.0} vs paper {pf}", r.bandwidth_gbs);
        }
    }

    #[test]
    fn rtm_ratios_preserved_even_where_absolutes_differ() {
        // Table VI absolutes deviate (byte-convention ambiguity, see
        // EXPERIMENTS.md); the decision-relevant ratios must hold:
        let wf = wf();
        let spec = StencilSpec::rtm();
        for (nx, ny, nz, ..) in paper::TABLE6 {
            let solo = Workload::D3 { nx, ny, nz, batch: 1 };
            let ds1 = rtm_design(&solo, ExecMode::Baseline);
            let f1 = wf.fpga_estimate(&ds1, &solo, paper::iters::RTM);
            let b = Workload::D3 { nx, ny, nz, batch: 40 };
            let ds2 = rtm_design(&b, ExecMode::Batched { b: 40 });
            let f2 = wf.fpga_estimate(&ds2, &b, paper::iters::RTM_BATCHED);
            // batching gain ≈ paper's ~2.1-2.9×
            let gain = f2.cells_per_sec / f1.cells_per_sec;
            assert!((1.5..4.0).contains(&gain), "{nx}x{ny}x{nz}: gain {gain:.2}");
            // FPGA/GPU parity band
            let g2 = wf.gpu_estimate(&spec, &b, paper::iters::RTM_BATCHED);
            let speedup = g2.runtime_s / f2.runtime_s;
            assert!((0.5..2.5).contains(&speedup), "{nx}x{ny}x{nz}: {speedup:.2}");
        }
    }

    #[test]
    fn energy_summary_every_row_saves_energy() {
        let t = energy_summary();
        for r in &t.rows {
            let f: f64 = r[2].parse().unwrap();
            let g: f64 = r[3].parse().unwrap();
            assert!(g > f, "{}: FPGA {f} kJ vs GPU {g} kJ", r[0]);
        }
    }
}
