//! Argument-parsing helpers shared by the command-line front ends.

use sf_fpga::design::Workload;
use sf_kernels::StencilSpec;

/// Resolve an application name.
pub fn parse_app(name: &str) -> Result<StencilSpec, String> {
    match name {
        "poisson" => Ok(StencilSpec::poisson()),
        "jacobi" => Ok(StencilSpec::jacobi()),
        "rtm" => Ok(StencilSpec::rtm()),
        other => Err(format!("unknown app '{other}' (expected poisson|jacobi|rtm)")),
    }
}

/// Parse a `NXxNY[xNZ]` mesh string into a workload for an app of
/// `dims` dimensions, with a batch factor.
pub fn parse_mesh(dims: usize, mesh: &str, batch: usize) -> Result<Workload, String> {
    if batch == 0 {
        return Err("batch must be positive".into());
    }
    let parts: Result<Vec<usize>, _> = mesh.split('x').map(|s| s.parse::<usize>()).collect();
    let parts = parts.map_err(|_| format!("bad mesh '{mesh}'"))?;
    if parts.contains(&0) {
        return Err(format!("mesh '{mesh}' has a zero dimension"));
    }
    let wl = match (dims, parts.as_slice()) {
        (2, [nx, ny]) => Workload::D2 { nx: *nx, ny: *ny, batch },
        (3, [nx, ny, nz]) => Workload::D3 { nx: *nx, ny: *ny, nz: *nz, batch },
        (d, p) => return Err(format!("{d}D app needs a {d}-component mesh, got {}", p.len())),
    };
    // reject sizes whose cell count overflows before they reach the cycle
    // model's u64 arithmetic
    let total: u128 = parts.iter().map(|&d| d as u128).product::<u128>() * batch as u128;
    if total > u64::MAX as u128 / 1024 {
        return Err(format!("mesh '{mesh}' x batch {batch} overflows the cell budget"));
    }
    Ok(wl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_names_resolve() {
        assert_eq!(parse_app("poisson").unwrap().dims, 2);
        assert_eq!(parse_app("jacobi").unwrap().dims, 3);
        assert_eq!(parse_app("rtm").unwrap().stages, 4);
        assert!(parse_app("fft").unwrap_err().contains("unknown app"));
    }

    #[test]
    fn mesh_strings_parse() {
        assert_eq!(
            parse_mesh(2, "400x300", 1).unwrap(),
            Workload::D2 { nx: 400, ny: 300, batch: 1 }
        );
        assert_eq!(
            parse_mesh(3, "50x50x16", 40).unwrap(),
            Workload::D3 { nx: 50, ny: 50, nz: 16, batch: 40 }
        );
    }

    #[test]
    fn mesh_errors_are_specific() {
        assert!(parse_mesh(2, "400", 1).unwrap_err().contains("2-component"));
        assert!(parse_mesh(3, "4x4", 1).unwrap_err().contains("3-component"));
        assert!(parse_mesh(2, "4xzebra", 1).unwrap_err().contains("bad mesh"));
        assert!(parse_mesh(2, "4x0", 1).unwrap_err().contains("zero dimension"));
        assert!(parse_mesh(2, "4x4", 0).unwrap_err().contains("batch"));
    }

    #[test]
    fn overflowing_meshes_are_rejected_up_front() {
        let huge = format!("{0}x{0}", u64::MAX / 2);
        assert!(parse_mesh(2, &huge, 1).unwrap_err().contains("overflows"));
        assert!(parse_mesh(2, "1000000x1000000", usize::MAX).unwrap_err().contains("overflows"));
        // a large-but-sane mesh still parses
        assert!(parse_mesh(3, "4000x4000x1000", 1).is_ok());
    }
}
