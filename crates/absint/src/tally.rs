//! The counted-op record shared by the counting domain and the K-rules.

use sf_kernels::ops::{NumberFormat, OpCount};

/// Adds (incl. subs), muls and divs executed by one kernel update.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct OpTally {
    /// Additions + subtractions (both price as fadd).
    pub adds: u64,
    /// Multiplications.
    pub muls: u64,
    /// Divisions.
    pub divs: u64,
}

impl OpTally {
    /// Total floating-point operations.
    pub fn flops(&self) -> u64 {
        self.adds + self.muls + self.divs
    }

    /// Sum two tallies (e.g. across RTM's four fused stages).
    pub fn plus(self, o: OpTally) -> OpTally {
        OpTally { adds: self.adds + o.adds, muls: self.muls + o.muls, divs: self.divs + o.divs }
    }

    /// The tally as a declared-style [`OpCount`], so the spec's DSP pricing
    /// applies to counted ops verbatim.
    pub fn as_op_count(&self) -> OpCount {
        OpCount::new(self.adds as usize, self.muls as usize, self.divs as usize)
    }

    /// `G_dsp` of the counted ops under a number format.
    pub fn gdsp(&self, format: NumberFormat) -> usize {
        self.as_op_count().dsp_with(format)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_prices_like_the_declared_count() {
        let t = OpTally { adds: 4, muls: 2, divs: 0 };
        assert_eq!(t.flops(), 6);
        assert_eq!(t.gdsp(NumberFormat::Fp32), OpCount::new(4, 2, 0).dsp());
        let sum = t.plus(OpTally { adds: 1, muls: 1, divs: 1 });
        assert_eq!(sum, OpTally { adds: 5, muls: 3, divs: 1 });
    }
}
