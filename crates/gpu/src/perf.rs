//! The GPU execution model: per-iteration kernel chains priced on the
//! bandwidth-saturation curve.

use crate::device::GpuDevice;
use serde::{Deserialize, Serialize};
use sf_fpga::design::{ExecMode, Workload};
use sf_fpga::SimReport;
use sf_kernels::{AppId, StencilSpec};

/// One kernel in the per-iteration chain.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelCost {
    /// Bytes moved per mesh cell by this kernel.
    pub bytes_per_cell: usize,
    /// Bandwidth-efficiency factor (1.0 = streaming; < 1 for high-order
    /// stencil reads).
    pub efficiency: f64,
}

/// The kernel chain a tuned GPU implementation launches per iteration.
///
/// * Poisson / Jacobi: one stencil kernel, read + write (8 B/cell).
/// * RTM: the paper's Algorithm 1 loop chain — 4 × `f_pml` (read T + ρ + μ,
///   write K = 56 B/cell, high-order efficiency), 3 × `T`-update (read Y, K,
///   write T = 72 B/cell), 1 × `Y`-update (read Y, K1..K4, write Y =
///   144 B/cell).
pub fn kernel_chain(spec: &StencilSpec) -> Vec<KernelCost> {
    match spec.app {
        AppId::Poisson2D | AppId::Jacobi3D | AppId::Custom => vec![KernelCost {
            bytes_per_cell: spec.ext_read_bytes + spec.ext_write_bytes,
            efficiency: if spec.radius() >= 4 { f64::NAN } else { 1.0 },
        }],
        AppId::Rtm3D => {
            let mut chain = Vec::new();
            for _ in 0..4 {
                chain.push(KernelCost {
                    bytes_per_cell: 24 + 4 + 4 + 24,
                    efficiency: f64::NAN, // patched to device.high_order_eff below
                });
            }
            for _ in 0..3 {
                chain.push(KernelCost { bytes_per_cell: 24 + 24 + 24, efficiency: 1.0 });
            }
            chain.push(KernelCost { bytes_per_cell: 24 * 5 + 24, efficiency: 1.0 });
            chain
        }
    }
}

/// Total chain bytes per cell per iteration — the paper's GPU bandwidth
/// accounting ("the GPU bandwidth therefore is the average for the full loop
/// chain").
pub fn chain_bytes_per_cell(spec: &StencilSpec) -> usize {
    kernel_chain(spec).iter().map(|k| k.bytes_per_cell).sum()
}

/// Model the GPU execution of `niter` iterations of a workload and produce a
/// report comparable with the FPGA simulator's.
///
/// Batched workloads launch one kernel over the whole batch per chain step
/// (the paper's OPS-style batching \[27\]); baselines launch per mesh.
///
/// ```
/// use sf_fpga::design::Workload;
/// use sf_gpu::{gpu_report, GpuDevice};
/// use sf_kernels::StencilSpec;
///
/// let v100 = GpuDevice::v100();
/// let small = Workload::D2 { nx: 200, ny: 100, batch: 1 };
/// let big = Workload::D2 { nx: 200, ny: 100, batch: 1000 };
/// let r1 = gpu_report(&v100, &StencilSpec::poisson(), &small, 60_000);
/// let r2 = gpu_report(&v100, &StencilSpec::poisson(), &big, 60_000);
/// // small meshes leave the GPU unsaturated — the paper's Table IV story
/// assert!(r1.bandwidth_gbs < 30.0);
/// assert!(r2.bandwidth_gbs > 400.0);
/// ```
pub fn gpu_report(gpu: &GpuDevice, spec: &StencilSpec, wl: &Workload, niter: u64) -> SimReport {
    let cells = wl.total_cells();
    let chain = kernel_chain(spec);
    // per-mesh footprint (read+write arrays) drives the 3D TLB droop —
    // batching many small meshes keeps per-mesh locality intact
    let mesh_bytes = wl.cells() as f64 * 2.0 * spec.elem_bytes as f64;
    let droop = gpu.droop_3d(spec.dims, mesh_bytes);

    let mut t_iter = 0.0f64;
    let mut bytes_iter = 0u64;
    for k in &chain {
        let eff = if k.efficiency.is_nan() { gpu.high_order_eff } else { k.efficiency };
        let bytes = cells * k.bytes_per_cell as u64;
        let bw = gpu.bw_eff(bytes as f64) * eff * droop;
        t_iter += gpu.launch_latency_s + bytes as f64 / bw;
        bytes_iter += bytes;
    }
    let runtime_s = t_iter * niter as f64;
    let total_bytes = bytes_iter * niter;
    let bw_avg = total_bytes as f64 / runtime_s;
    let power_w = gpu.power_w(bw_avg);
    let mode =
        if wl.batch() > 1 { ExecMode::Batched { b: wl.batch() } } else { ExecMode::Baseline };
    SimReport {
        app: spec.app,
        platform: gpu.name.clone(),
        mode,
        v: 0,
        p: 0,
        freq_mhz: 0.0,
        niter,
        passes: niter * chain.len() as u64,
        total_cycles: 0,
        runtime_s,
        bandwidth_gbs: bw_avg / 1.0e9,
        ext_read_bytes: total_bytes / 2,
        ext_write_bytes: total_bytes / 2,
        power_w,
        energy_j: power_w * runtime_s,
        cells_per_sec: (cells * niter) as f64 / runtime_s,
        gflops: (cells * niter) as f64 * spec.flops_per_cell() as f64 / runtime_s / 1.0e9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100() -> GpuDevice {
        GpuDevice::v100()
    }

    /// Helper: assert a modeled bandwidth is within `tol`× of the paper's.
    fn assert_near(modeled: f64, paper: f64, tol: f64, label: &str) {
        let ratio = modeled / paper;
        assert!(
            (1.0 / tol..tol).contains(&ratio),
            "{label}: modeled {modeled:.0} GB/s vs paper {paper:.0} GB/s"
        );
    }

    #[test]
    fn poisson_baseline_gpu_bandwidths_match_table4() {
        // paper Table IV GPU baseline column
        let cases = [
            (200usize, 100usize, 18.0),
            (200, 200, 32.0),
            (300, 150, 38.0),
            (300, 300, 69.0),
            (400, 200, 62.0),
            (400, 400, 116.0),
        ];
        for (nx, ny, paper) in cases {
            let wl = Workload::D2 { nx, ny, batch: 1 };
            let r = gpu_report(&v100(), &StencilSpec::poisson(), &wl, 60_000);
            assert_near(r.bandwidth_gbs, paper, 1.35, &format!("poisson {nx}x{ny}"));
        }
    }

    #[test]
    fn poisson_batched_gpu_bandwidths_match_table4() {
        // 1000B column: 530–560 GB/s
        for (nx, ny, paper) in [(200usize, 100usize, 530.0), (300, 150, 560.0)] {
            let wl = Workload::D2 { nx, ny, batch: 1000 };
            let r = gpu_report(&v100(), &StencilSpec::poisson(), &wl, 60_000);
            assert_near(r.bandwidth_gbs, paper, 1.25, &format!("poisson 1000B {nx}x{ny}"));
        }
    }

    #[test]
    fn jacobi_gpu_bandwidths_match_table5() {
        let cases = [(50usize, 83.0), (100, 284.0), (200, 496.0), (300, 553.0)];
        for (n, paper) in cases {
            let wl = Workload::D3 { nx: n, ny: n, nz: n, batch: 1 };
            let r = gpu_report(&v100(), &StencilSpec::jacobi(), &wl, 29_000);
            assert_near(r.bandwidth_gbs, paper, 1.35, &format!("jacobi {n}³"));
        }
    }

    #[test]
    fn rtm_gpu_chain_matches_table6_shape() {
        // baseline 32³: paper 130 GB/s; batched 40B: 266 GB/s
        let wl1 = Workload::D3 { nx: 32, ny: 32, nz: 32, batch: 1 };
        let r1 = gpu_report(&v100(), &StencilSpec::rtm(), &wl1, 1_800);
        assert_near(r1.bandwidth_gbs, 130.0, 1.35, "rtm base 32³");

        let wl2 = Workload::D3 { nx: 32, ny: 32, nz: 32, batch: 40 };
        let r2 = gpu_report(&v100(), &StencilSpec::rtm(), &wl2, 180);
        assert_near(r2.bandwidth_gbs, 266.0, 1.35, "rtm 40B 32³");
        assert!(r2.bandwidth_gbs > r1.bandwidth_gbs, "batching must help the GPU too");
    }

    #[test]
    fn chain_accounting() {
        assert_eq!(chain_bytes_per_cell(&StencilSpec::poisson()), 8);
        assert_eq!(chain_bytes_per_cell(&StencilSpec::jacobi()), 8);
        // 4×56 + 3×72 + 144 = 584
        assert_eq!(chain_bytes_per_cell(&StencilSpec::rtm()), 584);
        assert_eq!(kernel_chain(&StencilSpec::rtm()).len(), 8);
    }

    #[test]
    fn gpu_power_tracks_utilization() {
        let small = Workload::D2 { nx: 200, ny: 100, batch: 1 };
        let r_small = gpu_report(&v100(), &StencilSpec::poisson(), &small, 60_000);
        assert!(r_small.power_w < 60.0, "idle-ish small mesh: {} W", r_small.power_w);
        let big = Workload::D2 { nx: 200, ny: 100, batch: 1000 };
        let r_big = gpu_report(&v100(), &StencilSpec::poisson(), &big, 60_000);
        assert!(r_big.power_w > 200.0, "saturated batch: {} W", r_big.power_w);
    }

    #[test]
    fn gpu_energy_poisson_1000b_matches_table4() {
        // paper: 3.48 kJ for 200×100 1000B, 60 000 iterations
        let wl = Workload::D2 { nx: 200, ny: 100, batch: 1000 };
        let r = gpu_report(&v100(), &StencilSpec::poisson(), &wl, 60_000);
        let kj = r.energy_j / 1e3;
        assert!((2.4..5.0).contains(&kj), "modeled {kj:.2} kJ vs paper 3.48 kJ");
    }
}
