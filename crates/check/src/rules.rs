//! The rule engine: a [`Design`] in, a [`CheckReport`] out, no simulation.
//!
//! Every rule re-derives its bound from the same formulas `sf_fpga`'s
//! synthesizer and executors use (eqs. 4–12 of the paper), so with default
//! overrides a check-clean design is guaranteed to synthesize, and the
//! FIFO-depth analysis is the static dual of the runtime watchdog: any
//! depth the deadlock rule accepts can absorb a full AXI burst and
//! therefore cannot wedge the stream pipeline.

use crate::diag::{CheckReport, Diagnostic, RuleId, Severity};
use crate::graph::DataflowGraph;
use sf_fpga::design::{ExecMode, MemKind, StencilDesign, Workload};
use sf_fpga::{axi, fifo, resources, slr, FpgaDevice};
use sf_kernels::StencilSpec;

/// A candidate accelerator configuration, prior to (and independent of)
/// synthesis. The optional overrides let callers describe deliberately
/// out-of-spec structures — an undersized FIFO, a truncated window buffer —
/// that the default sizing rules would never produce, so violation classes
/// can be seeded and caught statically.
#[derive(Clone, Debug, PartialEq)]
pub struct Design {
    /// The stencil application.
    pub spec: StencilSpec,
    /// Vectorization factor `V`.
    pub v: usize,
    /// Iterative unroll factor `p`.
    pub p: usize,
    /// Execution strategy (baseline / batched / tiled).
    pub mode: ExecMode,
    /// External memory binding.
    pub mem: MemKind,
    /// Problem shape.
    pub workload: Workload,
    /// Override the per-edge stream-FIFO depth (elements). `None` uses the
    /// synthesizer's sizing rule ([`fifo::interstage_depth`]).
    pub fifo_depth: Option<usize>,
    /// Override the cells each window line/plane buffer holds. `None` uses
    /// the streaming unit implied by workload and mode.
    pub window_units: Option<usize>,
    /// Accelerator cards the workload is sharded across (`sf-multi` 1D slab
    /// decomposition). `1` — the single-device default — disables the
    /// multi-device legality rule (SFC-X01).
    pub devices: usize,
}

impl Design {
    /// A design with default (rule-sized) FIFO and window buffers.
    pub fn new(
        spec: StencilSpec,
        v: usize,
        p: usize,
        mode: ExecMode,
        mem: MemKind,
        workload: Workload,
    ) -> Self {
        Design { spec, v, p, mode, mem, workload, fifo_depth: None, window_units: None, devices: 1 }
    }

    /// The same design spread across `devices` accelerator cards.
    pub fn with_devices(mut self, devices: usize) -> Self {
        self.devices = devices;
        self
    }

    /// Re-describe an already-synthesized design for checking (always uses
    /// the default buffer sizing — that is what the synthesizer built).
    pub fn from_synthesized(d: &StencilDesign, workload: &Workload) -> Self {
        Design::new(d.spec, d.v, d.p, d.mode, d.mem, *workload)
    }
}

/// Cells in the buffered streaming unit (rows for 2D, planes for 3D,
/// shrunk by tiling) — mirrors the synthesizer's accounting. `None` when
/// mode and workload dimensionality disagree.
fn natural_unit_cells(mode: &ExecMode, wl: &Workload) -> Option<usize> {
    match (wl, mode) {
        (Workload::D2 { .. }, ExecMode::Tiled2D { .. }) => None,
        (Workload::D3 { .. }, ExecMode::Tiled1D { .. }) => None,
        (Workload::D2 { .. }, ExecMode::Tiled1D { tile_m }) => Some(*tile_m),
        (Workload::D2 { nx, .. }, _) => Some(*nx),
        (Workload::D3 { .. }, ExecMode::Tiled2D { tile_m, tile_n }) => Some(tile_m * tile_n),
        (Workload::D3 { nx, ny, .. }, _) => Some(nx * ny),
    }
}

/// Width (cells) of one streamed row in x — what the stencil footprint
/// must fit across.
fn unit_width_x(mode: &ExecMode, wl: &Workload) -> usize {
    match (mode, wl) {
        (ExecMode::Tiled1D { tile_m }, _) | (ExecMode::Tiled2D { tile_m, .. }, _) => *tile_m,
        (_, Workload::D2 { nx, .. }) | (_, Workload::D3 { nx, .. }) => *nx,
    }
}

fn diag(
    rule: RuleId,
    severity: Severity,
    location: impl Into<String>,
    message: String,
    hint: impl Into<String>,
) -> Diagnostic {
    Diagnostic { rule, severity, location: location.into(), message, hint: hint.into() }
}

/// Statically check a design against a device. Runs every rule, collects
/// every finding (errors first in the returned report), and never executes
/// a single simulated cycle.
pub fn check(dev: &FpgaDevice, d: &Design) -> CheckReport {
    let spec = &d.spec;
    let wl = &d.workload;
    let default_depth = fifo::interstage_depth(dev.axi_burst_bytes, d.v, spec.window_elem_bytes);
    let depth = d.fifo_depth.unwrap_or(default_depth);
    let graph = DataflowGraph::build(spec, d.p, depth);
    let mut diags: Vec<Diagnostic> = Vec::new();

    let report = |diags: Vec<Diagnostic>, graph: &DataflowGraph| {
        let mut rep = CheckReport {
            device: dev.name.clone(),
            app: spec.app.to_string(),
            v: d.v,
            p: d.p,
            mode: d.mode,
            mem: d.mem,
            workload: *wl,
            graph_nodes: graph.nodes.len(),
            graph_edges: graph.edges.len(),
            diagnostics: diags,
        };
        // deterministic: errors first, then rule code, then location
        rep.sort_diagnostics();
        rep
    };

    // --- SFC-P01: parameter domain -------------------------------------
    if d.v == 0 || d.p == 0 {
        diags.push(diag(
            RuleId::InvalidParam,
            Severity::Error,
            "design",
            format!("V={} p={}: both must be positive", d.v, d.p),
            "choose V ≥ 1 and p ≥ 1",
        ));
        return report(diags, &graph);
    }

    // --- SFC-P02: dimensionality agreement -----------------------------
    if spec.dims != wl.dims() {
        diags.push(diag(
            RuleId::DimsMismatch,
            Severity::Error,
            "design",
            format!("{}D stencil applied to a {}D workload", spec.dims, wl.dims()),
            "match the workload dimensionality to the stencil",
        ));
    }
    match (wl.dims(), &d.mode) {
        (2, ExecMode::Tiled2D { .. }) => diags.push(diag(
            RuleId::DimsMismatch,
            Severity::Error,
            "design",
            "Tiled2D blocking on a 2D workload (Tiled2D tiles 3D meshes)".into(),
            "use Tiled1D for 2D workloads",
        )),
        (3, ExecMode::Tiled1D { .. }) => diags.push(diag(
            RuleId::DimsMismatch,
            Severity::Error,
            "design",
            "Tiled1D blocking on a 3D workload (Tiled1D tiles 2D meshes)".into(),
            "use Tiled2D for 3D workloads",
        )),
        _ => {}
    }
    if !diags.is_empty() {
        // downstream geometry is undefined on a dimensionality mismatch
        return report(diags, &graph);
    }

    // --- SFC-T01/T02/T03/T04: tile legality (eqs. 8, 12) ---------------
    let halo = d.p * spec.halo_order();
    let mut tiles: Vec<(&str, usize, usize)> = Vec::new();
    match d.mode {
        ExecMode::Tiled1D { tile_m } => tiles.push(("tile M", tile_m, wl.nx())),
        ExecMode::Tiled2D { tile_m, tile_n } => {
            let (Workload::D2 { ny, .. } | Workload::D3 { ny, .. }) = *wl;
            tiles.push(("tile M", tile_m, wl.nx()));
            tiles.push(("tile N", tile_n, ny));
        }
        _ => {}
    }
    let mut halo_violated = false;
    for &(name, t, extent) in &tiles {
        if t <= halo {
            halo_violated = true;
            diags.push(diag(
                RuleId::TileHalo,
                Severity::Error,
                "design",
                format!(
                    "{name}={t} does not exceed the halo p·D_fused = {}·{} = {halo} (eq. 8): \
                     every cell of the tile would be redundant halo",
                    d.p,
                    spec.halo_order()
                ),
                format!("grow the tile above {halo} cells or reduce p"),
            ));
        }
        if t > extent {
            diags.push(diag(
                RuleId::TileHalo2,
                Severity::Warning,
                "design",
                format!(
                    "{name}={t} exceeds the mesh extent {extent}: the tile degenerates to the \
                         whole dimension and halo cells are streamed for nothing"
                ),
                format!("clamp the tile to {extent} or drop tiling in this dimension"),
            ));
        }
    }
    if let Some(&(name, t, _)) = tiles.iter().min_by_key(|&&(_, t, _)| t) {
        let guideline = 3 * spec.order * d.p;
        if !halo_violated && t < guideline {
            diags.push(diag(
                RuleId::TileThroughput,
                Severity::Warning,
                "design",
                format!(
                    "{name}={t} is below the paper's M ≥ 3·D·p = {guideline} throughput \
                     guideline (eq. 12): halo overhead will dominate useful work"
                ),
                format!("grow the tile to at least {guideline} cells"),
            ));
        }
    }
    if let Some(&(name, t, _)) = tiles.first() {
        if t % d.v != 0 {
            diags.push(diag(
                RuleId::VectorAlignment,
                Severity::Warning,
                "design",
                format!(
                    "{name}={t} is not a multiple of V={}: vector lanes straddle the tile \
                     boundary and need realignment logic",
                    d.v
                ),
                format!("round the tile to a multiple of {}", d.v),
            ));
        }
    }

    // --- SFC-B01/B02: memory system (eq. 4, capacity) -------------------
    let mem_spec = match d.mem {
        MemKind::Hbm => &dev.hbm,
        MemKind::Ddr4 => &dev.ddr4,
    };
    let read_ch = axi::channels_needed(dev, mem_spec, d.v, spec.ext_read_bytes);
    let write_ch = axi::channels_needed(dev, mem_spec, d.v, spec.ext_write_bytes);
    let have_ch = (mem_spec.channels / 2).max(1);
    if read_ch.max(write_ch) > have_ch {
        diags.push(diag(
            RuleId::BandwidthChannels,
            Severity::Error,
            "mem.read",
            format!(
                "V={} needs {} memory channels per direction (eq. 4), {:?} provides {have_ch}",
                d.v,
                read_ch.max(write_ch),
                d.mem
            ),
            "reduce V or switch the memory binding",
        ));
    }
    let resident = wl.total_cells() * (spec.ext_read_bytes + spec.ext_write_bytes) as u64;
    if resident > mem_spec.bytes {
        diags.push(diag(
            RuleId::ExternalCapacity,
            Severity::Error,
            "mem.read",
            format!(
                "workload needs {resident} B resident (ping-pong in+out), {:?} holds {} B",
                d.mem, mem_spec.bytes
            ),
            "shrink the mesh/batch or use the larger memory",
        ));
    }

    // --- SFC-S01: DSP budget (eq. 6) ------------------------------------
    let dsp = d.p * d.v * spec.gdsp();
    if dsp > dev.dsp_total {
        diags.push(diag(
            RuleId::DspOversubscribed,
            Severity::Error,
            "design",
            format!(
                "p·V·G_dsp = {}·{}·{} = {dsp} DSPs exceeds the device's {} (eq. 6)",
                d.p,
                d.v,
                spec.gdsp(),
                dev.dsp_total
            ),
            format!("reduce p·V below {}", dev.dsp_total / spec.gdsp().max(1)),
        ));
    }

    // --- SFC-W01: window-buffer reach ------------------------------------
    // natural_unit_cells is Some: dimensionality mismatches returned above
    let natural_unit = natural_unit_cells(&d.mode, wl).unwrap_or(0);
    let unit = d.window_units.unwrap_or(natural_unit);
    let footprint = 2 * spec.radius() + 1;
    let row_x = unit_width_x(&d.mode, wl);
    if row_x < footprint {
        diags.push(diag(
            RuleId::WindowReach,
            Severity::Error,
            graph.first_stage_label().to_string(),
            format!(
                "streamed rows are {row_x} cells wide but the order-{} stencil footprint \
                 spans {footprint}",
                spec.order
            ),
            format!("widen the mesh/tile to at least {footprint} cells in x"),
        ));
    }
    if unit < natural_unit {
        diags.push(diag(
            RuleId::WindowReach,
            Severity::Error,
            graph.first_stage_label().to_string(),
            format!(
                "window buffers hold {unit} cells per line/plane but the streaming unit is \
                 {natural_unit} cells: the stencil would read cells already evicted"
            ),
            format!(
                "size each of the D={} line/plane buffers for {natural_unit} cells",
                spec.order
            ),
        ));
    }

    // --- SFC-W02: quantized on-chip capacity (eq. 7) ---------------------
    let alloc = resources::alloc_window(
        dev,
        unit,
        spec.window_elem_bytes,
        d.v,
        spec.order,
        spec.stages,
        d.p,
    );
    let fifo_bytes = depth * d.v * spec.window_elem_bytes;
    let fifo_bram = fifo_bytes.div_ceil(dev.bram_block_bytes).max(1) * graph.edges.len();
    let bram_need = alloc.bram_blocks + fifo_bram;
    if bram_need > dev.bram_blocks || alloc.uram_blocks > dev.uram_blocks {
        diags.push(diag(
            RuleId::WindowCapacity,
            Severity::Error,
            "design",
            format!(
                "window buffers + stream FIFOs need {bram_need} BRAM36 and {} URAM288 after \
                 quantization; the device has {} and {} (eq. 7)",
                alloc.uram_blocks, dev.bram_blocks, dev.uram_blocks
            ),
            "reduce p, tile the mesh, or lower V",
        ));
    }

    // --- SFC-S02: fabric -------------------------------------------------
    let (luts, ffs) = resources::estimate_fabric(&spec.ops, d.v, d.p);
    if luts > dev.lut_total || ffs > dev.ff_total {
        diags.push(diag(
            RuleId::FabricOversubscribed,
            Severity::Error,
            "design",
            format!(
                "estimated {luts} LUTs / {ffs} FFs exceed the fabric ({} / {})",
                dev.lut_total, dev.ff_total
            ),
            "reduce p·V or simplify the per-cell arithmetic",
        ));
    }

    // --- SFC-S03/S04: SLR floorplan --------------------------------------
    let demand = slr::ModuleDemand {
        dsp: dsp / d.p,
        bram: alloc.bram_blocks / d.p,
        uram: alloc.uram_blocks / d.p,
    };
    match slr::place_chain(dev, d.p, demand) {
        Err(e) => diags.push(diag(
            RuleId::SlrOverflow,
            Severity::Error,
            "design",
            format!(
                "module chain does not floorplan onto the {} SLRs: {e} \
                 (per-module demand {} DSP / {} BRAM / {} URAM)",
                dev.slr_count, demand.dsp, demand.bram, demand.uram
            ),
            "reduce p, or shrink the per-module window footprint by tiling",
        )),
        Ok(pl) if pl.spanning_modules > 0 => diags.push(diag(
            RuleId::SlrSpanning,
            Severity::Warning,
            "design",
            format!(
                "{} module(s) exceed a single SLR and must span regions; inter-SLR routing \
                 congestion will derate the clock",
                pl.spanning_modules
            ),
            "reduce V so one module fits an SLR (the paper's RTM choice)",
        )),
        Ok(_) => {}
    }

    // --- SFC-F01/F02: FIFO deadlock-freedom over the graph ---------------
    // Static dual of the runtime watchdog: the read side commits a full AXI
    // burst per request; an edge FIFO shallower than one burst cannot drain
    // it while the consumer is window-filling, so producer and consumer
    // starve each other — guaranteed wedge, no cycles needed to prove it.
    let burst_elems = dev.axi_burst_bytes.div_ceil((d.v * spec.window_elem_bytes).max(1)).max(1);
    if depth < burst_elems {
        let first = graph.edge_label(&graph.edges[0]);
        diags.push(diag(
            RuleId::FifoDeadlock,
            Severity::Error,
            first,
            format!(
                "FIFO depth {depth} cannot absorb one {}-byte AXI burst ({burst_elems} \
                 vector elements): static deadlock on all {} edges",
                dev.axi_burst_bytes,
                graph.edges.len()
            ),
            format!("deepen every stream FIFO to at least {default_depth} elements"),
        ));
    } else if depth < default_depth {
        let first = graph.edge_label(&graph.edges[0]);
        diags.push(diag(
            RuleId::FifoSlack,
            Severity::Warning,
            first,
            format!(
                "FIFO depth {depth} is below the two-burst sizing rule ({default_depth}): \
                 deadlock-free, but the producer stalls on every burst refill on all {} edges",
                graph.edges.len()
            ),
            format!("deepen the stream FIFOs to {default_depth} elements"),
        ));
    }

    // --- SFC-R01: loop-carried RAW hazard --------------------------------
    // The unrolled chain keeps p iteration passes in flight, each lagging
    // its producer by the stencil reach. When the streaming extent has no
    // more units than in-flight passes, iteration i+p re-enters the chain
    // while iteration i's writeback of the same rows is still in flight —
    // a loop-carried read of unwritten output.
    let extent = match *wl {
        Workload::D2 { ny, .. } => ny,
        Workload::D3 { nz, .. } => nz,
    };
    if extent <= d.p {
        diags.push(diag(
            RuleId::RawHazard,
            Severity::Error,
            format!("module[{}]", d.p - 1),
            format!(
                "mesh extent {extent} along the streaming dimension does not exceed the \
                 p = {} in-flight iteration passes: iteration i+p would read rows \
                 iteration i has not written back",
                d.p,
            ),
            format!("reduce p below {extent} or grow the mesh"),
        ));
    }

    // --- SFC-X01: multi-device shard legality ----------------------------
    // The sf-multi slab decomposition exchanges halos with direct
    // neighbours only. Every shard must therefore own at least the halo
    // depth h = p·stages·⌈D/2⌉ of outermost units, or next pass's halo
    // would have to come from beyond the neighbour and the link model (and
    // any real neighbour-wired deployment) breaks down.
    if d.devices == 0 {
        diags.push(diag(
            RuleId::ShardHalo,
            Severity::Error,
            "design",
            "devices=0: there is no accelerator to shard across".into(),
            "use at least one device",
        ));
    } else if d.devices > 1 {
        let shard_halo = d.p * spec.stages * spec.order.div_ceil(2);
        if !matches!(d.mode, ExecMode::Baseline | ExecMode::Batched { .. }) {
            diags.push(diag(
                RuleId::ShardHalo,
                Severity::Error,
                "design",
                format!(
                    "devices={}: multi-device sharding composes with whole-mesh streaming \
                     only, not {:?} (tiling already decomposes the mesh)",
                    d.devices, d.mode
                ),
                "drop tiling or run on a single device",
            ));
        } else if d.devices > extent {
            diags.push(diag(
                RuleId::ShardHalo,
                Severity::Error,
                "design",
                format!(
                    "devices={} exceeds the {extent} outermost units: some shard would own \
                     nothing",
                    d.devices
                ),
                format!("use at most {extent} devices"),
            ));
        } else if extent / d.devices < shard_halo {
            diags.push(diag(
                RuleId::ShardHalo,
                Severity::Error,
                "design",
                format!(
                    "sharding {extent} outermost units across {} devices leaves a shard of \
                     {} units, narrower than the halo depth p·stages·⌈D/2⌉ = {shard_halo}: \
                     next pass's halo would come from beyond the direct neighbour",
                    d.devices,
                    extent / d.devices
                ),
                format!(
                    "reduce the device count, reduce p below {}, or grow the mesh",
                    extent / (d.devices * spec.stages * spec.order.div_ceil(2)).max(1)
                ),
            ));
        }
    }

    report(diags, &graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_kernels::ops::NumberFormat;
    use sf_kernels::{AppId, OpCount};

    fn dev() -> FpgaDevice {
        FpgaDevice::u280()
    }

    fn poisson_paper() -> Design {
        Design::new(
            StencilSpec::poisson(),
            8,
            60,
            ExecMode::Baseline,
            MemKind::Hbm,
            Workload::D2 { nx: 400, ny: 400, batch: 1 },
        )
    }

    fn jacobi_paper() -> Design {
        Design::new(
            StencilSpec::jacobi(),
            8,
            29,
            ExecMode::Baseline,
            MemKind::Hbm,
            Workload::D3 { nx: 300, ny: 300, nz: 300, batch: 1 },
        )
    }

    fn rtm_paper() -> Design {
        Design::new(
            StencilSpec::rtm(),
            1,
            3,
            ExecMode::Baseline,
            MemKind::Hbm,
            Workload::D3 { nx: 64, ny: 64, nz: 64, batch: 1 },
        )
    }

    #[test]
    fn paper_designs_are_clean() {
        let d = dev();
        for design in [poisson_paper(), jacobi_paper(), rtm_paper()] {
            let rep = check(&d, &design);
            assert!(
                rep.diagnostics.is_empty(),
                "{} must produce zero diagnostics, got: {}",
                rep.app,
                rep.render()
            );
        }
    }

    #[test]
    fn graph_shape_reported() {
        let rep = check(&dev(), &rtm_paper());
        assert_eq!(rep.graph_nodes, 3 * 4 + 2);
        assert_eq!(rep.graph_edges, 3 * 4 + 1);
    }

    #[test]
    fn zero_v_or_p_is_invalid_param() {
        let mut d = poisson_paper();
        d.v = 0;
        let rep = check(&dev(), &d);
        assert_eq!(rep.fired_rules(), vec![RuleId::InvalidParam]);
        assert!(rep.has_errors());
    }

    #[test]
    fn dims_mismatch_flagged() {
        let mut d = poisson_paper();
        d.workload = Workload::D3 { nx: 64, ny: 64, nz: 64, batch: 1 };
        let rep = check(&dev(), &d);
        assert!(rep.fired(RuleId::DimsMismatch));
        assert!(rep.has_errors());

        let mut t = jacobi_paper();
        t.mode = ExecMode::Tiled1D { tile_m: 128 };
        assert!(check(&dev(), &t).fired(RuleId::DimsMismatch));
    }

    #[test]
    fn tile_at_or_below_halo_is_error() {
        let mut d = poisson_paper();
        d.workload = Workload::D2 { nx: 15_000, ny: 15_000, batch: 1 };
        d.mem = MemKind::Ddr4;
        d.mode = ExecMode::Tiled1D { tile_m: 60 * 2 }; // == p·D
        let rep = check(&dev(), &d);
        assert!(rep.fired(RuleId::TileHalo), "{}", rep.render());
        assert!(rep.has_errors());
    }

    #[test]
    fn tile_larger_than_mesh_is_warning_only() {
        // the accuracy suite legally synthesizes jacobi Tiled2D 640×640 on a
        // 600³ mesh — the checker must warn, not reject
        let mut d = jacobi_paper();
        d.v = 64;
        d.p = 3;
        d.workload = Workload::D3 { nx: 600, ny: 600, nz: 600, batch: 1 };
        d.mode = ExecMode::Tiled2D { tile_m: 640, tile_n: 640 };
        let rep = check(&dev(), &d);
        assert!(rep.fired(RuleId::TileHalo2), "{}", rep.render());
        assert!(!rep.has_errors(), "{}", rep.render());
    }

    #[test]
    fn small_tile_warns_on_throughput_guideline() {
        let mut d = poisson_paper();
        d.p = 8;
        d.workload = Workload::D2 { nx: 15_000, ny: 15_000, batch: 1 };
        d.mem = MemKind::Ddr4;
        // p·D = 16 < 32 < 3·D·p = 48
        d.mode = ExecMode::Tiled1D { tile_m: 32 };
        let rep = check(&dev(), &d);
        assert!(rep.fired(RuleId::TileThroughput), "{}", rep.render());
        assert!(!rep.fired(RuleId::TileHalo));
    }

    #[test]
    fn unaligned_tile_warns_on_vectorization() {
        let mut d = poisson_paper();
        d.workload = Workload::D2 { nx: 15_000, ny: 15_000, batch: 1 };
        d.mem = MemKind::Ddr4;
        d.mode = ExecMode::Tiled1D { tile_m: 4097 }; // 4097 % 8 ≠ 0
        let rep = check(&dev(), &d);
        assert!(rep.fired(RuleId::VectorAlignment), "{}", rep.render());
    }

    #[test]
    fn excess_vectorization_flags_bandwidth() {
        let mut d = jacobi_paper();
        d.v = 64;
        d.p = 3;
        d.workload = Workload::D3 { nx: 600, ny: 600, nz: 600, batch: 1 };
        d.mode = ExecMode::Tiled2D { tile_m: 640, tile_n: 640 };
        d.mem = MemKind::Ddr4;
        let rep = check(&dev(), &d);
        assert!(rep.fired(RuleId::BandwidthChannels), "{}", rep.render());
        assert!(rep.has_errors());
    }

    #[test]
    fn oversized_workload_flags_external_capacity() {
        let mut d = poisson_paper();
        d.p = 4;
        d.workload = Workload::D2 { nx: 100_000, ny: 100_000, batch: 1 };
        d.mode = ExecMode::Tiled1D { tile_m: 8192 };
        d.mem = MemKind::Ddr4;
        let rep = check(&dev(), &d);
        assert!(rep.fired(RuleId::ExternalCapacity), "{}", rep.render());
    }

    #[test]
    fn dsp_wall_flagged_with_numbers() {
        let mut d = poisson_paper();
        d.v = 64;
        let rep = check(&dev(), &d);
        let diag = rep.diagnostics.iter().find(|x| x.rule == RuleId::DspOversubscribed).unwrap();
        assert_eq!(diag.severity, Severity::Error);
        assert!(diag.message.contains("53760"), "{}", diag.message);
    }

    #[test]
    fn window_capacity_rule_matches_synthesizer() {
        // the synthesizer's InsufficientMemory case (design.rs test) must map
        // to SFC-W02
        let mut d = jacobi_paper();
        d.workload = Workload::D3 { nx: 2500, ny: 2500, nz: 100, batch: 1 };
        let rep = check(&dev(), &d);
        assert!(rep.fired(RuleId::WindowCapacity), "{}", rep.render());
        assert!(rep.has_errors());
    }

    #[test]
    fn truncated_window_buffer_is_reach_error() {
        let mut d = poisson_paper();
        d.window_units = Some(128); // rows are 400 cells
        let rep = check(&dev(), &d);
        let diag = rep.diagnostics.iter().find(|x| x.rule == RuleId::WindowReach).unwrap();
        assert_eq!(diag.severity, Severity::Error);
        assert_eq!(diag.location, "module[0].stage[0]");
    }

    #[test]
    fn narrow_mesh_is_reach_error() {
        let mut d = rtm_paper();
        d.p = 1;
        d.workload = Workload::D3 { nx: 8, ny: 64, nz: 64, batch: 1 }; // footprint is 9
        let rep = check(&dev(), &d);
        assert!(rep.fired(RuleId::WindowReach), "{}", rep.render());
    }

    #[test]
    fn fabric_exhaustion_without_dsp_wall() {
        // Fixed18 adds run in fabric (0 DSP): an add-heavy custom stencil
        // exhausts LUTs long before the DSP budget
        let spec = StencilSpec {
            app: AppId::Custom,
            dims: 2,
            order: 2,
            elem_bytes: 4,
            window_elem_bytes: 4,
            stages: 1,
            ops: OpCount::new(100, 1, 0),
            logical_rw_bytes: 8,
            ext_read_bytes: 4,
            ext_write_bytes: 4,
            format: NumberFormat::Fixed18,
        };
        let d = Design::new(
            spec,
            8,
            40,
            ExecMode::Baseline,
            MemKind::Hbm,
            Workload::D2 { nx: 400, ny: 400, batch: 1 },
        );
        let rep = check(&dev(), &d);
        assert_eq!(rep.fired_rules(), vec![RuleId::FabricOversubscribed], "{}", rep.render());
    }

    #[test]
    fn slr_overflow_is_the_only_error_for_wide_jacobi() {
        // 864×864 planes at V=8: 704 URAM total fits the device, but 176 per
        // module packs only one module per 320-URAM SLR — p=4 cannot place
        let d = Design::new(
            StencilSpec::jacobi(),
            8,
            4,
            ExecMode::Baseline,
            MemKind::Hbm,
            Workload::D3 { nx: 864, ny: 864, nz: 32, batch: 1 },
        );
        let rep = check(&dev(), &d);
        assert_eq!(rep.fired_rules(), vec![RuleId::SlrOverflow], "{}", rep.render());
    }

    #[test]
    fn spanning_module_is_warning() {
        // RTM at V=2: one module is 3948 DSP > 2830 per SLR — the exact
        // configuration the paper avoids by setting V=1
        let mut d = rtm_paper();
        d.v = 2;
        d.p = 1;
        let rep = check(&dev(), &d);
        assert_eq!(rep.fired_rules(), vec![RuleId::SlrSpanning], "{}", rep.render());
        assert!(!rep.has_errors());
    }

    #[test]
    fn undersized_fifo_is_static_deadlock() {
        let mut d = poisson_paper();
        d.fifo_depth = Some(4); // one burst needs 128 elements at V=8
        let rep = check(&dev(), &d);
        let diag = rep.diagnostics.iter().find(|x| x.rule == RuleId::FifoDeadlock).unwrap();
        assert_eq!(diag.severity, Severity::Error);
        assert_eq!(diag.location, "mem.read→module[0].stage[0]");
        assert!(diag.message.contains("61 edges"), "{}", diag.message);
    }

    #[test]
    fn shallow_but_safe_fifo_is_slack_warning() {
        let mut d = poisson_paper();
        d.fifo_depth = Some(128); // ≥ one burst, < the 256 sizing rule
        let rep = check(&dev(), &d);
        assert_eq!(rep.fired_rules(), vec![RuleId::FifoSlack], "{}", rep.render());
        assert!(!rep.has_errors());
    }

    #[test]
    fn deep_unroll_on_short_mesh_is_raw_hazard() {
        let mut d = poisson_paper();
        d.workload = Workload::D2 { nx: 400, ny: 60, batch: 1 }; // extent == p = 60
        let rep = check(&dev(), &d);
        let diag = rep.diagnostics.iter().find(|x| x.rule == RuleId::RawHazard).unwrap();
        assert_eq!(diag.severity, Severity::Error);
        assert_eq!(diag.location, "module[59]");
    }

    #[test]
    fn legal_sharding_is_clean() {
        // poisson p=60 halo=60; 400 rows / 4 devices = 100-row shards ≥ 60
        let d = poisson_paper().with_devices(4);
        let rep = check(&dev(), &d);
        assert!(rep.diagnostics.is_empty(), "{}", rep.render());
    }

    #[test]
    fn shard_narrower_than_halo_is_error() {
        // the paper's own poisson config cannot be split in two on a
        // 200×100 mesh: 50-row shards < halo depth p·stages·⌈D/2⌉ = 60
        let mut d = poisson_paper().with_devices(2);
        d.workload = Workload::D2 { nx: 200, ny: 100, batch: 1 };
        let rep = check(&dev(), &d);
        let diag = rep.diagnostics.iter().find(|x| x.rule == RuleId::ShardHalo).unwrap();
        assert_eq!(diag.severity, Severity::Error);
        assert!(diag.message.contains("60"), "{}", diag.message);
        // the same design on one device stays clean
        let mut solo = poisson_paper();
        solo.workload = Workload::D2 { nx: 200, ny: 100, batch: 1 };
        assert!(!check(&dev(), &solo).fired(RuleId::ShardHalo));
    }

    #[test]
    fn zero_or_excess_devices_fire_shard_rule() {
        let d0 = poisson_paper().with_devices(0);
        assert!(check(&dev(), &d0).fired(RuleId::ShardHalo));
        let mut dx = poisson_paper().with_devices(500);
        dx.workload = Workload::D2 { nx: 400, ny: 400, batch: 1 };
        let rep = check(&dev(), &dx);
        let diag = rep.diagnostics.iter().find(|x| x.rule == RuleId::ShardHalo).unwrap();
        assert!(diag.message.contains("own"), "{}", diag.message);
    }

    #[test]
    fn sharded_tiled_design_is_rejected() {
        let mut d = poisson_paper().with_devices(2);
        d.workload = Workload::D2 { nx: 15_000, ny: 15_000, batch: 1 };
        d.mem = MemKind::Ddr4;
        d.mode = ExecMode::Tiled1D { tile_m: 4096 };
        let rep = check(&dev(), &d);
        assert!(rep.fired(RuleId::ShardHalo), "{}", rep.render());
        assert!(rep.has_errors());
    }

    #[test]
    fn from_synthesized_roundtrip_is_clean() {
        let d = dev();
        let wl = Workload::D2 { nx: 400, ny: 400, batch: 1 };
        let sd = sf_fpga::design::synthesize(
            &d,
            &StencilSpec::poisson(),
            8,
            60,
            ExecMode::Baseline,
            MemKind::Hbm,
            &wl,
        )
        .expect("paper design synthesizes");
        let rep = check(&d, &Design::from_synthesized(&sd, &wl));
        assert!(rep.diagnostics.is_empty(), "{}", rep.render());
    }

    #[test]
    fn errors_sort_before_warnings_in_report() {
        let mut d = poisson_paper();
        d.fifo_depth = Some(4); // deadlock error
        d.mode = ExecMode::Tiled1D { tile_m: 4097 }; // alignment warning
        d.workload = Workload::D2 { nx: 15_000, ny: 15_000, batch: 1 };
        d.mem = MemKind::Ddr4;
        let rep = check(&dev(), &d);
        assert!(rep.error_count() >= 1 && rep.warning_count() >= 1);
        let first_warning =
            rep.diagnostics.iter().position(|x| x.severity == Severity::Warning).unwrap();
        assert!(rep.diagnostics[..first_warning].iter().all(|x| x.severity == Severity::Error));
    }
}
