//! Property tests for checkpoint serialization: snapshot → bytes →
//! restore is the identity, and corrupted or truncated inputs always
//! come back as typed errors, never panics.

use proptest::prelude::*;
use sf_recover::{to_bytes, try_from_bytes, CheckpointError, Snapshot};

/// Deterministically synthesize a payload from a seed (the vendored
/// proptest has no collection strategies, so meshes are derived from
/// scalar parameters).
fn payload(seed: u64, cells: usize) -> Vec<f32> {
    let mut x = seed | 1;
    (0..cells)
        .map(|_| {
            // SplitMix64 step, folded to a modest float range
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            ((z >> 40) as f32) / 1024.0 - 8000.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_is_identity(seed in 0u64..u64::MAX, nx in 1usize..40, ny in 1usize..40,
                             iters in 0u64..10_000, passes in 0u64..2_500) {
        let cells = payload(seed, nx * ny);
        let snap = Snapshot::capture(iters, passes, &[nx as u64, ny as u64], 1, &cells);
        let back = try_from_bytes(&to_bytes(&snap));
        prop_assert_eq!(back, Ok(snap.clone()));
        let restored: Vec<f32> = snap.restore(nx * ny).expect("restore");
        prop_assert_eq!(restored, cells);
    }

    #[test]
    fn truncation_is_a_typed_error(seed in 0u64..u64::MAX, cells in 1usize..64,
                                   frac in 0usize..1000) {
        let data = payload(seed, cells);
        let snap = Snapshot::capture(1, 1, &[cells as u64, 1], 1, &data);
        let bytes = to_bytes(&snap);
        let cut = frac * (bytes.len() - 1) / 1000; // always strictly short
        let r = try_from_bytes(&bytes[..cut]);
        prop_assert!(r.is_err());
        prop_assert!(!matches!(r, Err(CheckpointError::Io { .. })));
    }

    #[test]
    fn corrupted_byte_never_restores_silently(seed in 0u64..u64::MAX, cells in 1usize..48,
                                              victim in 0usize..10_000, bit in 0u8..8) {
        let data = payload(seed, cells);
        let snap = Snapshot::capture(3, 2, &[cells as u64, 1], 1, &data);
        let mut bytes = to_bytes(&snap);
        let idx = victim % bytes.len();
        bytes[idx] ^= 1 << bit;
        // FNV-1a steps are bijections in the running hash, so any flip
        // that leaves the parse structure intact provably changes the
        // checksum; structural flips (length fields) end in truncation
        // or a mismatched trailer. Decoding must fail — and never panic.
        prop_assert!(try_from_bytes(&bytes).is_err());
    }

    #[test]
    fn corrupted_header_magic_and_version(byte in 0usize..8, flip in 1u8..255) {
        let data = payload(7, 16);
        let snap = Snapshot::capture(0, 0, &[16, 1], 1, &data);
        let mut bytes = to_bytes(&snap);
        bytes[byte] ^= flip;
        let r = try_from_bytes(&bytes);
        prop_assert!(matches!(
            r,
            Err(CheckpointError::BadMagic) | Err(CheckpointError::UnsupportedVersion { .. })
        ));
    }
}
