//! Algorithm-based fault tolerance (ABFT) signatures: block row/column
//! sums over tile outputs.
//!
//! For the paper's linear stencil operators a single corrupted cell
//! perturbs its row-block sum, its column-block sum and the total, so an
//! exact `f64` comparison against a reference-propagated signature
//! detects single-event upsets the FIFO/AXI checks miss. A wrapping
//! bit-pattern fold rides along for the exact regime: it catches the one
//! upset class the arithmetic sums are blind to, a sign flip on a zero
//! cell (`0.0` → `-0.0` leaves every sum unchanged but fails the
//! campaign's bitwise golden comparison). The RK4 chain (RTM) is
//! compared through the same machinery with an optional tolerance band.

use serde::{Deserialize, Serialize};
use sf_mesh::Element;

/// Number of row and column blocks a signature folds the mesh into.
/// Fixed so signatures from different mesh sizes stay comparable in cost
/// and the on-record representation stays bounded.
pub const ABFT_BLOCKS: usize = 16;

/// Block row/column checksum signature of one mesh state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AbftSignature {
    /// Per-row-block sums (stream units folded into [`ABFT_BLOCKS`] bins).
    pub row_sums: Vec<f64>,
    /// Per-column-block sums (cells within a unit folded into bins).
    pub col_sums: Vec<f64>,
    /// Grand total over every lane of every cell.
    pub total: f64,
    /// Wrapping sum of every lane's raw bit pattern. The arithmetic sums
    /// are blind to upsets that preserve the numeric value (a sign flip
    /// on `0.0` yields `-0.0`); the bit fold is not, and any single-lane
    /// flip perturbs it. Only consulted in the exact (`tol = 0`) regime.
    pub bit_fold: u64,
}

impl AbftSignature {
    /// Compute the signature of a cell slice organized as stream units of
    /// `unit_len` cells (rows for 2D, planes for 3D). All element lanes
    /// are accumulated in `f64`.
    pub fn compute<T: Element>(cells: &[T], unit_len: usize) -> AbftSignature {
        let unit_len = unit_len.max(1);
        let n_units = cells.len().div_ceil(unit_len).max(1);
        let n_row_blocks = ABFT_BLOCKS.min(n_units).max(1);
        let n_col_blocks = ABFT_BLOCKS.min(unit_len).max(1);
        let mut row_sums = vec![0.0f64; n_row_blocks];
        let mut col_sums = vec![0.0f64; n_col_blocks];
        let mut total = 0.0f64;
        let mut bit_fold = 0u64;
        for (i, c) in cells.iter().enumerate() {
            let unit = i / unit_len;
            let within = i % unit_len;
            let rb = (unit * n_row_blocks / n_units).min(n_row_blocks - 1);
            let cb = (within * n_col_blocks / unit_len).min(n_col_blocks - 1);
            let mut s = 0.0f64;
            for l in 0..T::LANES {
                s += f64::from(c.lane(l));
                bit_fold = bit_fold.wrapping_add(u64::from(c.lane(l).to_bits()));
            }
            row_sums[rb] += s;
            col_sums[cb] += s;
            total += s;
        }
        AbftSignature { row_sums, col_sums, total, bit_fold }
    }

    /// Compare against an expected signature within `tol` (absolute, per
    /// entry). `tol = 0.0` demands exact equality — valid for the linear
    /// operators because the simulated datapath is bit-exact against the
    /// reference kernels — and additionally compares the bit folds, which
    /// catch value-preserving upsets (`0.0` → `-0.0`) the sums cannot.
    /// Non-finite sums (NaN from a corrupted exponent) never match.
    pub fn matches(&self, expected: &AbftSignature, tol: f64) -> bool {
        if self.row_sums.len() != expected.row_sums.len()
            || self.col_sums.len() != expected.col_sums.len()
        {
            return false;
        }
        if tol == 0.0 && self.bit_fold != expected.bit_fold {
            return false;
        }
        let ok = |a: f64, b: f64| a.is_finite() && b.is_finite() && (a - b).abs() <= tol;
        if !ok(self.total, expected.total) {
            return false;
        }
        self.row_sums.iter().zip(&expected.row_sums).all(|(&a, &b)| ok(a, b))
            && self.col_sums.iter().zip(&expected.col_sums).all(|(&a, &b)| ok(a, b))
    }
}

/// Cycle cost of one ABFT check: the checksum tree consumes one vector
/// of `v` cells per cycle alongside the output stream.
pub fn abft_check_cycles(cells: u64, v: usize) -> u64 {
    cells.div_ceil(v.max(1) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_mesh::VecN;

    #[test]
    fn identical_states_match_exactly() {
        let cells: Vec<f32> = (0..64).map(|i| (i as f32) * 0.1 - 3.0).collect();
        let a = AbftSignature::compute(&cells, 8);
        let b = AbftSignature::compute(&cells, 8);
        assert!(a.matches(&b, 0.0));
    }

    #[test]
    fn single_cell_corruption_is_detected() {
        let cells: Vec<f32> = (0..64).map(|i| (i as f32) * 0.1 - 3.0).collect();
        let clean = AbftSignature::compute(&cells, 8);
        for victim in [0usize, 17, 63] {
            let mut bad = cells.clone();
            bad[victim] = f32::from_bits(bad[victim].to_bits() ^ (1 << 22));
            let sig = AbftSignature::compute(&bad, 8);
            assert!(!sig.matches(&clean, 0.0), "flip at {victim} must break the signature");
        }
    }

    #[test]
    fn sign_flip_on_zero_is_detected_in_exact_mode() {
        // 0.0 → -0.0 leaves every arithmetic sum unchanged; only the bit
        // fold sees it. This is the RTM wavefield escape: demo inputs are
        // mostly zero, so a window-buffer sign flip lands on a zero cell.
        let cells: Vec<f32> = vec![0.0; 64];
        let clean = AbftSignature::compute(&cells, 8);
        let mut bad = cells.clone();
        bad[13] = -0.0;
        let sig = AbftSignature::compute(&bad, 8);
        assert_eq!(sig.total, clean.total);
        assert!(!sig.matches(&clean, 0.0), "exact mode must catch 0.0 -> -0.0");
        // with a tolerance band (RK4/hardware drift) the bit fold is
        // intentionally not consulted
        assert!(sig.matches(&clean, 1e-9));
    }

    #[test]
    fn nan_corruption_never_matches() {
        let cells: Vec<f32> = vec![1.0; 32];
        let clean = AbftSignature::compute(&cells, 8);
        let mut bad = cells.clone();
        bad[5] = f32::NAN;
        assert!(!AbftSignature::compute(&bad, 8).matches(&clean, 1e9));
    }

    #[test]
    fn tolerance_band_admits_small_drift() {
        let cells: Vec<f32> = vec![2.0; 32];
        let a = AbftSignature::compute(&cells, 8);
        let mut drifted = cells.clone();
        drifted[0] = 2.0 + 1e-6;
        let b = AbftSignature::compute(&drifted, 8);
        assert!(!b.matches(&a, 0.0));
        assert!(b.matches(&a, 1e-3));
    }

    #[test]
    fn vector_lanes_participate_in_sums() {
        let cells: Vec<VecN<2>> = (0..16).map(|i| VecN::new([i as f32, 1.0])).collect();
        let clean = AbftSignature::compute(&cells, 4);
        let mut bad = cells.clone();
        bad[9].set_lane(1, 5.0);
        assert!(!AbftSignature::compute(&bad, 4).matches(&clean, 0.0));
    }

    #[test]
    fn check_cycles_scale_with_vector_width() {
        assert_eq!(abft_check_cycles(64, 8), 8);
        assert_eq!(abft_check_cycles(65, 8), 9);
        assert_eq!(abft_check_cycles(10, 0), 10);
    }
}
