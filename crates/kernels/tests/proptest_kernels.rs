//! Property tests for the kernels: linearity of the linear stencils,
//! executor agreement on randomized shapes, RTM physics invariants, and
//! batching equivalences.

use proptest::prelude::*;
use sf_kernels::{parallel, reference, rtm, Jacobi3D, Poisson2D, RtmParams, StarStencil2D};
use sf_mesh::{norms, Batch2D, Element, Mesh2D, Mesh3D};

/// `a·u + b·v` lane-wise.
fn lincomb2d(a: f32, u: &Mesh2D<f32>, b: f32, v: &Mesh2D<f32>) -> Mesh2D<f32> {
    Mesh2D::from_fn(u.nx(), u.ny(), |x, y| a * u.get(x, y) + b * v.get(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The Poisson kernel is a linear operator: one step of `a·u + b·v`
    /// equals `a·step(u) + b·step(v)` up to f32 rounding.
    #[test]
    fn poisson_step_is_linear(
        nx in 3usize..24,
        ny in 3usize..24,
        seed in 0u64..500,
        a in -2.0f32..2.0,
        b in -2.0f32..2.0,
    ) {
        let u = Mesh2D::<f32>::random(nx, ny, seed, -1.0, 1.0);
        let v = Mesh2D::<f32>::random(nx, ny, seed + 1, -1.0, 1.0);
        let lhs = reference::step_2d(&Poisson2D, &lincomb2d(a, &u, b, &v));
        let rhs = lincomb2d(a, &reference::step_2d(&Poisson2D, &u), b, &reference::step_2d(&Poisson2D, &v));
        let err = norms::max_abs_diff(lhs.as_slice(), rhs.as_slice());
        prop_assert!(err < 1e-4, "linearity violated by {err}");
    }

    /// Sequential and Rayon executors agree bit-exactly on arbitrary shapes.
    #[test]
    fn par_equals_seq_2d(
        nx in 1usize..40,
        ny in 1usize..30,
        iters in 0usize..8,
        seed in 0u64..500,
    ) {
        let m = Mesh2D::<f32>::random(nx, ny, seed, -3.0, 3.0);
        let s = reference::run_2d(&Poisson2D, &m, iters);
        let p = parallel::par_run_2d(&Poisson2D, &m, iters);
        prop_assert!(norms::bit_equal(s.as_slice(), p.as_slice()));
    }

    /// Same for 3D with random coefficients.
    #[test]
    fn par_equals_seq_3d(
        nx in 1usize..16,
        ny in 1usize..14,
        nz in 1usize..12,
        iters in 0usize..5,
        seed in 0u64..500,
        c in 0.0f32..0.2,
    ) {
        let m = Mesh3D::<f32>::random(nx, ny, nz, seed, -1.0, 1.0);
        let k = Jacobi3D::with_coefficients([c, c, c, 1.0 - 5.0 * c, c / 2.0, c / 2.0, c]);
        let s = reference::run_3d(&k, &m, iters);
        let p = parallel::par_run_3d(&k, &m, iters);
        prop_assert!(norms::bit_equal(s.as_slice(), p.as_slice()));
    }

    /// Batched solves equal independent solves (semantic definition of
    /// batching), for any batch size.
    #[test]
    fn batch_is_independent_solves(
        nx in 3usize..16,
        ny in 3usize..12,
        b in 1usize..6,
        iters in 1usize..6,
        seed in 0u64..500,
    ) {
        let batch = Batch2D::<f32>::random(nx, ny, b, seed, -1.0, 1.0);
        let whole = reference::run_batch_2d(&Poisson2D, &batch, iters);
        for i in 0..b {
            let solo = reference::run_2d(&Poisson2D, &batch.mesh(i), iters);
            prop_assert!(norms::bit_equal(whole.mesh(i).as_slice(), solo.as_slice()));
        }
    }

    /// Smoothing contracts: the max-norm never grows under the diagonally
    /// dominant Jacobi coefficients.
    #[test]
    fn jacobi_smoothing_contracts(
        n in 4usize..14,
        iters in 1usize..20,
        seed in 0u64..500,
    ) {
        let m = Mesh3D::<f32>::random(n, n, n, seed, -5.0, 5.0);
        let out = reference::run_3d(&Jacobi3D::smoothing(), &m, iters);
        prop_assert!(
            norms::max_norm_3d(&out) <= norms::max_norm_3d(&m) + 1e-4
        );
    }

    /// RTM: the zero field is a fixed point for any damping parameters, and
    /// random fields stay finite over short horizons.
    #[test]
    fn rtm_physics_invariants(
        n in 9usize..14,
        iters in 1usize..6,
        dt_m in 1u32..5,
        sg in 0u32..8,
    ) {
        let prm = RtmParams { dt: dt_m as f32 * 1e-3, sigma: sg as f32 * 0.01, sigma2: 0.01 };
        let zero = Mesh3D::<rtm::RtmState>::zeros(n, n, n);
        let rho = Mesh3D::from_fn(n, n, n, |_, _, _| 1.0);
        let mu = Mesh3D::from_fn(n, n, n, |_, _, _| 0.02);
        let out = reference::rtm_run(&zero, &rho, &mu, prm, iters);
        prop_assert_eq!(norms::max_norm_3d(&out), 0.0);

        let (y, rho, mu) = rtm::demo_workload(n, n, n);
        let out = reference::rtm_run(&y, &rho, &mu, prm, iters);
        prop_assert!(out.all_finite());
    }

    /// Custom star stencils: scaling every weight scales one interior step's
    /// update linearly.
    #[test]
    fn star_weights_scale_linearly(
        seed in 0u64..500,
        scale in 0.1f32..3.0,
    ) {
        let m = Mesh2D::<f32>::random(12, 12, seed, -1.0, 1.0);
        let s1 = StarStencil2D::laplace5(0.25, 0.0);
        let s2 = StarStencil2D::laplace5(0.25 * scale, 0.0);
        let o1 = reference::step_2d(&s1, &m);
        let o2 = reference::step_2d(&s2, &m);
        for y in 1..11 {
            for x in 1..11 {
                let e = (o2.get(x, y) - scale * o1.get(x, y)).abs();
                prop_assert!(e < 1e-4, "scaling violated by {e} at ({x},{y})");
            }
        }
    }

    /// VecN element algebra: axpy distributes over add, scale composes.
    #[test]
    fn vecn_algebra(
        a in -3.0f32..3.0,
        b in -3.0f32..3.0,
        v0 in -10.0f32..10.0,
        v1 in -10.0f32..10.0,
    ) {
        use sf_mesh::VecN;
        let u = VecN::new([v0, v1, 1.0]);
        let w = VecN::new([v1, v0, -1.0]);
        // axpy(u, w, a) = u + a·w lane-wise
        let r = u.axpy(w, a);
        for c in 0..3 {
            let expect = u.lane(c) + a * w.lane(c);
            prop_assert!((r.lane(c) - expect).abs() < 1e-5);
        }
        // scale(scale(u, a), b) ≈ scale(u, a·b)
        let s1 = u.scale(a).scale(b);
        let s2 = u.scale(a * b);
        for c in 0..3 {
            prop_assert!((s1.lane(c) - s2.lane(c)).abs() < 1e-3 * (1.0 + s2.lane(c).abs()));
        }
    }
}
