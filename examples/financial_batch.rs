//! Batched small-mesh solves — the paper's financial-computing motivation.
//!
//! "if a large number of smaller meshes are to be solved, as is the case in
//! financial applications [27], then processing one mesh at a time incurs
//! significant latencies. This motivates the idea of grouping together
//! meshes with the same dimensions in batches" (§IV-B).
//!
//! This example prices a book of 1000 independent instruments, each an
//! explicit 2D finite-difference solve on a 200×100 mesh, and shows the
//! batching optimization turning a latency-bound FPGA workload into a
//! throughput-bound one on both platforms.
//!
//! ```text
//! cargo run --release --example financial_batch
//! ```

use sf_core::prelude::*;

fn main() {
    let wf = Workflow::u280_vs_v100();
    let spec = StencilSpec::poisson();
    let (nx, ny) = (200usize, 100usize);
    let niter = 60_000u64;

    println!("book of instruments: 1000 × ({nx}×{ny}) explicit FD solves, {niter} time steps\n");
    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>12} {:>10}",
        "batch", "FPGA ms/mesh", "GPU ms/mesh", "FPGA GB/s", "GPU GB/s", "speedup"
    );

    for b in [1usize, 10, 100, 1000] {
        let wl = Workload::D2 { nx, ny, batch: b };
        let cmp = wf.compare(&spec, &wl, niter).expect("design must exist");
        println!(
            "{:<12} {:>14.3} {:>14.3} {:>12.0} {:>12.0} {:>9.2}x",
            format!("{b}B"),
            cmp.fpga.runtime_s * 1e3 / b as f64,
            cmp.gpu.runtime_s * 1e3 / b as f64,
            cmp.fpga.bandwidth_gbs,
            cmp.gpu.bandwidth_gbs,
            cmp.speedup(),
        );
    }

    // numeric spot-check on a reduced configuration: a real batch streamed
    // through the dataflow simulator, bit-exact vs independent golden solves
    let wl = Workload::D2 { nx, ny, batch: 8 };
    let solver = PoissonSolver::auto(&wf, &wl, niter).unwrap();
    let book = Batch2D::<f32>::random(nx, ny, 8, 2024, 0.5, 1.5);
    let (_priced, rep) = solver.run_validated(&book, 24);
    println!(
        "\nnumeric validation: 8 instruments × 24 steps streamed through the\n\
         batched window-buffer pipeline — bit-exact vs per-instrument golden\n\
         solves ✓  ({} passes, V={}, p={})",
        rep.passes, rep.v, rep.p
    );

    // a realistic book is heterogeneous: the paper batches only meshes "with
    // the same dimensions", so mixed shapes are grouped first, one batched
    // design per shape
    let mixed: Vec<Mesh2D<f32>> = (0..9)
        .map(|i| {
            let (w, h) = [(64usize, 32usize), (48, 48), (80, 24)][i % 3];
            Mesh2D::<f32>::random(w, h, 100 + i as u64, 0.5, 1.5)
        })
        .collect();
    let (solved, reports) = sf_core::solvers::solve_poisson_book(&wf, &mixed, 20).unwrap();
    println!(
        "\nheterogeneous book: {} instruments in {} shape groups, results in \
         original order ✓ (first mesh {}x{})",
        solved.len(),
        reports.len(),
        solved[0].nx(),
        solved[0].ny(),
    );

    // the energy story the paper leads with
    let wl = Workload::D2 { nx, ny, batch: 1000 };
    let cmp = wf.compare(&spec, &wl, niter).unwrap();
    println!(
        "\n1000B energy: FPGA {:.2} kJ @ {:.0} W  vs  GPU {:.2} kJ @ {:.0} W  →  {:.1}× savings",
        cmp.fpga.energy_j / 1e3,
        cmp.fpga.power_w,
        cmp.gpu.energy_j / 1e3,
        cmp.gpu.power_w,
        cmp.energy_ratio(),
    );
}
