//! Flat JSON metrics dump — the scripting-friendly counterpart to the
//! Chrome trace. One object, stable keys, no nesting deeper than two
//! levels, so `jq .counters` / `jq .stalls` pipelines stay trivial.

use crate::recorder::Recorder;
use serde::{Serialize, Value};

fn obj(fields: Vec<(String, Value)>) -> Value {
    Value::Object(fields)
}

/// Build the metrics object:
///
/// ```json
/// {
///   "meta":      { "app": "poisson", ... },
///   "counters":  { "fifo.stalls": 0, ... },
///   "stalls":    { "compute_cycles": ..., "memory_cycles": ...,
///                  "backpressure_cycles": ..., "checkpoint_cycles": ...,
///                  "exchange_cycles": ..., "dominant": "Compute" },
///   "tracks":    { "stage:0": { "spans": 3, "busy_cycles": 900 }, ... },
///   "divergence": { "predicted_cycles": ..., "simulated_cycles": ...,
///                   "pct": ..., "within_15pct": true },
///   "max_cycle": 12345
/// }
/// ```
pub fn metrics(rec: &Recorder) -> Value {
    let mut fields: Vec<(String, Value)> = Vec::new();

    fields.push(("meta".into(), Value::Object(rec.meta().to_vec())));

    let counters: Vec<(String, Value)> =
        rec.counters().iter().map(|(k, v)| (k.clone(), Value::U64(*v))).collect();
    fields.push(("counters".into(), Value::Object(counters)));

    let b = rec.stall_breakdown();
    fields.push((
        "stalls".into(),
        obj(vec![
            ("compute_cycles".into(), Value::U64(b.compute_cycles)),
            ("memory_cycles".into(), Value::U64(b.memory_cycles)),
            ("backpressure_cycles".into(), Value::U64(b.backpressure_cycles)),
            ("checkpoint_cycles".into(), Value::U64(b.checkpoint_cycles)),
            ("exchange_cycles".into(), Value::U64(b.exchange_cycles)),
            ("dominant".into(), b.dominant().to_value()),
        ]),
    ));

    let tracks: Vec<(String, Value)> = rec
        .track_names()
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let id = crate::recorder::TrackId(i as u32);
            let spans = rec.spans().iter().filter(|s| s.track == id).count();
            (
                name.clone(),
                obj(vec![
                    ("spans".into(), Value::U64(spans as u64)),
                    ("busy_cycles".into(), Value::U64(rec.track_span_cycles(id))),
                ]),
            )
        })
        .collect();
    fields.push(("tracks".into(), Value::Object(tracks)));

    if let Some(d) = rec.divergence() {
        fields.push((
            "divergence".into(),
            obj(vec![
                ("predicted_cycles".into(), Value::U64(d.predicted_cycles)),
                ("simulated_cycles".into(), Value::U64(d.simulated_cycles)),
                ("pct".into(), Value::F64(d.pct())),
                ("within_15pct".into(), Value::Bool(d.within(15.0))),
            ]),
        ));
    }

    // Parallel-execution provenance: the resolved worker count and how
    // many shard recorders were merged, so aggregated output can tell a
    // `--jobs 8` run from a serial one (the event payload itself is
    // byte-identical by construction).
    fields.push((
        "parallel".into(),
        obj(vec![
            (
                "jobs".into(),
                match rec.jobs() {
                    Some(j) => Value::U64(j),
                    None => Value::Null,
                },
            ),
            ("shards_merged".into(), Value::U64(rec.shards_merged())),
        ]),
    ));

    fields.push(("max_cycle".into(), Value::U64(rec.max_cycle())));
    Value::Object(fields)
}

/// Pretty-printed metrics dump. Serializing an already-built [`Value`]
/// tree is infallible, so the error arm degrades to an empty-but-valid
/// document rather than panicking.
pub fn to_metrics_json(rec: &Recorder) -> String {
    serde_json::to_string_pretty(&metrics(rec)).unwrap_or_else(|_| String::from("{}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::divergence::Divergence;
    use crate::recorder::{Recorder, StallClass};

    #[test]
    fn metrics_shape() {
        let mut r = Recorder::enabled(300.0);
        let t = r.track("stage:0");
        r.span(t, "pass 0", 0, 300);
        r.counter_add("fifo.total_pushes", 9);
        r.stall(StallClass::Memory, 120);
        r.set_divergence(Divergence::new(1000, 1050));
        r.set_meta("app", Value::String("jacobi".into()));

        let m = metrics(&r);
        assert_eq!(
            m.get("meta").and_then(|x| x.get("app")).and_then(|x| x.as_str()),
            Some("jacobi")
        );
        assert_eq!(
            m.get("counters").and_then(|c| c.get("fifo.total_pushes")).and_then(|v| v.as_u64()),
            Some(9)
        );
        assert_eq!(
            m.get("stalls").and_then(|s| s.get("memory_cycles")).and_then(|v| v.as_u64()),
            Some(120)
        );
        assert_eq!(
            m.get("tracks")
                .and_then(|t| t.get("stage:0"))
                .and_then(|t| t.get("busy_cycles"))
                .and_then(|v| v.as_u64()),
            Some(300)
        );
        let d = m.get("divergence").unwrap();
        assert_eq!(d.get("within_15pct").and_then(|v| v.as_bool()), Some(true));
        // Round-trips through the JSON writer/parser.
        let s = to_metrics_json(&r);
        assert!(serde_json::parse_value(&s).is_ok());
    }

    #[test]
    fn parallel_provenance_is_exported() {
        let mut r = Recorder::enabled(300.0);
        // serial, no jobs recorded → null jobs, zero shards
        let m = metrics(&r);
        let par = m.get("parallel").expect("parallel block always present");
        assert_eq!(par.get("jobs"), Some(&Value::Null));
        assert_eq!(par.get("shards_merged").and_then(|v| v.as_u64()), Some(0));

        r.set_jobs(4);
        let mut shard = Recorder::enabled(300.0);
        let t = shard.track("mesh0/w");
        shard.span(t, "row", 0, 5);
        r.merge_shard(shard);
        let m = metrics(&r);
        let par = m.get("parallel").unwrap();
        assert_eq!(par.get("jobs").and_then(|v| v.as_u64()), Some(4));
        assert_eq!(par.get("shards_merged").and_then(|v| v.as_u64()), Some(1));
    }

    #[test]
    fn non_finite_divergence_pct_exports_as_null_and_reparses() {
        let mut r = Recorder::enabled(300.0);
        r.set_divergence(Divergence::new(0, 5));
        let s = to_metrics_json(&r);
        let doc = serde_json::parse_value(&s).expect("document must stay valid JSON");
        let d = doc.get("divergence").unwrap();
        // the writer degrades the infinite percentage to null rather than
        // emitting invalid JSON
        assert_eq!(d.get("pct"), Some(&Value::Null));
        assert_eq!(d.get("within_15pct").and_then(|v| v.as_bool()), Some(false));
    }
}
