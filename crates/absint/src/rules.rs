//! The kernel-analysis rules (`SFC-K01` … `SFC-K05`): turn one
//! [`KernelAnalysis`] plus the spec it is checked against into structured
//! [`Diagnostic`]s, and cache the analyses of the paper's three kernels so
//! preflight and the CLI pay the probe cost once per process.

use crate::footprint::{self, Footprint};
use crate::interval::Interval;
use crate::stability::{self, StabilityVerdict};
use sf_check::{Diagnostic, RuleId};
use sf_kernels::rtm::RTM_PACKED_LANES;
use sf_kernels::{
    AbstractOp2D, AbstractOp3D, AppId, Jacobi3D, Poisson2D, RtmParams, RtmStage, StencilSpec,
};
use std::sync::OnceLock;

/// Knobs for the kernel analyses.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct AbsintConfig {
    /// Assumed per-cell input range for the interval analysis (the K03/K04
    /// rules are heuristic relative to this assumption; the default matches
    /// the normalized fields the paper's solvers iterate on).
    pub input_range: (f32, f32),
    /// Relative tolerance for the counted-vs-declared `G_dsp`/flops
    /// comparison (K02). The paper kernels match exactly; the band absorbs
    /// benign re-associations in user kernels.
    pub gdsp_tolerance: f64,
    /// Slack on `max|g| ≤ 1` before K05 fires (absorbs the f32 probe and
    /// frequency-grid sampling error).
    pub stability_tolerance: f64,
    /// Frequency samples per dimension for the von Neumann symbol sweep
    /// (even values include the Nyquist mode `θ = π`).
    pub freq_samples: usize,
}

impl Default for AbsintConfig {
    fn default() -> Self {
        AbsintConfig {
            input_range: (-1.0, 1.0),
            gdsp_tolerance: 0.02,
            stability_tolerance: 1e-4,
            freq_samples: 16,
        }
    }
}

/// Everything the three analyses extracted from one kernel.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelAnalysis {
    /// Probed access footprint + counted op tally.
    pub footprint: Footprint,
    /// Output range of one update over the assumed input range.
    pub range: Interval,
    /// Von Neumann stability verdict.
    pub stability: StabilityVerdict,
}

fn input_interval(cfg: &AbsintConfig) -> Interval {
    Interval::new(cfg.input_range.0 as f64, cfg.input_range.1 as f64)
}

/// Run all three analyses on a 2D kernel.
pub fn analyze_2d<K: AbstractOp2D + ?Sized>(op: &K, cfg: &AbsintConfig) -> KernelAnalysis {
    let footprint = footprint::extract_2d(op);
    let input = input_interval(cfg);
    let range = op.update::<Interval, _>(&|_, _| input);
    let stability =
        stability::analyze_2d(op, &footprint.offsets, cfg.freq_samples, cfg.stability_tolerance);
    KernelAnalysis { footprint, range, stability }
}

/// Run all three analyses on a 3D kernel.
pub fn analyze_3d<K: AbstractOp3D + ?Sized>(op: &K, cfg: &AbsintConfig) -> KernelAnalysis {
    let footprint = footprint::extract_3d(op);
    let input = input_interval(cfg);
    let range = op.update::<Interval, _>(&|_, _, _| input);
    let stability =
        stability::analyze_3d(op, &footprint.offsets, cfg.freq_samples, cfg.stability_tolerance);
    KernelAnalysis { footprint, range, stability }
}

/// Run the analyses on the fused RTM pipeline: footprint/tally union the
/// four stages, the range joins every output lane of every stage, and the
/// scalar von Neumann symbol does not apply to the packed multi-lane state.
pub fn analyze_rtm(params: RtmParams, cfg: &AbsintConfig) -> KernelAnalysis {
    let footprint = footprint::extract_rtm(params);
    let input = input_interval(cfg);
    let mut range = input;
    for s in 1..=4 {
        let stage = RtmStage::new(s, params);
        let out = stage.update_packed::<Interval, _>(&|_, _, _| [input; RTM_PACKED_LANES]);
        for lane in out {
            range = range.hull(lane);
        }
    }
    KernelAnalysis {
        footprint,
        range,
        stability: StabilityVerdict::NotApplicable {
            reason: "multi-lane packed state (RTM fused RK4): the scalar von Neumann symbol \
                     does not apply"
                .into(),
        },
    }
}

fn diag(rule: RuleId, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        severity: rule.default_severity(),
        location: "kernel".into(),
        message,
        hint: rule.fix_guidance().into(),
    }
}

fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1.0)
}

/// Apply the K-rules: compare one kernel's extracted truth against the spec
/// it is deployed under, at unroll factor `p`.
pub fn kernel_diagnostics(
    analysis: &KernelAnalysis,
    spec: &StencilSpec,
    p: usize,
    cfg: &AbsintConfig,
) -> Vec<Diagnostic> {
    let mut ds = Vec::new();

    // K01 — probed footprint must fit inside the declared reach D/2.
    if analysis.footprint.radius > spec.radius() {
        ds.push(diag(
            RuleId::KernelFootprint,
            format!(
                "probed access footprint has radius {} ({} offsets) but the spec declares \
                 order D = {} (reach {}): window buffers sized from the spec evict cells \
                 the datapath still reads",
                analysis.footprint.radius,
                analysis.footprint.offsets.len(),
                spec.order,
                spec.radius()
            ),
        ));
    }

    // K02 — counted ops must match the spec's flops/G_dsp within tolerance.
    let counted_flops = analysis.footprint.tally.flops() as f64;
    let declared_flops = spec.flops_per_cell() as f64;
    let counted_gdsp = analysis.footprint.tally.gdsp(spec.format) as f64;
    let declared_gdsp = spec.gdsp() as f64;
    if rel_diff(counted_flops, declared_flops) > cfg.gdsp_tolerance
        || rel_diff(counted_gdsp, declared_gdsp) > cfg.gdsp_tolerance
    {
        ds.push(diag(
            RuleId::KernelOpCount,
            format!(
                "counted {} flops / G_dsp {} per cell, spec declares {} flops / G_dsp {}: \
                 every eq. (5)/(6) sizing decision uses drifted inputs",
                counted_flops, counted_gdsp, declared_flops, declared_gdsp
            ),
        ));
    }

    // K03/K04 — interval hazards over the assumed input range. A poisoned
    // division already explains the non-finite range, so K04 subsumes K03.
    if analysis.range.div_by_zero {
        ds.push(diag(
            RuleId::KernelDivByZero,
            format!(
                "a divisor's interval contains zero for inputs in [{}, {}]: \
                 division-by-zero (and its NaN) is statically reachable",
                cfg.input_range.0, cfg.input_range.1
            ),
        ));
    } else if !analysis.range.finite_in_f32() {
        ds.push(diag(
            RuleId::KernelNonFinite,
            format!(
                "one update on inputs in [{}, {}] reaches [{:.3e}, {:.3e}]{}: outside \
                 finite f32",
                cfg.input_range.0,
                cfg.input_range.1,
                analysis.range.lo,
                analysis.range.hi,
                if analysis.range.maybe_nan { " with NaN reachable" } else { "" }
            ),
        ));
    }

    // K05 — von Neumann instability of the iterative configuration.
    if let StabilityVerdict::Unstable { max_amplification, worst_freq } = &analysis.stability {
        let per_traversal = max_amplification.powi(p.min(1024) as i32);
        ds.push(diag(
            RuleId::KernelUnstable,
            format!(
                "von Neumann symbol reaches max|g(θ)| = {:.4} at θ = ({:.3}, {:.3}, {:.3}); \
                 with p = {} unrolled passes the worst mode grows {:.3e}× per mesh \
                 traversal — the iteration diverges before any result is usable",
                max_amplification, worst_freq[0], worst_freq[1], worst_freq[2], p, per_traversal
            ),
        ));
    }

    ds
}

/// The cached analysis of one of the paper's applications (`None` for
/// [`AppId::Custom`] — custom stencils are analyzed against their own op via
/// [`analyze_2d`]/[`analyze_3d`]). The probe cost is paid once per process,
/// like `sf_model::check_cached`.
pub fn analyze_app(app: AppId) -> Option<&'static KernelAnalysis> {
    static POISSON: OnceLock<KernelAnalysis> = OnceLock::new();
    static JACOBI: OnceLock<KernelAnalysis> = OnceLock::new();
    static RTM: OnceLock<KernelAnalysis> = OnceLock::new();
    let cfg = AbsintConfig::default();
    match app {
        AppId::Poisson2D => Some(POISSON.get_or_init(|| analyze_2d(&Poisson2D, &cfg))),
        AppId::Jacobi3D => Some(JACOBI.get_or_init(|| analyze_3d(&Jacobi3D::smoothing(), &cfg))),
        AppId::Rtm3D => Some(RTM.get_or_init(|| analyze_rtm(RtmParams::default(), &cfg))),
        AppId::Custom => None,
    }
}

/// Kernel diagnostics for a spec as deployed (the preflight / CLI entry
/// point): analyze the canonical kernel behind `spec.app` and apply the
/// K-rules against the spec *as given* — a drifted or overridden spec is
/// exactly what the rules exist to catch. Custom specs yield no diagnostics
/// here; analyze their op explicitly instead.
pub fn app_diagnostics(spec: &StencilSpec, p: usize) -> Vec<Diagnostic> {
    match analyze_app(spec.app) {
        Some(analysis) => kernel_diagnostics(analysis, spec, p, &AbsintConfig::default()),
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_kernels::ops::OpCount;
    use sf_kernels::AbstractValue;

    #[test]
    fn paper_kernels_pass_all_k_rules_clean() {
        for app in AppId::ALL {
            let ds = app_diagnostics(&app.spec(), 8);
            assert!(ds.is_empty(), "{app:?} should be clean, got {ds:?}");
        }
    }

    #[test]
    fn custom_spec_yields_no_app_diagnostics() {
        let mut spec = StencilSpec::poisson();
        spec.app = AppId::Custom;
        assert!(app_diagnostics(&spec, 8).is_empty());
    }

    #[test]
    fn k01_fires_when_declared_reach_is_too_small() {
        // the kernel truly reads radius 1; claim order 0
        let mut spec = StencilSpec::poisson();
        spec.order = 0;
        let ds = app_diagnostics(&spec, 8);
        assert!(ds.iter().any(|d| d.rule == RuleId::KernelFootprint), "{ds:?}");
    }

    #[test]
    fn k02_fires_on_drifted_op_count() {
        let mut spec = StencilSpec::poisson();
        spec.ops = OpCount::new(10, 7, 0); // kernel counts 4 adds + 2 muls
        let ds = app_diagnostics(&spec, 8);
        assert!(ds.iter().any(|d| d.rule == RuleId::KernelOpCount), "{ds:?}");
    }

    #[test]
    fn k03_fires_on_overflowing_kernel() {
        struct Blowup;
        impl AbstractOp2D for Blowup {
            fn update<V: AbstractValue, F: Fn(i32, i32) -> V>(&self, at: &F) -> V {
                let big = V::constant(1e30) * at(0, 0);
                big * big // 1e60 — past f32::MAX
            }
        }
        let a = analyze_2d(&Blowup, &AbsintConfig::default());
        let mut spec = StencilSpec::poisson();
        spec.order = 0;
        spec.ops = OpCount::new(0, 3, 0);
        let ds = kernel_diagnostics(&a, &spec, 1, &AbsintConfig::default());
        assert!(ds.iter().any(|d| d.rule == RuleId::KernelNonFinite), "{ds:?}");
        assert!(!ds.iter().any(|d| d.rule == RuleId::KernelDivByZero));
    }

    #[test]
    fn k04_fires_on_reachable_division_by_zero() {
        struct DivCenter;
        impl AbstractOp2D for DivCenter {
            fn update<V: AbstractValue, F: Fn(i32, i32) -> V>(&self, at: &F) -> V {
                at(-1, 0) / at(0, 0) // input range [-1,1] contains 0
            }
        }
        let a = analyze_2d(&DivCenter, &AbsintConfig::default());
        let mut spec = StencilSpec::poisson();
        spec.ops = OpCount::new(0, 0, 1);
        let ds = kernel_diagnostics(&a, &spec, 1, &AbsintConfig::default());
        assert!(ds.iter().any(|d| d.rule == RuleId::KernelDivByZero), "{ds:?}");
        // K04 subsumes the non-finite warning the poisoned division implies
        assert!(!ds.iter().any(|d| d.rule == RuleId::KernelNonFinite), "{ds:?}");
    }

    #[test]
    fn k05_fires_on_unstable_coefficients_and_reports_p() {
        let k = Jacobi3D::with_coefficients([0.5; 7]);
        let a = analyze_3d(&k, &AbsintConfig::default());
        let spec = StencilSpec::jacobi();
        let ds = kernel_diagnostics(&a, &spec, 29, &AbsintConfig::default());
        let k05 = ds.iter().find(|d| d.rule == RuleId::KernelUnstable).expect("K05 fires");
        assert!(k05.message.contains("p = 29"), "{}", k05.message);
        assert_eq!(k05.severity, sf_check::Severity::Error);
    }

    #[test]
    fn rtm_range_is_finite_and_stability_not_applicable() {
        let a = analyze_app(AppId::Rtm3D).unwrap();
        assert!(a.range.finite_in_f32(), "{:?}", a.range);
        assert!(matches!(a.stability, StabilityVerdict::NotApplicable { .. }));
    }
}
