//! Cost of the analytic machinery itself: single predictions, full
//! design-space sweeps, and the paper-wide accuracy suite — the "model
//! significantly narrows the design space" workflow must itself be cheap.

use criterion::{criterion_group, criterion_main, Criterion};
use sf_core::prelude::*;
use sf_fpga::design::synthesize;
use sf_model::{accuracy, predict};

fn bench_predict(c: &mut Criterion) {
    let d = FpgaDevice::u280();
    let wl = Workload::D2 { nx: 400, ny: 400, batch: 1 };
    let ds = synthesize(&d, &StencilSpec::poisson(), 8, 60, ExecMode::Baseline, MemKind::Hbm, &wl)
        .unwrap();
    c.bench_function("predict_extended_single", |b| {
        b.iter(|| predict(&d, &ds, &wl, 60_000, PredictionLevel::Extended))
    });

    let wlt = Workload::D2 { nx: 15_000, ny: 15_000, batch: 1 };
    let dst = synthesize(
        &d,
        &StencilSpec::poisson(),
        8,
        60,
        ExecMode::Tiled1D { tile_m: 4096 },
        MemKind::Ddr4,
        &wlt,
    )
    .unwrap();
    c.bench_function("predict_extended_tiled_15000", |b| {
        b.iter(|| predict(&d, &dst, &wlt, 100, PredictionLevel::Extended))
    });
}

fn bench_synthesize(c: &mut Criterion) {
    let d = FpgaDevice::u280();
    let wl = Workload::D3 { nx: 300, ny: 300, nz: 300, batch: 1 };
    c.bench_function("synthesize_jacobi", |b| {
        b.iter(|| {
            synthesize(&d, &StencilSpec::jacobi(), 8, 29, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap()
        })
    });
}

fn bench_dse_sweep(c: &mut Criterion) {
    let wf = Workflow::u280_vs_v100();
    c.bench_function("dse_poisson_400", |b| {
        let wl = Workload::D2 { nx: 400, ny: 400, batch: 1 };
        b.iter(|| wf.explore(&StencilSpec::poisson(), &wl, 60_000))
    });
    c.bench_function("dse_rtm_32", |b| {
        let wl = Workload::D3 { nx: 32, ny: 32, nz: 32, batch: 1 };
        b.iter(|| wf.explore(&StencilSpec::rtm(), &wl, 1_800))
    });
}

fn bench_accuracy_suite(c: &mut Criterion) {
    let d = FpgaDevice::u280();
    let mut g = c.benchmark_group("accuracy");
    g.sample_size(10);
    g.bench_function("paper_suite", |b| b.iter(|| accuracy::accuracy_suite(&d)));
    g.finish();
}

criterion_group!(benches, bench_predict, bench_synthesize, bench_dse_sweep, bench_accuracy_suite);
criterion_main!(benches);
