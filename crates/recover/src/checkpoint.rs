//! Mesh-state snapshots with content checksums.
//!
//! A [`Snapshot`] is deliberately *non-generic*: element lanes are
//! flattened to a `f32` vector at capture time so a single concrete type
//! can hold scalar meshes and RTM's packed [`VecN`] state alike, and so
//! the on-disk spill format stays independent of the element type that
//! produced it.
//!
//! [`VecN`]: sf_mesh::VecN

use serde::{Deserialize, Serialize};
use sf_mesh::Element;

/// Typed failure modes of checkpoint restore and spill decode. Restores
/// never panic: every malformed input maps to one of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Spill bytes do not start with the `SFCKPT` magic.
    BadMagic,
    /// Spill header carries a version this build cannot read.
    UnsupportedVersion {
        /// The version found in the header.
        found: u16,
    },
    /// Spill bytes end before the declared payload does.
    Truncated {
        /// Bytes needed to finish decoding.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// Content checksum mismatch — the snapshot bytes were corrupted.
    ChecksumMismatch {
        /// Checksum recorded in the snapshot.
        expected: u64,
        /// Checksum recomputed over the payload.
        found: u64,
    },
    /// The snapshot's shape does not match what the caller asked to
    /// restore into (wrong lane count or cell count).
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// Underlying I/O failure while spilling or reading a file.
    Io {
        /// Rendered I/O error.
        msg: String,
    },
}

impl core::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "checkpoint: bad magic (not an SFCKPT file)"),
            CheckpointError::UnsupportedVersion { found } => {
                write!(f, "checkpoint: unsupported spill version {found}")
            }
            CheckpointError::Truncated { needed, have } => {
                write!(f, "checkpoint: truncated input (need {needed} bytes, have {have})")
            }
            CheckpointError::ChecksumMismatch { expected, found } => write!(
                f,
                "checkpoint: content checksum mismatch (expected {expected:#018x}, found {found:#018x})"
            ),
            CheckpointError::ShapeMismatch { detail } => {
                write!(f, "checkpoint: shape mismatch: {detail}")
            }
            CheckpointError::Io { msg } => write!(f, "checkpoint: i/o error: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// One captured mesh state: shape header, lane-major `f32` payload and an
/// FNV-1a checksum over both.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Iterations fully completed when the snapshot was taken.
    pub iters_done: u64,
    /// Temporal batches (pipeline passes) completed when taken.
    pub passes_done: u64,
    /// Mesh dimensions, fastest-moving first (`[nx, ny]` / `[nx, ny, nz]`).
    pub dims: Vec<u64>,
    /// Batched independent meshes captured together.
    pub batch: u64,
    /// Lanes per element (`1` for scalar, `N` for RTM's `VecN<N>`).
    pub lanes: u32,
    /// Lane-major payload: `cells * lanes` values.
    pub data: Vec<f32>,
    /// FNV-1a 64 checksum over the header and the payload bit patterns.
    pub checksum: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over the snapshot header fields and payload bit patterns; used
/// both in memory and as the spill trailer.
pub fn content_checksum(
    iters_done: u64,
    passes_done: u64,
    dims: &[u64],
    batch: u64,
    lanes: u32,
    data: &[f32],
) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv_u64(h, iters_done);
    h = fnv_u64(h, passes_done);
    h = fnv_u64(h, dims.len() as u64);
    for &d in dims {
        h = fnv_u64(h, d);
    }
    h = fnv_u64(h, batch);
    h = fnv_u64(h, u64::from(lanes));
    h = fnv_u64(h, data.len() as u64);
    for &v in data {
        h = fnv_u64(h, u64::from(v.to_bits()));
    }
    h
}

impl Snapshot {
    /// Capture mesh state from a cell slice, flattening element lanes.
    pub fn capture<T: Element>(
        iters_done: u64,
        passes_done: u64,
        dims: &[u64],
        batch: u64,
        cells: &[T],
    ) -> Snapshot {
        let lanes = T::LANES as u32;
        let mut data = Vec::with_capacity(cells.len() * T::LANES);
        for c in cells {
            for l in 0..T::LANES {
                data.push(c.lane(l));
            }
        }
        let checksum = content_checksum(iters_done, passes_done, dims, batch, lanes, &data);
        Snapshot { iters_done, passes_done, dims: dims.to_vec(), batch, lanes, data, checksum }
    }

    /// Number of cells the payload encodes.
    pub fn cells(&self) -> usize {
        if self.lanes == 0 {
            0
        } else {
            self.data.len() / self.lanes as usize
        }
    }

    /// Payload size in bytes — what a checkpoint writes through external
    /// memory, used to charge checkpoint cost into the cycle plan.
    pub fn payload_bytes(&self) -> u64 {
        self.data.len() as u64 * 4
    }

    /// Verify the content checksum against the stored fields.
    pub fn verify(&self) -> Result<(), CheckpointError> {
        let found = content_checksum(
            self.iters_done,
            self.passes_done,
            &self.dims,
            self.batch,
            self.lanes,
            &self.data,
        );
        if found != self.checksum {
            return Err(CheckpointError::ChecksumMismatch { expected: self.checksum, found });
        }
        Ok(())
    }

    /// Restore the payload into typed cells, verifying the checksum and
    /// the shape (`expected_cells` cells of `T::LANES` lanes) first.
    pub fn restore<T: Element>(&self, expected_cells: usize) -> Result<Vec<T>, CheckpointError> {
        self.verify()?;
        if self.lanes as usize != T::LANES {
            return Err(CheckpointError::ShapeMismatch {
                detail: format!("snapshot has {} lanes, element has {}", self.lanes, T::LANES),
            });
        }
        if self.cells() != expected_cells {
            return Err(CheckpointError::ShapeMismatch {
                detail: format!("snapshot has {} cells, expected {expected_cells}", self.cells()),
            });
        }
        let mut out = Vec::with_capacity(expected_cells);
        for chunk in self.data.chunks_exact(T::LANES) {
            let mut c = T::splat(0.0);
            for (l, &v) in chunk.iter().enumerate() {
                c.set_lane(l, v);
            }
            out.push(c);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_mesh::VecN;

    #[test]
    fn capture_restore_roundtrips_scalar() {
        let cells: Vec<f32> = (0..24).map(|i| i as f32 * 0.5 - 3.0).collect();
        let s = Snapshot::capture(7, 2, &[6, 4], 1, &cells);
        assert_eq!(s.cells(), 24);
        assert_eq!(s.payload_bytes(), 96);
        let back: Vec<f32> = s.restore(24).expect("restore");
        assert_eq!(back, cells);
    }

    #[test]
    fn capture_restore_roundtrips_vector_lanes() {
        let cells: Vec<VecN<3>> =
            (0..6).map(|i| VecN::new([i as f32, -(i as f32), 0.25 * i as f32])).collect();
        let s = Snapshot::capture(1, 1, &[3, 2], 1, &cells);
        assert_eq!(s.lanes, 3);
        let back: Vec<VecN<3>> = s.restore(6).expect("restore");
        assert_eq!(back, cells);
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let cells: Vec<f32> = vec![1.0, 2.0, 3.0, 4.0];
        let mut s = Snapshot::capture(0, 0, &[4, 1], 1, &cells);
        s.data[2] = 99.0;
        assert!(matches!(s.verify(), Err(CheckpointError::ChecksumMismatch { .. })));
        assert!(s.restore::<f32>(4).is_err());
    }

    #[test]
    fn lane_mismatch_is_a_shape_error() {
        let cells: Vec<f32> = vec![1.0; 8];
        let s = Snapshot::capture(0, 0, &[8, 1], 1, &cells);
        let r: Result<Vec<VecN<4>>, _> = s.restore(2);
        assert!(matches!(r, Err(CheckpointError::ShapeMismatch { .. })));
    }
}
