//! Window-buffer streaming throughput: the behavioral core of the FPGA
//! simulator — how fast cells move through ring-buffer stage chains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sf_fpga::window::{run_chain_2d, run_chain_3d};
use sf_kernels::{Jacobi3D, Poisson2D, RtmParams, RtmStage};
use sf_mesh::{Mesh2D, Mesh3D};

fn bench_chain_2d(c: &mut Criterion) {
    let mut g = c.benchmark_group("window_chain_2d");
    let m = Mesh2D::<f32>::random(256, 128, 1, -1.0, 1.0);
    for depth in [1usize, 4, 16] {
        g.throughput(Throughput::Elements((m.len() * depth) as u64));
        g.bench_with_input(BenchmarkId::new("poisson_depth", depth), &depth, |b, &d| {
            let chain = vec![Poisson2D; d];
            b.iter(|| {
                run_chain_2d(&chain, 256, 128, 128, m.as_slice().chunks(256).map(|r| r.to_vec()))
            })
        });
    }
    g.finish();
}

fn bench_chain_3d(c: &mut Criterion) {
    let mut g = c.benchmark_group("window_chain_3d");
    let m = Mesh3D::<f32>::random(48, 48, 48, 2, -1.0, 1.0);
    let k = Jacobi3D::smoothing();
    for depth in [1usize, 3, 9] {
        g.throughput(Throughput::Elements((m.len() * depth) as u64));
        g.bench_with_input(BenchmarkId::new("jacobi_depth", depth), &depth, |b, &d| {
            let chain = vec![k; d];
            b.iter(|| {
                run_chain_3d(
                    &chain,
                    48,
                    48,
                    48,
                    48,
                    m.as_slice().chunks(48 * 48).map(|p| p.to_vec()),
                )
            })
        });
    }
    g.finish();
}

fn bench_rtm_stages(c: &mut Criterion) {
    let mut g = c.benchmark_group("window_chain_rtm");
    let (y, rho, mu) = sf_kernels::rtm::demo_workload(20, 20, 20);
    let packed = sf_kernels::rtm::pack(&y, &rho, &mu);
    let stages = RtmStage::pipeline(RtmParams::default());
    g.throughput(Throughput::Elements(packed.len() as u64 * 4));
    g.bench_function("fused_rk4_step_20cubed", |b| {
        b.iter(|| {
            run_chain_3d(&stages, 20, 20, 20, 20, packed.as_slice().chunks(400).map(|p| p.to_vec()))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_chain_2d, bench_chain_3d, bench_rtm_stages);
criterion_main!(benches);
