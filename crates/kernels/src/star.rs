//! Generic star stencils: user-defined kernels for the workflow.
//!
//! The paper's pitch is a *workflow*, not three hard-coded applications —
//! "once the best optimization strategy for a given motif is identified …
//! it can be used as a design template for similar applications". This
//! module is that template's entry point for downstream users: define a
//! star-shaped stencil by its weighted points, get a [`StencilOp2D`]/
//! [`StencilOp3D`] for execution plus a [`StencilSpec`] for the analytic
//! model and DSE.
//!
//! Weights are applied in insertion order with left-to-right accumulation,
//! so all executors stay bit-exact.

use crate::domain::{AbstractOp2D, AbstractOp3D, AbstractValue};
use crate::op2d::StencilOp2D;
use crate::op3d::StencilOp3D;
use crate::ops::OpCount;
use crate::spec::{AppId, StencilSpec};

/// A weighted-point 2D stencil (star or otherwise — any fixed offset set).
///
/// ```
/// use sf_kernels::{StarStencil2D, reference};
/// use sf_mesh::Mesh2D;
/// // an explicit heat step: u + 0.2·∇²u
/// let k = StarStencil2D::laplace5(0.2, 1.0 - 4.0 * 0.2);
/// let m = Mesh2D::<f32>::random(32, 32, 7, 0.0, 1.0);
/// let out = reference::run_2d(&k, &m, 10);
/// assert!(out.all_finite());
/// // its spec plugs straight into the analytic model / DSE
/// assert_eq!(k.spec().order, 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct StarStencil2D {
    radius: usize,
    points: Vec<(i32, i32, f32)>,
}

impl StarStencil2D {
    /// Build from weighted points. The radius is derived from the largest
    /// offset component.
    ///
    /// # Panics
    /// Panics on an empty point set.
    pub fn new(points: Vec<(i32, i32, f32)>) -> Self {
        assert!(!points.is_empty(), "stencil needs at least one point");
        let radius = points
            .iter()
            .map(|&(dx, dy, _)| dx.unsigned_abs().max(dy.unsigned_abs()) as usize)
            .max()
            .unwrap_or(0);
        StarStencil2D { radius, points }
    }

    /// The classic 5-point Laplacian `α·(N+S+E+W) + β·C`.
    pub fn laplace5(alpha: f32, beta: f32) -> Self {
        StarStencil2D::new(vec![
            (-1, 0, alpha),
            (1, 0, alpha),
            (0, -1, alpha),
            (0, 1, alpha),
            (0, 0, beta),
        ])
    }

    /// A 4th-order 9-point star (two cells per axis): the standard
    /// `(-1, 16, -30, 16, -1)/12` second-derivative weights along each axis,
    /// scaled by `scale`, plus `center` at the origin.
    pub fn laplace9_order4(scale: f32, center: f32) -> Self {
        let w1 = 16.0 / 12.0 * scale;
        let w2 = -1.0 / 12.0 * scale;
        let c = -2.0 * 30.0 / 12.0 * scale + center;
        StarStencil2D::new(vec![
            (-2, 0, w2),
            (-1, 0, w1),
            (1, 0, w1),
            (2, 0, w2),
            (0, -2, w2),
            (0, -1, w1),
            (0, 1, w1),
            (0, 2, w2),
            (0, 0, c),
        ])
    }

    /// Weighted points, in evaluation order.
    pub fn points(&self) -> &[(i32, i32, f32)] {
        &self.points
    }

    /// Arithmetic ops per update: one multiply per point, one add per
    /// accumulation step.
    pub fn op_count(&self) -> OpCount {
        OpCount::new(self.points.len() - 1, self.points.len(), 0)
    }

    /// A model/DSE descriptor for this stencil (scalar f32 elements,
    /// single loop, read + write of one value per cell).
    pub fn spec(&self) -> StencilSpec {
        StencilSpec {
            app: AppId::Custom,
            dims: 2,
            order: 2 * self.radius,
            elem_bytes: 4,
            window_elem_bytes: 4,
            stages: 1,
            ops: self.op_count(),
            logical_rw_bytes: 8,
            ext_read_bytes: 4,
            ext_write_bytes: 4,
            format: crate::ops::NumberFormat::Fp32,
        }
    }
}

impl AbstractOp2D for StarStencil2D {
    /// The single copy of the update math: the first point seeds the
    /// accumulator (`points.len() − 1` adds, matching [`Self::op_count`]),
    /// the rest accumulate left to right.
    #[inline]
    fn update<V: AbstractValue, F: Fn(i32, i32) -> V>(&self, at: &F) -> V {
        let (dx0, dy0, w0) = self.points[0];
        let mut acc = V::constant(w0) * at(dx0, dy0);
        for &(dx, dy, w) in &self.points[1..] {
            acc = acc + V::constant(w) * at(dx, dy);
        }
        acc
    }
}

impl StencilOp2D<f32> for StarStencil2D {
    fn radius(&self) -> usize {
        self.radius
    }

    #[inline]
    fn apply<F: Fn(i32, i32) -> f32>(&self, at: F) -> f32 {
        self.update::<f32, _>(&at)
    }
}

/// A weighted-point 3D stencil.
#[derive(Clone, Debug, PartialEq)]
pub struct StarStencil3D {
    radius: usize,
    points: Vec<(i32, i32, i32, f32)>,
}

impl StarStencil3D {
    /// Build from weighted points.
    ///
    /// # Panics
    /// Panics on an empty point set.
    pub fn new(points: Vec<(i32, i32, i32, f32)>) -> Self {
        assert!(!points.is_empty(), "stencil needs at least one point");
        let radius = points
            .iter()
            .map(|&(dx, dy, dz, _)| {
                dx.unsigned_abs().max(dy.unsigned_abs()).max(dz.unsigned_abs()) as usize
            })
            .max()
            .unwrap_or(0);
        StarStencil3D { radius, points }
    }

    /// The 7-point Laplacian `α·(6 neighbors) + β·C`.
    pub fn laplace7(alpha: f32, beta: f32) -> Self {
        StarStencil3D::new(vec![
            (-1, 0, 0, alpha),
            (1, 0, 0, alpha),
            (0, -1, 0, alpha),
            (0, 1, 0, alpha),
            (0, 0, -1, alpha),
            (0, 0, 1, alpha),
            (0, 0, 0, beta),
        ])
    }

    /// An order-`2k` star along each axis from symmetric second-derivative
    /// weights `w[0..=k]` (`w[0]` is the per-axis center weight), scaled by
    /// `scale`, plus `center` at the origin. `k = 4` with the standard
    /// 8th-order weights gives the RTM-style 25-point star.
    pub fn high_order(weights: &[f32], scale: f32, center: f32) -> Self {
        assert!(weights.len() >= 2, "need at least center + one offset weight");
        let k = weights.len() - 1;
        let mut pts = Vec::new();
        for axis in 0..3usize {
            for d in 1..=k as i32 {
                let w = weights[d as usize] * scale;
                let off = |s: i32| match axis {
                    0 => (s, 0, 0),
                    1 => (0, s, 0),
                    _ => (0, 0, s),
                };
                let (x, y, z) = off(d);
                pts.push((x, y, z, w));
                let (x, y, z) = off(-d);
                pts.push((x, y, z, w));
            }
        }
        pts.push((0, 0, 0, 3.0 * weights[0] * scale + center));
        StarStencil3D::new(pts)
    }

    /// Weighted points, in evaluation order.
    pub fn points(&self) -> &[(i32, i32, i32, f32)] {
        &self.points
    }

    /// Arithmetic ops per update.
    pub fn op_count(&self) -> OpCount {
        OpCount::new(self.points.len() - 1, self.points.len(), 0)
    }

    /// A model/DSE descriptor for this stencil.
    pub fn spec(&self) -> StencilSpec {
        StencilSpec {
            app: AppId::Custom,
            dims: 3,
            order: 2 * self.radius,
            elem_bytes: 4,
            window_elem_bytes: 4,
            stages: 1,
            ops: self.op_count(),
            logical_rw_bytes: 8,
            ext_read_bytes: 4,
            ext_write_bytes: 4,
            format: crate::ops::NumberFormat::Fp32,
        }
    }
}

impl AbstractOp3D for StarStencil3D {
    /// See [`StarStencil2D`]: first point seeds the accumulator so the
    /// executed adds match the declared `points.len() − 1`.
    #[inline]
    fn update<V: AbstractValue, F: Fn(i32, i32, i32) -> V>(&self, at: &F) -> V {
        let (dx0, dy0, dz0, w0) = self.points[0];
        let mut acc = V::constant(w0) * at(dx0, dy0, dz0);
        for &(dx, dy, dz, w) in &self.points[1..] {
            acc = acc + V::constant(w) * at(dx, dy, dz);
        }
        acc
    }
}

impl StencilOp3D<f32> for StarStencil3D {
    fn radius(&self) -> usize {
        self.radius
    }

    #[inline]
    fn apply<F: Fn(i32, i32, i32) -> f32>(&self, at: F) -> f32 {
        self.update::<f32, _>(&at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sf_mesh::{Mesh2D, Mesh3D};

    #[test]
    fn laplace5_radius_and_ops() {
        let s = StarStencil2D::laplace5(0.25, 0.0);
        assert_eq!(s.radius, 1);
        assert_eq!(s.op_count(), OpCount::new(4, 5, 0));
        assert_eq!(s.spec().order, 2);
        assert_eq!(s.spec().gdsp(), 4 * 2 + 5 * 3);
    }

    #[test]
    fn laplace5_averages_neighbors() {
        let s = StarStencil2D::laplace5(0.25, 0.0);
        let v = s.apply(|dx, dy| match (dx, dy) {
            (0, 0) => 100.0,
            _ => 2.0,
        });
        assert_eq!(v, 2.0);
    }

    #[test]
    fn laplace9_order4_exact_on_quadratics() {
        // ∇²(x² + y²) = 4, the order-4 scheme is exact on quadratics
        let s = StarStencil2D::laplace9_order4(1.0, 0.0);
        let v = s.apply(|dx, dy| (dx * dx + dy * dy) as f32);
        assert!((v - 4.0).abs() < 1e-4, "got {v}");
    }

    #[test]
    fn high_order_3d_star_shape() {
        // 8th-order weights: k = 4 → 25 points, radius 4, order 8 — the
        // RTM-style star
        let w = [-205.0 / 72.0, 1.6, -0.2, 8.0 / 315.0, -1.0 / 560.0];
        let s = StarStencil3D::high_order(&w, 1.0, 0.0);
        assert_eq!(s.points().len(), 25);
        assert_eq!(s.radius, 4);
        assert_eq!(s.spec().order, 8);
        // exact second derivative of x²: ∇²(x²) = 2
        let v = s.apply(|dx, _, _| (dx * dx) as f32);
        assert!((v - 2.0).abs() < 1e-3, "got {v}");
    }

    #[test]
    fn laplace7_matches_jacobi_shaped_reference() {
        // identical coefficients through both kernel types must agree
        let m = Mesh3D::<f32>::random(10, 9, 8, 3, -1.0, 1.0);
        let star = StarStencil3D::laplace7(1.0 / 12.0, 0.5);
        let out = reference::run_3d(&star, &m, 3);
        assert!(out.all_finite());
        // a contraction: max-norm non-increasing (weights sum to 1)
        let n0 = sf_mesh::norms::max_norm_3d(&m);
        let n1 = sf_mesh::norms::max_norm_3d(&out);
        assert!(n1 <= n0 + 1e-6);
    }

    #[test]
    fn custom_star_runs_in_reference_2d() {
        let m = Mesh2D::<f32>::random(20, 14, 5, -1.0, 1.0);
        let s = StarStencil2D::laplace9_order4(0.05, 1.0);
        let out = reference::run_2d(&s, &m, 4);
        assert!(out.all_finite());
        assert_eq!(s.radius, 2);
        // boundary band of width 2 held fixed
        assert_eq!(out.get(1, 1), m.get(1, 1));
        assert_eq!(out.get(0, 7), m.get(0, 7));
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_stencil_rejected() {
        let _ = StarStencil2D::new(vec![]);
    }
}
