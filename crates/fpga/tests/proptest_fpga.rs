//! Property tests for the FPGA substrate: window-chain correctness on
//! randomized shapes (including 3D batched and multi-stage RTM), cycle-plan
//! monotonicity, synthesis determinism, and placement invariants.

use proptest::prelude::*;
use sf_fpga::design::{synthesize, ExecMode, MemKind, Workload};
use sf_fpga::slr::{place_chain, ModuleDemand};
use sf_fpga::{cycles, exec3d, FpgaDevice};
use sf_kernels::{reference, rtm, Jacobi3D, RtmParams, RtmStage, StencilSpec};
use sf_mesh::{norms, Batch3D};

fn dev() -> FpgaDevice {
    FpgaDevice::u280()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// 3D batched simulation is bit-exact for random shapes/batches/unrolls.
    #[test]
    fn batched_3d_always_bit_exact(
        nx in 3usize..14,
        ny in 3usize..12,
        nz in 3usize..10,
        b in 1usize..4,
        p in 1usize..4,
        iters in 1usize..7,
        seed in 0u64..300,
    ) {
        let batch = Batch3D::<f32>::random(nx, ny, nz, b, seed, -1.0, 1.0);
        let wl = Workload::D3 { nx, ny, nz, batch: b };
        let mode = if b == 1 { ExecMode::Baseline } else { ExecMode::Batched { b } };
        let ds = synthesize(&dev(), &StencilSpec::jacobi(), 4, p, mode, MemKind::Hbm, &wl).unwrap();
        let k = Jacobi3D::smoothing();
        let (out, _) = exec3d::simulate_3d(&dev(), &ds, &[k], &batch, iters);
        let expect = reference::run_batch_3d(&k, &batch, iters);
        prop_assert!(norms::bit_equal(out.as_slice(), expect.as_slice()));
    }

    /// The RTM fused multi-stage pipeline stays bit-exact for random shapes
    /// and physics parameters.
    #[test]
    fn rtm_pipeline_always_bit_exact(
        nx in 9usize..16,
        ny in 9usize..14,
        nz in 9usize..14,
        iters in 1usize..5,
        dt_mill in 1u32..10,
        sig_c in 0u32..10,
    ) {
        let prm = RtmParams {
            dt: dt_mill as f32 * 1e-3,
            sigma: sig_c as f32 * 0.01,
            sigma2: sig_c as f32 * 0.005,
        };
        let (y, rho, mu) = rtm::demo_workload(nx, ny, nz);
        let packed = rtm::pack(&y, &rho, &mu);
        let wl = Workload::D3 { nx, ny, nz, batch: 1 };
        let ds = synthesize(&dev(), &StencilSpec::rtm(), 1, 3, ExecMode::Baseline, MemKind::Hbm, &wl)
            .unwrap();
        let stages = RtmStage::pipeline(prm);
        let (out, _) = exec3d::simulate_mesh_3d(&dev(), &ds, &stages, &packed, iters);
        let expect = reference::run_stages_3d(&stages, &packed, iters);
        prop_assert!(norms::bit_equal(out.as_slice(), expect.as_slice()));
    }

    /// Cycle plans are monotone: more iterations never cost fewer cycles,
    /// and larger meshes never cost fewer cycles per pass.
    #[test]
    fn plan_monotonicity(
        nx in 16usize..256,
        ny in 8usize..128,
        p in 1usize..12,
        niter in 1u64..200,
    ) {
        let d = dev();
        let wl = Workload::D2 { nx, ny, batch: 1 };
        let ds = synthesize(&d, &StencilSpec::poisson(), 8, p, ExecMode::Baseline, MemKind::Hbm, &wl)
            .unwrap();
        let a = cycles::plan(&d, &ds, &wl, niter);
        let b = cycles::plan(&d, &ds, &wl, niter + p as u64);
        prop_assert!(b.total_cycles > a.total_cycles);
        prop_assert!(b.runtime_s > a.runtime_s);

        let wl2 = Workload::D2 { nx, ny: ny + 8, batch: 1 };
        let ds2 = synthesize(&d, &StencilSpec::poisson(), 8, p, ExecMode::Baseline, MemKind::Hbm, &wl2)
            .unwrap();
        let c = cycles::plan(&d, &ds2, &wl2, niter);
        prop_assert!(c.cycles_per_pass > a.cycles_per_pass);
    }

    /// Synthesis is deterministic: same inputs, identical design.
    #[test]
    fn synthesis_deterministic(
        nx in 16usize..512,
        ny in 16usize..512,
        v_pow in 0u32..4,
        p in 1usize..20,
    ) {
        let d = dev();
        let v = 1usize << v_pow;
        let wl = Workload::D2 { nx, ny, batch: 1 };
        let a = synthesize(&d, &StencilSpec::poisson(), v, p, ExecMode::Baseline, MemKind::Hbm, &wl);
        let b = synthesize(&d, &StencilSpec::poisson(), v, p, ExecMode::Baseline, MemKind::Hbm, &wl);
        prop_assert_eq!(a, b);
    }

    /// Placement invariants: assignments are sorted, within bounds, and the
    /// crossing count equals the number of SLR transitions.
    #[test]
    fn placement_invariants(
        p in 1usize..80,
        dsp_per in 10usize..400,
        uram_per in 0usize..12,
    ) {
        let d = dev();
        match place_chain(&d, p, ModuleDemand { dsp: dsp_per, bram: 0, uram: uram_per }) {
            Ok(pl) => {
                prop_assert_eq!(pl.assignments.len(), p);
                for w in pl.assignments.windows(2) {
                    prop_assert!(w[1] >= w[0], "assignments must be monotone");
                }
                prop_assert!(pl.assignments.iter().all(|&s| s < d.slr_count));
                let trans = pl.assignments.windows(2).filter(|w| w[0] != w[1]).count();
                prop_assert_eq!(pl.crossings, trans);
                prop_assert_eq!(pl.spanning_modules, 0, "per-module demand fits one SLR");
            }
            Err(_) => {
                // legitimate only when per-SLR packing genuinely cannot hold
                // the chain: modules/SLR = floor(cap/demand) per resource
                // (fragmentation counts — that is what the model exists for)
                let per_slr_dsp = (d.dsp_total / d.slr_count) / dsp_per.max(1);
                let per_slr_uram = (d.uram_blocks / d.slr_count)
                    .checked_div(uram_per)
                    .unwrap_or(usize::MAX);
                let max_modules = d.slr_count * per_slr_dsp.min(per_slr_uram);
                prop_assert!(
                    p > max_modules,
                    "placement failed though {p} ≤ {max_modules} packable modules"
                );
            }
        }
    }

    /// Tiled plans read at least as much as they write (halo redundancy) and
    /// write back exactly the mesh per pass.
    #[test]
    fn tiled_traffic_accounting(
        nx in 200usize..2000,
        ny in 8usize..64,
        tile in 1usize..3,
        p in 1usize..8,
        niter in 1u64..40,
    ) {
        let d = dev();
        let tile_m = [64usize, 128, 256][tile];
        prop_assume!(tile_m > 2 * p);
        let wl = Workload::D2 { nx, ny, batch: 1 };
        let ds = synthesize(
            &d,
            &StencilSpec::poisson(),
            8,
            p,
            ExecMode::Tiled1D { tile_m },
            MemKind::Ddr4,
            &wl,
        )
        .unwrap();
        let plan = cycles::plan(&d, &ds, &wl, niter);
        prop_assert!(plan.ext_read_bytes >= plan.ext_write_bytes);
        prop_assert_eq!(plan.ext_write_bytes, plan.passes * (nx * ny * 4) as u64);
    }
}

#[test]
fn placement_failure_is_possible_but_reported() {
    // deterministic companion to the property: 100 modules of 112 DSP
    // exceed the die and must fail cleanly
    let err = place_chain(&dev(), 100, ModuleDemand { dsp: 112, bram: 0, uram: 0 }).unwrap_err();
    assert!(format!("{err}").contains("does not fit"));
}
