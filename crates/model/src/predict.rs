//! Runtime prediction for a synthesized design.
//!
//! Two levels:
//!
//! * [`PredictionLevel::Ideal`] — the paper's equations (2)/(3)/(9)/(15)
//!   verbatim: pure streaming cycles, no protocol overheads. This is what
//!   §III-A/§IV derive.
//! * [`PredictionLevel::Extended`] — ideal plus the two overheads the paper
//!   discusses qualitatively and we calibrated quantitatively: the per-row
//!   AXI request-issue gap and the per-pass host enqueue latency, plus the
//!   compute-pipeline fill. Deliberately *not* included: the memory-side
//!   `max()` of strided tile rows — so 3D tiled predictions under-estimate,
//!   reproducing the paper's own observation that its "model predictions
//!   \[are\] slightly less accurate" for Jacobi spatial blocking (Fig. 4c).

use crate::error::ModelError;
use serde::{Deserialize, Serialize};
use sf_fpga::design::{ExecMode, StencilDesign, Workload};
use sf_fpga::FpgaDevice;
use sf_mesh::TileGrid1D;
use sf_multi::{sharded_plan, MultiConfig, MultiError};

/// Fidelity of a prediction.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictionLevel {
    /// Paper equations only.
    Ideal,
    /// Equations + calibrated row-gap and host-call overheads.
    Extended,
}

/// A predicted execution.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Fidelity level used.
    pub level: PredictionLevel,
    /// Predicted kernel cycles.
    pub cycles: u64,
    /// Predicted wall-clock seconds.
    pub runtime_s: f64,
    /// Predicted bandwidth (paper convention), GB/s.
    pub bandwidth_gbs: f64,
}

/// Rows (2D) or plane-rows (3D) streamed per pass, including fill, together
/// with the per-row compute cycles — the common core of both levels.
struct StreamShape {
    /// (rows, cells_per_row) segments; tiled modes have one per tile.
    segments: Vec<(u64, u64)>,
    /// Per-pass extra cycles charged per segment at Extended level
    /// (per-tile control turnaround).
    per_segment_overhead: u64,
}

fn shape(
    dev: &FpgaDevice,
    design: &StencilDesign,
    wl: &Workload,
) -> Result<StreamShape, ModelError> {
    // Fill term of eqs. (2)/(3): ⌈D/2⌉ rows held back per chained stage.
    // Ceiling per stage (not of the product) keeps odd-order stencils in
    // lockstep with the simulator's `sf_fpga::cycles::fill_units`.
    let p = design.p as u64;
    let fill = p * (design.spec.stages * design.spec.order.div_ceil(2)) as u64;
    Ok(match (*wl, design.mode) {
        (Workload::D2 { nx, ny, batch }, ExecMode::Baseline | ExecMode::Batched { .. }) => {
            StreamShape {
                segments: vec![((batch * ny) as u64 + fill, nx as u64)],
                per_segment_overhead: 0,
            }
        }
        (Workload::D3 { nx, ny, nz, batch }, ExecMode::Baseline | ExecMode::Batched { .. }) => {
            StreamShape {
                segments: vec![(((batch * nz) as u64 + fill) * ny as u64, nx as u64)],
                per_segment_overhead: 0,
            }
        }
        (Workload::D2 { nx, ny, .. }, ExecMode::Tiled1D { tile_m }) => {
            let halo = design.p * design.spec.halo_order() / 2;
            let align = (dev.axi_bus_bytes / design.spec.elem_bytes).max(1);
            let grid = TileGrid1D::new(nx, tile_m, halo, align);
            StreamShape {
                segments: grid
                    .tiles()
                    .iter()
                    .map(|t| (ny as u64 + fill, t.read_len as u64))
                    .collect(),
                per_segment_overhead: dev.axi_latency_cycles as u64,
            }
        }
        (Workload::D3 { nx, ny, nz, .. }, ExecMode::Tiled2D { tile_m, tile_n }) => {
            let halo = design.p * design.spec.halo_order() / 2;
            let align = (dev.axi_bus_bytes / design.spec.elem_bytes).max(1);
            let gx = TileGrid1D::new(nx, tile_m, halo, align);
            let gy = TileGrid1D::new(ny, tile_n, halo, 1);
            let mut segments = Vec::new();
            for ty in gy.tiles() {
                for tx in gx.tiles() {
                    segments.push(((nz as u64 + fill) * ty.read_len as u64, tx.read_len as u64));
                }
            }
            StreamShape { segments, per_segment_overhead: dev.axi_latency_cycles as u64 }
        }
        _ => {
            return Err(ModelError::WorkloadMismatch {
                detail: format!("mode {:?} cannot stream workload {:?}", design.mode, wl),
            })
        }
    })
}

/// Predict the execution of `niter` iterations of a workload on a design.
///
/// Fails with [`ModelError::WorkloadMismatch`] when the design's execution
/// mode cannot stream the workload shape (the plain executors assert on the
/// same condition), and with [`ModelError::NonFiniteRuntime`] when the
/// design point falls outside the calibrated model's domain.
pub fn predict(
    dev: &FpgaDevice,
    design: &StencilDesign,
    wl: &Workload,
    niter: u64,
    level: PredictionLevel,
) -> Result<Prediction, ModelError> {
    let p = design.p as u64;
    let passes = niter.div_ceil(p).max(1);
    let v = design.v as u64;
    let sh = shape(dev, design, wl)?;

    let gap = match level {
        PredictionLevel::Ideal => 0,
        PredictionLevel::Extended => dev.axi_issue_gap_cycles as u64,
    };
    let mut per_pass = 0u64;
    for &(rows, cells) in &sh.segments {
        per_pass += rows * (cells.div_ceil(v) + gap);
        if level == PredictionLevel::Extended {
            per_pass += sh.per_segment_overhead;
        }
    }
    if level == PredictionLevel::Extended {
        per_pass += design.pipeline_latency_cycles;
    }
    let cycles = passes * per_pass;
    let mut runtime_s = cycles as f64 / design.freq_hz;
    if level == PredictionLevel::Extended {
        runtime_s += passes as f64 * dev.host_call_latency_s;
    }
    let logical = niter * wl.total_cells() * design.spec.logical_rw_bytes as u64;
    if !runtime_s.is_finite() || runtime_s <= 0.0 {
        return Err(ModelError::NonFiniteRuntime {
            detail: format!("V={} p={} mode {:?} on {:?}", design.v, design.p, design.mode, wl),
        });
    }
    Ok(Prediction { level, cycles, runtime_s, bandwidth_gbs: logical as f64 / runtime_s / 1.0e9 })
}

/// Predict a multi-device sharded execution of `niter` iterations.
///
/// Always Extended-level: the sharded cycle plan prices the same row-gap,
/// pipeline-fill and host-call overheads as the single-device Extended
/// model, plus per-pass halo exchange over `cfg.link` with overlap against
/// interior compute. At `cfg.devices == 1` this equals the single-device
/// cycle plan exactly (see [`sf_multi::sharded_plan`]).
///
/// # Errors
/// [`ModelError::InvalidParameter`] for a zero device count or more devices
/// than outermost mesh units, [`ModelError::WorkloadMismatch`] for tiled
/// designs (they decompose the mesh their own way), and
/// [`ModelError::NonFiniteRuntime`] outside the calibrated domain.
pub fn predict_sharded(
    dev: &FpgaDevice,
    design: &StencilDesign,
    wl: &Workload,
    niter: u64,
    cfg: &MultiConfig,
) -> Result<Prediction, ModelError> {
    let plan = sharded_plan(dev, design, wl, niter, cfg).map_err(|e| match e {
        MultiError::UnsupportedMode => ModelError::WorkloadMismatch {
            detail: format!(
                "mode {:?} cannot be sharded across {} devices",
                design.mode, cfg.devices
            ),
        },
        other => ModelError::invalid("devices", other.to_string()),
    })?;
    let runtime_s = plan.merged.runtime_s;
    if !runtime_s.is_finite() || runtime_s <= 0.0 {
        return Err(ModelError::NonFiniteRuntime {
            detail: format!(
                "V={} p={} devices={} mode {:?} on {:?}",
                design.v, design.p, cfg.devices, design.mode, wl
            ),
        });
    }
    Ok(Prediction {
        level: PredictionLevel::Extended,
        cycles: plan.merged.total_cycles,
        runtime_s,
        bandwidth_gbs: plan.merged.logical_bytes as f64 / runtime_s / 1.0e9,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equations;
    use sf_fpga::cycles;
    use sf_fpga::design::{synthesize, MemKind};
    use sf_kernels::StencilSpec;

    fn dev() -> FpgaDevice {
        FpgaDevice::u280()
    }

    #[test]
    fn ideal_matches_eq2_exactly() {
        let d = dev();
        let wl = Workload::D2 { nx: 200, ny: 100, batch: 1 };
        let ds =
            synthesize(&d, &StencilSpec::poisson(), 8, 60, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let pr = predict(&d, &ds, &wl, 60_000, PredictionLevel::Ideal).unwrap();
        assert_eq!(pr.cycles, equations::clks_2d(60_000, 60, 200, 100, 8, 2));
    }

    #[test]
    fn ideal_matches_eq3_exactly() {
        let d = dev();
        let wl = Workload::D3 { nx: 100, ny: 100, nz: 100, batch: 1 };
        let ds =
            synthesize(&d, &StencilSpec::jacobi(), 8, 29, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let pr = predict(&d, &ds, &wl, 29_000, PredictionLevel::Ideal).unwrap();
        assert_eq!(pr.cycles, equations::clks_3d(29_000, 29, 100, 100, 100, 8, 2));
    }

    #[test]
    fn extended_dominates_ideal() {
        let d = dev();
        let wl = Workload::D2 { nx: 200, ny: 100, batch: 1 };
        let ds =
            synthesize(&d, &StencilSpec::poisson(), 8, 60, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let i = predict(&d, &ds, &wl, 60_000, PredictionLevel::Ideal).unwrap();
        let e = predict(&d, &ds, &wl, 60_000, PredictionLevel::Extended).unwrap();
        assert!(e.runtime_s > i.runtime_s);
        assert!(e.bandwidth_gbs < i.bandwidth_gbs);
    }

    #[test]
    fn extended_matches_simulator_on_compute_bound_cases() {
        // For baseline/batched Poisson the simulator rows are compute-bound,
        // so the extended prediction equals the simulator's plan exactly.
        let d = dev();
        for (nx, ny, b) in [(200usize, 100usize, 1usize), (400, 400, 1), (200, 100, 100)] {
            let wl = Workload::D2 { nx, ny, batch: b };
            let mode = if b == 1 { ExecMode::Baseline } else { ExecMode::Batched { b } };
            let ds =
                synthesize(&d, &StencilSpec::poisson(), 8, 60, mode, MemKind::Hbm, &wl).unwrap();
            let e = predict(&d, &ds, &wl, 6000, PredictionLevel::Extended).unwrap();
            let plan = cycles::plan(&d, &ds, &wl, 6000);
            assert_eq!(e.cycles, plan.total_cycles, "{nx}x{ny} b={b}");
            assert!((e.runtime_s - plan.runtime_s).abs() / plan.runtime_s < 1e-12);
        }
    }

    #[test]
    fn ideal_underpredicts_tiled_3d_like_the_paper() {
        // The pure eq. (9) model knows nothing about per-run transfer
        // overheads, so it under-predicts tiled 3D runtimes substantially —
        // the paper's own "slightly less accurate model predictions in
        // Fig. 4(c)". The extended model closes most of the gap and never
        // exceeds the simulator (which additionally prices memory-bound
        // rows).
        let d = dev();
        let wl = Workload::D3 { nx: 600, ny: 600, nz: 600, batch: 1 };
        let ds = synthesize(
            &d,
            &StencilSpec::jacobi(),
            64,
            3,
            ExecMode::Tiled2D { tile_m: 640, tile_n: 640 },
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let plan = cycles::plan(&d, &ds, &wl, 120);
        let i = predict(&d, &ds, &wl, 120, PredictionLevel::Ideal).unwrap();
        let e = predict(&d, &ds, &wl, 120, PredictionLevel::Extended).unwrap();
        assert!(
            i.runtime_s < plan.runtime_s * 0.85,
            "ideal {} must underpredict simulator {} by >15%",
            i.runtime_s,
            plan.runtime_s
        );
        assert!(e.runtime_s <= plan.runtime_s * 1.0001);
        assert!(e.runtime_s > i.runtime_s);
    }

    #[test]
    fn batching_prediction_improves_bandwidth() {
        let d = dev();
        let solo = Workload::D2 { nx: 200, ny: 100, batch: 1 };
        let ds1 =
            synthesize(&d, &StencilSpec::poisson(), 8, 60, ExecMode::Baseline, MemKind::Hbm, &solo)
                .unwrap();
        let b1 = predict(&d, &ds1, &solo, 60_000, PredictionLevel::Extended).unwrap().bandwidth_gbs;
        let batched = Workload::D2 { nx: 200, ny: 100, batch: 1000 };
        let ds2 = synthesize(
            &d,
            &StencilSpec::poisson(),
            8,
            60,
            ExecMode::Batched { b: 1000 },
            MemKind::Hbm,
            &batched,
        )
        .unwrap();
        let b2 =
            predict(&d, &ds2, &batched, 60_000, PredictionLevel::Extended).unwrap().bandwidth_gbs;
        assert!(b2 > b1 * 1.5, "batched {b2} vs baseline {b1}");
    }

    #[test]
    fn sharded_prediction_degenerates_and_prices_exchange() {
        let d = dev();
        let wl = Workload::D2 { nx: 256, ny: 512, batch: 1 };
        let ds =
            synthesize(&d, &StencilSpec::poisson(), 8, 16, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        // K = 1 is exactly the single-device Extended prediction (this
        // Poisson config is compute-bound, so plan == extended model)
        let single = predict(&d, &ds, &wl, 320, PredictionLevel::Extended).unwrap();
        let k1 = predict_sharded(&d, &ds, &wl, 320, &sf_multi::MultiConfig::new(1)).unwrap();
        assert_eq!(k1.cycles, single.cycles);
        assert!((k1.runtime_s - single.runtime_s).abs() / single.runtime_s < 1e-12);
        // K = 4 shrinks the pass wall but pays 4× host calls; the predicted
        // cycles must match the sharded plan verbatim
        let cfg = sf_multi::MultiConfig::new(4);
        let k4 = predict_sharded(&d, &ds, &wl, 320, &cfg).unwrap();
        let plan = sf_multi::sharded_plan(&d, &ds, &wl, 320, &cfg).unwrap();
        assert_eq!(k4.cycles, plan.merged.total_cycles);
        assert!(k4.cycles < k1.cycles);
        // invalid shardings are typed errors, not panics
        assert!(matches!(
            predict_sharded(&d, &ds, &wl, 320, &sf_multi::MultiConfig::new(0)).unwrap_err(),
            ModelError::InvalidParameter { .. }
        ));
        assert!(matches!(
            predict_sharded(&d, &ds, &wl, 320, &sf_multi::MultiConfig::new(1000)).unwrap_err(),
            ModelError::InvalidParameter { .. }
        ));
        let tiled = synthesize(
            &d,
            &StencilSpec::poisson(),
            8,
            4,
            ExecMode::Tiled1D { tile_m: 128 },
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        assert!(matches!(
            predict_sharded(&d, &tiled, &wl, 320, &sf_multi::MultiConfig::new(2)).unwrap_err(),
            ModelError::WorkloadMismatch { .. }
        ));
    }

    #[test]
    fn mismatched_mode_and_workload_is_a_typed_error() {
        // A 1D-tiled (2D) design cannot stream a 3D workload; this used to be
        // an `unreachable!` panic.
        let d = dev();
        let wl2 = Workload::D2 { nx: 400, ny: 400, batch: 1 };
        let ds = synthesize(
            &d,
            &StencilSpec::poisson(),
            8,
            4,
            ExecMode::Tiled1D { tile_m: 128 },
            MemKind::Hbm,
            &wl2,
        )
        .unwrap();
        let wl3 = Workload::D3 { nx: 64, ny: 64, nz: 64, batch: 1 };
        let err = predict(&d, &ds, &wl3, 100, PredictionLevel::Extended).unwrap_err();
        assert!(matches!(err, ModelError::WorkloadMismatch { .. }), "{err}");
    }
}
