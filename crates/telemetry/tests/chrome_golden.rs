//! Golden-file test for the Chrome trace exporter.
//!
//! Pins the trace-event schema: `traceEvents` entries carry `ph`, `pid`,
//! `tid`, `name` (and `ts`/`dur` for complete events) so the output loads
//! in Perfetto / `chrome://tracing`. Regenerate the golden with
//! `SF_UPDATE_GOLDEN=1 cargo test -p sf-telemetry --test chrome_golden`.

use serde::Value;
use sf_telemetry::{chrome, Divergence, Recorder, StallClass};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/chrome_trace.json");

/// A small deterministic recorder exercising every event kind.
fn sample_recorder() -> Recorder {
    let mut rec = Recorder::enabled(250.0); // 250 MHz → 250 cycles/µs
    rec.set_meta("app", Value::String("golden".into()));
    rec.set_meta("v", Value::U64(8));
    let pipe = rec.track("pipeline");
    rec.span(pipe, "pass 0", 0, 1000);
    rec.span_with_args(pipe, "pass 1", 1000, 2000, vec![("passes".into(), Value::U64(1))]);
    let seg = rec.track("segments");
    rec.span(seg, "mesh", 0, 900);
    rec.instant(seg, "primed", 120);
    let fifo = rec.track("fifo:chain->wr");
    rec.gauge(fifo, "high_water", 500, 12.0);
    rec.counter_add("fifo.total_pushes", 640);
    rec.stall(StallClass::Compute, 1800);
    rec.stall(StallClass::Memory, 200);
    rec.set_divergence(Divergence::new(1980, 2000));
    rec
}

#[test]
fn chrome_trace_matches_golden() {
    let json = chrome::to_chrome_json(&sample_recorder());
    if std::env::var("SF_UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &json).unwrap();
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — regenerate with SF_UPDATE_GOLDEN=1");
    assert_eq!(json.trim(), golden.trim(), "chrome trace output drifted from the golden file");
}

#[test]
fn chrome_trace_schema_is_loadable() {
    let json = chrome::to_chrome_json(&sample_recorder());
    let doc: Value = serde_json::from_str(&json).unwrap();
    let events =
        doc.get("traceEvents").and_then(Value::as_array).expect("top-level traceEvents array");
    assert!(!events.is_empty());
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("ph");
        assert!(e.get("pid").and_then(Value::as_u64).is_some(), "pid");
        assert!(e.get("name").and_then(Value::as_str).is_some(), "name");
        match ph {
            "X" => {
                assert!(e.get("ts").is_some() && e.get("dur").is_some());
                assert!(e.get("tid").and_then(Value::as_u64).is_some());
            }
            "i" | "C" => assert!(e.get("ts").is_some()),
            "M" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    // Both span tracks and the counter/gauge samples survive the export.
    let spans = events.iter().filter(|e| e.get("ph").and_then(Value::as_str) == Some("X")).count();
    assert_eq!(spans, 3);
}
