//! Recoverable execution: checkpoint/rollback with ABFT detection layered
//! over the resilient executors.
//!
//! The temporal-batch loop of [`crate::resilient::simulate_2d_resilient`]
//! already advances the solve `p_eff` iterations per pipeline pass; this
//! module groups passes into **checkpoint segments** of
//! [`RecoveryConfig::checkpoint_every`] passes. Per segment:
//!
//! 1. the segment is executed through the fault-aware chain runners;
//! 2. an [`AbftSignature`] (block row/column sums) of the segment output
//!    is compared against the signature of the reference-propagated state
//!    from the last verified checkpoint — silent data corruption the
//!    FIFO/AXI checks miss shows up here as `fault.sdc_detected`;
//! 3. on an ABFT mismatch *or* a watchdog deadlock, the last checkpoint
//!    is restored from the in-memory [`CheckpointRing`] (its content
//!    checksum re-verified) and only the lost passes are recomputed, up
//!    to [`RecoveryPolicy::Rollback`]'s `max_retries` per segment;
//! 4. on success the new state is checkpointed (and optionally spilled
//!    to the versioned on-disk format).
//!
//! **Cost model.** Checkpoint writes are charged at the external-memory
//! write bandwidth of eq. 4 (`bytes / (BW/f)` cycles), ABFT checks at one
//! vector per cycle, and rollback replay at the plan's per-pass cycle
//! cost. All three are added to the [`CyclePlan`]'s total and attributed
//! to the dedicated [`StallClass::Checkpoint`] telemetry class, so the
//! overhead-vs-MTTR tradeoff of the checkpoint interval is directly
//! visible in the flat-metrics JSON and in cross-run `RunRecord`s.
//!
//! Determinism: the fault injector's RNG advances exactly once per
//! opportunity, replays re-consult it (a single-injection plan is clean
//! on replay — its budget is spent), and the batch-parallel variants
//! derive per-mesh injector seeds by index, so outputs, stats and
//! telemetry are byte-identical for any `--jobs` value and reproducible
//! per seed.
//!
//! [`CyclePlan`]: crate::cycles::CyclePlan

use crate::cycles;
use crate::design::{MemKind, StencilDesign, Workload};
use crate::device::FpgaDevice;
use crate::error::ExecError;
use crate::power;
use crate::report::SimReport;
use crate::resilient::{
    check_mode, pass_budget, plan_with_faults, run_chain_2d_resilient_engine,
    run_chain_3d_resilient_engine, simulate_2d_resilient_core, simulate_3d_resilient_core,
};
use crate::window::{Engine2D, Engine3D, ScalarEngine};
use sf_faults::{FaultInjector, FaultPlan, RetryPolicy, Watchdog};
use sf_kernels::{reference, StencilOp2D, StencilOp3D};
use sf_mesh::{Batch2D, Batch3D, Element, Mesh2D, Mesh3D};
use sf_recover::{
    abft_check_cycles, spill, AbftSignature, CheckpointRing, RecoveryConfig, RecoveryPolicy,
    RecoveryStats, Snapshot,
};
use sf_telemetry::{Recorder, StallClass};
use std::path::PathBuf;

/// Cycles to write `bytes` of checkpoint state through the design's
/// external memory at eq. 4 write bandwidth.
pub fn checkpoint_cost_cycles(dev: &FpgaDevice, design: &StencilDesign, bytes: u64) -> u64 {
    let mem = match design.mem {
        MemKind::Hbm => &dev.hbm,
        MemKind::Ddr4 => &dev.ddr4,
    };
    let bytes_per_cycle = mem.total_bw() / design.freq_hz;
    if bytes_per_cycle <= 0.0 {
        return bytes;
    }
    (bytes as f64 / bytes_per_cycle).ceil() as u64
}

/// Per-segment execution parameters shared by the 2D/3D cores.
struct RecoverParams {
    /// Passes per checkpoint segment.
    interval: usize,
    /// Rollback attempts allowed per segment.
    max_retries: u32,
    /// Snapshots retained in memory.
    ring_capacity: usize,
    /// ABFT comparison tolerance.
    abft_tol: f64,
    /// Spill directory (optional) and file-name prefix for this stream.
    spill_dir: Option<PathBuf>,
    spill_prefix: String,
    /// Cycles charged per checkpoint write.
    ckpt_cost: u64,
    /// Cycles charged per ABFT check.
    abft_cost: u64,
    /// Replay cost of one pipeline pass.
    pass_cycles: u64,
}

impl RecoverParams {
    fn from_config(
        rcfg: &RecoveryConfig,
        max_retries: u32,
        spill_prefix: &str,
        ckpt_cost: u64,
        abft_cost: u64,
        pass_cycles: u64,
    ) -> RecoverParams {
        RecoverParams {
            interval: rcfg.checkpoint_every.max(1),
            max_retries,
            ring_capacity: rcfg.ring_capacity,
            abft_tol: rcfg.abft_tol,
            spill_dir: rcfg.spill_dir.clone(),
            spill_prefix: spill_prefix.to_string(),
            ckpt_cost,
            abft_cost,
            pass_cycles,
        }
    }

    /// Capture (and optionally spill) a checkpoint, charging its cost.
    #[allow(clippy::too_many_arguments)]
    fn take_checkpoint<T: Element>(
        &self,
        ring: &mut CheckpointRing,
        stats: &mut RecoveryStats,
        dims: &[u64],
        batch: u64,
        cells: &[T],
        iters_done: u64,
        passes_done: u64,
    ) -> Result<(), ExecError> {
        let snap = Snapshot::capture(iters_done, passes_done, dims, batch, cells);
        if let Some(dir) = &self.spill_dir {
            let path = dir.join(format!("{}ckpt_{passes_done:06}.sfckpt", self.spill_prefix));
            spill::write_file(&path, &snap)
                .map_err(|e| ExecError::Checkpoint { detail: e.to_string() })?;
        }
        ring.push(snap);
        stats.checkpoints_taken += 1;
        stats.checkpoint_cycles += self.ckpt_cost;
        Ok(())
    }

    /// Restore the most recent checkpoint into `cells` after a detection.
    fn rollback<T: Element>(
        &self,
        ring: &CheckpointRing,
        cells: &mut [T],
        rollbacks: u32,
    ) -> Result<(), ExecError> {
        let snap = ring.latest().ok_or_else(|| ExecError::Checkpoint {
            detail: "rollback requested with no retained checkpoint".to_string(),
        })?;
        let restored: Vec<T> = snap
            .restore(cells.len())
            .map_err(|e| ExecError::Checkpoint { detail: format!("rollback {rollbacks}: {e}") })?;
        cells.copy_from_slice(&restored);
        Ok(())
    }
}

/// Split the remaining iterations into per-pass `p_eff` chunks for one
/// checkpoint segment (at most `interval` passes).
fn segment_passes(p: usize, remaining: usize, interval: usize) -> Vec<usize> {
    let mut seg = Vec::new();
    let mut rem = remaining;
    while rem > 0 && seg.len() < interval {
        let pe = p.min(rem);
        seg.push(pe);
        rem -= pe;
    }
    seg
}

/// Reference propagation of a 2D batch (per mesh, all stages per
/// iteration) — the expected side of the ABFT comparison.
fn reference_batch_2d<T: Element, K: StencilOp2D<T>>(
    stages: &[K],
    b: &Batch2D<T>,
    iters: usize,
) -> Batch2D<T> {
    let meshes: Vec<Mesh2D<T>> =
        (0..b.batch()).map(|i| reference::run_stages_2d(stages, &b.mesh(i), iters)).collect();
    Batch2D::from_meshes(&meshes)
}

/// 3D twin of [`reference_batch_2d`].
fn reference_batch_3d<T: Element, K: StencilOp3D<T>>(
    stages: &[K],
    b: &Batch3D<T>,
    iters: usize,
) -> Batch3D<T> {
    let meshes: Vec<Mesh3D<T>> =
        (0..b.batch()).map(|i| reference::run_stages_3d(stages, &b.mesh(i), iters)).collect();
    Batch3D::from_meshes(&meshes)
}

/// Run one checkpoint segment (no recovery) through the fault-aware 2D
/// chain runner.
#[allow(clippy::too_many_arguments)]
fn run_segment_2d<T: Element, K: Clone, E: Engine2D<T, K>>(
    engine: &E,
    stages: &[K],
    start: &Batch2D<T>,
    seg: &[usize],
    inj: &mut FaultInjector,
    budget: u64,
    rc: u64,
) -> Result<Batch2D<T>, ExecError> {
    let (nx, ny, b) = (start.nx(), start.ny(), start.batch());
    let stream_rows = b * ny;
    let mut cur = start.clone();
    for &p_eff in seg {
        let chain: Vec<K> = (0..p_eff).flat_map(|_| stages.iter().cloned()).collect();
        let mut dog = Watchdog::new(budget, stream_rows as u64);
        let rows = cur.as_slice().chunks(nx).map(|r| r.to_vec());
        let out_rows = run_chain_2d_resilient_engine(
            engine,
            &chain,
            nx,
            stream_rows,
            ny,
            rows,
            inj,
            &mut dog,
            rc,
        )?;
        let mut out = Batch2D::<T>::zeros(nx, ny, b);
        for (gy, row) in out_rows.into_iter().enumerate() {
            out.as_mut_slice()[gy * nx..(gy + 1) * nx].copy_from_slice(&row);
        }
        cur = out;
    }
    Ok(cur)
}

/// 3D twin of [`run_segment_2d`]: streams planes.
#[allow(clippy::too_many_arguments)]
fn run_segment_3d<T: Element, K: Clone, E: Engine3D<T, K>>(
    engine: &E,
    stages: &[K],
    start: &Batch3D<T>,
    seg: &[usize],
    inj: &mut FaultInjector,
    budget: u64,
    plane_cycles: u64,
) -> Result<Batch3D<T>, ExecError> {
    let (nx, ny, nz, b) = (start.nx(), start.ny(), start.nz(), start.batch());
    let plane = nx * ny;
    let stream_planes = b * nz;
    let mut cur = start.clone();
    for &p_eff in seg {
        let chain: Vec<K> = (0..p_eff).flat_map(|_| stages.iter().cloned()).collect();
        let mut dog = Watchdog::new(budget, stream_planes as u64);
        let planes = cur.as_slice().chunks(plane).map(|p| p.to_vec());
        let out_planes = run_chain_3d_resilient_engine(
            engine,
            &chain,
            nx,
            ny,
            stream_planes,
            nz,
            planes,
            inj,
            &mut dog,
            plane_cycles,
        )?;
        let mut out = Batch3D::<T>::zeros(nx, ny, nz, b);
        for (gz, pl) in out_planes.into_iter().enumerate() {
            out.as_mut_slice()[gz * plane..(gz + 1) * plane].copy_from_slice(&pl);
        }
        cur = out;
    }
    Ok(cur)
}

/// The checkpoint/ABFT/rollback loop over one 2D stream (a whole batch
/// for the single-stream executor; one mesh for the batch-parallel path).
#[allow(clippy::too_many_arguments)]
fn recover_core_2d<T: Element, K: StencilOp2D<T> + Clone, E: Engine2D<T, K>>(
    engine: &E,
    design: &StencilDesign,
    stages: &[K],
    input: &Batch2D<T>,
    niter: usize,
    inj: &mut FaultInjector,
    rc: u64,
    budget: u64,
    prm: &RecoverParams,
) -> Result<(Batch2D<T>, RecoveryStats), ExecError> {
    let (nx, ny, b) = (input.nx(), input.ny(), input.batch());
    let dims = [nx as u64, ny as u64];
    let mut stats = RecoveryStats::default();
    let mut ring = CheckpointRing::new(prm.ring_capacity);
    let mut verified = input.clone();
    let mut done = 0usize;
    let mut passes_done = 0u64;
    prm.take_checkpoint(&mut ring, &mut stats, &dims, b as u64, verified.as_slice(), 0, 0)?;

    while done < niter {
        let seg = segment_passes(design.p, niter - done, prm.interval);
        let seg_iters: usize = seg.iter().sum();
        let seg_replay_cycles = seg.len() as u64 * prm.pass_cycles;
        let expected = reference_batch_2d(stages, &verified, seg_iters);
        let expected_sig = AbftSignature::compute(expected.as_slice(), nx);

        let mut attempt = 0u32;
        let state = loop {
            let outcome = run_segment_2d(engine, stages, &verified, &seg, inj, budget, rc);
            match outcome {
                Ok(state) => {
                    stats.abft_checks += 1;
                    stats.abft_cycles += prm.abft_cost;
                    let sig = AbftSignature::compute(state.as_slice(), nx);
                    if sig.matches(&expected_sig, prm.abft_tol) {
                        break state;
                    }
                    stats.sdc_detected += 1;
                    if attempt >= prm.max_retries {
                        return Err(ExecError::RecoveryExhausted {
                            rollbacks: attempt,
                            detail: format!(
                                "ABFT signature mismatch persisted at iteration {done}"
                            ),
                        });
                    }
                }
                Err(ExecError::Deadlock(trip)) => {
                    if attempt >= prm.max_retries {
                        return Err(ExecError::Deadlock(trip));
                    }
                }
                Err(other) => return Err(other),
            }
            attempt += 1;
            stats.rollbacks += 1;
            stats.batches_replayed += seg.len() as u64;
            stats.recovery_cycles += seg_replay_cycles;
            prm.rollback(&ring, verified.as_mut_slice(), attempt)?;
        };
        verified = state;
        done += seg_iters;
        passes_done += seg.len() as u64;
        prm.take_checkpoint(
            &mut ring,
            &mut stats,
            &dims,
            b as u64,
            verified.as_slice(),
            done as u64,
            passes_done,
        )?;
    }
    Ok((verified, stats))
}

/// 3D twin of [`recover_core_2d`].
#[allow(clippy::too_many_arguments)]
fn recover_core_3d<T: Element, K: StencilOp3D<T> + Clone, E: Engine3D<T, K>>(
    engine: &E,
    design: &StencilDesign,
    stages: &[K],
    input: &Batch3D<T>,
    niter: usize,
    inj: &mut FaultInjector,
    plane_cycles: u64,
    budget: u64,
    prm: &RecoverParams,
) -> Result<(Batch3D<T>, RecoveryStats), ExecError> {
    let (nx, ny, nz, b) = (input.nx(), input.ny(), input.nz(), input.batch());
    let dims = [nx as u64, ny as u64, nz as u64];
    let unit = nx * ny;
    let mut stats = RecoveryStats::default();
    let mut ring = CheckpointRing::new(prm.ring_capacity);
    let mut verified = input.clone();
    let mut done = 0usize;
    let mut passes_done = 0u64;
    prm.take_checkpoint(&mut ring, &mut stats, &dims, b as u64, verified.as_slice(), 0, 0)?;

    while done < niter {
        let seg = segment_passes(design.p, niter - done, prm.interval);
        let seg_iters: usize = seg.iter().sum();
        let seg_replay_cycles = seg.len() as u64 * prm.pass_cycles;
        let expected = reference_batch_3d(stages, &verified, seg_iters);
        let expected_sig = AbftSignature::compute(expected.as_slice(), unit);

        let mut attempt = 0u32;
        let state = loop {
            let outcome =
                run_segment_3d(engine, stages, &verified, &seg, inj, budget, plane_cycles);
            match outcome {
                Ok(state) => {
                    stats.abft_checks += 1;
                    stats.abft_cycles += prm.abft_cost;
                    let sig = AbftSignature::compute(state.as_slice(), unit);
                    if sig.matches(&expected_sig, prm.abft_tol) {
                        break state;
                    }
                    stats.sdc_detected += 1;
                    if attempt >= prm.max_retries {
                        return Err(ExecError::RecoveryExhausted {
                            rollbacks: attempt,
                            detail: format!(
                                "ABFT signature mismatch persisted at iteration {done}"
                            ),
                        });
                    }
                }
                Err(ExecError::Deadlock(trip)) => {
                    if attempt >= prm.max_retries {
                        return Err(ExecError::Deadlock(trip));
                    }
                }
                Err(other) => return Err(other),
            }
            attempt += 1;
            stats.rollbacks += 1;
            stats.batches_replayed += seg.len() as u64;
            stats.recovery_cycles += seg_replay_cycles;
            prm.rollback(&ring, verified.as_mut_slice(), attempt)?;
        };
        verified = state;
        done += seg_iters;
        passes_done += seg.len() as u64;
        prm.take_checkpoint(
            &mut ring,
            &mut stats,
            &dims,
            b as u64,
            verified.as_slice(),
            done as u64,
            passes_done,
        )?;
    }
    Ok((verified, stats))
}

/// Fold recovery stats into the plan, the recorder and the report.
#[allow(clippy::too_many_arguments)]
fn finalize(
    dev: &FpgaDevice,
    design: &StencilDesign,
    mut plan: cycles::CyclePlan,
    niter: u64,
    mesh_bytes: u64,
    stats: &RecoveryStats,
    extra_axi_cycles: u64,
    bursts_recovered: u64,
    injected: u64,
    rec: &mut Recorder,
) -> SimReport {
    let overhead = stats.overhead_cycles();
    plan.total_cycles += overhead;
    plan.ext_write_bytes += stats.checkpoints_taken * mesh_bytes;
    plan.runtime_s = plan.total_cycles as f64 / design.freq_hz
        + plan.host_calls as f64 * dev.host_call_latency_s;
    rec.stall(StallClass::Checkpoint, overhead);
    rec.counter_add("fault.injected", injected);
    rec.counter_add("fault.axi.extra_cycles", extra_axi_cycles);
    rec.counter_add("fault.axi.recovered", bursts_recovered);
    rec.counter_add("fault.sdc_detected", stats.sdc_detected);
    rec.counter_add("recover.checkpoints", stats.checkpoints_taken);
    rec.counter_add("recover.checkpoint_cycles", stats.checkpoint_cycles);
    rec.counter_add("recover.abft_checks", stats.abft_checks);
    rec.counter_add("recover.abft_cycles", stats.abft_cycles);
    rec.counter_add("recover.rollbacks", stats.rollbacks);
    rec.counter_add("recover.batches_replayed", stats.batches_replayed);
    rec.counter_add("recover.recovery_cycles", stats.recovery_cycles);
    rec.counter_add("recover.mean_cycles_to_recovery", stats.mean_cycles_to_recovery());
    SimReport::from_plan(design, &plan, niter, power::fpga_power_w(dev, design))
}

/// Retry budget of a policy; `None` means the policy is [`RecoveryPolicy::Rerun`].
fn rollback_budget(policy: RecoveryPolicy) -> Option<u32> {
    match policy {
        RecoveryPolicy::Rerun => None,
        RecoveryPolicy::Rollback { max_retries } => Some(max_retries),
    }
}

/// Checkpoint/rollback variant of [`crate::resilient::simulate_2d_resilient`].
///
/// With [`RecoveryPolicy::Rerun`] this *is* the resilient executor (plus
/// an empty [`RecoveryStats`]): detections surface to the caller exactly
/// as before. With [`RecoveryPolicy::Rollback`] the run checkpoints every
/// [`RecoveryConfig::checkpoint_every`] passes, verifies each segment
/// with an ABFT signature, and rolls back/replays on watchdog or ABFT
/// detection — returning the recovered result plus the accounting.
#[allow(clippy::too_many_arguments)]
pub fn simulate_2d_recoverable<T: Element, K: StencilOp2D<T> + Clone>(
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch2D<T>,
    niter: usize,
    inj: &mut FaultInjector,
    policy: &RetryPolicy,
    rcfg: &RecoveryConfig,
    rec: &mut Recorder,
) -> Result<(Batch2D<T>, SimReport, RecoveryStats), ExecError> {
    simulate_2d_recoverable_core(
        &ScalarEngine,
        dev,
        design,
        stages_per_iter,
        input,
        niter,
        inj,
        policy,
        rcfg,
        rec,
    )
}

/// Engine-generic body of [`simulate_2d_recoverable`]. The segment replay
/// goes through the engine; the ABFT expected side always uses the scalar
/// golden reference, so a lane-parallel engine is verified against the
/// same signatures the scalar run produces.
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_2d_recoverable_core<T, K, E>(
    engine: &E,
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch2D<T>,
    niter: usize,
    inj: &mut FaultInjector,
    policy: &RetryPolicy,
    rcfg: &RecoveryConfig,
    rec: &mut Recorder,
) -> Result<(Batch2D<T>, SimReport, RecoveryStats), ExecError>
where
    T: Element,
    K: StencilOp2D<T> + Clone,
    E: Engine2D<T, K>,
{
    let Some(max_retries) = rollback_budget(rcfg.policy) else {
        let (out, rep) = simulate_2d_resilient_core(
            engine,
            dev,
            design,
            stages_per_iter,
            input,
            niter,
            inj,
            policy,
            rec,
        )?;
        return Ok((out, rep, RecoveryStats::default()));
    };
    if niter == 0 {
        return Err(ExecError::ShapeMismatch { detail: "niter must be positive".to_string() });
    }
    if stages_per_iter.len() != design.spec.stages {
        return Err(ExecError::ShapeMismatch {
            detail: format!(
                "design expects {} stages per iteration, got {}",
                design.spec.stages,
                stages_per_iter.len()
            ),
        });
    }
    let (nx, ny, b) = (input.nx(), input.ny(), input.batch());
    check_mode(design, b)?;
    let wl = Workload::D2 { nx, ny, batch: b };
    let fp = plan_with_faults(dev, design, &wl, niter as u64, inj, policy)?;
    let rc = cycles::design_row_cycles(dev, design, nx, nx);
    let stream_rows = b * ny;
    let budget = pass_budget(design, stream_rows as u64, rc);

    let mesh_bytes = (input.as_slice().len() * T::size_bytes()) as u64;
    let prm = RecoverParams::from_config(
        rcfg,
        max_retries,
        "",
        checkpoint_cost_cycles(dev, design, mesh_bytes),
        abft_check_cycles(input.as_slice().len() as u64, design.v),
        budget.saturating_sub(1),
    );
    let (out, stats) =
        recover_core_2d(engine, design, stages_per_iter, input, niter, inj, rc, budget, &prm)
            .map_err(|e| match e {
                ExecError::Deadlock(t) => {
                    ExecError::Deadlock(t.with_stalls(&rec.stall_breakdown()))
                }
                other => other,
            })?;
    let report = finalize(
        dev,
        design,
        fp.plan,
        niter as u64,
        mesh_bytes,
        &stats,
        fp.extra_axi_cycles,
        fp.bursts_recovered,
        inj.injected(),
        rec,
    );
    Ok((out, report, stats))
}

/// Checkpoint/rollback variant of [`crate::resilient::simulate_3d_resilient`] (see
/// [`simulate_2d_recoverable`]); the streamed unit is a plane.
#[allow(clippy::too_many_arguments)]
pub fn simulate_3d_recoverable<T: Element, K: StencilOp3D<T> + Clone>(
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch3D<T>,
    niter: usize,
    inj: &mut FaultInjector,
    policy: &RetryPolicy,
    rcfg: &RecoveryConfig,
    rec: &mut Recorder,
) -> Result<(Batch3D<T>, SimReport, RecoveryStats), ExecError> {
    simulate_3d_recoverable_core(
        &ScalarEngine,
        dev,
        design,
        stages_per_iter,
        input,
        niter,
        inj,
        policy,
        rcfg,
        rec,
    )
}

/// Engine-generic body of [`simulate_3d_recoverable`] (see
/// [`simulate_2d_recoverable_core`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_3d_recoverable_core<T, K, E>(
    engine: &E,
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch3D<T>,
    niter: usize,
    inj: &mut FaultInjector,
    policy: &RetryPolicy,
    rcfg: &RecoveryConfig,
    rec: &mut Recorder,
) -> Result<(Batch3D<T>, SimReport, RecoveryStats), ExecError>
where
    T: Element,
    K: StencilOp3D<T> + Clone,
    E: Engine3D<T, K>,
{
    let Some(max_retries) = rollback_budget(rcfg.policy) else {
        let (out, rep) = simulate_3d_resilient_core(
            engine,
            dev,
            design,
            stages_per_iter,
            input,
            niter,
            inj,
            policy,
            rec,
        )?;
        return Ok((out, rep, RecoveryStats::default()));
    };
    if niter == 0 {
        return Err(ExecError::ShapeMismatch { detail: "niter must be positive".to_string() });
    }
    if stages_per_iter.len() != design.spec.stages {
        return Err(ExecError::ShapeMismatch {
            detail: format!(
                "design expects {} stages per iteration, got {}",
                design.spec.stages,
                stages_per_iter.len()
            ),
        });
    }
    let (nx, ny, nz, b) = (input.nx(), input.ny(), input.nz(), input.batch());
    check_mode(design, b)?;
    let wl = Workload::D3 { nx, ny, nz, batch: b };
    let fp = plan_with_faults(dev, design, &wl, niter as u64, inj, policy)?;
    let plane_cycles = cycles::design_row_cycles(dev, design, nx, nx) * ny as u64;
    let stream_planes = b * nz;
    let budget = pass_budget(design, stream_planes as u64, plane_cycles);

    let mesh_bytes = (input.as_slice().len() * T::size_bytes()) as u64;
    let prm = RecoverParams::from_config(
        rcfg,
        max_retries,
        "",
        checkpoint_cost_cycles(dev, design, mesh_bytes),
        abft_check_cycles(input.as_slice().len() as u64, design.v),
        budget.saturating_sub(1),
    );
    let (out, stats) = recover_core_3d(
        engine,
        design,
        stages_per_iter,
        input,
        niter,
        inj,
        plane_cycles,
        budget,
        &prm,
    )
    .map_err(|e| match e {
        ExecError::Deadlock(t) => ExecError::Deadlock(t.with_stalls(&rec.stall_breakdown())),
        other => other,
    })?;
    let report = finalize(
        dev,
        design,
        fp.plan,
        niter as u64,
        mesh_bytes,
        &stats,
        fp.extra_axi_cycles,
        fp.bursts_recovered,
        inj.injected(),
        rec,
    );
    Ok((out, report, stats))
}

/// SplitMix64 finalizer used to derive independent per-mesh fault seeds.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-mesh fault plan for the batch-parallel paths: same kind, rate and
/// injection budget, seed derived from the base seed and the mesh index.
pub fn derive_mesh_plan(base: &FaultPlan, mesh_index: usize) -> FaultPlan {
    FaultPlan {
        seed: mix(base.seed ^ (mesh_index as u64).wrapping_mul(0xa076_1d64_78bd_642f)),
        ..*base
    }
}

/// Checkpoint/rollback variant of
/// [`crate::exec_batch::simulate_batch_2d_parallel`]: each batch member
/// runs its own checkpoint/ABFT/rollback loop as one work item for
/// [`sf_par::par_map`], with a fault injector seeded from `base_plan` and
/// the mesh index. AXI faults are applied once at the batched plan level
/// (they model the shared memory interface, not a member stream).
///
/// Output, stats and report are byte-identical for every `jobs` value.
#[allow(clippy::too_many_arguments)]
pub fn simulate_batch_2d_recoverable<T: Element, K: StencilOp2D<T> + Clone>(
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch2D<T>,
    niter: usize,
    base_plan: &FaultPlan,
    policy: &RetryPolicy,
    rcfg: &RecoveryConfig,
    jobs: usize,
    rec: &mut Recorder,
) -> Result<(Batch2D<T>, SimReport, RecoveryStats), ExecError> {
    simulate_batch_2d_recoverable_core(
        &ScalarEngine,
        dev,
        design,
        stages_per_iter,
        input,
        niter,
        base_plan,
        policy,
        rcfg,
        jobs,
        rec,
    )
}

/// Engine-generic body of [`simulate_batch_2d_recoverable`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_batch_2d_recoverable_core<T, K, E>(
    engine: &E,
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch2D<T>,
    niter: usize,
    base_plan: &FaultPlan,
    policy: &RetryPolicy,
    rcfg: &RecoveryConfig,
    jobs: usize,
    rec: &mut Recorder,
) -> Result<(Batch2D<T>, SimReport, RecoveryStats), ExecError>
where
    T: Element,
    K: StencilOp2D<T> + Clone + Sync,
    E: Engine2D<T, K> + Sync,
{
    let Some(max_retries) = rollback_budget(rcfg.policy) else {
        return Err(ExecError::Unsupported {
            detail: "batch-parallel recovery requires the rollback policy".to_string(),
        });
    };
    if niter == 0 {
        return Err(ExecError::ShapeMismatch { detail: "niter must be positive".to_string() });
    }
    if stages_per_iter.len() != design.spec.stages {
        return Err(ExecError::ShapeMismatch {
            detail: format!(
                "design expects {} stages per iteration, got {}",
                design.spec.stages,
                stages_per_iter.len()
            ),
        });
    }
    let (nx, ny, b) = (input.nx(), input.ny(), input.batch());
    check_mode(design, b)?;
    let wl = Workload::D2 { nx, ny, batch: b };
    let mut axi_inj = FaultInjector::new(*base_plan);
    let fp = plan_with_faults(dev, design, &wl, niter as u64, &mut axi_inj, policy)?;
    let rc = cycles::design_row_cycles(dev, design, nx, nx);
    let budget = pass_budget(design, ny as u64, rc);
    let mesh_cells = nx * ny;
    let mesh_bytes = (mesh_cells * T::size_bytes()) as u64;

    let meshes: Vec<Mesh2D<T>> = (0..b).map(|i| input.mesh(i)).collect();
    let results = sf_par::par_map(jobs, meshes, |i, mesh| {
        let mut inj = FaultInjector::new(derive_mesh_plan(base_plan, i));
        let prm = RecoverParams::from_config(
            rcfg,
            max_retries,
            &format!("mesh{i}_"),
            checkpoint_cost_cycles(dev, design, mesh_bytes),
            abft_check_cycles(mesh_cells as u64, design.v),
            budget.saturating_sub(1),
        );
        let single = Batch2D::from_meshes(std::slice::from_ref(&mesh));
        let r = recover_core_2d(
            engine,
            design,
            stages_per_iter,
            &single,
            niter,
            &mut inj,
            rc,
            budget,
            &prm,
        );
        (r, inj.injected())
    });

    let mut out = Batch2D::<T>::zeros(nx, ny, b);
    let mut stats = RecoveryStats::default();
    let mut injected = axi_inj.injected();
    for (i, (r, inj_n)) in results.into_iter().enumerate() {
        let (mesh_out, mesh_stats) = r.map_err(|e| match e {
            ExecError::Deadlock(t) => ExecError::Deadlock(t.with_stalls(&rec.stall_breakdown())),
            other => other,
        })?;
        out.as_mut_slice()[i * mesh_cells..(i + 1) * mesh_cells]
            .copy_from_slice(mesh_out.as_slice());
        stats.merge(&mesh_stats);
        injected += inj_n;
    }
    let report = finalize(
        dev,
        design,
        fp.plan,
        niter as u64,
        mesh_bytes,
        &stats,
        fp.extra_axi_cycles,
        fp.bursts_recovered,
        injected,
        rec,
    );
    Ok((out, report, stats))
}

/// 3D twin of [`simulate_batch_2d_recoverable`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_batch_3d_recoverable<T: Element, K: StencilOp3D<T> + Clone>(
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch3D<T>,
    niter: usize,
    base_plan: &FaultPlan,
    policy: &RetryPolicy,
    rcfg: &RecoveryConfig,
    jobs: usize,
    rec: &mut Recorder,
) -> Result<(Batch3D<T>, SimReport, RecoveryStats), ExecError> {
    simulate_batch_3d_recoverable_core(
        &ScalarEngine,
        dev,
        design,
        stages_per_iter,
        input,
        niter,
        base_plan,
        policy,
        rcfg,
        jobs,
        rec,
    )
}

/// Engine-generic body of [`simulate_batch_3d_recoverable`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_batch_3d_recoverable_core<T, K, E>(
    engine: &E,
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch3D<T>,
    niter: usize,
    base_plan: &FaultPlan,
    policy: &RetryPolicy,
    rcfg: &RecoveryConfig,
    jobs: usize,
    rec: &mut Recorder,
) -> Result<(Batch3D<T>, SimReport, RecoveryStats), ExecError>
where
    T: Element,
    K: StencilOp3D<T> + Clone + Sync,
    E: Engine3D<T, K> + Sync,
{
    let Some(max_retries) = rollback_budget(rcfg.policy) else {
        return Err(ExecError::Unsupported {
            detail: "batch-parallel recovery requires the rollback policy".to_string(),
        });
    };
    if niter == 0 {
        return Err(ExecError::ShapeMismatch { detail: "niter must be positive".to_string() });
    }
    if stages_per_iter.len() != design.spec.stages {
        return Err(ExecError::ShapeMismatch {
            detail: format!(
                "design expects {} stages per iteration, got {}",
                design.spec.stages,
                stages_per_iter.len()
            ),
        });
    }
    let (nx, ny, nz, b) = (input.nx(), input.ny(), input.nz(), input.batch());
    check_mode(design, b)?;
    let wl = Workload::D3 { nx, ny, nz, batch: b };
    let mut axi_inj = FaultInjector::new(*base_plan);
    let fp = plan_with_faults(dev, design, &wl, niter as u64, &mut axi_inj, policy)?;
    let plane_cycles = cycles::design_row_cycles(dev, design, nx, nx) * ny as u64;
    let budget = pass_budget(design, nz as u64, plane_cycles);
    let mesh_cells = nx * ny * nz;
    let mesh_bytes = (mesh_cells * T::size_bytes()) as u64;

    let meshes: Vec<Mesh3D<T>> = (0..b).map(|i| input.mesh(i)).collect();
    let results = sf_par::par_map(jobs, meshes, |i, mesh| {
        let mut inj = FaultInjector::new(derive_mesh_plan(base_plan, i));
        let prm = RecoverParams::from_config(
            rcfg,
            max_retries,
            &format!("mesh{i}_"),
            checkpoint_cost_cycles(dev, design, mesh_bytes),
            abft_check_cycles(mesh_cells as u64, design.v),
            budget.saturating_sub(1),
        );
        let single = Batch3D::from_meshes(std::slice::from_ref(&mesh));
        let r = recover_core_3d(
            engine,
            design,
            stages_per_iter,
            &single,
            niter,
            &mut inj,
            plane_cycles,
            budget,
            &prm,
        );
        (r, inj.injected())
    });

    let mut out = Batch3D::<T>::zeros(nx, ny, nz, b);
    let mut stats = RecoveryStats::default();
    let mut injected = axi_inj.injected();
    for (i, (r, inj_n)) in results.into_iter().enumerate() {
        let (mesh_out, mesh_stats) = r.map_err(|e| match e {
            ExecError::Deadlock(t) => ExecError::Deadlock(t.with_stalls(&rec.stall_breakdown())),
            other => other,
        })?;
        out.as_mut_slice()[i * mesh_cells..(i + 1) * mesh_cells]
            .copy_from_slice(mesh_out.as_slice());
        stats.merge(&mesh_stats);
        injected += inj_n;
    }
    let report = finalize(
        dev,
        design,
        fp.plan,
        niter as u64,
        mesh_bytes,
        &stats,
        fp.extra_axi_cycles,
        fp.bursts_recovered,
        injected,
        rec,
    );
    Ok((out, report, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{synthesize, ExecMode, MemKind};
    use sf_faults::FaultKind;
    use sf_kernels::{reference, Jacobi3D, Poisson2D, StencilSpec};
    use sf_mesh::norms;

    fn dev() -> FpgaDevice {
        FpgaDevice::u280()
    }

    fn poisson_setup() -> (StencilDesign, Batch2D<f32>, Mesh2D<f32>) {
        let m = Mesh2D::<f32>::random(40, 24, 7, -1.0, 1.0);
        let wl = Workload::D2 { nx: 40, ny: 24, batch: 1 };
        let ds = synthesize(
            &dev(),
            &StencilSpec::poisson(),
            8,
            4,
            ExecMode::Baseline,
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let batch = Batch2D::from_meshes(std::slice::from_ref(&m));
        (ds, batch, m)
    }

    fn rollback_cfg(every: usize) -> RecoveryConfig {
        RecoveryConfig {
            policy: RecoveryPolicy::Rollback { max_retries: 3 },
            checkpoint_every: every,
            ..RecoveryConfig::default()
        }
    }

    #[test]
    fn clean_run_matches_reference_and_charges_overhead() {
        let (ds, batch, m) = poisson_setup();
        let mut inj = FaultInjector::disabled();
        let mut rec = Recorder::enabled(300.0);
        let (out, rep, stats) = simulate_2d_recoverable(
            &dev(),
            &ds,
            &[Poisson2D],
            &batch,
            12,
            &mut inj,
            &RetryPolicy::default(),
            &rollback_cfg(2),
            &mut rec,
        )
        .unwrap();
        let expect = reference::run_2d(&Poisson2D, &m, 12);
        assert!(norms::bit_equal(out.mesh(0).as_slice(), expect.as_slice()));
        assert_eq!(stats.rollbacks, 0);
        assert_eq!(stats.sdc_detected, 0);
        // 12 iters at p=4 → 3 passes → 2 segments; initial + 2 checkpoints.
        assert_eq!(stats.checkpoints_taken, 3);
        assert_eq!(stats.abft_checks, 2);
        assert!(stats.checkpoint_cycles > 0 && stats.abft_cycles > 0);
        assert_eq!(rec.stall_breakdown().checkpoint_cycles, stats.overhead_cycles());
        assert!(rep.total_cycles > 0);
    }

    #[test]
    fn bitflip_is_detected_by_abft_and_rolled_back() {
        let (ds, batch, m) = poisson_setup();
        let mut inj = FaultInjector::new(FaultPlan::single(42, FaultKind::BitFlip, 1_000_000));
        let mut rec = Recorder::enabled(300.0);
        let (out, _, stats) = simulate_2d_recoverable(
            &dev(),
            &ds,
            &[Poisson2D],
            &batch,
            12,
            &mut inj,
            &RetryPolicy::default(),
            &rollback_cfg(4),
            &mut rec,
        )
        .unwrap();
        assert_eq!(inj.injected(), 1);
        assert_eq!(stats.sdc_detected, 1, "ABFT must catch the silent corruption");
        assert_eq!(stats.rollbacks, 1);
        assert!(stats.recovery_cycles > 0);
        assert_eq!(stats.mean_cycles_to_recovery(), stats.recovery_cycles);
        let expect = reference::run_2d(&Poisson2D, &m, 12);
        assert!(
            norms::bit_equal(out.mesh(0).as_slice(), expect.as_slice()),
            "post-rollback result must be bit-exact with the reference"
        );
        assert_eq!(rec.counter("fault.sdc_detected"), 1);
        assert_eq!(rec.counter("recover.rollbacks"), 1);
    }

    #[test]
    fn recovery_counters_reach_the_flat_metrics_json() {
        // The ISSUE acceptance criterion: recovery overhead and
        // mean-cycles-to-recovery must be visible in the flat-metrics JSON
        // a recoverable run's recorder produces.
        let (ds, batch, _) = poisson_setup();
        let mut inj = FaultInjector::new(FaultPlan::single(42, FaultKind::BitFlip, 1_000_000));
        let mut rec = Recorder::enabled(300.0);
        let (_, _, stats) = simulate_2d_recoverable(
            &dev(),
            &ds,
            &[Poisson2D],
            &batch,
            12,
            &mut inj,
            &RetryPolicy::default(),
            &rollback_cfg(4),
            &mut rec,
        )
        .unwrap();
        let doc = sf_telemetry::metrics::metrics(&rec);
        let counters = doc.get("counters").expect("counters block");
        let counter = |k: &str| counters.get(k).and_then(serde::Value::as_u64);
        assert_eq!(counter("recover.checkpoints"), Some(stats.checkpoints_taken));
        assert_eq!(counter("recover.rollbacks"), Some(stats.rollbacks));
        assert_eq!(counter("recover.recovery_cycles"), Some(stats.recovery_cycles));
        assert_eq!(
            counter("recover.mean_cycles_to_recovery"),
            Some(stats.mean_cycles_to_recovery())
        );
        assert_eq!(counter("fault.sdc_detected"), Some(stats.sdc_detected));
        let stalls = doc.get("stalls").expect("stalls block");
        assert_eq!(
            stalls.get("checkpoint_cycles").and_then(serde::Value::as_u64),
            Some(stats.overhead_cycles()),
            "checkpoint overhead must be attributed as its own stall class"
        );
    }

    #[test]
    fn fifo_drop_deadlock_is_rolled_back() {
        let (ds, batch, m) = poisson_setup();
        let mut inj = FaultInjector::new(FaultPlan::single(7, FaultKind::FifoDrop, 1_000_000));
        let mut rec = Recorder::disabled();
        let (out, _, stats) = simulate_2d_recoverable(
            &dev(),
            &ds,
            &[Poisson2D],
            &batch,
            12,
            &mut inj,
            &RetryPolicy::default(),
            &rollback_cfg(4),
            &mut rec,
        )
        .unwrap();
        assert_eq!(stats.rollbacks, 1, "watchdog trip must trigger a rollback, not an error");
        assert_eq!(stats.sdc_detected, 0);
        let expect = reference::run_2d(&Poisson2D, &m, 12);
        assert!(norms::bit_equal(out.mesh(0).as_slice(), expect.as_slice()));
    }

    #[test]
    fn rerun_policy_delegates_to_resilient_behavior() {
        let (ds, batch, _) = poisson_setup();
        let mut inj = FaultInjector::new(FaultPlan::single(7, FaultKind::FifoDrop, 1_000_000));
        let mut rec = Recorder::disabled();
        let cfg = RecoveryConfig { policy: RecoveryPolicy::Rerun, ..RecoveryConfig::default() };
        let r = simulate_2d_recoverable(
            &dev(),
            &ds,
            &[Poisson2D],
            &batch,
            12,
            &mut inj,
            &RetryPolicy::default(),
            &cfg,
            &mut rec,
        );
        assert!(matches!(r, Err(ExecError::Deadlock(_))), "{r:?}");
    }

    #[test]
    fn recoverable_3d_rolls_back_bitflip() {
        let m = Mesh3D::<f32>::random(12, 10, 8, 5, -1.0, 1.0);
        let wl = Workload::D3 { nx: 12, ny: 10, nz: 8, batch: 1 };
        let ds =
            synthesize(&dev(), &StencilSpec::jacobi(), 8, 3, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let batch = Batch3D::from_meshes(std::slice::from_ref(&m));
        let k = Jacobi3D::smoothing();
        let mut inj = FaultInjector::new(FaultPlan::single(21, FaultKind::BitFlip, 1_000_000));
        let mut rec = Recorder::disabled();
        let (out, _, stats) = simulate_3d_recoverable(
            &dev(),
            &ds,
            &[k],
            &batch,
            6,
            &mut inj,
            &RetryPolicy::default(),
            &rollback_cfg(1),
            &mut rec,
        )
        .unwrap();
        assert_eq!(stats.sdc_detected, 1);
        assert_eq!(stats.rollbacks, 1);
        let expect = reference::run_3d(&k, &m, 6);
        assert!(norms::bit_equal(out.mesh(0).as_slice(), expect.as_slice()));
    }

    #[test]
    fn spill_writes_versioned_checkpoints() {
        let dir = std::env::temp_dir().join("sf-fpga-recovery-spill-test");
        let _ = std::fs::create_dir_all(&dir);
        let (ds, batch, _) = poisson_setup();
        let mut inj = FaultInjector::disabled();
        let mut rec = Recorder::disabled();
        let cfg = RecoveryConfig { spill_dir: Some(dir.clone()), ..rollback_cfg(2) };
        let (_, _, _stats) = simulate_2d_recoverable(
            &dev(),
            &ds,
            &[Poisson2D],
            &batch,
            12,
            &mut inj,
            &RetryPolicy::default(),
            &cfg,
            &mut rec,
        )
        .unwrap();
        let first = dir.join("ckpt_000000.sfckpt");
        let snap = spill::read_file(&first).expect("initial spilled checkpoint must decode");
        assert_eq!(snap.dims, vec![40, 24]);
        assert_eq!(snap.iters_done, 0);
        let last = dir.join("ckpt_000003.sfckpt");
        let snap = spill::read_file(&last).expect("final spilled checkpoint must decode");
        assert_eq!(snap.iters_done, 12);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_parallel_recovery_is_jobs_invariant() {
        let wl = Workload::D2 { nx: 24, ny: 12, batch: 3 };
        let ds = synthesize(
            &dev(),
            &StencilSpec::poisson(),
            8,
            2,
            ExecMode::Batched { b: 3 },
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let batch = Batch2D::<f32>::random(24, 12, 3, 11, -1.0, 1.0);
        let plan = FaultPlan::single(99, FaultKind::BitFlip, 200_000);
        let run = |jobs: usize| {
            let mut rec = Recorder::disabled();
            simulate_batch_2d_recoverable(
                &dev(),
                &ds,
                &[Poisson2D],
                &batch,
                8,
                &plan,
                &RetryPolicy::default(),
                &rollback_cfg(2),
                jobs,
                &mut rec,
            )
            .unwrap()
        };
        let (o1, r1, s1) = run(1);
        let (o4, r4, s4) = run(4);
        assert!(norms::bit_equal(o1.as_slice(), o4.as_slice()));
        assert_eq!(s1, s4);
        assert_eq!(r1.total_cycles, r4.total_cycles);
        // every mesh result is bit-exact vs its own reference solve
        for i in 0..3 {
            let expect = reference::run_2d(&Poisson2D, &batch.mesh(i), 8);
            assert!(norms::bit_equal(o1.mesh(i).as_slice(), expect.as_slice()), "mesh {i}");
        }
    }
}
