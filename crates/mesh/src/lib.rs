#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sf-mesh — structured meshes for explicit stencil solvers
//!
//! This crate provides the data substrate shared by the golden reference
//! executors (`sf-kernels`), the FPGA dataflow simulator (`sf-fpga`) and
//! the GPU performance model (`sf-gpu`):
//!
//! * [`Mesh2D`] / [`Mesh3D`] — row-major rectangular meshes over scalar
//!   (`f32`) or small-vector ([`VecN`]) elements. The fastest-varying
//!   dimension is `x` (the paper's `m`), matching the streaming order of the
//!   FPGA window buffers.
//! * [`Batch2D`] / [`Batch3D`] — batches of same-shaped meshes stored
//!   contiguously, stacked along the slowest dimension exactly as the paper's
//!   batching optimization stacks them (§IV-B).
//! * [`tile`] — overlapped spatial-block (tile) decompositions with halo
//!   regions, 512-bit alignment and valid-region bookkeeping (§IV-A).
//! * [`norms`] — error norms used to validate simulator output against the
//!   golden references.
//!
//! Everything here is deterministic and `Send + Sync`; the mesh types are
//! plain contiguous buffers so that both Rayon parallel executors and the
//! cycle-level streaming simulator can walk them cheaply.

pub mod batch;
pub mod element;
pub mod mesh2d;
pub mod mesh3d;
pub mod norms;
pub mod stats;
pub mod tile;

pub use batch::{Batch2D, Batch3D};
pub use element::{Element, VecN};
pub use mesh2d::Mesh2D;
pub use mesh3d::Mesh3D;
pub use tile::{Tile1D, Tile2D, TileGrid1D, TileGrid2D};

/// Number of `f32` lanes in one 512-bit AXI word — the alignment unit used
/// throughout the FPGA designs (§IV-A: "we must maintain a 512 bit alignment
/// in read/write transactions").
pub const AXI_F32_LANES: usize = 16;

/// Round `n` up to a multiple of `to` (`to > 0`).
#[inline]
pub fn round_up(n: usize, to: usize) -> usize {
    debug_assert!(to > 0);
    n.div_ceil(to) * to
}

/// Round `n` down to a multiple of `to` (`to > 0`).
#[inline]
pub fn round_down(n: usize, to: usize) -> usize {
    debug_assert!(to > 0);
    (n / to) * to
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_up_basic() {
        assert_eq!(round_up(0, 16), 0);
        assert_eq!(round_up(1, 16), 16);
        assert_eq!(round_up(16, 16), 16);
        assert_eq!(round_up(17, 16), 32);
        assert_eq!(round_up(100, 8), 104);
    }

    #[test]
    fn round_down_basic() {
        assert_eq!(round_down(0, 16), 0);
        assert_eq!(round_down(15, 16), 0);
        assert_eq!(round_down(16, 16), 16);
        assert_eq!(round_down(31, 16), 16);
    }
}
