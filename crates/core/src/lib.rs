#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sf-core — the unified stencil-to-FPGA design workflow
//!
//! This crate is the public face of the reproduction: the paper's
//! "implementation template and accompanying step-wise optimization strategy
//! for conversion of structured-mesh, explicit, iterative stencil
//! applications to FPGA accelerators", wrapped as a library a downstream
//! user can drive end to end:
//!
//! ```
//! use sf_core::prelude::*;
//!
//! // 1. describe the platform and the application
//! let wf = Workflow::u280_vs_v100();
//! let spec = StencilSpec::poisson();
//! let wl = Workload::D2 { nx: 300, ny: 300, batch: 1 };
//!
//! // 2. feasibility: V_max, p_dsp, p_mem, amenability (paper §III-A, §VI)
//! let feas = wf.feasibility(&spec, &wl).unwrap();
//! assert!(feas.baseline_feasible);
//!
//! // 3. design-space exploration with the predictive model (§III–§IV)
//! let best = wf.best_design(&spec, &wl, 1000).unwrap();
//!
//! // 4. "synthesize" + estimate on the simulated U280, compare with the V100
//! let cmp = wf.compare(&spec, &wl, 1000).unwrap();
//! println!("FPGA {:.2} ms vs GPU {:.2} ms (speedup {:.2}x, energy {:.2}x)",
//!          cmp.fpga.runtime_s * 1e3, cmp.gpu.runtime_s * 1e3,
//!          cmp.speedup(), cmp.energy_ratio());
//! # let _ = best;
//! ```
//!
//! Numeric execution (bit-exact vs the golden references) is available
//! through the typed solvers in [`solvers`]: [`solvers::PoissonSolver`],
//! [`solvers::JacobiSolver`], [`solvers::RtmSolver`].
//!
//! Fault-tolerant execution is available at two levels: the resilient
//! executors (`sf_fpga::resilient`, typed detection + clean rerun) and the
//! checkpoint/rollback recovery layer (`sf_fpga::recovery`, ABFT
//! silent-corruption detection + in-run rollback); the recovery
//! configuration types ([`prelude::RecoveryConfig`],
//! [`prelude::RecoveryPolicy`], [`prelude::RecoveryStats`]) are part of
//! the prelude.

pub mod compare;
pub mod error;
pub mod profile;
pub mod resilience;
pub mod solvers;
pub mod workflow;

pub use compare::Comparison;
pub use error::SfError;
pub use profile::ProfileResult;
pub use resilience::{synthesize_degraded, Degradation, DegradedDesign};
pub use workflow::{Workflow, WorkflowError};

/// Everything a typical user needs.
pub mod prelude {
    pub use crate::compare::Comparison;
    pub use crate::error::SfError;
    pub use crate::profile::ProfileResult;
    pub use crate::resilience::{synthesize_degraded, Degradation, DegradedDesign};
    pub use crate::solvers::{JacobiSolver, PoissonSolver, RtmSolver};
    pub use crate::workflow::{Workflow, WorkflowError};
    pub use sf_check::{check, CheckError, CheckReport, Design, Diagnostic, RuleId, Severity};
    pub use sf_fpga::design::{ExecMode, MemKind, StencilDesign, Workload};
    pub use sf_fpga::{FpgaDevice, SimReport};
    pub use sf_fpga::{RecoveryConfig, RecoveryPolicy, RecoveryStats};
    pub use sf_gpu::GpuDevice;
    pub use sf_kernels::ops::NumberFormat;
    pub use sf_kernels::{AppId, Jacobi3D, Poisson2D, RtmParams, StencilSpec};
    pub use sf_mesh::{Batch2D, Batch3D, Mesh2D, Mesh3D, VecN};
    pub use sf_model::{DseOptions, FeasibilityReport, PredictionLevel};
}
