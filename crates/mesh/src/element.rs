//! Mesh element types: scalar `f32` and fixed-width float vectors.
//!
//! The paper's applications use scalar single-precision elements
//! (Poisson, Jacobi) and 6-component vector elements (RTM's `Y`, `T` and
//! `K1..K4` arrays: "3D floating-point (SP) data arrays defined on the mesh
//! consisting of vector elements of size 6"). [`Element`] abstracts over both
//! so the window buffers, executors and byte accounting are generic.

/// A mesh element: a fixed number of `f32` lanes.
///
/// Implementors are plain-old-data; `size_bytes` is what the memory models
/// charge per element (the paper's `sizeof(t)` / `k`).
pub trait Element:
    Copy + Clone + Default + PartialEq + core::fmt::Debug + Send + Sync + 'static
{
    /// Number of `f32` components in the element.
    const LANES: usize;

    /// Element with every lane set to `v`.
    fn splat(v: f32) -> Self;

    /// Read lane `c` (`c < Self::LANES`).
    fn lane(&self, c: usize) -> f32;

    /// Write lane `c` (`c < Self::LANES`).
    fn set_lane(&mut self, c: usize, v: f32);

    /// Size of the element in bytes (the paper's `k = sizeof(t)`).
    #[inline]
    fn size_bytes() -> usize {
        Self::LANES * core::mem::size_of::<f32>()
    }

    /// Lane-wise `a + b`.
    fn add(self, other: Self) -> Self;

    /// Lane-wise `a * s` for scalar `s`.
    fn scale(self, s: f32) -> Self;

    /// Maximum absolute lane value (used by norms).
    fn max_abs(&self) -> f32;

    /// `true` if every lane is finite.
    fn is_finite(&self) -> bool;
}

impl Element for f32 {
    const LANES: usize = 1;

    #[inline]
    fn splat(v: f32) -> Self {
        v
    }

    #[inline]
    fn lane(&self, c: usize) -> f32 {
        debug_assert_eq!(c, 0);
        *self
    }

    #[inline]
    fn set_lane(&mut self, c: usize, v: f32) {
        debug_assert_eq!(c, 0);
        *self = v;
    }

    #[inline]
    fn add(self, other: Self) -> Self {
        self + other
    }

    #[inline]
    fn scale(self, s: f32) -> Self {
        self * s
    }

    #[inline]
    fn max_abs(&self) -> f32 {
        self.abs()
    }

    #[inline]
    fn is_finite(&self) -> bool {
        f32::is_finite(*self)
    }
}

/// A fixed-width vector element of `N` `f32` lanes.
///
/// RTM uses `VecN<6>` for its state arrays. The type is `repr(transparent)`
/// over `[f32; N]` so a `Mesh3D<VecN<6>>` is one contiguous `f32` buffer.
#[derive(Copy, Clone, Debug, PartialEq)]
#[repr(transparent)]
pub struct VecN<const N: usize>(pub [f32; N]);

impl<const N: usize> Default for VecN<N> {
    #[inline]
    fn default() -> Self {
        VecN([0.0; N])
    }
}

impl<const N: usize> VecN<N> {
    /// Construct from an array of lanes.
    #[inline]
    pub const fn new(lanes: [f32; N]) -> Self {
        VecN(lanes)
    }

    /// Lane-wise fused combination `self + other * s` — the RK4 update
    /// primitive (`T = Y + K/2`, `Y = Y + K1/6 + …`).
    #[inline]
    pub fn axpy(self, other: Self, s: f32) -> Self {
        let mut out = self;
        for c in 0..N {
            out.0[c] += other.0[c] * s;
        }
        out
    }
}

impl<const N: usize> Element for VecN<N> {
    const LANES: usize = N;

    #[inline]
    fn splat(v: f32) -> Self {
        VecN([v; N])
    }

    #[inline]
    fn lane(&self, c: usize) -> f32 {
        self.0[c]
    }

    #[inline]
    fn set_lane(&mut self, c: usize, v: f32) {
        self.0[c] = v;
    }

    #[inline]
    fn add(self, other: Self) -> Self {
        let mut out = self;
        for c in 0..N {
            out.0[c] += other.0[c];
        }
        out
    }

    #[inline]
    fn scale(self, s: f32) -> Self {
        let mut out = self;
        for c in 0..N {
            out.0[c] *= s;
        }
        out
    }

    #[inline]
    fn max_abs(&self) -> f32 {
        self.0.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    #[inline]
    fn is_finite(&self) -> bool {
        self.0.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_element_basics() {
        let mut x = f32::splat(2.5);
        assert_eq!(f32::LANES, 1);
        assert_eq!(f32::size_bytes(), 4);
        assert_eq!(x.lane(0), 2.5);
        x.set_lane(0, -3.0);
        assert_eq!(x, -3.0);
        assert_eq!(x.max_abs(), 3.0);
        assert_eq!(x.add(1.0), -2.0);
        assert_eq!(x.scale(-1.0), 3.0);
        assert!(x.is_finite());
        assert!(!f32::NAN.is_finite());
    }

    #[test]
    fn vecn_element_basics() {
        let mut v = VecN::<6>::splat(1.0);
        assert_eq!(VecN::<6>::LANES, 6);
        assert_eq!(VecN::<6>::size_bytes(), 24);
        v.set_lane(3, -9.0);
        assert_eq!(v.lane(3), -9.0);
        assert_eq!(v.max_abs(), 9.0);
        let w = v.add(VecN::splat(1.0));
        assert_eq!(w.lane(0), 2.0);
        assert_eq!(w.lane(3), -8.0);
        let s = v.scale(2.0);
        assert_eq!(s.lane(3), -18.0);
    }

    #[test]
    fn vecn_axpy_is_rk4_primitive() {
        let y = VecN::new([1.0, 2.0, 3.0]);
        let k = VecN::new([2.0, 4.0, 6.0]);
        let t = y.axpy(k, 0.5);
        assert_eq!(t, VecN::new([2.0, 4.0, 6.0]));
    }

    #[test]
    fn vecn_default_is_zero() {
        let z = VecN::<4>::default();
        assert_eq!(z.max_abs(), 0.0);
        assert!(z.is_finite());
    }

    #[test]
    fn vecn_is_finite_detects_nan_in_any_lane() {
        let mut v = VecN::<3>::splat(0.0);
        assert!(v.is_finite());
        v.set_lane(2, f32::INFINITY);
        assert!(!v.is_finite());
    }
}
