//! Window buffers and streaming stage processors — the behavioral heart of
//! the dataflow simulator.
//!
//! An HLS stencil pipeline streams the mesh in row-major order and keeps the
//! last `D` rows (2D) or planes (3D) in on-chip cyclic buffers so every
//! neighborhood read is served on-chip (Fig. 1 of the paper, "window
//! buffers"). [`StageProcessor2D`]/[`StageProcessor3D`] implement exactly
//! that: a ring of `2r+1` rows/planes; a stage emits output row `y` once
//! input row `y+r` has arrived. Chaining `p × stages` processors reproduces
//! the unrolled iterative pipeline of Fig. 2.
//!
//! The processors are *seam-aware* for batched execution: the stream may
//! carry `B` stacked meshes, and a cell is only interior with respect to its
//! own mesh (`mesh_extent`-periodic in the streaming dimension), so stencils
//! never read across a batch seam.
//!
//! The chain runners are generic over an **execution engine**
//! ([`Engine2D`]/[`Engine3D`]): a factory for the per-stage processors. The
//! [`ScalarEngine`] builds the cell-at-a-time [`StageProcessor2D`]/
//! [`StageProcessor3D`]; the vectorized fast path (`crate::fast`) plugs in
//! lane-parallel processors through the same traits, so the streaming
//! schedule, telemetry hooks and drain logic are shared — and therefore
//! byte-identical — across both engines.

use sf_kernels::{StencilOp2D, StencilOp3D};
use sf_mesh::Element;
use sf_telemetry::{Recorder, TrackId};

/// Fixed-capacity ring of stream units (rows or planes), addressable by
/// absolute unit index.
#[derive(Debug)]
pub struct RingBuffer<T> {
    slots: Vec<Vec<T>>,
    capacity: usize,
    /// Number of units pushed so far; unit `i` lives in slot `i % capacity`
    /// while `i ≥ pushed − capacity`.
    pushed: usize,
}

impl<T> RingBuffer<T> {
    /// Create a ring holding up to `capacity` units.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        RingBuffer { slots: Vec::with_capacity(capacity), capacity, pushed: 0 }
    }

    /// Push the next unit (evicting the oldest once full).
    pub fn push(&mut self, unit: Vec<T>) {
        if self.slots.len() < self.capacity {
            self.slots.push(unit);
        } else {
            self.slots[self.pushed % self.capacity] = unit;
        }
        self.pushed += 1;
    }

    /// Borrow unit `abs` (must still be resident).
    pub fn get(&self, abs: usize) -> &[T] {
        debug_assert!(
            abs < self.pushed && abs + self.capacity >= self.pushed,
            "unit {abs} evicted (pushed {}, capacity {})",
            self.pushed,
            self.capacity
        );
        &self.slots[abs % self.capacity]
    }

    /// Units pushed so far.
    pub fn pushed(&self) -> usize {
        self.pushed
    }

    /// Units currently resident (≤ capacity).
    pub fn resident(&self) -> usize {
        self.slots.len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// One pipeline stage streaming rows of a (possibly batched) 2D mesh.
pub struct StageProcessor2D<T: Element, K: StencilOp2D<T>> {
    k: K,
    nx: usize,
    stream_rows: usize,
    /// Rows per independent mesh in the stream (seam period).
    mesh_ny: usize,
    r: usize,
    ring: RingBuffer<T>,
    next_out: usize,
}

impl<T: Element, K: StencilOp2D<T>> StageProcessor2D<T, K> {
    /// Create a processor for a stream of `stream_rows` rows of `nx` cells,
    /// where every `mesh_ny` rows form an independent mesh.
    pub fn new(k: K, nx: usize, stream_rows: usize, mesh_ny: usize) -> Self {
        assert!(stream_rows.is_multiple_of(mesh_ny), "stream must be whole meshes");
        let r = k.radius();
        StageProcessor2D {
            k,
            nx,
            stream_rows,
            mesh_ny,
            r,
            ring: RingBuffer::new(2 * r + 1),
            next_out: 0,
        }
    }

    fn emit(&mut self, y: usize) -> Vec<T> {
        let (nx, r) = (self.nx, self.r);
        let ly = y % self.mesh_ny;
        let y_interior = ly >= r && ly + r < self.mesh_ny;
        let mut out = Vec::with_capacity(nx);
        for x in 0..nx {
            let v = if y_interior && x >= r && x + r < nx {
                self.k.apply(|dx, dy| {
                    self.ring.get((y as i32 + dy) as usize)[(x as i32 + dx) as usize]
                })
            } else {
                self.k.on_boundary(self.ring.get(y)[x])
            };
            out.push(v);
        }
        self.next_out = y + 1;
        out
    }

    /// Feed the next input row; returns the output row that became ready
    /// (none while the window is filling).
    pub fn push_row(&mut self, row: Vec<T>) -> Option<Vec<T>> {
        assert_eq!(row.len(), self.nx, "row width mismatch");
        assert!(self.ring.pushed() < self.stream_rows, "stream overrun");
        self.ring.push(row);
        let j = self.ring.pushed() - 1;
        if j >= self.r {
            Some(self.emit(j - self.r))
        } else {
            None
        }
    }

    /// After the last input row, drain the trailing `r` output rows.
    pub fn finish(&mut self) -> Vec<Vec<T>> {
        assert_eq!(self.ring.pushed(), self.stream_rows, "stream incomplete");
        let mut out = Vec::new();
        while self.next_out < self.stream_rows {
            out.push(self.emit(self.next_out));
        }
        out
    }

    /// Rows currently held in the window buffer.
    pub fn window_fill(&self) -> usize {
        self.ring.resident()
    }
}

/// One pipeline stage streaming planes of a (possibly batched) 3D mesh.
/// A plane is `nx × ny` cells, row-major.
pub struct StageProcessor3D<T: Element, K: StencilOp3D<T>> {
    k: K,
    nx: usize,
    ny: usize,
    stream_planes: usize,
    /// Planes per independent mesh in the stream (seam period).
    mesh_nz: usize,
    r: usize,
    ring: RingBuffer<T>,
    next_out: usize,
}

impl<T: Element, K: StencilOp3D<T>> StageProcessor3D<T, K> {
    /// Create a processor for a stream of `stream_planes` planes of
    /// `nx × ny` cells, `mesh_nz` planes per independent mesh.
    pub fn new(k: K, nx: usize, ny: usize, stream_planes: usize, mesh_nz: usize) -> Self {
        assert!(stream_planes.is_multiple_of(mesh_nz), "stream must be whole meshes");
        let r = k.radius();
        StageProcessor3D {
            k,
            nx,
            ny,
            stream_planes,
            mesh_nz,
            r,
            ring: RingBuffer::new(2 * r + 1),
            next_out: 0,
        }
    }

    fn emit(&mut self, z: usize) -> Vec<T> {
        let (nx, ny, r) = (self.nx, self.ny, self.r);
        let lz = z % self.mesh_nz;
        let z_interior = lz >= r && lz + r < self.mesh_nz;
        let mut out = Vec::with_capacity(nx * ny);
        for y in 0..ny {
            let y_interior = y >= r && y + r < ny;
            for x in 0..nx {
                let v = if z_interior && y_interior && x >= r && x + r < nx {
                    self.k.apply(|dx, dy, dz| {
                        let plane = self.ring.get((z as i32 + dz) as usize);
                        plane[((y as i32 + dy) as usize) * nx + (x as i32 + dx) as usize]
                    })
                } else {
                    self.k.on_boundary(self.ring.get(z)[y * nx + x])
                };
                out.push(v);
            }
        }
        self.next_out = z + 1;
        out
    }

    /// Feed the next plane; returns the output plane that became ready.
    pub fn push_plane(&mut self, plane: Vec<T>) -> Option<Vec<T>> {
        assert_eq!(plane.len(), self.nx * self.ny, "plane size mismatch");
        assert!(self.ring.pushed() < self.stream_planes, "stream overrun");
        self.ring.push(plane);
        let j = self.ring.pushed() - 1;
        if j >= self.r {
            Some(self.emit(j - self.r))
        } else {
            None
        }
    }

    /// Drain the trailing `r` planes.
    pub fn finish(&mut self) -> Vec<Vec<T>> {
        assert_eq!(self.ring.pushed(), self.stream_planes, "stream incomplete");
        let mut out = Vec::new();
        while self.next_out < self.stream_planes {
            out.push(self.emit(self.next_out));
        }
        out
    }

    /// Planes currently held in the window buffer.
    pub fn window_fill(&self) -> usize {
        self.ring.resident()
    }
}

/// One streaming pipeline stage of a 2D chain, as seen by the chain
/// runners: rows go in, ready rows come out, trailing rows drain at the
/// end. Implemented by the scalar [`StageProcessor2D`] and the fast path's
/// lane-parallel processor.
pub trait Stage2D<T: Element> {
    /// Feed the next input row; returns the output row that became ready
    /// (none while the window is filling).
    fn push_row(&mut self, row: Vec<T>) -> Option<Vec<T>>;
    /// After the last input row, drain the trailing output rows.
    fn finish(&mut self) -> Vec<Vec<T>>;
    /// Rows currently held in the window buffer.
    fn window_fill(&self) -> usize;
}

/// The 3D twin of [`Stage2D`]: the streamed unit is a plane.
pub trait Stage3D<T: Element> {
    /// Feed the next plane; returns the output plane that became ready.
    fn push_plane(&mut self, plane: Vec<T>) -> Option<Vec<T>>;
    /// Drain the trailing planes.
    fn finish(&mut self) -> Vec<Vec<T>>;
    /// Planes currently held in the window buffer.
    fn window_fill(&self) -> usize;
}

impl<T: Element, K: StencilOp2D<T>> Stage2D<T> for StageProcessor2D<T, K> {
    fn push_row(&mut self, row: Vec<T>) -> Option<Vec<T>> {
        StageProcessor2D::push_row(self, row)
    }
    fn finish(&mut self) -> Vec<Vec<T>> {
        StageProcessor2D::finish(self)
    }
    fn window_fill(&self) -> usize {
        StageProcessor2D::window_fill(self)
    }
}

impl<T: Element, K: StencilOp3D<T>> Stage3D<T> for StageProcessor3D<T, K> {
    fn push_plane(&mut self, plane: Vec<T>) -> Option<Vec<T>> {
        StageProcessor3D::push_plane(self, plane)
    }
    fn finish(&mut self) -> Vec<Vec<T>> {
        StageProcessor3D::finish(self)
    }
    fn window_fill(&self) -> usize {
        StageProcessor3D::window_fill(self)
    }
}

/// An execution engine for 2D chains: a factory turning one kernel of the
/// chain into a streaming stage. The chain runners own everything else
/// (feed cascade, telemetry, drain), so two engines that build
/// cell-for-cell-equal stages produce byte-identical runs.
pub trait Engine2D<T: Element, K> {
    /// The stage processor this engine builds.
    type Stage: Stage2D<T>;
    /// Build the stage for kernel `k` over a stream of `stream_rows` rows
    /// of `nx` cells, `mesh_ny` rows per independent mesh.
    fn stage(&self, k: &K, nx: usize, stream_rows: usize, mesh_ny: usize) -> Self::Stage;
}

/// The 3D twin of [`Engine2D`].
pub trait Engine3D<T: Element, K> {
    /// The stage processor this engine builds.
    type Stage: Stage3D<T>;
    /// Build the stage for kernel `k` over a stream of `stream_planes`
    /// planes of `nx × ny` cells, `mesh_nz` planes per independent mesh.
    fn stage(
        &self,
        k: &K,
        nx: usize,
        ny: usize,
        stream_planes: usize,
        mesh_nz: usize,
    ) -> Self::Stage;
}

/// The cell-at-a-time engine: builds the classic scalar stage processors.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ScalarEngine;

impl<T: Element, K: StencilOp2D<T> + Clone> Engine2D<T, K> for ScalarEngine {
    type Stage = StageProcessor2D<T, K>;
    fn stage(&self, k: &K, nx: usize, stream_rows: usize, mesh_ny: usize) -> Self::Stage {
        StageProcessor2D::new(k.clone(), nx, stream_rows, mesh_ny)
    }
}

impl<T: Element, K: StencilOp3D<T> + Clone> Engine3D<T, K> for ScalarEngine {
    type Stage = StageProcessor3D<T, K>;
    fn stage(
        &self,
        k: &K,
        nx: usize,
        ny: usize,
        stream_planes: usize,
        mesh_nz: usize,
    ) -> Self::Stage {
        StageProcessor3D::new(k.clone(), nx, ny, stream_planes, mesh_nz)
    }
}

/// Per-stage telemetry state shared by the traced chain runners.
struct StageTrace {
    track: TrackId,
    primed: bool,
}

fn stage_tracks(rec: &mut Recorder, prefix: &str, n: usize) -> Vec<StageTrace> {
    (0..n)
        .map(|i| StageTrace {
            track: if rec.is_enabled() {
                rec.track(&format!("{prefix}stage:{i}"))
            } else {
                TrackId(0)
            },
            primed: false,
        })
        .collect()
}

/// Stream a row iterator through a chain of 2D stages (the unrolled pipeline
/// of Fig. 2) and collect the final output rows.
pub fn run_chain_2d<T: Element, K: StencilOp2D<T> + Clone>(
    chain: &[K],
    nx: usize,
    stream_rows: usize,
    mesh_ny: usize,
    rows: impl Iterator<Item = Vec<T>>,
) -> Vec<Vec<T>> {
    run_chain_2d_traced(chain, nx, stream_rows, mesh_ny, rows, &mut Recorder::disabled(), "", 0, 1)
}

/// [`run_chain_2d`] with window-buffer telemetry: per-stage fill gauges while
/// each window primes, a "primed" instant when a stage first emits, a
/// "drain" instant when its trailing rows flush, and row counters. Cycle
/// stamps follow the streaming schedule: input unit `j` arrives at
/// `base_cycle + j · cycles_per_row`. With a disabled recorder every hook
/// is a single predictable branch.
#[allow(clippy::too_many_arguments)]
pub fn run_chain_2d_traced<T: Element, K: StencilOp2D<T> + Clone>(
    chain: &[K],
    nx: usize,
    stream_rows: usize,
    mesh_ny: usize,
    rows: impl Iterator<Item = Vec<T>>,
    rec: &mut Recorder,
    track_prefix: &str,
    base_cycle: u64,
    cycles_per_row: u64,
) -> Vec<Vec<T>> {
    run_chain_2d_engine_traced(
        &ScalarEngine,
        chain,
        nx,
        stream_rows,
        mesh_ny,
        rows,
        rec,
        track_prefix,
        base_cycle,
        cycles_per_row,
    )
}

/// [`run_chain_2d_traced`] for any [`Engine2D`]: the one streaming loop
/// both the scalar and the fast path execute. Engine choice only swaps the
/// per-stage processor; schedule, telemetry and drain are this function.
#[allow(clippy::too_many_arguments)]
pub fn run_chain_2d_engine_traced<T: Element, K, E: Engine2D<T, K>>(
    engine: &E,
    chain: &[K],
    nx: usize,
    stream_rows: usize,
    mesh_ny: usize,
    rows: impl Iterator<Item = Vec<T>>,
    rec: &mut Recorder,
    track_prefix: &str,
    base_cycle: u64,
    cycles_per_row: u64,
) -> Vec<Vec<T>> {
    let mut procs: Vec<E::Stage> =
        chain.iter().map(|k| engine.stage(k, nx, stream_rows, mesh_ny)).collect();
    let mut tr = stage_tracks(rec, track_prefix, procs.len());
    let mut out = Vec::with_capacity(stream_rows);

    // Iterative feed (equivalent to cascading recursion): push into stage
    // `from`; an emitted row continues down the chain, a buffered row stops.
    fn feed<T: Element, S: Stage2D<T>>(
        procs: &mut [S],
        tr: &mut [StageTrace],
        from: usize,
        row: Vec<T>,
        out: &mut Vec<Vec<T>>,
        rec: &mut Recorder,
        cycle: u64,
    ) {
        let mut current = row;
        for i in from..procs.len() {
            match procs[i].push_row(current) {
                Some(r) => {
                    if !tr[i].primed {
                        tr[i].primed = true;
                        rec.instant(tr[i].track, "primed", cycle);
                    }
                    current = r;
                }
                None => {
                    rec.gauge(tr[i].track, "window_fill", cycle, procs[i].window_fill() as f64);
                    return;
                }
            }
        }
        out.push(current);
    }

    let mut j: u64 = 0;
    for row in rows {
        let cycle = base_cycle + j * cycles_per_row;
        feed(&mut procs, &mut tr, 0, row, &mut out, rec, cycle);
        j += 1;
    }
    rec.counter_add("window.rows_streamed", j);
    // flush stage by stage, cascading trailing rows downstream
    let end_cycle = base_cycle + j * cycles_per_row;
    for i in 0..procs.len() {
        let trailing = procs[i].finish();
        rec.counter_add("window.drain_rows", trailing.len() as u64);
        rec.instant(tr[i].track, "drain", end_cycle);
        for row in trailing {
            feed(&mut procs, &mut tr, i + 1, row, &mut out, rec, end_cycle);
        }
    }
    assert_eq!(out.len(), stream_rows, "chain must emit the full stream");
    out
}

/// Stream a plane iterator through a chain of 3D stages.
pub fn run_chain_3d<T: Element, K: StencilOp3D<T> + Clone>(
    chain: &[K],
    nx: usize,
    ny: usize,
    stream_planes: usize,
    mesh_nz: usize,
    planes: impl Iterator<Item = Vec<T>>,
) -> Vec<Vec<T>> {
    run_chain_3d_traced(
        chain,
        nx,
        ny,
        stream_planes,
        mesh_nz,
        planes,
        &mut Recorder::disabled(),
        "",
        0,
        1,
    )
}

/// [`run_chain_3d`] with window-buffer telemetry (see
/// [`run_chain_2d_traced`]); the streamed unit is a plane, so
/// `cycles_per_row` here is cycles per *plane*.
#[allow(clippy::too_many_arguments)]
pub fn run_chain_3d_traced<T: Element, K: StencilOp3D<T> + Clone>(
    chain: &[K],
    nx: usize,
    ny: usize,
    stream_planes: usize,
    mesh_nz: usize,
    planes: impl Iterator<Item = Vec<T>>,
    rec: &mut Recorder,
    track_prefix: &str,
    base_cycle: u64,
    cycles_per_row: u64,
) -> Vec<Vec<T>> {
    run_chain_3d_engine_traced(
        &ScalarEngine,
        chain,
        nx,
        ny,
        stream_planes,
        mesh_nz,
        planes,
        rec,
        track_prefix,
        base_cycle,
        cycles_per_row,
    )
}

/// [`run_chain_3d_traced`] for any [`Engine3D`] (see
/// [`run_chain_2d_engine_traced`]).
#[allow(clippy::too_many_arguments)]
pub fn run_chain_3d_engine_traced<T: Element, K, E: Engine3D<T, K>>(
    engine: &E,
    chain: &[K],
    nx: usize,
    ny: usize,
    stream_planes: usize,
    mesh_nz: usize,
    planes: impl Iterator<Item = Vec<T>>,
    rec: &mut Recorder,
    track_prefix: &str,
    base_cycle: u64,
    cycles_per_row: u64,
) -> Vec<Vec<T>> {
    let mut procs: Vec<E::Stage> =
        chain.iter().map(|k| engine.stage(k, nx, ny, stream_planes, mesh_nz)).collect();
    let mut tr = stage_tracks(rec, track_prefix, procs.len());
    let mut out = Vec::with_capacity(stream_planes);

    fn feed<T: Element, S: Stage3D<T>>(
        procs: &mut [S],
        tr: &mut [StageTrace],
        from: usize,
        plane: Vec<T>,
        out: &mut Vec<Vec<T>>,
        rec: &mut Recorder,
        cycle: u64,
    ) {
        let mut current = plane;
        for i in from..procs.len() {
            match procs[i].push_plane(current) {
                Some(p) => {
                    if !tr[i].primed {
                        tr[i].primed = true;
                        rec.instant(tr[i].track, "primed", cycle);
                    }
                    current = p;
                }
                None => {
                    rec.gauge(tr[i].track, "window_fill", cycle, procs[i].window_fill() as f64);
                    return;
                }
            }
        }
        out.push(current);
    }

    let mut j: u64 = 0;
    for plane in planes {
        let cycle = base_cycle + j * cycles_per_row;
        feed(&mut procs, &mut tr, 0, plane, &mut out, rec, cycle);
        j += 1;
    }
    rec.counter_add("window.planes_streamed", j);
    let end_cycle = base_cycle + j * cycles_per_row;
    for i in 0..procs.len() {
        let trailing = procs[i].finish();
        rec.counter_add("window.drain_planes", trailing.len() as u64);
        rec.instant(tr[i].track, "drain", end_cycle);
        for plane in trailing {
            feed(&mut procs, &mut tr, i + 1, plane, &mut out, rec, end_cycle);
        }
    }
    assert_eq!(out.len(), stream_planes, "chain must emit the full stream");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_kernels::{reference, Jacobi3D, Poisson2D};
    use sf_mesh::{norms, Batch2D, Mesh2D, Mesh3D};

    #[test]
    fn ring_buffer_eviction_and_access() {
        let mut r = RingBuffer::<f32>::new(3);
        for i in 0..5 {
            r.push(vec![i as f32]);
        }
        assert_eq!(r.pushed(), 5);
        assert_eq!(r.get(2), &[2.0]);
        assert_eq!(r.get(4), &[4.0]);
    }

    #[test]
    fn single_stage_equals_reference_step() {
        let m = Mesh2D::<f32>::random(17, 9, 3, -1.0, 1.0);
        let rows =
            run_chain_2d(&[Poisson2D], 17, 9, 9, m.as_slice().chunks(17).map(|r| r.to_vec()));
        let expect = reference::step_2d(&Poisson2D, &m);
        let got: Vec<f32> = rows.into_iter().flatten().collect();
        assert!(norms::bit_equal(&got, expect.as_slice()));
    }

    #[test]
    fn chained_stages_equal_iterated_reference() {
        let m = Mesh2D::<f32>::random(21, 13, 4, -1.0, 1.0);
        let chain = vec![Poisson2D; 5];
        let rows = run_chain_2d(&chain, 21, 13, 13, m.as_slice().chunks(21).map(|r| r.to_vec()));
        let expect = reference::run_2d(&Poisson2D, &m, 5);
        let got: Vec<f32> = rows.into_iter().flatten().collect();
        assert!(norms::bit_equal(&got, expect.as_slice()));
    }

    #[test]
    fn batched_stream_respects_seams() {
        // 3 stacked meshes must come out exactly as 3 independent solves
        let batch = Batch2D::<f32>::random(11, 7, 3, 9, -1.0, 1.0);
        let chain = vec![Poisson2D; 4];
        let rows = run_chain_2d(
            &chain,
            11,
            21,
            7, // seam period = per-mesh rows
            batch.as_slice().chunks(11).map(|r| r.to_vec()),
        );
        let got: Vec<f32> = rows.into_iter().flatten().collect();
        let expect = reference::run_batch_2d(&Poisson2D, &batch, 4);
        assert!(norms::bit_equal(&got, expect.as_slice()));
    }

    #[test]
    fn chain_3d_equals_reference() {
        let m = Mesh3D::<f32>::random(9, 8, 7, 5, -1.0, 1.0);
        let k = Jacobi3D::smoothing();
        let chain = vec![k; 3];
        let planes = run_chain_3d(&chain, 9, 8, 7, 7, m.as_slice().chunks(72).map(|p| p.to_vec()));
        let got: Vec<f32> = planes.into_iter().flatten().collect();
        let expect = reference::run_3d(&k, &m, 3);
        assert!(norms::bit_equal(&got, expect.as_slice()));
    }

    #[test]
    fn traced_chain_matches_untraced_and_records_events() {
        let m = Mesh2D::<f32>::random(21, 13, 4, -1.0, 1.0);
        let chain = vec![Poisson2D; 3];
        let plain = run_chain_2d(&chain, 21, 13, 13, m.as_slice().chunks(21).map(|r| r.to_vec()));

        let mut rec = Recorder::enabled(300.0);
        let traced = run_chain_2d_traced(
            &chain,
            21,
            13,
            13,
            m.as_slice().chunks(21).map(|r| r.to_vec()),
            &mut rec,
            "p0/",
            100,
            28,
        );
        assert_eq!(plain, traced, "telemetry must not change results");

        // One track per stage, each primed exactly once and drained once.
        assert_eq!(rec.track_names(), &["p0/stage:0", "p0/stage:1", "p0/stage:2"]);
        let primed: Vec<_> = rec.instants().iter().filter(|i| i.name == "primed").collect();
        assert_eq!(primed.len(), 3);
        // Stage s first emits on input row s·r + r (radius 1) → cycle stamps
        // follow base + j·cpr and grow down the chain.
        assert_eq!(primed[0].cycle, 100 + 28);
        assert!(primed[1].cycle > primed[0].cycle);
        assert_eq!(rec.instants().iter().filter(|i| i.name == "drain").count(), 3);
        // Fill gauges only while windows prime: r rows per stage.
        assert_eq!(rec.gauges().iter().filter(|g| g.name == "window_fill").count(), 3);
        assert_eq!(rec.counter("window.rows_streamed"), 13);
        assert_eq!(rec.counter("window.drain_rows"), 3);
    }

    #[test]
    fn traced_chain_3d_matches_untraced() {
        let m = Mesh3D::<f32>::random(9, 8, 7, 5, -1.0, 1.0);
        let k = Jacobi3D::smoothing();
        let chain = vec![k; 2];
        let plain = run_chain_3d(&chain, 9, 8, 7, 7, m.as_slice().chunks(72).map(|p| p.to_vec()));
        let mut rec = Recorder::enabled(300.0);
        let traced = run_chain_3d_traced(
            &chain,
            9,
            8,
            7,
            7,
            m.as_slice().chunks(72).map(|p| p.to_vec()),
            &mut rec,
            "",
            0,
            10,
        );
        assert_eq!(plain, traced);
        assert_eq!(rec.counter("window.planes_streamed"), 7);
        assert_eq!(rec.instants().iter().filter(|i| i.name == "primed").count(), 2);
    }

    #[test]
    fn tiny_mesh_all_boundary() {
        // 2×2 mesh with radius-1 stencil: everything is boundary
        let m = Mesh2D::<f32>::random(2, 2, 1, 0.0, 1.0);
        let rows = run_chain_2d(&[Poisson2D], 2, 2, 2, m.as_slice().chunks(2).map(|r| r.to_vec()));
        let got: Vec<f32> = rows.into_iter().flatten().collect();
        assert!(norms::bit_equal(&got, m.as_slice()));
    }

    #[test]
    #[should_panic(expected = "stream must be whole meshes")]
    fn seam_period_must_divide_stream() {
        let _ = StageProcessor2D::new(Poisson2D, 4, 10, 3);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut p = StageProcessor2D::new(Poisson2D, 4, 4, 4);
        let _ = p.push_row(vec![0.0; 5]);
    }
}
