//! Design-space exploration.
//!
//! The paper's workflow uses the model to "significantly narrow the design
//! space, enabling us to reason about and quickly obtain an optimum
//! configuration" (§V-A). [`explore`] sweeps `(V, p, mode)` candidates,
//! synthesizes each on the simulated device (which applies the real resource,
//! bandwidth and clock constraints), predicts runtime with the extended
//! model, and returns candidates ranked fastest-first.
//!
//! Before any candidate is synthesized or costed it is pre-filtered through
//! the static checker (`sf_check::check`): configurations with
//! error-severity diagnostics — resource over-subscription, loop-carried
//! RAW hazards, illegal tiles — never reach the cost model. The checker's
//! error rules are a superset of the synthesizer's rejections, so the
//! filter is sound; it is also stricter (the RAW-hazard rule rejects deep
//! unrolls the synthesizer would accept), which keeps statically-unsafe
//! designs out of the ranking entirely.

use crate::blocking;
use crate::cache::{check_cached, predict_cached};
use crate::error::ModelError;
use crate::predict::{Prediction, PredictionLevel};
use serde::{Deserialize, Serialize};
use sf_fpga::design::{synthesize, ExecMode, StencilDesign, Workload};
use sf_fpga::{FpgaDevice, MemKind};
use sf_kernels::StencilSpec;

/// Exploration options.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DseOptions {
    /// External memory to bind.
    pub mem: MemKind,
    /// Vectorization factors to try (filtered by synthesis feasibility).
    pub v_candidates: Vec<usize>,
    /// Upper bound on the unroll factor sweep.
    pub max_p: usize,
    /// Also consider spatially-blocked designs (with the recommended tile).
    pub allow_tiling: bool,
    /// Device counts to try for whole-mesh (baseline/batched) designs.
    /// `vec![1]` — the default — is the classic single-device sweep; extra
    /// entries add sharded candidates costed with the halo-exchange plan.
    /// Tiled candidates are always single-device: tiling and slab sharding
    /// both decompose the mesh and do not compose.
    pub device_candidates: Vec<usize>,
    /// Inter-device link model used to cost sharded candidates.
    pub link: sf_multi::LinkModel,
}

impl Default for DseOptions {
    fn default() -> Self {
        DseOptions {
            mem: MemKind::Hbm,
            v_candidates: vec![1, 2, 4, 8, 16, 32, 64],
            max_p: 128,
            allow_tiling: true,
            device_candidates: vec![1],
            link: sf_multi::LinkModel::default(),
        }
    }
}

/// One feasible design point with its prediction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The synthesized design.
    pub design: StencilDesign,
    /// Accelerator cards the point was costed for (`1` = single-device).
    pub devices: usize,
    /// Extended-model prediction for the given workload/iterations; sharded
    /// points use [`crate::predict::predict_sharded`].
    pub prediction: Prediction,
    /// Full cycle-plan runtime (the quantity the ranking uses — it also
    /// accounts for memory-bound rows, which the closed-form model
    /// deliberately omits; see `predict`). For `devices > 1` this is the
    /// sharded plan's merged runtime: slowest device per pass, exposed
    /// exchange included.
    pub planned_runtime_s: f64,
}

/// Enumerate feasible designs for `niter` iterations of `wl`, ranked by
/// predicted runtime (fastest first). Infeasible configurations are silently
/// skipped — that *is* the model's job. Malformed options (an empty or
/// zero-valued `v_candidates` sweep, `max_p == 0`) are
/// [`ModelError::InvalidParameter`]s.
/// ```
/// use sf_fpga::design::Workload;
/// use sf_fpga::FpgaDevice;
/// use sf_kernels::StencilSpec;
/// use sf_model::dse::{explore, DseOptions};
///
/// let dev = FpgaDevice::u280();
/// let wl = Workload::D3 { nx: 64, ny: 64, nz: 64, batch: 1 };
/// let cands = explore(&dev, &StencilSpec::rtm(), &wl, 1800, &DseOptions::default()).unwrap();
/// // the paper's configuration wins: V=1, p=3
/// assert_eq!((cands[0].design.v, cands[0].design.p), (1, 3));
/// ```
pub fn explore(
    dev: &FpgaDevice,
    spec: &StencilSpec,
    wl: &Workload,
    niter: u64,
    opts: &DseOptions,
) -> Result<Vec<Candidate>, ModelError> {
    explore_jobs(dev, spec, wl, niter, opts, sf_par::resolve_jobs(None))
}

/// [`explore`] with an explicit worker count.
///
/// Candidate `(V, p, mode)` points are enumerated in the deterministic
/// sweep order, evaluated (static check → synthesis → prediction) on up to
/// `jobs` threads via [`sf_par::par_map`], then re-assembled in sweep
/// order before ranking — so the returned vector is identical for every
/// `jobs` value, including the tie-break order among equal runtimes.
/// Predictions and check reports go through the process-wide caches in
/// [`crate::cache`], so a repeated sweep (or a following
/// `Workflow::preflight`) is mostly cache hits.
pub fn explore_jobs(
    dev: &FpgaDevice,
    spec: &StencilSpec,
    wl: &Workload,
    niter: u64,
    opts: &DseOptions,
    jobs: usize,
) -> Result<Vec<Candidate>, ModelError> {
    if opts.v_candidates.is_empty() {
        return Err(ModelError::invalid("v_candidates", "sweep must name at least one V"));
    }
    if opts.v_candidates.contains(&0) {
        return Err(ModelError::invalid("v_candidates", "vectorization factors must be >= 1"));
    }
    if opts.max_p == 0 {
        return Err(ModelError::invalid("max_p", "unroll sweep bound must be >= 1"));
    }
    if opts.device_candidates.is_empty() {
        return Err(ModelError::invalid(
            "device_candidates",
            "sweep must name at least one device count",
        ));
    }
    if opts.device_candidates.contains(&0) {
        return Err(ModelError::invalid("device_candidates", "device counts must be >= 1"));
    }
    // A drifted spec poisons every eq. (5)/(6) decision below (the p_dsp
    // sweep bound, window sizing, the ranking itself) — reject it up front.
    crate::verify::verify_spec(spec)?;
    let batch = wl.batch();
    // Enumerate the sweep serially (cheap arithmetic only) so the work
    // list — and therefore the result order — is independent of `jobs`.
    let mut configs: Vec<(usize, usize, ExecMode, usize)> = Vec::new();
    for &v in &opts.v_candidates {
        let p_cap = crate::equations::p_dsp(dev.dsp_total, dev.dsp_util_target, v, spec.gdsp())
            .min(opts.max_p);
        for p in 1..=p_cap {
            // whole-mesh (baseline/batched) candidates, one per device count
            let mode = if batch > 1 { ExecMode::Batched { b: batch } } else { ExecMode::Baseline };
            for &devices in &opts.device_candidates {
                configs.push((v, p, mode, devices));
            }
            // tiled candidate (single-mesh workloads only)
            if opts.allow_tiling && batch == 1 {
                let mode = match wl {
                    Workload::D2 { .. } => {
                        let m = blocking::recommended_tile_2d(dev, spec, v, p);
                        ExecMode::Tiled1D { tile_m: m }
                    }
                    Workload::D3 { .. } => {
                        let (m, n) = blocking::recommended_tile_3d(dev, spec, v, p);
                        ExecMode::Tiled2D { tile_m: m, tile_n: n }
                    }
                };
                let tile_fits_mesh = match (wl, mode) {
                    (Workload::D2 { nx, .. }, ExecMode::Tiled1D { tile_m }) => {
                        tile_m > p * spec.halo_order() && tile_m <= *nx
                    }
                    (Workload::D3 { nx, ny, .. }, ExecMode::Tiled2D { tile_m, tile_n }) => {
                        tile_m > p * spec.halo_order()
                            && tile_n > p * spec.halo_order()
                            && tile_m <= *nx
                            && tile_n <= *ny
                    }
                    _ => false,
                };
                if tile_fits_mesh {
                    configs.push((v, p, mode, 1));
                }
            }
        }
    }

    // Evaluate every point independently; results come back in sweep order.
    let evaluated: Vec<Result<Option<Candidate>, ModelError>> =
        sf_par::par_map(jobs, configs, |_, (v, p, mode, devices)| {
            if !statically_legal(dev, spec, v, p, mode, opts.mem, wl, devices) {
                return Ok(None);
            }
            match synthesize(dev, spec, v, p, mode, opts.mem, wl) {
                Ok(design) => candidate(dev, design, wl, niter, devices, opts.link).map(Some),
                Err(_) => Ok(None), // infeasible: silently skipped, as before
            }
        });
    let mut out = Vec::new();
    for r in evaluated {
        if let Some(c) = r? {
            out.push(c);
        }
    }
    // total_cmp instead of partial_cmp: candidate() already rejected
    // non-finite runtimes, so the ordering is total either way, but this
    // ranking must never be a panic site. The sort is stable, so equal
    // runtimes keep their sweep order for every `jobs` value.
    out.sort_by(|a, b| a.planned_runtime_s.total_cmp(&b.planned_runtime_s));
    Ok(out)
}

/// The DSE pruning filter: `true` when the static checker reports no
/// error-severity diagnostics for the configuration. Warnings (tile
/// alignment, FIFO slack) do not prune — they trade throughput, not
/// legality. The device count flows into the SFC-X shard-legality rule, so
/// shardings whose slabs would be narrower than the halo depth (or that
/// out-number the mesh's outermost units) never reach the cost model.
#[allow(clippy::too_many_arguments)]
fn statically_legal(
    dev: &FpgaDevice,
    spec: &StencilSpec,
    v: usize,
    p: usize,
    mode: ExecMode,
    mem: MemKind,
    wl: &Workload,
    devices: usize,
) -> bool {
    !check_cached(dev, &sf_check::Design::new(*spec, v, p, mode, mem, *wl).with_devices(devices))
        .has_errors()
}

fn candidate(
    dev: &FpgaDevice,
    design: StencilDesign,
    wl: &Workload,
    niter: u64,
    devices: usize,
    link: sf_multi::LinkModel,
) -> Result<Candidate, ModelError> {
    let (prediction, planned_runtime_s) = if devices > 1 {
        // The sharded plan *is* the extended model for multi-device points —
        // it prices memory-bound rows, halo re-reads and exposed exchange —
        // so prediction and plan coincide by construction.
        let cfg = sf_multi::MultiConfig { devices, link };
        let pr = crate::predict::predict_sharded(dev, &design, wl, niter, &cfg)?;
        (pr, pr.runtime_s)
    } else {
        let pr = predict_cached(dev, &design, wl, niter, PredictionLevel::Extended)?;
        (pr, sf_fpga::cycles::plan(dev, &design, wl, niter).runtime_s)
    };
    if !planned_runtime_s.is_finite() {
        return Err(ModelError::NonFiniteRuntime {
            detail: format!("V={} p={} mode {:?} on {:?}", design.v, design.p, design.mode, wl),
        });
    }
    Ok(Candidate { design, devices, prediction, planned_runtime_s })
}

/// The single best candidate, if any design is feasible.
pub fn best(
    dev: &FpgaDevice,
    spec: &StencilSpec,
    wl: &Workload,
    niter: u64,
    opts: &DseOptions,
) -> Result<Option<Candidate>, ModelError> {
    Ok(explore(dev, spec, wl, niter, opts)?.into_iter().next())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_kernels::AppId;

    fn dev() -> FpgaDevice {
        FpgaDevice::u280()
    }

    #[test]
    fn poisson_dse_picks_deep_unroll() {
        let d = dev();
        let wl = Workload::D2 { nx: 400, ny: 400, batch: 1 };
        let opts = DseOptions { allow_tiling: false, ..DseOptions::default() };
        let best = best(&d, &StencilSpec::poisson(), &wl, 60_000, &opts).unwrap().unwrap();
        // the paper lands at V=8, p=60 (pV = 480) under its two-channel
        // budget; with HBM channels unconstrained the DSE may trade V against
        // p, but must deliver at least the paper's aggregate parallelism and
        // beat the paper's own configuration.
        assert!(
            best.design.p * best.design.v >= 480,
            "DSE picked V={} p={}",
            best.design.v,
            best.design.p
        );
        assert_eq!(best.design.spec.app, AppId::Poisson2D);
        let paper =
            synthesize(&d, &StencilSpec::poisson(), 8, 60, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let paper_plan = sf_fpga::cycles::plan(&d, &paper, &wl, 60_000);
        assert!(best.planned_runtime_s <= paper_plan.runtime_s * 1.001);
    }

    #[test]
    fn rtm_dse_respects_dsp_wall() {
        let d = dev();
        let wl = Workload::D3 { nx: 64, ny: 64, nz: 64, batch: 1 };
        let cands = explore(&d, &StencilSpec::rtm(), &wl, 1800, &DseOptions::default()).unwrap();
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(c.design.p <= 3, "no RTM design can exceed p=3 (got {})", c.design.p);
            assert!(c.design.resources.fits(&d));
        }
        let best = &cands[0];
        assert_eq!(best.design.p, 3, "DSE must find the paper's p=3");
    }

    #[test]
    fn large_mesh_forces_tiled_winner() {
        // 2500² planes (50 MB of double-plane buffering) cannot fit the
        // 41 MB of on-chip memory at any V — eq. (7)'s p_mem < 1 case.
        let d = dev();
        let wl = Workload::D3 { nx: 2500, ny: 2500, nz: 100, batch: 1 };
        let cands = explore(&d, &StencilSpec::jacobi(), &wl, 120, &DseOptions::default()).unwrap();
        assert!(!cands.is_empty(), "tiling must rescue the oversized mesh");
        assert!(cands.iter().all(|c| c.design.mode.is_tiled()));
    }

    #[test]
    fn ranking_is_fastest_first() {
        let d = dev();
        let wl = Workload::D2 { nx: 300, ny: 300, batch: 1 };
        let cands =
            explore(&d, &StencilSpec::poisson(), &wl, 1000, &DseOptions::default()).unwrap();
        assert!(cands.len() > 10, "sweep should produce many candidates");
        for w in cands.windows(2) {
            assert!(w[0].planned_runtime_s <= w[1].planned_runtime_s);
        }
    }

    #[test]
    fn batched_workload_explores_batched_designs() {
        let d = dev();
        let wl = Workload::D2 { nx: 200, ny: 100, batch: 100 };
        let best = best(&d, &StencilSpec::poisson(), &wl, 60_000, &DseOptions::default())
            .unwrap()
            .unwrap();
        assert!(matches!(best.design.mode, ExecMode::Batched { b: 100 }));
    }

    #[test]
    fn every_candidate_is_check_clean() {
        // the pruning filter must guarantee: nothing the DSE ranks carries
        // an error-severity diagnostic
        let d = dev();
        let wl = Workload::D2 { nx: 400, ny: 400, batch: 1 };
        let cands =
            explore(&d, &StencilSpec::poisson(), &wl, 1000, &DseOptions::default()).unwrap();
        assert!(!cands.is_empty());
        for c in &cands {
            let rep = sf_check::check(&d, &sf_check::Design::from_synthesized(&c.design, &wl));
            assert!(!rep.has_errors(), "ranked candidate has errors: {}", rep.render());
        }
    }

    #[test]
    fn raw_hazard_prunes_deep_unrolls_on_short_meshes() {
        // a 50-row mesh: unrolls p ≥ 50 synthesize fine (resources allow up
        // to p=68 at V=8) but carry a loop-carried RAW hazard — the static
        // filter must keep them out of the ranking
        let d = dev();
        let wl = Workload::D2 { nx: 400, ny: 50, batch: 1 };
        let spec = StencilSpec::poisson();
        assert!(
            synthesize(&d, &spec, 8, 50, ExecMode::Baseline, MemKind::Hbm, &wl).is_ok(),
            "precondition: the synthesizer alone would accept p=50"
        );
        let opts = DseOptions { allow_tiling: false, ..DseOptions::default() };
        let cands = explore(&d, &spec, &wl, 1000, &opts).unwrap();
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(c.design.p < 50, "RAW-hazardous p={} survived pruning", c.design.p);
        }
    }

    #[test]
    fn device_sweep_ranks_sharded_candidates() {
        let d = dev();
        let wl = Workload::D2 { nx: 400, ny: 400, batch: 1 };
        let opts = DseOptions {
            allow_tiling: false,
            device_candidates: vec![1, 2, 4],
            ..DseOptions::default()
        };
        let cands = explore(&d, &StencilSpec::poisson(), &wl, 60_000, &opts).unwrap();
        for devices in [1usize, 2, 4] {
            assert!(
                cands.iter().any(|c| c.devices == devices),
                "no candidate at devices={devices}"
            );
        }
        // every sharded candidate passed the SFC-X legality rule: its shard
        // width covers the halo depth
        for c in cands.iter().filter(|c| c.devices > 1) {
            let h = c.design.p * c.design.spec.stages * c.design.spec.order.div_ceil(2);
            assert!(
                400 / c.devices >= h,
                "devices={} p={} slipped past SFC-X",
                c.devices,
                c.design.p
            );
        }
        // ranking stays fastest-first across mixed device counts
        for w in cands.windows(2) {
            assert!(w[0].planned_runtime_s <= w[1].planned_runtime_s);
        }
        // with a fast default link and a large mesh, sharding across more
        // cards must win the sweep outright
        assert!(cands[0].devices > 1, "multi-device should win, got devices=1");
    }

    #[test]
    fn narrow_mesh_prunes_illegal_shardings() {
        // 100 rows over 2 devices = 50-row shards: the SFC-X rule must keep
        // every p > 50 sharded point (halo deeper than the shard) out of
        // the ranking while the single-device sweep still explores them.
        let d = dev();
        let wl = Workload::D2 { nx: 200, ny: 100, batch: 1 };
        let opts = DseOptions {
            allow_tiling: false,
            device_candidates: vec![1, 2],
            ..DseOptions::default()
        };
        let cands = explore(&d, &StencilSpec::poisson(), &wl, 6000, &opts).unwrap();
        assert!(cands.iter().any(|c| c.devices == 2));
        assert!(cands.iter().any(|c| c.devices == 1 && c.design.p > 50));
        for c in cands.iter().filter(|c| c.devices == 2) {
            assert!(c.design.p <= 50, "p={} halo exceeds the 50-row shard", c.design.p);
        }
    }

    #[test]
    fn glacial_link_ranks_sharding_behind_single_device() {
        // communication-bound regime: a link so slow that exposed exchange
        // dwarfs the compute saved by sharding
        let d = dev();
        let wl = Workload::D2 { nx: 400, ny: 400, batch: 1 };
        let opts = DseOptions {
            allow_tiling: false,
            device_candidates: vec![1, 4],
            link: sf_multi::LinkModel { latency_cycles: 50_000_000, bytes_per_cycle: 1 },
            ..DseOptions::default()
        };
        let cands = explore(&d, &StencilSpec::poisson(), &wl, 60_000, &opts).unwrap();
        assert!(cands.iter().any(|c| c.devices == 4), "sharded points must still be ranked");
        assert_eq!(cands[0].devices, 1, "a glacial link must not win the sweep");
    }

    #[test]
    fn malformed_device_candidates_are_typed_errors() {
        let d = dev();
        let wl = Workload::D2 { nx: 100, ny: 100, batch: 1 };
        let spec = StencilSpec::poisson();
        let empty = DseOptions { device_candidates: vec![], ..DseOptions::default() };
        assert!(matches!(
            explore(&d, &spec, &wl, 100, &empty).unwrap_err(),
            crate::ModelError::InvalidParameter { .. }
        ));
        let zero = DseOptions { device_candidates: vec![0, 2], ..DseOptions::default() };
        assert!(explore(&d, &spec, &wl, 100, &zero).is_err());
    }

    #[test]
    fn device_sweep_is_jobs_invariant() {
        let d = dev();
        let wl = Workload::D2 { nx: 300, ny: 300, batch: 1 };
        let spec = StencilSpec::poisson();
        let opts = DseOptions {
            allow_tiling: false,
            device_candidates: vec![1, 2, 4],
            ..DseOptions::default()
        };
        let serial = explore_jobs(&d, &spec, &wl, 1000, &opts, 1).unwrap();
        assert!(serial.iter().any(|c| c.devices > 1));
        for jobs in [2, 8] {
            let par = explore_jobs(&d, &spec, &wl, 1000, &opts, jobs).unwrap();
            assert_eq!(par, serial, "jobs={jobs} must reproduce the serial ranking exactly");
        }
    }

    #[test]
    fn parallel_sweep_is_jobs_invariant() {
        let d = dev();
        let wl = Workload::D2 { nx: 300, ny: 300, batch: 1 };
        let spec = StencilSpec::poisson();
        let opts = DseOptions::default();
        let serial = explore_jobs(&d, &spec, &wl, 1000, &opts, 1).unwrap();
        assert!(!serial.is_empty());
        for jobs in [2, 4, 8] {
            let par = explore_jobs(&d, &spec, &wl, 1000, &opts, jobs).unwrap();
            assert_eq!(par, serial, "jobs={jobs} must reproduce the serial ranking exactly");
        }
    }

    #[test]
    fn repeated_sweeps_hit_the_prediction_cache() {
        let d = dev();
        let wl = Workload::D2 { nx: 180, ny: 180, batch: 1 };
        let spec = StencilSpec::poisson();
        let opts = DseOptions { allow_tiling: false, ..DseOptions::default() };
        let first = explore_jobs(&d, &spec, &wl, 500, &opts, 1).unwrap();
        let before = crate::cache::prediction_cache_stats();
        let second = explore_jobs(&d, &spec, &wl, 500, &opts, 1).unwrap();
        let after = crate::cache::prediction_cache_stats();
        assert_eq!(first, second);
        assert_eq!(
            after.entries, before.entries,
            "an identical sweep must not add prediction entries"
        );
        assert!(after.hits > before.hits, "second sweep must be served from cache");
    }

    #[test]
    fn drifted_spec_is_rejected_before_the_sweep() {
        let d = dev();
        let wl = Workload::D2 { nx: 100, ny: 100, batch: 1 };
        let mut spec = StencilSpec::poisson();
        spec.ops = sf_kernels::OpCount::new(40, 40, 0); // kernel counts 4+2
        assert!(matches!(
            explore(&d, &spec, &wl, 100, &DseOptions::default()).unwrap_err(),
            crate::ModelError::SpecDrift { .. }
        ));
    }

    #[test]
    fn malformed_options_are_typed_errors() {
        let d = dev();
        let wl = Workload::D2 { nx: 100, ny: 100, batch: 1 };
        let spec = StencilSpec::poisson();
        let empty = DseOptions { v_candidates: vec![], ..DseOptions::default() };
        assert!(matches!(
            explore(&d, &spec, &wl, 100, &empty).unwrap_err(),
            crate::ModelError::InvalidParameter { .. }
        ));
        let zero_v = DseOptions { v_candidates: vec![0, 8], ..DseOptions::default() };
        assert!(explore(&d, &spec, &wl, 100, &zero_v).is_err());
        let zero_p = DseOptions { max_p: 0, ..DseOptions::default() };
        assert!(explore(&d, &spec, &wl, 100, &zero_p).is_err());
        // and best() propagates rather than panicking
        assert!(best(&d, &spec, &wl, 100, &zero_p).is_err());
    }
}
