#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sf-gpu — the V100 comparator
//!
//! The paper benchmarks every FPGA design against "equivalent highly
//! optimized implementations … on a modern Nvidia GPU" (Tesla V100 PCIe,
//! Table I). We have no V100, so this crate substitutes a calibrated
//! analytic performance model plus the Rayon executors from `sf-kernels`
//! for numerics:
//!
//! * stencil kernels on a V100 are **memory-bandwidth-bound**; runtime is
//!   `t = Σ_kernels (t_launch + bytes / BW_eff(bytes))` per iteration with
//!   one saturation curve `BW_eff(s) = BW_peak · s/(s + s_half)`
//!   (`BW_peak = 580 GB/s` — the stencil-effective fraction of the 900 GB/s
//!   HBM2 peak; `s_half = 2.2 MB`; `t_launch = 6 µs`). This single curve
//!   reproduces the paper's GPU columns in Tables IV–VI typically within
//!   ~10 % (see `sf-bench` and EXPERIMENTS.md).
//! * RTM runs the *unfused* loop chain (4 × `f_pml` + 3 × `T`-update +
//!   1 × `Y`-update = 8 kernels/iteration); the radius-4 25-point kernels
//!   additionally pay a cache-efficiency factor (0.35), matching the paper's
//!   note that `f_pml` achieved only ~180 GB/s while simple kernels exceeded
//!   340 GB/s.
//! * power follows utilization: `P = 40 W + 200 W × BW/BW_peak`, the
//!   `nvidia-smi` range (40–240 W) the paper reports.

pub mod device;
pub mod perf;

pub use device::GpuDevice;
pub use perf::{gpu_report, KernelCost};
