#!/usr/bin/env sh
# Grep-based lint gate: no `.unwrap()` / `.expect(` and no `panic!` /
# `todo!` / `unimplemented!` in library-crate non-test code paths.
# Scanning stops at the first `#[cfg(test)]` in each file (test modules
# are exempt), comment lines are skipped, and `.expect_err(` (a
# legitimate assertion helper) is not a match. `assert!`-family macros
# stay allowed: a failed invariant assertion names its condition, while
# a bare `panic!` is almost always a reachable error path that should be
# a typed error instead.
#
# Covered crates: every `[workspace] members` entry under crates/ — the
# library layers a downstream user links against — derived from the root
# Cargo.toml so new crates are covered the day they are added. Excluded:
# vendor/* (external-API stand-ins) and crates/bench (the experiment
# harness and its binaries may still panic on genuinely impossible
# states).
set -eu

cd "$(dirname "$0")/.."

# Expand the workspace member globs from Cargo.toml into directories.
# The members line is a single-line array: members = ["crates/*", ...]
member_dirs=$(
    sed -n 's/^members[[:space:]]*=[[:space:]]*\[\(.*\)\]/\1/p' Cargo.toml |
        tr ',' '\n' |
        sed 's/[["[:space:]]*//; s/"[]]*//' |
        while IFS= read -r pattern; do
            [ -n "$pattern" ] || continue
            # shell glob expansion; unmatched patterns expand to themselves
            for dir in $pattern; do
                [ -d "$dir" ] && printf '%s\n' "$dir"
            done
        done
)
[ -n "$member_dirs" ] || { echo "error: no workspace members found in Cargo.toml" >&2; exit 2; }

hits_file=$(mktemp)
trap 'rm -f "$hits_file"' EXIT

printf '%s\n' "$member_dirs" | while IFS= read -r dir; do
    case "$dir" in
        vendor/*) continue ;;       # vendored dependency shims
        crates/bench) continue ;;   # harness + binaries: panics allowed
    esac
    [ -d "$dir/src" ] || continue
    find "$dir/src" -name '*.rs' | sort | while IFS= read -r f; do
        awk '
            /#\[cfg\(test\)\]/ { exit }
            /^[[:space:]]*\/\// { next }
            /\.expect_err\(/ { next }
            /\.unwrap\(|\.expect\(/ { print FILENAME ":" FNR ": " $0 }
            /(^|[^_[:alnum:]])(panic|todo|unimplemented)!/ { print FILENAME ":" FNR ": " $0 }
        ' "$f" >> "$hits_file"
    done
done

if [ -s "$hits_file" ]; then
    cat "$hits_file"
    echo "error: unwrap()/expect()/panic!/todo!/unimplemented! found in library non-test code (route through typed errors instead)" >&2
    exit 1
fi
exit 0
