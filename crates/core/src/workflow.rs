//! The step-wise design workflow (paper §III–§IV as an API).

use crate::compare::Comparison;
use crate::error::SfError;
use serde::{Deserialize, Serialize};
use sf_fpga::design::{StencilDesign, Workload};
use sf_fpga::{cycles, power, FpgaDevice, SimReport};
use sf_gpu::{gpu_report, GpuDevice};
use sf_kernels::StencilSpec;
use sf_model::dse::{self, Candidate, DseOptions};
use sf_model::feasibility::FeasibilityReport;

/// Workflow failures surfaced to the user.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkflowError {
    /// No feasible design exists in the explored space.
    NoFeasibleDesign {
        /// Application that failed.
        app: String,
    },
}

impl core::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WorkflowError::NoFeasibleDesign { app } => {
                write!(f, "no feasible FPGA design found for {app}")
            }
        }
    }
}

impl std::error::Error for WorkflowError {}

/// The unified workflow: a target FPGA, a comparator GPU, and exploration
/// options.
#[derive(Clone, Debug)]
pub struct Workflow {
    /// Target FPGA card.
    pub device: FpgaDevice,
    /// Comparator GPU.
    pub gpu: GpuDevice,
    /// Design-space exploration options.
    pub opts: DseOptions,
}

impl Workflow {
    /// The paper's experimental setup: Alveo U280 vs Tesla V100.
    pub fn u280_vs_v100() -> Self {
        Workflow { device: FpgaDevice::u280(), gpu: GpuDevice::v100(), opts: DseOptions::default() }
    }

    /// Step 1 — feasibility analysis (eqs. 4/6/7 + §VI determinants).
    /// The streaming buffer unit is derived from the workload: row length for
    /// 2D, plane size for 3D.
    pub fn feasibility(
        &self,
        spec: &StencilSpec,
        wl: &Workload,
    ) -> Result<FeasibilityReport, SfError> {
        let unit = match *wl {
            Workload::D2 { nx, .. } => nx,
            Workload::D3 { nx, ny, .. } => nx * ny,
        };
        let v = sf_model::feasibility::nominal_v(&self.device, spec, self.opts.mem);
        Ok(FeasibilityReport::analyze(&self.device, spec, v, unit, self.opts.mem)?)
    }

    /// Step 2 — design-space exploration, ranked fastest-first.
    ///
    /// Candidate evaluation fans across worker threads (resolved from
    /// `SF_JOBS` / machine parallelism); the ranking is identical for any
    /// worker count. See [`Workflow::explore_jobs`] for an explicit count.
    pub fn explore(
        &self,
        spec: &StencilSpec,
        wl: &Workload,
        niter: u64,
    ) -> Result<Vec<Candidate>, SfError> {
        Ok(dse::explore(&self.device, spec, wl, niter, &self.opts)?)
    }

    /// [`Workflow::explore`] with an explicit worker count (the `--jobs`
    /// CLI flag lands here).
    pub fn explore_jobs(
        &self,
        spec: &StencilSpec,
        wl: &Workload,
        niter: u64,
        jobs: usize,
    ) -> Result<Vec<Candidate>, SfError> {
        Ok(dse::explore_jobs(&self.device, spec, wl, niter, &self.opts, jobs)?)
    }

    /// Step 0 — mandatory static pre-flight: the `sf-check` design-rule
    /// checker applied to a synthesized design before anything executes it,
    /// plus the kernel-analysis rules (`SFC-K01` … `SFC-K05`) from
    /// `sf-absint`'s probe execution of the canonical kernel behind the
    /// design's spec. Returns the full diagnostic report (warnings
    /// included); callers that must not proceed on errors convert it with
    /// [`sf_check::CheckReport::into_result`].
    ///
    /// Served from the process-wide check-report cache shared with the DSE
    /// pruning filter (design rules) and `sf-absint`'s per-process kernel
    /// analysis cache, so preflighting a design the DSE already vetted is
    /// a lookup, not a re-derivation.
    pub fn preflight(&self, design: &StencilDesign, wl: &Workload) -> sf_check::CheckReport {
        self.preflight_devices(design, wl, 1)
    }

    /// [`Workflow::preflight`] with an explicit device count: the SFC-X
    /// shard-legality rule sees `devices`, so illegal shardings (zero
    /// devices, more shards than outermost mesh units, shards narrower
    /// than the halo depth) surface as error-severity diagnostics before
    /// anything runs.
    pub fn preflight_devices(
        &self,
        design: &StencilDesign,
        wl: &Workload,
        devices: usize,
    ) -> sf_check::CheckReport {
        let mut rep = sf_model::check_cached(
            &self.device,
            &sf_check::Design::from_synthesized(design, wl).with_devices(devices),
        );
        rep.extend_diagnostics(sf_absint::app_diagnostics(&design.spec, design.p));
        rep
    }

    /// [`Workflow::preflight`] for an explicit 2D kernel (a custom stencil,
    /// or a paper kernel with overridden coefficients): runs the full
    /// abstract interpretation — footprint/op-count extraction, interval
    /// ranges, von Neumann stability — on `op` itself, applies the K-rules
    /// against the design's spec at its unroll factor, and rejects with a
    /// typed [`SfError::Check`] on any error-severity finding **before a
    /// single simulation cycle runs**. A statically-unstable iterative
    /// configuration (`SFC-K05`) never reaches the executor.
    pub fn preflight_kernel2d<K: sf_kernels::AbstractOp2D + ?Sized>(
        &self,
        op: &K,
        design: &StencilDesign,
        wl: &Workload,
    ) -> Result<sf_check::CheckReport, SfError> {
        let cfg = sf_absint::AbsintConfig::default();
        let analysis = sf_absint::analyze_2d(op, &cfg);
        let mut rep = self.preflight(design, wl);
        rep.extend_diagnostics(sf_absint::kernel_diagnostics(
            &analysis,
            &design.spec,
            design.p,
            &cfg,
        ));
        rep.into_result().map_err(SfError::Check)
    }

    /// [`Workflow::preflight_kernel2d`] for 3D kernels.
    pub fn preflight_kernel3d<K: sf_kernels::AbstractOp3D + ?Sized>(
        &self,
        op: &K,
        design: &StencilDesign,
        wl: &Workload,
    ) -> Result<sf_check::CheckReport, SfError> {
        let cfg = sf_absint::AbsintConfig::default();
        let analysis = sf_absint::analyze_3d(op, &cfg);
        let mut rep = self.preflight(design, wl);
        rep.extend_diagnostics(sf_absint::kernel_diagnostics(
            &analysis,
            &design.spec,
            design.p,
            &cfg,
        ));
        rep.into_result().map_err(SfError::Check)
    }

    /// Step 3 — the winning design.
    pub fn best_design(
        &self,
        spec: &StencilSpec,
        wl: &Workload,
        niter: u64,
    ) -> Result<Candidate, SfError> {
        dse::best(&self.device, spec, wl, niter, &self.opts)?
            .ok_or_else(|| WorkflowError::NoFeasibleDesign { app: format!("{}", spec.app) }.into())
    }

    /// Step 4 — achieved performance of a design on the simulated U280.
    pub fn fpga_estimate(&self, design: &StencilDesign, wl: &Workload, niter: u64) -> SimReport {
        let plan = cycles::plan(&self.device, design, wl, niter);
        SimReport::from_plan(design, &plan, niter, power::fpga_power_w(&self.device, design))
    }

    /// The comparator: the same workload on the modeled V100.
    pub fn gpu_estimate(&self, spec: &StencilSpec, wl: &Workload, niter: u64) -> SimReport {
        gpu_report(&self.gpu, spec, wl, niter)
    }

    /// Step 5 — end-to-end comparison: best FPGA design vs the GPU.
    pub fn compare(
        &self,
        spec: &StencilSpec,
        wl: &Workload,
        niter: u64,
    ) -> Result<Comparison, SfError> {
        let best = self.best_design(spec, wl, niter)?;
        let fpga = self.fpga_estimate(&best.design, wl, niter);
        let gpu = self.gpu_estimate(spec, wl, niter);
        Ok(Comparison { design: best.design, prediction: best.prediction, fpga, gpu })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_kernels::AppId;

    #[test]
    fn workflow_end_to_end_poisson() {
        let wf = Workflow::u280_vs_v100();
        let spec = StencilSpec::poisson();
        let wl = Workload::D2 { nx: 300, ny: 300, batch: 1 };
        let feas = wf.feasibility(&spec, &wl).unwrap();
        assert!(feas.baseline_feasible);
        let cmp = wf.compare(&spec, &wl, 60_000).unwrap();
        assert_eq!(cmp.fpga.app, AppId::Poisson2D);
        assert!(cmp.fpga.runtime_s > 0.0 && cmp.gpu.runtime_s > 0.0);
        // paper Fig. 3a: baseline Poisson strongly favours the FPGA
        assert!(cmp.speedup() > 1.0, "speedup {}", cmp.speedup());
    }

    #[test]
    fn no_feasible_design_is_reported() {
        let mut wf = Workflow::u280_vs_v100();
        wf.opts.allow_tiling = false;
        wf.opts.v_candidates = vec![1];
        let spec = StencilSpec::jacobi();
        // baseline on a mesh whose planes exceed on-chip memory
        let wl = Workload::D3 { nx: 2500, ny: 2500, nz: 50, batch: 1 };
        let err = wf.best_design(&spec, &wl, 100).unwrap_err();
        assert!(matches!(err, SfError::Workflow(WorkflowError::NoFeasibleDesign { .. })));
        assert!(format!("{err}").contains("Jacobi"));
    }

    #[test]
    fn unstable_kernel_is_rejected_before_any_simulation() {
        use sf_fpga::design::{synthesize, ExecMode};
        use sf_fpga::MemKind;

        let wf = Workflow::u280_vs_v100();
        let spec = StencilSpec::jacobi();
        let wl = Workload::D3 { nx: 64, ny: 64, nz: 64, batch: 1 };
        let design =
            synthesize(&wf.device, &spec, 8, 4, ExecMode::Baseline, MemKind::Hbm, &wl).unwrap();
        // the canonical smoothing kernel passes the full kernel preflight
        wf.preflight_kernel3d(&sf_kernels::Jacobi3D::smoothing(), &design, &wl).unwrap();
        // an amplifying coefficient set is statically unstable: rejected
        // with SFC-K05 before any simulation cycles
        let bad = sf_kernels::Jacobi3D::with_coefficients([0.5; 7]);
        let err = wf.preflight_kernel3d(&bad, &design, &wl).unwrap_err();
        match err {
            SfError::Check(ce) => {
                assert!(ce.report.fired(sf_check::RuleId::KernelUnstable));
                assert!(format!("{ce}").contains("SFC-K05"), "{ce}");
            }
            other => panic!("expected SfError::Check, got {other:?}"),
        }
    }

    #[test]
    fn preflight_merges_kernel_rules_for_drifted_specs() {
        use sf_fpga::design::{synthesize, ExecMode};
        use sf_fpga::MemKind;

        let wf = Workflow::u280_vs_v100();
        let wl = Workload::D2 { nx: 100, ny: 100, batch: 1 };
        let mut spec = StencilSpec::poisson();
        let design =
            synthesize(&wf.device, &spec, 8, 4, ExecMode::Baseline, MemKind::Hbm, &wl).unwrap();
        assert!(!wf.preflight(&design, &wl).has_errors());
        // drift the spec's declared reach after synthesis: preflight's
        // K-rules catch what the design rules alone cannot see
        spec.order = 0;
        let mut drifted = design;
        drifted.spec = spec;
        let rep = wf.preflight(&drifted, &wl);
        assert!(rep.fired(sf_check::RuleId::KernelFootprint), "{}", rep.render());
    }

    #[test]
    fn gpu_estimate_standalone() {
        let wf = Workflow::u280_vs_v100();
        let wl = Workload::D3 { nx: 100, ny: 100, nz: 100, batch: 1 };
        let rep = wf.gpu_estimate(&StencilSpec::jacobi(), &wl, 1000);
        assert!(rep.platform.contains("V100"));
        assert!(rep.bandwidth_gbs > 100.0);
    }
}
