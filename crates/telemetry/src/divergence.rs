//! Predicted-vs-simulated cycle divergence — the paper's model-accuracy
//! claim (predictions within ±15 % of achieved) turned into a continuous,
//! per-run invariant instead of a one-off table.

use serde::{Deserialize, Serialize};

/// Cycle counts from the analytic model and from the simulated schedule
/// for the same (device, design, workload) run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Divergence {
    pub predicted_cycles: u64,
    pub simulated_cycles: u64,
}

impl Divergence {
    pub fn new(predicted_cycles: u64, simulated_cycles: u64) -> Self {
        Divergence { predicted_cycles, simulated_cycles }
    }

    /// Signed divergence in percent: positive when the model
    /// under-predicts (simulation ran longer than predicted).
    pub fn pct(&self) -> f64 {
        if self.predicted_cycles == 0 {
            return if self.simulated_cycles == 0 { 0.0 } else { f64::INFINITY };
        }
        (self.simulated_cycles as f64 - self.predicted_cycles as f64) / self.predicted_cycles as f64
            * 100.0
    }

    pub fn abs_pct(&self) -> f64 {
        self.pct().abs()
    }

    /// [`Divergence::pct`] clamped to a JSON-representable value: the
    /// infinite predicted-zero case becomes `None` instead of `±inf`, so
    /// serialized run records always round-trip. Never NaN.
    pub fn pct_finite(&self) -> Option<f64> {
        let p = self.pct();
        p.is_finite().then_some(p)
    }

    /// Signed simulated-minus-predicted cycle gap. Saturates at the `i64`
    /// range for (unrealistic) counts beyond 2⁶³.
    pub fn gap_cycles(&self) -> i64 {
        if self.simulated_cycles >= self.predicted_cycles {
            i64::try_from(self.simulated_cycles - self.predicted_cycles).unwrap_or(i64::MAX)
        } else {
            i64::try_from(self.predicted_cycles - self.simulated_cycles)
                .map(|d| -d)
                .unwrap_or(i64::MIN)
        }
    }

    /// True when the divergence is within `tol_pct` percent — the paper's
    /// headline tolerance is 15.0. A non-finite divergence (prediction was
    /// zero but the simulation ran) or a non-finite tolerance is never
    /// "within": NaN comparisons are false, and the infinite case is
    /// rejected explicitly rather than left to float semantics.
    pub fn within(&self, tol_pct: f64) -> bool {
        let p = self.abs_pct();
        p.is_finite() && tol_pct.is_finite() && p <= tol_pct
    }

    /// One-line human summary, emitted after every simulated run.
    pub fn summary(&self) -> String {
        format!(
            "model divergence: predicted {} cycles, simulated {} cycles ({:+.2}%)",
            self.predicted_cycles,
            self.simulated_cycles,
            self.pct()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_is_zero() {
        let d = Divergence::new(1000, 1000);
        assert_eq!(d.pct(), 0.0);
        assert!(d.within(15.0));
        assert!(d.within(0.0));
    }

    #[test]
    fn sign_convention() {
        // Simulation slower than prediction => positive.
        assert!(Divergence::new(1000, 1100).pct() > 0.0);
        assert!(Divergence::new(1000, 900).pct() < 0.0);
    }

    #[test]
    fn tolerance_boundary() {
        let d = Divergence::new(1000, 1150);
        assert!((d.pct() - 15.0).abs() < 1e-12);
        assert!(d.within(15.0));
        assert!(!Divergence::new(1000, 1151).within(15.0));
    }

    #[test]
    fn zero_prediction_guard() {
        assert_eq!(Divergence::new(0, 0).pct(), 0.0);
        assert!(Divergence::new(0, 5).pct().is_infinite());
        assert!(!Divergence::new(0, 5).within(15.0));
    }

    #[test]
    fn zero_cycle_run_is_exact_and_within_any_tolerance() {
        let d = Divergence::new(0, 0);
        assert_eq!(d.pct(), 0.0);
        assert_eq!(d.pct_finite(), Some(0.0));
        assert_eq!(d.gap_cycles(), 0);
        assert!(d.within(0.0));
        assert!(d.within(15.0));
        // the summary renders without panicking
        assert!(d.summary().contains("0 cycles"));
    }

    #[test]
    fn predicted_zero_is_never_within_and_never_nan() {
        let d = Divergence::new(0, 5);
        assert!(d.pct().is_infinite());
        assert!(!d.pct().is_nan());
        assert_eq!(d.pct_finite(), None);
        assert_eq!(d.gap_cycles(), 5);
        assert!(!d.within(15.0));
        assert!(!d.within(f64::MAX));
        assert!(d.summary().contains("inf"));
    }

    #[test]
    fn percentage_paths_are_nan_safe_across_edge_grid() {
        // every division path must yield a number or ±inf, never NaN
        for &pred in &[0u64, 1, 1000, u64::MAX] {
            for &sim in &[0u64, 1, 1000, u64::MAX] {
                let d = Divergence::new(pred, sim);
                assert!(!d.pct().is_nan(), "pct NaN at ({pred}, {sim})");
                assert!(!d.abs_pct().is_nan(), "abs_pct NaN at ({pred}, {sim})");
                if let Some(p) = d.pct_finite() {
                    assert!(p.is_finite());
                }
                // within() must return a plain bool under any tolerance
                let _ = d.within(f64::NAN);
                let _ = d.within(f64::INFINITY);
            }
        }
    }

    #[test]
    fn non_finite_tolerance_is_rejected() {
        let d = Divergence::new(1000, 1100);
        assert!(!d.within(f64::NAN));
        assert!(!d.within(f64::INFINITY));
        assert!(d.within(10.0));
    }

    #[test]
    fn gap_cycles_sign_and_saturation() {
        assert_eq!(Divergence::new(1000, 1100).gap_cycles(), 100);
        assert_eq!(Divergence::new(1100, 1000).gap_cycles(), -100);
        assert_eq!(Divergence::new(0, u64::MAX).gap_cycles(), i64::MAX);
        assert_eq!(Divergence::new(u64::MAX, 0).gap_cycles(), i64::MIN);
    }

    #[test]
    fn summary_mentions_both_counts() {
        let s = Divergence::new(200, 230).summary();
        assert!(s.contains("200"));
        assert!(s.contains("230"));
        assert!(s.contains('%'));
    }
}
