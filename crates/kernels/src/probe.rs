//! Probe execution: run a kernel's generic update on a recording accessor.
//!
//! The probe is the footprint-extraction half of the abstract-interpretation
//! story (see [`crate::domain`]): instead of trusting a kernel's declared
//! radius, we hand its `update` an accessor that *records every offset it
//! reads* before delegating to a caller-supplied value generator. Because
//! `update` is the one true copy of the kernel math, the recorded set is the
//! kernel's real access footprint — what the window buffers must actually
//! cover — and any abstract domain can ride along in the generated values
//! (an op-counting domain yields footprint + op tally in a single pass).
//!
//! Offsets land in a `BTreeSet`, so iteration order is deterministic
//! regardless of the kernel's internal evaluation order.

use crate::domain::{AbstractOp2D, AbstractOp3D, AbstractValue};
use crate::rtm::{RtmStage, RTM_PACKED_LANES};
use std::cell::RefCell;
use std::collections::BTreeSet;

/// Run a 2D kernel once, recording every `(dx, dy)` it reads. Values come
/// from `gen`; returns the update result and the read set.
pub fn record_2d<V, K, G>(op: &K, gen: G) -> (V, BTreeSet<(i32, i32)>)
where
    V: AbstractValue,
    K: AbstractOp2D + ?Sized,
    G: Fn(i32, i32) -> V,
{
    let reads = RefCell::new(BTreeSet::new());
    let at = |dx: i32, dy: i32| {
        reads.borrow_mut().insert((dx, dy));
        gen(dx, dy)
    };
    let v = op.update(&at);
    (v, reads.into_inner())
}

/// Run a 3D kernel once, recording every `(dx, dy, dz)` it reads.
pub fn record_3d<V, K, G>(op: &K, gen: G) -> (V, BTreeSet<(i32, i32, i32)>)
where
    V: AbstractValue,
    K: AbstractOp3D + ?Sized,
    G: Fn(i32, i32, i32) -> V,
{
    let reads = RefCell::new(BTreeSet::new());
    let at = |dx: i32, dy: i32, dz: i32| {
        reads.borrow_mut().insert((dx, dy, dz));
        gen(dx, dy, dz)
    };
    let v = op.update(&at);
    (v, reads.into_inner())
}

/// Run one fused RTM stage (20-lane packed stream) once, recording every
/// offset it reads. Lane values come from `gen(dx, dy, dz)`.
pub fn record_rtm_stage<V, G>(
    stage: &RtmStage,
    gen: G,
) -> ([V; RTM_PACKED_LANES], BTreeSet<(i32, i32, i32)>)
where
    V: AbstractValue,
    G: Fn(i32, i32, i32) -> [V; RTM_PACKED_LANES],
{
    let reads = RefCell::new(BTreeSet::new());
    let at = |dx: i32, dy: i32, dz: i32| {
        reads.borrow_mut().insert((dx, dy, dz));
        gen(dx, dy, dz)
    };
    let v = stage.update_packed(&at);
    (v, reads.into_inner())
}

/// Chebyshev radius of a 2D read set: the window reach the kernel needs.
pub fn radius_2d(reads: &BTreeSet<(i32, i32)>) -> usize {
    reads
        .iter()
        .map(|&(dx, dy)| dx.unsigned_abs().max(dy.unsigned_abs()) as usize)
        .max()
        .unwrap_or(0)
}

/// Chebyshev radius of a 3D read set.
pub fn radius_3d(reads: &BTreeSet<(i32, i32, i32)>) -> usize {
    reads
        .iter()
        .map(|&(dx, dy, dz)| {
            dx.unsigned_abs().max(dy.unsigned_abs()).max(dz.unsigned_abs()) as usize
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtm::RtmParams;
    use crate::{Jacobi3D, Poisson2D};

    #[test]
    fn poisson_footprint_is_the_5_point_star() {
        let (v, reads) = record_2d(&Poisson2D, |_, _| 1.0f32);
        assert_eq!(v, 1.0); // fixed point of the smoothing kernel
        let expect: BTreeSet<_> = [(-1, 0), (0, -1), (0, 0), (0, 1), (1, 0)].into_iter().collect();
        assert_eq!(reads, expect);
        assert_eq!(radius_2d(&reads), 1);
    }

    #[test]
    fn jacobi_footprint_is_the_7_point_star() {
        let (_, reads) = record_3d(&Jacobi3D::smoothing(), |_, _, _| 0.5f32);
        assert_eq!(reads.len(), 7);
        assert_eq!(radius_3d(&reads), 1);
        assert!(reads.contains(&(0, 0, 0)) && reads.contains(&(0, 0, -1)));
    }

    #[test]
    fn rtm_stage_footprint_reaches_radius_4_on_every_axis() {
        for s in 1..=4 {
            let stage = RtmStage::new(s, RtmParams::default());
            let (_, reads) = record_rtm_stage(&stage, |_, _, _| [0.0f32; RTM_PACKED_LANES]);
            assert_eq!(radius_3d(&reads), 4, "stage {s}");
            assert!(reads.contains(&(4, 0, 0)) && reads.contains(&(0, 0, -4)));
            // pure star: no diagonal reads
            for &(dx, dy, dz) in &reads {
                let nonzero = (dx != 0) as u32 + (dy != 0) as u32 + (dz != 0) as u32;
                assert!(nonzero <= 1, "non-star read ({dx},{dy},{dz})");
            }
        }
    }

    #[test]
    fn empty_read_set_has_radius_zero() {
        assert_eq!(radius_2d(&BTreeSet::new()), 0);
        assert_eq!(radius_3d(&BTreeSet::new()), 0);
    }
}
