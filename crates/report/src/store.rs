//! The run store: append-only JSONL of [`RunRecord`]s.
//!
//! One record per line keeps appends atomic-enough for sequential CLI
//! invocations, trivially diffable, and streamable with `jq`. Loads are
//! schema-checked: a record from a different schema version is a hard
//! error naming the line, never a silent misread.

use crate::error::ReportError;
use crate::record::{RunRecord, RECORD_SCHEMA};
use std::io::Write;
use std::path::Path;

/// Append one record to the store at `path`, creating the file (and not
/// truncating existing records) as needed.
pub fn append_record(path: &Path, rec: &RunRecord) -> Result<(), ReportError> {
    let line =
        serde_json::to_string(rec).map_err(|e| ReportError::Encode { msg: e.to_string() })?;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| ReportError::io(path, e))?;
    writeln!(f, "{line}").map_err(|e| ReportError::io(path, e))?;
    Ok(())
}

/// Load every record from the store at `path`. Blank lines are skipped;
/// malformed JSON or a schema mismatch fails with the 1-based line number.
pub fn load_records(path: &Path) -> Result<Vec<RunRecord>, ReportError> {
    let body = std::fs::read_to_string(path).map_err(|e| ReportError::io(path, e))?;
    parse_records(&body)
}

/// Parse a JSONL document into records (the file-less core of
/// [`load_records`], used directly by tests and in-memory pipelines).
pub fn parse_records(body: &str) -> Result<Vec<RunRecord>, ReportError> {
    let mut out = Vec::new();
    for (i, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let rec: RunRecord = serde_json::from_str(line)
            .map_err(|e| ReportError::Parse { line: i + 1, msg: e.to_string() })?;
        if rec.schema != RECORD_SCHEMA {
            return Err(ReportError::Schema {
                line: i + 1,
                found: rec.schema,
                expected: RECORD_SCHEMA,
            });
        }
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RunKind;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sf_report_store_{name}_{}.jsonl", std::process::id()))
    }

    #[test]
    fn append_then_load_roundtrips_in_order() {
        let path = tmpfile("roundtrip");
        std::fs::remove_file(&path).ok();
        let mut a = RunRecord::empty(RunKind::Profile, "poisson2d");
        a.measured_cycles = 100;
        let mut b = RunRecord::empty(RunKind::Dse, "jacobi3d");
        b.predicted_cycles = 7;
        append_record(&path, &a).unwrap();
        append_record(&path, &b).unwrap();
        let got = load_records(&path).unwrap();
        assert_eq!(got, vec![a, b]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn blank_lines_are_skipped() {
        let r = RunRecord::empty(RunKind::Profile, "rtm3d");
        let line = serde_json::to_string(&r).unwrap();
        let body = format!("\n{line}\n\n{line}\n");
        assert_eq!(parse_records(&body).unwrap().len(), 2);
    }

    #[test]
    fn malformed_line_is_rejected_with_its_number() {
        let r = RunRecord::empty(RunKind::Profile, "poisson2d");
        let line = serde_json::to_string(&r).unwrap();
        let body = format!("{line}\nnot json\n");
        let err = parse_records(&body).unwrap_err();
        assert!(format!("{err}").contains("line 2"), "{err}");
    }

    #[test]
    fn foreign_schema_is_rejected_not_misread() {
        let mut r = RunRecord::empty(RunKind::Profile, "poisson2d");
        r.schema = "sf-run-record/v999".into();
        let body = serde_json::to_string(&r).unwrap();
        let err = parse_records(&body).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("v999") && msg.contains(RECORD_SCHEMA), "{msg}");
    }

    #[test]
    fn missing_store_is_an_io_error_naming_the_path() {
        let err = load_records(std::path::Path::new("/nonexistent/runs.jsonl")).unwrap_err();
        assert!(format!("{err}").contains("/nonexistent/runs.jsonl"));
    }
}
