//! Bring your own stencil: the workflow applied to a kernel the paper never
//! saw — an anisotropic 4th-order heat smoother defined with the
//! [`StarStencil2D`] builder, pushed through feasibility → DSE → simulated
//! synthesis → bit-exact execution.
//!
//! ```text
//! cargo run --release --example custom_stencil
//! ```

use sf_core::prelude::*;
use sf_fpga::{design::synthesize, exec2d};
use sf_kernels::{reference, StarStencil2D};
use sf_mesh::norms;

fn main() {
    // ── define the kernel: 4th-order 9-point star, diffusion dt·κ = 0.05,
    //    plus identity (explicit Euler step of the heat equation) ──────────
    let kernel = StarStencil2D::laplace9_order4(0.05, 1.0);
    let spec = kernel.spec();
    println!(
        "custom kernel: {} points, order D = {}, G_dsp = {}",
        kernel.points().len(),
        spec.order,
        spec.gdsp()
    );

    // ── the workflow treats it like any application ──────────────────────
    let wf = Workflow::u280_vs_v100();
    let wl = Workload::D2 { nx: 512, ny: 256, batch: 1 };
    let feas = wf.feasibility(&spec, &wl).expect("valid workload");
    println!(
        "feasibility: p_dsp = {}, p_mem = {}, baseline feasible = {}",
        feas.p_dsp, feas.p_mem, feas.baseline_feasible
    );
    let best = wf.best_design(&spec, &wl, 10_000).expect("design exists");
    println!(
        "DSE winner: V={} p={} {:?} @ {:.0} MHz → predicted {:.2} ms / {:.0} GB/s",
        best.design.v,
        best.design.p,
        best.design.mode,
        best.design.freq_mhz(),
        best.prediction.runtime_s * 1e3,
        best.prediction.bandwidth_gbs
    );

    // ── execute through the dataflow simulator, bit-exact vs reference ───
    let mesh = Mesh2D::<f32>::from_fn(512, 256, |x, y| {
        // two hot ridges diffusing into a cold plate
        if (96..160).contains(&x) || (150..182).contains(&y) {
            1.0
        } else {
            0.0
        }
    });
    let design = synthesize(
        &wf.device,
        &spec,
        best.design.v,
        best.design.p.min(8), // short numeric run: shallow chain is plenty
        ExecMode::Baseline,
        MemKind::Hbm,
        &wl,
    )
    .unwrap();
    let (out, rep) =
        exec2d::simulate_mesh_2d(&wf.device, &design, std::slice::from_ref(&kernel), &mesh, 12);
    let golden = reference::run_2d(&kernel, &mesh, 12);
    assert!(
        norms::bit_equal(out.as_slice(), golden.as_slice()),
        "simulator must match the golden reference bit-exactly"
    );
    println!(
        "\nexecuted 12 steps on 512×256 through the window-buffer pipeline: \
         bit-exact vs golden reference ✓  ({} cycles, {:.0} GB/s)",
        rep.total_cycles, rep.bandwidth_gbs
    );

    // ── and the comparison the workflow exists for ───────────────────────
    let cmp = wf.compare(&spec, &wl, 10_000).unwrap();
    println!("\n{}", cmp.verdict());
}
