//! End-to-end tests for the `sfstencil` binary.

use serde::Value;
use std::process::Command;

fn sfstencil() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sfstencil"))
}

#[test]
fn unknown_subcommand_exits_2_with_usage() {
    let out = sfstencil().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown command 'frobnicate'"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
    assert!(stderr.contains("profile"), "usage must list profile: {stderr}");
}

#[test]
fn missing_command_exits_2() {
    let out = sfstencil().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn profile_writes_loadable_chrome_trace() {
    let path = std::env::temp_dir().join("sfstencil_cli_trace.json");
    let out = sfstencil()
        .args(["profile", "--app", "poisson", "--mesh", "200x100", "--iters", "100", "--trace-out"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("stall attribution"), "{stdout}");
    assert!(stdout.contains("model divergence"), "{stdout}");

    let doc: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
    assert!(events.len() > 10);
    for e in events {
        assert!(e.get("ph").and_then(Value::as_str).is_some());
        assert!(e.get("pid").and_then(Value::as_u64).is_some());
        assert!(e.get("name").and_then(Value::as_str).is_some());
        if e.get("ph").and_then(Value::as_str) == Some("X") {
            assert!(e.get("ts").is_some() && e.get("dur").is_some());
            assert!(e.get("tid").and_then(Value::as_u64).is_some());
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn profile_json_emits_metrics_document() {
    let out = sfstencil()
        .args(["profile", "--app", "poisson", "--mesh", "200x100", "--iters", "100", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let doc: Value = serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).unwrap();
    assert!(doc.get("stalls").is_some());
    let div = doc.get("divergence").expect("divergence emitted on every run");
    assert!(div.get("pct").is_some());
}

#[test]
fn feasibility_json_parses() {
    let out = sfstencil()
        .args(["feasibility", "--app", "jacobi", "--mesh", "100x100x100", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let doc: Value = serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).unwrap();
    assert!(doc.get("baseline_feasible").is_some());
}

#[test]
fn invalid_numeric_flags_exit_2() {
    for (flag, val) in [("--iters", "0"), ("--batch", "-3"), ("--top", "zebra"), ("--jobs", "0")] {
        let out = sfstencil()
            .args(["dse", "--app", "poisson", "--mesh", "64x64", flag, val])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "{flag}={val} must be rejected");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains(flag), "error names the flag: {stderr}");
    }
}

#[test]
fn unknown_exec_engine_exits_2() {
    // both flag surfaces: the main parser (profile) and the faults
    // subcommand's own flag set
    let out = sfstencil()
        .args(["profile", "--app", "poisson", "--mesh", "64x32", "--iters", "10", "--exec", "simd"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "profile must reject --exec simd");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--exec must be scalar or fast (got 'simd')"), "{stderr}");

    let out = sfstencil().args(["faults", "--exec", "vector"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "faults must reject --exec vector");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--exec must be scalar or fast (got 'vector')"), "{stderr}");
}

#[test]
fn devices_flag_misuse_exits_2_on_every_subcommand() {
    // `--devices 0` mirrors `--checkpoint-every 0`: rejected up front on
    // all three subcommands that accept it, never clamped to one device
    for sub in [
        vec!["profile", "--app", "poisson", "--mesh", "64x32", "--iters", "10"],
        vec!["dse", "--app", "poisson", "--mesh", "64x64"],
        vec!["faults", "--app", "poisson2d", "--trials", "1"],
    ] {
        let out = sfstencil().args(&sub).args(["--devices", "0"]).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{sub:?} must reject --devices 0");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("--devices must be a positive integer"), "{stderr}");
    }
    // unknown link model names are usage errors too
    let out = sfstencil()
        .args(["profile", "--app", "poisson", "--mesh", "64x32", "--iters", "10"])
        .args(["--devices", "2", "--link", "infiniband"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--link must be aurora or pcie"), "{stderr}");
}

#[test]
fn sharding_narrower_than_the_halo_exits_2_with_sfc_x() {
    // shard-count = mesh extent leaves 1-unit slabs — always narrower
    // than the halo, so the SFC-X pre-flight must reject it (2D and 3D)
    for (app, mesh, devices) in [("poisson", "64x300", "300"), ("jacobi", "16x12x10", "10")] {
        let out = sfstencil()
            .args(["profile", "--app", app, "--mesh", mesh, "--iters", "3", "--devices", devices])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "{app} sharded to 1-unit slabs must fail");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("SFC-X01"), "error cites the sharding rule: {stderr}");
        assert!(stderr.contains("halo"), "{stderr}");
    }
    // the faults campaign designs get the same gate
    let out = sfstencil()
        .args(["faults", "--app", "rtm3d", "--trials", "1", "--devices", "4"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "rtm3d campaign mesh cannot shard 4 ways");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--devices 4 is illegal"), "{stderr}");
}

#[test]
fn degenerate_meshes_fail_cleanly_through_the_profile_path() {
    // 1×1 and 1-wide meshes have no feasible design: a typed workflow
    // error and exit 2, not a panic — single- and multi-device alike
    for (mesh, devices) in [("1x1", "1"), ("1x300", "1"), ("1x1", "2"), ("1x300", "2")] {
        let out = sfstencil()
            .args(["profile", "--app", "poisson", "--mesh", mesh, "--iters", "3"])
            .args(["--devices", devices])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "{mesh} d={devices} must fail cleanly");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("no feasible FPGA design"), "{stderr}");
        assert!(!stderr.contains("panicked"), "{stderr}");
    }
}

#[test]
fn sharded_profile_prints_devices_and_exchange() {
    let out = sfstencil()
        .args(["profile", "--app", "poisson", "--mesh", "64x300", "--iters", "5"])
        .args(["--devices", "2"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("devices            : 2"), "{stdout}");
    assert!(stdout.contains("exchange"), "stall table lists exchange: {stdout}");
    assert!(stdout.contains("behavioral"), "small sharded meshes still stream: {stdout}");
}

#[test]
fn dse_devices_sweep_lists_device_counts() {
    let out = sfstencil()
        .args(["dse", "--app", "poisson", "--mesh", "400x400", "--iters", "2000"])
        .args(["--devices", "4", "--top", "8", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let doc: Value = serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).unwrap();
    let cands = doc.as_array().unwrap();
    assert!(!cands.is_empty());
    let devs: Vec<u64> =
        cands.iter().map(|c| c.get("devices").and_then(Value::as_u64).unwrap()).collect();
    assert!(devs.iter().any(|&d| d > 1), "sweep must surface sharded candidates: {devs:?}");
    assert!(devs.iter().all(|&d| [1, 2, 4].contains(&d)), "{devs:?}");
}

#[test]
fn profile_output_is_identical_across_exec_engines() {
    let run = |engine: &str| {
        let out = sfstencil()
            .args([
                "profile", "--app", "poisson", "--mesh", "64x32", "--batch", "4", "--iters", "40",
                "--exec", engine, "--json",
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8(out.stdout).unwrap()
    };
    assert_eq!(run("fast"), run("scalar"), "profile JSON must not depend on --exec");
}

#[test]
fn check_paper_designs_are_clean() {
    for (app, mesh, v, p) in [
        ("poisson", "400x400", "8", "60"),
        ("jacobi", "300x300x300", "8", "29"),
        ("rtm", "64x64x64", "1", "3"),
    ] {
        let out = sfstencil()
            .args(["check", "--app", app, "--mesh", mesh, "--v", v, "--p", p])
            .output()
            .unwrap();
        assert!(out.status.success(), "{app}: {}", String::from_utf8_lossy(&out.stdout));
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(stdout.contains("ok: no design-rule violations"), "{app}: {stdout}");
    }
}

#[test]
fn check_without_v_p_verifies_the_dse_selection() {
    let out =
        sfstencil().args(["check", "--app", "poisson", "--mesh", "400x400"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("DSE-selected"), "{stdout}");
    assert!(stdout.contains("ok: no design-rule violations"), "{stdout}");
}

#[test]
fn check_seeded_violations_exit_1_with_the_right_rule() {
    for (p, extra, rule) in [
        ("60", Some(["--fifo-depth", "4"]), "SFC-F01"),
        ("60", Some(["--window-units", "100"]), "SFC-W01"),
        ("500", None, "SFC-S01"),
    ] {
        let mut args = vec!["check", "--app", "poisson", "--mesh", "400x400", "--v", "8", "--p", p];
        if let Some(extra) = extra {
            args.extend(extra.iter());
        }
        let out = sfstencil().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(1), "{args:?}");
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(stdout.contains(rule), "{args:?}: {stdout}");
        assert!(stdout.contains("error"), "{stdout}");
    }
}

#[test]
fn check_tile_halo_violation_exits_1() {
    let out = sfstencil()
        .args([
            "check",
            "--app",
            "poisson",
            "--mesh",
            "15000x15000",
            "--v",
            "8",
            "--p",
            "60",
            "--tile",
            "50",
            "--mem",
            "ddr4",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("SFC-T01"), "{stdout}");
}

/// Golden file location anchored to the crate, not the invocation CWD, so
/// the test passes from any working directory (workspace root, crate dir,
/// CI). Regenerate with `SF_UPDATE_GOLDEN=1 cargo test -p sf-bench`.
const CHECK_GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/check_poisson_fifo4.json");

#[test]
fn check_json_matches_golden() {
    let out = sfstencil()
        .args([
            "check",
            "--app",
            "poisson",
            "--mesh",
            "400x400",
            "--v",
            "8",
            "--p",
            "60",
            "--fifo-depth",
            "4",
            "--json",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "seeded deadlock must exit 1");
    let got = String::from_utf8(out.stdout).unwrap();
    if std::env::var_os("SF_UPDATE_GOLDEN").is_some() {
        std::fs::write(CHECK_GOLDEN_PATH, &got).unwrap();
    }
    let golden = std::fs::read_to_string(CHECK_GOLDEN_PATH).unwrap();
    assert_eq!(got.trim(), golden.trim(), "check --json output drifted from the golden file");
    // and the document is structurally sound
    let doc: Value = serde_json::from_str(&got).unwrap();
    let diags = doc.get("diagnostics").and_then(Value::as_array).unwrap();
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].get("rule").and_then(Value::as_str), Some("FifoDeadlock"));
    assert_eq!(diags[0].get("severity").and_then(Value::as_str), Some("Error"));
}

#[test]
fn check_explain_prints_the_catalogue_entry() {
    for code in ["SFC-K05", "sfc-k05"] {
        let out = sfstencil().args(["check", "--explain", code]).output().unwrap();
        assert!(out.status.success(), "{code}: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(stdout.contains("SFC-K05"), "{stdout}");
        assert!(stdout.contains("[error]"), "{stdout}");
        assert!(stdout.contains("von Neumann"), "{stdout}");
        assert!(stdout.contains("fix"), "{stdout}");
    }
    // every catalogued rule must explain itself (no --app/--mesh needed)
    for code in ["SFC-P01", "SFC-F01", "SFC-K01", "SFC-K02", "SFC-K03", "SFC-K04"] {
        let out = sfstencil().args(["check", "--explain", code]).output().unwrap();
        assert!(out.status.success(), "{code} must be explainable");
        assert!(String::from_utf8(out.stdout).unwrap().contains(code));
    }
}

#[test]
fn check_explain_unknown_rule_exits_2_with_suggestions() {
    let out = sfstencil().args(["check", "--explain", "SFC-ZZZ"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown rule 'SFC-ZZZ'"), "{stderr}");
    assert!(stderr.contains("known rules:"), "{stderr}");
    assert!(stderr.contains("SFC-P01") && stderr.contains("SFC-K05"), "{stderr}");
    // --explain with no value is a usage error, not a crash
    let out = sfstencil().args(["check", "--explain"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("--explain needs a rule code"));
}

#[test]
fn check_assume_order_seeds_a_footprint_violation() {
    let out = sfstencil()
        .args([
            "check",
            "--app",
            "poisson",
            "--mesh",
            "400x400",
            "--v",
            "8",
            "--p",
            "60",
            "--assume-order",
            "0",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("SFC-K01"), "{stdout}");
    assert!(stdout.contains("radius 1"), "{stdout}");
}

#[test]
fn check_assume_gdsp_seeds_an_opcount_violation() {
    let out = sfstencil()
        .args([
            "check",
            "--app",
            "jacobi",
            "--mesh",
            "300x300x300",
            "--v",
            "8",
            "--p",
            "29",
            "--assume-gdsp",
            "50",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("SFC-K02"), "{stdout}");
    assert!(stdout.contains("G_dsp 33"), "probed truth must be named: {stdout}");
    assert!(stdout.contains("G_dsp 50"), "drifted declaration must be named: {stdout}");
}

#[test]
fn check_rejects_malformed_assume_flags() {
    for (flag, val) in [("--assume-order", "-1"), ("--assume-gdsp", "1"), ("--assume-gdsp", "x")] {
        let out = sfstencil()
            .args(["check", "--app", "poisson", "--mesh", "64x64", "--v", "8", "--p", "4"])
            .args([flag, val])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "{flag}={val} must be rejected");
        assert!(String::from_utf8(out.stderr).unwrap().contains(flag));
    }
}

/// Golden snapshot of `check --json` with a kernel-analysis (SFC-K02)
/// diagnostic, proving the K-rules serialize through the same report as the
/// design rules. Regenerate with `SF_UPDATE_GOLDEN=1 cargo test -p sf-bench`.
const CHECK_K_GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/check_jacobi_gdsp34.json");

#[test]
fn check_json_with_kernel_rules_matches_golden() {
    // G_dsp 34 vs the probed 33: outside the 2 % model tolerance (fires
    // SFC-K02) but inside the device's DSP budget, so the kernel rule is
    // the only diagnostic in the report
    let out = sfstencil()
        .args([
            "check",
            "--app",
            "jacobi",
            "--mesh",
            "300x300x300",
            "--v",
            "8",
            "--p",
            "29",
            "--assume-gdsp",
            "34",
            "--json",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "seeded op-count drift must exit 1");
    let got = String::from_utf8(out.stdout).unwrap();
    if std::env::var_os("SF_UPDATE_GOLDEN").is_some() {
        std::fs::write(CHECK_K_GOLDEN_PATH, &got).unwrap();
    }
    let golden = std::fs::read_to_string(CHECK_K_GOLDEN_PATH).unwrap();
    assert_eq!(got.trim(), golden.trim(), "check --json output drifted from the golden file");
    let doc: Value = serde_json::from_str(&got).unwrap();
    let diags = doc.get("diagnostics").and_then(Value::as_array).unwrap();
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].get("rule").and_then(Value::as_str), Some("KernelOpCount"));
    assert_eq!(diags[0].get("severity").and_then(Value::as_str), Some("Error"));
    assert_eq!(diags[0].get("location").and_then(Value::as_str), Some("kernel"));
}

#[test]
fn faults_preflight_reports_before_the_campaign() {
    let out = sfstencil()
        .args(["faults", "--app", "poisson2d", "--rate", "1000000", "--trials", "1"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("preflight poisson2d: ok"),
        "pre-flight verdict must precede the campaign: {stderr}"
    );
}

#[test]
fn faults_campaign_accounts_for_every_injection() {
    let out = sfstencil()
        .args(["faults", "--app", "poisson2d", "--seed", "42", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let doc: Value = serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).unwrap();
    assert_eq!(doc.get("campaign_seed").and_then(Value::as_u64), Some(42));
    let s = doc.get("summary").expect("summary block");
    let injected = s.get("injected").and_then(Value::as_u64).unwrap();
    assert!(injected > 0, "the campaign must inject faults");
    assert_eq!(
        s.get("detected_or_recovered").and_then(Value::as_u64),
        Some(injected),
        "every injected fault detected or recovered"
    );
    assert_eq!(s.get("silent_wrong").and_then(Value::as_u64), Some(0));
    assert_eq!(s.get("recovery_failed").and_then(Value::as_u64), Some(0));
}

#[test]
fn faults_campaign_is_reproducible_per_seed() {
    let run = || {
        sfstencil()
            .args([
                "faults", "--app", "jacobi3d", "--seed", "7", "--rate", "1000000", "--trials", "1",
                "--json",
            ])
            .output()
            .unwrap()
    };
    let (a, b) = (run(), run());
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout, b.stdout, "same seed must reproduce byte-identical output");
    let other = sfstencil()
        .args([
            "faults", "--app", "jacobi3d", "--seed", "8", "--rate", "1000000", "--trials", "1",
            "--json",
        ])
        .output()
        .unwrap();
    assert_ne!(a.stdout, other.stdout, "a different seed changes the schedule");
}

#[test]
fn faults_jobs_output_is_byte_identical_to_serial() {
    let run = |jobs: &str| {
        sfstencil()
            .args([
                "faults",
                "--app",
                "poisson2d",
                "--seed",
                "42",
                "--rate",
                "1000000",
                "--trials",
                "1",
                "--jobs",
                jobs,
                "--json",
            ])
            .output()
            .unwrap()
    };
    let serial = run("1");
    assert!(serial.status.success(), "{}", String::from_utf8_lossy(&serial.stderr));
    let par = run("3");
    assert!(par.status.success());
    assert_eq!(serial.stdout, par.stdout, "--jobs must not change the campaign report");
}

#[test]
fn profile_jobs_trace_is_byte_identical_to_serial() {
    let run = |jobs: &str| {
        let out = sfstencil()
            .args([
                "profile", "--app", "poisson", "--mesh", "64x32", "--batch", "6", "--iters", "50",
                "--jobs", jobs, "--json",
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        out.stdout
    };
    // The `"parallel"` provenance block exists precisely to record the
    // worker count, so it is stripped before comparing; everything else
    // must be byte-identical.
    let strip_parallel = |bytes: Vec<u8>| -> (String, Option<u64>) {
        let s = String::from_utf8(bytes).unwrap();
        let Value::Object(mut fields) = serde_json::parse_value(&s).unwrap() else {
            panic!("metrics must be a JSON object")
        };
        let jobs = fields
            .iter()
            .find(|(k, _)| k == "parallel")
            .and_then(|(_, v)| v.get("jobs"))
            .and_then(Value::as_u64);
        fields.retain(|(k, _)| k != "parallel");
        (serde_json::to_string(&Value::Object(fields)).unwrap(), jobs)
    };
    let (serial, serial_jobs) = strip_parallel(run("1"));
    let (par, par_jobs) = strip_parallel(run("4"));
    assert_eq!(serial, par, "--jobs must not change the profile metrics");
    assert_eq!(serial_jobs, Some(1));
    assert_eq!(par_jobs, Some(4), "provenance block must record the actual worker count");
}

#[test]
fn dse_jobs_ranking_is_identical_to_serial() {
    let run = |jobs: &str| {
        let out = sfstencil()
            .args([
                "dse", "--app", "poisson", "--mesh", "96x96", "--iters", "100", "--jobs", jobs,
                "--json",
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        out.stdout
    };
    assert_eq!(run("1"), run("3"), "--jobs must not change the DSE ranking");
}

#[test]
fn faults_rejects_bad_arguments() {
    for args in [
        vec!["faults", "--app", "fft"],
        vec!["faults", "--seed", "banana"],
        vec!["faults", "--rate", "0"],
        vec!["faults", "--trials", "0"],
        vec!["faults", "--jobs", "0"],
        vec!["faults", "--recovery", "prayer"],
        vec!["faults", "--kind", "cosmic-ray"],
    ] {
        let out = sfstencil().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?} must be rejected");
        assert!(String::from_utf8(out.stderr).unwrap().contains("usage:"));
    }
}

#[test]
fn faults_rejects_zero_checkpoint_interval() {
    let out = sfstencil()
        .args(["faults", "--recovery", "rollback", "--checkpoint-every", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("--checkpoint-every must be a positive pass count"),
        "error must name the flag and constraint: {stderr}"
    );
}

#[test]
fn faults_rejects_negative_and_overflowing_retry_counts() {
    for bad in ["-1", "4294967296", "lots"] {
        let out = sfstencil()
            .args(["faults", "--recovery", "rollback", "--max-retries", bad])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "--max-retries {bad} must be rejected");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(
            stderr.contains("--max-retries must be an integer in 0..=4294967295"),
            "error must state the accepted range: {stderr}"
        );
    }
}

#[test]
fn faults_rollback_campaign_recovers_in_run() {
    // The CI recovery-smoke shape: SDC + FIFO-corruption kinds under
    // `--recovery rollback --checkpoint-every 4` on one app, JSON out.
    let out = sfstencil()
        .args([
            "faults",
            "--app",
            "poisson2d",
            "--seed",
            "42",
            "--rate",
            "1000000",
            "--trials",
            "1",
            "--kind",
            "bitflip",
            "--kind",
            "fifo-corrupt",
            "--recovery",
            "rollback",
            "--checkpoint-every",
            "4",
            "--json",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let doc: Value = serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).unwrap();
    let s = doc.get("summary").expect("summary block");
    let injected = s.get("injected").and_then(Value::as_u64).unwrap();
    assert!(injected > 0, "saturation rate must inject");
    assert_eq!(
        s.get("rollback_recovered").and_then(Value::as_u64),
        Some(injected),
        "every injected SDC fault must recover in-run via rollback"
    );
    assert!(s.get("sdc_detected").and_then(Value::as_u64).unwrap() > 0);
    for t in doc.get("trials").and_then(Value::as_array).unwrap() {
        assert_eq!(t.get("recovery").and_then(Value::as_str), Some("Rollback"), "{t:?}");
    }
}
