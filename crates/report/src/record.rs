//! The durable, schema-versioned **RunRecord**: one line of JSONL per
//! profile/dse/faults/bench invocation, capturing everything the cross-run
//! consumers (roofline analyzer, regression gate, trajectory report) need
//! without re-running anything.

use serde::{Deserialize, Serialize};
use sf_kernels::{AppId, StencilSpec};
use sf_telemetry::StallBreakdown;
use std::collections::BTreeMap;

/// Schema tag stamped into every record. Bump on any breaking field
/// change; loaders reject records from other schemas instead of silently
/// misreading them.
pub const RECORD_SCHEMA: &str = "sf-run-record/v1";

/// Which workflow invocation produced a record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RunKind {
    /// `sfstencil profile` — simulated execution with telemetry; carries
    /// both predicted and measured cycles.
    Profile,
    /// `sfstencil dse` — model-only exploration; the best candidate's
    /// prediction is recorded as both predicted and measured cycles so
    /// dse-vs-dse comparisons gate the *model's* trajectory.
    Dse,
    /// `sfstencil faults` — fault-injection campaign; cycle fields are
    /// zero, the payload is the fault counters.
    Faults,
    /// Benchmark harness runs.
    Bench,
}

impl RunKind {
    /// Lowercase stable label used in config keys.
    pub fn label(&self) -> &'static str {
        match self {
            RunKind::Profile => "profile",
            RunKind::Dse => "dse",
            RunKind::Faults => "faults",
            RunKind::Bench => "bench",
        }
    }
}

/// One run of the workflow, as appended to a run store (JSONL).
///
/// Every floating-point field is finite by construction — non-finite
/// values (e.g. an infinite divergence when the prediction was zero) are
/// stored as `None` so records always round-trip through JSON.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Always [`RECORD_SCHEMA`]; checked on load.
    pub schema: String,
    /// What produced this record.
    pub kind: RunKind,
    /// Git commit of the producing tree, when detectable (`SF_GIT_SHA`
    /// env override, then `.git/HEAD`).
    pub git_sha: Option<String>,
    /// Canonical app slug: `poisson2d` | `jacobi3d` | `rtm3d` | `custom`.
    pub app: String,
    /// Mesh dimensions, fastest first: `[nx, ny]` or `[nx, ny, nz]`.
    pub dims: Vec<u64>,
    /// Batched meshes (1 = single problem).
    pub batch: u64,
    /// Iterations solved.
    pub niter: u64,
    /// Vectorization factor of the executed design.
    pub v: u64,
    /// Iterative unroll factor of the executed design.
    pub p: u64,
    /// Execution mode, rendered (`Baseline`, `Batched { b: 6 }`, …).
    pub mode: String,
    /// Tile width `M` for tiled modes.
    pub tile_m: Option<u64>,
    /// Tile depth `N` for 2D-tiled 3D modes.
    pub tile_n: Option<u64>,
    /// External memory binding: `hbm` | `ddr4`.
    pub mem: String,
    /// Accelerator cards the run was sharded across (1 = single device).
    pub devices: u64,
    /// Achieved kernel clock, MHz.
    pub freq_mhz: f64,
    /// Resolved worker count the run was configured with (`--jobs`).
    pub jobs: u64,
    /// Telemetry shard recorders merged during the run.
    pub shards_merged: u64,
    /// Analytic-model cycles (Extended level).
    pub predicted_cycles: u64,
    /// Simulated cycles (0 for model-only or campaign records).
    pub measured_cycles: u64,
    /// Simulated wall-clock runtime, seconds.
    pub runtime_s: f64,
    /// Stall-class attribution from `sf-telemetry`.
    pub stalls: StallBreakdown,
    /// Campaign/fault counters (`injected`, `silent_wrong`, …); empty for
    /// non-fault runs.
    pub fault_counters: BTreeMap<String, u64>,
    /// Error-severity design-rule diagnostics from the pre-flight check.
    pub check_errors: u64,
    /// Warning-severity design-rule diagnostics from the pre-flight check.
    pub check_warnings: u64,
    /// Signed predicted-vs-measured divergence percentage; `None` when
    /// not finite or not applicable.
    pub divergence_pct: Option<f64>,
    /// Host wall time of the invocation, milliseconds. Deliberately
    /// excluded from report output so reports stay byte-reproducible.
    pub wall_ms: Option<f64>,
}

impl RunRecord {
    /// A record with the schema stamped and every other field zeroed —
    /// producers fill in what their invocation knows.
    pub fn empty(kind: RunKind, app: &str) -> Self {
        RunRecord {
            schema: RECORD_SCHEMA.to_string(),
            kind,
            git_sha: detect_git_sha(),
            app: app.to_string(),
            dims: Vec::new(),
            batch: 1,
            niter: 0,
            v: 0,
            p: 0,
            mode: String::new(),
            tile_m: None,
            tile_n: None,
            mem: String::new(),
            devices: 1,
            freq_mhz: 0.0,
            jobs: 1,
            shards_merged: 0,
            predicted_cycles: 0,
            measured_cycles: 0,
            runtime_s: 0.0,
            stalls: StallBreakdown::default(),
            fault_counters: BTreeMap::new(),
            check_errors: 0,
            check_warnings: 0,
            divergence_pct: None,
            wall_ms: None,
        }
    }

    /// The grouping key for cross-run aggregation: identical keys mean
    /// "the same nominal benchmark" — same kind, app, mesh, iteration
    /// count and design point. Worker count, git sha and wall time are
    /// deliberately excluded (they vary run to run without changing what
    /// was measured).
    pub fn config_key(&self) -> String {
        let dims = self.dims.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("x");
        format!(
            "{}/{}/{}/b{}/i{}/V{}/p{}/d{}/{}/{}",
            self.kind.label(),
            self.app,
            dims,
            self.batch,
            self.niter,
            self.v,
            self.p,
            self.devices.max(1),
            self.mode.replace(' ', ""),
            self.mem
        )
    }

    /// Dimensionality implied by `dims` (0 when unset).
    pub fn dims_rank(&self) -> usize {
        self.dims.len()
    }

    /// Whether the record carries a simulated cycle count (vs model-only
    /// or campaign records, which gate on other fields).
    pub fn has_measurement(&self) -> bool {
        self.measured_cycles > 0
    }
}

/// Canonical slug for an application id (the names the fault campaign
/// already uses on its CLI).
pub fn app_slug(app: AppId) -> &'static str {
    match app {
        AppId::Poisson2D => "poisson2d",
        AppId::Jacobi3D => "jacobi3d",
        AppId::Rtm3D => "rtm3d",
        AppId::Custom => "custom",
    }
}

/// Resolve a slug back to the paper app's spec. `None` for custom or
/// unknown slugs — those records are reported without a roofline.
pub fn spec_for_slug(slug: &str) -> Option<StencilSpec> {
    match slug {
        "poisson2d" => Some(StencilSpec::poisson()),
        "jacobi3d" => Some(StencilSpec::jacobi()),
        "rtm3d" => Some(StencilSpec::rtm()),
        _ => None,
    }
}

/// Best-effort git commit detection: the `SF_GIT_SHA` environment
/// variable wins (CI sets it from its own metadata), then `.git/HEAD`
/// resolved through loose refs and `packed-refs`, walking up from the
/// current directory. `None` when nothing is found — records stay usable
/// outside a repository.
pub fn detect_git_sha() -> Option<String> {
    if let Ok(sha) = std::env::var("SF_GIT_SHA") {
        let sha = sha.trim().to_string();
        if !sha.is_empty() {
            return Some(sha);
        }
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let head = dir.join(".git").join("HEAD");
        if let Ok(txt) = std::fs::read_to_string(&head) {
            let txt = txt.trim();
            let Some(refname) = txt.strip_prefix("ref: ") else {
                // detached HEAD: the file holds the sha itself
                return (!txt.is_empty()).then(|| txt.to_string());
            };
            let loose = dir.join(".git").join(refname);
            if let Ok(sha) = std::fs::read_to_string(&loose) {
                return Some(sha.trim().to_string());
            }
            let packed = dir.join(".git").join("packed-refs");
            if let Ok(body) = std::fs::read_to_string(&packed) {
                for line in body.lines() {
                    if let Some((sha, name)) = line.split_once(' ') {
                        if name.trim() == refname {
                            return Some(sha.trim().to_string());
                        }
                    }
                }
            }
            return None;
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_record_is_schema_stamped() {
        let r = RunRecord::empty(RunKind::Profile, "poisson2d");
        assert_eq!(r.schema, RECORD_SCHEMA);
        assert_eq!(r.app, "poisson2d");
        assert!(!r.has_measurement());
    }

    #[test]
    fn config_key_is_stable_and_spaceless() {
        let mut r = RunRecord::empty(RunKind::Profile, "poisson2d");
        r.dims = vec![200, 100];
        r.niter = 100;
        r.v = 8;
        r.p = 60;
        r.mode = "Batched { b: 6 }".into();
        r.batch = 6;
        r.mem = "hbm".into();
        assert_eq!(r.config_key(), "profile/poisson2d/200x100/b6/i100/V8/p60/d1/Batched{b:6}/hbm");
        assert!(!r.config_key().contains(' '));
        // a sharded run is a different nominal benchmark
        r.devices = 4;
        assert_eq!(r.config_key(), "profile/poisson2d/200x100/b6/i100/V8/p60/d4/Batched{b:6}/hbm");
    }

    #[test]
    fn config_key_ignores_run_varying_fields() {
        let mut a = RunRecord::empty(RunKind::Profile, "jacobi3d");
        a.dims = vec![32, 32, 16];
        let mut b = a.clone();
        b.jobs = 8;
        b.git_sha = Some("deadbeef".into());
        b.wall_ms = Some(12.5);
        assert_eq!(a.config_key(), b.config_key());
    }

    #[test]
    fn slugs_roundtrip_for_paper_apps() {
        for app in AppId::ALL {
            let slug = app_slug(app);
            let spec = spec_for_slug(slug).expect("paper app must resolve");
            assert_eq!(spec.app, app);
        }
        assert!(spec_for_slug("custom").is_none());
        assert!(spec_for_slug("fft").is_none());
    }

    #[test]
    fn record_roundtrips_through_json() {
        let mut r = RunRecord::empty(RunKind::Faults, "rtm3d");
        r.fault_counters.insert("injected".into(), 42);
        r.divergence_pct = Some(-3.25);
        r.wall_ms = Some(17.0);
        let json = serde_json::to_string(&r).unwrap_or_default();
        let back: RunRecord = serde_json::from_str(&json).expect("roundtrip");
        assert_eq!(back, r);
    }

    #[test]
    fn git_sha_env_override_wins() {
        // process-wide env var: run the assertion in-line, then restore
        let prev = std::env::var("SF_GIT_SHA").ok();
        std::env::set_var("SF_GIT_SHA", "cafebabe");
        assert_eq!(detect_git_sha().as_deref(), Some("cafebabe"));
        match prev {
            Some(v) => std::env::set_var("SF_GIT_SHA", v),
            None => std::env::remove_var("SF_GIT_SHA"),
        }
    }
}
